// Benchmarks regenerating every table and figure of the paper, plus kernel
// micro-benchmarks and design-choice ablations. Run:
//
//	go test -bench=. -benchmem .
//
// Paper-shape expectations are encoded as reported metrics (speedup,
// efficiency, makespan hours, detected fractions) rather than assertions,
// so a bench run doubles as an experiment log.
package phomc_test

import (
	"bytes"
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	phomc "repro"
	"repro/internal/cluster"
	"repro/internal/distsys"
	"repro/internal/grid"
	"repro/internal/mc"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// --- Figure/table regenerators -----------------------------------------

// BenchmarkFig2Speedup regenerates the speedup curve (Fig 2) via the
// cluster DES and reports speedup and efficiency at 60 processors.
func BenchmarkFig2Speedup(b *testing.B) {
	p := cluster.Params{
		TotalPhotons: 1e9,
		Policy:       sched.FixedChunk{Photons: 1e6},
		Seed:         1,
	}
	var last cluster.SpeedupPoint
	for i := 0; i < b.N; i++ {
		pts := cluster.SpeedupCurve([]int{1, 10, 20, 30, 40, 50, 60}, 210,
			cluster.CampusLAN(), p)
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.Speedup, "speedup@60")
	b.ReportMetric(100*last.Efficiency, "%efficiency@60")
}

// BenchmarkTable2Heterogeneous simulates the 10⁹-photon job on the paper's
// 150-client fleet (Table 2) and reports the predicted makespan in hours
// (paper: ≈2 h).
func BenchmarkTable2Heterogeneous(b *testing.B) {
	fleet := cluster.Table2Fleet()
	var hours float64
	for i := 0; i < b.N; i++ {
		res := cluster.Simulate(fleet, cluster.CampusLAN(), cluster.Params{
			TotalPhotons: 1e9,
			NonDedicated: true,
			Seed:         uint64(i + 1),
		})
		hours = res.Makespan.Hours()
	}
	b.ReportMetric(hours, "makespan-h")
}

// BenchmarkFig3Banana runs the Fig 3 experiment (homogeneous white matter,
// 50³ path grid) at one photon per iteration and reports the detected
// fraction.
func BenchmarkFig3Banana(b *testing.B) {
	cfg := phomc.Fig3Config(3, 1, 50, 12)
	tally, err := phomc.Run(cfg, int64(b.N), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tally.DetectedFraction(), "detected-frac")
}

// BenchmarkFig4HeadModel runs the Fig 4 experiment (layered adult head,
// 50³ absorption grid) and reports the white-matter penetration fraction.
func BenchmarkFig4HeadModel(b *testing.B) {
	cfg := phomc.Fig4Config(50, 40)
	tally, err := phomc.Run(cfg, int64(b.N), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tally.PenetrationFraction(4), "white-pen-frac")
}

// BenchmarkTable1AdultHead benchmarks the plain Table 1 model without
// scoring grids — the paper's core workload per photon, on the
// devirtualised layered fast path. The hot loop must not allocate.
func BenchmarkTable1AdultHead(b *testing.B) {
	cfg := &phomc.Config{Model: phomc.AdultHead()}
	b.ReportAllocs()
	tally, err := phomc.Run(cfg, int64(b.N), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tally.DiffuseReflectance(), "Rd")
}

// --- Kernel and substrate micro-benchmarks ------------------------------

func BenchmarkPhotonWhiteMatter(b *testing.B) {
	cfg := &phomc.Config{Model: phomc.HomogeneousWhiteMatter()}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPhotonScalpSlab(b *testing.B) {
	cfg := &phomc.Config{
		Model: phomc.HomogeneousSlab("scalp", tissue.ScalpProps, 10),
	}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLocalRunnerParallel(b *testing.B) {
	// Informative only on 1-CPU hosts; shows goroutine fan-out overhead.
	cfg := &phomc.Config{Model: phomc.AdultHead()}
	if _, err := phomc.RunParallel(cfg, int64(b.N), 1, 4); err != nil {
		b.Fatal(err)
	}
}

// --- Ablations: the paper's design choices -------------------------------

// BenchmarkBoundaryProbabilistic vs BenchmarkBoundaryDeterministic compare
// the two boundary-physics modes ("classical physics or probabilistic
// methods") on the layered head.
func BenchmarkBoundaryProbabilistic(b *testing.B) {
	cfg := &phomc.Config{Model: phomc.AdultHead(), Boundary: phomc.BoundaryProbabilistic}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkBoundaryDeterministic(b *testing.B) {
	cfg := &phomc.Config{Model: phomc.AdultHead(), Boundary: phomc.BoundaryDeterministic}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSourcePencil(b *testing.B)   { benchSource(b, phomc.PencilSource()) }
func BenchmarkSourceGaussian(b *testing.B) { benchSource(b, phomc.GaussianSource(2)) }
func BenchmarkSourceUniform(b *testing.B)  { benchSource(b, phomc.UniformSource(2)) }

func benchSource(b *testing.B, src phomc.Source) {
	b.Helper()
	cfg := &phomc.Config{Model: phomc.AdultHead(), Source: src}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSchedulers compares static scheduling policies on the
// heterogeneous fleet (the reference [4] study).
func BenchmarkSchedulerEqualSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched.EqualSplit(1e9, 150)
	}
}

func BenchmarkSchedulerProportional(b *testing.B) {
	speeds := table2Speeds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.ProportionalSplit(1e9, speeds)
	}
}

func BenchmarkSchedulerGA(b *testing.B) {
	speeds := table2Speeds()
	opt := sched.DefaultGAOptions()
	opt.Generations = 100
	b.ResetTimer()
	var ms float64
	for i := 0; i < b.N; i++ {
		_, ms = sched.GASplit(1e9, speeds, opt)
	}
	best := sched.Makespan(sched.ProportionalSplit(1e9, speeds), speeds)
	b.ReportMetric(ms/best, "vs-optimal")
}

func table2Speeds() []float64 {
	fleet := cluster.Table2Fleet()
	r := rng.New(1)
	speeds := make([]float64, len(fleet))
	for i, p := range fleet {
		speeds[i] = p.Mflops(r)
	}
	return speeds
}

// --- Reduction & transport ----------------------------------------------

func BenchmarkGridMerge50(b *testing.B) {
	a := grid.NewCube(50, 40)
	c := grid.NewCube(50, 40)
	for i := range c.Data {
		c.Data[i] = float64(i % 7)
	}
	b.SetBytes(int64(len(c.Data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Merge(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTallyMerge(b *testing.B) {
	cfg := phomc.Fig4Config(50, 40)
	if err := cfg.Normalize(); err != nil {
		b.Fatal(err)
	}
	part, err := phomc.Run(phomc.Fig4Config(50, 40), 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	total := mc.NewTally(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := total.Merge(part); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProtocolResult measures gob encode+decode of a realistic chunk
// result (tally with a 50³ grid) — the per-chunk wire cost.
func BenchmarkProtocolResult(b *testing.B) {
	tally, err := phomc.Run(phomc.Fig4Config(50, 40), 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	msg := &protocol.Message{Type: protocol.MsgTaskResult,
		Result: &protocol.TaskResult{ChunkID: 1, Tally: tally}}

	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	dec := gob.NewDecoder(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc.Encode(msg); err != nil {
			b.Fatal(err)
		}
		var out protocol.Message
		if err := dec.Decode(&out); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
		buf.Reset()
	}
}

// codecBenchTally builds the wire-representative chunk tally (annulus
// detection plus a mostly-zero 50³ detected-path grid) the tally-codec
// benchmarks encode.
func codecBenchTally(b *testing.B) *mc.Tally {
	b.Helper()
	tally, err := phomc.Run(phomc.Fig3Config(3, 1, 50, 12), 2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	return tally
}

// BenchmarkTallyEncodeGob vs BenchmarkTallyEncodeCompact (and the decode
// pair below) compare the two tally codecs on the same chunk result:
// ns/op, bytes/result (reported metric) and allocs. The compact codec is
// what ResultBatch frames carry; gob remains for checkpoints.
func BenchmarkTallyEncodeGob(b *testing.B) {
	tally := codecBenchTally(b)
	var codec mc.GobTallyCodec
	b.ReportAllocs()
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		blob, err := codec.EncodeTally(tally)
		if err != nil {
			b.Fatal(err)
		}
		n = len(blob)
	}
	b.ReportMetric(float64(n), "bytes/result")
}

func BenchmarkTallyEncodeCompact(b *testing.B) {
	tally := codecBenchTally(b)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = mc.AppendTally(buf[:0], tally)
	}
	b.ReportMetric(float64(len(buf)), "bytes/result")
}

func BenchmarkTallyDecodeGob(b *testing.B) {
	var codec mc.GobTallyCodec
	blob, err := codec.EncodeTally(codecBenchTally(b))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.DecodeTally(blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "bytes/result")
}

func BenchmarkTallyDecodeCompact(b *testing.B) {
	blob := mc.AppendTally(nil, codecBenchTally(b))
	var scratch mc.Tally
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mc.DecodeTallyInto(&scratch, blob); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "bytes/result")
}

// BenchmarkDistributedLoopback runs a complete DataManager job with four
// in-process TCP workers per iteration — the end-to-end distributed path.
func BenchmarkDistributedLoopback(b *testing.B) {
	spec := phomc.NewSpec(
		phomc.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 1, RMax: 4},
	)
	for i := 0; i < b.N; i++ {
		dm, err := distsys.NewDataManager(distsys.JobOptions{
			Spec: spec, TotalPhotons: 2000, ChunkPhotons: 250, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go dm.Serve(l)
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				distsys.WorkTCP(l.Addr().String(), distsys.WorkerOptions{
					Name: string(rune('a' + w)),
				})
			}(w)
		}
		if _, err := dm.Wait(time.Minute); err != nil {
			b.Fatal(err)
		}
		wg.Wait()
	}
}

// BenchmarkRegistryMultiJob runs eight small concurrent jobs through the
// multi-job service registry over a four-worker in-memory fleet per
// iteration — the cross-job scheduling, wire codec and reduction overhead
// of the service layer (jobs/sec; physics cost is kept tiny).
func BenchmarkRegistryMultiJob(b *testing.B) {
	model := phomc.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	for i := 0; i < b.N; i++ {
		reg := phomc.NewJobRegistry(phomc.RegistryOptions{
			Policy:       phomc.FairSharePolicy(),
			DrainOnEmpty: true,
			CacheSize:    -1,
		})
		const jobs = 8
		handles := make([]*phomc.ServiceJob, 0, jobs)
		for jb := 0; jb < jobs; jb++ {
			spec := phomc.NewSpec(model,
				phomc.SourceSpec{Kind: "pencil"},
				phomc.DetectorSpec{Kind: "annulus", RMin: 1, RMax: 4})
			out, err := reg.Submit(phomc.ServiceJobSpec{
				Spec:         spec,
				TotalPhotons: 1000,
				ChunkPhotons: 250,
				Seed:         uint64(i*jobs + jb + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, out.Job)
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			server, client := net.Pipe()
			go reg.HandleConn(server)
			wg.Add(1)
			go func() {
				defer wg.Done()
				distsys.Work(client, distsys.WorkerOptions{})
			}()
		}
		for _, j := range handles {
			if _, err := j.Wait(time.Minute); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}

// BenchmarkGatedDetection measures the cost of pathlength gating.
func BenchmarkGatedDetection(b *testing.B) {
	cfg := &phomc.Config{
		Model:    phomc.AdultHead(),
		Detector: phomc.AnnulusDetector(5, 15),
		Gate:     phomc.Gate{MinPath: 20, MaxPath: 200},
	}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

// --- Voxel geometry -------------------------------------------------------

// BenchmarkVoxelTraversal runs the voxelized adult head — the heterogeneous
// hot path (fused DDA step-to-boundary per scattering event) — for
// comparison against BenchmarkTable1AdultHead on the layered fast path.
func BenchmarkVoxelTraversal(b *testing.B) {
	g, err := voxel.FromModel(phomc.AdultHead(), 120, 120, 80, 1, 1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &phomc.Config{Geometry: g}
	b.ReportAllocs()
	tally, err := phomc.Run(cfg, int64(b.N), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(tally.DiffuseReflectance(), "Rd")
}

// BenchmarkVoxelHomogeneousFusion traces a label-homogeneous grid — the
// best case for the same-label safe-radius fusion, where nearly every
// scattering event resolves without seeding the DDA and boundary-bound
// flights leap whole Chebyshev balls per face test.
func BenchmarkVoxelHomogeneousFusion(b *testing.B) {
	g, err := voxel.FromModel(phomc.HomogeneousSlab("phantom", tissue.ScalpProps, 30),
		100, 100, 60, 1, 1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cfg := &phomc.Config{Geometry: g}
	b.ReportAllocs()
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkVoxelSphereInclusion adds an absorbing sphere so label changes
// (and Fresnel-free interior crossings) appear on the path.
func BenchmarkVoxelSphereInclusion(b *testing.B) {
	g, err := voxel.FromModel(phomc.AdultHead(), 120, 120, 80, 1, 1, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	inc, err := g.AddMedium("tumour", phomc.TransportProperties(2.0, 0.9, 0.3, 1.4))
	if err != nil {
		b.Fatal(err)
	}
	g.PaintSphere(inc, 0, 0, 14, 5)
	cfg := &phomc.Config{Geometry: g}
	if _, err := phomc.Run(cfg, int64(b.N), 1); err != nil {
		b.Fatal(err)
	}
}
