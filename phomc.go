package phomc

import (
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// Core simulation types, re-exported from the kernel.
type (
	// Config fully describes one simulation run.
	Config = mc.Config
	// Tally holds every observable of a run; it merges associatively.
	Tally = mc.Tally
	// Spec is the serialisable form of a Config used by the wire protocol.
	Spec = mc.Spec
	// GridSpec requests a cubic scoring grid of N³ voxels over Edge mm.
	GridSpec = mc.GridSpec
	// HistSpec requests a pathlength histogram.
	HistSpec = mc.HistSpec
	// BoundaryMode selects probabilistic or deterministic (classical
	// splitting) boundary physics.
	BoundaryMode = mc.BoundaryMode
	// Observable names a headline scalar (diffuse, transmit, absorbed,
	// detected) whose uncertainty the moment accumulators track.
	Observable = mc.Observable
	// PrecisionTarget asks for run-until-precision execution: simulate
	// until the observable's relative standard error reaches RelErr.
	PrecisionTarget = mc.Target
	// Moments carries the chunk-level second moments behind the
	// precision machinery (Tally.Moments; nil unless Spec.TrackMoments).
	Moments = mc.Moments

	// Model is a layered tissue description.
	Model = tissue.Model
	// Layer is one homogeneous slab of a Model.
	Layer = tissue.Layer
	// Properties are a medium's optical properties (µa, µs, g, n).
	Properties = optics.Properties

	// Geometry is the medium abstraction the kernel traces through; the
	// layered Model (wrapped automatically by Config.Normalize) and the
	// heterogeneous VoxelGrid both implement it.
	Geometry = geom.Geometry
	// VoxelGrid is a heterogeneous voxelized medium: a 3-D label grid over
	// a table of optical media, traversed with DDA stepping. Assign one to
	// Config.Geometry (or build a Spec with NewVoxelSpec) to simulate
	// inclusions, tilted boundaries and other non-layered scenarios.
	VoxelGrid = voxel.Grid

	// Source launches photons onto the tissue surface.
	Source = source.Source
	// SourceSpec is the serialisable form of a Source.
	SourceSpec = source.Spec
	// Detector captures photons exiting the surface.
	Detector = detector.Detector
	// DetectorSpec is the serialisable form of a Detector plus its Gate.
	DetectorSpec = detector.Spec
	// Gate restricts detection to a pathlength window (gated differential
	// pathlengths).
	Gate = detector.Gate
)

// Boundary handling modes.
const (
	BoundaryProbabilistic = mc.BoundaryProbabilistic
	BoundaryDeterministic = mc.BoundaryDeterministic
)

// Precision-target observables.
const (
	ObsDiffuse  = mc.ObsDiffuse
	ObsTransmit = mc.ObsTransmit
	ObsAbsorbed = mc.ObsAbsorbed
	ObsDetected = mc.ObsDetected
)

// Run simulates n photons on a single RNG stream seeded with seed.
func Run(cfg *Config, n int64, seed uint64) (*Tally, error) {
	return mc.Run(cfg, n, seed)
}

// RunParallel fans n photons across workers goroutines (0 = GOMAXPROCS)
// with jump-separated RNG streams; the merged tally is independent of the
// worker count.
func RunParallel(cfg *Config, n int64, seed uint64, workers int) (*Tally, error) {
	return mc.RunParallel(cfg, n, seed, workers)
}

// RunStream computes chunk `stream` of `streams` independent chunks; merging
// all chunks reproduces exactly the same tally in any order.
func RunStream(cfg *Config, n int64, seed uint64, stream, streams int) (*Tally, error) {
	return mc.RunStream(cfg, n, seed, stream, streams)
}

// RunStreamFan computes chunk `stream` split across `fan` deterministic
// jump-separated sub-streams on all available cores; the tally depends on
// the fan width but never on the number of cores that executed it, and
// fan ≤ 1 is byte-identical to RunStream. This is what distributed workers
// run for jobs submitted with a Fan.
func RunStreamFan(cfg *Config, n int64, seed uint64, stream, streams, fan int) (*Tally, error) {
	return mc.RunStreamFan(cfg, n, seed, stream, streams, fan)
}

// RunAdaptive is the local run-until-precision loop: rounds of `workers`
// streams of `chunk` photons each until the target's relative standard
// error is met (or its MaxPhotons cap is reached). The result is a pure
// function of (cfg, tgt, seed, chunk, workers) and reports its estimate
// and confidence interval via Tally.EstimateCI.
func RunAdaptive(cfg *Config, tgt PrecisionTarget, seed uint64, chunk int64, workers int) (*Tally, error) {
	return mc.RunAdaptive(cfg, tgt, seed, chunk, workers)
}

// NewTally returns an empty tally shaped for cfg, ready to Merge into.
func NewTally(cfg *Config) *Tally { return mc.NewTally(cfg) }

// Tissue models.

// AdultHead returns the five-layer adult head model of the paper's Table 1
// (scalp, skull, CSF, grey matter, semi-infinite white matter).
func AdultHead() *Model { return tissue.AdultHead() }

// AdultHeadCustom returns the Table 1 model with chosen scalp and skull
// thicknesses (the table gives 3–10 mm and 5–10 mm ranges).
func AdultHeadCustom(scalpMM, skullMM float64) *Model {
	return tissue.AdultHeadCustom(scalpMM, skullMM)
}

// Neonate returns a neonatal head model with thinner superficial layers.
func Neonate() *Model { return tissue.Neonate() }

// HomogeneousWhiteMatter returns the semi-infinite white-matter phantom of
// the paper's Fig 3.
func HomogeneousWhiteMatter() *Model { return tissue.HomogeneousWhiteMatter() }

// HomogeneousSlab returns a single-layer slab with the given properties.
func HomogeneousSlab(name string, p Properties, thicknessMM float64) *Model {
	return tissue.HomogeneousSlab(name, p, thicknessMM)
}

// TransportProperties builds Properties from a transport scattering
// coefficient µs′ = µs(1−g), the form tissue tables usually report.
func TransportProperties(muSPrime, g, muA, n float64) Properties {
	return optics.FromTransport(muSPrime, g, muA, n)
}

// Voxel geometry.

// NewVoxelGrid returns a homogeneous nx×ny×nz voxel grid of dx×dy×dz mm
// voxels filled with the base medium, laterally centred on the source
// axis. Carve heterogeneity into it with AddMedium and the Paint helpers
// (PaintSphere, PaintBox, PaintSlab).
func NewVoxelGrid(name string, nx, ny, nz int, dx, dy, dz float64, baseName string, base Properties) *VoxelGrid {
	return voxel.New(name, nx, ny, nz, dx, dy, dz, baseName, base)
}

// VoxelizeModel voxelizes a layered model onto an nx×ny×nz grid of
// dx×dy×dz mm voxels — the starting point for embedding inclusions in the
// standard head models. When layer boundaries align with voxel planes the
// voxelization is geometrically exact inside the grid.
func VoxelizeModel(m *Model, nx, ny, nz int, dx, dy, dz float64) (*VoxelGrid, error) {
	return voxel.FromModel(m, nx, ny, nz, dx, dy, dz)
}

// NewVoxelSpec captures a serialisable voxel-geometry simulation for the
// wire protocol and distributed runs, the heterogeneous counterpart of
// NewSpec.
func NewVoxelSpec(g *VoxelGrid, src SourceSpec, det DetectorSpec) *Spec {
	return mc.NewVoxelSpec(g, src, det)
}

// Sources.

// PencilSource returns the delta (laser) source at the origin.
func PencilSource() Source { return source.Pencil{} }

// GaussianSource returns a Gaussian illumination footprint with the given
// per-axis standard deviation in mm.
func GaussianSource(sigmaMM float64) Source { return source.GaussianBeam{Sigma: sigmaMM} }

// UniformSource returns a flat circular illumination footprint with the
// given radius in mm.
func UniformSource(radiusMM float64) Source { return source.UniformDisk{Radius: radiusMM} }

// Detectors.

// DiskDetector returns a circular optode of the given radius centred at
// (separationMM, 0) on the surface.
func DiskDetector(separationMM, radiusMM float64) Detector {
	return detector.Disk{CenterX: separationMM, Radius: radiusMM}
}

// AnnulusDetector captures photons exiting at radial distance
// ρ ∈ [rMinMM, rMaxMM] from the source axis (all azimuths).
func AnnulusDetector(rMinMM, rMaxMM float64) Detector {
	return detector.Annulus{RMin: rMinMM, RMax: rMaxMM}
}

// SurfaceDetector captures every photon leaving the top surface.
func SurfaceDetector() Detector { return detector.All{} }
