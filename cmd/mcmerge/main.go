// Command mcmerge reduces saved partial tallies offline — the file-based
// counterpart of the DataManager's in-flight reduction. Workers (or mcsim
// -save runs with distinct -stream indices) write .tally files; mcmerge
// verifies they belong to the same experiment, merges them exactly once and
// prints the combined summary.
//
//	mcsim -photons 1e6 -stream 0 -streams 4 -save part0.tally &
//	mcsim -photons 1e6 -stream 1 -streams 4 -save part1.tally &
//	...
//	mcmerge -o full.tally part*.tally
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/report"
)

func main() {
	out := flag.String("o", "", "write the merged tally to this file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mcmerge [-o merged.tally] part1.tally part2.tally ...")
		os.Exit(2)
	}

	total, err := report.MergeFiles(flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmerge:", err)
		os.Exit(1)
	}

	cfg, err := total.Spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcmerge:", err)
		os.Exit(1)
	}
	fmt.Printf("merged %d files (experiment %s, workers %s)\n\n",
		flag.NArg(), total.SpecDigest[:8], total.Worker)
	cli.PrintTally(os.Stdout, total.Tally, cfg.Model)

	if *out != "" {
		if err := total.Save(*out); err != nil {
			fmt.Fprintln(os.Stderr, "mcmerge:", err)
			os.Exit(1)
		}
		fmt.Printf("\nmerged tally written to %s\n", *out)
	}
}
