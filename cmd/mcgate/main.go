// Command mcgate is the stateless gateway over a sharded control plane:
// N mcqueue shards, each owning a contiguous slice of the content-key
// space, behind one HTTP endpoint that speaks the exact same job API.
// Clients cannot tell it from a single mcqueue — POST /jobs routes by
// the submission's content key, GET/DELETE /jobs/{id}... routes by the
// ID (IDs are derived from keys, so no table is needed), and /stats,
// /fleet, /tenants and GET /jobs fan out and merge.
//
// Each -shard flag names one shard as a comma-separated replica list:
// the primary first, then any lease-file standbys sharing its -wal-dir.
// The gateway fails a request over on connection errors and 503s — never
// on 4xx — so a kill -9'd primary is invisible to clients once its
// standby has replayed the journal and taken the lease:
//
//	mcqueue -addr :9876 -http :8081 -wal-dir s0 -lease-file s0.lease
//	mcqueue -addr :9877 -http :8082 -wal-dir s1 -lease-file s1.lease   # primary
//	mcqueue -addr :9878 -http :8083 -wal-dir s1 -lease-file s1.lease   # standby (blocks)
//	mcworker -addr localhost:9876
//	mcworker -addr localhost:9877,localhost:9878
//	mcgate -http :8080 -shard http://localhost:8081 -shard http://localhost:8082,http://localhost:8083
//
// The gateway also keeps a shared result tier: every completed tally
// that flows through GET /jobs/{id}/result is cached under the same
// exact and physics-keyed meets-or-exceeds indexes the shards use, so a
// resubmission — or a looser precision target over physics any shard
// ever ran — is answered at the routing tier without touching a shard.
//
// -tenants moves admission control to the gateway (the only place that
// sees every shard's arrival stream): the named token buckets run here,
// sheds are 429 + Retry-After, and the shards behind it should run
// without -tenants so tenants are not charged twice. GET /tenants then
// reports the gateway's authoritative bucket levels over the merged
// per-shard accounting.
//
// The debug surface (GET /metrics with gateway_* counters, /healthz,
// /readyz with one condition per shard, pprof) multiplexes on -http or
// moves to -debug-addr. /readyz goes ready when every shard answers its
// probe; a shard mid-failover flips its condition false and back.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/service"
)

// shardList collects repeated -shard flags, each a comma-separated
// replica list for one shard.
type shardList [][]string

func (s *shardList) String() string { return fmt.Sprintf("%v", [][]string(*s)) }

func (s *shardList) Set(v string) error {
	var replicas []string
	for _, r := range strings.Split(v, ",") {
		r = strings.TrimSpace(r)
		if r == "" {
			continue
		}
		if !strings.HasPrefix(r, "http://") && !strings.HasPrefix(r, "https://") {
			r = "http://" + r
		}
		replicas = append(replicas, r)
	}
	if len(replicas) == 0 {
		return fmt.Errorf("empty shard replica list %q", v)
	}
	*s = append(*s, replicas)
	return nil
}

func main() {
	fs := flag.NewFlagSet("mcgate", flag.ExitOnError)
	httpAddr := fs.String("http", ":8080", "HTTP API listen address")
	debugAddr := fs.String("debug-addr", "",
		"separate listener for /metrics, /healthz, /readyz and /debug/pprof (empty: multiplexed on -http)")
	var shards shardList
	fs.Var(&shards, "shard",
		"one shard's replica base URLs, comma-separated, primary first (repeat per shard; order fixes the key ranges)")
	tenantsFile := fs.String("tenants", "",
		"JSON tenant table: run token-bucket admission at the gateway (shards should then run without -tenants)")
	cacheSize := fs.Int("cache", 256, "shared result tier entries (0 default, negative disables)")
	maxTarget := fs.Int64("target-max-photons", 0,
		"precision-target photon cap; must match the shards' flag (it participates in the routing key)")
	maxBody := fs.Int64("max-body-bytes", 0,
		"POST /jobs body size cap, 413 beyond it (0: 32 MiB default, negative: unbounded)")
	probeEvery := fs.Duration("probe-interval", 2*time.Second,
		"how often the readiness probe checks each shard")
	var lf cli.LogFlags
	lf.Register(fs)
	fs.Parse(os.Args[1:])

	logger, err := lf.Build(os.Stderr)
	if err != nil {
		fatal(err)
	}
	if len(shards) == 0 {
		fatal(fmt.Errorf("at least one -shard is required"))
	}
	var admission service.AdmissionPolicy
	if *tenantsFile != "" {
		table, err := service.LoadTenantTable(*tenantsFile)
		if err != nil {
			fatal(err)
		}
		admission = service.NewTokenBucket(table, nil)
	}

	oreg := obs.NewRegistry()
	gw, err := gateway.New(gateway.Options{
		Shards:           shards,
		Admission:        admission,
		MaxTargetPhotons: *maxTarget,
		MaxBodyBytes:     *maxBody,
		CacheSize:        *cacheSize,
		Obs:              oreg,
		Logger:           logger,
	})
	if err != nil {
		fatal(err)
	}
	ready := obs.NewReadiness(gw.ShardConds()...)
	gw.Probe(ready)
	go func() {
		for range time.Tick(*probeEvery) {
			gw.Probe(ready)
		}
	}()

	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	gw.Register(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	var debugSrv *http.Server
	if *debugAddr == "" {
		obs.RegisterDebug(mux, oreg, ready)
	} else {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		dmux := http.NewServeMux()
		obs.RegisterDebug(dmux, oreg, ready)
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go debugSrv.Serve(dl)
		logger.Info("debug listener up", "addr", dl.Addr().String())
	}
	logger.Info("mcgate up", "http", hl.Addr().String(), "shards", gw.Shards())

	// The gateway holds no durable state, so shutdown is only an HTTP
	// drain: in-flight proxied requests finish, then the process exits.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		if debugSrv != nil {
			debugSrv.Shutdown(ctx)
		}
		cancel()
		close(drained)
	}()
	if err := srv.Serve(hl); err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcgate:", err)
	os.Exit(1)
}
