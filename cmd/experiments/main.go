// Command experiments regenerates every table and figure of the paper's
// evaluation and prints paper-vs-measured comparisons — the data source for
// EXPERIMENTS.md.
//
//	experiments -run all
//	experiments -run fig2,table2
//	experiments -run fig3 -photons 2000000   # tighter banana statistics
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	phomc "repro"
	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/mc"
	"repro/internal/render"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/tissue"
)

func main() {
	run := flag.String("run", "all", "comma list: table1,fig2,table2,fig3,fig4,sched")
	photons := flag.Int64("photons", 200_000, "photon budget for the physics figures")
	seed := flag.Uint64("seed", 1, "master RNG seed")
	workers := flag.Int("workers", 0, "goroutines for the physics figures")
	flag.Parse()

	want := map[string]bool{}
	for _, k := range strings.Split(*run, ",") {
		want[strings.TrimSpace(k)] = true
	}
	all := want["all"]

	if all || want["table1"] {
		table1()
	}
	if all || want["fig2"] {
		fig2()
	}
	if all || want["table2"] {
		table2()
	}
	if all || want["fig3"] {
		fig3(*photons, *seed, *workers)
	}
	if all || want["fig4"] {
		fig4(*photons, *seed, *workers)
	}
	if all || want["sched"] {
		schedAblation()
	}
}

// table1 prints the encoded adult-head optical properties next to the
// paper's values (they are inputs, so agreement is definitional — the check
// is that the model derives µs = µs′/(1−g) correctly).
func table1() {
	cli.Underline(os.Stdout, "Table 1 — adult head optical properties (NIR)")
	m := tissue.AdultHead()
	fmt.Printf("%-14s %10s %10s %10s %10s %10s\n",
		"layer", "thick(mm)", "µs′(mm⁻¹)", "µa(mm⁻¹)", "g", "µs(mm⁻¹)")
	for _, l := range m.Layers {
		th := fmt.Sprintf("%.0f", l.Thickness)
		if l.Thickness > 1e9 {
			th = "∞"
		}
		fmt.Printf("%-14s %10s %10.2f %10.3f %10.2f %10.1f\n",
			l.Name, th, l.Props.MuSPrime(), l.Props.MuA, l.Props.G, l.Props.MuS)
	}
	fmt.Println("\npaper: µs′ scalp 1.9, skull 1.6, CSF 0.25, grey 2.2, white 9.1;")
	fmt.Println("       µa   scalp 0.018, skull 0.016, CSF 0.004, grey 0.036, white 0.014")
}

// fig2 regenerates the speedup graph on the homogeneous fleet via the
// cluster discrete-event simulation.
func fig2() {
	cli.Underline(os.Stdout, "Fig 2 — speedup on homogeneous P4 fleet (DES)")
	p := cluster.Params{
		TotalPhotons: 1e9,
		Policy:       sched.FixedChunk{Photons: 1e6},
		Seed:         1,
	}
	counts := []int{1, 2, 4, 8, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60}
	pts := cluster.SpeedupCurve(counts, 210, cluster.CampusLAN(), p)
	fmt.Printf("%8s %14s %10s %12s\n", "workers", "makespan", "speedup", "efficiency")
	for _, pt := range pts {
		fmt.Printf("%8d %13.0fs %10.2f %11.1f%%\n",
			pt.Workers, pt.Makespan.Seconds(), pt.Speedup, 100*pt.Efficiency)
	}
	last := pts[len(pts)-1]
	fmt.Printf("\npaper: near-linear speedup, ≥97%% efficiency at 60 processors\n")
	fmt.Printf("measured: %.1f%% efficiency at %d processors\n",
		100*last.Efficiency, last.Workers)
}

// table2 prints the heterogeneous fleet and predicts the paper's job time.
func table2() {
	cli.Underline(os.Stdout, "Table 2 — heterogeneous fleet & 10⁹-photon makespan (DES)")
	fleet := cluster.Table2Fleet()
	fmt.Printf("clients: %d, aggregate mid-range rating: %.1f Gflop/s\n",
		len(fleet), fleet.TotalMflops()/1000)

	res := cluster.Simulate(fleet, cluster.CampusLAN(), cluster.Params{
		TotalPhotons: 1e9,
		NonDedicated: true,
		Seed:         2,
	})
	fmt.Printf("simulated makespan: %.2f h (%d chunks, %.0f%% utilisation)\n",
		res.Makespan.Hours(), res.Chunks, 100*res.Utilization())
	fmt.Printf("paper: each 10⁹-photon simulation took ≈2 h on this fleet\n")

	// Per-class contribution summary.
	classChunks := map[string]int{}
	classCount := map[string]int{}
	for _, p := range res.PerProc {
		cls := p.Name[:strings.LastIndex(p.Name, "-")]
		classChunks[cls] += p.Chunks
		classCount[cls]++
	}
	fmt.Printf("\n%-12s %8s %14s\n", "class", "machines", "chunks pulled")
	for _, cls := range []string{"p3-600", "p4-2400", "p2-266", "p4c-1400",
		"p3-500", "p3-1000", "p4-1700", "amd-2400xp"} {
		fmt.Printf("%-12s %8d %14d\n", cls, classCount[cls], classChunks[cls])
	}
}

// fig3 regenerates the banana: homogeneous white matter, laser source,
// granularity 50³, detected-photon path density, thresholded.
func fig3(photons int64, seed uint64, workers int) {
	cli.Underline(os.Stdout, "Fig 3 — photon path density in homogeneous white matter")
	const sep, rad = 3.0, 1.0
	cfg := phomc.Fig3Config(sep, rad, 50, 12)
	start := time.Now()
	tally, err := mc.RunParallel(cfg, photons, seed, workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("photons %d, detected %d (%.2e of launched), %.1fs\n",
		photons, tally.DetectedCount, tally.DetectedFraction(), time.Since(start).Seconds())
	fmt.Printf("mean pathlength %.1f mm (separation %g mm → DPF %.1f)\n",
		tally.MeanPathlength(), sep, tally.DPF(sep))
	fmt.Printf("mean max depth %.2f mm\n", tally.DepthStats.Mean())

	g := tally.PathGrid.Clone()
	g.Threshold(0.02) // the paper's "after thresholding"
	rows := render.Downsample(render.CropDepth(g.ProjectY()), 100, 34)
	fmt.Println()
	render.Frame(os.Stdout,
		fmt.Sprintf("detected-photon path density, source at x=0, detector at x=%g mm", sep),
		rows, "x", "depth z")
	fmt.Println("paper: most common paths form a banana between source and detector")
}

// fig4 regenerates the layered-head simulation and its penetration story.
func fig4(photons int64, seed uint64, workers int) {
	cli.Underline(os.Stdout, "Fig 4 — photon paths in the layered adult head")
	cfg := phomc.Fig4Config(50, 40)
	start := time.Now()
	tally, err := mc.RunParallel(cfg, photons, seed, workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("photons %d, %.1fs\n", photons, time.Since(start).Seconds())
	cli.PrintTally(os.Stdout, tally, cfg.Model)

	g := tally.AbsGrid.Clone()
	g.Threshold(0.001)
	rows := render.Downsample(render.CropDepth(g.ProjectY()), 100, 34)
	fmt.Println()
	render.Frame(os.Stdout, "absorbed weight (x–z projection; layer boundaries at 3/10/12/16 mm)",
		rows, "x", "depth z")
	fmt.Printf("paper: most photons are reflected before the CSF; some penetrate into white matter\n")
	fmt.Printf("measured: %.1f%% of launched weight enters the CSF, %.2f%% reaches white matter\n",
		100*tally.PenetrationFraction(2), 100*tally.PenetrationFraction(4))
}

// schedAblation compares work-partitioning policies on the Table 2 fleet —
// the design-choice study behind the platform's self-scheduling (and the
// GA framework of reference [4]).
func schedAblation() {
	cli.Underline(os.Stdout, "Ablation — scheduling policies on the Table 2 fleet (DES)")
	fleet := cluster.Table2Fleet()
	const total = int64(1e9)
	net := cluster.CampusLAN()

	type row struct {
		name string
		mk   time.Duration
	}
	var rows []row

	for _, pol := range []sched.Policy{
		sched.FixedChunk{Photons: 1e6},
		sched.FixedChunk{Photons: 1e7},
		sched.Guided{Min: 1e5},
	} {
		res := cluster.Simulate(fleet, net, cluster.Params{
			TotalPhotons: total, Policy: pol, Seed: 3,
		})
		rows = append(rows, row{"dynamic " + pol.Name(), res.Makespan})
	}

	r := rng.New(4)
	speeds := make([]float64, len(fleet))
	for i, p := range fleet {
		speeds[i] = p.Mflops(r)
	}
	p := cluster.Params{TotalPhotons: total, Seed: 3}
	rows = append(rows, row{"static equal",
		cluster.StaticResult(fleet, net, p, sched.EqualSplit(total, len(fleet))).Makespan})
	rows = append(rows, row{"static proportional",
		cluster.StaticResult(fleet, net, p, sched.ProportionalSplit(total, speeds)).Makespan})
	gaAlloc, _ := sched.GASplit(total, speeds, sched.DefaultGAOptions())
	rows = append(rows, row{"static GA (ref [4])",
		cluster.StaticResult(fleet, net, p, gaAlloc).Makespan})

	fmt.Printf("%-26s %12s\n", "policy", "makespan")
	for _, r := range rows {
		fmt.Printf("%-26s %11.2fh\n", r.name, r.mk.Hours())
	}
	fmt.Println("\nself-scheduling absorbs heterogeneity that static equal split cannot;")
	fmt.Println("the GA recovers near-proportional static plans when speeds are known")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
