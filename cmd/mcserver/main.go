// Command mcserver runs the DataManager: it listens for worker clients,
// hands out simulation chunks, reduces returned tallies and prints the
// final result — the server half of the paper's distributed platform.
//
// Example (three terminals):
//
//	mcserver -addr :9876 -photons 1000000 -chunk 50000 -model adult-head
//	mcworker -addr localhost:9876 -name pc1
//	mcworker -addr localhost:9876 -name pc2
//
// -debug-addr starts an HTTP debug listener serving GET /metrics
// (Prometheus text exposition of the service-plane counters), GET
// /healthz, GET /readyz and net/http/pprof. Logging is structured
// (-log-format text|json); -v only lowers the level to debug.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/distsys"
	"repro/internal/obs"
)

func main() {
	fs := flag.NewFlagSet("mcserver", flag.ExitOnError)
	var sf cli.SpecFlags
	sf.Register(fs)
	addr := fs.String("addr", ":9876", "listen address")
	debugAddr := fs.String("debug-addr", "",
		"HTTP listener for /metrics, /healthz, /readyz and /debug/pprof (empty: disabled)")
	photons := fs.Int64("photons", 1_000_000, "total photon packets")
	chunk := fs.Int64("chunk", 50_000, "photons per work unit")
	seed := fs.Uint64("seed", 1, "master RNG seed")
	timeout := fs.Duration("chunk-timeout", 5*time.Minute,
		"reassign a chunk if no result arrives in this window")
	ckptPath := fs.String("checkpoint", "",
		"periodically save a resumable job snapshot to this file")
	resume := fs.Bool("resume", false, "resume the job from -checkpoint instead of starting fresh")
	var lf cli.LogFlags
	lf.Register(fs)
	fs.Parse(os.Args[1:])

	logger, err := lf.Build(os.Stderr)
	if err != nil {
		fatal(err)
	}
	spec, err := sf.Build()
	if err != nil {
		fatal(err)
	}

	oreg := obs.NewRegistry()
	ready := obs.NewReadiness("fleet-listener")
	opts := distsys.JobOptions{
		Spec:         spec,
		TotalPhotons: *photons,
		ChunkPhotons: *chunk,
		Seed:         *seed,
		ChunkTimeout: *timeout,
		Obs:          oreg,
		Logger:       logger,
	}

	var dm *distsys.DataManager
	if *resume {
		if *ckptPath == "" {
			fatal(fmt.Errorf("-resume requires -checkpoint"))
		}
		cp, err := distsys.LoadCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		dm, err = distsys.Resume(cp, opts)
		if err != nil {
			fatal(err)
		}
		done, total := dm.Progress()
		fmt.Printf("resumed job from %s: %d/%d chunks already reduced\n",
			*ckptPath, done, total)
	} else {
		dm, err = distsys.NewDataManager(opts)
		if err != nil {
			fatal(err)
		}
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	ready.Set("fleet-listener", true)
	var debugSrv *http.Server
	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		dmux := http.NewServeMux()
		obs.RegisterDebug(dmux, oreg, ready)
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go debugSrv.Serve(dl)
		logger.Info("debug listener up", "addr", dl.Addr().String())
	}
	fmt.Printf("datamanager listening on %s — %d photons in %d chunks\n",
		l.Addr(), *photons, dm.NumChunks())

	// A final checkpoint on SIGINT/SIGTERM: an operator Ctrl-C never loses
	// a long job, even when periodic checkpointing was not requested. The
	// debug listener is drained first so a scrape in flight is not cut off
	// mid-body.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		if debugSrv != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			debugSrv.Shutdown(ctx)
			cancel()
		}
		path := *ckptPath
		if path == "" {
			path = "mcserver.ckpt"
		}
		if err := dm.Checkpoint().Save(path); err != nil {
			logger.Error("final checkpoint failed", "err", err)
			os.Exit(1)
		}
		done, total := dm.Progress()
		fmt.Printf("\nmcserver: %v — %d/%d chunks checkpointed to %s "+
			"(resume with -resume -checkpoint %s)\n", s, done, total, path, path)
		os.Exit(0)
	}()

	go func() {
		tick := time.NewTicker(5 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-dm.Done():
				return
			case <-tick.C:
				done, total := dm.Progress()
				fmt.Printf("progress: %d/%d chunks\n", done, total)
				if *ckptPath != "" {
					if err := dm.Checkpoint().Save(*ckptPath); err != nil {
						logger.Warn("periodic checkpoint failed", "err", err)
					}
				}
			}
		}
	}()

	go dm.Serve(l)
	res, err := dm.Wait(0)
	if err != nil {
		fatal(err)
	}

	cfg, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\njob complete in %v (%d chunks, %d reassigned, %d duplicate results)\n",
		res.Elapsed.Round(time.Millisecond), res.Chunks, res.Reassigned, res.Duplicates)
	for _, w := range res.Workers {
		fmt.Printf("  %-16s %5d chunks  (%.0f Mflop/s reported)\n", w.Name, w.Chunks, w.Mflops)
	}
	fmt.Println()
	cli.PrintTally(os.Stdout, res.Tally, cfg.Model)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcserver:", err)
	os.Exit(1)
}
