// Command mctop is a live terminal dashboard for an mcqueue service: top
// for the photon fleet. It polls the HTTP API — GET /fleet for per-worker
// telemetry profiles, GET /stats for queue health, GET /metrics for the
// service-plane counters — and repaints a flicker-free ANSI view each
// interval: fleet-wide photons/sec (counter deltas), job and chunk queue
// depths, one row per connected worker contrasting the rate the worker
// reports against the rate the server infers from ack timing, and — when
// the server runs per-tenant admission control — a tenant rollup with
// live token-bucket levels.
//
// Example:
//
//	mctop -addr http://localhost:8080 -interval 1s
//
// -once prints a single plain-text snapshot and exits — for scripts,
// smoke tests and terminals without ANSI. mctop needs nothing beyond the
// standard library and never talks to workers directly; everything it
// shows rides the same introspection surface any curl user gets.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// fleetWorker mirrors the service's SessionStatus JSON (a private copy:
// mctop is a pure HTTP client and must not import server internals).
type fleetWorker struct {
	ID                    uint64    `json:"id"`
	Name                  string    `json:"name"`
	Remote                string    `json:"remote"`
	Connected             time.Time `json:"connectedSince"`
	LastSeen              time.Time `json:"lastSeen"`
	ChunksHeld            int       `json:"chunksHeld"`
	ChunksCompleted       int       `json:"chunksCompleted"`
	InferredPhotonsPerSec float64   `json:"inferredPhotonsPerSec"`
	ReportedPhotonsPerSec float64   `json:"reportedPhotonsPerSec"`
	ChunkSeconds          float64   `json:"chunkSeconds"`
	Holding               int       `json:"holding"`
	Goroutines            int       `json:"goroutines"`
	HeapBytes             uint64    `json:"heapBytes"`
	Version               string    `json:"version"`
}

// fleetTenant mirrors the service's TenantStatus JSON: the per-tenant
// admission rollup the server folds into GET /fleet.
type fleetTenant struct {
	Name         string   `json:"name"`
	Weight       float64  `json:"weight"`
	ActiveJobs   int      `json:"activeJobs"`
	Submitted    int64    `json:"submitted"`
	Resumed      int64    `json:"resumed"`
	Shed         int64    `json:"shed"`
	Photons      int64    `json:"photons"`
	JobTokens    *float64 `json:"jobTokens"`
	PhotonTokens *float64 `json:"photonTokens"`
}

type fleetView struct {
	Workers []fleetWorker `json:"workers"`
	Tenants []fleetTenant `json:"tenants"`
}

type statsView struct {
	Workers           int    `json:"workers"`
	JobsQueued        int    `json:"jobsQueued"`
	JobsRunning       int    `json:"jobsRunning"`
	JobsDone          int    `json:"jobsDone"`
	JobsCanceled      int    `json:"jobsCanceled"`
	PendingChunks     int    `json:"pendingChunks"`
	OutstandingChunks int    `json:"outstandingChunks"`
	PhotonsCompleted  int64  `json:"photonsCompleted"`
	BatchesReduced    int64  `json:"batchesReduced"`
	Policy            string `json:"policy"`
}

// sample is one poll of the service's introspection surface.
type sample struct {
	at      time.Time
	fleet   fleetView
	stats   statsView
	metrics map[string]float64
	version string // server build, from mc_build_info's version label
	err     error
}

func main() {
	addr := flag.String("addr", "http://localhost:8080", "mcqueue HTTP API base URL")
	interval := flag.Duration("interval", time.Second, "poll and repaint interval")
	once := flag.Bool("once", false, "print one plain-text snapshot and exit")
	flag.Parse()

	base := strings.TrimSuffix(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		s := poll(client, base)
		if s.err != nil {
			fmt.Fprintln(os.Stderr, "mctop:", s.err)
			os.Exit(1)
		}
		os.Stdout.WriteString(render(s, sample{}, false))
		return
	}

	// Flicker-free repaint: hide the cursor, clear once, then home the
	// cursor each frame and erase to end-of-line per line (plus erase-below
	// at the end) instead of clearing the whole screen — a full clear every
	// frame is exactly what makes naive dashboards strobe.
	out := bufio.NewWriter(os.Stdout)
	fmt.Fprint(out, "\x1b[?25l\x1b[2J")
	out.Flush()
	restore := func() {
		fmt.Fprint(os.Stdout, "\x1b[?25h\x1b[0m\n")
	}
	defer restore()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var prev sample
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		cur := poll(client, base)
		frame := render(cur, prev, true)
		fmt.Fprint(out, "\x1b[H", frame, "\x1b[J")
		out.Flush()
		if cur.err == nil {
			prev = cur
		}
		select {
		case <-sig:
			restore()
			os.Exit(0)
		case <-tick.C:
		}
	}
}

// poll fetches one snapshot; a failed endpoint poisons the sample with an
// error the dashboard shows in place of stale numbers.
func poll(client *http.Client, base string) sample {
	s := sample{at: time.Now(), metrics: map[string]float64{}}
	if s.err = getJSON(client, base+"/fleet", &s.fleet); s.err != nil {
		return s
	}
	if s.err = getJSON(client, base+"/stats", &s.stats); s.err != nil {
		return s
	}
	s.metrics, s.version, s.err = getMetrics(client, base+"/metrics")
	return s
}

func getJSON(client *http.Client, url string, into any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// getMetrics parses the Prometheus text exposition into a name→value map
// (unlabelled series only, which covers every counter the dashboard
// reads) and extracts the server's build version from mc_build_info.
func getMetrics(client *http.Client, url string) (map[string]float64, string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, "", fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	m := map[string]float64{}
	version := ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		if base, labels, lab := strings.Cut(name, "{"); lab {
			if base == "mc_build_info" {
				version = labelValue(labels, "version")
			}
			continue
		}
		if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
			m[name] = v
		}
	}
	return m, version, sc.Err()
}

// labelValue pulls one label's value out of a `k="v",k2="v2"}` tail.
func labelValue(labels, key string) string {
	for _, kv := range strings.Split(strings.TrimSuffix(labels, "}"), ",") {
		k, v, ok := strings.Cut(kv, "=")
		if ok && k == key {
			return strings.Trim(v, `"`)
		}
	}
	return ""
}

// render lays out one frame. In ANSI mode every line ends with
// erase-to-EOL so a shorter line fully overwrites its predecessor.
func render(cur, prev sample, ansi bool) string {
	eol := "\n"
	if ansi {
		eol = "\x1b[K\n"
	}
	var b strings.Builder
	line := func(format string, args ...any) {
		fmt.Fprintf(&b, format, args...)
		b.WriteString(eol)
	}

	if cur.err != nil {
		line("mctop  %s", cur.at.Format("15:04:05"))
		line("")
		line("  unreachable: %v", cur.err)
		return b.String()
	}

	// Fleet-wide photons/sec from the reduced-photon counter delta between
	// the last two polls — the server-truth rate, independent of what any
	// worker claims about itself.
	rate := 0.0
	if !prev.at.IsZero() {
		if dt := cur.at.Sub(prev.at).Seconds(); dt > 0 {
			d := cur.metrics["service_photons_reduced_total"] - prev.metrics["service_photons_reduced_total"]
			if d > 0 {
				rate = d / dt
			}
		}
	}

	ver := cur.version
	if ver != "" {
		ver = "  build " + ver
	}
	up := ""
	if u := cur.metrics["process_uptime_seconds"]; u > 0 {
		up = "  up " + (time.Duration(u) * time.Second).String()
	}
	line("mctop  %s%s%s  policy %s", cur.at.Format("15:04:05"), up, ver, cur.stats.Policy)
	line("jobs   %d queued  %d running  %d done  %d canceled",
		cur.stats.JobsQueued, cur.stats.JobsRunning, cur.stats.JobsDone, cur.stats.JobsCanceled)
	line("chunks %d pending  %d outstanding  %s photons reduced  %s photons/s",
		cur.stats.PendingChunks, cur.stats.OutstandingChunks,
		humanCount(float64(cur.stats.PhotonsCompleted)), humanCount(rate))
	line("")

	ws := cur.fleet.Workers
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	line("%-4s %-14s %-12s %10s %10s %7s %5s %6s %8s %s",
		"ID", "WORKER", "REMOTE", "REP-PPS", "INF-PPS", "CHUNKS", "HELD", "GORO", "HEAP", "SEEN")
	if len(ws) == 0 {
		line("  (no workers connected)")
	}
	for _, w := range ws {
		seen := time.Since(w.LastSeen).Round(time.Second)
		if seen < 0 {
			seen = 0
		}
		line("%-4d %-14s %-12s %10s %10s %7d %5d %6d %8s %s ago",
			w.ID, clip(w.Name, 14), clip(w.Remote, 12),
			humanCount(w.ReportedPhotonsPerSec), humanCount(w.InferredPhotonsPerSec),
			w.ChunksCompleted, w.ChunksHeld, w.Goroutines, humanBytes(w.HeapBytes), seen)
	}

	// Per-tenant admission rollup — only drawn once the server reports
	// tenants, so a pre-tenancy server renders exactly the classic frame.
	if ts := cur.fleet.Tenants; len(ts) > 0 {
		line("")
		line("%-14s %6s %6s %9s %6s %10s %9s %9s",
			"TENANT", "WEIGHT", "ACTIVE", "SUBMITTED", "SHED", "PHOTONS", "JOB-TOK", "PHOT-TOK")
		for _, t := range ts {
			line("%-14s %6.1f %6d %9d %6d %10s %9s %9s",
				clip(t.Name, 14), t.Weight, t.ActiveJobs, t.Submitted, t.Shed,
				humanCount(float64(t.Photons)), tokens(t.JobTokens), tokens(t.PhotonTokens))
		}
	}
	return b.String()
}

// tokens renders a bucket level; "∞" when the admission policy keeps no
// bucket for the dimension (nil in the JSON).
func tokens(v *float64) string {
	switch {
	case v == nil:
		return "∞"
	case *v == 0: // a drained bucket is news, not absence
		return "0"
	default:
		return humanCount(*v)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// humanCount renders a rate or count with k/M/G suffixes; "-" for zero so
// a worker that has not reported yet reads as absent, not as slow.
func humanCount(v float64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func humanBytes(v uint64) string {
	switch {
	case v == 0:
		return "-"
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.0fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
