// Command mcbench measures the repository's headline throughput numbers
// and writes them to a machine-readable JSON file, seeding the performance
// trajectory across PRs (`make bench` → BENCH_pr3.json, alongside the
// committed BENCH_pr2.json for comparison):
//
//   - photons/sec of the layered kernel (Table 1 adult head),
//   - photons/sec of the voxel kernel (the same head voxelized),
//   - heap allocations per photon for both kernels (the hot path is
//     designed to allocate nothing after warm-up),
//   - jobs/sec of the service registry draining many small jobs over an
//     in-memory worker fleet (scheduling + reduction overhead).
//
// -quick shrinks every budget for CI smoke runs (seconds, not minutes);
// its numbers are noisy and only prove the harness still works.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/detector"
	"repro/internal/distsys"
	"repro/internal/mc"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// Report is the JSON schema of the benchmark output.
type Report struct {
	GoVersion string `json:"goVersion"`
	NumCPU    int    `json:"numCPU"`
	Quick     bool   `json:"quick,omitempty"`
	Photons   int64  `json:"photonsPerKernelRun"`

	LayeredPhotonsPerSec   float64 `json:"layeredPhotonsPerSec"`
	LayeredAllocsPerPhoton float64 `json:"layeredAllocsPerPhoton"`
	LayeredBytesPerPhoton  float64 `json:"layeredBytesPerPhoton"`

	VoxelPhotonsPerSec   float64 `json:"voxelPhotonsPerSec"`
	VoxelAllocsPerPhoton float64 `json:"voxelAllocsPerPhoton"`
	VoxelBytesPerPhoton  float64 `json:"voxelBytesPerPhoton"`

	RegistryJobs       int     `json:"registryJobs"`
	RegistryJobsPerSec float64 `json:"registryJobsPerSec"`
	Timestamp          string  `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_pr3.json", "output JSON path")
	photons := flag.Int64("photons", 200_000, "photons per kernel benchmark run")
	jobs := flag.Int("jobs", 32, "jobs for the registry benchmark")
	workers := flag.Int("workers", 4, "fleet size for the registry benchmark")
	quick := flag.Bool("quick", false, "CI smoke mode: tiny budgets, noisy numbers")
	flag.Parse()

	if *quick {
		*photons = 5_000
		*jobs = 4
		*workers = 2
	}

	rep := Report{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Photons:   *photons,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	head := tissue.AdultHead()
	layered := &mc.Config{
		Model:    head,
		Detector: detector.Annulus{RMin: 10, RMax: 30},
	}
	rep.LayeredPhotonsPerSec, rep.LayeredAllocsPerPhoton, rep.LayeredBytesPerPhoton =
		kernelRate(layered, *photons)
	fmt.Printf("layered kernel: %.0f photons/sec, %.4f allocs/photon\n",
		rep.LayeredPhotonsPerSec, rep.LayeredAllocsPerPhoton)

	grid, err := voxel.FromModel(head, 120, 120, 80, 1, 1, 0.5)
	if err != nil {
		fatal(err)
	}
	voxCfg := &mc.Config{
		Geometry: grid,
		Detector: detector.Annulus{RMin: 10, RMax: 30},
	}
	rep.VoxelPhotonsPerSec, rep.VoxelAllocsPerPhoton, rep.VoxelBytesPerPhoton =
		kernelRate(voxCfg, *photons)
	fmt.Printf("voxel kernel:   %.0f photons/sec, %.4f allocs/photon\n",
		rep.VoxelPhotonsPerSec, rep.VoxelAllocsPerPhoton)

	rep.RegistryJobs = *jobs
	rep.RegistryJobsPerSec = registryRate(*jobs, *workers)
	fmt.Printf("registry:       %.1f jobs/sec (%d jobs over %d workers)\n",
		rep.RegistryJobsPerSec, *jobs, *workers)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// kernelRate runs the config once (plus a small warm-up that also builds
// the geometry accelerators) and returns photons/sec across all cores plus
// heap allocations and bytes per photon during the timed run. The
// allocation figures come from runtime.MemStats deltas, so they include
// the per-run fixed cost (kernels, tallies, merge) amortised over the
// photon budget — the hot loop itself allocates nothing.
func kernelRate(cfg *mc.Config, photons int64) (rate, allocsPerPhoton, bytesPerPhoton float64) {
	if _, err := mc.RunParallel(cfg, photons/10+1, 1, 0); err != nil {
		fatal(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := mc.RunParallel(cfg, photons, 1, 0); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return float64(photons) / elapsed,
		float64(m1.Mallocs-m0.Mallocs) / float64(photons),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(photons)
}

// registryRate submits many small distinct jobs to one registry, drains
// them over an in-memory pipe fleet, and returns completed jobs/sec —
// dominated by scheduling, wire codec and reduction overhead, not physics.
func registryRate(jobs, workers int) float64 {
	reg := service.New(service.Options{DrainOnEmpty: true, CacheSize: -1})
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	handles := make([]*service.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := mc.NewSpec(model,
			source.Spec{Kind: source.KindPencil},
			detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
		out, err := reg.Submit(service.JobSpec{
			Spec:         spec,
			TotalPhotons: 1000,
			ChunkPhotons: 250,
			Seed:         uint64(i + 1), // distinct seeds → distinct jobs
		})
		if err != nil {
			fatal(err)
		}
		handles = append(handles, out.Job)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			distsys.Work(client, distsys.WorkerOptions{Name: fmt.Sprintf("bench-%d", w)})
		}(w)
	}
	for _, j := range handles {
		if _, err := j.Wait(5 * time.Minute); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()
	wg.Wait()
	return float64(jobs) / elapsed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	os.Exit(1)
}
