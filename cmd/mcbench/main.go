// Command mcbench measures the repository's headline throughput numbers
// and writes them to a machine-readable JSON file, seeding the performance
// trajectory across PRs (`make bench` → BENCH_pr10.json, alongside the
// committed BENCH_pr2/pr3/pr4/pr7/pr9.json for comparison):
//
//   - photons/sec of the layered kernel (Table 1 adult head),
//   - photons/sec of the voxel kernel (the same head voxelized),
//   - heap allocations per photon for both kernels,
//   - jobs/sec of the service registry draining many small jobs over an
//     in-memory worker fleet. This workload is unchanged since PR 2 for
//     trajectory comparability — and is physics-bound on a small host
//     (the result plane contributes only a few percent), so it moves with
//     kernel speed, not wire speed;
//   - the sharded control plane A/B: the same near-zero-physics workload
//     over one registry vs four independent registries with submissions
//     routed by content key (the mcgate split), measured on this host and
//     modeled under the paper's master-bound campus-LAN parameters. The
//     measured arms share this host's cores, so on a small machine they
//     understate the win; the modeled arms price exactly the serial-master
//     term the sharding divides;
//   - jobs/sec of the *service plane* proper: near-zero-physics jobs
//     drained twice on the same host — once by legacy-style per-chunk
//     gob-tally clients (the PR 3 wire behaviour, still spoken by the
//     protocol), once by the v3 batched pre-reducing clients — so the
//     result-plane overhaul is measured against itself, not against
//     photon transport — plus the same workload with the workers'
//     piggybacked telemetry reports on vs off, pricing them;
//   - the end-to-end distributed check: one realistic scoring job run
//     locally with RunParallel and over a 3-worker in-memory fleet, with
//     wire bytes per chunk under the gob and compact tally codecs.
//
// -quick shrinks every budget for CI smoke runs (seconds, not minutes);
// its numbers are noisy and only prove the harness still works.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/detector"
	"repro/internal/distsys"
	"repro/internal/mc"
	"repro/internal/protocol"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
	"repro/internal/wal"
)

// Report is the JSON schema of the benchmark output.
type Report struct {
	GoVersion string `json:"goVersion"`
	NumCPU    int    `json:"numCPU"`
	Quick     bool   `json:"quick,omitempty"`
	Photons   int64  `json:"photonsPerKernelRun"`

	LayeredPhotonsPerSec   float64 `json:"layeredPhotonsPerSec"`
	LayeredAllocsPerPhoton float64 `json:"layeredAllocsPerPhoton"`
	LayeredBytesPerPhoton  float64 `json:"layeredBytesPerPhoton"`

	VoxelPhotonsPerSec   float64 `json:"voxelPhotonsPerSec"`
	VoxelAllocsPerPhoton float64 `json:"voxelAllocsPerPhoton"`
	VoxelBytesPerPhoton  float64 `json:"voxelBytesPerPhoton"`

	RegistryJobs       int     `json:"registryJobs"`
	RegistryJobsPerSec float64 `json:"registryJobsPerSec"`

	// Service-plane A/B: identical near-zero-physics jobs drained by
	// legacy per-chunk clients vs v3 batched clients.
	ServicePlaneJobs              int     `json:"servicePlaneJobs"`
	ServicePlaneChunksPerJob      int     `json:"servicePlaneChunksPerJob"`
	ServicePlaneLegacyJobsPerSec  float64 `json:"servicePlaneLegacyJobsPerSec"`
	ServicePlaneBatchedJobsPerSec float64 `json:"servicePlaneBatchedJobsPerSec"`
	ServicePlaneSpeedup           float64 `json:"servicePlaneSpeedup"`
	// Per-chunk overhead after subtracting the measured compute cost of
	// the same chunks run directly — the "fixed per-chunk overhead of the
	// distributed path" this PR attacks.
	ServicePlanePhysicsUsPerChunk float64 `json:"servicePlanePhysicsUsPerChunk"`
	OverheadLegacyUsPerChunk      float64 `json:"overheadLegacyUsPerChunk"`
	OverheadBatchedUsPerChunk     float64 `json:"overheadBatchedUsPerChunk"`
	ServicePlaneOverheadReduction float64 `json:"servicePlaneOverheadReduction"`

	// Telemetry A/B: the same batched workload with the workers'
	// piggybacked reports on (the default) vs off, server options
	// identical — the cost of the telemetry itself, which must stay
	// within noise (<3%). Best-of over interleaved paired rounds.
	TelemetryOnJobsPerSec  float64 `json:"telemetryOnJobsPerSec"`
	TelemetryOffJobsPerSec float64 `json:"telemetryOffJobsPerSec"`
	TelemetryOverheadPct   float64 `json:"telemetryOverheadPct"`

	// WAL A/B: the same batched service-plane workload with the crash
	// journal off vs on (fsync policy "interval", the production
	// default) — the price of crash durability on the control plane,
	// which must stay within a few percent. Best-of over interleaved
	// paired rounds, like the telemetry A/B.
	WALOffJobsPerSec float64 `json:"walOffJobsPerSec"`
	WALOnJobsPerSec  float64 `json:"walOnJobsPerSec"`
	WALOverheadPct   float64 `json:"walOverheadPct"`

	// Sharded control plane A/B: the batched service-plane workload over
	// one registry vs ShardPlaneShards independent registries, submissions
	// routed by ShardOfKey on the content key — the in-process equivalent
	// of mcgate over N mcqueues. The measured arms run on this host, where
	// every shard master shares the same cores: on a few-core machine they
	// understate the win badly and are reported for trajectory honesty
	// only. The model arms run the cluster package's serial-master event
	// simulation under master-bound campus-LAN parameters (64 workers,
	// 3 ms serial master service, ~30 ms chunks), where the makespan is
	// chunks × MasterService and N masters divide it — the configuration
	// the paper's Section 4 model prices and the one this PR's sharding
	// exists for. ShardModelSpeedup is the headline ≥3× number.
	ShardPlaneShards          int     `json:"shardPlaneShards"`
	ShardPlane1JobsPerSec     float64 `json:"shardPlane1JobsPerSec"`
	ShardPlaneNJobsPerSec     float64 `json:"shardPlaneNJobsPerSec"`
	ShardPlaneMeasuredSpeedup float64 `json:"shardPlaneMeasuredSpeedup"`
	ShardModelWorkers         int     `json:"shardModelWorkers"`
	ShardModelPhotons         int64   `json:"shardModelPhotons"`
	ShardModel1MakespanSec    float64 `json:"shardModel1MakespanSec"`
	ShardModelNMakespanSec    float64 `json:"shardModelNMakespanSec"`
	ShardModelSpeedup         float64 `json:"shardModelSpeedup"`

	// End-to-end distributed vs local on the same realistic job.
	DistributedWorkers       int     `json:"distributedWorkers"`
	LocalPhotonsPerSec       float64 `json:"localPhotonsPerSec"`
	DistributedPhotonsPerSec float64 `json:"distributedPhotonsPerSec"`
	DistributedVsLocal       float64 `json:"distributedVsLocal"`
	DistributedBatches       int64   `json:"distributedBatches"`
	DistributedTallyMerges   int64   `json:"distributedTallyMerges"`
	DistributedMergesPerSec  float64 `json:"distributedMergesPerSec"`

	// Wire cost of one chunk result of the distributed job above.
	WireBytesPerChunkGob     int     `json:"wireBytesPerChunkGob"`
	WireBytesPerChunkCompact int     `json:"wireBytesPerChunkCompact"`
	WireBytesRatio           float64 `json:"wireBytesRatio"`

	Timestamp string `json:"timestamp"`
}

func main() {
	out := flag.String("out", "BENCH_pr10.json", "output JSON path")
	photons := flag.Int64("photons", 200_000, "photons per kernel benchmark run")
	jobs := flag.Int("jobs", 32, "jobs for the registry benchmark")
	workers := flag.Int("workers", 4, "fleet size for the registry benchmark")
	distPhotons := flag.Int64("dist-photons", 45_000, "photons for the distributed end-to-end benchmark")
	quick := flag.Bool("quick", false, "CI smoke mode: tiny budgets, noisy numbers")
	flag.Parse()

	planeJobs, planeChunks := 48, 16
	if *quick {
		*photons = 5_000
		*jobs = 4
		*workers = 2
		*distPhotons = 3_000
		planeJobs, planeChunks = 6, 8
	}

	rep := Report{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Quick:     *quick,
		Photons:   *photons,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}

	head := tissue.AdultHead()
	layered := &mc.Config{
		Model:    head,
		Detector: detector.Annulus{RMin: 10, RMax: 30},
	}
	rep.LayeredPhotonsPerSec, rep.LayeredAllocsPerPhoton, rep.LayeredBytesPerPhoton =
		kernelRate(layered, *photons)
	fmt.Printf("layered kernel: %.0f photons/sec, %.4f allocs/photon\n",
		rep.LayeredPhotonsPerSec, rep.LayeredAllocsPerPhoton)

	grid, err := voxel.FromModel(head, 120, 120, 80, 1, 1, 0.5)
	if err != nil {
		fatal(err)
	}
	voxCfg := &mc.Config{
		Geometry: grid,
		Detector: detector.Annulus{RMin: 10, RMax: 30},
	}
	rep.VoxelPhotonsPerSec, rep.VoxelAllocsPerPhoton, rep.VoxelBytesPerPhoton =
		kernelRate(voxCfg, *photons)
	fmt.Printf("voxel kernel:   %.0f photons/sec, %.4f allocs/photon\n",
		rep.VoxelPhotonsPerSec, rep.VoxelAllocsPerPhoton)

	rep.RegistryJobs = *jobs
	rep.RegistryJobsPerSec = registryRate(*jobs, *workers, batchedClient)
	fmt.Printf("registry:       %.1f jobs/sec (%d jobs over %d workers; physics-bound)\n",
		rep.RegistryJobsPerSec, *jobs, *workers)

	defaultOpts := service.Options{DrainOnEmpty: true, CacheSize: -1}
	rep.ServicePlaneJobs = planeJobs
	rep.ServicePlaneChunksPerJob = planeChunks
	rep.ServicePlaneLegacyJobsPerSec = servicePlaneRate(planeJobs, planeChunks, *workers, legacyClient, defaultOpts)
	rep.ServicePlaneBatchedJobsPerSec = servicePlaneRate(planeJobs, planeChunks, *workers, batchedClient, defaultOpts)
	rep.ServicePlaneSpeedup = rep.ServicePlaneBatchedJobsPerSec / rep.ServicePlaneLegacyJobsPerSec
	rep.ServicePlanePhysicsUsPerChunk = servicePlanePhysics(planeJobs, planeChunks)
	perChunk := func(jobsPerSec float64) float64 {
		return 1e6/(jobsPerSec*float64(planeChunks)) - rep.ServicePlanePhysicsUsPerChunk
	}
	rep.OverheadLegacyUsPerChunk = perChunk(rep.ServicePlaneLegacyJobsPerSec)
	rep.OverheadBatchedUsPerChunk = perChunk(rep.ServicePlaneBatchedJobsPerSec)
	rep.ServicePlaneOverheadReduction = rep.OverheadLegacyUsPerChunk / rep.OverheadBatchedUsPerChunk
	fmt.Printf("service plane:  %.1f legacy vs %.1f batched jobs/sec (%.2fx, %d jobs × %d chunks); "+
		"overhead %.1f → %.1f µs/chunk (%.2fx) over %.1f µs physics\n",
		rep.ServicePlaneLegacyJobsPerSec, rep.ServicePlaneBatchedJobsPerSec,
		rep.ServicePlaneSpeedup, planeJobs, planeChunks,
		rep.OverheadLegacyUsPerChunk, rep.OverheadBatchedUsPerChunk,
		rep.ServicePlaneOverheadReduction, rep.ServicePlanePhysicsUsPerChunk)

	// Telemetry A/B on the wire-bound workload, where a report's marginal
	// bytes would show if they cost anything. The arms differ ONLY in the
	// worker reports (server options identical — span stamps and event
	// traces run in both, they are not what is being priced), and they
	// interleave over paired rounds with best-of scoring so scheduler and
	// GC drift lands on both arms instead of masquerading as overhead.
	for round := 0; round < 3; round++ {
		on := servicePlaneRate(planeJobs, planeChunks, *workers, batchedClient, defaultOpts)
		off := servicePlaneRate(planeJobs, planeChunks, *workers, quietClient, defaultOpts)
		rep.TelemetryOnJobsPerSec = math.Max(rep.TelemetryOnJobsPerSec, on)
		rep.TelemetryOffJobsPerSec = math.Max(rep.TelemetryOffJobsPerSec, off)
	}
	rep.TelemetryOverheadPct = 100 * (rep.TelemetryOffJobsPerSec - rep.TelemetryOnJobsPerSec) /
		rep.TelemetryOffJobsPerSec
	fmt.Printf("telemetry A/B:  %.1f on vs %.1f off jobs/sec (%.2f%% overhead)\n",
		rep.TelemetryOnJobsPerSec, rep.TelemetryOffJobsPerSec, rep.TelemetryOverheadPct)

	// WAL A/B on the same wire-bound workload: the journal's appends ride
	// every accept, chunk batch, snapshot and finalize, so any real cost
	// shows here. Same interleaved best-of discipline as the telemetry
	// A/B so host drift does not masquerade as journal overhead.
	for round := 0; round < 3; round++ {
		off := servicePlaneRate(planeJobs, planeChunks, *workers, batchedClient, defaultOpts)
		on := walPlaneRate(planeJobs, planeChunks, *workers, batchedClient)
		rep.WALOffJobsPerSec = math.Max(rep.WALOffJobsPerSec, off)
		rep.WALOnJobsPerSec = math.Max(rep.WALOnJobsPerSec, on)
	}
	rep.WALOverheadPct = 100 * (rep.WALOffJobsPerSec - rep.WALOnJobsPerSec) /
		rep.WALOffJobsPerSec
	fmt.Printf("wal A/B:        %.1f off vs %.1f on jobs/sec (%.2f%% overhead)\n",
		rep.WALOffJobsPerSec, rep.WALOnJobsPerSec, rep.WALOverheadPct)

	// Sharded control plane A/B: measured on this host (best-of over
	// interleaved rounds, same discipline as the other A/Bs) and modeled
	// under master-bound parameters where the serial master is the
	// bottleneck sharding removes.
	const shardN = 4
	rep.ShardPlaneShards = shardN
	for round := 0; round < 3; round++ {
		one := shardPlaneRate(planeJobs, planeChunks, 2*shardN, 1, batchedClient)
		n := shardPlaneRate(planeJobs, planeChunks, 2*shardN, shardN, batchedClient)
		rep.ShardPlane1JobsPerSec = math.Max(rep.ShardPlane1JobsPerSec, one)
		rep.ShardPlaneNJobsPerSec = math.Max(rep.ShardPlaneNJobsPerSec, n)
	}
	rep.ShardPlaneMeasuredSpeedup = rep.ShardPlaneNJobsPerSec / rep.ShardPlane1JobsPerSec
	shardModelBench(&rep, shardN)
	fmt.Printf("shard plane:    measured %.1f → %.1f jobs/sec at %d shards (%.2fx on %d cores); "+
		"modeled %.2fs → %.2fs makespan (%.2fx, %d workers, master-bound)\n",
		rep.ShardPlane1JobsPerSec, rep.ShardPlaneNJobsPerSec, shardN,
		rep.ShardPlaneMeasuredSpeedup, rep.NumCPU,
		rep.ShardModel1MakespanSec, rep.ShardModelNMakespanSec,
		rep.ShardModelSpeedup, rep.ShardModelWorkers)

	distributedBench(&rep, *distPhotons, 3)
	fmt.Printf("distributed:    %.0f photons/sec over %d workers vs %.0f local (%.2fx), "+
		"%d merges (%.1f/sec), wire %dB gob → %dB compact per chunk (%.1fx)\n",
		rep.DistributedPhotonsPerSec, rep.DistributedWorkers, rep.LocalPhotonsPerSec,
		rep.DistributedVsLocal, rep.DistributedTallyMerges, rep.DistributedMergesPerSec,
		rep.WireBytesPerChunkGob, rep.WireBytesPerChunkCompact, rep.WireBytesRatio)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// kernelRate runs the config once (plus a small warm-up that also builds
// the geometry accelerators) and returns photons/sec across all cores plus
// heap allocations and bytes per photon during the timed run.
func kernelRate(cfg *mc.Config, photons int64) (rate, allocsPerPhoton, bytesPerPhoton float64) {
	if _, err := mc.RunParallel(cfg, photons/10+1, 1, 0); err != nil {
		fatal(err)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := mc.RunParallel(cfg, photons, 1, 0); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	return float64(photons) / elapsed,
		float64(m1.Mallocs-m0.Mallocs) / float64(photons),
		float64(m1.TotalAlloc-m0.TotalAlloc) / float64(photons)
}

// client drains a registry over one connection until the service is done.
type client func(rw net.Conn, name string)

// batchedClient is the production worker: v3 batched pre-reduction with
// the compact tally codec, telemetry reports on (the default).
func batchedClient(rw net.Conn, name string) {
	distsys.Work(rw, distsys.WorkerOptions{Name: name})
}

// quietClient is batchedClient with telemetry reporting disabled — the
// "off" arm of the telemetry A/B.
func quietClient(rw net.Conn, name string) {
	distsys.Work(rw, distsys.WorkerOptions{Name: name, DisableTelemetry: true})
}

// legacyClient reproduces the PR 3-era wire behaviour on today's protocol:
// one TaskRequest/TaskAssign round trip plus one TaskResult/ResultAck
// round trip per chunk, the tally travelling as a gob *mc.Tally. The
// service still speaks this path, which makes it the honest baseline for
// the result-plane A/B.
func legacyClient(rw net.Conn, name string) {
	pc := protocol.NewConn(rw)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: name}}); err != nil {
		return
	}
	if _, err := pc.Recv(); err != nil {
		return
	}
	type rt struct {
		cfg     *mc.Config
		seed    uint64
		streams int
		fan     int
	}
	jobs := map[uint64]*rt{}
	var known []uint64
	for {
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
			Request: &protocol.TaskRequest{KnownJobs: known}}); err != nil {
			return
		}
		msg, err := pc.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			r := jobs[a.JobID]
			if r == nil {
				if a.Job == nil {
					return
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return
				}
				r = &rt{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams, fan: a.Job.Fan}
				jobs[a.JobID] = r
				known = append(known, a.JobID)
			}
			tally, err := mc.RunStreamFan(r.cfg, a.Photons, r.seed, a.Stream, r.streams, r.fan)
			if err != nil {
				return
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskResult,
				Result: &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tally}}); err != nil {
				return
			}
			if _, err := pc.Recv(); err != nil {
				return
			}
		case protocol.MsgNoWork:
			if msg.NoWork.Done {
				return
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			return
		}
	}
}

// registryRate submits many small distinct jobs to one registry, drains
// them over an in-memory pipe fleet, and returns completed jobs/sec. The
// workload is unchanged since PR 2; on a small host it is physics-bound
// (≈13 ms of photon transport per job), so treat it as a whole-system
// number, not a wire number.
func registryRate(jobs, workers int, c client) float64 {
	reg := service.New(service.Options{DrainOnEmpty: true, CacheSize: -1})
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	handles := make([]*service.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := mc.NewSpec(model,
			source.Spec{Kind: source.KindPencil},
			detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
		out, err := reg.Submit(service.JobSpec{
			Spec:         spec,
			TotalPhotons: 1000,
			ChunkPhotons: 250,
			Seed:         uint64(i + 1), // distinct seeds → distinct jobs
		})
		if err != nil {
			fatal(err)
		}
		handles = append(handles, out.Job)
	}
	return drain(reg, handles, workers, c)
}

// servicePlaneRate is registryRate with photon transport reduced to noise
// (one photon per chunk): jobs/sec here is scheduling, wire codec and
// reduction cost — the plane this PR overhauls — measured per client kind.
func servicePlaneRate(jobs, chunksPerJob, workers int, c client, opts service.Options) float64 {
	reg := service.New(opts)
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	handles := make([]*service.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := mc.NewSpec(model,
			source.Spec{Kind: source.KindPencil},
			detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
		out, err := reg.Submit(service.JobSpec{
			Spec:         spec,
			TotalPhotons: int64(chunksPerJob),
			ChunkPhotons: 1,
			Seed:         uint64(i + 1),
		})
		if err != nil {
			fatal(err)
		}
		handles = append(handles, out.Job)
	}
	return drain(reg, handles, workers, c)
}

// shardPlaneRate is the service-plane workload split across `shards`
// independent registries, each submission routed by ShardOfKey on its
// content key — exactly how mcgate partitions mcqueues, collapsed into
// one process. totalWorkers divide evenly across the shards (each shard
// keeps at least one), so the 1-shard and N-shard arms drive the same
// fleet size. On a host with fewer free cores than workers the arms
// serialize onto the same silicon and the measured speedup understates;
// see the model arms for the master-bound regime.
func shardPlaneRate(jobs, chunksPerJob, totalWorkers, shards int, c client) float64 {
	regs := make([]*service.Registry, shards)
	for s := range regs {
		regs[s] = service.New(service.Options{DrainOnEmpty: true, CacheSize: -1})
	}
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	handles := make([]*service.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		spec := mc.NewSpec(model,
			source.Spec{Kind: source.KindPencil},
			detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
		js := service.JobSpec{
			Spec:         spec,
			TotalPhotons: int64(chunksPerJob),
			ChunkPhotons: 1,
			Seed:         uint64(i + 1),
		}
		key, _, err := service.RoutingKeys(&js, 0)
		if err != nil {
			fatal(err)
		}
		out, err := regs[service.ShardOfKey(key, shards)].Submit(js)
		if err != nil {
			fatal(err)
		}
		handles = append(handles, out.Job)
	}
	perShard := totalWorkers / shards
	if perShard < 1 {
		perShard = 1
	}
	start := time.Now()
	var wg sync.WaitGroup
	for s, reg := range regs {
		for w := 0; w < perShard; w++ {
			server, pipeClient := net.Pipe()
			go reg.HandleConn(server)
			wg.Add(1)
			go func(s, w int) {
				defer wg.Done()
				c(pipeClient, fmt.Sprintf("bench-s%d-%d", s, w))
			}(s, w)
		}
	}
	for _, j := range handles {
		if _, err := j.Wait(5 * time.Minute); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()
	wg.Wait()
	return float64(len(handles)) / elapsed
}

// shardModelBench runs the cluster package's serial-master simulation in
// the master-bound regime — 64 homogeneous 233 Mflops workers, campus-LAN
// 3 ms serial master service, fixed 100-photon (~30 ms) chunks — once with
// one master over the whole fleet, once sharded 4 ways. One master can
// feed ~10 such workers; 64 queue on it and the makespan degenerates to
// chunks × MasterService, which N masters divide. This is the deployment
// the sharded control plane targets, independent of this host's core count.
func shardModelBench(rep *Report, shards int) {
	fleet := cluster.Homogeneous(64, 233)
	netw := cluster.CampusLAN()
	p := cluster.Params{
		TotalPhotons: 200_000,
		Policy:       sched.FixedChunk{Photons: 100},
		Seed:         7,
	}
	one := cluster.Simulate(fleet, netw, p)
	n := cluster.SimulateSharded(fleet, netw, p, shards)
	rep.ShardModelWorkers = len(fleet)
	rep.ShardModelPhotons = p.TotalPhotons
	rep.ShardModel1MakespanSec = one.Makespan.Seconds()
	rep.ShardModelNMakespanSec = n.Makespan.Seconds()
	rep.ShardModelSpeedup = rep.ShardModel1MakespanSec / rep.ShardModelNMakespanSec
}

// walPlaneRate is the batched service-plane workload with the crash
// journal armed on a throwaway directory: every accept, reduced chunk
// batch, amortized snapshot and finalize is write-ahead logged under the
// production-default "interval" fsync policy. Jobs/sec here against the
// journal-off arm prices crash durability.
func walPlaneRate(jobs, chunksPerJob, workers int, c client) float64 {
	dir, err := os.MkdirTemp("", "mcbench-wal")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	wlog, _, err := wal.Open(wal.Options{Dir: dir, Fsync: wal.FsyncInterval})
	if err != nil {
		fatal(err)
	}
	defer wlog.Close()
	journal := service.NewJournal(wlog, service.JournalOptions{})
	return servicePlaneRate(jobs, chunksPerJob, workers, c,
		service.Options{DrainOnEmpty: true, CacheSize: -1, Journal: journal})
}

// servicePlanePhysics measures the bare compute cost of the service-plane
// workload's chunks — the same per-job runner + stream-cache path a worker
// uses, with no registry, wire or reduction — in µs per chunk.
func servicePlanePhysics(jobs, chunksPerJob int) float64 {
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	spec := mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	start := time.Now()
	for i := 0; i < jobs; i++ {
		cfg, err := spec.Build()
		if err != nil {
			fatal(err)
		}
		runner, err := mc.NewRunner(cfg)
		if err != nil {
			fatal(err)
		}
		cache := rng.NewStreamCache(uint64(i + 1))
		for s := 0; s < chunksPerJob; s++ {
			runner.Run(1, cache.Stream(s))
		}
	}
	return time.Since(start).Seconds() * 1e6 / float64(jobs*chunksPerJob)
}

func drain(reg *service.Registry, handles []*service.Job, workers int, c client) float64 {
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		server, pipeClient := net.Pipe()
		go reg.HandleConn(server)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c(pipeClient, fmt.Sprintf("bench-%d", w))
		}(w)
	}
	for _, j := range handles {
		if _, err := j.Wait(5 * time.Minute); err != nil {
			fatal(err)
		}
	}
	elapsed := time.Since(start).Seconds()
	wg.Wait()
	return float64(len(handles)) / elapsed
}

// distributedBench runs one realistic scoring job (adult head, annulus
// detector, 50³ detected-path grid) locally with RunParallel and then over
// a 3-worker in-memory fleet through the full v3 result plane, recording
// the throughput ratio, the reduction counters, and the wire bytes of one
// chunk result under both tally codecs.
func distributedBench(rep *Report, photons int64, workers int) {
	spec := mc.NewSpec(tissue.AdultHead(),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 10, RMax: 30})
	spec.PathGrid = &mc.GridSpec{N: 50, Edge: 60}

	// ~230-photon chunks: the dynamic self-scheduling granularity of the
	// paper's platform, and a chunk tally sparse enough that the wire
	// numbers reflect real per-chunk traffic.
	chunk := int64(230)
	nChunks := (photons + chunk - 1) / chunk
	const seed = 7

	cfg, err := spec.Build()
	if err != nil {
		fatal(err)
	}
	// Warm-up (builds tables) + wire-cost measurement on one real chunk.
	chunkTally, err := mc.RunStream(cfg, chunk, seed, 0, int(nChunks))
	if err != nil {
		fatal(err)
	}
	gobBytes, err := mc.GobTallyCodec{}.EncodeTally(chunkTally)
	if err != nil {
		fatal(err)
	}
	compactBytes := mc.AppendTally(nil, chunkTally)
	rep.WireBytesPerChunkGob = len(gobBytes)
	rep.WireBytesPerChunkCompact = len(compactBytes)
	rep.WireBytesRatio = float64(len(gobBytes)) / float64(len(compactBytes))

	start := time.Now()
	if _, err := mc.RunParallel(cfg, photons, seed, 0); err != nil {
		fatal(err)
	}
	rep.LocalPhotonsPerSec = float64(photons) / time.Since(start).Seconds()

	reg := service.New(service.Options{DrainOnEmpty: true, CacheSize: -1})
	out, err := reg.Submit(service.JobSpec{
		Spec:         spec,
		TotalPhotons: photons,
		ChunkPhotons: chunk,
		Seed:         seed,
		Fan:          runtime.GOMAXPROCS(0), // one chunk saturates a worker's cores
	})
	if err != nil {
		fatal(err)
	}
	start = time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		server, pipeClient := net.Pipe()
		go reg.HandleConn(server)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			distsys.Work(pipeClient, distsys.WorkerOptions{Name: fmt.Sprintf("dist-%d", w)})
		}(w)
	}
	if _, err := out.Job.Wait(10 * time.Minute); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	wg.Wait()

	stats := reg.Stats()
	rep.DistributedWorkers = workers
	rep.DistributedPhotonsPerSec = float64(photons) / elapsed
	rep.DistributedVsLocal = rep.DistributedPhotonsPerSec / rep.LocalPhotonsPerSec
	rep.DistributedBatches = stats.BatchesReduced
	rep.DistributedTallyMerges = stats.TallyMerges
	rep.DistributedMergesPerSec = float64(stats.TallyMerges) / elapsed
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcbench:", err)
	os.Exit(1)
}
