// Command mcworker is the client half of the distributed platform (the
// paper's "Algorithm" class): it connects to a server — the single-job
// mcserver or the multi-job mcqueue, the protocol is identical — pulls
// simulation chunks of whatever jobs the fleet is running, computes them
// and returns the tallies, until the server reports the service done.
//
// Example:
//
//	mcworker -addr localhost:9876 -name lab-pc-07
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/distsys"
)

func main() {
	addr := flag.String("addr", "localhost:9876", "DataManager address")
	name := flag.String("name", hostnameDefault(), "worker name reported to the server")
	mflops := flag.Float64("mflops", 0, "self-reported processing rate (informational)")
	slowdown := flag.Float64("slowdown", 0,
		"artificial slowdown factor (testing heterogeneous fleets)")
	verbose := flag.Bool("v", false, "log each chunk")
	flag.Parse()

	opts := distsys.WorkerOptions{
		Name:     *name,
		Mflops:   *mflops,
		Slowdown: *slowdown,
	}
	if *verbose {
		opts.Logf = log.Printf
	}

	start := time.Now()
	stats, err := distsys.WorkTCP(*addr, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcworker:", err)
		os.Exit(1)
	}
	fmt.Printf("done: %d chunks, %d photons, %.1fs compute, %.1fs wall\n",
		stats.Chunks, stats.Photons, stats.Compute.Seconds(), time.Since(start).Seconds())
	if stats.Rejected > 0 {
		fmt.Printf("note: %d result(s) rejected by the server (stale or reassigned chunks)\n",
			stats.Rejected)
	}
}

func hostnameDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
