// Command mcworker is the client half of the distributed platform (the
// paper's "Algorithm" class): it connects to a server — the single-job
// mcserver or the multi-job mcqueue, the protocol is identical — pulls
// simulation chunks of whatever jobs the fleet is running, computes them
// and returns the tallies, until the server reports the service done.
//
// Example:
//
//	mcworker -addr localhost:9876 -name lab-pc-07
//
// -debug-addr starts an HTTP debug listener serving GET /metrics (photons
// simulated, per-chunk compute-time histogram, batch flushes, wire
// frame/byte counters), GET /healthz, GET /readyz (ready once the server
// session is established) and net/http/pprof. Logging is structured
// (-log-format text|json); -v only lowers the level to debug.
//
// The worker survives a restarting server: by default it redials after
// dial failures and dropped sessions under exponential backoff with
// jitter (-reconnect=false restores the old exit-on-first-error
// behaviour; -reconnect-max caps the backoff). -addr may list several
// comma-separated endpoints — a shard's primary and its lease-file
// standbys — and reconnect attempts rotate through them, so the worker
// follows a failover to whichever process inherited the shard. SIGTERM/SIGINT drain
// gracefully — the current chunk finishes, the held pre-reduced batch
// flushes, then the process exits.
//
// The worker also piggybacks a small telemetry report on its chunk
// requests — smoothed photons/sec, per-chunk compute and encode seconds,
// goroutine and heap stats, build version — which the server surfaces on
// GET /fleet. -no-telemetry suppresses it (the wire protocol is
// unchanged either way; a report is an optional field).
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/distsys"
	"repro/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:9876",
		"DataManager address, or a comma-separated list (shard primary,standby: dial attempts rotate)")
	debugAddr := flag.String("debug-addr", "",
		"HTTP listener for /metrics, /healthz, /readyz and /debug/pprof (empty: disabled)")
	name := flag.String("name", hostnameDefault(), "worker name reported to the server")
	mflops := flag.Float64("mflops", 0, "self-reported processing rate (informational)")
	slowdown := flag.Float64("slowdown", 0,
		"artificial slowdown factor (testing heterogeneous fleets)")
	flushChunks := flag.Int("flush-chunks", 0,
		"chunk results pre-reduced into one batch before it must flush "+
			"(0: the default; 1: per-chunk results, a deterministic tally fold)")
	noTelemetry := flag.Bool("no-telemetry", false,
		"do not piggyback worker telemetry reports on chunk requests")
	reconnect := flag.Bool("reconnect", true,
		"redial after dial failures and dropped sessions (exponential backoff with jitter)")
	reconnectMax := flag.Duration("reconnect-max", distsys.DefaultReconnectMax,
		"backoff ceiling between reconnect attempts")
	var lf cli.LogFlags
	lf.Register(flag.CommandLine)
	flag.Parse()

	logger, err := lf.Build(os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcworker:", err)
		os.Exit(1)
	}
	oreg := obs.NewRegistry()
	ready := obs.NewReadiness("session")
	if *debugAddr != "" {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcworker:", err)
			os.Exit(1)
		}
		dmux := http.NewServeMux()
		obs.RegisterDebug(dmux, oreg, ready)
		srv := &http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(dl)
		logger.Info("debug listener up", "addr", dl.Addr().String())
	}

	// SIGTERM/SIGINT request a graceful drain: the worker finishes its
	// current chunk, flushes the held pre-reduced batch, and exits — no
	// buffered result is abandoned to the server's timeout reclaim.
	stop := make(chan struct{})
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigCh
		logger.Info("signal received; draining", "signal", s.String())
		close(stop)
	}()

	opts := distsys.WorkerOptions{
		Name:             *name,
		Mflops:           *mflops,
		Slowdown:         *slowdown,
		FlushChunks:      *flushChunks,
		DisableTelemetry: *noTelemetry,
		Obs:              oreg,
		Ready:            ready,
		Logger:           logger,
		Stop:             stop,
	}

	// A comma-separated -addr lists a shard's fleet endpoints (primary
	// first, then standbys); reconnect attempts rotate through them so the
	// worker follows a lease-file failover to whichever process took over.
	addrs := strings.Split(*addr, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	start := time.Now()
	stats, err := distsys.WorkLoopTCPMulti(addrs, opts, distsys.LoopOptions{
		Reconnect: *reconnect,
		Max:       *reconnectMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcworker:", err)
		os.Exit(1)
	}
	fmt.Printf("done: %d chunks, %d photons, %.1fs compute, %.1fs wall\n",
		stats.Chunks, stats.Photons, stats.Compute.Seconds(), time.Since(start).Seconds())
	if stats.Rejected > 0 {
		fmt.Printf("note: %d result(s) rejected by the server (stale or reassigned chunks)\n",
			stats.Rejected)
	}
}

func hostnameDefault() string {
	h, err := os.Hostname()
	if err != nil {
		return "worker"
	}
	return h
}
