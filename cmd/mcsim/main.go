// Command mcsim runs a local (single-machine, multi-goroutine) Monte Carlo
// photon transport simulation and prints a summary, optionally with ASCII
// path/absorption maps and CSV grid dumps.
//
// Examples:
//
//	mcsim -photons 100000 -model adult-head
//	mcsim -model white-matter -detector disk -det-sep 3 -det-radius 1 \
//	      -path-grid -grid 50 -grid-edge 12 -photons 200000 -map
//	mcsim -model adult-head -detector annulus -gate-max 80 -photons 50000
//	mcsim -model adult-head -rel-err 0.01 -target-obs diffuse
//
// The last form runs until the diffuse reflectance's relative standard
// error reaches 1% instead of guessing a photon budget up front, and
// prints the estimate with its 95% confidence interval.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/mc"
	"repro/internal/render"
	"repro/internal/report"
)

func main() {
	fs := flag.NewFlagSet("mcsim", flag.ExitOnError)
	var sf cli.SpecFlags
	sf.Register(fs)
	photons := fs.Int64("photons", 100000, "number of photon packets")
	seed := fs.Uint64("seed", 1, "master RNG seed")
	workers := fs.Int("workers", 0, "goroutines (0 = GOMAXPROCS)")
	relErr := fs.Float64("rel-err", 0,
		"run until this relative standard error instead of a fixed -photons budget (e.g. 0.01)")
	targetObs := fs.String("target-obs", "diffuse",
		"observable the -rel-err target steers by: diffuse, transmit, absorbed, detected")
	targetChunk := fs.Int64("target-chunk", 10000, "photons per adaptive round chunk")
	minPhotons := fs.Int64("min-photons", 0,
		"photon floor before the first -rel-err test (0 = 16 chunks; low floors bias the stop)")
	maxPhotons := fs.Int64("max-photons", 0,
		"photon cap for -rel-err runs (0 = 100× -photons)")
	showMap := fs.Bool("map", false, "print an ASCII x–z map of the scored grid")
	csvPath := fs.String("csv", "", "write the grid's y-projection as CSV to this file")
	savePath := fs.String("save", "", "write the tally as a mergeable .tally file")
	stream := fs.Int("stream", 0, "RNG stream index of this partial run (with -streams)")
	streams := fs.Int("streams", 1, "total number of RNG streams across partial runs")
	fs.Parse(os.Args[1:])

	spec, err := sf.Build()
	if err != nil {
		fatal(err)
	}
	cfg, err := spec.Build()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("model    %s (%d layers)\n", cfg.Model.Name, cfg.Model.NumLayers())
	fmt.Printf("source   %s\n", cfg.Source.Describe())
	fmt.Printf("detector %s\n", cfg.Detector.Describe())
	fmt.Printf("boundary %s\n\n", cfg.Boundary)

	start := time.Now()
	var tally *mc.Tally
	switch {
	case *relErr > 0:
		// Run-until-precision: rounds of -workers streams until the
		// target observable's RSE reaches -rel-err.
		if *streams > 1 {
			fatal(fmt.Errorf("-rel-err and -streams are mutually exclusive"))
		}
		tgt := mc.Target{
			Observable: mc.Observable(*targetObs),
			RelErr:     *relErr,
			MinPhotons: *minPhotons,
			MaxPhotons: *maxPhotons,
		}
		if tgt.MinPhotons == 0 {
			tgt.MinPhotons = 16 * *targetChunk
		}
		if tgt.MaxPhotons == 0 {
			tgt.MaxPhotons = 100 * *photons
		}
		tally, err = mc.RunAdaptive(cfg, tgt, *seed, *targetChunk, *workers)
		if err == nil {
			est, ci := tally.EstimateCI(tgt.Observable)
			status := "met"
			if !tgt.MetBy(tally) {
				status = "NOT met (photon cap reached)"
			}
			fmt.Printf("precision target %s RSE ≤ %g: %s\n", tgt.Observable, tgt.RelErr, status)
			fmt.Printf("estimate %s = %.6f ± %.6f (95%% CI, RSE %.3g%%) after %d photons\n\n",
				tgt.Observable, est, ci, 100*tally.RelStdErr(tgt.Observable), tally.Launched)
		}
	case *streams > 1:
		// Partial run: one stream of a sharded experiment, mergeable later
		// with mcmerge.
		tally, err = mc.RunStream(cfg, *photons, *seed, *stream, *streams)
	default:
		tally, err = mc.RunParallel(cfg, *photons, *seed, *workers)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	cli.PrintTally(os.Stdout, tally, cfg.Model)
	fmt.Printf("\nwall time %.2fs (%.0f photons/s)\n",
		elapsed.Seconds(), float64(tally.Launched)/elapsed.Seconds())

	grid := tally.PathGrid
	what := "detected-photon path density"
	if grid == nil {
		grid, what = tally.AbsGrid, "absorbed weight"
	}
	if grid != nil {
		if *showMap {
			g := grid.Clone()
			g.Threshold(0.01)
			rows := render.Downsample(render.CropDepth(g.ProjectY()), 100, 40)
			fmt.Println()
			render.Frame(os.Stdout, what+" (x–z projection, log scale)", rows, "x", "depth z")
		}
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				fatal(err)
			}
			if err := grid.WriteCSV(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("grid written to %s\n", *csvPath)
		}
	}

	if *savePath != "" {
		name, _ := os.Hostname()
		rf, err := report.New(spec, *seed, *streams, name, tally)
		if err != nil {
			fatal(err)
		}
		if err := rf.Save(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("tally written to %s (stream %d/%d — merge with mcmerge)\n",
			*savePath, *stream, *streams)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcsim:", err)
	os.Exit(1)
}
