// Crash-chaos end-to-end test: a real mcqueue binary is SIGKILLed at
// each WAL crashpoint mid-fleet-run, restarted on the same journal, and
// must lose no accepted job and finish with a tally byte-identical to an
// uninterrupted run's. The worker lives in the test process and rides
// across the restart on WorkLoop's reconnect backoff — exactly the
// production fleet shape.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/distsys"
	"repro/internal/fault"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

var mcqueueBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "mcqueue-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	mcqueueBin = filepath.Join(dir, "mcqueue")
	if out, err := exec.Command("go", "build", "-o", mcqueueBin, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building mcqueue: %v\n%s", err, out)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// freeAddr reserves an ephemeral localhost port and returns it.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	return l.Addr().String()
}

type queueProc struct {
	cmd *exec.Cmd
	out *bytes.Buffer
	// done closes when the process has been reaped; err then holds what
	// Wait returned. Closing (rather than sending one value) lets the
	// crash-wait, shutdown and Cleanup all observe the exit — a one-shot
	// send deadlocked Cleanup after shutdown had consumed it.
	done chan struct{}
	err  error
}

// startQueue launches the mcqueue binary with a tiny WAL geometry (2 KiB
// segments, 8 KiB compaction trigger, snapshot every 2 chunks) so every
// crashpoint is reachable within one small job. crashEnv arms a
// fault-injection crashpoint in the child; nil runs it clean.
func startQueue(t *testing.T, fleetAddr, httpAddr, walDir, ckptDir string, crashEnv []string) *queueProc {
	t.Helper()
	cmd := exec.Command(mcqueueBin,
		"-addr", fleetAddr, "-http", httpAddr,
		"-wal-dir", walDir, "-checkpoint-dir", ckptDir,
		"-wal-fsync", "interval",
		"-wal-segment-bytes", "2048",
		"-wal-compact-bytes", "8192",
		"-wal-snapshot-every", "2")
	env := os.Environ()[:0:0]
	for _, kv := range os.Environ() {
		if strings.HasPrefix(kv, fault.EnvPoint+"=") || strings.HasPrefix(kv, fault.EnvAfter+"=") {
			continue
		}
		env = append(env, kv)
	}
	cmd.Env = append(env, crashEnv...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting mcqueue: %v", err)
	}
	qp := &queueProc{cmd: cmd, out: &out, done: make(chan struct{})}
	go func() { qp.err = cmd.Wait(); close(qp.done) }()
	t.Cleanup(func() {
		select {
		case <-qp.done:
		default:
			cmd.Process.Kill()
			<-qp.done
		}
	})
	return qp
}

// waitReady polls /readyz — which mcqueue holds down until the journal
// replay has finished — so no request races the recovery.
func waitReady(t *testing.T, httpAddr string, qp *queueProc) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + httpAddr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("mcqueue never became ready\n%s", qp.out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosJob is sized so a 2 KiB-segment journal rotates many times and
// crosses the 8 KiB compaction trigger before the job finishes: 128
// chunks, a snapshot every 2.
func chaosJobBody(t *testing.T) []byte {
	t.Helper()
	spec := mc.NewSpec(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	body, err := json.Marshal(map[string]any{
		"spec": spec, "photons": 32000, "chunkPhotons": 250, "seed": 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func submitJob(t *testing.T, httpAddr string) (string, error) {
	t.Helper()
	resp, err := http.Post("http://"+httpAddr+"/jobs", "application/json",
		bytes.NewReader(chaosJobBody(t)))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("submit: http %d", resp.StatusCode)
	}
	return acc.ID, nil
}

// startWorker attaches a reconnecting single-flush worker to the fleet
// address. FlushChunks 1 with one worker makes the reduction order fully
// deterministic, which is what lets the test demand byte-identical
// tallies rather than approximately equal ones.
func startWorker(t *testing.T, fleetAddr string) {
	t.Helper()
	stop := make(chan struct{})
	t.Cleanup(func() { close(stop) })
	go distsys.WorkLoopTCP(fleetAddr,
		distsys.WorkerOptions{Name: "chaos", FlushChunks: 1, Stop: stop},
		distsys.LoopOptions{Reconnect: true, Base: 10 * time.Millisecond, Max: 200 * time.Millisecond})
}

// waitTally polls the job to completion and returns the tally's raw JSON
// (the result body's elapsed field varies run to run; the tally must not).
func waitTally(t *testing.T, httpAddr, id string, timeout time.Duration) json.RawMessage {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get("http://" + httpAddr + "/jobs/" + id + "/result")
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				var body struct {
					Tally json.RawMessage `json:"tally"`
				}
				err := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if err != nil {
					t.Fatal(err)
				}
				return body.Tally
			}
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				t.Fatalf("job %s lost: result returned 404", id)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// soleJobID recovers the job ID from GET /jobs — the fallback when the
// crash severed the submit response after the accept was journaled.
func soleJobID(t *testing.T, httpAddr string) string {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 {
		t.Fatalf("restarted registry has %d jobs, want the 1 accepted before the crash", len(list))
	}
	return list[0].ID
}

func metricValue(t *testing.T, httpAddr, name string) float64 {
	t.Helper()
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v)
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

func shutdown(t *testing.T, qp *queueProc) {
	t.Helper()
	qp.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-qp.done:
	case <-time.After(30 * time.Second):
		t.Fatalf("mcqueue did not exit on SIGTERM\n%s", qp.out.String())
	}
}

// TestCrashChaosEndToEnd SIGKILLs a live mcqueue at every WAL crashpoint
// in turn — torn frame staged on disk, post-append pre-fsync, mid
// segment rotation, mid compaction (new segment durable, old ones not
// yet unlinked) — then restarts on the same journal and requires (a) the
// accepted job is still there, (b) it completes, and (c) its tally is
// byte-identical to an uninterrupted run's.
func TestCrashChaosEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos e2e is not short")
	}

	// Baseline: same binary, same WAL geometry, never interrupted.
	baseFleet, baseHTTP := freeAddr(t), freeAddr(t)
	base := startQueue(t, baseFleet, baseHTTP, t.TempDir(), t.TempDir(), nil)
	waitReady(t, baseHTTP, base)
	startWorker(t, baseFleet)
	baseID, err := submitJob(t, baseHTTP)
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	baseTally := waitTally(t, baseHTTP, baseID, 2*time.Minute)
	shutdown(t, base)

	points := []struct {
		point string
		after int
	}{
		// Appends 1-3 are the accept and first chunk records; the 4th
		// tears mid-frame, the 6th dies holding an unsynced page.
		{"wal.mid-append", 4},
		{"wal.post-append", 6},
		{"wal.mid-rotation", 1},
		{"wal.mid-compaction", 1},
	}
	for _, pt := range points {
		t.Run(pt.point, func(t *testing.T) {
			fleetAddr, httpAddr := freeAddr(t), freeAddr(t)
			walDir, ckptDir := t.TempDir(), t.TempDir()
			crashed := startQueue(t, fleetAddr, httpAddr, walDir, ckptDir, []string{
				fault.EnvPoint + "=" + pt.point,
				fault.EnvAfter + "=" + fmt.Sprint(pt.after),
			})
			waitReady(t, httpAddr, crashed)
			startWorker(t, fleetAddr)
			id, submitErr := submitJob(t, httpAddr)

			// The armed crashpoint fires as the fleet reduces; the child
			// must die by SIGKILL, not finish and not exit cleanly.
			select {
			case <-crashed.done:
				ee, ok := crashed.err.(*exec.ExitError)
				if !ok || ee.ProcessState.String() != "signal: killed" {
					t.Fatalf("child died with %v, want SIGKILL\n%s", crashed.err, crashed.out.String())
				}
			case <-time.After(2 * time.Minute):
				t.Fatalf("crashpoint %s never fired\n%s", pt.point, crashed.out.String())
			}

			// Restart, disarmed, on the same journal and ports.
			restarted := startQueue(t, fleetAddr, httpAddr, walDir, ckptDir, nil)
			waitReady(t, httpAddr, restarted)
			if replayed := metricValue(t, httpAddr, "wal_replay_records_total"); replayed <= 0 {
				t.Fatalf("restart replayed %v journal records, want > 0", replayed)
			}
			if submitErr != nil {
				// The crash raced the submit response; the accept record
				// still made the journal or the job list below fails.
				t.Logf("submit response lost to the crash (%v); recovering ID", submitErr)
				id = soleJobID(t, httpAddr)
			}
			if id != baseID {
				t.Fatalf("job ID %s differs from baseline %s: content key unstable", id, baseID)
			}
			tally := waitTally(t, httpAddr, id, 2*time.Minute)
			if !bytes.Equal(tally, baseTally) {
				t.Fatalf("resumed tally differs from uninterrupted run\nbase: %.120s...\ngot:  %.120s...",
					baseTally, tally)
			}
			shutdown(t, restarted)
		})
	}
}
