// Command mcqueue runs the multi-job simulation service: a long-lived job
// registry serving many concurrent simulations over one shared worker
// fleet, with an HTTP JSON control plane and a content-addressed result
// cache. It is the many-job generalisation of mcserver — workers are
// identical (mcworker connects to either).
//
// Example (three terminals):
//
//	mcqueue -addr :9876 -http :8080 -policy fair
//	mcworker -addr localhost:9876 -name pc1
//	curl -s localhost:8080/jobs -d '{"spec":{"Model":{"Layers":[...]}},"photons":1000000,"chunkPhotons":50000,"seed":1}'
//
// Then poll GET /jobs/{id}, fetch GET /jobs/{id}/result, cancel with
// DELETE /jobs/{id}, and watch fleet health on GET /stats. Submitting the
// same spec/photons/seed again returns the cached tally instantly.
//
// A job may carry a precision target instead of a fixed photon budget —
//
//	curl -s localhost:8080/jobs -d '{"spec":{...},"chunkPhotons":50000,"seed":1,
//	      "target":{"observable":"diffuse","relErr":0.01}}'
//
// — in which case the registry issues chunks until the observable's
// relative standard error meets the target (GET /jobs/{id} reports the
// live estimate ± CI and photons spent), and a stored run of the same
// physics that already meets-or-exceeds the precision serves the request
// from cache.
//
// The API also serves the introspection plane: GET /fleet (live worker
// sessions with reported and inferred photon throughput), GET
// /jobs/{id}/events (per-job lifecycle trace, filterable with ?kind= and
// ?since=) and GET /jobs/{id}/spans (per-chunk queue/wire/compute/reduce
// timing spans). cmd/mctop renders /fleet and /stats as a live terminal
// dashboard. The API listener additionally carries the debug surface —
// GET /metrics (Prometheus text exposition), GET /healthz, GET /readyz
// (ready once the fleet listener is up and checkpoint resume has
// finished) and net/http/pprof under /debug/pprof/ — unless -debug-addr
// moves it to its own listener.
// Logging is structured (-log-format text|json); -v only lowers the level
// to debug, never changes destination or format. -max-active-jobs sheds
// POST /jobs with 429 + Retry-After while that many jobs are queued or
// running, and -max-body-bytes bounds the POST /jobs body (413 beyond it).
//
// Multi-tenancy: every submission carries a tenant (X-MC-Tenant header or
// "tenant" body field; empty means "default"), and -tenants <file.json>
// enables per-tenant token-bucket admission control plus weighted
// scheduling. The file maps tenant names to classes —
//
//	{"default": {"weight": 1},
//	 "team-a":  {"jobsPerSec": 2, "jobBurst": 10,
//	             "photonsPerSec": 1e6, "photonBurst": 5e7, "weight": 3}}
//
// — where jobsPerSec/jobBurst rate-limit submissions, photonsPerSec/
// photonBurst meter the photon quota (a zero rate leaves that dimension
// unlimited), and weight sets the tenant's share of fleet throughput
// under the tenant-fair policy. Submissions over a tenant's envelope are
// shed with 429 + a Retry-After computed from the bucket's refill time;
// cache hits and coalesced submissions are never shed. GET /tenants lists
// live bucket levels, GET /stats and GET /fleet carry per-tenant rollups,
// and when -tenants is given without an explicit -policy the scheduler
// upgrades from fair to tenant-fair (two-level tenant→job fair queueing).
//
// On SIGINT/SIGTERM in-flight HTTP requests are drained, then every
// unfinished job is checkpointed into -checkpoint-dir before exit, and
// those checkpoints are resumed automatically on the next start, so an
// operator Ctrl-C never loses work.
//
// -wal-dir additionally arms the crash-durable journal: every accepted
// job, reduced chunk batch, amortized tally snapshot, finalize and
// cancel is write-ahead logged, and on start the journal is replayed —
// before /readyz flips — so even a kill -9, OOM kill or power cut
// replays instead of losing accepted jobs. -wal-fsync picks the
// always/interval/none fsync policy (a process kill loses nothing under
// any of them; the policy prices power loss), and the SIGTERM
// checkpoint pass doubles as a final journal compaction. See DESIGN.md
// "Durability".
//
// As a shard: -lease-file arms flock-based failover. The process blocks
// until it exclusively holds the lease file, so a standby started with
// the same -lease-file and -wal-dir waits idle; the moment the primary
// exits — SIGTERM or kill -9, the kernel drops the lock either way — the
// standby replays the shared journal and serves the same jobs under the
// same IDs. cmd/mcgate routes a content-keyed slice of the submission
// space to each such shard and fails client requests over from the dead
// primary to the risen standby. See DESIGN.md "Sharding".
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/distsys"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/wal"
)

func main() {
	fs := flag.NewFlagSet("mcqueue", flag.ExitOnError)
	addr := fs.String("addr", ":9876", "worker fleet listen address")
	httpAddr := fs.String("http", ":8080", "HTTP API listen address")
	debugAddr := fs.String("debug-addr", "",
		"separate listener for /metrics, /healthz, /readyz and /debug/pprof (empty: multiplexed on -http)")
	policyName := fs.String("policy", "fair",
		"cross-job scheduling policy: fifo, priority, fair, tenant-fair")
	cacheSize := fs.Int("cache", 256, "result cache entries (0 default, negative disables)")
	retain := fs.Int("retain", 1024, "finished jobs kept queryable (negative: forever)")
	maxTarget := fs.Int64("target-max-photons", 0,
		"operator cap on precision-targeted jobs' photon budgets (0 = 50M default)")
	maxActive := fs.Int("max-active-jobs", 0,
		"shed POST /jobs with 429 while this many jobs are queued or running (0: unbounded)")
	maxBody := fs.Int64("max-body-bytes", 0,
		"POST /jobs body size cap, 413 beyond it (0: 32 MiB default, negative: unbounded)")
	tenantsFile := fs.String("tenants", "",
		"JSON tenant table enabling per-tenant token-bucket admission (see package doc)")
	traceEvents := fs.Int("trace-events", 0,
		"per-job lifecycle event ring capacity (0: 512 default, negative: disable tracing)")
	spanEvents := fs.Int("span-events", 0,
		"per-job chunk span ring capacity (0: 512 default, negative: disable span recording)")
	ckptDir := fs.String("checkpoint-dir", "mcqueue-ckpt",
		"directory for shutdown checkpoints (resumed on next start)")
	walDir := fs.String("wal-dir", "",
		"write-ahead journal directory; crashes (kill -9, OOM, power) replay instead of losing accepted jobs (empty: disabled)")
	walFsync := fs.String("wal-fsync", "interval",
		"journal fsync policy: always, interval, none")
	walSegBytes := fs.Int64("wal-segment-bytes", 0,
		"journal segment rotation size (0: 8 MiB default)")
	walCompactBytes := fs.Int64("wal-compact-bytes", 0,
		"journal size triggering snapshot compaction (0: 64 MiB default, negative: disable)")
	walSnapshotEvery := fs.Int("wal-snapshot-every", 0,
		"reduced chunks per job between journaled tally snapshots (0: 64 default)")
	leaseFile := fs.String("lease-file", "",
		"flock-based shard lease: blocks until exclusively held, so a standby started on the same file (and -wal-dir) takes over the instant the primary dies (empty: disabled)")
	var lf cli.LogFlags
	lf.Register(fs)
	fs.Parse(os.Args[1:])

	logger, err := lf.Build(os.Stderr)
	if err != nil {
		fatal(err)
	}
	var (
		table     *service.TenantTable
		admission service.AdmissionPolicy
	)
	if *tenantsFile != "" {
		table, err = service.LoadTenantTable(*tenantsFile)
		if err != nil {
			fatal(err)
		}
		admission = service.NewTokenBucket(table, nil)
		// A tenant table without an explicit -policy implies the operator
		// wants tenant isolation in scheduling too, not just admission.
		policySet := false
		fs.Visit(func(f *flag.Flag) { policySet = policySet || f.Name == "policy" })
		if !policySet {
			*policyName = "tenant-fair"
		}
	}
	policy, ok := service.PolicyByName(*policyName)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	// The shard lease comes first — before the journal is opened, before
	// any listener binds. A standby blocks here holding nothing, and when
	// the kernel hands it the flock (the primary exited or was killed) it
	// proceeds through the exact same boot: replay the shared journal,
	// bind the ports, serve. That ordering is the failover correctness
	// argument — the journal is never open in two processes at once.
	if *leaseFile != "" {
		lease, err := wal.AcquireLease(*leaseFile, false)
		if err != nil {
			logger.Info("standby: waiting for shard lease", "file", *leaseFile)
			lease, err = wal.AcquireLease(*leaseFile, true)
			if err != nil {
				fatal(err)
			}
		}
		defer lease.Release()
		logger.Info("shard lease acquired", "file", *leaseFile)
	}

	oreg := obs.NewRegistry()
	ready := obs.NewReadiness("fleet-listener", "checkpoint-resume", "wal-replay")
	ckpt := oreg.CounterVec("mcqueue_checkpoint_total",
		"Checkpoint operations by kind and outcome.", "op", "outcome")

	// Open the journal before the registry exists: its records must be
	// replayed into the registry before any listener accepts traffic, and
	// /readyz holds until the replay condition flips.
	var (
		journal   *service.Journal
		walReplay *wal.Replay
	)
	if *walDir != "" {
		fpolicy, err := wal.ParseFsyncPolicy(*walFsync)
		if err != nil {
			fatal(err)
		}
		wlog, replay, err := wal.Open(wal.Options{
			Dir:          *walDir,
			SegmentBytes: *walSegBytes,
			Fsync:        fpolicy,
			Obs:          oreg,
			Logger:       logger,
		})
		if err != nil {
			fatal(fmt.Errorf("wal open: %w", err))
		}
		defer wlog.Close()
		journal = service.NewJournal(wlog, service.JournalOptions{
			SnapshotEvery: *walSnapshotEvery,
			CompactBytes:  *walCompactBytes,
			Logger:        logger,
		})
		walReplay = replay
		if replay.TornTruncations > 0 {
			logger.Warn("journal had torn segment tails", "truncations", replay.TornTruncations)
		}
	}

	reg := service.New(service.Options{
		Policy:           policy,
		CacheSize:        *cacheSize,
		RetainDone:       *retain,
		MaxTargetPhotons: *maxTarget,
		MaxActiveJobs:    *maxActive,
		Admission:        admission,
		Tenants:          table,
		TraceEvents:      *traceEvents,
		SpanEvents:       *spanEvents,
		Obs:              oreg,
		Logger:           logger,
		Journal:          journal,
	})

	// Journal replay first: it reconstructs everything up to the crash,
	// including jobs a SIGTERM checkpoint pass never saw. The legacy
	// checkpoint resume after it dedups naturally — an identical live job
	// coalesces by content key.
	if journal != nil {
		replayed, err := journal.Replay(reg, walReplay.Records)
		if err != nil {
			fatal(fmt.Errorf("wal replay: %w", err))
		}
		if replayed > 0 {
			logger.Info("replayed journaled jobs", "jobs", replayed, "dir", *walDir)
		}
	}
	ready.Set("wal-replay", true)

	resumed := resumeCheckpoints(reg, *ckptDir, logger, ckpt)
	ready.Set("checkpoint-resume", true)
	if resumed > 0 {
		logger.Info("resumed checkpointed jobs", "jobs", resumed, "dir", *ckptDir)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	ready.Set("fleet-listener", true)
	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	mux := http.NewServeMux()
	api := service.NewAPI(reg)
	api.MaxBodyBytes = *maxBody
	api.Register(mux)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	var debugSrv *http.Server
	if *debugAddr == "" {
		obs.RegisterDebug(mux, oreg, ready)
	} else {
		dl, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		dmux := http.NewServeMux()
		obs.RegisterDebug(dmux, oreg, ready)
		debugSrv = &http.Server{Handler: dmux, ReadHeaderTimeout: 5 * time.Second}
		go debugSrv.Serve(dl)
		logger.Info("debug listener up", "addr", dl.Addr().String())
	}
	logger.Info("mcqueue up", "fleet", l.Addr().String(), "http", hl.Addr().String(),
		"policy", policy.Name())

	// On SIGINT/SIGTERM the signal goroutine only drains the HTTP
	// listeners; the final checkpoint pass runs in main, after srv.Serve
	// has returned ErrServerClosed AND the drain has finished — Serve
	// returns the instant Shutdown begins, so checkpointing from the
	// goroutine would race main's exit and lose the pass entirely. No
	// submission is half-processed when the snapshot is cut (the API is
	// drained first), but worker connections on the fleet listener keep
	// reducing result batches while checkpoints are written: each job's
	// snapshot is internally consistent, not fleet-quiesced, and a
	// reduction landing after its job's snapshot is simply recomputed on
	// resume.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	drained := make(chan struct{})
	go func() {
		s := <-sig
		logger.Info("shutting down", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		if debugSrv != nil {
			debugSrv.Shutdown(ctx)
		}
		cancel()
		close(drained)
	}()

	go func() {
		if err := reg.Serve(l); err != nil {
			logger.Error("fleet listener failed", "err", err)
		}
	}()
	if err := srv.Serve(hl); err != http.ErrServerClosed {
		fatal(err)
	}
	<-drained
	saved, failed := saveCheckpoints(reg, *ckptDir, logger, ckpt)
	logger.Info("checkpointed active jobs", "saved", saved, "dir", *ckptDir)
	// With a journal the SIGTERM pass is a final compaction, not the only
	// durability: the log shrinks to one snapshot per retained job, so the
	// next boot replays a minimal record set.
	if journal != nil {
		if err := reg.CompactJournal(); err != nil {
			logger.Error("final journal compaction failed", "err", err)
		}
		// Close the journal before the lease is released so a blocked
		// standby never opens a log this process still holds; the deferred
		// wlog.Close then no-ops (Close is idempotent).
		if err := journal.Close(); err != nil {
			logger.Error("journal close failed", "err", err)
		}
	}
	if failed > 0 {
		logger.Error("some jobs could not be checkpointed", "failed", failed)
		os.Exit(1)
	}
}

// saveCheckpoints snapshots every queued/running job into dir and returns
// how many were written and how many failed.
func saveCheckpoints(reg *service.Registry, dir string, logger *slog.Logger, ckpt *obs.CounterVec) (saved, failed int) {
	for _, st := range reg.List() {
		if st.State != service.StateQueued.String() && st.State != service.StateRunning.String() {
			continue
		}
		j := reg.Get(st.ID)
		if j == nil {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			logger.Warn("checkpoint dir unavailable", "dir", dir, "err", err)
			ckpt.With("save", "error").Inc()
			failed++
			continue
		}
		path := filepath.Join(dir, st.IDHex+".ckpt")
		if err := distsys.FromSnapshot(j.Snapshot()).Save(path); err != nil {
			logger.Warn("checkpoint save failed", "job", st.IDHex, "err", err)
			ckpt.With("save", "error").Inc()
			failed++
			continue
		}
		ckpt.With("save", "ok").Inc()
		saved++
	}
	return saved, failed
}

// resumeCheckpoints reloads every *.ckpt in dir into the registry. A
// checkpoint file is kept on disk until its job finishes — mcqueue has no
// periodic checkpointing, so deleting it at resume time would lose all
// recorded progress to a crash that never reaches the signal handler.
func resumeCheckpoints(reg *service.Registry, dir string, logger *slog.Logger, ckpt *obs.CounterVec) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(paths) == 0 {
		return 0
	}
	n := 0
	for _, path := range paths {
		cp, err := distsys.LoadCheckpoint(path)
		if err != nil {
			logger.Warn("skipping unreadable checkpoint", "path", path, "err", err)
			ckpt.With("resume", "error").Inc()
			continue
		}
		// The checkpoint carries the job's own ChunkTimeout (zero means the
		// submitter disabled reassignment on purpose; dead workers still
		// requeue on disconnect).
		snap := cp.Snapshot()
		job, err := reg.SubmitSnapshot(snap)
		if err != nil {
			logger.Warn("checkpoint resume failed", "path", path, "err", err)
			ckpt.With("resume", "error").Inc()
			continue
		}
		go func(path string) {
			<-job.Done()
			os.Remove(path)
		}(path)
		ckpt.With("resume", "ok").Inc()
		n++
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcqueue:", err)
	os.Exit(1)
}
