// Command mcqueue runs the multi-job simulation service: a long-lived job
// registry serving many concurrent simulations over one shared worker
// fleet, with an HTTP JSON control plane and a content-addressed result
// cache. It is the many-job generalisation of mcserver — workers are
// identical (mcworker connects to either).
//
// Example (three terminals):
//
//	mcqueue -addr :9876 -http :8080 -policy fair
//	mcworker -addr localhost:9876 -name pc1
//	curl -s localhost:8080/jobs -d '{"spec":{"Model":{"Layers":[...]}},"photons":1000000,"chunkPhotons":50000,"seed":1}'
//
// Then poll GET /jobs/{id}, fetch GET /jobs/{id}/result, cancel with
// DELETE /jobs/{id}, and watch fleet health on GET /stats. Submitting the
// same spec/photons/seed again returns the cached tally instantly.
//
// A job may carry a precision target instead of a fixed photon budget —
//
//	curl -s localhost:8080/jobs -d '{"spec":{...},"chunkPhotons":50000,"seed":1,
//	      "target":{"observable":"diffuse","relErr":0.01}}'
//
// — in which case the registry issues chunks until the observable's
// relative standard error meets the target (GET /jobs/{id} reports the
// live estimate ± CI and photons spent), and a stored run of the same
// physics that already meets-or-exceeds the precision serves the request
// from cache.
//
// On SIGINT/SIGTERM every unfinished job is checkpointed into
// -checkpoint-dir before exit, and those checkpoints are resumed
// automatically on the next start, so an operator Ctrl-C never loses work.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"repro/internal/distsys"
	"repro/internal/service"
)

func main() {
	fs := flag.NewFlagSet("mcqueue", flag.ExitOnError)
	addr := fs.String("addr", ":9876", "worker fleet listen address")
	httpAddr := fs.String("http", ":8080", "HTTP API listen address")
	policyName := fs.String("policy", "fair", "cross-job scheduling policy: fifo, priority, fair")
	cacheSize := fs.Int("cache", 256, "result cache entries (0 default, negative disables)")
	retain := fs.Int("retain", 1024, "finished jobs kept queryable (negative: forever)")
	maxTarget := fs.Int64("target-max-photons", 0,
		"operator cap on precision-targeted jobs' photon budgets (0 = 50M default)")
	ckptDir := fs.String("checkpoint-dir", "mcqueue-ckpt",
		"directory for shutdown checkpoints (resumed on next start)")
	verbose := fs.Bool("v", false, "log submissions, assignments and worker churn")
	fs.Parse(os.Args[1:])

	policy, ok := service.PolicyByName(*policyName)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q", *policyName))
	}
	opts := service.Options{
		Policy:           policy,
		CacheSize:        *cacheSize,
		RetainDone:       *retain,
		MaxTargetPhotons: *maxTarget,
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	reg := service.New(opts)

	resumed := resumeCheckpoints(reg, *ckptDir)
	if resumed > 0 {
		fmt.Printf("resumed %d checkpointed job(s) from %s\n", resumed, *ckptDir)
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hl, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mcqueue: workers on %s, HTTP API on %s (%s policy)\n",
		l.Addr(), hl.Addr(), policy.Name())

	// A final checkpoint on SIGINT/SIGTERM: no operator Ctrl-C loses a job.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		saved, failed := saveCheckpoints(reg, *ckptDir)
		fmt.Printf("\nmcqueue: %v — checkpointed %d active job(s) to %s\n", s, saved, *ckptDir)
		if failed > 0 {
			fmt.Fprintf(os.Stderr, "mcqueue: %d job(s) could NOT be checkpointed\n", failed)
			os.Exit(1)
		}
		os.Exit(0)
	}()

	go func() {
		if err := reg.Serve(l); err != nil {
			log.Printf("mcqueue: fleet listener: %v", err)
		}
	}()
	if err := http.Serve(hl, service.NewAPI(reg).Handler()); err != nil {
		fatal(err)
	}
}

// saveCheckpoints snapshots every queued/running job into dir and returns
// how many were written and how many failed.
func saveCheckpoints(reg *service.Registry, dir string) (saved, failed int) {
	for _, st := range reg.List() {
		if st.State != service.StateQueued.String() && st.State != service.StateRunning.String() {
			continue
		}
		j := reg.Get(st.ID)
		if j == nil {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Printf("mcqueue: checkpoint dir: %v", err)
			failed++
			continue
		}
		path := filepath.Join(dir, st.IDHex+".ckpt")
		if err := distsys.FromSnapshot(j.Snapshot()).Save(path); err != nil {
			log.Printf("mcqueue: checkpoint %s: %v", st.IDHex, err)
			failed++
			continue
		}
		saved++
	}
	return saved, failed
}

// resumeCheckpoints reloads every *.ckpt in dir into the registry. A
// checkpoint file is kept on disk until its job finishes — mcqueue has no
// periodic checkpointing, so deleting it at resume time would lose all
// recorded progress to a crash that never reaches the signal handler.
func resumeCheckpoints(reg *service.Registry, dir string) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(paths) == 0 {
		return 0
	}
	n := 0
	for _, path := range paths {
		cp, err := distsys.LoadCheckpoint(path)
		if err != nil {
			log.Printf("mcqueue: skipping %s: %v", path, err)
			continue
		}
		// The checkpoint carries the job's own ChunkTimeout (zero means the
		// submitter disabled reassignment on purpose; dead workers still
		// requeue on disconnect).
		snap := cp.Snapshot()
		job, err := reg.SubmitSnapshot(snap)
		if err != nil {
			log.Printf("mcqueue: resume %s: %v", path, err)
			continue
		}
		go func(path string) {
			<-job.Done()
			os.Remove(path)
		}(path)
		n++
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcqueue:", err)
	os.Exit(1)
}
