package phomc

import (
	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

// Experiment presets: the exact configurations behind the paper's figures,
// shared by the examples, the cmd/experiments harness and the benchmarks.

// Fig3Config returns the Fig 3 banana experiment: a laser (delta) source on
// homogeneous white matter, a disk detector at the given source–detector
// separation, and an N³ path-density grid spanning edgeMM (the paper used
// granularity 50³). Only detected photons score into the grid.
func Fig3Config(separationMM, detRadiusMM float64, gridN int, edgeMM float64) *Config {
	return &Config{
		Model:    tissue.HomogeneousWhiteMatter(),
		Source:   source.Pencil{},
		Detector: detector.Disk{CenterX: separationMM, Radius: detRadiusMM},
		PathGrid: &mc.GridSpec{N: gridN, Edge: edgeMM},
		PathHist: &mc.HistSpec{Min: 0, Max: 400, Bins: 200},
	}
}

// Fig3Spec is the serialisable form of Fig3Config for distributed runs.
func Fig3Spec(separationMM, detRadiusMM float64, gridN int, edgeMM float64) *Spec {
	s := mc.NewSpec(tissue.HomogeneousWhiteMatter(),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindDisk, CenterX: separationMM, Radius: detRadiusMM})
	s.PathGrid = &mc.GridSpec{N: gridN, Edge: edgeMM}
	s.PathHist = &mc.HistSpec{Min: 0, Max: 400, Bins: 200}
	return s
}

// Fig4Config returns the Fig 4 layered-head experiment: a laser source on
// the Table 1 adult head model, scoring absorption on an N³ grid and
// capturing the whole surface so penetration statistics cover every photon.
func Fig4Config(gridN int, edgeMM float64) *Config {
	return &Config{
		Model:   tissue.AdultHead(),
		Source:  source.Pencil{},
		AbsGrid: &mc.GridSpec{N: gridN, Edge: edgeMM},
	}
}

// Fig4Spec is the serialisable form of Fig4Config for distributed runs.
func Fig4Spec(gridN int, edgeMM float64) *Spec {
	s := mc.NewSpec(tissue.AdultHead(),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAll})
	s.AbsGrid = &mc.GridSpec{N: gridN, Edge: edgeMM}
	return s
}
