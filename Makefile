# Developer entry points. CI runs the same steps (see .github/workflows).

GO ?= go

.PHONY: build test race short bench fmt vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# bench writes the machine-readable perf snapshot for this PR series:
# photons/sec for the layered and voxel kernels, jobs/sec for the
# multi-job service registry.
bench:
	$(GO) run ./cmd/mcbench -out BENCH_pr2.json

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
