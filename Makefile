# Developer entry points. CI runs the same steps (see .github/workflows).

GO ?= go

# VERSION is stamped into the binaries (and surfaced as the mc_build_info
# metric and the worker's telemetry report) via -ldflags -X.
VERSION ?= $(shell git describe --always --dirty 2>/dev/null || echo dev)
LDFLAGS = -X repro/internal/obs.Version=$(VERSION)

.PHONY: build test race short bench bench-smoke cover fmt vet fuzz-smoke obs-smoke crash-smoke shard-smoke

build:
	$(GO) build -ldflags '$(LDFLAGS)' ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short -shuffle=on ./...

# bench writes the machine-readable perf snapshot for this PR series:
# photons/sec and allocs/photon for the layered and voxel kernels, jobs/sec
# for the multi-job service registry, and the telemetry on/off A/B.
# Compare against the committed BENCH_pr*.json trajectory.
bench:
	$(GO) run ./cmd/mcbench -out BENCH_pr10.json

# bench-smoke is the CI bitrot guard: tiny budgets, noisy numbers, proves
# the harness still runs.
bench-smoke:
	$(GO) run ./cmd/mcbench -quick -out bench-smoke.json

# obs-smoke boots a real mcqueue + mcworker pair, submits a job with curl
# and asserts the debug surface (/readyz, /metrics series, the per-job
# event trace and spans, /fleet telemetry, mctop -once, pprof, SIGTERM
# drain) from the outside.
obs-smoke:
	./scripts/obs-smoke.sh

# crash-smoke SIGKILLs a real journal-armed mcqueue at a WAL crashpoint,
# restarts it on the same journal, and asserts the accepted job survives
# under its original ID, completes, and that SIGTERM compacts the journal.
crash-smoke:
	./scripts/crash-smoke.sh

# shard-smoke boots the sharded control plane for real — mcgate over two
# journaled mcqueue shards, one with a flock-lease standby — SIGKILLs a
# shard primary mid-run, and asserts zero accepted-job loss: the standby
# replays the journal and takes over, every job finishes under its
# original ID through the gateway, and the tallies are byte-identical to
# a single-node reference run.
shard-smoke:
	./scripts/shard-smoke.sh

# fuzz-smoke gives the wire decoder ten seconds of coverage-guided input on
# top of the committed corpus (which seeds the v3 batch frames) — enough to
# catch a decode regression without stalling CI.
fuzz-smoke:
	$(GO) test ./internal/protocol -run '^$$' -fuzz FuzzDecodeMessage -fuzztime 10s

# cover enforces the same coverage floor as CI (keep COVER_FLOOR in sync
# with .github/workflows/ci.yml).
COVER_FLOOR ?= 71
cover:
	$(GO) test -short -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | tail -1 | awk '{gsub("%","",$$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { if (t+0 < f+0) { printf "coverage %s%% below floor %s%%\n", t, f; exit 1 } }'

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...
