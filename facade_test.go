package phomc_test

import (
	"math"
	"net"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	phomc "repro"
)

// TestFacadeAdaptiveRun exercises the precision-target surface of the
// facade: RunAdaptive against a stream-merged RunStream/RunStreamFan
// reduction of the same seed space, with estimates and CIs exposed.
func TestFacadeAdaptiveRun(t *testing.T) {
	model := phomc.HomogeneousSlab("slab", phomc.TransportProperties(1.9, 0.9, 0.018, 1.4), 5)
	cfg := &phomc.Config{Model: model, TrackMoments: true}
	tgt := phomc.PrecisionTarget{
		Observable: phomc.ObsDiffuse,
		RelErr:     0.05,
		MinPhotons: 1200,
		MaxPhotons: 60_000,
	}
	tally, err := phomc.RunAdaptive(cfg, tgt, 9, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, ci := tally.EstimateCI(phomc.ObsDiffuse)
	if !(est > 0) || !(ci > 0) || math.IsInf(ci, 1) {
		t.Fatalf("estimate %g ± %g", est, ci)
	}
	if tally.RelStdErr(phomc.ObsDiffuse) > tgt.RelErr {
		t.Fatalf("RSE %g above target", tally.RelStdErr(phomc.ObsDiffuse))
	}

	// The adaptive loop's streams are the plain RunStream space: rebuild
	// its first two chunks by hand and check they merge cleanly into a
	// shaped tally.
	mcfg := &phomc.Config{Model: model, TrackMoments: true}
	total := phomc.NewTally(mcfg)
	for s := 0; s < 2; s++ {
		part, err := phomc.RunStream(mcfg, 300, 9, s, 0) // open-ended stream space
		if err != nil {
			t.Fatal(err)
		}
		if err := total.Merge(part); err != nil {
			t.Fatal(err)
		}
	}
	if total.Launched != 600 || total.Moments == nil {
		t.Fatalf("merged %d photons, moments %v", total.Launched, total.Moments)
	}
	fanned, err := phomc.RunStreamFan(mcfg, 300, 9, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if fanned.Moments.Diffuse.N != 2 {
		t.Fatalf("fan recorded %d samples", fanned.Moments.Diffuse.N)
	}
}

// TestFacadeVoxelSurface exercises the voxel construction helpers.
func TestFacadeVoxelSurface(t *testing.T) {
	g, err := phomc.VoxelizeModel(phomc.AdultHead(), 20, 20, 16, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := phomc.NewVoxelSpec(g, phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "all"})
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	g2 := phomc.NewVoxelGrid("block", 16, 16, 12, 1, 1, 1,
		"tissue", phomc.TransportProperties(1.9, 0.9, 0.018, 1.4))
	if _, err := phomc.Run(&phomc.Config{Geometry: g2, Detector: phomc.SurfaceDetector()}, 200, 3); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeServiceSurface drives the registry facade: submission with a
// precision target over the HTTP handler and the three policy
// constructors.
func TestFacadeServiceSurface(t *testing.T) {
	for _, p := range []phomc.SchedulingPolicy{
		phomc.FIFOPolicy(), phomc.PriorityPolicy(), phomc.FairSharePolicy(),
	} {
		if p.Name() == "" {
			t.Fatal("unnamed policy")
		}
	}
	reg := phomc.NewJobRegistry(phomc.RegistryOptions{Policy: phomc.FairSharePolicy()})
	ts := httptest.NewServer(phomc.NewServiceHandler(reg))
	defer ts.Close()

	spec := phomc.NewSpec(
		phomc.HomogeneousSlab("slab", phomc.TransportProperties(1.9, 0.9, 0.018, 1.4), 5),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 1, RMax: 4},
	)
	out, err := reg.Submit(phomc.ServiceJobSpec{
		Spec:         spec,
		ChunkPhotons: 200,
		Seed:         3,
		Target:       &phomc.PrecisionTarget{RelErr: 0.1, MinPhotons: 800, MaxPhotons: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	st := out.Job.Status()
	if st.Target == nil || st.Target.Observable != phomc.ObsDiffuse {
		t.Fatalf("status target %+v", st.Target)
	}
	if err := reg.Cancel(out.Job.ID()); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeAnalysisSurface covers the diffusion/ToF/inverse helpers.
func TestFacadeAnalysisSurface(t *testing.T) {
	props := phomc.TransportProperties(1.2, 0.9, 0.005, 1.4)
	if _, err := phomc.NewDiffusionMedium(props, 1.0); err != nil {
		t.Fatal(err)
	}
	gate, err := phomc.TimeGate(0.1, 0.8, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &phomc.Config{
		Model:    phomc.HomogeneousSlab("slab", props, 30),
		Detector: phomc.DiskDetector(10, 3),
		Gate:     gate,
		PathHist: &phomc.HistSpec{Min: 0, Max: 400, Bins: 80},
		Radial:   &phomc.HistSpec{Min: 0, Max: 30, Bins: 30},
	}
	tally, err := phomc.RunParallel(cfg, 4000, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tpsf := phomc.TPSFFromTally(tally, 1.4); tpsf == nil {
		t.Fatal("no TPSF from a PathHist run")
	}
	m := phomc.MeasurementFromTally(tally, 1, 20)
	if len(m.Rho) == 0 {
		t.Fatal("empty measurement")
	}

	// Experiment presets build and validate.
	if err := phomc.Fig3Spec(3, 1, 10, 12).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := phomc.Fig4Spec(10, 20).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeDistributedSurface covers ServeJob and checkpoint re-exports.
func TestFacadeDistributedSurface(t *testing.T) {
	spec := phomc.NewSpec(
		phomc.HomogeneousSlab("slab", phomc.TransportProperties(1.9, 0.9, 0.018, 1.4), 5),
		phomc.SourceSpec{Kind: "pencil"},
		phomc.DetectorSpec{Kind: "annulus", RMin: 1, RMax: 4},
	)
	dm, err := phomc.NewDataManager(phomc.JobOptions{
		Spec: spec, TotalPhotons: 600, ChunkPhotons: 200, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cp := dm.Checkpoint()
	path := filepath.Join(t.TempDir(), "job.ckpt")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := phomc.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	dm2, err := phomc.ResumeJob(loaded, phomc.JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dm2.Serve(l)
	done := make(chan error, 1)
	go func() {
		_, err := phomc.WorkTCP(l.Addr().String(), phomc.WorkerOptions{Name: "w"})
		done <- err
	}()
	res, err := dm2.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 600 {
		t.Fatalf("launched %d", res.Tally.Launched)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
