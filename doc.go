// Package phomc is a distributed Monte Carlo simulator of light transport
// in tissue, reproducing Page, Coyle et al., "Distributed Monte Carlo
// Simulation of Light Transportation in Tissue" (IPPS 2006).
//
// Photon packets are traced through a pluggable Geometry (hop–drop–spin
// with Henyey–Greenstein scattering, Fresnel refraction and internal
// reflection at medium boundaries, Russian roulette), scored on
// user-defined 3-D grids and surface detectors with optional pathlength
// gating, and the work can be fanned out over goroutines or a
// DataManager/worker cluster with exactly-once, order-independent
// reduction.
//
// Two geometries ship with the package: the paper's layered slab models
// (the fast path, installed automatically when Config.Model is set) and
// heterogeneous voxel grids (VoxelGrid) supporting arbitrary inclusions —
// tumours, boxes, tilted layers — via DDA traversal. Both are plain data,
// so either kind of job travels over the wire protocol and runs on the
// cluster.
//
// # Quick start
//
//	cfg := &phomc.Config{
//		Model:    phomc.AdultHead(),
//		Source:   phomc.PencilSource(),
//		Detector: phomc.DiskDetector(20, 2.5),
//	}
//	tally, err := phomc.RunParallel(cfg, 1_000_000, 42, 0)
//	if err != nil { ... }
//	fmt.Println("DPF:", tally.DPF(20))
//
// # Heterogeneous media
//
// Voxelize a layered model (or start from a homogeneous NewVoxelGrid),
// paint inclusions into it, and trace through Config.Geometry:
//
//	g, _ := phomc.VoxelizeModel(phomc.AdultHead(), 120, 120, 80, 1, 1, 0.5)
//	tumour, _ := g.AddMedium("tumour", phomc.TransportProperties(2, 0.9, 0.3, 1.4))
//	g.PaintSphere(tumour, 0, 0, 14, 5)
//	tally, err := phomc.RunParallel(&phomc.Config{Geometry: g}, 1_000_000, 42, 0)
//
// See examples/inclusion for the full perturbation workflow.
//
// # Multi-job simulation service
//
// Beyond one-shot runs, the service layer (cmd/mcqueue) keeps a long-lived
// JobRegistry of many concurrent simulations sharing one worker fleet:
// idle workers pull chunks of whichever job a pluggable policy picks
// (FIFO, priority, or weighted fair-share), results route back by JobID,
// completed tallies land in a content-addressed cache so resubmitting an
// identical job returns instantly, and everything is driven over an HTTP
// JSON API:
//
//	reg := phomc.NewJobRegistry(phomc.RegistryOptions{Policy: phomc.FairSharePolicy()})
//	go reg.Serve(fleetListener)                           // mcworker clients attach here
//	go http.Serve(apiListener, phomc.NewServiceHandler(reg))
//	// curl -X POST :8080/jobs -d '{"spec":{...},"photons":1e6,"chunkPhotons":5e4,"seed":1}'
//	// curl :8080/jobs/{id}        → progress   curl :8080/jobs/{id}/result → tally
//	// curl :8080/stats            → fleet/queue/cache health
//
// mcserver remains the single-job CLI (a one-job registry that drains its
// fleet on completion); both binaries checkpoint on Ctrl-C so a long job
// is never lost.
//
// # Crash durability
//
// mcqueue survives more than polite deaths: started with -wal-dir, it
// writes every control-plane transition (job accepted, chunk batches
// reduced, amortized tally snapshots, finalize, cancel) to a segmented,
// CRC32C-framed write-ahead journal (internal/wal) before serving it.
// After a SIGKILL, OOM-kill or power cut, the restart replays the
// journal before /readyz flips: accepted jobs come back under their
// original IDs, finished jobs re-seed the result cache, and anything
// reduced since the last snapshot is recomputed — chunk tallies are pure
// functions of (seed, stream, fan) — so the resumed tally is
// byte-identical to an uninterrupted run's. -wal-fsync picks the
// durability/latency trade (always, interval, none), SIGTERM compacts
// the journal to a snapshot, and a fault-injection harness
// (internal/fault, TestCrashChaosEndToEnd, make crash-smoke) proves the
// contract by SIGKILLing the real binary at armed crashpoints inside the
// journal's append, rotation and compaction windows.
//
// # Adaptive precision
//
// A job may carry a PrecisionTarget instead of a fixed photon budget —
// "diffuse reflectance to 1% relative standard error" — the standard
// Monte Carlo stopping rule. With Spec.TrackMoments set, every chunk
// tally carries second moments of the headline observables (one weighted
// sample per chunk; Tally.Moments), so any partial reduction yields an
// unbiased standard-error estimate in any merge order. The registry
// issues chunks open-endedly, re-estimates the RSE as batches land, and
// finalizes the job the moment the target is met, normalizing by the
// photons actually simulated; GET /jobs/{id} reports the live estimate
// ± CI and photons spent, and RunAdaptive is the local equivalent:
//
//	tgt := phomc.PrecisionTarget{Observable: phomc.ObsDiffuse, RelErr: 0.01}
//	tally, err := phomc.RunAdaptive(cfg, tgt, 42, 10_000, 0)
//	est, ci := tally.EstimateCI(phomc.ObsDiffuse)
//
// One caveat is structural: the rule tests an *estimated* variance, and
// stopping on a noisy estimate selects for optimistic draws — stop too
// early and the reported CI is overconfident. Target.MinPhotons is the
// guard: it defers the first RSE test until enough chunks (16 by
// default) back the estimate; raise it when targeting a precision barely
// reachable at the floor. Zero-mean observables never meet a relative
// target, so Target.MaxPhotons (operator-cappable) bounds every run.
// See DESIGN.md's "Adaptive precision" section and examples/adaptive.
//
// # Result plane
//
// The distributed result path (protocol v3) is engineered so that fleet
// throughput tracks kernel throughput rather than per-chunk bookkeeping:
// workers compute each chunk across a job-defined fan of jump-separated
// sub-streams on all their cores (RunStreamFan — the tally depends on the
// fan width, never on the core count), pre-reduce consecutive chunk
// tallies per job, and flush them as one batch riding the next task
// request, with tallies encoded by a sparse binary codec instead of gob
// and per-chunk acks preserving the exactly-once reduction under timeout
// reassignment. The registry merges each decoded batch outside its
// dispatch lock via a per-job reducer. See DESIGN.md's "Result plane"
// section for the wire layout and invariants.
//
// # Fleet introspection
//
// The service answers not just "how much" (Prometheus-style /metrics,
// structured logs, per-job lifecycle traces at /jobs/{id}/events with
// ?kind= and ?since= filters) but "who" and "where the time went":
// workers piggyback a small telemetry report on their task requests —
// kernel photons/sec EWMA, per-chunk compute/encode seconds, holding
// depth, runtime stats, build version — as additive gob fields a v4
// worker simply omits. The registry folds reports into per-session
// profiles served at GET /fleet (FleetSession), joins its own
// queued/granted/arrival stamps with the worker-reported compute time
// into per-chunk spans (ChunkSpan: queue, wire, compute and reduce
// segments, served at /jobs/{id}/spans and fed into aggregate
// histograms), and cmd/mctop renders the whole plane as a live
// terminal dashboard. See DESIGN.md's "Fleet introspection" section.
//
// # Performance
//
// The per-photon hot path is allocation-free and trig-free: exponential
// steps come from a ziggurat sampler, azimuths from polar rejection,
// per-region optical constants from tables built once per run, and layered
// stacks trace through a devirtualised fast path while voxel grids fuse
// same-medium DDA runs via a precomputed safe-radius map. Committed golden
// tallies (internal/mc/testdata) pin the physics bit-for-bit, and
// statistical gates prove the specialised paths equivalent to the
// reference tracer; see DESIGN.md's "Performance" section. cmd/mcbench
// writes the machine-readable throughput snapshot (BENCH_pr4.json).
//
// The library is organised as a thin facade over focused internal packages;
// see DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-figure reproductions.
package phomc
