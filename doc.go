// Package phomc is a distributed Monte Carlo simulator of light transport
// in tissue, reproducing Page, Coyle et al., "Distributed Monte Carlo
// Simulation of Light Transportation in Tissue" (IPPS 2006).
//
// Photon packets are traced through layered tissue models (hop–drop–spin
// with Henyey–Greenstein scattering, Fresnel refraction and internal
// reflection at layer boundaries, Russian roulette), scored on user-defined
// 3-D grids and surface detectors with optional pathlength gating, and the
// work can be fanned out over goroutines or a DataManager/worker cluster
// with exactly-once, order-independent reduction.
//
// # Quick start
//
//	cfg := &phomc.Config{
//		Model:    phomc.AdultHead(),
//		Source:   phomc.PencilSource(),
//		Detector: phomc.DiskDetector(20, 2.5),
//	}
//	tally, err := phomc.RunParallel(cfg, 1_000_000, 42, 0)
//	if err != nil { ... }
//	fmt.Println("DPF:", tally.DPF(20))
//
// The library is organised as a thin facade over focused internal packages;
// see DESIGN.md for the full system inventory and EXPERIMENTS.md for the
// paper-figure reproductions.
package phomc
