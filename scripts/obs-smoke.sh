#!/usr/bin/env bash
# obs-smoke.sh — end-to-end smoke test of the observability plane.
#
# Boots a real mcqueue and one mcworker, submits a job over the HTTP API
# with curl, and asserts the debug surface works from the outside:
# /readyz gates on the fleet listener and checkpoint resume, /metrics
# exposes the expected service- and worker-plane series with the right
# values for this known job (plus build identity), GET /jobs/{id}/events
# tells the lifecycle story (and filters by kind), GET /jobs/{id}/spans
# decomposes every chunk's timing, GET /fleet shows the worker's
# piggybacked telemetry, mctop -once renders it all, pprof answers,
# per-tenant admission control sheds a flooding tenant with 429 +
# a bucket-derived Retry-After (reason- and tenant-labeled on /metrics,
# bucket levels on GET /tenants) while another tenant's job completes, and
# SIGTERM shuts mcqueue down cleanly — with an unfinished job still
# queued, so the final checkpoint pass must actually run before the
# process exits (a drain that returns early loses it).
#
# Stdlib + curl only; run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

FLEET=127.0.0.1:19876
HTTP=127.0.0.1:18080
WDBG=127.0.0.1:18081

WORK=$(mktemp -d)
QPID= WPID=
cleanup() {
  [ -n "$WPID" ] && kill "$WPID" 2>/dev/null || true
  [ -n "$QPID" ] && kill "$QPID" 2>/dev/null || true
  wait 2>/dev/null || true
  if [ "${FAILED:-0}" != 0 ]; then
    echo "--- mcqueue log ---"; cat "$WORK/mcqueue.log" 2>/dev/null || true
    echo "--- mcworker log ---"; cat "$WORK/mcworker.log" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  FAILED=1
  echo "obs-smoke: FAIL: $*" >&2
  exit 1
}

wait_http() { # url: poll until 200 or give up
  for _ in $(seq 1 100); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "timeout waiting for $1"
}

echo "obs-smoke: building..."
go build -ldflags '-X repro/internal/obs.Version=smoke-test' -o "$WORK" \
  ./cmd/mcqueue ./cmd/mcworker ./cmd/mctop
go run ./scripts/genjob >"$WORK/job.json"

# Tenant table: alice gets a 3x scheduling weight, flood may create one
# job per 50s burst-1 — the default class stays unlimited so the rest of
# the smoke test is unaffected. Passing -tenants also auto-upgrades the
# scheduling policy to tenant-fair.
cat >"$WORK/tenants.json" <<'EOF'
{
  "default": {},
  "tenants": {
    "alice": {"weight": 3},
    "flood": {"jobsPerSec": 0.02, "jobBurst": 1}
  }
}
EOF

"$WORK/mcqueue" -addr "$FLEET" -http "$HTTP" -log-format json \
  -tenants "$WORK/tenants.json" \
  -checkpoint-dir "$WORK/ckpt" >"$WORK/mcqueue.log" 2>&1 &
QPID=$!
wait_http "http://$HTTP/readyz"

"$WORK/mcworker" -addr "$FLEET" -name smoke-worker -debug-addr "$WDBG" \
  -log-format json >"$WORK/mcworker.log" 2>&1 &
WPID=$!
# Worker readiness flips only once its server session is established.
wait_http "http://$WDBG/readyz"

echo "obs-smoke: submitting job..."
ID=$(curl -fsS -X POST "http://$HTTP/jobs" -d @"$WORK/job.json" |
  sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$ID" ] || fail "POST /jobs returned no job id"

for _ in $(seq 1 150); do
  STATE=$(curl -fsS "http://$HTTP/jobs/$ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$STATE" = done ] && break
  sleep 0.2
done
[ "$STATE" = done ] || fail "job stuck in state '$STATE'"

curl -fsS "http://$HTTP/healthz" >/dev/null || fail "/healthz not OK"
curl -fsS "http://$HTTP/debug/pprof/cmdline" >/dev/null || fail "pprof not mounted"

echo "obs-smoke: checking scraped series..."
METRICS=$(curl -fsS "http://$HTTP/metrics")
expect() { # series value
  echo "$METRICS" | grep -q "^$1 $2\$" ||
    fail "expected '$1 $2' in /metrics, got: $(echo "$METRICS" | grep "^$1" || echo '<absent>')"
}
expect "service_jobs_submitted_total" 1
expect "service_chunks_completed_total" 4       # 2000 photons / 500 per chunk
expect "service_photons_reduced_total" 2000
expect "fleet_sessions_total" 1
expect 'service_jobs{state="done"}' 1
echo "$METRICS" | grep -q '^service_reduce_seconds_bucket' || fail "reduce histogram absent"
echo "$METRICS" | grep -q '^service_span_compute_seconds_count 4$' ||
  fail "span histograms did not observe all 4 chunks"
echo "$METRICS" | grep -Eq '^mc_build_info\{.*version="smoke-test".*\} 1$' ||
  fail "mc_build_info missing the -ldflags-injected version"
echo "$METRICS" | grep -q '^process_uptime_seconds' || fail "uptime metric absent"

EVENTS=$(curl -fsS "http://$HTTP/jobs/$ID/events")
for kind in submitted chunk-granted chunk-completed finalized; do
  echo "$EVENTS" | grep -q "\"kind\":\"$kind\"" || fail "event trace missing '$kind'"
done
FILTERED=$(curl -fsS "http://$HTTP/jobs/$ID/events?kind=chunk-completed")
echo "$FILTERED" | grep -q '"kind":"submitted"' && fail "?kind= filter leaked other kinds"
[ "$(echo "$FILTERED" | grep -o '"kind":"chunk-completed"' | wc -l)" = 4 ] ||
  fail "?kind=chunk-completed did not return exactly the 4 completions"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://$HTTP/jobs/$ID/events?kind=bogus")
[ "$CODE" = 400 ] || fail "unknown event kind answered $CODE, want 400"

echo "obs-smoke: checking spans and fleet telemetry..."
SPANS=$(curl -fsS "http://$HTTP/jobs/$ID/spans")
[ "$(echo "$SPANS" | grep -o '"chunk":' | wc -l)" = 4 ] || fail "expected 4 spans: $SPANS"
for seg in queueSeconds wireSeconds computeSeconds reduceSeconds; do
  echo "$SPANS" | grep -q "\"$seg\":" || fail "spans missing segment '$seg': $SPANS"
done
echo "$SPANS" | grep -q '"worker":"smoke-worker"' || fail "spans lost worker attribution"

# The worker's piggybacked report rides its chunk requests at a gentle
# cadence; after the job it keeps idle-polling, so give it a moment.
FLEET_OK=0
for _ in $(seq 1 50); do
  FLEETJSON=$(curl -fsS "http://$HTTP/fleet")
  if echo "$FLEETJSON" | grep -q '"name":"smoke-worker"' &&
     echo "$FLEETJSON" | grep -Eq '"reportedPhotonsPerSec":[0-9]*\.?[0-9]*[1-9]'; then
    FLEET_OK=1; break
  fi
  sleep 0.2
done
[ "$FLEET_OK" = 1 ] || fail "/fleet never showed smoke-worker with a nonzero reported rate: ${FLEETJSON:-}"
echo "$FLEETJSON" | grep -q '"version":"smoke-test"' || fail "/fleet row missing worker build version"

echo "obs-smoke: mctop -once renders the dashboard..."
TOP=$("$WORK/mctop" -addr "http://$HTTP" -once)
echo "$TOP" | grep -q "smoke-worker" || fail "mctop does not list the worker: $TOP"
echo "$TOP" | grep -q "policy tenant-fair" || fail "mctop lost the stats header: $TOP"
echo "$TOP" | grep -q "build smoke-test" || fail "mctop lost the build version: $TOP"

WMETRICS=$(curl -fsS "http://$WDBG/metrics")
echo "$WMETRICS" | grep -q '^worker_photons_total 2000$' ||
  fail "worker did not account 2000 photons: $(echo "$WMETRICS" | grep '^worker_photons' || true)"
echo "$WMETRICS" | grep -q '^worker_chunks_computed_total 4$' || fail "worker chunk count wrong"
echo "$WMETRICS" | grep -Eq '^worker_conn_frames_total\{dir="send",type="result-batch"\} [1-9]' ||
  fail "wire frame counters silent"

echo "obs-smoke: tenant admission control..."
# alice, attributed via header, sails through and completes.
go run ./scripts/genjob -photons 2000 -seed 15 -label smoke-alice >"$WORK/alice.json"
AID=$(curl -fsS -X POST "http://$HTTP/jobs" -H "X-MC-Tenant: alice" -d @"$WORK/alice.json" |
  sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$AID" ] || fail "alice's POST /jobs returned no job id"

# flood's first job spends its burst-1 bucket...
go run ./scripts/genjob -photons 2000 -seed 16 -label smoke-flood-1 >"$WORK/flood1.json"
FID=$(curl -fsS -X POST "http://$HTTP/jobs" -H "X-MC-Tenant: flood" -d @"$WORK/flood1.json" |
  sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$FID" ] || fail "flood's first POST /jobs returned no job id"

# ...so the immediate second one sheds: 429, a refill-derived Retry-After
# (0.02 jobs/s → ~50s, certainly not the old constant "1"), and the shed
# reason in the error body.
go run ./scripts/genjob -photons 2000 -seed 17 -label smoke-flood-2 >"$WORK/flood2.json"
CODE=$(curl -s -o "$WORK/shed.body" -D "$WORK/shed.hdr" -w '%{http_code}' \
  -X POST "http://$HTTP/jobs" -H "X-MC-Tenant: flood" -d @"$WORK/flood2.json")
[ "$CODE" = 429 ] || fail "flooding tenant answered $CODE, want 429"
RETRY=$(tr -d '\r' <"$WORK/shed.hdr" | sed -n 's/^[Rr]etry-[Aa]fter: *\([0-9]*\)$/\1/p')
[ -n "$RETRY" ] && [ "$RETRY" -ge 2 ] ||
  fail "429 Retry-After '$RETRY' is not a bucket-derived wait"
grep -q 'tenant_rate' "$WORK/shed.body" || fail "429 body lost the shed reason: $(cat "$WORK/shed.body")"

# Both admitted jobs complete despite flood's empty bucket.
for JOB in "$AID" "$FID"; do
  for _ in $(seq 1 150); do
    STATE=$(curl -fsS "http://$HTTP/jobs/$JOB" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$STATE" = done ] && break
    sleep 0.2
  done
  [ "$STATE" = done ] || fail "tenant job $JOB stuck in state '$STATE'"
done

METRICS=$(curl -fsS "http://$HTTP/metrics")
expect 'service_jobs_shed_total{reason="tenant_rate"}' 1
expect 'service_tenant_jobs_shed_total{tenant="flood"}' 1
expect 'service_tenant_jobs_submitted_total{tenant="alice"}' 1
expect 'service_tenant_jobs_submitted_total{tenant="flood"}' 1
expect 'service_tenant_photons_total{tenant="alice"}' 2000

TENANTS=$(curl -fsS "http://$HTTP/tenants")
echo "$TENANTS" | grep -q '"admission":"token-bucket"' || fail "/tenants lost the policy name: $TENANTS"
echo "$TENANTS" | grep -q '"name":"flood"' || fail "/tenants does not list flood: $TENANTS"
echo "$TENANTS" | grep -q '"jobTokens":' || fail "/tenants carries no bucket levels: $TENANTS"
curl -fsS "http://$HTTP/stats" | grep -q '"tenants":{' || fail "/stats lost the tenant rollup"
curl -fsS "http://$HTTP/fleet" | grep -q '"tenants":\[' || fail "/fleet lost the tenant rollup"

TOP=$("$WORK/mctop" -addr "http://$HTTP" -once)
echo "$TOP" | grep -q "TENANT" || fail "mctop renders no tenant table: $TOP"
echo "$TOP" | grep -q "flood" || fail "mctop tenant table misses flood: $TOP"

echo "obs-smoke: graceful shutdown checkpoints the active job..."
# Stop the worker, then queue a job nothing can advance: it must still be
# active when SIGTERM lands, so a clean exit proves the drain waited for
# the final checkpoint pass instead of racing past it.
kill "$WPID" 2>/dev/null || true
wait "$WPID" 2>/dev/null || true
WPID=
go run ./scripts/genjob -photons 1000000 -seed 8 -label smoke-ckpt >"$WORK/bigjob.json"
ID2=$(curl -fsS -X POST "http://$HTTP/jobs" -d @"$WORK/bigjob.json" |
  sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$ID2" ] || fail "second POST /jobs returned no job id"

kill -TERM "$QPID"
ok=0
for _ in $(seq 1 50); do
  if ! kill -0 "$QPID" 2>/dev/null; then ok=1; break; fi
  sleep 0.2
done
[ "$ok" = 1 ] || fail "mcqueue did not exit on SIGTERM"
wait "$QPID" || fail "mcqueue exited non-zero on SIGTERM"
QPID=
[ -f "$WORK/ckpt/$ID2.ckpt" ] ||
  fail "SIGTERM with an active job left no checkpoint in $WORK/ckpt"

echo "obs-smoke: PASS"
