// Command genjob prints a small, valid POST /jobs request body for the
// observability smoke test (scripts/obs-smoke.sh). Generating the JSON
// from the real Spec types — instead of freezing a JSON string in the
// shell script — keeps the smoke job compiling against whatever the
// submission schema currently is.
package main

import (
	"encoding/json"
	"fmt"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
)

func main() {
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	spec := mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	req := service.JobRequest{Spec: spec, Photons: 2000, ChunkPhotons: 500, Seed: 7, Label: "smoke"}
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(b))
}
