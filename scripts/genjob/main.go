// Command genjob prints a small, valid POST /jobs request body for the
// observability smoke test (scripts/obs-smoke.sh). Generating the JSON
// from the real Spec types — instead of freezing a JSON string in the
// shell script — keeps the smoke job compiling against whatever the
// submission schema currently is. Flags size the job so the same tool can
// emit both the quick job the smoke test runs to completion and the big
// one it leaves active across the SIGTERM checkpoint pass.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
)

func main() {
	photons := flag.Int64("photons", 2000, "total photon packets")
	chunk := flag.Int64("chunk", 500, "photons per chunk")
	seed := flag.Uint64("seed", 7, "master RNG seed")
	label := flag.String("label", "smoke", "job label")
	flag.Parse()

	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	spec := mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	req := service.JobRequest{Spec: spec, Photons: *photons, ChunkPhotons: *chunk,
		Seed: *seed, Label: *label}
	b, err := json.Marshal(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "genjob:", err)
		os.Exit(1)
	}
	fmt.Println(string(b))
}
