#!/usr/bin/env bash
# crash-smoke.sh — end-to-end smoke test of the crash-durable journal.
#
# Boots a real mcqueue with the write-ahead journal armed and a fault
# crashpoint set so the process SIGKILLs itself mid-run — after a journal
# append has been staged but before its fsync, the worst ordinary-crash
# window — then restarts it disarmed on the same journal directory and
# asserts, from the outside, what the durability contract promises: the
# restart replays the journal before /readyz flips, the accepted job is
# still there under the SAME job ID it was accepted with, the job runs to
# completion through the worker's reconnect loop, and a final SIGTERM
# compacts the journal down to a snapshot. The cheap always-on CI cousin
# of the full crash-chaos matrix in cmd/mcqueue's TestCrashChaosEndToEnd.
#
# Stdlib + curl only; run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

FLEET=127.0.0.1:19886
HTTP=127.0.0.1:18090

WORK=$(mktemp -d)
QPID= WPID=
cleanup() {
  [ -n "$WPID" ] && kill "$WPID" 2>/dev/null || true
  [ -n "$QPID" ] && kill "$QPID" 2>/dev/null || true
  wait 2>/dev/null || true
  if [ "${FAILED:-0}" != 0 ]; then
    echo "--- mcqueue log (crash run) ---"; cat "$WORK/mcqueue-crash.log" 2>/dev/null || true
    echo "--- mcqueue log (restart) ---"; cat "$WORK/mcqueue-restart.log" 2>/dev/null || true
    echo "--- mcworker log ---"; cat "$WORK/mcworker.log" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  FAILED=1
  echo "crash-smoke: FAIL: $*" >&2
  exit 1
}

wait_http() { # url: poll until 200 or give up
  for _ in $(seq 1 150); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "timeout waiting for $1"
}

echo "crash-smoke: building..."
go build -o "$WORK" ./cmd/mcqueue ./cmd/mcworker
# Enough chunks that the armed append is mid-job, nowhere near the end.
go run ./scripts/genjob -photons 16000 -chunk 250 -seed 99 >"$WORK/job.json"

start_queue() { # logfile [extra env...]
  local log="$1"; shift
  # Tiny segments so the smoke run exercises rotation too, and a snapshot
  # every 2 chunks so the replay folds snapshots, not just raw records.
  env "$@" "$WORK/mcqueue" -addr "$FLEET" -http "$HTTP" \
    -wal-dir "$WORK/wal" -wal-fsync interval \
    -wal-segment-bytes 4096 -wal-snapshot-every 2 \
    -checkpoint-dir "$WORK/ckpt" -log-format json >"$log" 2>&1 &
  QPID=$!
}

# Run 1: armed to SIGKILL itself on the 6th journal append — the accept
# record plus a few reduced chunk batches in, with a staged-but-unsynced
# append in flight.
echo "crash-smoke: starting armed mcqueue..."
start_queue "$WORK/mcqueue-crash.log" MC_CRASHPOINT=wal.post-append MC_CRASH_AFTER=6
wait_http "http://$HTTP/readyz"

"$WORK/mcworker" -addr "$FLEET" -name crash-worker \
  -log-format json >"$WORK/mcworker.log" 2>&1 &
WPID=$!

ID=$(curl -fsS -X POST "http://$HTTP/jobs" -d @"$WORK/job.json" |
  sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
[ -n "$ID" ] || fail "POST /jobs returned no job id"
echo "crash-smoke: job $ID accepted; waiting for the crashpoint..."

# The crashpoint must kill the process, not let the job finish.
STATUS=0
wait "$QPID" || STATUS=$?
QPID=
[ "$STATUS" = 137 ] || fail "armed mcqueue exited with status $STATUS, want 137 (SIGKILL)"

# Run 2: disarmed, same journal, same ports. The worker is still running
# and reconnects on its own backoff.
echo "crash-smoke: restarting on the same journal..."
start_queue "$WORK/mcqueue-restart.log"
wait_http "http://$HTTP/readyz"

METRICS=$(curl -fsS "http://$HTTP/metrics")
echo "$METRICS" | grep -Eq '^wal_replay_records_total [1-9]' ||
  fail "restart replayed no journal records: $(echo "$METRICS" | grep '^wal_' || echo '<no wal series>')"
echo "$METRICS" | grep -q '^service_jobs_replayed_total 1$' ||
  fail "restart did not replay exactly the 1 accepted job"

# The job must survive under its original ID — a kill must not re-key it.
curl -fsS "http://$HTTP/jobs/$ID" >/dev/null ||
  fail "job $ID lost across the crash: $(curl -fsS "http://$HTTP/jobs")"

echo "crash-smoke: waiting for the replayed job to finish..."
for _ in $(seq 1 300); do
  STATE=$(curl -fsS "http://$HTTP/jobs/$ID" | sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
  [ "$STATE" = done ] && break
  sleep 0.2
done
[ "$STATE" = done ] || fail "replayed job stuck in state '$STATE'"
curl -fsS "http://$HTTP/jobs/$ID/result" | grep -q '"tally"' ||
  fail "replayed job has no result"

# SIGTERM: the shutdown pass doubles as a final compaction — the journal
# must shrink to one compacted segment holding the finished job's snapshot.
echo "crash-smoke: SIGTERM compaction..."
kill -TERM "$QPID"
STATUS=0
wait "$QPID" || STATUS=$?
QPID=
[ "$STATUS" = 0 ] || fail "mcqueue exited $STATUS on SIGTERM"
grep -q '"msg":"wal: compacted"' "$WORK/mcqueue-restart.log" ||
  fail "SIGTERM pass did not compact the journal"
SEGS=$(ls "$WORK/wal"/wal-*.log | wc -l)
[ "$SEGS" = 1 ] || fail "journal left $SEGS segments after compaction, want 1"

echo "crash-smoke: PASS"
