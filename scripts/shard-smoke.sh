#!/usr/bin/env bash
# shard-smoke.sh — end-to-end smoke test of the sharded control plane.
#
# Boots the real deployment cmd/mcgate documents: two mcqueue shards, the
# second with a lease-file standby blocked on the same journal directory,
# a worker per shard (the second dialing "primary,standby"), and a
# stateless mcgate over both. Submits a batch of jobs through the gateway,
# proves both shards own some of them, then SIGKILLs shard 1's primary
# mid-run and asserts the failover contract from the outside: the standby
# takes the flock lease, replays the journal, and inherits the shard; the
# worker's reconnect rotation lands on it; the gateway fails requests over
# on connection errors; every accepted job completes under the job ID it
# was accepted with — zero loss — and each tally is byte-identical to a
# reference single-node run of the same submissions. The cheap always-on
# CI cousin of internal/gateway's failover tests, through real processes,
# sockets and kill -9.
#
# Stdlib + curl only; run from anywhere inside the repo.
set -euo pipefail

cd "$(dirname "$0")/.."

REF_FLEET=127.0.0.1:19895 REF_HTTP=127.0.0.1:18189
F0=127.0.0.1:19896       H0=127.0.0.1:18190
F1=127.0.0.1:19897       H1=127.0.0.1:18191
F1B=127.0.0.1:19898      H1B=127.0.0.1:18192
GW=127.0.0.1:18195
JOBS=12

WORK=$(mktemp -d)
PIDS=()
P1PID= SBPID=
cleanup() {
  [ ${#PIDS[@]} -gt 0 ] && kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  if [ "${FAILED:-0}" != 0 ]; then
    for log in "$WORK"/*.log; do
      echo "--- $(basename "$log") ---"; tail -40 "$log" 2>/dev/null || true
    done
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  FAILED=1
  echo "shard-smoke: FAIL: $*" >&2
  exit 1
}

wait_http() { # url: poll until 200 or give up
  for _ in $(seq 1 150); do
    curl -fsS "$1" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  fail "timeout waiting for $1"
}

wait_done() { # base id: poll a job to state done
  local state=
  for _ in $(seq 1 450); do
    state=$(curl -fsS "http://$1/jobs/$2" 2>/dev/null |
      sed -n 's/.*"state":"\([a-z]*\)".*/\1/p')
    [ "$state" = done ] && return 0
    sleep 0.2
  done
  fail "job $2 stuck in state '${state:-unreachable}' on $1"
}

echo "shard-smoke: building..."
go build -o "$WORK" ./cmd/mcqueue ./cmd/mcworker ./cmd/mcgate
for i in $(seq 1 $JOBS); do
  go run ./scripts/genjob -photons 6000 -chunk 200 -seed "$i" >"$WORK/job$i.json"
done

# Reference run: the same submissions against one plain mcqueue. Job IDs
# are content-addressed, so the sharded run must mint the same IDs, and a
# single worker makes the tally fold deterministic — the reference bytes
# are the sharded run's acceptance bytes.
echo "shard-smoke: reference single-node run..."
"$WORK/mcqueue" -addr "$REF_FLEET" -http "$REF_HTTP" \
  -log-format json >"$WORK/ref-mcqueue.log" 2>&1 &
REFQPID=$!; PIDS+=("$REFQPID")
wait_http "http://$REF_HTTP/readyz"
"$WORK/mcworker" -addr "$REF_FLEET" -name ref-worker -flush-chunks 1 \
  -log-format json >"$WORK/ref-mcworker.log" 2>&1 &
PIDS+=($!)

declare -a IDS
for i in $(seq 1 $JOBS); do
  IDS[$i]=$(curl -fsS -X POST "http://$REF_HTTP/jobs" -d @"$WORK/job$i.json" |
    sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
  [ -n "${IDS[$i]}" ] || fail "reference POST /jobs $i returned no id"
done
for i in $(seq 1 $JOBS); do
  wait_done "$REF_HTTP" "${IDS[$i]}"
  curl -fsS "http://$REF_HTTP/jobs/${IDS[$i]}/result" |
    sed 's/.*"tally"://' >"$WORK/ref-tally-$i.json"
done
kill -TERM "$REFQPID" 2>/dev/null || true
wait "$REFQPID" 2>/dev/null || true

# Sharded topology: shard 0 alone; shard 1 as primary + standby sharing
# one journal directory and one lease file (the standby blocks in
# AcquireLease and must not bind its ports yet). -wal-fsync always so a
# kill -9 can never outrun an accepted job's durability.
echo "shard-smoke: starting 2 shards (+1 standby), workers, gateway..."
"$WORK/mcqueue" -addr "$F0" -http "$H0" \
  -wal-dir "$WORK/s0" -wal-fsync always -lease-file "$WORK/s0.lease" \
  -log-format json >"$WORK/shard0.log" 2>&1 &
PIDS+=($!)
"$WORK/mcqueue" -addr "$F1" -http "$H1" \
  -wal-dir "$WORK/s1" -wal-fsync always -lease-file "$WORK/s1.lease" \
  -log-format json >"$WORK/shard1-primary.log" 2>&1 &
P1PID=$!; PIDS+=("$P1PID")
wait_http "http://$H0/readyz"
wait_http "http://$H1/readyz"

"$WORK/mcqueue" -addr "$F1B" -http "$H1B" \
  -wal-dir "$WORK/s1" -wal-fsync always -lease-file "$WORK/s1.lease" \
  -log-format json >"$WORK/shard1-standby.log" 2>&1 &
SBPID=$!; PIDS+=("$SBPID")
sleep 1
curl -fsS "http://$H1B/readyz" >/dev/null 2>&1 &&
  fail "standby bound its HTTP port while the primary holds the lease"
grep -q "standby: waiting for shard lease" "$WORK/shard1-standby.log" ||
  fail "standby did not report blocking on the lease"

"$WORK/mcworker" -addr "$F0" -name shard0-worker -flush-chunks 1 \
  -log-format json >"$WORK/worker0.log" 2>&1 &
PIDS+=($!)
"$WORK/mcworker" -addr "$F1,$F1B" -name shard1-worker -flush-chunks 1 \
  -log-format json >"$WORK/worker1.log" 2>&1 &
PIDS+=($!)

"$WORK/mcgate" -http "$GW" -shard "$H0" -shard "$H1,$H1B" \
  -log-format json >"$WORK/mcgate.log" 2>&1 &
PIDS+=($!)
wait_http "http://$GW/readyz"

# The same submissions, now through the gateway. Content addressing must
# reproduce the reference IDs exactly.
for i in $(seq 1 $JOBS); do
  GID=$(curl -fsS -X POST "http://$GW/jobs" -d @"$WORK/job$i.json" |
    sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')
  [ "$GID" = "${IDS[$i]}" ] ||
    fail "gateway minted id $GID for job $i, reference minted ${IDS[$i]}"
done

# Both shards must own part of the batch, or the kill proves nothing.
sub() { curl -fsS "http://$1/stats" | sed -n 's/.*"jobsSubmitted":\([0-9]*\).*/\1/p'; }
S0=$(sub "$H0"); S1=$(sub "$H1")
[ "${S0:-0}" -ge 1 ] && [ "${S1:-0}" -ge 1 ] ||
  fail "uneven routing: shard0=$S0 shard1=$S1 of $JOBS jobs"
echo "shard-smoke: routed $S0/$S1 jobs; SIGKILL shard 1 primary..."

# The failover: kill -9 the primary mid-run. The kernel drops its flock,
# the standby wakes holding the lease, replays the journal, binds its
# ports; the worker's dial rotation and the gateway's replica failover
# both land on it with no operator action.
kill -9 "$P1PID"
STATUS=0; wait "$P1PID" || STATUS=$?
P1PID=
[ "$STATUS" = 137 ] || fail "primary exited $STATUS, want 137 (SIGKILL)"

wait_http "http://$H1B/readyz"
grep -q "shard lease acquired" "$WORK/shard1-standby.log" ||
  fail "standby never logged taking the lease"
MET=$(curl -fsS "http://$H1B/metrics")
echo "$MET" | grep -Eq '^service_jobs_replayed_total [1-9]' ||
  fail "standby replayed no jobs from the journal"

# Zero accepted-job loss: every job completes through the gateway under
# its original ID, and every tally is byte-identical to the reference.
echo "shard-smoke: draining through the gateway..."
for i in $(seq 1 $JOBS); do
  wait_done "$GW" "${IDS[$i]}"
  curl -fsS "http://$GW/jobs/${IDS[$i]}/result" |
    sed 's/.*"tally"://' >"$WORK/gw-tally-$i.json"
  cmp -s "$WORK/ref-tally-$i.json" "$WORK/gw-tally-$i.json" ||
    fail "job ${IDS[$i]} tally differs from the reference run"
done

# The gateway must have noticed: requests to shard 1 failed over to the
# standby replica at least once.
curl -fsS "http://$GW/metrics" | grep -Eq 'gateway_replica_failovers_total\{shard="1"\} [1-9]' ||
  fail "gateway recorded no replica failover for shard 1"

# Everything left shuts down cleanly.
echo "shard-smoke: SIGTERM the fleet..."
kill -TERM "${PIDS[@]}" 2>/dev/null || true
for p in "${PIDS[@]}"; do
  [ "$p" = "${SBPID:-}" ] && continue
  wait "$p" 2>/dev/null || true
done
STATUS=0; wait "$SBPID" || STATUS=$?
[ "$STATUS" = 0 ] || fail "standby-turned-primary exited $STATUS on SIGTERM"

echo "shard-smoke: PASS"
