package phomc

import (
	"io"
	"net"

	"repro/internal/distsys"
	"repro/internal/mc"
)

// Distributed execution, re-exported from the DataManager/worker subsystem.
type (
	// JobOptions configure a distributed simulation job on the server.
	JobOptions = distsys.JobOptions
	// DataManager is the server that assigns chunks and reduces results.
	DataManager = distsys.DataManager
	// JobResult is a completed distributed job's outcome.
	JobResult = distsys.Result
	// WorkerOptions configure a worker client.
	WorkerOptions = distsys.WorkerOptions
	// WorkerStats summarise one worker session.
	WorkerStats = distsys.WorkerStats
	// JobCheckpoint is a resumable snapshot of a running job.
	JobCheckpoint = distsys.Checkpoint
)

// LoadCheckpoint reads a job checkpoint saved by DataManager.Checkpoint.
func LoadCheckpoint(path string) (*JobCheckpoint, error) {
	return distsys.LoadCheckpoint(path)
}

// ResumeJob rebuilds a DataManager from a checkpoint; already-reduced
// chunks stay reduced and the completed job is bit-identical to an
// uninterrupted one.
func ResumeJob(cp *JobCheckpoint, opts JobOptions) (*DataManager, error) {
	return distsys.Resume(cp, opts)
}

// NewSpec packages a model, source spec and detector spec into the
// serialisable Spec a DataManager distributes to its workers.
func NewSpec(model *Model, src SourceSpec, det DetectorSpec) *Spec {
	return mc.NewSpec(model, src, det)
}

// NewDataManager prepares a distributed job.
func NewDataManager(opts JobOptions) (*DataManager, error) {
	return distsys.NewDataManager(opts)
}

// Work runs a worker session over any stream transport until the job
// completes.
func Work(rw io.ReadWriteCloser, opts WorkerOptions) (*WorkerStats, error) {
	return distsys.Work(rw, opts)
}

// WorkTCP dials the DataManager at addr and runs a worker session.
func WorkTCP(addr string, opts WorkerOptions) (*WorkerStats, error) {
	return distsys.WorkTCP(addr, opts)
}

// ServeJob is the one-call server convenience: it listens on addr (e.g.
// ":9876"), serves workers until the job completes, and returns the reduced
// result. The returned address is useful with addr ":0".
func ServeJob(addr string, opts JobOptions) (*JobResult, error) {
	dm, err := distsys.NewDataManager(opts)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go dm.Serve(l)
	return dm.Wait(0)
}
