package phomc

import (
	"repro/internal/diffusion"
	"repro/internal/inverse"
	"repro/internal/stats"
	"repro/internal/tof"
)

// Analysis helpers re-exported from the diffusion-theory and time-of-flight
// subsystems.

type (
	// DiffusionMedium is the analytic diffusion-approximation model of a
	// semi-infinite medium — the closed-form baseline for validating Monte
	// Carlo results (Farrell dipole model).
	DiffusionMedium = diffusion.Medium
	// TPSF is a temporal point spread function derived from a detected
	// pathlength histogram.
	TPSF = tof.TPSF
	// Histogram is the weighted histogram used by tallies.
	Histogram = stats.Histogram
)

// SpeedOfLight is c in mm/ns, the unit system of this library.
const SpeedOfLight = tof.C0

// NewDiffusionMedium derives the diffusion model from optical properties
// and the outside refractive index. It fails outside the diffusive regime
// (µa ≳ µs′ or no scattering).
func NewDiffusionMedium(p Properties, nOut float64) (DiffusionMedium, error) {
	return diffusion.New(p, nOut)
}

// TimeGate converts a temporal detection window [tMin, tMax] ns into the
// pathlength Gate the kernel applies, assuming a uniform refractive index —
// the physical form of the paper's "gated differential pathlengths".
func TimeGate(tMinNs, tMaxNs, n float64) (Gate, error) {
	return tof.GateFromTimeWindow(tMinNs, tMaxNs, n)
}

// TPSFFromTally converts a tally's detected-pathlength histogram into a
// temporal point spread function. It returns nil when the run did not
// request a PathHist.
func TPSFFromTally(t *Tally, n float64) *TPSF {
	return tof.FromPathHistogram(t.PathHist, n)
}

// Inverse-problem types: fitting optical properties from measured
// reflectance profiles — the role the paper's forward model plays in
// optical imaging studies.
type (
	// ReflectanceMeasurement is a spatially resolved R(ρ) profile.
	ReflectanceMeasurement = inverse.Measurement
	// FitResult is a recovered (µa, µs′) pair with diagnostics.
	FitResult = inverse.Result
	// FitOptions tune the inverse solver.
	FitOptions = inverse.Options
)

// FitOpticalProperties recovers the absorption and transport scattering
// coefficients of a semi-infinite medium from a measured radial reflectance
// profile, using the diffusion dipole model and a simplex search.
func FitOpticalProperties(m ReflectanceMeasurement, n, nOut float64, opt FitOptions) (FitResult, error) {
	return inverse.FitSemiInfinite(m, n, nOut, opt)
}

// MeasurementFromTally extracts the (ρ, R) profile of a run that scored
// radial reflectance, restricted to the given radius window.
func MeasurementFromTally(t *Tally, rhoMin, rhoMax float64) ReflectanceMeasurement {
	rho, r := t.RadialReflectance()
	var m ReflectanceMeasurement
	for i := range rho {
		if rho[i] >= rhoMin && rho[i] <= rhoMax {
			m.Rho = append(m.Rho, rho[i])
			m.R = append(m.R, r[i])
		}
	}
	return m
}
