package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/distsys"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
)

func slabSpec(thicknessMM float64) *mc.Spec {
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, thicknessMM)
	return mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

// shardServer is one backing shard: a registry with its own worker pump
// behind a real HTTP listener.
func shardServer(t *testing.T, opts service.Options, workers int) (*service.Registry, *httptest.Server) {
	t.Helper()
	reg := service.New(opts)
	for i := 0; i < workers; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		go func(i int) {
			_, _ = distsys.Work(client, distsys.WorkerOptions{Name: fmt.Sprintf("w%d", i)})
		}(i)
		t.Cleanup(func() { client.Close() })
	}
	ts := httptest.NewServer(service.NewAPI(reg).Handler())
	t.Cleanup(ts.Close)
	return reg, ts
}

func gatewayServer(t *testing.T, opts Options) (*Gateway, *httptest.Server) {
	t.Helper()
	g, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(g.Handler())
	t.Cleanup(ts.Close)
	return g, ts
}

func post(t *testing.T, url, tenant string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(service.TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

func submitJob(t *testing.T, base, tenant string, req service.JobRequest) service.JobAccepted {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, raw := post(t, base+"/jobs", tenant, body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /jobs: http %d: %s", resp.StatusCode, raw)
	}
	var acc service.JobAccepted
	if err := json.Unmarshal([]byte(raw), &acc); err != nil {
		t.Fatalf("bad accept body %q: %v", raw, err)
	}
	return acc
}

func waitDone(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, raw := get(t, base+"/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: http %d: %s", id, code, raw)
		}
		var st service.JobStatus
		if err := json.Unmarshal([]byte(raw), &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case service.StateDone.String():
			return
		case service.StateCanceled.String():
			t.Fatalf("job %s canceled", id)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// TestGatewayRoutesAndCompletes is the tentpole e2e: jobs submitted to a
// 2-shard gateway land on the shard owning their key, complete on that
// shard's fleet, and every read — status, result, list, stats — comes
// back through the gateway as if it were one registry.
func TestGatewayRoutesAndCompletes(t *testing.T) {
	regA, tsA := shardServer(t, service.Options{}, 2)
	regB, tsB := shardServer(t, service.Options{}, 2)
	_, gw := gatewayServer(t, Options{Shards: [][]string{{tsA.URL}, {tsB.URL}}})

	const jobs = 8
	ids := make([]string, 0, jobs)
	for seed := uint64(1); seed <= jobs; seed++ {
		acc := submitJob(t, gw.URL, "", service.JobRequest{
			Spec: slabSpec(5), Photons: 300, ChunkPhotons: 100, Seed: seed,
		})
		ids = append(ids, acc.ID)
	}
	for _, id := range ids {
		waitDone(t, gw.URL, id)
	}
	if a, b := regA.Stats().JobsSubmitted, regB.Stats().JobsSubmitted; a == 0 || b == 0 || a+b != jobs {
		t.Fatalf("shard split %d/%d, want both nonzero summing to %d", a, b, jobs)
	}

	// The gateway's proxied result bytes are the shard's own bytes: fetch
	// each result both ways and compare verbatim.
	for _, id := range ids {
		code, viaGW := get(t, gw.URL+"/jobs/"+id+"/result")
		if code != http.StatusOK {
			t.Fatalf("result via gateway: http %d: %s", code, viaGW)
		}
		direct := tsA
		var idNum uint64
		fmt.Sscanf(id, "%016x", &idNum)
		if service.ShardOfID(idNum, 2) == 1 {
			direct = tsB
		}
		if _, viaShard := get(t, direct.URL+"/jobs/"+id+"/result"); viaShard != viaGW {
			t.Fatalf("gateway result differs from shard result for %s:\n%s\nvs\n%s", id, viaGW, viaShard)
		}
	}

	// Aggregated surfaces: /stats sums, GET /jobs concatenates, /fleet
	// concatenates workers.
	code, raw := get(t, gw.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	var st statsBody
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 2 || st.ShardsUp != 2 {
		t.Fatalf("stats shards %d up %d, want 2/2", st.Shards, st.ShardsUp)
	}
	if st.JobsDone != jobs || st.JobsSubmitted != jobs {
		t.Fatalf("aggregated stats done=%d submitted=%d, want %d", st.JobsDone, st.JobsSubmitted, jobs)
	}
	if st.Workers != 4 {
		t.Fatalf("aggregated workers %d, want 4", st.Workers)
	}
	code, raw = get(t, gw.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("GET /jobs: %d", code)
	}
	var listed []service.JobStatus
	if err := json.Unmarshal([]byte(raw), &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != jobs {
		t.Fatalf("gateway listed %d jobs, want %d", len(listed), jobs)
	}
	code, raw = get(t, gw.URL+"/fleet")
	if code != http.StatusOK {
		t.Fatalf("GET /fleet: %d", code)
	}
	var fl fleetView
	if err := json.Unmarshal([]byte(raw), &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Workers) != 4 {
		t.Fatalf("gateway fleet has %d workers, want 4", len(fl.Workers))
	}
}

// TestGatewayRoutingIsStableAcrossInstances pins statelessness: a second
// gateway built over the same shard list routes an identical submission
// to the same shard — there is no per-instance salt, table, or ordering
// dependence to lose in a restart.
func TestGatewayRoutingIsStableAcrossInstances(t *testing.T) {
	regA, tsA := shardServer(t, service.Options{}, 1)
	regB, tsB := shardServer(t, service.Options{}, 1)
	_, gw1 := gatewayServer(t, Options{Shards: [][]string{{tsA.URL}, {tsB.URL}}})
	_, gw2 := gatewayServer(t, Options{Shards: [][]string{{tsA.URL}, {tsB.URL}}})

	req := service.JobRequest{Spec: slabSpec(7), Photons: 200, ChunkPhotons: 100, Seed: 123}
	acc1 := submitJob(t, gw1.URL, "", req)
	acc2 := submitJob(t, gw2.URL, "", req) // coalesces or cache-hits on the same shard
	if acc1.ID != acc2.ID {
		t.Fatalf("two gateways minted different IDs for one spec: %s vs %s", acc1.ID, acc2.ID)
	}
	if got := regA.Stats().JobsSubmitted + regB.Stats().JobsSubmitted; got != 1 {
		t.Fatalf("identical submissions created %d jobs across shards, want 1", got)
	}
}

// TestGatewaySharedTierServesShardless proves the gateway's result tier
// is a real shared cache layer: once a result has flowed through the
// gateway, identical and meets-or-exceeds resubmissions are answered with
// every shard down — status and result served under a gateway-minted ID.
func TestGatewaySharedTierServesShardless(t *testing.T) {
	_, tsA := shardServer(t, service.Options{}, 2)
	_, tsB := shardServer(t, service.Options{}, 2)
	_, gw := gatewayServer(t, Options{Shards: [][]string{{tsA.URL}, {tsB.URL}}})

	fixed := service.JobRequest{Spec: slabSpec(4), Photons: 300, ChunkPhotons: 100, Seed: 3}
	tight := service.JobRequest{
		Spec: slabSpec(4), ChunkPhotons: 200, Seed: 3,
		Target: &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.05},
	}
	accFixed := submitJob(t, gw.URL, "", fixed)
	accTight := submitJob(t, gw.URL, "", tight)
	waitDone(t, gw.URL, accFixed.ID)
	waitDone(t, gw.URL, accTight.ID)
	// Results flow through the gateway once, filling the tier.
	if code, _ := get(t, gw.URL+"/jobs/"+accFixed.ID+"/result"); code != http.StatusOK {
		t.Fatalf("fixed result: %d", code)
	}
	code, tightRaw := get(t, gw.URL+"/jobs/"+accTight.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("tight result: %d", code)
	}

	tsA.Close()
	tsB.Close()

	// Exact resubmission: same bytes, shards dead, answer from the tier.
	body, _ := json.Marshal(fixed)
	resp, raw := post(t, gw.URL+"/jobs", "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact resubmission with shards down: http %d: %s", resp.StatusCode, raw)
	}
	var acc service.JobAccepted
	if err := json.Unmarshal([]byte(raw), &acc); err != nil {
		t.Fatal(err)
	}
	if !acc.Cached || acc.ID != accFixed.ID {
		t.Fatalf("tier answer %+v, want cached with original id %s", acc, accFixed.ID)
	}
	if code, _ := get(t, gw.URL+"/jobs/"+acc.ID); code != http.StatusOK {
		t.Fatalf("minted status: %d", code)
	}
	code, res := get(t, gw.URL+"/jobs/"+acc.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("minted result: %d", code)
	}
	var mintedRes, origRes service.JobResultBody
	if err := json.Unmarshal([]byte(res), &mintedRes); err != nil {
		t.Fatal(err)
	}
	if mintedRes.Tally == nil || !mintedRes.CacheHit {
		t.Fatalf("minted result not a cache hit with tally: %s", res)
	}

	// Meets-or-exceeds: a looser target over the same physics is a
	// different content key, but the stored tight run satisfies it.
	loose := tight
	loose.Target = &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.2}
	body, _ = json.Marshal(loose)
	resp, raw = post(t, gw.URL+"/jobs", "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meets-or-exceeds resubmission with shards down: http %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal([]byte(raw), &acc); err != nil {
		t.Fatal(err)
	}
	if !acc.Cached || acc.ID == accTight.ID {
		t.Fatalf("physics-tier answer %+v, want cached under a fresh minted id", acc)
	}
	code, res = get(t, gw.URL+"/jobs/"+acc.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("physics minted result: %d", code)
	}
	if err := json.Unmarshal([]byte(res), &mintedRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(tightRaw), &origRes); err != nil {
		t.Fatal(err)
	}
	if !mintedRes.TargetMet || mintedRes.Tally == nil ||
		mintedRes.Tally.Launched != origRes.Tally.Launched {
		t.Fatalf("physics tier served wrong depth: got %d launched, stored run has %d",
			mintedRes.Tally.Launched, origRes.Tally.Launched)
	}

	// A fresh spec no tier entry can answer fails loudly, not silently.
	other := service.JobRequest{Spec: slabSpec(11), Photons: 100, ChunkPhotons: 100, Seed: 9}
	body, _ = json.Marshal(other)
	resp, raw = post(t, gw.URL+"/jobs", "", body)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("fresh job with shards down: http %d: %s (want 502)", resp.StatusCode, raw)
	}
}

// TestGatewayFailoverPolicy pins the retry matrix with scripted replicas:
// connection errors and 503s walk to the next replica; 4xx answers are
// the shard's verdict and are never retried elsewhere.
func TestGatewayFailoverPolicy(t *testing.T) {
	accept := func() string {
		b, _ := json.Marshal(service.JobAccepted{ID: "00000000000000ab", State: "queued"})
		return string(b)
	}
	valid, _ := json.Marshal(service.JobRequest{
		Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: 1,
	})

	t.Run("connection error fails over", func(t *testing.T) {
		var liveHits int
		live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			liveHits++
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, accept())
		}))
		defer live.Close()
		dead := httptest.NewServer(http.NotFoundHandler())
		dead.Close() // nothing listens here any more
		_, gw := gatewayServer(t, Options{Shards: [][]string{{dead.URL, live.URL}}})
		resp, raw := post(t, gw.URL+"/jobs", "", valid)
		if resp.StatusCode != http.StatusCreated || liveHits != 1 {
			t.Fatalf("failover POST: http %d (live hits %d): %s", resp.StatusCode, liveHits, raw)
		}
	})

	t.Run("503 fails over, 4xx does not", func(t *testing.T) {
		var fallbackHits int
		flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"spec build failed"}`)
				return
			}
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"tenant rate"}`)
		}))
		defer flaky.Close()
		fallback := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			fallbackHits++
			w.WriteHeader(http.StatusCreated)
			fmt.Fprint(w, accept())
		}))
		defer fallback.Close()
		_, gw := gatewayServer(t, Options{Shards: [][]string{{flaky.URL, fallback.URL}}})
		// POST: first replica 503s, the fallback accepts.
		resp, raw := post(t, gw.URL+"/jobs", "", valid)
		if resp.StatusCode != http.StatusCreated || fallbackHits != 1 {
			t.Fatalf("503 failover: http %d (fallback hits %d): %s", resp.StatusCode, fallbackHits, raw)
		}
		// GET: first replica answers 429 — a verdict, passed through with
		// its Retry-After, and the fallback must not be consulted.
		before := fallbackHits
		req, _ := http.NewRequest(http.MethodGet, gw.URL+"/jobs/00000000000000ab", nil)
		r2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusTooManyRequests || r2.Header.Get("Retry-After") != "7" {
			t.Fatalf("4xx passthrough: http %d Retry-After %q", r2.StatusCode, r2.Header.Get("Retry-After"))
		}
		if fallbackHits != before {
			t.Fatalf("gateway retried a 4xx on the fallback replica")
		}
	})

	t.Run("malformed never routed", func(t *testing.T) {
		var hits int
		shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			hits++
			w.WriteHeader(http.StatusCreated)
		}))
		defer shard.Close()
		_, gw := gatewayServer(t, Options{Shards: [][]string{{shard.URL}}})
		bad, _ := json.Marshal(service.JobRequest{Spec: slabSpec(5)}) // no photons, no target
		resp, raw := post(t, gw.URL+"/jobs", "", bad)
		if resp.StatusCode != http.StatusUnprocessableEntity || hits != 0 {
			t.Fatalf("malformed job: http %d (shard hits %d): %s", resp.StatusCode, hits, raw)
		}
	})
}

// TestGatewayTenantFairnessAcrossShards is the two-tenant e2e through
// the gateway: admission runs at the routing tier over AlwaysAdmit
// shards, flood's burst sheds at the gateway with Retry-After, alice is
// untouched, and /tenants //stats roll the per-shard accounting up with
// the gateway's authoritative bucket levels.
func TestGatewayTenantFairnessAcrossShards(t *testing.T) {
	table := &service.TenantTable{Tenants: map[string]service.TenantClass{
		"flood": {JobsPerSec: 0.001, JobBurst: 1},
		"alice": {Weight: 3},
	}}
	regA, tsA := shardServer(t, service.Options{Tenants: table, Policy: service.TenantFairShare()}, 2)
	regB, tsB := shardServer(t, service.Options{Tenants: table, Policy: service.TenantFairShare()}, 2)
	oreg := obs.NewRegistry()
	_, gw := gatewayServer(t, Options{
		Shards:    [][]string{{tsA.URL}, {tsB.URL}},
		Admission: service.NewTokenBucket(table, nil),
		Obs:       oreg,
	})

	// Find seeds owned by each shard, so the fairness story provably
	// crosses the shard boundary.
	seedFor := func(shard int) uint64 {
		for seed := uint64(1); ; seed++ {
			spec := service.JobSpec{Spec: slabSpec(6), TotalPhotons: 300, ChunkPhotons: 100, Seed: seed}
			key, _, err := service.RoutingKeys(&spec, 0)
			if err != nil {
				t.Fatal(err)
			}
			if service.ShardOfKey(key, 2) == shard {
				return seed
			}
		}
	}
	floodAcc := submitJob(t, gw.URL, "flood", service.JobRequest{
		Spec: slabSpec(6), Photons: 300, ChunkPhotons: 100, Seed: seedFor(0),
	})
	aliceAcc := submitJob(t, gw.URL, "alice", service.JobRequest{
		Spec: slabSpec(6), Photons: 300, ChunkPhotons: 100, Seed: seedFor(1),
	})

	// Flood's second distinct job sheds at the gateway: no shard sees it.
	beforeA, beforeB := regA.Stats().JobsSubmitted, regB.Stats().JobsSubmitted
	body, _ := json.Marshal(service.JobRequest{
		Spec: slabSpec(9), Photons: 300, ChunkPhotons: 100, Seed: 77,
	})
	resp, raw := post(t, gw.URL+"/jobs", "flood", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood's second job: http %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("gateway shed carries no Retry-After")
	}
	if a, b := regA.Stats().JobsSubmitted, regB.Stats().JobsSubmitted; a != beforeA || b != beforeB {
		t.Fatalf("shed submission reached a shard: %d/%d -> %d/%d", beforeA, beforeB, a, b)
	}

	waitDone(t, gw.URL, floodAcc.ID)
	waitDone(t, gw.URL, aliceAcc.ID)

	// Cross-shard rollup: each tenant ran on a different shard, and the
	// gateway's /tenants merges them with its own bucket levels on top.
	code, tenRaw := get(t, gw.URL+"/tenants")
	if code != http.StatusOK {
		t.Fatalf("GET /tenants: %d", code)
	}
	var tens tenantsView
	if err := json.Unmarshal([]byte(tenRaw), &tens); err != nil {
		t.Fatal(err)
	}
	if tens.Admission != "token-bucket" {
		t.Fatalf("gateway admission name %q", tens.Admission)
	}
	var flood, alice *service.TenantStatus
	for i := range tens.Tenants {
		switch tens.Tenants[i].Name {
		case "flood":
			flood = &tens.Tenants[i]
		case "alice":
			alice = &tens.Tenants[i]
		}
	}
	if flood == nil || alice == nil {
		t.Fatalf("rollup missing tenants: %s", tenRaw)
	}
	if flood.Submitted != 1 || flood.Photons != 300 {
		t.Fatalf("flood rollup %+v", flood)
	}
	if alice.Submitted != 1 || alice.Weight != 3 {
		t.Fatalf("alice rollup %+v", alice)
	}
	if flood.JobTokens == nil || *flood.JobTokens >= 1 {
		t.Fatalf("gateway bucket levels not overlaid: %+v", flood)
	}
	// The shard-side shed counters stayed untouched — the gateway shed it.
	code, stRaw := get(t, gw.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	var st statsBody
	if err := json.Unmarshal([]byte(stRaw), &st); err != nil {
		t.Fatal(err)
	}
	if st.Tenants["flood"].Shed != 0 {
		t.Fatalf("shard-side shed %d, want 0 (gateway owns admission)", st.Tenants["flood"].Shed)
	}
}
