package gateway

import (
	"sync"

	"repro/internal/mc"
	"repro/internal/service"
)

// resultCache is the gateway's shared result tier: completed tallies it
// has seen flow back through proxied GET /jobs/{id}/result responses,
// keyed exactly like the per-shard caches — an exact index on the full
// content key and a meets-or-exceeds index on the physics key. A tenant
// on shard 0 thereby reuses physics shard 3 finished an hour ago without
// either shard knowing about the other.
//
// Entries are immutable once inserted: every tally is freshly decoded
// from a response body and only ever re-encoded, never merged into, so
// the cache hands out shared pointers without cloning.
type resultCache struct {
	mu  sync.Mutex
	max int
	// exact maps the full content key to its completed result.
	exact map[service.Key]*cachedResult
	// physics groups results of identical physics, any depth, for
	// meets-or-exceeds probes by precision-targeted submissions.
	physics map[service.Key][]*cachedResult
	order   []service.Key // insertion order, for FIFO eviction
}

// cachedResult is one completed run as the gateway saw it on the wire.
type cachedResult struct {
	key       service.Key
	pkey      service.Key
	target    *mc.Target // the stored run's own target, if it had one
	targetMet bool
	elapsed   float64
	tally     *mc.Tally
}

func newResultCache(size int) *resultCache {
	if size == 0 {
		size = 256
	}
	if size < 0 {
		size = 0
	}
	return &resultCache{
		max:     size,
		exact:   make(map[service.Key]*cachedResult),
		physics: make(map[service.Key][]*cachedResult),
	}
}

// get returns the exact-key entry, or nil.
func (c *resultCache) get(key service.Key) *cachedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.exact[key]
}

// getMeeting returns any stored run of the same physics deep enough to
// satisfy tgt, or nil.
func (c *resultCache) getMeeting(pkey service.Key, tgt *mc.Target) *cachedResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range c.physics[pkey] {
		if e.tally != nil && tgt.MetBy(e.tally) {
			return e
		}
	}
	return nil
}

// put inserts a completed result. Deepest run wins on an exact-key
// collision (a re-run can only add photons); results without a tally are
// dropped.
func (c *resultCache) put(e *cachedResult) {
	if c.max <= 0 || e == nil || e.tally == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old := c.exact[e.key]; old != nil {
		if old.tally.Launched >= e.tally.Launched {
			return
		}
		c.exact[e.key] = e
		group := c.physics[e.pkey]
		for i, g := range group {
			if g == old {
				group[i] = e
				break
			}
		}
		return
	}
	for len(c.order) >= c.max {
		c.evictLocked()
	}
	c.exact[e.key] = e
	c.physics[e.pkey] = append(c.physics[e.pkey], e)
	c.order = append(c.order, e.key)
}

func (c *resultCache) evictLocked() {
	victim := c.order[0]
	c.order = c.order[1:]
	e := c.exact[victim]
	if e == nil {
		return
	}
	delete(c.exact, victim)
	group := c.physics[e.pkey]
	for i, g := range group {
		if g == e {
			group = append(group[:i], group[i+1:]...)
			break
		}
	}
	if len(group) == 0 {
		delete(c.physics, e.pkey)
	} else {
		c.physics[e.pkey] = group
	}
}

// size reports the number of cached results.
func (c *resultCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.exact)
}
