// Package gateway is the stateless routing tier in front of N journaled
// registry shards. Each shard is an ordinary mcqueue daemon owning a
// contiguous range of the content-key space (service.ShardOfKey); the
// gateway computes every submission's key itself — the same
// normalize-and-hash the shards run — so routing is a pure function of
// the request bytes and the shard count. It holds no routing table and
// no durable state: a restarted gateway routes identically, and any
// number of gateways can front the same shards.
//
// Requests flow three ways:
//
//   - POST /jobs is keyed, checked against the gateway's shared result
//     tier (exact and physics-keyed meets-or-exceeds, filled from result
//     responses it has proxied), admission-checked when the gateway owns
//     the tenant buckets, and then forwarded to the owning shard.
//   - GET/DELETE /jobs/{id}... is routed by the ID alone: job IDs are
//     the uint64 prefix of the content key, so service.ShardOfID names
//     the owner with no lookup.
//   - GET /stats, /fleet, /tenants and GET /jobs fan out to every shard
//     and merge.
//
// Each shard may list several replicas (a primary and its lease-file
// standbys sharing one journal directory). The gateway tries them in
// order and fails over on connection errors and 503s — never on 4xx: a
// 422 is the client's own malformed job and deterministic, a 429 is the
// shard's admission verdict, and retrying either elsewhere would be
// wrong twice over. Re-sending a submission after a mid-flight error is
// safe because submissions are content-addressed: the shard that already
// accepted it coalesces or cache-hits the retry onto the same job ID.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/service"
)

// Options configure a Gateway.
type Options struct {
	// Shards lists, per shard, the replica base URLs ("http://host:port")
	// in preference order: the primary first, then any standbys waiting on
	// its lease file. The slice's length fixes the key-space partition —
	// changing it remaps keys, so grow a fleet by draining, not in place.
	Shards [][]string
	// Admission, when set, runs the tenant token buckets at the gateway —
	// the natural place once submissions fan out over shards that cannot
	// see each other's arrival rates. Shards behind an admitting gateway
	// should run AlwaysAdmit, or tenants pay twice. nil forwards
	// everything and leaves admission to the shards.
	Admission service.AdmissionPolicy
	// MaxTargetPhotons must match the shards' own -target-max-photons: it
	// participates in spec normalization and therefore in the content key.
	// 0 means the service default.
	MaxTargetPhotons int64
	// MaxBodyBytes caps the POST /jobs body exactly like service.API;
	// 0 means service.DefaultMaxBodyBytes, negative disables the cap.
	MaxBodyBytes int64
	// CacheSize bounds the gateway's shared result tier in entries;
	// 0 means 256, negative disables it.
	CacheSize int
	// Client issues the proxied requests; nil gets a 30s-timeout default.
	Client *http.Client
	// Obs receives gateway_* metrics; nil instruments privately.
	Obs *obs.Registry
	// Logger receives structured routing logs; nil discards.
	Logger *slog.Logger
}

// Gateway routes the service HTTP API across registry shards.
type Gateway struct {
	shards    [][]string
	admission service.AdmissionPolicy
	maxTarget int64
	maxBody   int64
	client    *http.Client
	log       *slog.Logger
	cache     *resultCache

	mu     sync.Mutex
	routed map[uint64]routeInfo // job ID -> keys, for result-tier fill
	order  []uint64             // routed insertion order, FIFO bound
	minted map[uint64]*mintedJob

	met gatewayMetrics
}

// routeInfo remembers the keys behind a job ID the gateway routed, so a
// later proxied result response can be filed into the shared tier.
type routeInfo struct {
	key, pkey service.Key
	target    *mc.Target
}

// mintedJob is a submission the gateway answered from its own result
// tier: it was never forwarded, so the gateway must serve its status and
// result itself under the ID it minted (the key's own ID — the same one
// the owning shard would have used).
type mintedJob struct {
	idHex     string
	tenant    string
	target    *mc.Target
	targetMet bool
	born      time.Time
	res       *cachedResult
}

// routedMemoMax bounds the ID->key memo and the minted-job map; both
// evict oldest-first. 8192 in-flight-or-recent jobs per gateway is far
// beyond the shards' own retention.
const routedMemoMax = 8192

type gatewayMetrics struct {
	submissions *obs.CounterVec
	cacheHits   *obs.CounterVec
	sheds       *obs.Counter
	invalid     *obs.Counter
	proxies     *obs.CounterVec
	failovers   *obs.CounterVec
	unavailable *obs.CounterVec
}

// New builds a Gateway over the given shard replica sets.
func New(opts Options) (*Gateway, error) {
	if len(opts.Shards) == 0 {
		return nil, errors.New("gateway: no shards configured")
	}
	for i, reps := range opts.Shards {
		if len(reps) == 0 {
			return nil, fmt.Errorf("gateway: shard %d has no replicas", i)
		}
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	oreg := opts.Obs
	if oreg == nil {
		oreg = obs.NewRegistry()
	}
	g := &Gateway{
		shards:    opts.Shards,
		admission: opts.Admission,
		maxTarget: opts.MaxTargetPhotons,
		maxBody:   opts.MaxBodyBytes,
		client:    client,
		log:       log,
		cache:     newResultCache(opts.CacheSize),
		routed:    make(map[uint64]routeInfo),
		minted:    make(map[uint64]*mintedJob),
	}
	g.met = gatewayMetrics{
		submissions: oreg.CounterVec("gateway_submissions_total",
			"Submissions forwarded to a shard, by shard index.", "shard"),
		cacheHits: oreg.CounterVec("gateway_cache_hits_total",
			"Submissions answered from the gateway's shared result tier.", "index"),
		sheds: oreg.Counter("gateway_sheds_total",
			"Submissions refused by gateway-side admission."),
		invalid: oreg.Counter("gateway_invalid_total",
			"Submissions rejected at the gateway as malformed (4xx, never routed)."),
		proxies: oreg.CounterVec("gateway_proxies_total",
			"Non-submit requests proxied to a shard, by shard index.", "shard"),
		failovers: oreg.CounterVec("gateway_replica_failovers_total",
			"Replica attempts skipped past after a connection error or 503.", "shard"),
		unavailable: oreg.CounterVec("gateway_shard_unavailable_total",
			"Requests failed because every replica of a shard was down.", "shard"),
	}
	oreg.GaugeFunc("gateway_cache_entries",
		"Results held in the gateway's shared tier.",
		func() float64 { return float64(g.cache.size()) })
	oreg.GaugeFunc("gateway_shards",
		"Configured shard count (the key-space partition width).",
		func() float64 { return float64(len(g.shards)) })
	return g, nil
}

// Shards returns the configured shard count.
func (g *Gateway) Shards() int { return len(g.shards) }

// Handler returns the gateway's route multiplexer — the same surface as
// service.API.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	g.Register(mux)
	return mux
}

// Register mounts the gateway's routes on an existing mux.
func (g *Gateway) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", g.submit)
	mux.HandleFunc("GET /jobs", g.list)
	mux.HandleFunc("GET /jobs/{id}", g.proxyJob)
	mux.HandleFunc("GET /jobs/{id}/result", g.proxyJob)
	mux.HandleFunc("GET /jobs/{id}/events", g.proxyJob)
	mux.HandleFunc("GET /jobs/{id}/spans", g.proxyJob)
	mux.HandleFunc("DELETE /jobs/{id}", g.proxyJob)
	mux.HandleFunc("GET /stats", g.stats)
	mux.HandleFunc("GET /fleet", g.fleet)
	mux.HandleFunc("GET /tenants", g.tenants)
}

type apiError struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

// writeShed maps an admission refusal to the same 429 + Retry-After the
// shards produce.
func writeShed(w http.ResponseWriter, err error, v service.AdmissionVerdict) {
	secs := int64((v.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
}

func (g *Gateway) submit(w http.ResponseWriter, req *http.Request) {
	limit := g.maxBody
	if limit == 0 {
		limit = service.DefaultMaxBodyBytes
	}
	r := req.Body
	if limit > 0 {
		r = http.MaxBytesReader(w, req.Body, limit)
	}
	raw, err := io.ReadAll(r)
	if err != nil {
		g.met.invalid.Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var body service.JobRequest
	if err := dec.Decode(&body); err != nil {
		g.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	tenant := strings.TrimSpace(req.Header.Get(service.TenantHeader))
	if tenant == "" {
		tenant = strings.TrimSpace(body.Tenant)
	}
	if len(tenant) > service.MaxTenantNameLen {
		g.met.invalid.Inc()
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("tenant name longer than %d bytes", service.MaxTenantNameLen)})
		return
	}

	// The same normalize-and-hash the owning shard will run: the key is a
	// pure function of the request, so gateway and shard always agree.
	spec := service.JobSpec{
		Spec:         body.Spec,
		TotalPhotons: body.Photons,
		ChunkPhotons: body.ChunkPhotons,
		Seed:         body.Seed,
		Fan:          body.Fan,
		Target:       body.Target,
		ChunkTimeout: body.ChunkTimeout,
		Priority:     body.Priority,
		Weight:       body.Weight,
		Label:        body.Label,
		Tenant:       tenant,
	}
	key, pkey, err := service.RoutingKeys(&spec, g.maxTarget)
	if err != nil {
		// Deterministically malformed: the client's fault, no shard would
		// accept it either — do not route, do not retry.
		g.met.invalid.Inc()
		writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
		return
	}

	// Shared result tier: a hit is answered here, with the same ID the
	// owning shard would mint, after the same one-job-token admission
	// debit a shard-local cache hit pays.
	hit := g.cache.get(key)
	index := "exact"
	if hit == nil && spec.Target != nil {
		hit = g.cache.getMeeting(pkey, spec.Target)
		index = "physics"
	}
	if hit != nil {
		if g.admission != nil {
			if v := g.admission.Admit(tenant, 0); !v.OK {
				g.met.sheds.Inc()
				writeShed(w, shedErr(tenant, v), v)
				return
			}
		}
		id := service.KeyID(key)
		m := &mintedJob{
			idHex:     fmt.Sprintf("%016x", id),
			tenant:    tenant,
			target:    spec.Target,
			targetMet: spec.Target != nil && spec.Target.MetBy(hit.tally),
			born:      time.Now(),
			res:       hit,
		}
		g.mu.Lock()
		if len(g.minted) >= routedMemoMax {
			for k := range g.minted { // bound blown: drop an arbitrary entry
				delete(g.minted, k)
				break
			}
		}
		g.minted[id] = m
		g.mu.Unlock()
		g.met.cacheHits.With(index).Inc()
		g.log.Info("submission served from gateway tier", "job", m.idHex, "index", index)
		writeJSON(w, http.StatusOK, service.JobAccepted{
			ID: m.idHex, State: service.StateDone.String(), Cached: true,
		})
		return
	}

	// Fresh work: debit the full admission cost before spending a shard's
	// time. Fail-closed — a routed submission that then fails everywhere
	// has spent its tokens, like any accepted-then-crashed job.
	if g.admission != nil {
		if v := g.admission.Admit(tenant, spec.AdmissionPhotons()); !v.OK {
			g.met.sheds.Inc()
			writeShed(w, shedErr(tenant, v), v)
			return
		}
	}

	shard := service.ShardOfKey(key, len(g.shards))
	status, hdr, respBody, err := g.doShard(shard, func(base string) (*http.Request, error) {
		preq, err := http.NewRequestWithContext(req.Context(), http.MethodPost,
			base+"/jobs", strings.NewReader(string(raw)))
		if err != nil {
			return nil, err
		}
		preq.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			preq.Header.Set(service.TenantHeader, tenant)
		}
		return preq, nil
	})
	if err != nil {
		writeJSON(w, http.StatusBadGateway,
			apiError{Error: fmt.Sprintf("shard %d unavailable: %v", shard, err)})
		return
	}
	g.met.submissions.With(strconv.Itoa(shard)).Inc()
	if status == http.StatusCreated || status == http.StatusOK {
		var acc service.JobAccepted
		if json.Unmarshal(respBody, &acc) == nil {
			if id, err := strconv.ParseUint(acc.ID, 16, 64); err == nil {
				g.rememberRoute(id, routeInfo{key: key, pkey: pkey, target: spec.Target})
			}
		}
	}
	copyResponse(w, status, hdr, respBody)
}

func shedErr(tenant string, v service.AdmissionVerdict) error {
	return &service.ShedError{
		Tenant: tenant, Reason: v.Reason, RetryAfter: v.RetryAfter, Detail: v.Detail,
	}
}

func (g *Gateway) rememberRoute(id uint64, info routeInfo) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.routed[id]; !ok {
		for len(g.order) >= routedMemoMax {
			delete(g.routed, g.order[0])
			g.order = g.order[1:]
		}
		g.order = append(g.order, id)
	}
	g.routed[id] = info
}

// proxyJob forwards a single-job request to the shard owning its ID —
// unless the ID is one the gateway minted from its own result tier, in
// which case no shard has the job and the gateway answers itself.
func (g *Gateway) proxyJob(w http.ResponseWriter, req *http.Request) {
	id, err := strconv.ParseUint(req.PathValue("id"), 16, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job id: %v", err)})
		return
	}
	g.mu.Lock()
	m := g.minted[id]
	g.mu.Unlock()
	if m != nil {
		g.serveMinted(w, req, m)
		return
	}
	shard := service.ShardOfID(id, len(g.shards))
	url := req.URL.Path
	if q := req.URL.RawQuery; q != "" {
		url += "?" + q
	}
	status, hdr, respBody, err := g.doShard(shard, func(base string) (*http.Request, error) {
		return http.NewRequestWithContext(req.Context(), req.Method, base+url, nil)
	})
	if err != nil {
		writeJSON(w, http.StatusBadGateway,
			apiError{Error: fmt.Sprintf("shard %d unavailable: %v", shard, err)})
		return
	}
	g.met.proxies.With(strconv.Itoa(shard)).Inc()
	// A completed result flowing through is the shared tier's fill path.
	if status == http.StatusOK && strings.HasSuffix(req.URL.Path, "/result") {
		g.fillCache(id, respBody)
	}
	copyResponse(w, status, hdr, respBody)
}

// fillCache files a proxied result body into the shared tier, when the
// gateway routed the job itself and still remembers its keys.
func (g *Gateway) fillCache(id uint64, respBody []byte) {
	g.mu.Lock()
	info, ok := g.routed[id]
	g.mu.Unlock()
	if !ok {
		return
	}
	var res service.JobResultBody
	if err := json.Unmarshal(respBody, &res); err != nil || res.Tally == nil {
		return
	}
	g.cache.put(&cachedResult{
		key: info.key, pkey: info.pkey,
		target: res.Target, targetMet: res.TargetMet,
		elapsed: res.Elapsed, tally: res.Tally,
	})
}

func (g *Gateway) serveMinted(w http.ResponseWriter, req *http.Request, m *mintedJob) {
	switch {
	case req.Method == http.MethodDelete:
		writeJSON(w, http.StatusConflict,
			apiError{Error: "job already done", State: service.StateDone.String()})
	case strings.HasSuffix(req.URL.Path, "/result"):
		writeJSON(w, http.StatusOK, service.JobResultBody{
			ID: m.idHex, CacheHit: true,
			Target: m.target, TargetMet: m.targetMet,
			Elapsed: m.res.elapsed, Tally: m.res.tally,
		})
	case strings.HasSuffix(req.URL.Path, "/events"), strings.HasSuffix(req.URL.Path, "/spans"):
		// Born done at the gateway: no lifecycle ever ran, the rings are
		// empty but well-formed.
		kind := "events"
		if strings.HasSuffix(req.URL.Path, "/spans") {
			kind = "spans"
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": m.idHex, kind: []any{}})
	default:
		writeJSON(w, http.StatusOK, service.JobStatus{
			IDHex: m.idHex, Tenant: m.tenant,
			State: service.StateDone.String(), CacheHit: true,
			TotalPhotons: m.res.tally.Launched,
			Target:       m.target, TargetMet: m.targetMet,
			Submitted: m.born, Finished: m.born,
		})
	}
}

// doShard runs one request against a shard, walking its replicas in
// preference order. Connection errors and 503s fail over to the next
// replica; anything else — including every 4xx — is the shard's answer
// and is returned as-is. When every replica fails, the last 503 (if any)
// is passed through so the client sees the shard's own words.
func (g *Gateway) doShard(shard int, build func(base string) (*http.Request, error)) (int, http.Header, []byte, error) {
	label := strconv.Itoa(shard)
	var lastStatus int
	var lastHdr http.Header
	var lastBody []byte
	var lastErr error
	for i, base := range g.shards[shard] {
		if i > 0 {
			g.met.failovers.With(label).Inc()
		}
		preq, err := build(strings.TrimSuffix(base, "/"))
		if err != nil {
			return 0, nil, nil, err
		}
		resp, err := g.client.Do(preq)
		if err != nil {
			lastErr = err
			g.log.Warn("shard replica unreachable", "shard", shard, "replica", base, "err", err)
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			lastStatus, lastHdr, lastBody, lastErr = resp.StatusCode, resp.Header, respBody, nil
			g.log.Warn("shard replica 503", "shard", shard, "replica", base)
			continue
		}
		return resp.StatusCode, resp.Header, respBody, nil
	}
	if lastStatus != 0 {
		return lastStatus, lastHdr, lastBody, nil
	}
	g.met.unavailable.With(label).Inc()
	return 0, nil, nil, lastErr
}

func copyResponse(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(status)
	w.Write(body)
}

// eachShard fans a GET out to every shard (any live replica each) and
// hands the decoded bodies to merge, reporting how many answered.
func eachShard[T any](g *Gateway, path string, merge func(shard int, v T)) int {
	up := 0
	for shard := range g.shards {
		status, _, body, err := g.doShard(shard, func(base string) (*http.Request, error) {
			return http.NewRequest(http.MethodGet, base+path, nil)
		})
		if err != nil || status != http.StatusOK {
			continue
		}
		var v T
		if json.Unmarshal(body, &v) != nil {
			continue
		}
		merge(shard, v)
		up++
	}
	return up
}

// list concatenates every shard's retained jobs, in shard order.
func (g *Gateway) list(w http.ResponseWriter, _ *http.Request) {
	all := []service.JobStatus{}
	up := eachShard(g, "/jobs", func(_ int, v []service.JobStatus) {
		all = append(all, v...)
	})
	if up == 0 {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "no shard reachable"})
		return
	}
	writeJSON(w, http.StatusOK, all)
}

// statsBody is the gateway's /stats: the familiar per-registry snapshot
// summed across shards, plus how many shards answered.
type statsBody struct {
	service.Stats
	Shards   int `json:"shards"`
	ShardsUp int `json:"shardsUp"`
}

func (g *Gateway) stats(w http.ResponseWriter, _ *http.Request) {
	var agg service.Stats
	first := true
	up := eachShard(g, "/stats", func(_ int, s service.Stats) {
		if first {
			agg.Policy, agg.Admission = s.Policy, s.Admission
			first = false
		}
		agg.Workers += s.Workers
		agg.JobsQueued += s.JobsQueued
		agg.JobsRunning += s.JobsRunning
		agg.JobsDone += s.JobsDone
		agg.JobsCanceled += s.JobsCanceled
		agg.PendingChunks += s.PendingChunks
		agg.OutstandingChunks += s.OutstandingChunks
		agg.ChunksAssigned += s.ChunksAssigned
		agg.PhotonsCompleted += s.PhotonsCompleted
		agg.RejectedResults += s.RejectedResults
		agg.BatchesReduced += s.BatchesReduced
		agg.TallyMerges += s.TallyMerges
		agg.CacheEntries += s.CacheEntries
		agg.CacheHits += s.CacheHits
		agg.CacheMisses += s.CacheMisses
		agg.JobsSubmitted += s.JobsSubmitted
		agg.JobsResumed += s.JobsResumed
		agg.JobsReplayed += s.JobsReplayed
		for name, t := range s.Tenants {
			if agg.Tenants == nil {
				agg.Tenants = make(map[string]service.TenantStat)
			}
			a := agg.Tenants[name]
			a.Weight = t.Weight
			a.ActiveJobs += t.ActiveJobs
			a.Submitted += t.Submitted
			a.Resumed += t.Resumed
			a.Shed += t.Shed
			a.Photons += t.Photons
			agg.Tenants[name] = a
		}
	})
	if up == 0 {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "no shard reachable"})
		return
	}
	if g.admission != nil {
		agg.Admission = g.admission.Name()
	}
	writeJSON(w, http.StatusOK, statsBody{Stats: agg, Shards: len(g.shards), ShardsUp: up})
}

// fleetView mirrors the shards' GET /fleet body.
type fleetView struct {
	Workers []service.SessionStatus `json:"workers"`
	Tenants []service.TenantStatus  `json:"tenants,omitempty"`
}

func (g *Gateway) fleet(w http.ResponseWriter, _ *http.Request) {
	var agg fleetView
	byName := map[string]*service.TenantStatus{}
	up := eachShard(g, "/fleet", func(_ int, v fleetView) {
		agg.Workers = append(agg.Workers, v.Workers...)
		mergeTenants(byName, v.Tenants)
	})
	if up == 0 {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "no shard reachable"})
		return
	}
	agg.Tenants = g.overlayLevels(byName)
	writeJSON(w, http.StatusOK, agg)
}

// tenantsView mirrors the shards' GET /tenants body.
type tenantsView struct {
	Admission string                 `json:"admission"`
	Tenants   []service.TenantStatus `json:"tenants"`
}

func (g *Gateway) tenants(w http.ResponseWriter, _ *http.Request) {
	byName := map[string]*service.TenantStatus{}
	admission := ""
	up := eachShard(g, "/tenants", func(_ int, v tenantsView) {
		if admission == "" {
			admission = v.Admission
		}
		mergeTenants(byName, v.Tenants)
	})
	if up == 0 {
		writeJSON(w, http.StatusBadGateway, apiError{Error: "no shard reachable"})
		return
	}
	if g.admission != nil {
		admission = g.admission.Name()
	}
	writeJSON(w, http.StatusOK, tenantsView{
		Admission: admission, Tenants: g.overlayLevels(byName),
	})
}

// mergeTenants sums one shard's tenant rollup into the cross-shard view.
// Per-shard bucket levels are dropped: independent buckets on different
// shards do not sum to anything meaningful.
func mergeTenants(byName map[string]*service.TenantStatus, in []service.TenantStatus) {
	for _, t := range in {
		a, ok := byName[t.Name]
		if !ok {
			a = &service.TenantStatus{Name: t.Name, Weight: t.Weight}
			byName[t.Name] = a
		}
		a.ActiveJobs += t.ActiveJobs
		a.Submitted += t.Submitted
		a.Resumed += t.Resumed
		a.Shed += t.Shed
		a.Photons += t.Photons
	}
}

// overlayLevels sorts the merged rollup and, when the gateway owns the
// buckets, stamps each tenant with the one authoritative bucket state.
func (g *Gateway) overlayLevels(byName map[string]*service.TenantStatus) []service.TenantStatus {
	if g.admission != nil {
		for _, lv := range g.admission.Levels() {
			t, ok := byName[lv.Tenant]
			if !ok {
				t = &service.TenantStatus{Name: lv.Tenant}
				byName[lv.Tenant] = t
			}
			cls, jt, pt := lv.Class, lv.JobTokens, lv.PhotonTokens
			t.Class, t.JobTokens, t.PhotonTokens = &cls, &jt, &pt
		}
	}
	out := make([]service.TenantStatus, 0, len(byName))
	for _, t := range byName {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Probe checks one replica-set per shard and flips the matching
// readiness condition ("shard0", "shard1", ...). Wire the conditions up
// with ShardConds and call Probe on a ticker.
func (g *Gateway) Probe(ready *obs.Readiness) {
	for shard := range g.shards {
		status, _, _, err := g.doShard(shard, func(base string) (*http.Request, error) {
			return http.NewRequest(http.MethodGet, base+"/stats", nil)
		})
		ready.Set(fmt.Sprintf("shard%d", shard), err == nil && status == http.StatusOK)
	}
}

// ShardConds names the readiness conditions Probe maintains.
func (g *Gateway) ShardConds() []string {
	conds := make([]string, len(g.shards))
	for i := range conds {
		conds[i] = fmt.Sprintf("shard%d", i)
	}
	return conds
}
