package distsys

import (
	"net"
	"sync"
	"testing"
	"time"
)

// TestWorkerReconnectAcrossServerRestart is the reconnect e2e: a worker
// under WorkLoop survives its server dying mid-job — the listener and
// every live connection are torn down, the job is resumed from a
// checkpoint on a fresh manager at the same address, and the same worker
// process finishes it through exponential-backoff redials.
func TestWorkerReconnectAcrossServerRestart(t *testing.T) {
	dmA, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go dmA.HandleConn(c)
		}
	}()

	type loopResult struct {
		stats *WorkerStats
		err   error
	}
	loopCh := make(chan loopResult, 1)
	go func() {
		stats, err := WorkLoopTCP(addr, WorkerOptions{Name: "phoenix", FlushChunks: 1},
			LoopOptions{Reconnect: true, Base: 5 * time.Millisecond, Max: 50 * time.Millisecond})
		loopCh <- loopResult{stats, err}
	}()

	// Let the worker reduce a few chunks, then kill the server under it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if done, _ := dmA.Progress(); done >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never made progress against server A")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ln.Close()
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	// Restart: resume the job from a checkpoint on the same address. The
	// worker's in-flight dials fail and back off until the port returns.
	cp := dmA.Checkpoint()
	if len(cp.Completed) < 3 {
		t.Fatalf("checkpoint has %d chunks, want >= 3", len(cp.Completed))
	}
	dmB, err := Resume(cp, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ln2 net.Listener
	for i := 0; ; i++ {
		ln2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 200 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer ln2.Close()
	go func() {
		for {
			c, err := ln2.Accept()
			if err != nil {
				return
			}
			go dmB.HandleConn(c)
		}
	}()

	res, err := dmB.Wait(time.Minute)
	if err != nil {
		t.Fatalf("resumed job did not finish: %v", err)
	}
	if res.Tally.Launched != 1000 {
		t.Fatalf("launched %d photons, want 1000 (lost or double-counted chunks)", res.Tally.Launched)
	}
	select {
	case lr := <-loopCh:
		if lr.err != nil {
			t.Fatalf("WorkLoop exited with error: %v", lr.err)
		}
		if want := dmA.NumChunks() - len(cp.Completed); lr.stats.Chunks < want {
			t.Fatalf("worker reduced %d chunks after restart, want >= %d", lr.stats.Chunks, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("WorkLoop did not exit after the service drained")
	}
}

// TestWorkerDrainFlushesHeldBatch: a graceful drain must flush the
// batched results the worker is holding, not drop them with the
// connection the way FailAfterChunks does.
func TestWorkerDrainFlushesHeldBatch(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go dm.HandleConn(server)
	// FlushChunks 8 > DrainAfterChunks 3: at drain time all three results
	// are still held in the batch buffer.
	stats, err := Work(client, WorkerOptions{Name: "drainer", FlushChunks: 8, DrainAfterChunks: 3})
	if err != nil {
		t.Fatalf("drain is graceful, got error: %v", err)
	}
	if stats.Chunks != 3 {
		t.Fatalf("worker computed %d chunks, want 3", stats.Chunks)
	}
	if done, _ := dm.Progress(); done != 3 {
		t.Fatalf("server reduced %d chunks, want 3 (held batch lost in drain)", done)
	}
}

// TestWorkerStopChannelDrains drives the production SIGTERM path: closing
// WorkerOptions.Stop mid-session makes the worker flush everything it
// holds and return cleanly — the server's completed count matches the
// worker's exactly.
func TestWorkerStopChannelDrains(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 2000, ChunkPhotons: 100, Seed: 47,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go dm.HandleConn(server)
	stop := make(chan struct{})
	type res struct {
		stats *WorkerStats
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		stats, err := Work(client, WorkerOptions{Name: "sigterm", FlushChunks: 4, Stop: stop})
		ch <- res{stats, err}
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if done, _ := dm.Progress(); done >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never flushed a batch")
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatalf("stop-drain returned error: %v", r.err)
		}
		done, total := dm.Progress()
		if done != r.stats.Chunks {
			t.Fatalf("server reduced %d chunks, worker computed %d: drain dropped results", done, r.stats.Chunks)
		}
		if done == total {
			t.Fatal("job finished before the stop: test raced itself, raise the photon budget")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("worker did not drain after Stop closed")
	}
}
