// Package distsys implements the paper's distributed computing element: a
// DataManager server that assigns Monte Carlo simulation chunks to client
// PCs and reduces the returned partial tallies, and the worker ("Algorithm")
// client that computes them. Workers are assumed non-dedicated and
// unreliable: chunks that do not return within a deadline are reassigned,
// and duplicate results are deduplicated so the reduction is exactly-once.
package distsys

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/mc"
	"repro/internal/protocol"
)

// JobOptions configure a distributed simulation job.
type JobOptions struct {
	Spec         *mc.Spec
	TotalPhotons int64
	// ChunkPhotons is the number of photons per work unit. The paper's
	// platform uses dynamic self-scheduling: fixed-size chunks pulled by
	// idle clients.
	ChunkPhotons int64
	Seed         uint64
	// ChunkTimeout reassigns a chunk if its result has not arrived in time
	// (non-dedicated clients may slow down or vanish). Zero disables
	// reassignment.
	ChunkTimeout time.Duration
	// Logf, if set, receives progress logging.
	Logf func(format string, args ...any)
}

type chunkState struct {
	id       int
	photons  int64
	assigned time.Time
	worker   string
	tries    int
}

// WorkerInfo summarises one connected client.
type WorkerInfo struct {
	Name      string
	Mflops    float64
	Chunks    int
	Connected time.Time
}

// Result is the outcome of a completed job.
type Result struct {
	Tally *mc.Tally
	// Elapsed is the wall-clock job duration, first assignment to last
	// reduction.
	Elapsed time.Duration
	// Chunks, Reassigned and Duplicates describe scheduling behaviour.
	Chunks     int
	Reassigned int
	Duplicates int
	// Workers lists per-client contribution, sorted by name.
	Workers []WorkerInfo
}

// DataManager is the server. Create with NewDataManager, serve connections
// with Serve or HandleConn, then Wait for the reduced result.
type DataManager struct {
	opts    JobOptions
	jobID   uint64
	nChunks int

	mu          sync.Mutex
	pending     []int // chunk ids awaiting assignment (LIFO on reassign)
	outstanding map[int]*chunkState
	photons     map[int]int64 // photons per chunk
	completed   map[int]bool
	tally       *mc.Tally
	workers     map[string]*WorkerInfo
	reassigned  int
	duplicates  int
	started     time.Time
	finishedAt  time.Time
	finished    chan struct{}
	closed      bool
}

// NewDataManager validates the job and prepares the chunk queue.
func NewDataManager(opts JobOptions) (*DataManager, error) {
	if opts.Spec == nil {
		return nil, errors.New("distsys: job has no simulation spec")
	}
	if err := opts.Spec.Validate(); err != nil {
		return nil, err
	}
	if opts.TotalPhotons <= 0 {
		return nil, fmt.Errorf("distsys: non-positive photon count %d", opts.TotalPhotons)
	}
	if opts.ChunkPhotons <= 0 {
		opts.ChunkPhotons = opts.TotalPhotons
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	n := int((opts.TotalPhotons + opts.ChunkPhotons - 1) / opts.ChunkPhotons)
	dm := &DataManager{
		opts:        opts,
		jobID:       opts.Seed ^ 0x9e3779b97f4a7c15, // stable, seed-derived
		nChunks:     n,
		outstanding: make(map[int]*chunkState),
		photons:     make(map[int]int64, n),
		completed:   make(map[int]bool, n),
		workers:     make(map[string]*WorkerInfo),
		finished:    make(chan struct{}),
	}
	cfg, err := opts.Spec.Build()
	if err != nil {
		return nil, err
	}
	dm.tally = mc.NewTally(cfg)

	remaining := opts.TotalPhotons
	for i := 0; i < n; i++ {
		p := opts.ChunkPhotons
		if p > remaining {
			p = remaining
		}
		remaining -= p
		dm.photons[i] = p
		dm.pending = append(dm.pending, i)
	}
	return dm, nil
}

// NumChunks returns the total number of work units.
func (dm *DataManager) NumChunks() int { return dm.nChunks }

// Serve accepts worker connections on l until the job completes or l is
// closed. Each connection is handled on its own goroutine.
func (dm *DataManager) Serve(l net.Listener) error {
	go func() {
		<-dm.finished
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-dm.finished:
				return nil
			default:
				return err
			}
		}
		go func() {
			if err := dm.HandleConn(conn); err != nil && !errors.Is(err, io.EOF) {
				dm.opts.Logf("distsys: connection ended: %v", err)
			}
		}()
	}
}

// HandleConn speaks the protocol with one worker over any stream transport
// (TCP connection or in-memory pipe).
func (dm *DataManager) HandleConn(rw io.ReadWriteCloser) error {
	pc := protocol.NewConn(rw)
	defer pc.Close()

	first, err := pc.Recv()
	if err != nil {
		return err
	}
	if first.Type != protocol.MsgHello || first.Hello == nil {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: "expected hello"}})
		return fmt.Errorf("distsys: expected hello, got %v", first.Type)
	}
	if first.Hello.Version != protocol.Version {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: fmt.Sprintf("version mismatch: server %d, client %d",
				protocol.Version, first.Hello.Version)}})
		return fmt.Errorf("distsys: version mismatch from %q", first.Hello.Name)
	}
	name := dm.registerWorker(first.Hello)

	err = pc.Send(&protocol.Message{Type: protocol.MsgWelcome, Welcome: &protocol.Welcome{
		Version:    protocol.Version,
		ServerName: "datamanager",
		Job: protocol.Job{
			ID:      dm.jobID,
			Spec:    *dm.opts.Spec,
			Seed:    dm.opts.Seed,
			Streams: dm.nChunks,
		},
	}})
	if err != nil {
		return err
	}

	for {
		msg, err := pc.Recv()
		if err != nil {
			dm.releaseWorker(name)
			return err
		}
		switch msg.Type {
		case protocol.MsgTaskRequest:
			reply := dm.nextAssignment(name)
			if err := pc.Send(reply); err != nil {
				dm.releaseWorker(name)
				return err
			}
			if reply.Type == protocol.MsgNoWork && reply.NoWork.Done {
				return nil
			}
		case protocol.MsgTaskResult:
			if msg.Result == nil || msg.Result.Tally == nil {
				return fmt.Errorf("distsys: empty result from %q", name)
			}
			dup, err := dm.reduce(name, msg.Result)
			if err != nil {
				pc.Send(&protocol.Message{Type: protocol.MsgError,
					Error: &protocol.Error{Msg: err.Error()}})
				return err
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgResultAck,
				Ack: &protocol.ResultAck{ChunkID: msg.Result.ChunkID, Duplicate: dup}}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("distsys: unexpected message %v from %q", msg.Type, name)
		}
	}
}

func (dm *DataManager) registerWorker(h *protocol.Hello) string {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	name := h.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", len(dm.workers)+1)
	}
	if _, ok := dm.workers[name]; !ok {
		dm.workers[name] = &WorkerInfo{Name: name, Mflops: h.Mflops, Connected: time.Now()}
	}
	dm.opts.Logf("distsys: worker %q connected (%.0f Mflop/s)", name, h.Mflops)
	return name
}

// releaseWorker requeues chunks outstanding on a worker that disconnected.
func (dm *DataManager) releaseWorker(name string) {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	for id, st := range dm.outstanding {
		if st.worker == name {
			delete(dm.outstanding, id)
			dm.pending = append(dm.pending, id)
			dm.reassigned++
			dm.opts.Logf("distsys: worker %q lost; chunk %d requeued", name, id)
		}
	}
}

// nextAssignment pops a chunk for the worker, reclaiming any timed-out
// chunks first. With nothing pending and nothing outstanding the job is
// done.
func (dm *DataManager) nextAssignment(worker string) *protocol.Message {
	dm.mu.Lock()
	defer dm.mu.Unlock()

	dm.reclaimExpiredLocked()

	if len(dm.pending) == 0 {
		if len(dm.outstanding) == 0 && len(dm.completed) == dm.nChunks {
			return &protocol.Message{Type: protocol.MsgNoWork, NoWork: &protocol.NoWork{Done: true}}
		}
		// Stragglers still out: ask the worker to poll again shortly.
		retry := dm.opts.ChunkTimeout / 4
		if retry <= 0 {
			retry = 50 * time.Millisecond
		}
		return &protocol.Message{Type: protocol.MsgNoWork, NoWork: &protocol.NoWork{RetryIn: retry}}
	}

	id := dm.pending[len(dm.pending)-1]
	dm.pending = dm.pending[:len(dm.pending)-1]
	st := dm.outstanding[id]
	tries := 1
	if st != nil {
		tries = st.tries + 1
	}
	dm.outstanding[id] = &chunkState{
		id: id, photons: dm.photons[id], assigned: time.Now(), worker: worker, tries: tries,
	}
	if dm.started.IsZero() {
		dm.started = time.Now()
	}
	return &protocol.Message{Type: protocol.MsgTaskAssign, Assign: &protocol.TaskAssign{
		JobID:   dm.jobID,
		ChunkID: id,
		Stream:  id,
		Photons: dm.photons[id],
	}}
}

func (dm *DataManager) reclaimExpiredLocked() {
	if dm.opts.ChunkTimeout <= 0 {
		return
	}
	now := time.Now()
	for id, st := range dm.outstanding {
		if now.Sub(st.assigned) > dm.opts.ChunkTimeout {
			delete(dm.outstanding, id)
			dm.pending = append(dm.pending, id)
			dm.reassigned++
			dm.opts.Logf("distsys: chunk %d timed out on %q; requeued", id, st.worker)
		}
	}
}

// reduce folds a chunk result into the job tally exactly once.
func (dm *DataManager) reduce(worker string, res *protocol.TaskResult) (duplicate bool, err error) {
	dm.mu.Lock()
	defer dm.mu.Unlock()

	if res.JobID != dm.jobID {
		return false, fmt.Errorf("distsys: result for unknown job %d", res.JobID)
	}
	if res.ChunkID < 0 || res.ChunkID >= dm.nChunks {
		return false, fmt.Errorf("distsys: result for unknown chunk %d", res.ChunkID)
	}
	if dm.completed[res.ChunkID] {
		dm.duplicates++
		return true, nil
	}
	if err := dm.tally.Merge(res.Tally); err != nil {
		return false, err
	}
	dm.completed[res.ChunkID] = true
	delete(dm.outstanding, res.ChunkID)
	if w := dm.workers[worker]; w != nil {
		w.Chunks++
	}
	if len(dm.completed) == dm.nChunks && !dm.closed {
		dm.closed = true
		dm.finishedAt = time.Now()
		close(dm.finished)
	}
	return false, nil
}

// Done returns a channel closed when every chunk has been reduced.
func (dm *DataManager) Done() <-chan struct{} { return dm.finished }

// Wait blocks until the job completes or the timeout elapses (zero waits
// forever), then returns the reduced result.
func (dm *DataManager) Wait(timeout time.Duration) (*Result, error) {
	if timeout > 0 {
		select {
		case <-dm.finished:
		case <-time.After(timeout):
			return nil, fmt.Errorf("distsys: job incomplete after %v (%d/%d chunks)",
				timeout, dm.progress(), dm.nChunks)
		}
	} else {
		<-dm.finished
	}

	dm.mu.Lock()
	defer dm.mu.Unlock()
	res := &Result{
		Tally:      dm.tally,
		Elapsed:    dm.finishedAt.Sub(dm.started),
		Chunks:     dm.nChunks,
		Reassigned: dm.reassigned,
		Duplicates: dm.duplicates,
	}
	for _, w := range dm.workers {
		res.Workers = append(res.Workers, *w)
	}
	sort.Slice(res.Workers, func(i, j int) bool { return res.Workers[i].Name < res.Workers[j].Name })
	return res, nil
}

func (dm *DataManager) progress() int {
	dm.mu.Lock()
	defer dm.mu.Unlock()
	return len(dm.completed)
}

// Progress returns the number of reduced chunks (for status displays).
func (dm *DataManager) Progress() (completed, total int) {
	return dm.progress(), dm.nChunks
}
