// Package distsys implements the paper's distributed computing element: a
// DataManager server that assigns Monte Carlo simulation chunks to client
// PCs and reduces the returned partial tallies, and the worker ("Algorithm")
// client that computes them. Workers are assumed non-dedicated and
// unreliable: chunks that do not return within a deadline are reassigned,
// duplicate results are deduplicated so the reduction is exactly-once, and
// results that do not match a current assignment (a stale worker from a
// previous run, a forged JobID) are rejected outright.
//
// Since the service layer landed, DataManager is a thin single-job facade
// over service.Registry — the multi-tenant job registry and shared-fleet
// dispatcher in internal/service. One DataManager is one registry holding
// one job and draining its fleet when the job completes; cmd/mcqueue runs
// the same machinery as a long-lived, many-job service.
//
// The worker speaks the protocol v3 result plane: chunks are computed
// across the job's fan of RNG sub-streams on all available cores,
// pre-reduced per job into a batch buffer, and flushed as one ResultBatch
// (compact-codec tallies) riding the next task request — with the
// buffered chunks advertised as Holding so the server keeps their
// assignments alive, and per-chunk acks preserving the rejection and
// duplicate semantics of the single-result path.
package distsys

import (
	"io"
	"log/slog"
	"net"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/service"
)

// JobOptions configure a distributed simulation job.
type JobOptions struct {
	Spec         *mc.Spec
	TotalPhotons int64
	// ChunkPhotons is the number of photons per work unit. The paper's
	// platform uses dynamic self-scheduling: fixed-size chunks pulled by
	// idle clients.
	ChunkPhotons int64
	Seed         uint64
	// ChunkTimeout reassigns a chunk if its result has not arrived in time
	// (non-dedicated clients may slow down or vanish). Zero disables
	// reassignment.
	ChunkTimeout time.Duration
	// Obs receives the underlying registry's service-plane metrics; nil
	// instruments into a private registry.
	Obs *obs.Registry
	// Logger, if set, receives structured progress logging (nil discards).
	Logger *slog.Logger
}

// WorkerInfo summarises one connected client.
type WorkerInfo = service.WorkerInfo

// Result is the outcome of a completed job.
type Result = service.Result

// DataManager is the single-job server. Create with NewDataManager, serve
// connections with Serve or HandleConn, then Wait for the reduced result.
type DataManager struct {
	reg *service.Registry
	job *service.Job
}

// NewDataManager validates the job and prepares the chunk queue.
func NewDataManager(opts JobOptions) (*DataManager, error) {
	reg := service.New(service.Options{
		DrainOnEmpty: true,
		CacheSize:    -1, // a one-shot job has nothing to deduplicate against
		Obs:          opts.Obs,
		Logger:       opts.Logger,
	})
	out, err := reg.Submit(service.JobSpec{
		Spec:         opts.Spec,
		TotalPhotons: opts.TotalPhotons,
		ChunkPhotons: opts.ChunkPhotons,
		Seed:         opts.Seed,
		ChunkTimeout: opts.ChunkTimeout,
	})
	if err != nil {
		return nil, err
	}
	return &DataManager{reg: reg, job: out.Job}, nil
}

// NumChunks returns the total number of work units.
func (dm *DataManager) NumChunks() int { return dm.job.NumChunks() }

// Serve accepts worker connections on l until the job completes or l is
// closed. Each connection is handled on its own goroutine.
func (dm *DataManager) Serve(l net.Listener) error { return dm.reg.Serve(l) }

// HandleConn speaks the protocol with one worker over any stream transport
// (TCP connection or in-memory pipe).
func (dm *DataManager) HandleConn(rw io.ReadWriteCloser) error { return dm.reg.HandleConn(rw) }

// Done returns a channel closed when every chunk has been reduced.
func (dm *DataManager) Done() <-chan struct{} { return dm.job.Done() }

// Wait blocks until the job completes or the timeout elapses (zero waits
// forever), then returns the reduced result.
func (dm *DataManager) Wait(timeout time.Duration) (*Result, error) {
	return dm.job.Wait(timeout)
}

// Progress returns the number of reduced chunks (for status displays).
func (dm *DataManager) Progress() (completed, total int) { return dm.job.Progress() }

// Stats exposes the underlying registry's fleet counters (rejected
// results, chunks assigned, connected workers).
func (dm *DataManager) Stats() service.Stats { return dm.reg.Stats() }
