package distsys

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"

	"repro/internal/mc"
)

// Checkpoint is a serialisable snapshot of a running job: which chunks have
// been reduced and the partial tally so far. A DataManager restarted from a
// checkpoint re-issues only the missing chunks; because every chunk is tied
// to its RNG stream, the resumed job produces exactly the result the
// uninterrupted job would have.
type Checkpoint struct {
	Spec         mc.Spec
	TotalPhotons int64
	ChunkPhotons int64
	Seed         uint64
	NChunks      int
	Completed    []int // sorted chunk ids already reduced
	Tally        *mc.Tally
}

// Checkpoint captures the job's current reduction state. It is safe to call
// while workers are active; chunks in flight are simply not part of the
// snapshot and will be recomputed on resume.
func (dm *DataManager) Checkpoint() *Checkpoint {
	dm.mu.Lock()
	defer dm.mu.Unlock()

	cp := &Checkpoint{
		Spec:         *dm.opts.Spec,
		TotalPhotons: dm.opts.TotalPhotons,
		ChunkPhotons: dm.opts.ChunkPhotons,
		Seed:         dm.opts.Seed,
		NChunks:      dm.nChunks,
		Tally:        cloneTally(dm.tally),
	}
	for id := 0; id < dm.nChunks; id++ {
		if dm.completed[id] {
			cp.Completed = append(cp.Completed, id)
		}
	}
	return cp
}

// cloneTally deep-copies a tally via a gob round trip (tallies are plain
// data, so this is exact).
func cloneTally(t *mc.Tally) *mc.Tally {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		panic(fmt.Sprintf("distsys: clone tally encode: %v", err))
	}
	var out mc.Tally
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		panic(fmt.Sprintf("distsys: clone tally decode: %v", err))
	}
	return &out
}

// Save writes the checkpoint to path atomically (write + rename).
func (cp *Checkpoint) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(cp); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("distsys: checkpoint encode: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cp Checkpoint
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("distsys: checkpoint decode: %w", err)
	}
	if cp.Tally == nil || cp.NChunks <= 0 {
		return nil, fmt.Errorf("distsys: checkpoint is incomplete")
	}
	return &cp, nil
}

// Resume builds a DataManager that continues the checkpointed job: already
// reduced chunks stay reduced, everything else is queued for assignment.
func Resume(cp *Checkpoint, opts JobOptions) (*DataManager, error) {
	spec := cp.Spec
	opts.Spec = &spec
	opts.TotalPhotons = cp.TotalPhotons
	opts.ChunkPhotons = cp.ChunkPhotons
	opts.Seed = cp.Seed
	dm, err := NewDataManager(opts)
	if err != nil {
		return nil, err
	}
	if dm.nChunks != cp.NChunks {
		return nil, fmt.Errorf("distsys: checkpoint has %d chunks, job derives %d",
			cp.NChunks, dm.nChunks)
	}

	dm.mu.Lock()
	defer dm.mu.Unlock()
	done := make(map[int]bool, len(cp.Completed))
	for _, id := range cp.Completed {
		if id < 0 || id >= dm.nChunks {
			return nil, fmt.Errorf("distsys: checkpoint completed chunk %d out of range", id)
		}
		done[id] = true
		dm.completed[id] = true
	}
	dm.tally = cp.Tally

	// Rebuild the pending queue without the completed chunks.
	pending := dm.pending[:0]
	for _, id := range dm.pending {
		if !done[id] {
			pending = append(pending, id)
		}
	}
	dm.pending = pending

	if len(dm.completed) == dm.nChunks {
		dm.closed = true
		close(dm.finished)
	}
	return dm, nil
}
