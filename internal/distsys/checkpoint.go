package distsys

import (
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"repro/internal/mc"
	"repro/internal/service"
	"repro/internal/wal"
)

// Checkpoint is a serialisable snapshot of a running job: which chunks have
// been reduced and the partial tally so far. A DataManager restarted from a
// checkpoint re-issues only the missing chunks; because every chunk is tied
// to its RNG stream, the resumed job produces exactly the result the
// uninterrupted job would have.
type Checkpoint struct {
	Spec         mc.Spec
	TotalPhotons int64
	ChunkPhotons int64
	Seed         uint64
	NChunks      int
	Completed    []int // sorted chunk ids already reduced
	Tally        *mc.Tally
	// Scheduling metadata, so a resumed job keeps its place in a
	// multi-job registry (zero values in pre-service checkpoints; a zero
	// Weight normalizes back to 1 on resume).
	ChunkTimeout time.Duration
	Priority     int
	Weight       float64
	Label        string
	// Fan and Target round-trip the v3 multi-core decomposition and the
	// v4 precision goal. Both are zero-valued in older checkpoints, which
	// gob therefore still decodes; before Fan was carried here a fanned
	// job silently resumed unfanned onto a different stream decomposition.
	Fan    int
	Target *mc.Target
	// Tenant preserves the job's owner across a restart (empty in older
	// checkpoints; normalizes to the default tenant on resume).
	Tenant string
}

// Checkpoint captures the job's current reduction state. It is safe to call
// while workers are active; chunks in flight are simply not part of the
// snapshot and will be recomputed on resume.
func (dm *DataManager) Checkpoint() *Checkpoint {
	return FromSnapshot(dm.job.Snapshot())
}

// FromSnapshot converts a service-layer job snapshot into the on-disk
// checkpoint form (cmd/mcqueue uses it for multi-job checkpointing).
func FromSnapshot(snap *service.Snapshot) *Checkpoint {
	return &Checkpoint{
		Spec:         *snap.Spec.Spec,
		TotalPhotons: snap.Spec.TotalPhotons,
		ChunkPhotons: snap.Spec.ChunkPhotons,
		Seed:         snap.Spec.Seed,
		NChunks:      snap.NChunks,
		Completed:    snap.Completed,
		Tally:        snap.Tally,
		ChunkTimeout: snap.Spec.ChunkTimeout,
		Priority:     snap.Spec.Priority,
		Weight:       snap.Spec.Weight,
		Label:        snap.Spec.Label,
		Fan:          snap.Spec.Fan,
		Target:       snap.Spec.Target,
		Tenant:       snap.Spec.Tenant,
	}
}

// Snapshot converts the checkpoint back into the service-layer form.
func (cp *Checkpoint) Snapshot() *service.Snapshot {
	spec := cp.Spec
	return &service.Snapshot{
		Spec: service.JobSpec{
			Spec:         &spec,
			TotalPhotons: cp.TotalPhotons,
			ChunkPhotons: cp.ChunkPhotons,
			Seed:         cp.Seed,
			Fan:          cp.Fan,
			Target:       cp.Target,
			ChunkTimeout: cp.ChunkTimeout,
			Priority:     cp.Priority,
			Weight:       cp.Weight,
			Label:        cp.Label,
			Tenant:       cp.Tenant,
		},
		NChunks:   cp.NChunks,
		Completed: cp.Completed,
		Tally:     cp.Tally,
	}
}

// Save writes the checkpoint to path crash-durably via wal.AtomicReplace:
// the temp file is fsynced before the rename and the directory after, so
// a power cut right after Save returns cannot leave a zero-length or torn
// checkpoint behind the committed name (a bare write+rename can).
func (cp *Checkpoint) Save(path string) error {
	return wal.AtomicReplace(path, func(f *os.File) error {
		if err := gob.NewEncoder(f).Encode(cp); err != nil {
			return fmt.Errorf("distsys: checkpoint encode: %w", err)
		}
		return nil
	})
}

// LoadCheckpoint reads a checkpoint from path.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var cp Checkpoint
	if err := gob.NewDecoder(f).Decode(&cp); err != nil {
		return nil, fmt.Errorf("distsys: checkpoint decode: %w", err)
	}
	if cp.Tally == nil || cp.NChunks <= 0 {
		return nil, fmt.Errorf("distsys: checkpoint is incomplete")
	}
	return &cp, nil
}

// Resume builds a DataManager that continues the checkpointed job: already
// reduced chunks stay reduced, everything else is queued for assignment.
// The checkpoint's own spec and totals override any set in opts.
func Resume(cp *Checkpoint, opts JobOptions) (*DataManager, error) {
	reg := service.New(service.Options{
		DrainOnEmpty: true,
		CacheSize:    -1,
		Obs:          opts.Obs,
		Logger:       opts.Logger,
	})
	// The caller's ChunkTimeout always wins, including an explicit zero to
	// disable reassignment — the single-job CLI passes its flag on every
	// resume. (mcqueue resumes via SubmitSnapshot directly and preserves
	// the checkpointed value instead.)
	snap := cp.Snapshot()
	snap.Spec.ChunkTimeout = opts.ChunkTimeout
	job, err := reg.SubmitSnapshot(snap)
	if err != nil {
		return nil, err
	}
	return &DataManager{reg: reg, job: job}, nil
}
