package distsys

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/mc"
	"repro/internal/protocol"
)

// WorkerOptions configure one client. The zero value plus a transport is a
// dedicated, reliable worker.
type WorkerOptions struct {
	// Name identifies the worker to the server; generated if empty.
	Name string
	// Mflops is the self-reported processing rate (informational).
	Mflops float64
	// Slowdown stretches compute time by sleeping Slowdown×(compute time)
	// after each chunk, emulating a slower or non-dedicated machine.
	Slowdown float64
	// FailAfterChunks, if positive, makes the worker drop its connection
	// after computing that many chunks — fault-injection for tests.
	FailAfterChunks int
	// Logf, if set, receives progress logging.
	Logf func(format string, args ...any)
}

// WorkerStats summarises a worker session.
type WorkerStats struct {
	Chunks  int
	Photons int64
	Compute time.Duration
	// Rejected counts results the server refused to reduce (stale or
	// mismatched assignments); the session continues after a rejection.
	Rejected int
}

// ErrInjectedFailure is returned by a worker that halted due to
// FailAfterChunks.
var ErrInjectedFailure = errors.New("distsys: worker failed by injection")

// jobRuntime caches one job's built config so a session can interleave
// chunks of many jobs without rebuilding (workers are job-agnostic; the
// server routes results by JobID).
type jobRuntime struct {
	cfg     *mc.Config
	seed    uint64
	streams int
}

// maxCachedJobs bounds the per-session descriptor cache (a built Config
// can hold a multi-megabyte voxel grid, and a long-lived service hands a
// worker an unbounded stream of jobs). Eviction is FIFO; because each
// TaskRequest advertises exactly the jobs still cached, the server
// re-sends a descriptor the worker has dropped.
const maxCachedJobs = 32

// Work connects a worker over the given transport and processes chunks —
// of as many concurrent jobs as the server cares to assign — until the
// server reports the service done. It returns session statistics.
func Work(rw io.ReadWriteCloser, opts WorkerOptions) (*WorkerStats, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	pc := protocol.NewConn(rw)
	defer pc.Close()

	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello, Hello: &protocol.Hello{
		Version: protocol.Version,
		Name:    opts.Name,
		Mflops:  opts.Mflops,
	}}); err != nil {
		return nil, err
	}
	welcome, err := pc.Recv()
	if err != nil {
		return nil, err
	}
	if welcome.Type == protocol.MsgError {
		return nil, fmt.Errorf("distsys: server rejected hello: %s", welcome.Error.Msg)
	}
	if welcome.Type != protocol.MsgWelcome || welcome.Welcome == nil {
		return nil, fmt.Errorf("distsys: expected welcome, got %v", welcome.Type)
	}

	jobs := make(map[uint64]*jobRuntime)
	var known []uint64
	stats := &WorkerStats{}
	for {
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
			Request: &protocol.TaskRequest{KnownJobs: known}}); err != nil {
			return stats, err
		}
		msg, err := pc.Recv()
		if err != nil {
			return stats, err
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			rt := jobs[a.JobID]
			if rt == nil {
				if a.Job == nil {
					return stats, fmt.Errorf("distsys: assigned unknown job %016x without descriptor", a.JobID)
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return stats, fmt.Errorf("distsys: bad job spec: %w", err)
				}
				rt = &jobRuntime{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams}
				jobs[a.JobID] = rt
				known = append(known, a.JobID)
				if len(known) > maxCachedJobs {
					delete(jobs, known[0])
					known = known[1:]
				}
			}
			start := time.Now()
			tally, err := mc.RunStream(rt.cfg, a.Photons, rt.seed, a.Stream, rt.streams)
			if err != nil {
				return stats, err
			}
			elapsed := time.Since(start)
			if opts.Slowdown > 0 {
				time.Sleep(time.Duration(opts.Slowdown * float64(elapsed)))
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskResult,
				Result: &protocol.TaskResult{
					JobID: a.JobID, ChunkID: a.ChunkID, Elapsed: elapsed, Tally: tally,
				}}); err != nil {
				return stats, err
			}
			ack, err := pc.Recv()
			if err != nil {
				return stats, err
			}
			if ack.Type != protocol.MsgResultAck || ack.Ack == nil {
				return stats, fmt.Errorf("distsys: expected ack, got %v", ack.Type)
			}
			if ack.Ack.Rejected {
				stats.Rejected++
				opts.Logf("distsys: %s result for job %016x chunk %d rejected: %s",
					opts.Name, a.JobID, a.ChunkID, ack.Ack.Reason)
				continue
			}
			stats.Chunks++
			stats.Photons += a.Photons
			stats.Compute += elapsed
			opts.Logf("distsys: %s finished job %016x chunk %d (%d photons, %v)",
				opts.Name, a.JobID, a.ChunkID, a.Photons, elapsed)
			if opts.FailAfterChunks > 0 && stats.Chunks >= opts.FailAfterChunks {
				return stats, ErrInjectedFailure
			}
		case protocol.MsgNoWork:
			if msg.NoWork.Done {
				return stats, nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		case protocol.MsgError:
			return stats, fmt.Errorf("distsys: server error: %s", msg.Error.Msg)
		default:
			return stats, fmt.Errorf("distsys: unexpected message %v", msg.Type)
		}
	}
}

// WorkTCP dials the service at addr and runs a worker session.
func WorkTCP(addr string, opts WorkerOptions) (*WorkerStats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Work(conn, opts)
}
