package distsys

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"runtime"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/rng"
)

// Default pre-reduction flush thresholds. A batch flushes when it covers
// DefaultFlushChunks chunk results or its oldest result is older than
// DefaultFlushAge — whichever comes first — riding the next TaskRequest
// when possible and going out standalone when the server has no work to
// pair it with.
const (
	DefaultFlushChunks = 8
	DefaultFlushAge    = 250 * time.Millisecond
)

// WorkerOptions configure one client. The zero value plus a transport is a
// dedicated, reliable worker with default batching.
type WorkerOptions struct {
	// Name identifies the worker to the server; generated if empty.
	Name string
	// Mflops is the self-reported processing rate (informational).
	Mflops float64
	// Slowdown stretches compute time by sleeping Slowdown×(compute time)
	// after each chunk, emulating a slower or non-dedicated machine.
	Slowdown float64
	// FailAfterChunks, if positive, makes the worker drop its connection
	// after computing (and flushing) that many chunks — deterministic
	// fault-injection for tests. Losing an *unflushed* buffer is the
	// abrupt-transport-death case, covered by closing the connection.
	FailAfterChunks int
	// Stop, when non-nil and closed, requests a graceful drain: the worker
	// finishes the chunk it is computing, flushes the held pre-reduced
	// batch so buffered results are not abandoned to timeout reclaim, and
	// returns nil. The daemon's SIGTERM handler closes it.
	Stop <-chan struct{}
	// DrainAfterChunks, if positive, triggers the same graceful drain
	// after computing that many chunks — the deterministic test form of
	// Stop (compare FailAfterChunks, which drops the connection instead).
	DrainAfterChunks int
	// FlushChunks caps the chunk results pre-reduced into one batch before
	// it must flush; 0 means DefaultFlushChunks, 1 disables batching (every
	// result flushes on the next request).
	FlushChunks int
	// FlushAge bounds how long a computed result may wait in the batch
	// buffer; 0 means DefaultFlushAge.
	FlushAge time.Duration
	// Obs receives the worker-loop metrics (photons simulated, chunk
	// compute-time histogram, batch flushes, holding-set size, wire
	// frame/byte counters); nil instruments into a private registry.
	Obs *obs.Registry
	// Ready, if set, has its "session" condition raised once the server's
	// welcome lands and lowered when the session ends — the worker
	// daemon's readiness probe.
	Ready *obs.Readiness
	// Logger, if set, receives structured progress logging (nil discards).
	Logger *slog.Logger
	// DisableTelemetry stops the session from piggybacking WorkerReports
	// and per-chunk compute timings on the wire (the server falls back to
	// ack-timing inference, as with a pre-telemetry worker). Mainly an A/B
	// lever for benchmarks.
	DisableTelemetry bool
}

// Telemetry cadence: a WorkerReport rides at most one TaskRequest per
// reportInterval (the EWMAs change slowly, so more would be wire cost for
// no information), and the runtime stats inside it refresh at most once
// per runtimeInterval (runtime.ReadMemStats stops the world briefly).
const (
	reportInterval  = 250 * time.Millisecond
	runtimeInterval = time.Second
)

// workerTelemetry accumulates the session's self-measured profile: EWMAs
// of kernel throughput and per-chunk compute/encode time (same 0.7/0.3
// blend the server uses for its ack-timing chunkSecs), plus rate-limited
// Go runtime stats. Single-goroutine like the rest of the session loop.
type workerTelemetry struct {
	pps         float64 // photons per second, EWMA
	chunkSecs   float64 // per-chunk compute seconds, EWMA
	encodeSecs  float64 // per-flush batch encode seconds, EWMA
	lastReport  time.Time
	lastRuntime time.Time
	goroutines  int
	heapBytes   uint64
}

// ewma blends a new sample into the running average, seeding on first use.
func ewma(cur, sample float64) float64 {
	if cur == 0 {
		return sample
	}
	return 0.7*cur + 0.3*sample
}

// chunk folds one computed chunk into the throughput EWMAs.
func (t *workerTelemetry) chunk(photons int64, elapsed time.Duration) {
	if secs := elapsed.Seconds(); secs > 0 {
		t.pps = ewma(t.pps, float64(photons)/secs)
		t.chunkSecs = ewma(t.chunkSecs, secs)
	}
}

// maybeReport returns the report to piggyback on the next TaskRequest, or
// nil when one rode the wire less than reportInterval ago.
func (t *workerTelemetry) maybeReport(holding int) *protocol.WorkerReport {
	now := time.Now()
	if !t.lastReport.IsZero() && now.Sub(t.lastReport) < reportInterval {
		return nil
	}
	t.lastReport = now
	if t.lastRuntime.IsZero() || now.Sub(t.lastRuntime) >= runtimeInterval {
		t.lastRuntime = now
		t.goroutines = runtime.NumGoroutine()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		t.heapBytes = ms.HeapAlloc
	}
	return &protocol.WorkerReport{
		PhotonsPerSec: t.pps,
		ChunkSecs:     t.chunkSecs,
		EncodeSecs:    t.encodeSecs,
		Holding:       holding,
		Goroutines:    t.goroutines,
		HeapBytes:     t.heapBytes,
		Version:       obs.Version,
	}
}

// workerMetrics is the worker loop's pre-resolved instrument set.
// Registration is idempotent, so sessions sharing one registry —
// sequential or concurrent — accumulate into the same series: the
// counters are monotonic, and the holding gauge is maintained with
// per-session deltas (never Set), so concurrent sessions compose.
type workerMetrics struct {
	photons  *obs.Counter
	chunks   *obs.Counter
	chunkSec *obs.Histogram
	flushes  *obs.Counter
	rejected *obs.Counter
	holding  *obs.Gauge
	conn     *protocol.ConnMetrics
}

func newWorkerMetrics(reg *obs.Registry) *workerMetrics {
	return &workerMetrics{
		photons: reg.Counter("worker_photons_total",
			"Photons simulated by this worker."),
		chunks: reg.Counter("worker_chunks_computed_total",
			"Chunks computed (whether or not their results were later accepted)."),
		chunkSec: reg.Histogram("worker_chunk_seconds",
			"Per-chunk compute time.", obs.DefBuckets),
		flushes: reg.Counter("worker_batches_flushed_total",
			"Result-batch flushes (piggybacked or standalone)."),
		rejected: reg.Counter("worker_results_rejected_total",
			"Results the server refused to reduce."),
		holding: reg.Gauge("worker_holding_chunks",
			"Computed chunks buffered and not yet flushed."),
		conn: protocol.NewConnMetrics(reg, "worker_conn"),
	}
}

// WorkerStats summarises a worker session.
type WorkerStats struct {
	// Chunks counts results the server accepted (including benign
	// duplicates); Photons covers the same set. Compute is accrued at
	// compute time and therefore also includes work whose results were
	// later rejected or lost with the connection.
	Chunks  int
	Photons int64
	Compute time.Duration
	// Batches counts result flushes (piggybacked or standalone); with
	// pre-reduction it is ≤ Chunks.
	Batches int
	// Rejected counts results the server refused to reduce (stale or
	// mismatched assignments); the session continues after a rejection.
	Rejected int
}

// ErrInjectedFailure is returned by a worker that halted due to
// FailAfterChunks.
var ErrInjectedFailure = errors.New("distsys: worker failed by injection")

// jobRuntime caches one job's built config and its jump-state stream
// cache so a session can interleave chunks of many jobs without
// rebuilding or re-jumping (workers are job-agnostic; the server routes
// results by JobID).
type jobRuntime struct {
	cfg     *mc.Config
	runner  *mc.Runner
	seed    uint64
	streams int
	fan     int
	cache   *rng.StreamCache
}

// run computes one chunk. Single-stream chunks draw their generator from
// the per-job StreamCache (one Jump per new stream instead of O(stream)
// per chunk); fanned chunks derive their sub-streams from the chunk's
// FanSeed, which is O(fan) regardless. A non-positive stream count marks
// an open-ended (precision-targeted) job: the server issues chunk ids
// without a predetermined bound, so only the lower bound is checked.
func (rt *jobRuntime) run(photons int64, stream int) (*mc.Tally, error) {
	if rt.fan > 1 {
		return mc.RunStreamFan(rt.cfg, photons, rt.seed, stream, rt.streams, rt.fan)
	}
	if stream < 0 || (rt.streams > 0 && stream >= rt.streams) {
		return nil, fmt.Errorf("distsys: stream %d outside [0,%d)", stream, rt.streams)
	}
	return rt.runner.Run(photons, rt.cache.Stream(stream)), nil
}

// maxCachedJobs bounds the per-session descriptor cache (a built Config
// can hold a multi-megabyte voxel grid, and a long-lived service hands a
// worker an unbounded stream of jobs). Eviction is FIFO; because each
// TaskRequest advertises exactly the jobs still cached, the server
// re-sends a descriptor the worker has dropped.
const maxCachedJobs = 32

// workerGroup accumulates one job's pre-reduced results inside a batch.
type workerGroup struct {
	chunks  []int
	photons []int64   // parallel to chunks, for ack-time accounting
	secs    []float64 // parallel to chunks, per-chunk compute time (telemetry)
	elapsed time.Duration
	tally   *mc.Tally
}

// resultBatch is the worker-side pre-reduction buffer: consecutive chunk
// tallies merge per job, and the whole buffer flushes as one ResultBatch.
// trackSecs selects whether flushes carry the per-chunk compute timings
// (off when the session disables telemetry).
type resultBatch struct {
	groups    map[uint64]*workerGroup
	order     []uint64
	chunks    int
	oldest    time.Time
	trackSecs bool
}

func newResultBatch(trackSecs bool) *resultBatch {
	return &resultBatch{groups: make(map[uint64]*workerGroup), trackSecs: trackSecs}
}

// add folds one chunk result into the buffer.
func (b *resultBatch) add(jobID uint64, chunkID int, photons int64, elapsed time.Duration, tally *mc.Tally) error {
	g := b.groups[jobID]
	if g == nil {
		g = &workerGroup{tally: tally}
		b.groups[jobID] = g
		b.order = append(b.order, jobID)
	} else if err := g.tally.Merge(tally); err != nil {
		return err
	}
	g.chunks = append(g.chunks, chunkID)
	g.photons = append(g.photons, photons)
	if b.trackSecs {
		g.secs = append(g.secs, elapsed.Seconds())
	}
	g.elapsed += elapsed
	if b.chunks == 0 {
		b.oldest = time.Now()
	}
	b.chunks++
	return nil
}

// refs lists the buffered chunks for the TaskRequest Holding advertisement.
func (b *resultBatch) refs() []protocol.ChunkRef {
	if b.chunks == 0 {
		return nil
	}
	refs := make([]protocol.ChunkRef, 0, b.chunks)
	for _, id := range b.order {
		for _, c := range b.groups[id].chunks {
			refs = append(refs, protocol.ChunkRef{JobID: id, ChunkID: c})
		}
	}
	return refs
}

// encode renders the buffer as a wire batch, writing every group's compact
// tally into one reusable arena buffer (returned for the next flush).
func (b *resultBatch) encode(arena []byte) (*protocol.ResultBatch, []byte) {
	offs := make([]int, len(b.order)+1)
	arena = arena[:0]
	for i, id := range b.order {
		offs[i] = len(arena)
		arena = mc.AppendTally(arena, b.groups[id].tally)
	}
	offs[len(b.order)] = len(arena)
	groups := make([]protocol.BatchGroup, len(b.order))
	for i, id := range b.order {
		g := b.groups[id]
		groups[i] = protocol.BatchGroup{
			JobID:     id,
			Chunks:    g.chunks,
			Elapsed:   g.elapsed,
			TallyData: arena[offs[i]:offs[i+1]:offs[i+1]],
			ChunkSecs: g.secs,
		}
	}
	return &protocol.ResultBatch{Groups: groups}, arena
}

// photonsFor returns the photon count of one buffered chunk (ack-time
// accounting).
func (b *resultBatch) photonsFor(jobID uint64, chunkID int) int64 {
	g := b.groups[jobID]
	if g == nil {
		return 0
	}
	for i, c := range g.chunks {
		if c == chunkID {
			return g.photons[i]
		}
	}
	return 0
}

func (b *resultBatch) reset() {
	clear(b.groups)
	b.order = b.order[:0]
	b.chunks = 0
}

// Work connects a worker over the given transport and processes chunks —
// of as many concurrent jobs as the server cares to assign — until the
// server reports the service done. It returns session statistics.
//
// Each assigned chunk is computed across the job's fan of jump-separated
// sub-streams on all available cores (mc.RunStreamFan), pre-reduced into a
// per-job batch, and flushed either on the next TaskRequest (once the
// size/age threshold trips) or standalone when the server has no work. The
// TaskRequest's Holding list keeps unflushed assignments alive on the
// server; a dropped connection loses only the unflushed buffer, which the
// server requeues.
func Work(rw io.ReadWriteCloser, opts WorkerOptions) (*WorkerStats, error) {
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	log := opts.Logger
	if opts.Name != "" {
		log = log.With("worker", opts.Name)
	}
	oreg := opts.Obs
	if oreg == nil {
		oreg = obs.NewRegistry()
	}
	met := newWorkerMetrics(oreg)
	if opts.FlushChunks <= 0 {
		opts.FlushChunks = DefaultFlushChunks
	}
	// The buffer can briefly hold FlushChunks-1 chunks plus one full grant
	// (itself ≤ FlushChunks); keep both the flushed batch and the Holding
	// advertisement inside the protocol's frame bound.
	if opts.FlushChunks > protocol.MaxBatchChunks/2 {
		opts.FlushChunks = protocol.MaxBatchChunks / 2
	}
	if opts.FlushAge <= 0 {
		opts.FlushAge = DefaultFlushAge
	}
	pc := protocol.NewConn(rw)
	pc.SetMetrics(met.conn)
	defer pc.Close()

	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello, Hello: &protocol.Hello{
		Version: protocol.Version,
		Name:    opts.Name,
		Mflops:  opts.Mflops,
	}}); err != nil {
		return nil, err
	}
	welcome, err := pc.Recv()
	if err != nil {
		return nil, err
	}
	if welcome.Type == protocol.MsgError {
		return nil, fmt.Errorf("distsys: server rejected hello: %s", welcome.Error.Msg)
	}
	if welcome.Type != protocol.MsgWelcome || welcome.Welcome == nil {
		return nil, fmt.Errorf("distsys: expected welcome, got %v", welcome.Type)
	}
	if opts.Ready != nil {
		opts.Ready.Set("session", true)
		defer opts.Ready.Set("session", false)
	}
	log.Info("session established", "server", welcome.Welcome.ServerName)

	jobs := make(map[uint64]*jobRuntime)
	var known []uint64
	var arena []byte
	tel := &workerTelemetry{}
	batch := newResultBatch(!opts.DisableTelemetry)
	// The holding gauge moves by deltas only (+1 per buffered chunk, -n per
	// acked flush) so sessions sharing a registry compose; on any return the
	// still-buffered chunks leave with the session.
	defer func() { met.holding.Add(-int64(batch.chunks)) }()
	stats := &WorkerStats{}
	computed := 0

	// stopping reports whether a graceful drain was requested (Stop closed
	// or the DrainAfterChunks budget spent).
	stopping := func() bool {
		if opts.DrainAfterChunks > 0 && computed >= opts.DrainAfterChunks {
			return true
		}
		select {
		case <-opts.Stop:
			return true
		default:
			return false
		}
	}

	applyAcks := func(acks []protocol.ResultAck) {
		for _, a := range acks {
			if a.Rejected {
				stats.Rejected++
				met.rejected.Inc()
				log.Warn("result rejected", "job", fmt.Sprintf("%016x", a.JobID),
					"chunk", a.ChunkID, "reason", a.Reason)
				continue
			}
			stats.Chunks++
			stats.Photons += batch.photonsFor(a.JobID, a.ChunkID)
		}
		stats.Batches++
		met.flushes.Inc()
		met.holding.Add(-int64(batch.chunks))
		batch.reset()
	}

	// encodeBatch renders the buffer for the wire, feeding the encode-time
	// EWMA the telemetry report carries.
	encodeBatch := func() *protocol.ResultBatch {
		start := time.Now()
		var wire *protocol.ResultBatch
		wire, arena = batch.encode(arena)
		if !opts.DisableTelemetry {
			tel.encodeSecs = ewma(tel.encodeSecs, time.Since(start).Seconds())
		}
		return wire
	}

	// flushStandalone pushes the buffer out on its own round trip — used
	// when the server has no work to piggyback on, and before idling, so
	// held results never gate a job's completion.
	flushStandalone := func() error {
		if batch.chunks == 0 {
			return nil
		}
		wire := encodeBatch()
		if err := pc.Send(&protocol.Message{Type: protocol.MsgResultBatch, Batch: wire}); err != nil {
			return err
		}
		ack, err := pc.Recv()
		if err != nil {
			return err
		}
		if ack.Type != protocol.MsgBatchAck || ack.BatchAck == nil {
			return fmt.Errorf("distsys: expected batch ack, got %v", ack.Type)
		}
		applyAcks(ack.BatchAck.Acks)
		return nil
	}

	// Assignment prefetch uses slow start: the first request asks for one
	// chunk and the window doubles per successful assignment up to one
	// batch worth (FlushChunks). A cold worker joining a fresh job
	// therefore cannot grab the whole queue before its peers have dialled
	// in, while a warmed-up session still amortises the request/assign
	// round trip across a full batch.
	want := 1
	for {
		if stopping() {
			// Graceful drain: push the held batch out, then leave. Chunks
			// granted but never computed are released when the connection
			// closes; nothing buffered is abandoned to timeout reclaim.
			if err := flushStandalone(); err != nil {
				return stats, err
			}
			log.Info("worker drained", "chunks", stats.Chunks)
			return stats, nil
		}
		req := &protocol.TaskRequest{KnownJobs: known, Want: want}
		if !opts.DisableTelemetry {
			req.Report = tel.maybeReport(batch.chunks)
		}
		flushing := batch.chunks > 0 &&
			(batch.chunks >= opts.FlushChunks || time.Since(batch.oldest) >= opts.FlushAge)
		if flushing {
			req.Batch = encodeBatch()
		} else {
			req.Holding = batch.refs()
		}
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest, Request: req}); err != nil {
			return stats, err
		}
		msg, err := pc.Recv()
		if err != nil {
			return stats, err
		}
		if msg.Type == protocol.MsgError {
			return stats, fmt.Errorf("distsys: server error: %s", msg.Error.Msg)
		}
		if flushing {
			if msg.BatchAck == nil {
				return stats, fmt.Errorf("distsys: flush on %v reply lost its batch ack", msg.Type)
			}
			applyAcks(msg.BatchAck.Acks)
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			if want *= 2; want > opts.FlushChunks {
				want = opts.FlushChunks
			}
			if want < 1 {
				want = 1
			}
			a := msg.Assign
			rt := jobs[a.JobID]
			if rt == nil {
				if a.Job == nil {
					return stats, fmt.Errorf("distsys: assigned unknown job %016x without descriptor", a.JobID)
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return stats, fmt.Errorf("distsys: bad job spec: %w", err)
				}
				runner, err := mc.NewRunner(cfg)
				if err != nil {
					return stats, fmt.Errorf("distsys: bad job spec: %w", err)
				}
				rt = &jobRuntime{cfg: cfg, runner: runner, seed: a.Job.Seed, streams: a.Job.Streams,
					fan: a.Job.Fan, cache: rng.NewStreamCache(a.Job.Seed)}
				jobs[a.JobID] = rt
				known = append(known, a.JobID)
				if len(known) > maxCachedJobs {
					delete(jobs, known[0])
					known = known[1:]
				}
			}
			grants := append([]protocol.ChunkGrant{
				{ChunkID: a.ChunkID, Stream: a.Stream, Photons: a.Photons}}, a.Extra...)
			for _, g := range grants {
				start := time.Now()
				tally, err := rt.run(g.Photons, g.Stream)
				if err != nil {
					return stats, err
				}
				elapsed := time.Since(start)
				if opts.Slowdown > 0 {
					time.Sleep(time.Duration(opts.Slowdown * float64(elapsed)))
				}
				if err := batch.add(a.JobID, g.ChunkID, g.Photons, elapsed, tally); err != nil {
					return stats, fmt.Errorf("distsys: pre-reducing job %016x chunk %d: %w",
						a.JobID, g.ChunkID, err)
				}
				stats.Compute += elapsed
				if !opts.DisableTelemetry {
					tel.chunk(g.Photons, elapsed)
				}
				computed++
				met.chunks.Inc()
				met.photons.Add(uint64(g.Photons))
				met.chunkSec.Observe(elapsed.Seconds())
				met.holding.Inc()
				log.Debug("chunk finished", "job", fmt.Sprintf("%016x", a.JobID),
					"chunk", g.ChunkID, "photons", g.Photons,
					"elapsed", elapsed, "buffered", batch.chunks)
				if opts.FailAfterChunks > 0 && computed >= opts.FailAfterChunks {
					// Flush what is computed; any still-ungranted chunks of
					// this assignment are released when the connection drops.
					if err := flushStandalone(); err != nil {
						return stats, err
					}
					return stats, ErrInjectedFailure
				}
				if stopping() {
					if err := flushStandalone(); err != nil {
						return stats, err
					}
					log.Info("worker drained mid-assignment", "chunks", stats.Chunks)
					return stats, nil
				}
			}
		case protocol.MsgNoWork:
			if batch.chunks > 0 {
				// Idle with buffered results: flush before waiting, or the
				// held chunks would gate their jobs' completion.
				if err := flushStandalone(); err != nil {
					return stats, err
				}
				continue // the flush may have finished the service
			}
			if msg.NoWork.Done {
				return stats, nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			// MsgError returned above, before the batch-ack check.
			return stats, fmt.Errorf("distsys: unexpected message %v", msg.Type)
		}
	}
}

// WorkTCP dials the service at addr and runs a worker session.
func WorkTCP(addr string, opts WorkerOptions) (*WorkerStats, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Work(conn, opts)
}
