package distsys

import (
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/protocol"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// quickSpec returns a cheap simulation spec for cluster tests.
func quickSpec() *mc.Spec {
	model := tissue.HomogeneousSlab("slab",
		tissue.ScalpProps, 5)
	return mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

func TestJobValidation(t *testing.T) {
	if _, err := NewDataManager(JobOptions{}); err == nil {
		t.Fatal("job without spec accepted")
	}
	if _, err := NewDataManager(JobOptions{Spec: quickSpec(), TotalPhotons: 0}); err == nil {
		t.Fatal("zero-photon job accepted")
	}
}

func TestChunkPartition(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 1050, ChunkPhotons: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dm.NumChunks() != 11 {
		t.Fatalf("chunks = %d, want 11", dm.NumChunks())
	}
	// Photon conservation across the partition (including the short tail
	// chunk) is asserted in internal/service's TestChunkPartition; here we
	// check it end-to-end through the launched count.
	res := runJob(t, JobOptions{
		Spec: quickSpec(), TotalPhotons: 1050, ChunkPhotons: 100, Seed: 1,
	}, []WorkerOptions{{Name: "solo"}})
	if res.Tally.Launched != 1050 {
		t.Fatalf("launched %d, want 1050", res.Tally.Launched)
	}
}

// runJob executes a distributed job over in-memory pipes with the given
// worker configurations and returns the result.
func runJob(t *testing.T, opts JobOptions, workers []WorkerOptions) *Result {
	t.Helper()
	dm, err := NewDataManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		server, client := net.Pipe()
		go dm.HandleConn(server)
		wg.Add(1)
		go func(w WorkerOptions) {
			defer wg.Done()
			_, err := Work(client, w)
			if err != nil && !errors.Is(err, ErrInjectedFailure) {
				// Connection teardown races are fine after job completion.
				select {
				case <-dm.Done():
				default:
					t.Errorf("worker %s: %v", w.Name, err)
				}
			}
		}(w)
	}
	res, err := dm.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	return res
}

func TestSingleWorkerMatchesLocalRun(t *testing.T) {
	spec := quickSpec()
	const total, chunk, seed = 3000, 500, 11
	res := runJob(t, JobOptions{
		Spec: spec, TotalPhotons: total, ChunkPhotons: chunk, Seed: seed,
	}, []WorkerOptions{{Name: "solo"}})

	if res.Tally.Launched != total {
		t.Fatalf("launched %d, want %d", res.Tally.Launched, total)
	}

	// Ground truth: the same streams computed locally.
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := mc.NewTally(cfg)
	streams := res.Chunks
	for s := 0; s < streams; s++ {
		chunkTally, err := mc.RunStream(cfg, chunk, seed, s, streams)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Merge(chunkTally); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(res.Tally.AbsorbedWeight-want.AbsorbedWeight) > 1e-9 {
		t.Fatalf("distributed absorbed %g != local %g",
			res.Tally.AbsorbedWeight, want.AbsorbedWeight)
	}
	if res.Tally.DetectedCount != want.DetectedCount {
		t.Fatalf("distributed detected %d != local %d",
			res.Tally.DetectedCount, want.DetectedCount)
	}
}

func TestManyWorkersSameResult(t *testing.T) {
	spec := quickSpec()
	opts := JobOptions{Spec: spec, TotalPhotons: 4000, ChunkPhotons: 250, Seed: 21}

	one := runJob(t, opts, []WorkerOptions{{Name: "a"}})
	four := runJob(t, opts, []WorkerOptions{
		{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
	})

	if one.Tally.Launched != four.Tally.Launched {
		t.Fatalf("launched differ: %d vs %d", one.Tally.Launched, four.Tally.Launched)
	}
	if one.Tally.DetectedCount != four.Tally.DetectedCount {
		t.Fatalf("worker count changed detections: %d vs %d",
			one.Tally.DetectedCount, four.Tally.DetectedCount)
	}
	if math.Abs(one.Tally.AbsorbedWeight-four.Tally.AbsorbedWeight) > 1e-9 {
		t.Fatalf("worker count changed absorption: %g vs %g",
			one.Tally.AbsorbedWeight, four.Tally.AbsorbedWeight)
	}
	// Work was actually shared.
	busy := 0
	for _, w := range four.Workers {
		if w.Chunks > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 workers did any work", busy)
	}
}

func TestHeterogeneousWorkers(t *testing.T) {
	spec := quickSpec()
	res := runJob(t, JobOptions{
		Spec: spec, TotalPhotons: 4000, ChunkPhotons: 200, Seed: 31,
	}, []WorkerOptions{
		{Name: "fast"},
		{Name: "slow", Slowdown: 3},
	})
	var fast, slow int
	for _, w := range res.Workers {
		switch w.Name {
		case "fast":
			fast = w.Chunks
		case "slow":
			slow = w.Chunks
		}
	}
	if fast+slow != res.Chunks {
		t.Fatalf("chunk accounting broken: %d + %d != %d", fast, slow, res.Chunks)
	}
	// Self-scheduling must give the faster machine more work.
	if fast <= slow {
		t.Fatalf("fast worker got %d chunks, slow got %d", fast, slow)
	}
}

func TestWorkerFailureRecovery(t *testing.T) {
	spec := quickSpec()
	const total, chunk = 3000, 150
	// One worker dies after 3 chunks; a reliable worker must finish the
	// job, including the chunks lost in flight.
	res := runJob(t, JobOptions{
		Spec: spec, TotalPhotons: total, ChunkPhotons: chunk, Seed: 41,
		ChunkTimeout: 5 * time.Second,
	}, []WorkerOptions{
		{Name: "flaky", FailAfterChunks: 3},
		{Name: "steady"},
	})
	if res.Tally.Launched != total {
		t.Fatalf("launched %d, want %d (lost chunks not recovered?)",
			res.Tally.Launched, total)
	}
}

func TestFailedWorkerChunksRequeued(t *testing.T) {
	// A worker that dies *between* assignment and result must have its
	// chunk requeued when the connection drops.
	spec := quickSpec()
	dm, err := NewDataManager(JobOptions{
		Spec: spec, TotalPhotons: 1000, ChunkPhotons: 100, Seed: 43,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill the transport mid-job from the worker side.
	server, client := net.Pipe()
	go dm.HandleConn(server)
	go func() {
		time.Sleep(50 * time.Millisecond)
		client.Close() // abrupt death
	}()
	Work(client, WorkerOptions{Name: "doomed"}) // error expected, ignore

	// A healthy worker completes everything.
	server2, client2 := net.Pipe()
	go dm.HandleConn(server2)
	go Work(client2, WorkerOptions{Name: "healthy"})

	res, err := dm.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 1000 {
		t.Fatalf("launched %d, want 1000", res.Tally.Launched)
	}
}

func TestDuplicateResultIgnored(t *testing.T) {
	// Drive the protocol by hand to deliver the same chunk result twice;
	// the reduction must stay exactly-once.
	spec := quickSpec()
	dm, err := NewDataManager(JobOptions{
		Spec: spec, TotalPhotons: 200, ChunkPhotons: 100, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go dm.HandleConn(server)
	pc := protocol.NewConn(client)
	defer pc.Close()

	send := func(m *protocol.Message) {
		t.Helper()
		if err := pc.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *protocol.Message {
		t.Helper()
		m, err := pc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: "manual"}})
	recv() // welcome

	send(&protocol.Message{Type: protocol.MsgTaskRequest})
	assign := recv().Assign
	if assign.Job == nil {
		t.Fatal("first assignment carried no job descriptor")
	}
	job := *assign.Job
	cfg, err := job.Spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	tally, err := mc.RunStream(cfg, assign.Photons, job.Seed, assign.Stream, job.Streams)
	if err != nil {
		t.Fatal(err)
	}
	result := &protocol.Message{Type: protocol.MsgTaskResult, Result: &protocol.TaskResult{
		JobID: assign.JobID, ChunkID: assign.ChunkID, Tally: tally,
	}}
	send(result)
	if ack := recv().Ack; ack.Duplicate {
		t.Fatal("first delivery flagged duplicate")
	}
	send(result) // replay the same chunk
	if ack := recv().Ack; !ack.Duplicate {
		t.Fatal("replayed result not flagged duplicate")
	}

	// Finish the job and check the duplicate did not double count.
	send(&protocol.Message{Type: protocol.MsgTaskRequest})
	assign2 := recv().Assign
	tally2, err := mc.RunStream(cfg, assign2.Photons, job.Seed, assign2.Stream, job.Streams)
	if err != nil {
		t.Fatal(err)
	}
	send(&protocol.Message{Type: protocol.MsgTaskResult, Result: &protocol.TaskResult{
		JobID: assign2.JobID, ChunkID: assign2.ChunkID, Tally: tally2,
	}})
	recv() // ack

	res, err := dm.Wait(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 200 {
		t.Fatalf("duplicate inflated tally: launched %d, want 200", res.Tally.Launched)
	}
	if res.Duplicates != 1 {
		t.Fatalf("duplicates recorded %d, want 1", res.Duplicates)
	}
}

// TestForgedJobIDRejected drives the protocol by hand and delivers results
// that do not match the worker's current assignment — a forged JobID (the
// stale-worker-from-a-previous-run scenario) and a chunk the session was
// never handed. Both must be rejected without touching the reduction, and
// the job must still complete exactly once the honest results arrive.
func TestForgedJobIDRejected(t *testing.T) {
	spec := quickSpec()
	dm, err := NewDataManager(JobOptions{
		Spec: spec, TotalPhotons: 200, ChunkPhotons: 100, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go dm.HandleConn(server)
	pc := protocol.NewConn(client)
	defer pc.Close()

	send := func(m *protocol.Message) {
		t.Helper()
		if err := pc.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() *protocol.Message {
		t.Helper()
		m, err := pc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: "forger"}})
	recv() // welcome
	send(&protocol.Message{Type: protocol.MsgTaskRequest})
	assign := recv().Assign
	job := *assign.Job
	cfg, err := job.Spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	tally, err := mc.RunStream(cfg, assign.Photons, job.Seed, assign.Stream, job.Streams)
	if err != nil {
		t.Fatal(err)
	}

	// A result with a forged JobID must be rejected, not reduced.
	send(&protocol.Message{Type: protocol.MsgTaskResult, Result: &protocol.TaskResult{
		JobID: assign.JobID ^ 0xdeadbeef, ChunkID: assign.ChunkID, Tally: tally,
	}})
	if ack := recv().Ack; !ack.Rejected {
		t.Fatal("forged JobID not rejected")
	}
	// So must a result for a chunk this session was never assigned.
	otherChunk := 1 - assign.ChunkID
	otherTally, err := mc.RunStream(cfg, 100, job.Seed, otherChunk, job.Streams)
	if err != nil {
		t.Fatal(err)
	}
	send(&protocol.Message{Type: protocol.MsgTaskResult, Result: &protocol.TaskResult{
		JobID: assign.JobID, ChunkID: otherChunk, Tally: otherTally,
	}})
	if ack := recv().Ack; !ack.Rejected {
		t.Fatal("result for unassigned chunk not rejected")
	}
	if done, _ := dm.Progress(); done != 0 {
		t.Fatalf("rejected results were reduced: %d chunks completed", done)
	}

	// The honest worker still finishes the job, proving rejection did not
	// wedge the chunk queue. The forger's assigned chunk was abandoned, so
	// requeue it via a fresh session (pipe close → release).
	pc.Close()
	server2, client2 := net.Pipe()
	go dm.HandleConn(server2)
	go Work(client2, WorkerOptions{Name: "honest"})
	res, err := dm.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 200 {
		t.Fatalf("launched %d, want 200", res.Tally.Launched)
	}
	// The unassigned-chunk rejection is attributed to the job; the forged
	// JobID names no known job, so it only shows in the fleet counter.
	if res.Rejected != 1 {
		t.Fatalf("job rejected count %d, want 1", res.Rejected)
	}
	if n := dm.Stats().RejectedResults; n != 2 {
		t.Fatalf("fleet rejected count %d, want 2", n)
	}
}

func TestTCPEndToEnd(t *testing.T) {
	spec := quickSpec()
	dm, err := NewDataManager(JobOptions{
		Spec: spec, TotalPhotons: 2000, ChunkPhotons: 250, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go dm.Serve(l)

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := WorkTCP(l.Addr().String(), WorkerOptions{
				Name:   string(rune('a' + i)),
				Mflops: 100,
			})
			if err != nil {
				select {
				case <-dm.Done():
				default:
					t.Errorf("tcp worker %d: %v", i, err)
				}
			}
		}(i)
	}
	res, err := dm.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if res.Tally.Launched != 2000 {
		t.Fatalf("launched %d", res.Tally.Launched)
	}
	if res.Tally.EnergyBalance() > 1e-6 {
		t.Fatalf("energy balance %g", res.Tally.EnergyBalance())
	}
}

func TestProgressReporting(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 500, ChunkPhotons: 100, Seed: 71,
	})
	if err != nil {
		t.Fatal(err)
	}
	done, total := dm.Progress()
	if done != 0 || total != 5 {
		t.Fatalf("initial progress %d/%d", done, total)
	}
}

func TestWaitTimeout(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 500, ChunkPhotons: 100, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.Wait(30 * time.Millisecond); err == nil {
		t.Fatal("wait with no workers should time out")
	}
}

// voxelSpec returns a heterogeneous voxel-geometry job: a thin slab with an
// absorbing spherical inclusion.
func voxelSpec(t *testing.T) *mc.Spec {
	t.Helper()
	g, err := voxel.FromModel(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		40, 40, 10, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := g.AddMedium("absorber", optics.Properties{MuA: 1, MuS: 10, G: 0.9, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	g.PaintSphere(inc, 0, 0, 2.5, 1.5)
	return mc.NewVoxelSpec(g,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

// TestVoxelJobEndToEnd runs a voxel-geometry job through the full
// manager/worker path and checks the distributed reduction matches the
// same streams computed locally — the acceptance criterion for voxel jobs
// on the cluster.
func TestVoxelJobEndToEnd(t *testing.T) {
	spec := voxelSpec(t)
	const total, chunk, seed = 2000, 250, 13
	res := runJob(t, JobOptions{
		Spec: spec, TotalPhotons: total, ChunkPhotons: chunk, Seed: seed,
	}, []WorkerOptions{{Name: "vox-a"}, {Name: "vox-b"}, {Name: "vox-c"}})

	if res.Tally.Launched != total {
		t.Fatalf("launched %d, want %d", res.Tally.Launched, total)
	}
	// The per-region tallies must be sized by the voxel media table
	// (slab + absorber), not a layered model.
	if len(res.Tally.LayerAbsorbed) != 2 {
		t.Fatalf("tally regions = %d, want 2", len(res.Tally.LayerAbsorbed))
	}
	if res.Tally.LayerAbsorbed[1] == 0 {
		t.Fatal("no absorption recorded in the inclusion medium")
	}

	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := mc.NewTally(cfg)
	for s := 0; s < res.Chunks; s++ {
		chunkTally, err := mc.RunStream(cfg, chunk, seed, s, res.Chunks)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Merge(chunkTally); err != nil {
			t.Fatal(err)
		}
	}
	if math.Abs(res.Tally.AbsorbedWeight-want.AbsorbedWeight) > 1e-9 {
		t.Fatalf("distributed absorbed %g != local %g",
			res.Tally.AbsorbedWeight, want.AbsorbedWeight)
	}
	if math.Abs(res.Tally.LateralWeight-want.LateralWeight) > 1e-9 {
		t.Fatalf("distributed lateral %g != local %g",
			res.Tally.LateralWeight, want.LateralWeight)
	}
	if res.Tally.DetectedCount != want.DetectedCount {
		t.Fatalf("distributed detected %d != local %d",
			res.Tally.DetectedCount, want.DetectedCount)
	}
}
