package distsys

import (
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"time"

	"repro/internal/obs"
)

// Reconnect defaults: backoff starts at Base, doubles per consecutive
// failure with full jitter, caps at Max, and resets after a healthy
// session (one that reduced at least a chunk or survived HealthyAfter).
const (
	DefaultReconnectBase    = 500 * time.Millisecond
	DefaultReconnectMax     = 30 * time.Second
	DefaultHealthyAfter     = 5 * time.Second
	reconnectBackoffFactor  = 2
	reconnectJitterFraction = 2 // sleep drawn from [d/jitterFraction, d)
)

// LoopOptions configure WorkLoop's reconnect behaviour.
type LoopOptions struct {
	// Reconnect keeps the worker alive across dial failures and dropped
	// sessions; false reproduces the old run-once behaviour.
	Reconnect bool
	// Base and Max bound the exponential backoff between attempts
	// (defaults DefaultReconnectBase / DefaultReconnectMax).
	Base time.Duration
	Max  time.Duration
	// HealthyAfter is the session age past which the backoff resets even
	// if no chunk happened to reduce (default DefaultHealthyAfter).
	HealthyAfter time.Duration
}

// WorkLoop runs worker sessions against dial until the server reports
// the service done, the session drains via opts.Stop, or — with
// Reconnect off — the first error. With Reconnect on, dial failures and
// mid-session IO errors (a restarting mcqueue, a flaky link) retry under
// exponential backoff with full jitter so a fleet of workers does not
// stampede the server the instant it returns. Stats accumulate across
// sessions.
func WorkLoop(dial func() (io.ReadWriteCloser, error), opts WorkerOptions, lo LoopOptions) (*WorkerStats, error) {
	if lo.Base <= 0 {
		lo.Base = DefaultReconnectBase
	}
	if lo.Max <= 0 {
		lo.Max = DefaultReconnectMax
	}
	if lo.HealthyAfter <= 0 {
		lo.HealthyAfter = DefaultHealthyAfter
	}
	log := opts.Logger
	if log == nil {
		log = obs.NopLogger()
	}
	total := &WorkerStats{}
	delay := lo.Base
	for {
		start := time.Now()
		var stats *WorkerStats
		conn, err := dial()
		if err == nil {
			stats, err = Work(conn, opts)
			if stats != nil {
				total.Chunks += stats.Chunks
				total.Photons += stats.Photons
				total.Compute += stats.Compute
				total.Batches += stats.Batches
				total.Rejected += stats.Rejected
			}
		}
		if err == nil {
			return total, nil // service done or graceful drain
		}
		if !lo.Reconnect {
			return total, err
		}
		select {
		case <-opts.Stop:
			// A drain request that raced the session's death: leave now
			// rather than redial (there is no buffered batch to flush — it
			// died with the connection).
			return total, nil
		default:
		}
		// A session that did real work (or at least held for a while)
		// proves the server healthy; start the next backoff run fresh.
		if (stats != nil && stats.Chunks > 0) || time.Since(start) >= lo.HealthyAfter {
			delay = lo.Base
		}
		// Full jitter: sleep in [delay/2, delay), then grow the ceiling.
		sleep := delay/reconnectJitterFraction +
			rand.N(delay-delay/reconnectJitterFraction)
		log.Warn("worker session ended; reconnecting", "err", err, "backoff", sleep)
		select {
		case <-opts.Stop:
			return total, nil
		case <-time.After(sleep):
		}
		if delay *= reconnectBackoffFactor; delay > lo.Max {
			delay = lo.Max
		}
	}
}

// WorkLoopTCP is WorkLoop over a TCP dialer to addr.
func WorkLoopTCP(addr string, opts WorkerOptions, lo LoopOptions) (*WorkerStats, error) {
	return WorkLoop(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", addr)
	}, opts, lo)
}

// WorkLoopTCPMulti is WorkLoop over a list of candidate fleet addresses —
// a shard primary and its standbys. Each dial attempt tries the next
// address in rotation, so when the primary dies the ordinary reconnect
// backoff lands the worker on whichever standby inherited the shard; no
// address is privileged and none needs to be up at start.
func WorkLoopTCPMulti(addrs []string, opts WorkerOptions, lo LoopOptions) (*WorkerStats, error) {
	if len(addrs) == 0 {
		return nil, errors.New("distsys: no fleet addresses")
	}
	if len(addrs) == 1 {
		return WorkLoopTCP(addrs[0], opts, lo)
	}
	next := 0
	return WorkLoop(func() (io.ReadWriteCloser, error) {
		addr := addrs[next%len(addrs)]
		next++
		return net.Dial("tcp", addr)
	}, opts, lo)
}
