package distsys

import (
	"math"
	"net"
	"path/filepath"
	"testing"
	"time"

	"os"

	"repro/internal/mc"
	"repro/internal/service"
	"repro/internal/wal"
)

// partialJob runs exactly `chunks` chunks of a job by letting a worker fail
// after that many, then returns the manager mid-job.
func partialJob(t *testing.T, chunksDone int) *DataManager {
	t.Helper()
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go dm.HandleConn(server)
	Work(client, WorkerOptions{Name: "partial", FailAfterChunks: chunksDone})
	return dm
}

func TestCheckpointCapturesProgress(t *testing.T) {
	dm := partialJob(t, 4)
	cp := dm.Checkpoint()
	if len(cp.Completed) != 4 {
		t.Fatalf("checkpoint has %d completed chunks, want 4", len(cp.Completed))
	}
	if cp.Tally.Launched != 400 {
		t.Fatalf("checkpoint tally launched %d, want 400", cp.Tally.Launched)
	}
	if cp.NChunks != 10 || cp.Seed != 77 {
		t.Fatalf("checkpoint metadata wrong: %+v", cp)
	}
}

func TestCheckpointIsolatedFromLiveTally(t *testing.T) {
	dm := partialJob(t, 2)
	cp := dm.Checkpoint()
	before := cp.Tally.AbsorbedWeight

	// Finish the job; the checkpoint must not change.
	server, client := net.Pipe()
	go dm.HandleConn(server)
	go Work(client, WorkerOptions{Name: "finisher"})
	if _, err := dm.Wait(time.Minute); err != nil {
		t.Fatal(err)
	}
	if cp.Tally.AbsorbedWeight != before {
		t.Fatal("checkpoint shares state with the live tally")
	}
}

func TestResumeCompletesToSameResult(t *testing.T) {
	// Ground truth: uninterrupted job.
	full, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	s1, c1 := net.Pipe()
	go full.HandleConn(s1)
	go Work(c1, WorkerOptions{Name: "solo"})
	want, err := full.Wait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted job → checkpoint → save/load → resume → finish.
	dm := partialJob(t, 4)
	path := filepath.Join(t.TempDir(), "job.ckpt")
	if err := dm.Checkpoint().Save(path); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp, JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	done, total := resumed.Progress()
	if done != 4 || total != 10 {
		t.Fatalf("resumed progress %d/%d, want 4/10", done, total)
	}
	s2, c2 := net.Pipe()
	go resumed.HandleConn(s2)
	go Work(c2, WorkerOptions{Name: "resumer"})
	got, err := resumed.Wait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}

	if got.Tally.Launched != want.Tally.Launched {
		t.Fatalf("launched %d vs uninterrupted %d", got.Tally.Launched, want.Tally.Launched)
	}
	if got.Tally.DetectedCount != want.Tally.DetectedCount {
		t.Fatalf("detected %d vs uninterrupted %d",
			got.Tally.DetectedCount, want.Tally.DetectedCount)
	}
	if math.Abs(got.Tally.AbsorbedWeight-want.Tally.AbsorbedWeight) > 1e-9 {
		t.Fatalf("absorbed %g vs uninterrupted %g",
			got.Tally.AbsorbedWeight, want.Tally.AbsorbedWeight)
	}
}

func TestResumeOfCompleteJobIsDone(t *testing.T) {
	dm, err := NewDataManager(JobOptions{
		Spec: quickSpec(), TotalPhotons: 300, ChunkPhotons: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, c := net.Pipe()
	go dm.HandleConn(s)
	go Work(c, WorkerOptions{Name: "w"})
	if _, err := dm.Wait(time.Minute); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(dm.Checkpoint(), JobOptions{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-resumed.Done():
	case <-time.After(time.Second):
		t.Fatal("resume of a finished job should be immediately done")
	}
}

func TestLoadCheckpointRejectsBad(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCheckpoint(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
	// Corrupt/incomplete checkpoint.
	bad := &Checkpoint{NChunks: 0}
	path := filepath.Join(dir, "bad.ckpt")
	if err := bad.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("incomplete checkpoint accepted")
	}
}

func TestResumeRejectsOutOfRangeChunk(t *testing.T) {
	dm := partialJob(t, 1)
	cp := dm.Checkpoint()
	cp.Completed = append(cp.Completed, 999)
	if _, err := Resume(cp, JobOptions{}); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}

// TestCheckpointCarriesFanAndTarget pins the v4 checkpoint fields: the fan
// width and the precision target survive the snapshot → checkpoint → disk
// → snapshot round trip. (Before Fan rode the checkpoint, a fanned job
// silently resumed unfanned — onto a different stream decomposition.)
func TestCheckpointCarriesFanAndTarget(t *testing.T) {
	tgt := &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.01, MinPhotons: 4000, MaxPhotons: 40_000}
	snap := &service.Snapshot{
		Spec: service.JobSpec{
			Spec:         quickSpec(),
			ChunkPhotons: 400,
			Seed:         19,
			Fan:          3,
			Target:       tgt,
			Label:        "precision",
		},
		NChunks:   5,
		Completed: []int{0, 2},
		Tally:     &mc.Tally{Launched: 800},
	}
	cp := FromSnapshot(snap)
	if cp.Fan != 3 || cp.Target == nil || cp.Target.RelErr != 0.01 {
		t.Fatalf("checkpoint dropped fan/target: %+v", cp)
	}

	path := filepath.Join(t.TempDir(), "prec.ckpt")
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	rs := back.Snapshot()
	if rs.Spec.Fan != 3 {
		t.Fatalf("resumed fan %d, want 3", rs.Spec.Fan)
	}
	if rs.Spec.Target == nil || *rs.Spec.Target != *tgt {
		t.Fatalf("resumed target %+v, want %+v", rs.Spec.Target, tgt)
	}
	if rs.NChunks != 5 || len(rs.Completed) != 2 {
		t.Fatalf("resumed chunk state wrong: %+v", rs)
	}
}

// TestCheckpointSaveUsesAtomicReplace pins Save to the shared
// crash-durable write helper (fsync the temp file, rename over the
// target, fsync the directory) — the same path WAL compaction uses. A
// process killed mid-save must leave either the old checkpoint or the
// new one on disk, never a torn file.
func TestCheckpointSaveUsesAtomicReplace(t *testing.T) {
	dm := partialJob(t, 3)
	path := filepath.Join(t.TempDir(), "job.ckpt")
	var replaced []string
	wal.ReplaceHook = func(p string) { replaced = append(replaced, p) }
	defer func() { wal.ReplaceHook = nil }()
	if err := dm.Checkpoint().Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if len(replaced) != 1 || replaced[0] != path {
		t.Fatalf("Save bypassed wal.AtomicReplace: hook saw %v", replaced)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("Save left its temp file behind")
	}
	cp, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint after durable save: %v", err)
	}
	if len(cp.Completed) != 3 {
		t.Fatalf("durable save lost progress: %d completed, want 3", len(cp.Completed))
	}
}
