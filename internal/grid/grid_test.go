package grid

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestNewCubeGeometry(t *testing.T) {
	g := NewCube(50, 30)
	if g.Nx != 50 || g.Ny != 50 || g.Nz != 50 {
		t.Fatalf("dims %dx%dx%d", g.Nx, g.Ny, g.Nz)
	}
	if g.Dx != 0.6 {
		t.Fatalf("Dx = %g", g.Dx)
	}
	if g.X0 != -15 || g.Y0 != -15 {
		t.Fatalf("corner (%g,%g)", g.X0, g.Y0)
	}
	if len(g.Data) != 50*50*50 {
		t.Fatalf("data len %d", len(g.Data))
	}
}

func TestAddAndAt(t *testing.T) {
	g := New(4, 4, 4, 1, 1, 1)
	// Center of voxel (2,1,3): world x = X0+2.5, y = Y0+1.5, z = 3.5.
	g.Add(g.X0+2.5, g.Y0+1.5, 3.5, 2.0)
	if got := g.At(2, 1, 3); got != 2 {
		t.Fatalf("At = %g", got)
	}
	if g.Total() != 2 {
		t.Fatalf("Total = %g", g.Total())
	}
}

func TestAddOutsideDropped(t *testing.T) {
	g := New(4, 4, 4, 1, 1, 1)
	g.Add(100, 0, 0, 1)
	g.Add(0, -100, 0, 1)
	g.Add(0, 0, -0.01, 1) // above surface
	g.Add(0, 0, 4.01, 1)  // below grid
	if g.Total() != 0 {
		t.Fatalf("out-of-grid adds leaked: total %g", g.Total())
	}
}

func TestVoxelBoundaryOwnership(t *testing.T) {
	g := New(2, 2, 2, 1, 1, 1)
	// A point exactly on an interior voxel boundary belongs to the upper
	// voxel (floor semantics).
	i, j, k, ok := g.Voxel(g.X0+1, g.Y0, 0)
	if !ok || i != 1 || j != 0 || k != 0 {
		t.Fatalf("boundary point voxel (%d,%d,%d) ok=%v", i, j, k, ok)
	}
}

// Property: merging two grids equals adding their contents in either order,
// and merge is associative.
func TestMergeLaws(t *testing.T) {
	mk := func(seed uint64) *Grid3 {
		g := NewCube(8, 8)
		r := rng.New(seed)
		for n := 0; n < 200; n++ {
			g.Add(16*r.Float64()-8, 16*r.Float64()-8, 8*r.Float64(), r.Float64())
		}
		return g
	}
	f := func(s1, s2, s3 uint64) bool {
		a, b, c := mk(s1), mk(s2), mk(s3)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		for i := range ab.Data {
			if math.Abs(ab.Data[i]-ba.Data[i]) > 1e-12 {
				return false
			}
		}

		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		for i := range abc1.Data {
			if math.Abs(abc1.Data[i]-abc2.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a := NewCube(8, 8)
	b := NewCube(9, 8)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging incompatible grids succeeded")
	}
}

func TestThreshold(t *testing.T) {
	g := NewCube(4, 4)
	g.Data[0] = 10
	g.Data[1] = 5
	g.Data[2] = 1
	kept := g.Threshold(0.4) // cut at 4
	if kept != 2 {
		t.Fatalf("kept %d voxels, want 2", kept)
	}
	if g.Data[0] != 10 || g.Data[1] != 5 || g.Data[2] != 0 {
		t.Fatalf("threshold result %v", g.Data[:3])
	}
}

func TestScaleAndMax(t *testing.T) {
	g := NewCube(2, 2)
	g.Data[3] = 4
	g.Scale(0.5)
	if g.Max() != 2 {
		t.Fatalf("max after scale = %g", g.Max())
	}
}

func TestDepthProfile(t *testing.T) {
	g := New(2, 2, 3, 1, 1, 1)
	g.Add(g.X0+0.5, g.Y0+0.5, 0.5, 1) // depth bin 0
	g.Add(g.X0+1.5, g.Y0+0.5, 2.5, 3) // depth bin 2
	p := g.DepthProfile()
	if p[0] != 1 || p[1] != 0 || p[2] != 3 {
		t.Fatalf("depth profile %v", p)
	}
}

func TestSliceAndProjection(t *testing.T) {
	g := New(3, 3, 2, 1, 1, 1)
	g.Add(g.X0+0.5, g.Y0+1.5, 0.5, 2) // voxel (0,1,0)
	g.Add(g.X0+0.5, g.Y0+2.5, 0.5, 3) // voxel (0,2,0)
	slice := g.SliceY(1)
	if slice[0][0] != 2 {
		t.Fatalf("slice value %g", slice[0][0])
	}
	proj := g.ProjectY()
	if proj[0][0] != 5 {
		t.Fatalf("projection value %g, want 5", proj[0][0])
	}
	if len(proj) != 2 || len(proj[0]) != 3 {
		t.Fatalf("projection shape %dx%d", len(proj), len(proj[0]))
	}
}

func TestWriteCSV(t *testing.T) {
	g := New(2, 1, 2, 1, 1, 1)
	g.Add(g.X0+0.5, g.Y0+0.5, 0.5, 1)
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv rows %d, want 2", len(lines))
	}
	if lines[0] != "1,0" {
		t.Fatalf("csv row %q", lines[0])
	}
}

func TestPeakDepthPerColumn(t *testing.T) {
	rows := [][]float64{
		{5, 0, 1}, // depth 0
		{1, 0, 9}, // depth 1
		{0, 0, 2}, // depth 2
	}
	peaks := PeakDepthPerColumn(rows)
	if len(peaks) != 3 {
		t.Fatalf("peaks length %d", len(peaks))
	}
	if peaks[0] != 0 || peaks[1] != -1 || peaks[2] != 1 {
		t.Fatalf("peaks %v, want [0 -1 1]", peaks)
	}
	if PeakDepthPerColumn(nil) != nil {
		t.Fatal("nil input should give nil")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := NewCube(2, 2)
	g.Data[0] = 1
	c := g.Clone()
	c.Data[0] = 99
	if g.Data[0] != 1 {
		t.Fatal("clone shares backing array")
	}
}
