// Package grid provides the 3-D voxel accumulators the simulation scores
// into: absorbed weight per voxel and detected-photon path density (the
// "user defined granularity of results" feature, e.g. the 50³ grid of
// Fig 3). Grids are plain data so they serialise with encoding/gob and merge
// associatively for distributed reduction.
package grid

import (
	"fmt"
	"io"
	"math"
)

// Grid3 is a dense 3-D accumulation grid over the box
// [X0, X0+Nx·Dx) × [Y0, Y0+Ny·Dy) × [0, Nz·Dz). Values are accumulated
// weights (double precision). The z axis points into the tissue.
type Grid3 struct {
	Nx, Ny, Nz int
	Dx, Dy, Dz float64 // voxel edge lengths in mm
	X0, Y0     float64 // world coordinates of the grid corner (z always 0)
	Data       []float64
}

// New returns a zeroed grid with the given voxel counts and sizes, centred
// on x = y = 0 at the surface.
func New(nx, ny, nz int, dx, dy, dz float64) *Grid3 {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		panic(fmt.Sprintf("grid: non-positive dimensions %dx%dx%d", nx, ny, nz))
	}
	return &Grid3{
		Nx: nx, Ny: ny, Nz: nz,
		Dx: dx, Dy: dy, Dz: dz,
		X0:   -float64(nx) * dx / 2,
		Y0:   -float64(ny) * dy / 2,
		Data: make([]float64, nx*ny*nz),
	}
}

// NewCube returns an n×n×n grid spanning a cube of the given physical edge
// length (mm), centred on the source axis — "granularity of 50³" in the
// paper is NewCube(50, edge).
func NewCube(n int, edgeMM float64) *Grid3 {
	d := edgeMM / float64(n)
	return New(n, n, n, d, d, d)
}

// Clone returns a deep copy.
func (g *Grid3) Clone() *Grid3 {
	cp := *g
	cp.Data = make([]float64, len(g.Data))
	copy(cp.Data, g.Data)
	return &cp
}

// CompatibleWith reports whether two grids share geometry and can be merged.
func (g *Grid3) CompatibleWith(o *Grid3) bool {
	return g.Nx == o.Nx && g.Ny == o.Ny && g.Nz == o.Nz &&
		g.Dx == o.Dx && g.Dy == o.Dy && g.Dz == o.Dz &&
		g.X0 == o.X0 && g.Y0 == o.Y0
}

// Index returns the flat index for voxel (i, j, k).
func (g *Grid3) Index(i, j, k int) int { return (k*g.Ny+j)*g.Nx + i }

// Voxel returns the voxel coordinates containing world point (x, y, z) and
// whether the point is inside the grid.
func (g *Grid3) Voxel(x, y, z float64) (i, j, k int, ok bool) {
	i = int(math.Floor((x - g.X0) / g.Dx))
	j = int(math.Floor((y - g.Y0) / g.Dy))
	k = int(math.Floor(z / g.Dz))
	ok = i >= 0 && i < g.Nx && j >= 0 && j < g.Ny && k >= 0 && k < g.Nz
	return
}

// Add accumulates w at world point (x, y, z); points outside the grid are
// dropped (the grid is a window onto an unbounded medium).
func (g *Grid3) Add(x, y, z, w float64) {
	if i, j, k, ok := g.Voxel(x, y, z); ok {
		g.Data[g.Index(i, j, k)] += w
	}
}

// At returns the value of voxel (i, j, k).
func (g *Grid3) At(i, j, k int) float64 { return g.Data[g.Index(i, j, k)] }

// Merge adds o into g. Both grids must be compatible.
func (g *Grid3) Merge(o *Grid3) error {
	if !g.CompatibleWith(o) {
		return fmt.Errorf("grid: merging incompatible grids %dx%dx%d vs %dx%dx%d",
			g.Nx, g.Ny, g.Nz, o.Nx, o.Ny, o.Nz)
	}
	for i, v := range o.Data {
		g.Data[i] += v
	}
	return nil
}

// Scale multiplies every voxel by s (e.g. normalising by photon count).
func (g *Grid3) Scale(s float64) {
	for i := range g.Data {
		g.Data[i] *= s
	}
}

// Max returns the largest voxel value.
func (g *Grid3) Max() float64 {
	m := 0.0
	for _, v := range g.Data {
		if v > m {
			m = v
		}
	}
	return m
}

// Total returns the sum over all voxels.
func (g *Grid3) Total() float64 {
	t := 0.0
	for _, v := range g.Data {
		t += v
	}
	return t
}

// Threshold zeroes every voxel below frac·Max(), reproducing the
// "after thresholding" visualisation step of Fig 3, and returns the number
// of voxels kept.
func (g *Grid3) Threshold(frac float64) int {
	cut := frac * g.Max()
	kept := 0
	for i, v := range g.Data {
		if v < cut {
			g.Data[i] = 0
		} else if v > 0 {
			kept++
		}
	}
	return kept
}

// SliceY returns the x–z plane at voxel row j as a Nz×Nx matrix
// (rows indexed by depth), the natural rendering of the Fig 3/Fig 4 path
// maps.
func (g *Grid3) SliceY(j int) [][]float64 {
	s := make([][]float64, g.Nz)
	for k := 0; k < g.Nz; k++ {
		row := make([]float64, g.Nx)
		for i := 0; i < g.Nx; i++ {
			row[i] = g.At(i, j, k)
		}
		s[k] = row
	}
	return s
}

// ProjectY sums the grid over y, returning a Nz×Nx matrix: the axial path
// density map integrated across the transverse coordinate.
func (g *Grid3) ProjectY() [][]float64 {
	s := make([][]float64, g.Nz)
	for k := 0; k < g.Nz; k++ {
		row := make([]float64, g.Nx)
		for i := 0; i < g.Nx; i++ {
			sum := 0.0
			for j := 0; j < g.Ny; j++ {
				sum += g.At(i, j, k)
			}
			row[i] = sum
		}
		s[k] = row
	}
	return s
}

// DepthProfile sums the grid over x and y, returning the per-depth totals —
// the penetration-depth curve used in the Fig 4 analysis.
func (g *Grid3) DepthProfile() []float64 {
	p := make([]float64, g.Nz)
	for k := 0; k < g.Nz; k++ {
		sum := 0.0
		base := k * g.Ny * g.Nx
		for idx := base; idx < base+g.Ny*g.Nx; idx++ {
			sum += g.Data[idx]
		}
		p[k] = sum
	}
	return p
}

// PeakDepthPerColumn returns, for each column of a depth×width matrix
// (rows indexed by depth, as produced by SliceY/ProjectY), the row index of
// the column's maximum, or −1 for an all-zero column. For a detected-photon
// sensitivity map this is the quantitative banana arc: the most-probed
// depth as a function of lateral position.
func PeakDepthPerColumn(rows [][]float64) []int {
	if len(rows) == 0 {
		return nil
	}
	width := len(rows[0])
	peaks := make([]int, width)
	for x := 0; x < width; x++ {
		best, bestK := 0.0, -1
		for k := range rows {
			if v := rows[k][x]; v > best {
				best, bestK = v, k
			}
		}
		peaks[x] = bestK
	}
	return peaks
}

// WriteCSV writes the y-projection as CSV (one row per depth).
func (g *Grid3) WriteCSV(w io.Writer) error {
	proj := g.ProjectY()
	for _, row := range proj {
		for i, v := range row {
			sep := ","
			if i == len(row)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%g%s", v, sep); err != nil {
				return err
			}
		}
	}
	return nil
}
