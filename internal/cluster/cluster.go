// Package cluster is a discrete-event simulator of the paper's distributed
// system: a DataManager master serving simulation chunks to a fleet of
// non-dedicated, heterogeneous client PCs over a campus network. It
// regenerates the Fig 2 speedup/efficiency curve and the Table 2
// heterogeneous-fleet runtime prediction without needing 150 physical
// machines.
//
// The model captures exactly the costs that bound the paper's efficiency:
// per-message network latency, result transfer time, serial master service
// (assignment + reduction), per-chunk compute time scaled by each
// processor's Mflop/s rating, and stochastic availability of non-dedicated
// machines.
package cluster

import (
	"container/heap"
	"fmt"
	"time"

	"repro/internal/rng"
	"repro/internal/sched"
)

// Processor describes one client machine class (a Table 2 row). A rating
// range models the paper's measured Mflop/s spread; dedicated machines pin
// Avail to 1.
type Processor struct {
	Name      string
	MflopsMin float64
	MflopsMax float64
	RAMMB     int
	OS        string
}

// Mflops returns a concrete rating drawn from the processor's range.
func (p Processor) Mflops(r *rng.Rand) float64 {
	if p.MflopsMax <= p.MflopsMin {
		return p.MflopsMin
	}
	return p.MflopsMin + (p.MflopsMax-p.MflopsMin)*r.Float64()
}

// Fleet is a concrete set of machines, one entry per client.
type Fleet []Processor

// Homogeneous returns k identical dedicated machines — the Fig 2
// configuration ("Pentium IVs with 512 MB RAM").
func Homogeneous(k int, mflops float64) Fleet {
	f := make(Fleet, k)
	for i := range f {
		f[i] = Processor{
			Name:      fmt.Sprintf("p4-%03d", i),
			MflopsMin: mflops,
			MflopsMax: mflops,
			RAMMB:     512,
			OS:        "Linux",
		}
	}
	return f
}

// Table2Fleet expands Table 2 of the paper into its 150 client machines.
func Table2Fleet() Fleet {
	classes := []struct {
		count int
		p     Processor
	}{
		{91, Processor{Name: "p3-600", MflopsMin: 28, MflopsMax: 31, RAMMB: 256, OS: "Linux"}},
		{50, Processor{Name: "p4-2400", MflopsMin: 190, MflopsMax: 229, RAMMB: 512, OS: "Linux"}},
		{4, Processor{Name: "p2-266", MflopsMin: 15, MflopsMax: 15, RAMMB: 192, OS: "Linux"}},
		{1, Processor{Name: "p4c-1400", MflopsMin: 154, MflopsMax: 154, RAMMB: 1024, OS: "Windows XP"}},
		{1, Processor{Name: "p3-500", MflopsMin: 25, MflopsMax: 25, RAMMB: 512, OS: "Linux"}},
		{1, Processor{Name: "p3-1000", MflopsMin: 37, MflopsMax: 37, RAMMB: 256, OS: "Linux"}},
		{1, Processor{Name: "p4-1700", MflopsMin: 72, MflopsMax: 72, RAMMB: 256, OS: "Linux"}},
		{1, Processor{Name: "amd-2400xp", MflopsMin: 91, MflopsMax: 91, RAMMB: 1024, OS: "FreeBSD"}},
	}
	var f Fleet
	for _, c := range classes {
		for i := 0; i < c.count; i++ {
			p := c.p
			p.Name = fmt.Sprintf("%s-%03d", c.p.Name, i)
			f = append(f, p)
		}
	}
	return f
}

// TotalMflops returns the fleet's aggregate mid-range rating.
func (f Fleet) TotalMflops() float64 {
	t := 0.0
	for _, p := range f {
		t += (p.MflopsMin + p.MflopsMax) / 2
	}
	return t
}

// Network models the communication substrate.
type Network struct {
	// Latency is the one-way message latency.
	Latency time.Duration
	// BandwidthMBps carries chunk-result payloads (tallies and grids).
	BandwidthMBps float64
	// MasterService is the serial server time to handle one message
	// (assignment decision or result reduction): the master bottleneck.
	MasterService time.Duration
	// ResultBytes is the chunk-result payload size.
	ResultBytes int
}

// CampusLAN returns network parameters typical of the paper's setting:
// 100 Mbit switched Ethernet, millisecond-scale latency, and a master that
// reduces a result in a few milliseconds.
func CampusLAN() Network {
	return Network{
		Latency:       1 * time.Millisecond,
		BandwidthMBps: 10,
		MasterService: 3 * time.Millisecond,
		ResultBytes:   64 << 10, // a tally with a coarse grid
	}
}

// Params configure one simulated job.
type Params struct {
	TotalPhotons int64
	// Policy decides dynamic chunk sizes; nil defaults to fixed chunks of
	// TotalPhotons/(50·|fleet|) — the paper platform's self-scheduling.
	Policy sched.Policy
	// PhotonCostFlops is the per-photon compute cost. The default 1e5
	// reproduces the paper's "1 billion photons ≈ 2 h on the Table 2
	// fleet" calibration.
	PhotonCostFlops float64
	// NonDedicated samples a per-chunk availability factor in
	// [AvailMin, AvailMax] (background load on shared machines).
	NonDedicated       bool
	AvailMin, AvailMax float64
	Seed               uint64
}

// DefaultPhotonCostFlops calibrates compute cost against the paper's
// reported aggregate runtime: 10⁹ photons ≈ 2 h on the ~13.6 Gflop/s
// Table 2 fleet at ~75 % mean availability and ~93 % utilisation.
const DefaultPhotonCostFlops = 7e4

func (p *Params) normalize(fleet Fleet) {
	if p.PhotonCostFlops == 0 {
		p.PhotonCostFlops = DefaultPhotonCostFlops
	}
	if p.Policy == nil {
		chunk := p.TotalPhotons / int64(50*len(fleet))
		if chunk < 1 {
			chunk = 1
		}
		p.Policy = sched.FixedChunk{Photons: chunk}
	}
	if p.NonDedicated {
		if p.AvailMax == 0 {
			p.AvailMin, p.AvailMax = 0.5, 1.0
		}
	} else {
		p.AvailMin, p.AvailMax = 1, 1
	}
}

// ProcStats reports one machine's contribution.
type ProcStats struct {
	Name    string
	Mflops  float64
	Chunks  int
	Photons int64
	Busy    time.Duration
}

// Result is the outcome of one simulated job.
type Result struct {
	Makespan   time.Duration
	Chunks     int
	MasterBusy time.Duration
	PerProc    []ProcStats
}

// Utilization returns the mean fraction of the makespan the fleet spent
// computing.
func (r *Result) Utilization() float64 {
	if r.Makespan <= 0 || len(r.PerProc) == 0 {
		return 0
	}
	busy := 0.0
	for _, p := range r.PerProc {
		busy += p.Busy.Seconds()
	}
	return busy / (r.Makespan.Seconds() * float64(len(r.PerProc)))
}

// event is a message arrival at the master: a worker (re-)requesting work,
// possibly carrying a finished chunk's result.
type event struct {
	at   float64 // seconds
	proc int
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulate runs the master/worker job on the fleet and returns timing
// results in simulated wall-clock time. The event loop models the paper's
// self-scheduling protocol: an idle worker's request reaches the master
// after one network latency; the master serially services messages
// (assignment decisions and result reductions); compute time scales with
// the machine's Mflop/s and availability; results ship back over the
// network and are reduced before the next assignment to that worker.
func Simulate(fleet Fleet, net Network, p Params) *Result {
	if len(fleet) == 0 || p.TotalPhotons <= 0 {
		return &Result{}
	}
	p.normalize(fleet)
	r := rng.New(p.Seed)

	lat := net.Latency.Seconds()
	service := net.MasterService.Seconds()
	xfer := 0.0
	if net.BandwidthMBps > 0 {
		xfer = float64(net.ResultBytes) / (net.BandwidthMBps * 1e6)
	}

	mflops := make([]float64, len(fleet))
	stats := make([]ProcStats, len(fleet))
	for i, proc := range fleet {
		mflops[i] = proc.Mflops(r)
		stats[i] = ProcStats{Name: proc.Name, Mflops: mflops[i]}
	}

	// All workers request work at t = 0; requests arrive after one latency.
	h := make(eventHeap, 0, len(fleet))
	for i := range fleet {
		h = append(h, event{at: lat, proc: i})
	}
	heap.Init(&h)

	remaining := p.TotalPhotons
	masterFree := 0.0
	masterBusy := 0.0
	lastDone := 0.0
	chunks := 0

	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)

		// Serial master service: result reduction (if any) + next decision.
		start := ev.at
		if masterFree > start {
			start = masterFree
		}
		masterFree = start + service
		masterBusy += service
		if masterFree > lastDone {
			lastDone = masterFree
		}

		if remaining <= 0 {
			continue // job drained; worker told to stop
		}
		chunk := p.Policy.NextChunk(remaining, len(fleet))
		if chunk <= 0 {
			continue
		}
		remaining -= chunk
		chunks++

		avail := p.AvailMin + (p.AvailMax-p.AvailMin)*r.Float64()
		compute := float64(chunk) * p.PhotonCostFlops / (mflops[ev.proc] * 1e6 * avail)

		st := &stats[ev.proc]
		st.Chunks++
		st.Photons += chunk
		st.Busy += secondsToDuration(compute)

		// Assignment travels to the worker, the chunk computes, the result
		// (and the implicit next request) returns to the master.
		arrival := masterFree + lat + compute + xfer + lat
		heap.Push(&h, event{at: arrival, proc: ev.proc})
	}

	return &Result{
		Makespan:   secondsToDuration(lastDone),
		Chunks:     chunks,
		MasterBusy: secondsToDuration(masterBusy),
		PerProc:    stats,
	}
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// SpeedupPoint is one point of the Fig 2 curve.
type SpeedupPoint struct {
	Workers    int
	Makespan   time.Duration
	Speedup    float64
	Efficiency float64
}

// SpeedupCurve regenerates Fig 2: makespan, speedup T(1)/T(k) and
// efficiency T(1)/(k·T(k)) for each worker count, on homogeneous dedicated
// machines of the given rating.
func SpeedupCurve(workerCounts []int, mflops float64, net Network, p Params) []SpeedupPoint {
	t1 := Simulate(Homogeneous(1, mflops), net, p).Makespan.Seconds()
	points := make([]SpeedupPoint, 0, len(workerCounts))
	for _, k := range workerCounts {
		res := Simulate(Homogeneous(k, mflops), net, p)
		tk := res.Makespan.Seconds()
		sp := 0.0
		if tk > 0 {
			sp = t1 / tk
		}
		points = append(points, SpeedupPoint{
			Workers:    k,
			Makespan:   res.Makespan,
			Speedup:    sp,
			Efficiency: sp / float64(k),
		})
	}
	return points
}

// StaticResult reports a static-allocation run (no dynamic requests): each
// worker computes its whole allocation in one block. Used for the
// scheduling ablation (equal vs proportional vs GA static plans).
func StaticResult(fleet Fleet, net Network, p Params, alloc []int64) *Result {
	if len(alloc) != len(fleet) {
		panic("cluster: allocation length does not match fleet")
	}
	p.normalize(fleet)
	r := rng.New(p.Seed)

	lat := net.Latency.Seconds()
	xfer := 0.0
	if net.BandwidthMBps > 0 {
		xfer = float64(net.ResultBytes) / (net.BandwidthMBps * 1e6)
	}

	stats := make([]ProcStats, len(fleet))
	last := 0.0
	for i, proc := range fleet {
		m := proc.Mflops(r)
		avail := p.AvailMin + (p.AvailMax-p.AvailMin)*r.Float64()
		compute := float64(alloc[i]) * p.PhotonCostFlops / (m * 1e6 * avail)
		end := lat + compute + xfer + lat
		stats[i] = ProcStats{Name: proc.Name, Mflops: m, Chunks: 1, Photons: alloc[i],
			Busy: secondsToDuration(compute)}
		if end > last {
			last = end
		}
	}
	return &Result{Makespan: secondsToDuration(last), Chunks: len(fleet), PerProc: stats}
}
