package cluster

import (
	"testing"

	"repro/internal/sched"
)

// masterBoundConfig is a fleet large enough that the single serial
// master is the bottleneck: 64 workers whose ~100-photon chunks compute
// in ~30ms each (100 × 7e4 flops / 233 Mflops) against a 3ms serial
// master service time per grant. One master can feed at most ~10 such
// workers; 64 of them queue on it, and the makespan degenerates to
// chunks × MasterService. Splitting the same fleet across 4 masters is
// the regime the sharded control plane exists for.
func masterBoundConfig() (Fleet, Network, Params) {
	fleet := Homogeneous(64, 233)
	net := CampusLAN() // MasterService 3ms
	p := Params{
		TotalPhotons: 200_000,
		Policy:       sched.FixedChunk{Photons: 100},
		Seed:         7,
	}
	return fleet, net, p
}

func TestSimulateShardedDegeneratesToSimulate(t *testing.T) {
	fleet, net, p := masterBoundConfig()
	one := Simulate(fleet, net, p)
	alsoOne := SimulateSharded(fleet, net, p, 1)
	if one.Makespan != alsoOne.Makespan || one.Chunks != alsoOne.Chunks {
		t.Fatalf("shardCount=1 differs from Simulate: %v/%d vs %v/%d",
			one.Makespan, one.Chunks, alsoOne.Makespan, alsoOne.Chunks)
	}
}

func TestSimulateShardedConservesWork(t *testing.T) {
	fleet, net, p := masterBoundConfig()
	r := SimulateSharded(fleet, net, p, 4)
	if len(r.PerProc) != len(fleet) {
		t.Fatalf("PerProc %d procs, fleet has %d", len(r.PerProc), len(fleet))
	}
	var photons int64
	for _, ps := range r.PerProc {
		photons += ps.Photons
	}
	if photons != p.TotalPhotons {
		t.Fatalf("photons %d simulated, budget %d", photons, p.TotalPhotons)
	}
	// Even split + fixed 100-photon chunks: same chunk count either way.
	if one := Simulate(fleet, net, p); r.Chunks != one.Chunks {
		t.Fatalf("sharded run did %d chunks, single master %d", r.Chunks, one.Chunks)
	}
}

// TestSimulateShardedSpeedup pins the PR's headline number: with the
// single master saturated, 4 shards of 16 workers each cut the makespan
// by at least 3× — the serial-master term divides by the shard count
// while per-shard compute capacity still exceeds the per-shard demand.
func TestSimulateShardedSpeedup(t *testing.T) {
	fleet, net, p := masterBoundConfig()
	one := Simulate(fleet, net, p)
	four := SimulateSharded(fleet, net, p, 4)
	if one.Makespan <= 0 || four.Makespan <= 0 {
		t.Fatalf("degenerate makespans: %v, %v", one.Makespan, four.Makespan)
	}
	speedup := one.Makespan.Seconds() / four.Makespan.Seconds()
	t.Logf("1 master: %v, 4 shards: %v, speedup %.2fx", one.Makespan, four.Makespan, speedup)
	if speedup < 3 {
		t.Fatalf("4-shard speedup %.2fx under master-bound load, want >= 3x", speedup)
	}
	// Sanity: the one-master run really is master-bound — the master busy
	// fraction should be near 1, and sharding should relieve it.
	if busy := one.MasterBusy.Seconds() / one.Makespan.Seconds(); busy < 0.9 {
		t.Fatalf("single master only %.0f%% busy; config is not master-bound", busy*100)
	}
}
