package cluster

// SimulateSharded models the sharded control plane: the fleet is split
// round-robin across shardCount independent masters, the photon budget
// is divided evenly (remainder to the low shards), and each shard runs
// the same serial-master event simulation with its own seed stream. The
// shards share nothing — exactly the mcgate/mcqueue deployment, where a
// gateway partitions the submission space and each shard's master serves
// only its own workers.
//
// The aggregate Result reads as "the cluster's": Makespan is the slowest
// shard's (shards run concurrently), Chunks and PerProc accumulate, and
// MasterBusy is the busiest single master's — the serial-master term the
// paper's Section 4 model prices, and the one sharding divides. When the
// one-master configuration is master-bound (MasterService per grant
// rivals chunk compute time spread over the fleet), N shards approach an
// N× speedup; when it is compute-bound, sharding only buys the removed
// queueing delay.
//
// The Params are passed to every shard as given; a caller supplying an
// explicit Policy should use a stateless one (e.g. sched.FixedChunk), as
// the value is shared. shardCount <= 1 degenerates to Simulate.
func SimulateSharded(fleet Fleet, net Network, p Params, shardCount int) *Result {
	if shardCount <= 1 {
		return Simulate(fleet, net, p)
	}
	if shardCount > len(fleet) {
		shardCount = len(fleet)
	}
	subFleets := make([]Fleet, shardCount)
	for i, proc := range fleet {
		s := i % shardCount
		subFleets[s] = append(subFleets[s], proc)
	}
	base := p.TotalPhotons / int64(shardCount)
	rem := p.TotalPhotons % int64(shardCount)

	agg := &Result{}
	for s, sub := range subFleets {
		sp := p
		sp.TotalPhotons = base
		if int64(s) < rem {
			sp.TotalPhotons++
		}
		sp.Seed = p.Seed + uint64(s)
		if sp.TotalPhotons <= 0 || len(sub) == 0 {
			continue
		}
		r := Simulate(sub, net, sp)
		if r.Makespan > agg.Makespan {
			agg.Makespan = r.Makespan
		}
		if r.MasterBusy > agg.MasterBusy {
			agg.MasterBusy = r.MasterBusy
		}
		agg.Chunks += r.Chunks
		agg.PerProc = append(agg.PerProc, r.PerProc...)
	}
	return agg
}
