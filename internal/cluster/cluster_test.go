package cluster

import (
	"math"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/sched"
)

func TestTable2FleetMatchesPaper(t *testing.T) {
	f := Table2Fleet()
	if len(f) != 150 {
		t.Fatalf("fleet size %d, want 150 clients", len(f))
	}
	counts := map[string]int{}
	for _, p := range f {
		// Strip the per-machine suffix.
		counts[p.OS]++
	}
	if counts["Linux"] != 148 || counts["Windows XP"] != 1 || counts["FreeBSD"] != 1 {
		t.Fatalf("OS distribution %v", counts)
	}
	// Aggregate rating ≈ 13.6 Gflop/s at mid-range.
	agg := f.TotalMflops()
	if agg < 12000 || agg > 15000 {
		t.Fatalf("aggregate %g Mflop/s outside plausible Table 2 range", agg)
	}
}

func TestHomogeneousFleet(t *testing.T) {
	f := Homogeneous(60, 210)
	if len(f) != 60 {
		t.Fatalf("fleet size %d", len(f))
	}
	r := rng.New(1)
	for _, p := range f {
		if p.Mflops(r) != 210 {
			t.Fatal("homogeneous fleet should have fixed rating")
		}
	}
}

func TestProcessorMflopsRange(t *testing.T) {
	p := Processor{MflopsMin: 190, MflopsMax: 229}
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		m := p.Mflops(r)
		if m < 190 || m > 229 {
			t.Fatalf("rating %g outside range", m)
		}
	}
}

func TestSimulateSingleProcessor(t *testing.T) {
	// One dedicated machine: makespan ≈ compute time + per-chunk overheads.
	net := Network{Latency: time.Millisecond, BandwidthMBps: 10,
		MasterService: time.Millisecond, ResultBytes: 1000}
	res := Simulate(Homogeneous(1, 100), net, Params{
		TotalPhotons:    1e6,
		Policy:          sched.FixedChunk{Photons: 1e5},
		PhotonCostFlops: 1e5,
		Seed:            1,
	})
	compute := 1e6 * 1e5 / (100e6) // = 1000 s
	got := res.Makespan.Seconds()
	if got < compute || got > compute*1.01 {
		t.Fatalf("makespan %g s, want slightly above %g s", got, compute)
	}
	if res.Chunks != 10 {
		t.Fatalf("chunks = %d", res.Chunks)
	}
}

func TestSimulateConservesPhotons(t *testing.T) {
	res := Simulate(Homogeneous(7, 100), CampusLAN(), Params{
		TotalPhotons: 1_234_567,
		Policy:       sched.FixedChunk{Photons: 100_000},
		Seed:         3,
	})
	var total int64
	for _, p := range res.PerProc {
		total += p.Photons
	}
	if total != 1_234_567 {
		t.Fatalf("photons conserved? got %d", total)
	}
}

func TestFig2SpeedupShape(t *testing.T) {
	// The headline claim: near-linear speedup, ≥97 % efficiency at 60
	// homogeneous processors.
	p := Params{
		TotalPhotons: 1e9,
		Policy:       sched.FixedChunk{Photons: 1e6},
		Seed:         1,
	}
	pts := SpeedupCurve([]int{1, 2, 4, 8, 16, 30, 60}, 210, CampusLAN(), p)
	for i, pt := range pts {
		if pt.Speedup <= 0 {
			t.Fatalf("non-positive speedup at k=%d", pt.Workers)
		}
		if pt.Efficiency > 1.000001 {
			t.Fatalf("super-linear efficiency %g at k=%d", pt.Efficiency, pt.Workers)
		}
		if i > 0 && pt.Speedup < pts[i-1].Speedup {
			t.Fatalf("speedup not monotone at k=%d", pt.Workers)
		}
		if pt.Efficiency < 0.95 {
			t.Fatalf("efficiency %g at k=%d below the paper's regime",
				pt.Efficiency, pt.Workers)
		}
	}
	last := pts[len(pts)-1]
	if last.Workers != 60 || last.Efficiency < 0.97 {
		t.Fatalf("efficiency at 60 procs = %g, paper reports ≥0.97", last.Efficiency)
	}
}

func TestMasterBottleneckDegradesEfficiency(t *testing.T) {
	// With a pathologically slow master, efficiency at high k must drop —
	// the model has to expose the serial bottleneck.
	slow := Network{Latency: time.Millisecond, BandwidthMBps: 10,
		MasterService: 2 * time.Second, ResultBytes: 64 << 10}
	p := Params{TotalPhotons: 1e8, Policy: sched.FixedChunk{Photons: 1e6}, Seed: 1}
	pts := SpeedupCurve([]int{60}, 210, slow, p)
	if pts[0].Efficiency > 0.9 {
		t.Fatalf("slow master should hurt efficiency, got %g", pts[0].Efficiency)
	}
}

func TestTable2RuntimeMatchesPaper(t *testing.T) {
	// §4: 1 billion photons ≈ 2 h on the non-dedicated Table 2 fleet.
	res := Simulate(Table2Fleet(), CampusLAN(), Params{
		TotalPhotons: 1e9,
		NonDedicated: true,
		Seed:         2,
	})
	h := res.Makespan.Hours()
	if h < 1.0 || h > 3.0 {
		t.Fatalf("Table 2 makespan %.2f h, paper reports ≈2 h", h)
	}
	if u := res.Utilization(); u < 0.7 {
		t.Fatalf("self-scheduling utilisation %g suspiciously low", u)
	}
}

func TestHeterogeneousSelfSchedulingBalances(t *testing.T) {
	// Fast machines must take proportionally more chunks; every machine
	// must contribute.
	fleet := Table2Fleet()
	res := Simulate(fleet, CampusLAN(), Params{TotalPhotons: 3e8, Seed: 4})
	var fastChunks, slowChunks float64
	var nFast, nSlow int
	for _, p := range res.PerProc {
		if p.Chunks == 0 {
			t.Fatalf("machine %s got no work", p.Name)
		}
		if p.Mflops > 150 {
			fastChunks += float64(p.Chunks)
			nFast++
		}
		if p.Mflops < 35 {
			slowChunks += float64(p.Chunks)
			nSlow++
		}
	}
	if nFast == 0 || nSlow == 0 {
		t.Fatal("fleet classes missing")
	}
	if fastChunks/float64(nFast) <= 2*slowChunks/float64(nSlow) {
		t.Fatalf("fast machines (%g avg) not pulling ≥2× slow machines (%g avg)",
			fastChunks/float64(nFast), slowChunks/float64(nSlow))
	}
}

func TestNonDedicatedSlower(t *testing.T) {
	base := Params{TotalPhotons: 1e8, Seed: 5}
	ded := Simulate(Table2Fleet(), CampusLAN(), base)
	nonDed := base
	nonDed.NonDedicated = true
	shared := Simulate(Table2Fleet(), CampusLAN(), nonDed)
	if shared.Makespan <= ded.Makespan {
		t.Fatalf("background load should slow the fleet: %v vs %v",
			shared.Makespan, ded.Makespan)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	p := Params{TotalPhotons: 1e8, NonDedicated: true, Seed: 6}
	a := Simulate(Table2Fleet(), CampusLAN(), p)
	b := Simulate(Table2Fleet(), CampusLAN(), p)
	if a.Makespan != b.Makespan || a.Chunks != b.Chunks {
		t.Fatal("simulation not deterministic for a fixed seed")
	}
}

func TestGuidedBeatsFixedOnTail(t *testing.T) {
	// Guided self-scheduling shrinks chunks near the drain, reducing tail
	// imbalance versus large fixed chunks.
	fixed := Params{TotalPhotons: 1e8, Policy: sched.FixedChunk{Photons: 1e7}, Seed: 7}
	guided := Params{TotalPhotons: 1e8, Policy: sched.Guided{Min: 1e5}, Seed: 7}
	fleet := Homogeneous(16, 210)
	tFixed := Simulate(fleet, CampusLAN(), fixed).Makespan
	tGuided := Simulate(fleet, CampusLAN(), guided).Makespan
	if tGuided >= tFixed {
		t.Fatalf("guided (%v) not faster than coarse fixed chunks (%v)", tGuided, tFixed)
	}
}

func TestStaticResultMatchesMakespanModel(t *testing.T) {
	fleet := Homogeneous(4, 100)
	alloc := sched.EqualSplit(4e6, 4)
	p := Params{TotalPhotons: 4e6, PhotonCostFlops: 1e5, Seed: 8}
	res := StaticResult(fleet, CampusLAN(), p, alloc)
	// Each machine: 1e6 photons × 1e5 flops / 100e6 = 1000 s.
	if math.Abs(res.Makespan.Seconds()-1000) > 1 {
		t.Fatalf("static makespan %g s, want ≈1000 s", res.Makespan.Seconds())
	}
}

func TestStaticGABeatsEqualOnHeterogeneous(t *testing.T) {
	fleet := Table2Fleet()
	r := rng.New(9)
	speeds := make([]float64, len(fleet))
	for i, p := range fleet {
		speeds[i] = p.Mflops(r)
	}
	const total = int64(1e9)
	p := Params{TotalPhotons: total, Seed: 9}

	equal := StaticResult(fleet, CampusLAN(), p, sched.EqualSplit(total, len(fleet)))
	opt := sched.DefaultGAOptions()
	opt.Generations = 120
	gaAlloc, _ := sched.GASplit(total, speeds, opt)
	ga := StaticResult(fleet, CampusLAN(), p, gaAlloc)

	if ga.Makespan >= equal.Makespan {
		t.Fatalf("GA static plan (%v) not better than equal split (%v) on a heterogeneous fleet",
			ga.Makespan, equal.Makespan)
	}
}

func TestEmptyInputs(t *testing.T) {
	if res := Simulate(nil, CampusLAN(), Params{TotalPhotons: 10}); res.Makespan != 0 {
		t.Fatal("empty fleet should do nothing")
	}
	if res := Simulate(Homogeneous(2, 100), CampusLAN(), Params{}); res.Chunks != 0 {
		t.Fatal("zero photons should do nothing")
	}
}

func TestUtilizationBounds(t *testing.T) {
	res := Simulate(Homogeneous(8, 210), CampusLAN(), Params{TotalPhotons: 1e8, Seed: 10})
	u := res.Utilization()
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation %g outside (0,1]", u)
	}
}
