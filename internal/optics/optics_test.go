package optics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFromTransport(t *testing.T) {
	// Table 1 white matter: µs′ = 9.1, g = 0.9 → µs = 91.
	p := FromTransport(9.1, 0.9, 0.014, 1.4)
	if !almostEq(p.MuS, 91, 1e-9) {
		t.Fatalf("µs = %g, want 91", p.MuS)
	}
	if !almostEq(p.MuSPrime(), 9.1, 1e-9) {
		t.Fatalf("µs′ round-trip = %g, want 9.1", p.MuSPrime())
	}
	// g = 1 edge case must not divide by zero.
	p1 := FromTransport(5, 1, 0.1, 1.4)
	if math.IsInf(p1.MuS, 0) || math.IsNaN(p1.MuS) {
		t.Fatalf("g=1 produced µs = %g", p1.MuS)
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := Properties{MuA: 1, MuS: 3, G: 0.5, N: 1.4}
	if p.MuT() != 4 {
		t.Fatalf("µt = %g", p.MuT())
	}
	if p.Albedo() != 0.75 {
		t.Fatalf("albedo = %g", p.Albedo())
	}
	if p.MeanFreePath() != 0.25 {
		t.Fatalf("mfp = %g", p.MeanFreePath())
	}
	vac := Properties{N: 1}
	if vac.Albedo() != 0 {
		t.Fatalf("vacuum albedo = %g", vac.Albedo())
	}
	if !math.IsInf(vac.MeanFreePath(), 1) {
		t.Fatalf("vacuum mfp = %g", vac.MeanFreePath())
	}
}

func TestValidate(t *testing.T) {
	good := Properties{MuA: 0.01, MuS: 1, G: 0.9, N: 1.4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid properties rejected: %v", err)
	}
	bad := []Properties{
		{MuA: -1, MuS: 1, G: 0, N: 1.4},
		{MuA: 1, MuS: -1, G: 0, N: 1.4},
		{MuA: 1, MuS: 1, G: 1.5, N: 1.4},
		{MuA: 1, MuS: 1, G: 0, N: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad properties %d accepted: %+v", i, p)
		}
	}
}

func TestSpecularNormalIncidence(t *testing.T) {
	// Air to tissue n=1.4: ((1-1.4)/(1+1.4))² = (0.4/2.4)² ≈ 0.02778.
	got := Specular(1, 1.4)
	want := math.Pow(0.4/2.4, 2)
	if !almostEq(got, want, 1e-12) {
		t.Fatalf("Specular(1,1.4) = %g, want %g", got, want)
	}
	// Symmetric in its arguments.
	if Specular(1.4, 1) != got {
		t.Fatal("Specular not symmetric")
	}
	if Specular(1.4, 1.4) != 0 {
		t.Fatal("matched indices should have zero specular reflection")
	}
}

func TestFresnelNormalIncidenceMatchesSpecular(t *testing.T) {
	r, cosT := Fresnel(1, 1.4, 1)
	if !almostEq(r, Specular(1, 1.4), 1e-9) {
		t.Fatalf("Fresnel normal incidence R = %g, want %g", r, Specular(1, 1.4))
	}
	if !almostEq(cosT, 1, 1e-12) {
		t.Fatalf("normal incidence cosT = %g", cosT)
	}
}

func TestFresnelMatchedIndices(t *testing.T) {
	r, cosT := Fresnel(1.4, 1.4, 0.3)
	if r != 0 || cosT != 0.3 {
		t.Fatalf("matched indices: R=%g cosT=%g", r, cosT)
	}
}

func TestFresnelTotalInternalReflection(t *testing.T) {
	// From n=1.4 into n=1.0, critical angle ≈ 45.6°; cosI below critical
	// cosine must reflect totally.
	critCos := CriticalCos(1.4, 1.0)
	r, cosT := Fresnel(1.4, 1.0, critCos*0.5)
	if r != 1 || cosT != 0 {
		t.Fatalf("beyond critical angle: R=%g cosT=%g, want 1,0", r, cosT)
	}
}

func TestCriticalCos(t *testing.T) {
	// sin(θc) = n2/n1 → cos(θc) = sqrt(1-(n2/n1)²).
	want := math.Sqrt(1 - (1.0/1.4)*(1.0/1.4))
	if got := CriticalCos(1.4, 1.0); !almostEq(got, want, 1e-12) {
		t.Fatalf("CriticalCos = %g, want %g", got, want)
	}
	if CriticalCos(1.0, 1.4) != 0 {
		t.Fatal("no critical angle entering a denser medium")
	}
}

func TestFresnelGrazingIncidence(t *testing.T) {
	// At grazing incidence reflectance tends to 1 from either side.
	r, _ := Fresnel(1, 1.4, 1e-9)
	if r < 0.99 {
		t.Fatalf("grazing incidence R = %g, want ≈1", r)
	}
}

func TestFresnelBrewsterBehaviour(t *testing.T) {
	// At Brewster's angle the p-polarised reflectance vanishes, so the
	// unpolarised value is half the s-polarised one; sanity-check it is
	// below the normal-incidence + grazing average and positive.
	thetaB := math.Atan(1.4)
	r, _ := Fresnel(1, 1.4, math.Cos(thetaB))
	rs := math.Pow((math.Cos(thetaB)-1.4*math.Cos(math.Asin(math.Sin(thetaB)/1.4)))/
		(math.Cos(thetaB)+1.4*math.Cos(math.Asin(math.Sin(thetaB)/1.4))), 2)
	if !almostEq(r, rs/2, 1e-9) {
		t.Fatalf("Brewster reflectance %g, want rs/2 = %g", r, rs/2)
	}
}

// Property: R ∈ [0,1] and cosT ∈ [0,1] for all physical inputs, and Snell's
// law holds when transmission occurs.
func TestFresnelProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n1 := 1 + 1.5*rr.Float64()
		n2 := 1 + 1.5*rr.Float64()
		cosI := rr.Float64()
		r, cosT := Fresnel(n1, n2, cosI)
		if r < 0 || r > 1 || cosT < 0 || cosT > 1 {
			return false
		}
		if r < 1 {
			sinI := math.Sqrt(1 - cosI*cosI)
			sinT := math.Sqrt(1 - cosT*cosT)
			if !almostEq(n1*sinI, n2*sinT, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: reciprocity — the Fresnel power reflectance is identical from
// either side of the interface at Snell-conjugate angles.
func TestFresnelReciprocity(t *testing.T) {
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n1 := 1 + rr.Float64()
		n2 := 1 + rr.Float64()
		cosI := rr.Float64Open()
		if cosI < 1e-6 {
			// Grazing incidence: R → 1 and the reciprocity residual is
			// dominated by cancellation (observed ~4e-8 at cosI ≈ 3e-8),
			// so the 1e-9 tolerance is unmeaning there.
			return true
		}
		r12, cosT := Fresnel(n1, n2, cosI)
		if r12 >= 1 {
			return true
		}
		r21, cosBack := Fresnel(n2, n1, cosT)
		return almostEq(r12, r21, 1e-9) && almostEq(cosBack, cosI, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRefract(t *testing.T) {
	cosT, err := Refract(1, 1.4, 0.9)
	if err != nil {
		t.Fatalf("Refract: %v", err)
	}
	if cosT <= 0 || cosT > 1 {
		t.Fatalf("cosT = %g", cosT)
	}
	if _, err := Refract(1.4, 1.0, 0.1); err != ErrTotalInternalReflection {
		t.Fatalf("expected total internal reflection, got %v", err)
	}
}
