// Package optics holds the optical property types and boundary physics used
// by the transport kernel: absorption/scattering coefficients, anisotropy,
// Snell refraction, critical angles and unpolarised Fresnel reflectance.
//
// Units: lengths in mm, coefficients in mm⁻¹, matching Table 1 of the paper.
package optics

import (
	"errors"
	"fmt"
	"math"
)

// Properties are the optical properties of a homogeneous medium in the NIR
// range.
type Properties struct {
	// MuA is the absorption coefficient µa in mm⁻¹.
	MuA float64
	// MuS is the scattering coefficient µs in mm⁻¹.
	MuS float64
	// G is the scattering anisotropy factor g, the mean cosine of the
	// scattering angle: g = −1 total back-scatter, 0 isotropic, 1 forward.
	G float64
	// N is the refractive index.
	N float64
}

// FromTransport builds Properties from a transport (reduced) scattering
// coefficient µs′ = µs(1−g), the form the paper's Table 1 reports.
func FromTransport(muSPrime, g, muA, n float64) Properties {
	muS := muSPrime
	if g != 1 {
		muS = muSPrime / (1 - g)
	}
	return Properties{MuA: muA, MuS: muS, G: g, N: n}
}

// MuT returns the total interaction coefficient µt = µa + µs.
func (p Properties) MuT() float64 { return p.MuA + p.MuS }

// MuSPrime returns the transport scattering coefficient µs′ = µs(1−g).
func (p Properties) MuSPrime() float64 { return p.MuS * (1 - p.G) }

// Albedo returns the single-scattering albedo µs/µt. A vacuum-like medium
// with µt = 0 has albedo 0.
func (p Properties) Albedo() float64 {
	mut := p.MuT()
	if mut == 0 {
		return 0
	}
	return p.MuS / mut
}

// MeanFreePath returns 1/µt in mm, or +Inf in a non-interacting medium.
func (p Properties) MeanFreePath() float64 {
	mut := p.MuT()
	if mut == 0 {
		return math.Inf(1)
	}
	return 1 / mut
}

// Validate reports whether the properties are physically meaningful.
func (p Properties) Validate() error {
	switch {
	case p.MuA < 0:
		return fmt.Errorf("optics: negative absorption coefficient %g", p.MuA)
	case p.MuS < 0:
		return fmt.Errorf("optics: negative scattering coefficient %g", p.MuS)
	case p.G < -1 || p.G > 1:
		return fmt.Errorf("optics: anisotropy %g outside [-1,1]", p.G)
	case p.N < 1:
		return fmt.Errorf("optics: refractive index %g below 1", p.N)
	}
	return nil
}

// ErrTotalInternalReflection is returned by Refract when the incidence angle
// exceeds the critical angle.
var ErrTotalInternalReflection = errors.New("optics: total internal reflection")

// Specular returns the normal-incidence reflectance ((n1−n2)/(n1+n2))²,
// the fraction of an entering beam reflected at the tissue surface.
func Specular(n1, n2 float64) float64 {
	r := (n1 - n2) / (n1 + n2)
	return r * r
}

// CriticalCos returns the cosine of the critical angle for light going from
// index n1 into n2. For n1 <= n2 there is no critical angle and 0 is
// returned (every incidence cosine exceeds it).
func CriticalCos(n1, n2 float64) float64 {
	if n1 <= n2 {
		return 0
	}
	s := n2 / n1
	return math.Sqrt(1 - s*s)
}

// Fresnel returns the unpolarised Fresnel reflectance R and the transmitted
// polar cosine cosT for light crossing from index n1 to n2 with incident
// polar cosine cosI = |cosθi| ∈ [0, 1]. Beyond the critical angle it returns
// R = 1 and cosT = 0.
func Fresnel(n1, n2, cosI float64) (reflectance, cosT float64) {
	if cosI < 0 {
		cosI = -cosI
	}
	if cosI > 1 {
		cosI = 1
	}
	if n1 == n2 {
		return 0, cosI
	}
	sinI := math.Sqrt(1 - cosI*cosI)
	sinT := n1 / n2 * sinI
	if sinT >= 1 {
		return 1, 0
	}
	cosT = math.Sqrt(1 - sinT*sinT)

	if cosI > 0.99999 {
		// Normal incidence: the general formula is 0/0.
		return Specular(n1, n2), cosT
	}

	// Average of s- and p-polarised reflectances (Born & Wolf; identical to
	// the MCML formulation via angle sums).
	rs := (n1*cosI - n2*cosT) / (n1*cosI + n2*cosT)
	rp := (n1*cosT - n2*cosI) / (n1*cosT + n2*cosI)
	return (rs*rs + rp*rp) / 2, cosT
}

// Refract returns the transmitted polar cosine for light crossing from n1 to
// n2 with incident cosine cosI, or ErrTotalInternalReflection past the
// critical angle. It is a convenience wrapper over Fresnel for callers that
// use the deterministic ("classical physics") boundary mode.
func Refract(n1, n2, cosI float64) (cosT float64, err error) {
	r, cosT := Fresnel(n1, n2, cosI)
	if r >= 1 {
		return 0, ErrTotalInternalReflection
	}
	return cosT, nil
}
