package diffusion

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/tissue"
)

// diffusive returns a strongly scattering, weakly absorbing test medium in
// the regime where the diffusion approximation is valid.
func diffusive(n float64) optics.Properties {
	return optics.FromTransport(1.0, 0.9, 0.01, n) // µs′=1, µa=0.01 mm⁻¹
}

func TestNewValidation(t *testing.T) {
	if _, err := New(optics.Properties{MuA: 0.1, MuS: 0, N: 1.4}, 1); err == nil {
		t.Fatal("non-scattering medium accepted")
	}
	if _, err := New(optics.FromTransport(0.5, 0.9, 5, 1.4), 1); err == nil {
		t.Fatal("absorption-dominated medium accepted")
	}
	if _, err := New(diffusive(1.4), 1); err != nil {
		t.Fatal(err)
	}
}

func TestDerivedCoefficients(t *testing.T) {
	m, err := New(diffusive(1.4), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.MuTPrime(), 1.01; math.Abs(got-want) > 1e-12 {
		t.Fatalf("µt′ = %g, want %g", got, want)
	}
	if got, want := m.MuEff(), math.Sqrt(3*0.01*1.01); math.Abs(got-want) > 1e-12 {
		t.Fatalf("µeff = %g, want %g", got, want)
	}
	if got, want := m.Z0(), 1/1.01; math.Abs(got-want) > 1e-12 {
		t.Fatalf("z0 = %g, want %g", got, want)
	}
	if m.D() <= 0 || m.PenetrationDepth() <= 0 {
		t.Fatal("non-positive derived lengths")
	}
}

func TestBoundaryParameterMatchedIndex(t *testing.T) {
	m, _ := New(diffusive(1.0), 1)
	if a := m.InternalReflectionParameter(); math.Abs(a-1) > 0.01 {
		t.Fatalf("matched-index A = %g, want ≈1", a)
	}
	mm, _ := New(diffusive(1.4), 1)
	if a := mm.InternalReflectionParameter(); a < 2 || a > 4 {
		t.Fatalf("n=1.4 boundary parameter A = %g, expected ≈2.9", a)
	}
}

func TestReflectanceDecaysExponentially(t *testing.T) {
	m, _ := New(diffusive(1.0), 1)
	// Far from the source R(ρ) ~ exp(-µeff ρ)/ρ²; the log-slope between 20
	// and 30 mm should approach -µeff.
	r20 := m.ReflectanceAt(20)
	r30 := m.ReflectanceAt(30)
	slope := -(math.Log(r30*900) - math.Log(r20*400)) / 10
	if math.Abs(slope-m.MuEff())/m.MuEff() > 0.1 {
		t.Fatalf("asymptotic slope %g, want µeff %g", slope, m.MuEff())
	}
}

func TestTotalReflectanceBounds(t *testing.T) {
	m, _ := New(diffusive(1.0), 1)
	rd := m.TotalReflectance()
	if rd <= 0 || rd >= 1 {
		t.Fatalf("total reflectance %g outside (0,1)", rd)
	}
	// Lower absorption → higher reflectance.
	lowAbs, _ := New(optics.FromTransport(1.0, 0.9, 0.001, 1.0), 1)
	if lowAbs.TotalReflectance() <= rd {
		t.Fatal("reducing absorption should raise total reflectance")
	}
}

func TestDPFReasonableRange(t *testing.T) {
	m, _ := New(diffusive(1.4), 1)
	dpf := m.DPF(20)
	// NIRS DPFs for head-like optics sit in the 3–10 range.
	if dpf < 2 || dpf > 15 {
		t.Fatalf("DPF(20 mm) = %g outside physiological range", dpf)
	}
	// DPF grows slowly with separation in this regime.
	if m.DPF(40) <= dpf*0.8 {
		t.Fatalf("DPF collapsed with distance: %g vs %g", m.DPF(40), dpf)
	}
}

func TestFluencePositiveAndDecaying(t *testing.T) {
	m, _ := New(diffusive(1.0), 1)
	prev := math.Inf(1)
	for _, z := range []float64{2, 4, 8, 16, 32} {
		f := m.Fluence(z)
		if f <= 0 {
			t.Fatalf("fluence at z=%g is %g", z, f)
		}
		if f >= prev {
			t.Fatalf("fluence not decaying at z=%g", z)
		}
		prev = f
	}
}

// The headline validation: Monte Carlo R(ρ) agrees with the diffusion
// dipole model in its regime of validity (ρ beyond a few transport mean
// free paths, scattering-dominated medium).
func TestMonteCarloMatchesDiffusionRadialProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("3×10⁵-photon diffusion comparison; skipped in -short")
	}
	props := diffusive(1.0) // matched boundary keeps the model simplest
	med, err := New(props, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Thick slab ≈ semi-infinite: 40 penetration depths.
	model := tissue.HomogeneousSlab("semi-infinite", props, 400)
	cfg := &mc.Config{
		Model:  model,
		Radial: &mc.HistSpec{Min: 0, Max: 20, Bins: 40},
	}
	tally, err := mc.Run(cfg, 300000, 2024)
	if err != nil {
		t.Fatal(err)
	}
	rho, r := tally.RadialReflectance()

	// Compare over ρ ∈ [3, 12] mm (3–12 transport mfps).
	var worst float64
	var checked int
	for i := range rho {
		if rho[i] < 3 || rho[i] > 12 {
			continue
		}
		want := med.ReflectanceAt(rho[i])
		if want <= 0 || r[i] <= 0 {
			t.Fatalf("non-positive reflectance at ρ=%g: mc=%g diff=%g", rho[i], r[i], want)
		}
		rel := math.Abs(r[i]-want) / want
		if rel > worst {
			worst = rel
		}
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d comparison bins", checked)
	}
	// Diffusion theory is a ~10–20 % approximation here; MC noise adds a
	// few percent at this photon budget.
	if worst > 0.30 {
		t.Fatalf("MC vs diffusion worst relative error %.0f%% (>30%%)", 100*worst)
	}
}

// Total diffuse reflectance: MC vs diffusion theory, matched boundary.
func TestMonteCarloMatchesDiffusionTotalReflectance(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-photon diffusion comparison; skipped in -short")
	}
	props := diffusive(1.0)
	med, _ := New(props, 1)
	model := tissue.HomogeneousSlab("semi-infinite", props, 400)
	tally, err := mc.Run(&mc.Config{Model: model}, 100000, 11)
	if err != nil {
		t.Fatal(err)
	}
	mcRd := tally.DiffuseReflectance()
	diffRd := med.TotalReflectance()
	if rel := math.Abs(mcRd-diffRd) / mcRd; rel > 0.15 {
		t.Fatalf("total Rd: MC %g vs diffusion %g (rel %.0f%%)", mcRd, diffRd, 100*rel)
	}
}

// DPF cross-check: the MC pathlength of photons detected at ρ matches the
// diffusion-theory mean pathlength within the model error.
func TestMonteCarloMatchesDiffusionDPF(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-photon diffusion comparison; skipped in -short")
	}
	props := diffusive(1.0)
	med, _ := New(props, 1)
	model := tissue.HomogeneousSlab("semi-infinite", props, 400)
	cfg := &mc.Config{
		Model:    model,
		Detector: detector.Annulus{RMin: 7.5, RMax: 8.5},
	}
	tally, err := mc.Run(cfg, 200000, 12)
	if err != nil {
		t.Fatal(err)
	}
	if tally.DetectedCount < 200 {
		t.Fatalf("only %d detections", tally.DetectedCount)
	}
	const rho = 8.0
	mcPath := tally.MeanPathlength()
	diffPath := med.MeanPathlength(rho)
	if rel := math.Abs(mcPath-diffPath) / diffPath; rel > 0.30 {
		t.Fatalf("mean pathlength at ρ=%g: MC %g vs diffusion %g (rel %.0f%%)",
			rho, mcPath, diffPath, 100*rel)
	}
}
