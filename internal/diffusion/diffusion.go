// Package diffusion implements the diffusion approximation to radiative
// transport for a semi-infinite homogeneous medium — the analytic baseline
// the paper's Sect. 2 contrasts with Monte Carlo ("Light transport in
// tissue is analysed using radiative transport theory or the diffusion
// approximation"). It provides the extrapolated-boundary dipole model of
// spatially resolved steady-state diffuse reflectance (Farrell, Patterson &
// Wilson 1992), total reflectance, effective attenuation, penetration depth
// and the analytic differential pathlength factor, all of which the test
// suite compares against the Monte Carlo kernel.
package diffusion

import (
	"fmt"
	"math"

	"repro/internal/optics"
)

// Medium holds the diffusion parameters derived from optical properties.
type Medium struct {
	MuA      float64 // absorption, mm⁻¹
	MuSPrime float64 // transport scattering µs(1−g), mm⁻¹
	N        float64 // refractive index of the tissue
	NOut     float64 // refractive index outside (usually air, 1.0)
}

// New derives a diffusion Medium from transport-level properties.
func New(p optics.Properties, nOut float64) (Medium, error) {
	m := Medium{MuA: p.MuA, MuSPrime: p.MuSPrime(), N: p.N, NOut: nOut}
	if m.MuSPrime <= 0 {
		return m, fmt.Errorf("diffusion: non-scattering medium (µs′=%g) has no diffusive regime", m.MuSPrime)
	}
	if m.MuA < 0 {
		return m, fmt.Errorf("diffusion: negative absorption %g", m.MuA)
	}
	if m.MuA > m.MuSPrime {
		return m, fmt.Errorf("diffusion: µa=%g > µs′=%g violates the diffusion regime", m.MuA, m.MuSPrime)
	}
	return m, nil
}

// MuTPrime returns the transport interaction coefficient µt′ = µa + µs′.
func (m Medium) MuTPrime() float64 { return m.MuA + m.MuSPrime }

// D returns the diffusion constant 1/(3µt′) in mm.
func (m Medium) D() float64 { return 1 / (3 * m.MuTPrime()) }

// MuEff returns the effective attenuation coefficient sqrt(3µa·µt′) mm⁻¹.
func (m Medium) MuEff() float64 { return math.Sqrt(3 * m.MuA * m.MuTPrime()) }

// PenetrationDepth returns 1/µeff, the 1/e depth of the diffuse fluence.
func (m Medium) PenetrationDepth() float64 { return 1 / m.MuEff() }

// Z0 returns the depth of the isotropic point source, one transport mean
// free path.
func (m Medium) Z0() float64 { return 1 / m.MuTPrime() }

// InternalReflectionParameter returns the boundary mismatch parameter A of
// the extrapolated-boundary condition, using the empirical polynomial of
// Groenhuis et al. for the effective internal reflection coefficient.
func (m Medium) InternalReflectionParameter() float64 {
	nRel := m.N / m.NOut
	if nRel == 1 {
		return 1
	}
	rd := -1.440/(nRel*nRel) + 0.710/nRel + 0.668 + 0.0636*nRel
	if rd < 0 {
		rd = 0
	}
	if rd > 0.9999 {
		rd = 0.9999
	}
	return (1 + rd) / (1 - rd)
}

// Zb returns the extrapolated boundary offset 2AD.
func (m Medium) Zb() float64 { return 2 * m.InternalReflectionParameter() * m.D() }

// ReflectanceAt returns the spatially resolved steady-state diffuse
// reflectance R(ρ) in mm⁻² per incident photon at radial distance ρ from a
// normally incident pencil beam on a semi-infinite medium — the dipole
// (source + image source) solution with an extrapolated boundary.
func (m Medium) ReflectanceAt(rho float64) float64 {
	z0 := m.Z0()
	zb := m.Zb()
	mu := m.MuEff()

	r1 := math.Hypot(rho, z0)
	r2 := math.Hypot(rho, z0+2*zb)

	term := func(z, r float64) float64 {
		return z * (mu + 1/r) * math.Exp(-mu*r) / (r * r)
	}
	return (term(z0, r1) + term(z0+2*zb, r2)) / (4 * math.Pi)
}

// TotalReflectance integrates R(ρ) over the surface numerically, returning
// the total diffuse reflectance predicted by diffusion theory.
func (m Medium) TotalReflectance() float64 {
	// Adaptive-enough trapezoid on an exponential tail: integrate out to
	// 20 penetration depths with fine steps near the source.
	max := 20 * m.PenetrationDepth()
	const steps = 4000
	h := max / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		rho := (float64(i) + 0.5) * h
		sum += m.ReflectanceAt(rho) * 2 * math.Pi * rho * h
	}
	return sum
}

// MeanPathlength returns the diffusion-theory mean pathlength of photons
// re-emitted at radial distance ρ: L(ρ) = ∂lnR/∂µa evaluated numerically —
// the quantity whose ratio to ρ is the differential pathlength factor (DPF)
// used throughout NIRS.
func (m Medium) MeanPathlength(rho float64) float64 {
	const rel = 1e-4
	dmua := m.MuA * rel
	if dmua == 0 {
		dmua = 1e-8
	}
	up, down := m, m
	up.MuA += dmua
	down.MuA -= dmua
	lnUp := math.Log(up.ReflectanceAt(rho))
	lnDown := math.Log(down.ReflectanceAt(rho))
	return -(lnUp - lnDown) / (2 * dmua)
}

// DPF returns the differential pathlength factor at optode separation ρ.
func (m Medium) DPF(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	return m.MeanPathlength(rho) / rho
}

// Fluence returns the diffusion-theory fluence (per incident photon) at
// depth z on the source axis, dipole solution.
func (m Medium) Fluence(z float64) float64 {
	z0 := m.Z0()
	zb := m.Zb()
	mu := m.MuEff()
	d := m.D()
	r1 := math.Abs(z - z0)
	r2 := z + z0 + 2*zb
	if r1 < 1e-9 {
		r1 = 1e-9
	}
	return (math.Exp(-mu*r1)/r1 - math.Exp(-mu*r2)/r2) / (4 * math.Pi * d)
}
