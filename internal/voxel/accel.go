package voxel

import (
	"math"

	"repro/internal/vec"
)

// gridAccel is the traversal accelerator of a Grid: reciprocal voxel sizes
// (so the DDA seeds with multiplications instead of divisions) and the
// same-label safe-radius map that lets ToBoundary fuse runs of homogeneous
// voxels into a single step. It is derived data, rebuilt on demand after
// any mutation, and never serialised.
type gridAccel struct {
	invDx, invDy, invDz float64
	minEdge             float64 // smallest voxel edge, mm
	eps                 float64 // face-disambiguation nudge, mm

	// rad[idx] is the Chebyshev safe radius of voxel idx: every voxel
	// within Chebyshev distance rad (in voxel units) exists and carries the
	// same label, so from any point inside voxel idx the medium provably
	// cannot change within rad·minEdge mm along any ray. Boundary-adjacent
	// and grid-edge voxels have rad 0.
	rad []uint8
}

// ensureAccel returns the grid's accelerator, building it on first use.
// Validate (which the mc kernel's Normalize invokes before fanning out
// goroutines) triggers the build eagerly; if concurrent tracers do race
// into the lazy path, each builds an identical accelerator and atomic
// publication lets one win — wasted work, never a torn read. Mutating
// builders (the Paint helpers) invalidate the accelerator; mutation
// concurrent with tracing is, as ever, the caller's bug.
func (g *Grid) ensureAccel() *gridAccel {
	if a := g.acc.Load(); a != nil {
		return a
	}
	a := &gridAccel{
		invDx:   1 / g.Dx,
		invDy:   1 / g.Dy,
		invDz:   1 / g.Dz,
		minEdge: g.MinVoxel(),
	}
	a.eps = g.nudge()
	a.rad = buildSafeRadius(g)
	g.acc.Store(a)
	return a
}

// invalidateAccel drops the derived traversal tables; called by every
// mutating builder so a painted grid never traces with a stale radius map.
func (g *Grid) invalidateAccel() { g.acc.Store(nil) }

// buildSafeRadius computes the Chebyshev distance from every voxel to the
// nearest "boundary" voxel — one with a differently labelled 26-neighbour,
// or one on the grid hull. Cells within a distance-d ball of a non-boundary
// voxel are therefore all same-label and in-grid, which is exactly the
// fusion invariant ToBoundary relies on. The transform is the classic
// two-pass chamfer min-plus sweep, exact for the chessboard metric, capped
// at 255 to fit a byte per voxel.
func buildSafeRadius(g *Grid) []uint8 {
	nx, ny, nz := g.Nx, g.Ny, g.Nz
	d := make([]uint8, nx*ny*nz)
	const maxRad = 255

	// Seed: boundary voxels 0, interior 255. Grid-hull voxels are always
	// boundary (the outside counts as a different medium), so the chamfer
	// sweeps below never need out-of-range neighbours.
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			base := (k*ny + j) * nx
			for i := 0; i < nx; i++ {
				idx := base + i
				if i == 0 || i == nx-1 || j == 0 || j == ny-1 || k == 0 || k == nz-1 {
					continue // d[idx] already 0
				}
				l := g.Labels[idx]
				uniform := true
			neighbours:
				for dk := -ny * nx; dk <= ny*nx; dk += ny * nx {
					for dj := -nx; dj <= nx; dj += nx {
						row := idx + dk + dj
						if g.Labels[row-1] != l || g.Labels[row] != l || g.Labels[row+1] != l {
							uniform = false
							break neighbours
						}
					}
				}
				if uniform {
					d[idx] = maxRad
				}
			}
		}
	}

	// Forward chamfer pass: relax against the 13 already-visited
	// neighbours in (k, j, i) scan order; backward pass mirrors it. Hull
	// voxels are 0 and interior voxels have full neighbourhoods, so no
	// bounds checks are needed.
	relax := func(idx int, offs []int) {
		best := int(d[idx])
		if best == 0 {
			return
		}
		for _, o := range offs {
			if v := int(d[idx+o]) + 1; v < best {
				best = v
			}
		}
		d[idx] = uint8(best)
	}
	plane, row := ny*nx, nx
	fwd := []int{
		-plane - row - 1, -plane - row, -plane - row + 1,
		-plane - 1, -plane, -plane + 1,
		-plane + row - 1, -plane + row, -plane + row + 1,
		-row - 1, -row, -row + 1,
		-1,
	}
	bwd := make([]int, len(fwd))
	for i, o := range fwd {
		bwd[i] = -o
	}
	for k := 1; k < nz-1; k++ {
		for j := 1; j < ny-1; j++ {
			base := (k*ny + j) * nx
			for i := 1; i < nx-1; i++ {
				relax(base+i, fwd)
			}
		}
	}
	for k := nz - 2; k >= 1; k-- {
		for j := ny - 2; j >= 1; j-- {
			base := (k*ny + j) * nx
			for i := nx - 2; i >= 1; i-- {
				relax(base+i, bwd)
			}
		}
	}
	return d
}

// reseed recomputes the DDA per-axis face distances after a fused jump to
// parametric distance t along the ray, returning the voxel indices there.
// Distances stay measured from the original pos, so the caller's t keeps
// monotonically increasing across jumps.
func (g *Grid) reseed(a *gridAccel, pos, dir vec.V, t float64,
	invX, invY, invZ float64, tMaxX, tMaxY, tMaxZ *float64) (i, j, k int) {
	tn := t + a.eps
	i = clampIdx(int(math.Floor((pos.X+dir.X*tn-g.X0)*a.invDx)), g.Nx)
	j = clampIdx(int(math.Floor((pos.Y+dir.Y*tn-g.Y0)*a.invDy)), g.Ny)
	k = clampIdx(int(math.Floor((pos.Z+dir.Z*tn)*a.invDz)), g.Nz)
	if dir.X > 0 {
		*tMaxX = (g.X0 + float64(i+1)*g.Dx - pos.X) * invX
	} else if dir.X < 0 {
		*tMaxX = (g.X0 + float64(i)*g.Dx - pos.X) * invX
	}
	if dir.Y > 0 {
		*tMaxY = (g.Y0 + float64(j+1)*g.Dy - pos.Y) * invY
	} else if dir.Y < 0 {
		*tMaxY = (g.Y0 + float64(j)*g.Dy - pos.Y) * invY
	}
	if dir.Z > 0 {
		*tMaxZ = (float64(k+1)*g.Dz - pos.Z) * invZ
	} else if dir.Z < 0 {
		*tMaxZ = (float64(k)*g.Dz - pos.Z) * invZ
	}
	// A nudge resolved fractionally past a face may leave a tMax slightly
	// behind t; clamp so the walk stays monotone (the jump target is
	// provably boundary-free up to t).
	if *tMaxX < t {
		*tMaxX = t
	}
	if *tMaxY < t {
		*tMaxY = t
	}
	if *tMaxZ < t {
		*tMaxZ = t
	}
	return i, j, k
}
