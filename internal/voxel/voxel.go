// Package voxel implements a heterogeneous voxelized medium for the Monte
// Carlo kernel: a dense 3-D label grid mapping each voxel to a shared table
// of optical properties, with Amanatides–Woo DDA ray traversal to the next
// *medium change* (faces between same-label voxels are skipped entirely, so
// a voxelized homogeneous region is traversed in a single step and no
// spurious Fresnel events occur). It generalises the layered slab model the
// way MCX generalises MCML: tumours, curved boundaries and arbitrary
// inclusions become expressible while the kernel's hop–drop–spin loop stays
// untouched behind the geom.Geometry interface.
//
// The grid is plain data (gob-serialisable), so voxel jobs travel over the
// wire protocol and fan out across the distributed system exactly like
// layered ones.
package voxel

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/optics"
	"repro/internal/vec"
)

// MaxMedia is the number of distinct media a grid can reference (labels are
// bytes to keep million-voxel grids cheap to store and ship).
const MaxMedia = 256

// Grid is a voxelized heterogeneous medium over the box
// [X0, X0+Nx·Dx) × [Y0, Y0+Ny·Dy) × [0, Nz·Dz), z pointing into the
// tissue. Labels[(k·Ny+j)·Nx+i] indexes Media, the table of distinct
// optical properties. The struct is plain data and implements
// geom.Geometry; all methods are read-only after construction, so one grid
// may be shared by any number of tracing goroutines.
type Grid struct {
	Name       string
	Nx, Ny, Nz int
	Dx, Dy, Dz float64 // voxel edge lengths, mm
	X0, Y0     float64 // world coordinates of the grid corner (z starts at 0)

	// NAbove is the ambient refractive index above the z = 0 surface;
	// NBelow terminates the bottom face (set it to the deepest medium's
	// index to model a truncated semi-infinite stack without a spurious
	// Fresnel interface). The side walls are always index-matched to the
	// local medium: lateral escapes leave without reflection and are
	// scored as Tally.LateralWeight.
	NAbove, NBelow float64

	Labels     []uint8
	Media      []optics.Properties
	MediaNames []string

	// acc is the derived traversal accelerator (reciprocal voxel sizes and
	// the same-label safe-radius map). It is unexported so gob skips it,
	// built by Validate (or lazily on first trace) and invalidated by the
	// mutating builders. Publication is atomic, so grids shared across
	// tracing goroutines stay race-free even when several kernels trigger
	// the lazy build concurrently (the builds are idempotent; one wins).
	acc atomic.Pointer[gridAccel]
}

// New returns a grid of nx×ny×nz voxels with edges dx×dy×dz mm, laterally
// centred on the source axis (x = y = 0), filled with a single base medium
// as label 0. Ambient indices default to 1 (air) above and the base
// medium's index below.
func New(name string, nx, ny, nz int, dx, dy, dz float64, baseName string, base optics.Properties) *Grid {
	return &Grid{
		Name: name,
		Nx:   nx, Ny: ny, Nz: nz,
		Dx: dx, Dy: dy, Dz: dz,
		X0:         -float64(nx) * dx / 2,
		Y0:         -float64(ny) * dy / 2,
		NAbove:     1,
		NBelow:     base.N,
		Labels:     make([]uint8, nx*ny*nz),
		Media:      []optics.Properties{base},
		MediaNames: []string{baseName},
	}
}

// Index returns the flat index of voxel (i, j, k).
func (g *Grid) Index(i, j, k int) int { return (k*g.Ny+j)*g.Nx + i }

// Center returns the world coordinates of voxel (i, j, k)'s centre.
func (g *Grid) Center(i, j, k int) (x, y, z float64) {
	return g.X0 + (float64(i)+0.5)*g.Dx,
		g.Y0 + (float64(j)+0.5)*g.Dy,
		(float64(k) + 0.5) * g.Dz
}

// Width, Height and Depth return the physical extent of the grid in mm.
func (g *Grid) Width() float64  { return float64(g.Nx) * g.Dx }
func (g *Grid) Height() float64 { return float64(g.Ny) * g.Dy }
func (g *Grid) Depth() float64  { return float64(g.Nz) * g.Dz }

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// voxelOf returns the voxel indices containing the world point, clamped
// into the grid.
func (g *Grid) voxelOf(x, y, z float64) (i, j, k int) {
	i = clampIdx(int(math.Floor((x-g.X0)/g.Dx)), g.Nx)
	j = clampIdx(int(math.Floor((y-g.Y0)/g.Dy)), g.Ny)
	k = clampIdx(int(math.Floor(z/g.Dz)), g.Nz)
	return
}

// LabelAt returns the label of the voxel containing the world point,
// clamped into the grid.
func (g *Grid) LabelAt(x, y, z float64) int {
	i, j, k := g.voxelOf(x, y, z)
	return int(g.Labels[g.Index(i, j, k)])
}

// --- geom.Geometry -------------------------------------------------------

// NumRegions returns the number of media.
func (g *Grid) NumRegions() int { return len(g.Media) }

// RegionName returns the name of medium r.
func (g *Grid) RegionName(r int) string {
	if r < 0 || r >= len(g.MediaNames) {
		return ""
	}
	return g.MediaNames[r]
}

// AmbientIndex returns the refractive index above the entry surface.
func (g *Grid) AmbientIndex() float64 { return g.NAbove }

// RegionAt returns the label at pos, or −1 for points outside the grid's
// box (the entry surface z = 0 itself is inside) — launches landing beyond
// the footprint are scored as lateral loss rather than silently traced down
// the edge column.
func (g *Grid) RegionAt(pos vec.V) int {
	if !g.InsideGrid(pos.X, pos.Y, pos.Z) {
		return -1
	}
	return g.LabelAt(pos.X, pos.Y, pos.Z)
}

// Props returns the optical properties of medium r.
func (g *Grid) Props(r int) optics.Properties { return g.Media[r] }

// nudge is the face-disambiguation offset: a packet resolved exactly onto a
// voxel face is attributed to the voxel it is travelling into.
func (g *Grid) nudge() float64 { return 1e-6 * g.MinVoxel() }

// ToBoundary walks the DDA from pos along unit direction dir through voxels
// of label r, returning the distance to the first face beyond which the
// label changes (or the grid ends) and the Hit describing that boundary.
// Same-label faces are not boundaries: a chord through a homogeneous region
// costs one call regardless of how many voxels it crosses. The walk stops
// early once every remaining face lies beyond maxDist (the caller's
// sampled free path), returning that face distance with a zero Hit — in
// optically thick media this makes the per-event cost O(1) instead of
// O(grid diameter).
//
// Label-homogeneous stretches are fused via the safe-radius map (see
// gridAccel): a scattering event whose sampled step fits inside the
// current voxel's same-label Chebyshev ball returns without seeding the
// DDA at all, and the walk jumps whole balls at a time instead of crossing
// their interior faces one by one.
func (g *Grid) ToBoundary(pos, dir vec.V, r int, maxDist float64) (float64, geom.Hit) {
	a := g.acc.Load()
	if a == nil {
		a = g.ensureAccel()
	}
	eps := a.eps

	i := clampIdx(int(math.Floor((pos.X+dir.X*eps-g.X0)*a.invDx)), g.Nx)
	j := clampIdx(int(math.Floor((pos.Y+dir.Y*eps-g.Y0)*a.invDy)), g.Ny)
	k := clampIdx(int(math.Floor((pos.Z+dir.Z*eps)*a.invDz)), g.Nz)
	idx := (k*g.Ny+j)*g.Nx + i

	// Fusion fast path: if the whole sampled step fits inside the current
	// voxel's same-label ball, no face test is needed at all — the common
	// case for scattering-dominated media, where the free path is a small
	// fraction of a voxel edge.
	if rad := a.rad[idx]; rad > 0 && int(g.Labels[idx]) == r {
		if safe := float64(rad) * a.minEdge; safe > maxDist {
			return safe, geom.Hit{}
		}
	}

	// Per-axis DDA state: the parametric distance to the next face
	// (tMax) and the distance between successive faces (tDelta).
	const inf = math.MaxFloat64
	stepX, tMaxX, tDeltaX, invX := 0, inf, inf, 0.0
	if dir.X != 0 {
		invX = 1 / dir.X
		if dir.X > 0 {
			stepX = 1
			tMaxX = (g.X0 + float64(i+1)*g.Dx - pos.X) * invX
			tDeltaX = g.Dx * invX
		} else {
			stepX = -1
			tMaxX = (g.X0 + float64(i)*g.Dx - pos.X) * invX
			tDeltaX = -g.Dx * invX
		}
	}
	stepY, tMaxY, tDeltaY, invY := 0, inf, inf, 0.0
	if dir.Y != 0 {
		invY = 1 / dir.Y
		if dir.Y > 0 {
			stepY = 1
			tMaxY = (g.Y0 + float64(j+1)*g.Dy - pos.Y) * invY
			tDeltaY = g.Dy * invY
		} else {
			stepY = -1
			tMaxY = (g.Y0 + float64(j)*g.Dy - pos.Y) * invY
			tDeltaY = -g.Dy * invY
		}
	}
	stepZ, tMaxZ, tDeltaZ, invZ := 0, inf, inf, 0.0
	if dir.Z != 0 {
		invZ = 1 / dir.Z
		if dir.Z > 0 {
			stepZ = 1
			tMaxZ = (float64(k+1)*g.Dz - pos.Z) * invZ
			tDeltaZ = g.Dz * invZ
		} else {
			stepZ = -1
			tMaxZ = (float64(k)*g.Dz - pos.Z) * invZ
			tDeltaZ = -g.Dz * invZ
		}
	}
	// A packet resolved fractionally past a face yields a slightly negative
	// tMax; clamp so distances stay physical.
	if tMaxX < 0 {
		tMaxX = 0
	}
	if tMaxY < 0 {
		tMaxY = 0
	}
	if tMaxZ < 0 {
		tMaxZ = 0
	}

	if stepX == 0 && stepY == 0 && stepZ == 0 {
		return math.Inf(1), geom.Hit{}
	}

	for {
		// Advance across the nearest face.
		var t float64
		var axis int
		switch {
		case tMaxX <= tMaxY && tMaxX <= tMaxZ:
			t, axis = tMaxX, 0
			i += stepX
			tMaxX += tDeltaX
		case tMaxY <= tMaxZ:
			t, axis = tMaxY, 1
			j += stepY
			tMaxY += tDeltaY
		default:
			t, axis = tMaxZ, 2
			k += stepZ
			tMaxZ += tDeltaZ
		}

		// The caller scatters before this face: no boundary within reach.
		if t > maxDist {
			return t, geom.Hit{}
		}

		// Out of the grid: classify the exit face. The side walls are an
		// artificial truncation, not a physical surface, so they are
		// index-matched to the local medium — otherwise total internal
		// reflection at a tissue/air side wall would recycle most of the
		// lateral flux back into the grid and hide the truncation loss
		// from LateralFraction. The top face is the real entry surface
		// (NAbove) and the bottom face is terminated by NBelow.
		if i < 0 || i >= g.Nx || j < 0 || j >= g.Ny || k < 0 || k >= g.Nz {
			var normal vec.V
			switch axis {
			case 0:
				normal = vec.V{X: -float64(stepX)}
			case 1:
				normal = vec.V{Y: -float64(stepY)}
			default:
				normal = vec.V{Z: -float64(stepZ)}
			}
			hit := geom.Hit{Normal: normal, Next: r, N2: g.Media[r].N, Exit: geom.ExitLateral}
			if axis == 2 {
				if stepZ < 0 {
					hit.Exit = geom.ExitTop
					hit.N2 = g.NAbove
				} else {
					hit.Exit = geom.ExitBottom
					hit.N2 = g.NBelow
				}
			}
			return t, hit
		}

		// A face into a different medium is the boundary; same-label faces
		// are stepped over.
		idx = (k*g.Ny+j)*g.Nx + i
		if label := int(g.Labels[idx]); label != r {
			var normal vec.V
			switch axis {
			case 0:
				normal = vec.V{X: -float64(stepX)}
			case 1:
				normal = vec.V{Y: -float64(stepY)}
			default:
				normal = vec.V{Z: -float64(stepZ)}
			}
			return t, geom.Hit{Normal: normal, Next: label, N2: g.Media[label].N}
		}

		// Fuse: deep inside a homogeneous run, leap the whole same-label
		// ball in one go instead of crossing its interior faces.
		if rad := a.rad[idx]; rad >= 2 {
			nt := t + float64(rad)*a.minEdge
			if nt > maxDist {
				return nt, geom.Hit{}
			}
			i, j, k = g.reseed(a, pos, dir, nt, invX, invY, invZ, &tMaxX, &tMaxY, &tMaxZ)
		}
	}
}

// Validate reports the first structural problem with the grid.
func (g *Grid) Validate() error {
	if g.Nx <= 0 || g.Ny <= 0 || g.Nz <= 0 {
		return fmt.Errorf("voxel: grid %q has non-positive dimensions %dx%dx%d", g.Name, g.Nx, g.Ny, g.Nz)
	}
	if g.Dx <= 0 || g.Dy <= 0 || g.Dz <= 0 {
		return fmt.Errorf("voxel: grid %q has non-positive voxel size %gx%gx%g", g.Name, g.Dx, g.Dy, g.Dz)
	}
	if len(g.Labels) != g.Nx*g.Ny*g.Nz {
		return fmt.Errorf("voxel: grid %q has %d labels for %d voxels", g.Name, len(g.Labels), g.Nx*g.Ny*g.Nz)
	}
	if len(g.Media) == 0 {
		return fmt.Errorf("voxel: grid %q has no media", g.Name)
	}
	if len(g.Media) > MaxMedia {
		return fmt.Errorf("voxel: grid %q has %d media, max %d", g.Name, len(g.Media), MaxMedia)
	}
	if len(g.MediaNames) != len(g.Media) {
		return fmt.Errorf("voxel: grid %q has %d media names for %d media", g.Name, len(g.MediaNames), len(g.Media))
	}
	if g.NAbove < 1 || g.NBelow < 1 {
		return fmt.Errorf("voxel: grid %q ambient refractive index below 1", g.Name)
	}
	for m, p := range g.Media {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("voxel: grid %q medium %d (%s): %w", g.Name, m, g.RegionName(m), err)
		}
	}
	nm := len(g.Media)
	for idx, l := range g.Labels {
		if int(l) >= nm {
			return fmt.Errorf("voxel: grid %q voxel %d has label %d, only %d media", g.Name, idx, l, nm)
		}
	}
	// A valid grid is about to be traced: build the traversal accelerator
	// now, while the caller (mc.Config.Normalize) is still single-threaded.
	g.ensureAccel()
	return nil
}
