package voxel

import (
	"fmt"
	"math"

	"repro/internal/optics"
	"repro/internal/tissue"
	"repro/internal/vec"
)

// FromModel voxelizes a layered slab model onto an nx×ny×nz grid of
// dx×dy×dz mm voxels, laterally centred on the source axis. Each voxel
// takes the label of the layer containing its centre depth, so when layer
// boundaries align with voxel planes the voxelization is geometrically
// exact inside the grid. A stack deeper than the grid (including a
// semi-infinite final layer) is truncated at the bottom face; NBelow is set
// to the truncated layer's own index so the cut introduces no spurious
// Fresnel interface — deep photons leave as transmittance instead of
// wandering forever.
func FromModel(m *tissue.Model, nx, ny, nz int, dx, dy, dz float64) (*Grid, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nx <= 0 || ny <= 0 || nz <= 0 || dx <= 0 || dy <= 0 || dz <= 0 {
		return nil, fmt.Errorf("voxel: bad voxelization %dx%dx%d @ %gx%gx%g", nx, ny, nz, dx, dy, dz)
	}
	if m.NumLayers() > MaxMedia {
		return nil, fmt.Errorf("voxel: model %q has %d layers, max %d media", m.Name, m.NumLayers(), MaxMedia)
	}

	g := &Grid{
		Name: m.Name + "-voxelized",
		Nx:   nx, Ny: ny, Nz: nz,
		Dx: dx, Dy: dy, Dz: dz,
		X0:     -float64(nx) * dx / 2,
		Y0:     -float64(ny) * dy / 2,
		NAbove: m.NAbove,
		Labels: make([]uint8, nx*ny*nz),
	}
	for _, l := range m.Layers {
		g.Media = append(g.Media, l.Props)
		g.MediaNames = append(g.MediaNames, l.Name)
	}

	// One label per depth row, copied across the horizontal extent.
	last := m.NumLayers() - 1
	for k := 0; k < nz; k++ {
		li := m.LayerAt((float64(k) + 0.5) * dz)
		if li > last {
			li = last // grid deeper than a finite stack: pad with the deepest layer
		}
		row := uint8(li)
		base := k * ny * nx
		for idx := base; idx < base+ny*nx; idx++ {
			g.Labels[idx] = row
		}
	}

	// Terminate the bottom face: the index of whatever sits just below the
	// grid (the truncated layer itself while still inside the stack, or the
	// model's backing medium once past a finite stack).
	depth := float64(nz) * dz
	if li := m.LayerAt(depth * (1 + 1e-12)); li < m.NumLayers() {
		g.NBelow = m.Layers[li].Props.N
	} else {
		g.NBelow = m.NBelow
	}
	return g, nil
}

// AddMedium appends a medium to the grid's table and returns its label for
// use with the Paint helpers.
func (g *Grid) AddMedium(name string, p optics.Properties) (int, error) {
	if len(g.Media) >= MaxMedia {
		return 0, fmt.Errorf("voxel: grid %q already has %d media", g.Name, MaxMedia)
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	g.Media = append(g.Media, p)
	g.MediaNames = append(g.MediaNames, name)
	return len(g.Media) - 1, nil
}

// Paint relabels every voxel whose centre satisfies inside(x, y, z),
// returning the number of voxels painted. It is the composable primitive
// under the shape helpers; inclusions layer in call order (later paints
// overwrite earlier ones).
func (g *Grid) Paint(label int, inside func(x, y, z float64) bool) int {
	g.invalidateAccel()
	painted := 0
	l := uint8(label)
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				x, y, z := g.Center(i, j, k)
				if inside(x, y, z) {
					g.Labels[g.Index(i, j, k)] = l
					painted++
				}
			}
		}
	}
	return painted
}

// PaintSphere paints a spherical inclusion centred at (cx, cy, cz) with the
// given radius (mm) — the canonical tumour/absorber perturbation.
func (g *Grid) PaintSphere(label int, cx, cy, cz, radius float64) int {
	r2 := radius * radius
	return g.Paint(label, func(x, y, z float64) bool {
		dx, dy, dz := x-cx, y-cy, z-cz
		return dx*dx+dy*dy+dz*dz <= r2
	})
}

// PaintBox paints an axis-aligned box spanning [x0,x1]×[y0,y1]×[z0,z1] mm.
func (g *Grid) PaintBox(label int, x0, y0, z0, x1, y1, z1 float64) int {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	if z1 < z0 {
		z0, z1 = z1, z0
	}
	return g.Paint(label, func(x, y, z float64) bool {
		return x >= x0 && x <= x1 && y >= y0 && y <= y1 && z >= z0 && z <= z1
	})
}

// PaintSlab paints a tilted layer: every voxel whose centre lies within
// [0, thickness) of the plane through origin with the given normal,
// measured along the normal. With a non-vertical normal this perturbs flat
// layer boundaries into tilted ones — curved-skull-like geometry the
// layered model cannot express.
func (g *Grid) PaintSlab(label int, origin, normal vec.V, thickness float64) int {
	n := normal.Normalize()
	if n.Norm() == 0 {
		return 0
	}
	return g.Paint(label, func(x, y, z float64) bool {
		d := vec.V{X: x, Y: y, Z: z}.Sub(origin).Dot(n)
		return d >= 0 && d < thickness
	})
}

// VolumeFraction returns the fraction of grid voxels carrying the label.
func (g *Grid) VolumeFraction(label int) float64 {
	if len(g.Labels) == 0 {
		return 0
	}
	l := uint8(label)
	n := 0
	for _, v := range g.Labels {
		if v == l {
			n++
		}
	}
	return float64(n) / float64(len(g.Labels))
}

// Clone returns a deep copy, so a base grid can fan out into perturbed
// variants (probe-position sweeps, inclusion ablations) without rebuilding.
// The derived traversal accelerator is not copied (it holds an atomic
// pointer, so the struct is rebuilt field-wise); the clone rebuilds its
// own when first validated or traced.
func (g *Grid) Clone() *Grid {
	return &Grid{
		Name: g.Name,
		Nx:   g.Nx, Ny: g.Ny, Nz: g.Nz,
		Dx: g.Dx, Dy: g.Dy, Dz: g.Dz,
		X0: g.X0, Y0: g.Y0,
		NAbove:     g.NAbove,
		NBelow:     g.NBelow,
		Labels:     append([]uint8(nil), g.Labels...),
		Media:      append([]optics.Properties(nil), g.Media...),
		MediaNames: append([]string(nil), g.MediaNames...),
	}
}

// Bounds sanity helper: InsideGrid reports whether the world point is
// within the grid's box.
func (g *Grid) InsideGrid(x, y, z float64) bool {
	return x >= g.X0 && x < g.X0+g.Width() &&
		y >= g.Y0 && y < g.Y0+g.Height() &&
		z >= 0 && z < g.Depth()
}

// MinVoxel returns the smallest voxel edge, a convenient DDA scale for
// benchmarks and step-size heuristics.
func (g *Grid) MinVoxel() float64 {
	return math.Min(g.Dx, math.Min(g.Dy, g.Dz))
}
