package voxel

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/optics"
	"repro/internal/tissue"
	"repro/internal/vec"
)

func testProps() optics.Properties {
	return optics.Properties{MuA: 0.02, MuS: 10, G: 0.9, N: 1.4}
}

func TestNewGridValid(t *testing.T) {
	g := New("box", 10, 12, 8, 1, 1, 0.5, "base", testProps())
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumRegions() != 1 {
		t.Fatalf("NumRegions = %d", g.NumRegions())
	}
	if g.Width() != 10 || g.Height() != 12 || g.Depth() != 4 {
		t.Fatalf("extent = %g x %g x %g", g.Width(), g.Height(), g.Depth())
	}
	// Laterally centred on the source axis.
	if g.X0 != -5 || g.Y0 != -6 {
		t.Fatalf("corner = (%g, %g)", g.X0, g.Y0)
	}
	if g.RegionName(0) != "base" {
		t.Fatalf("RegionName(0) = %q", g.RegionName(0))
	}
}

func TestValidateCatchesBadGrids(t *testing.T) {
	base := testProps()
	bad := []*Grid{
		{Name: "dims", Nx: 0, Ny: 1, Nz: 1, Dx: 1, Dy: 1, Dz: 1},
		func() *Grid {
			g := New("labels", 2, 2, 2, 1, 1, 1, "b", base)
			g.Labels = g.Labels[:3]
			return g
		}(),
		func() *Grid {
			g := New("label-range", 2, 2, 2, 1, 1, 1, "b", base)
			g.Labels[0] = 7
			return g
		}(),
		func() *Grid {
			g := New("names", 2, 2, 2, 1, 1, 1, "b", base)
			g.MediaNames = nil
			return g
		}(),
		func() *Grid {
			g := New("ambient", 2, 2, 2, 1, 1, 1, "b", base)
			g.NAbove = 0.5
			return g
		}(),
		func() *Grid {
			g := New("media", 2, 2, 2, 1, 1, 1, "b", base)
			g.Media[0].MuA = -1
			return g
		}(),
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("grid %q: Validate accepted invalid grid", g.Name)
		}
	}
}

func TestFromModelLabelsMatchLayers(t *testing.T) {
	m := tissue.AdultHead()
	g, err := FromModel(m, 40, 40, 60, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumRegions() != m.NumLayers() {
		t.Fatalf("NumRegions = %d, want %d", g.NumRegions(), m.NumLayers())
	}
	// Every voxel centre's label matches the model's layer at that depth.
	for k := 0; k < g.Nz; k++ {
		_, _, z := g.Center(0, 0, k)
		want := m.LayerAt(z)
		if got := g.LabelAt(3.2, -7.1, z); got != want {
			t.Fatalf("label at z=%g is %d, want layer %d", z, got, want)
		}
	}
	// Truncating the semi-infinite white matter must not introduce a
	// bottom Fresnel interface.
	if g.NBelow != tissue.WhiteMatterProps.N {
		t.Fatalf("NBelow = %g, want white-matter index", g.NBelow)
	}
	if g.NAbove != m.NAbove {
		t.Fatalf("NAbove = %g, want %g", g.NAbove, m.NAbove)
	}
}

func TestFromModelFiniteStackBottom(t *testing.T) {
	m := tissue.HomogeneousSlab("slab", testProps(), 5)
	// Grid deeper than the 5 mm stack: bottom sits in the ambient below.
	g, err := FromModel(m, 10, 10, 20, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NBelow != m.NBelow {
		t.Fatalf("NBelow = %g, want model ambient %g", g.NBelow, m.NBelow)
	}
	// Depth rows past the stack pad with the deepest layer.
	if got := g.LabelAt(0, 0, 9.9); got != 0 {
		t.Fatalf("pad label = %d", got)
	}
}

func TestFromModelRejectsBadInput(t *testing.T) {
	m := tissue.AdultHead()
	if _, err := FromModel(m, 0, 10, 10, 1, 1, 1); err == nil {
		t.Error("accepted zero dimension")
	}
	if _, err := FromModel(m, 10, 10, 10, -1, 1, 1); err == nil {
		t.Error("accepted negative voxel size")
	}
	if _, err := FromModel(&tissue.Model{}, 10, 10, 10, 1, 1, 1); err == nil {
		t.Error("accepted invalid model")
	}
}

func TestPainters(t *testing.T) {
	g := New("paint", 20, 20, 20, 1, 1, 1, "base", testProps())
	inc, err := g.AddMedium("inclusion", optics.Properties{MuA: 1, MuS: 5, G: 0.8, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if inc != 1 {
		t.Fatalf("label = %d, want 1", inc)
	}

	n := g.PaintSphere(inc, 0, 0, 10, 4)
	if n == 0 {
		t.Fatal("sphere painted no voxels")
	}
	// Sphere volume ≈ (4/3)π·4³ ≈ 268 voxels of 1 mm³.
	if n < 200 || n > 340 {
		t.Fatalf("sphere painted %d voxels, want ≈268", n)
	}
	if got := g.LabelAt(0, 0, 10); got != inc {
		t.Fatalf("sphere centre label = %d", got)
	}
	if got := g.LabelAt(9, 9, 1); got != 0 {
		t.Fatalf("far corner label = %d", got)
	}
	if vf := g.VolumeFraction(inc); math.Abs(vf-float64(n)/8000) > 1e-12 {
		t.Fatalf("VolumeFraction = %g", vf)
	}

	g2 := New("box", 20, 20, 20, 1, 1, 1, "base", testProps())
	b, _ := g2.AddMedium("box", testProps())
	nb := g2.PaintBox(b, -2, -2, 2, 2, 2, 6)
	if nb != 4*4*4 {
		t.Fatalf("box painted %d voxels, want 64", nb)
	}

	// A tilted slab through the grid centre paints roughly
	// thickness/depth of the volume and touches different depths at the
	// two lateral extremes.
	g3 := New("slab", 20, 20, 20, 1, 1, 1, "base", testProps())
	sl, _ := g3.AddMedium("tilted", testProps())
	ns := g3.PaintSlab(sl, vec.V{Z: 10}, vec.V{X: 0.2, Z: 1}, 2)
	if ns == 0 {
		t.Fatal("slab painted no voxels")
	}
	left := -1
	right := -1
	for k := 0; k < g3.Nz; k++ {
		_, _, z := g3.Center(0, 0, k)
		if g3.LabelAt(g3.X0+0.5, 0, z) == sl && left < 0 {
			left = k
		}
		if g3.LabelAt(-g3.X0-0.5, 0, z) == sl && right < 0 {
			right = k
		}
	}
	if left < 0 || right < 0 || left == right {
		t.Fatalf("tilted slab not tilted: first labelled depth rows %d and %d", left, right)
	}

	if err := g3.Validate(); err != nil {
		t.Fatalf("painted grid invalid: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New("orig", 4, 4, 4, 1, 1, 1, "base", testProps())
	inc, _ := g.AddMedium("inc", testProps())
	cp := g.Clone()
	cp.PaintSphere(inc, 0, 0, 2, 1.2)
	if g.VolumeFraction(inc) != 0 {
		t.Fatal("painting the clone mutated the original")
	}
}

func TestToBoundaryHomogeneousCrossesWholeGrid(t *testing.T) {
	g := New("homog", 10, 10, 10, 1, 1, 1, "base", testProps())
	// Straight down from the surface: one DDA call spans all ten same-label
	// voxels and exits the bottom.
	s, hit := g.ToBoundary(vec.V{}, vec.V{Z: 1}, 0, math.Inf(1))
	if math.Abs(s-10) > 1e-9 {
		t.Fatalf("distance = %g, want 10", s)
	}
	if hit.Exit != geom.ExitBottom {
		t.Fatalf("exit = %v, want bottom", hit.Exit)
	}
	if hit.N2 != g.NBelow {
		t.Fatalf("N2 = %g", hit.N2)
	}

	// Upwards from inside: exit through the top.
	s, hit = g.ToBoundary(vec.V{Z: 3.5}, vec.V{Z: -1}, 0, math.Inf(1))
	if math.Abs(s-3.5) > 1e-9 {
		t.Fatalf("distance = %g, want 3.5", s)
	}
	if hit.Exit != geom.ExitTop {
		t.Fatalf("exit = %v, want top", hit.Exit)
	}
	if hit.N2 != g.NAbove {
		t.Fatalf("top N2 = %g", hit.N2)
	}

	// Sideways: lateral escape at the +x face.
	s, hit = g.ToBoundary(vec.V{X: 1.25, Z: 5}, vec.V{X: 1}, 0, math.Inf(1))
	if math.Abs(s-3.75) > 1e-9 {
		t.Fatalf("lateral distance = %g, want 3.75", s)
	}
	if hit.Exit != geom.ExitLateral {
		t.Fatalf("exit = %v, want lateral", hit.Exit)
	}
	// Side walls are index-matched to the local medium (no spurious TIR
	// recycling lateral flux back into the grid).
	if hit.N2 != testProps().N {
		t.Fatalf("lateral N2 = %g, want local medium index %g", hit.N2, testProps().N)
	}
}

func TestToBoundaryStopsAtLabelChange(t *testing.T) {
	g := New("two", 10, 10, 10, 1, 1, 1, "top", testProps())
	bottom, _ := g.AddMedium("bottom", optics.Properties{MuA: 0.1, MuS: 1, G: 0, N: 1.6})
	g.PaintBox(bottom, g.X0, g.Y0, 4, -g.X0, -g.Y0, 10)

	s, hit := g.ToBoundary(vec.V{Z: 0.5}, vec.V{Z: 1}, 0, math.Inf(1))
	if math.Abs(s-3.5) > 1e-9 {
		t.Fatalf("distance = %g, want 3.5", s)
	}
	if hit.Exit != geom.ExitNone || hit.Next != bottom {
		t.Fatalf("hit = %+v, want crossing into %d", hit, bottom)
	}
	if hit.N2 != 1.6 {
		t.Fatalf("N2 = %g, want 1.6", hit.N2)
	}
	if hit.Normal.Dot(vec.V{Z: 1}) >= 0 {
		t.Fatalf("normal %v not against travel", hit.Normal)
	}

	// From exactly on the interface heading back up: the nudge attributes
	// the packet to the upper medium and the next change is the top face.
	s, hit = g.ToBoundary(vec.V{Z: 4}, vec.V{Z: -1}, 0, math.Inf(1))
	if math.Abs(s-4) > 1e-9 || hit.Exit != geom.ExitTop {
		t.Fatalf("up from interface: s=%g hit=%+v", s, hit)
	}
}

func TestToBoundaryDiagonalDistance(t *testing.T) {
	g := New("diag", 10, 10, 10, 1, 1, 1, "base", testProps())
	inc, _ := g.AddMedium("inc", testProps())
	// Single labelled voxel at (i,j,k) = (7,5,5): x ∈ [2,3), z ∈ [0.. wait
	// world x of voxel 7 is X0+7 = 2 → [2,3); z of k=5 is [5,6).
	g.Labels[g.Index(7, 5, 5)] = uint8(inc)

	// Ray from (0, 0.1, 5.5) along +x hits the voxel's -x face at x=2.
	s, hit := g.ToBoundary(vec.V{X: 0, Y: 0.1, Z: 5.5}, vec.V{X: 1}, 0, math.Inf(1))
	if math.Abs(s-2) > 1e-9 {
		t.Fatalf("distance = %g, want 2", s)
	}
	if hit.Next != inc || hit.Exit != geom.ExitNone {
		t.Fatalf("hit = %+v", hit)
	}

	// A 45° ray in the x–z plane: distances scale by √2. From
	// (-1.5, 0.1, 4.0) the path misses the labelled voxel (at x = 2 it has
	// z = 7.5, outside [5,6)) and the bottom face (z axis travel 6.0) wins
	// over the +x side (axis travel 6.5), so the ray exits the bottom
	// after a path of 6√2.
	d := vec.V{X: 1, Z: 1}.Normalize()
	s, hit = g.ToBoundary(vec.V{X: -1.5, Y: 0.1, Z: 4.0}, d, 0, math.Inf(1))
	if math.Abs(s-6*math.Sqrt2) > 1e-9 {
		t.Fatalf("diagonal distance = %g, want %g", s, 6*math.Sqrt2)
	}
	if hit.Exit != geom.ExitBottom {
		t.Fatalf("diagonal hit = %+v, want bottom exit", hit)
	}
}

func TestRegionAtOutsideIsNegative(t *testing.T) {
	g := New("outside", 4, 4, 4, 1, 1, 1, "base", testProps())
	// Points beyond the footprint report -1 so launches there are scored
	// as lateral loss rather than traced down the edge column.
	for _, p := range []vec.V{{X: -100}, {X: 100, Y: 100, Z: 100}, {Z: -5}} {
		if r := g.RegionAt(p); r != -1 {
			t.Errorf("RegionAt(%v) = %d, want -1", p, r)
		}
	}
	// The entry surface and interior resolve normally.
	for _, p := range []vec.V{{}, {X: 1.5, Y: -1.5}, {Z: 3.9}} {
		if r := g.RegionAt(p); r != 0 {
			t.Errorf("RegionAt(%v) = %d, want 0", p, r)
		}
	}
	if !g.InsideGrid(0, 0, 1) || g.InsideGrid(100, 0, 1) {
		t.Error("InsideGrid misclassifies")
	}
}

func TestGridGobRoundTrip(t *testing.T) {
	g, err := FromModel(tissue.AdultHead(), 16, 16, 32, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inc, _ := g.AddMedium("tumour", optics.Properties{MuA: 0.3, MuS: 10, G: 0.9, N: 1.4})
	g.PaintSphere(inc, 0, 0, 14, 5)

	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(g); err != nil {
		t.Fatal(err)
	}
	var got Grid
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("decoded grid invalid: %v", err)
	}
	if got.NumRegions() != g.NumRegions() || len(got.Labels) != len(g.Labels) {
		t.Fatalf("decoded shape mismatch")
	}
	for i := range g.Labels {
		if g.Labels[i] != got.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestMinVoxel(t *testing.T) {
	g := New("mv", 2, 2, 2, 1, 0.25, 0.5, "b", testProps())
	if g.MinVoxel() != 0.25 {
		t.Fatalf("MinVoxel = %g", g.MinVoxel())
	}
}
