package voxel_test

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// checkClose asserts |a−b| ≤ 3σ for two independently estimated fractions
// of n launched photons, using the binomial variance bound (packet weights
// are ≤ 1, so the bound is conservative).
func checkClose(t *testing.T, name string, a, b float64, n int64) {
	t.Helper()
	nf := float64(n)
	sigma := math.Sqrt(a*(1-a)/nf + b*(1-b)/nf)
	if diff := math.Abs(a - b); diff > 3*sigma {
		t.Errorf("%s: layered %.5g vs voxel %.5g differ by %.3g > 3σ = %.3g",
			name, a, b, diff, 3*sigma)
	}
}

// compareGeometries runs the same photon budget through a layered model and
// its voxelization and checks the acceptance observables: diffuse
// reflectance, detected weight and per-layer absorption.
func compareGeometries(t *testing.T, m *tissue.Model, g *voxel.Grid, det detector.Detector, n int64) {
	t.Helper()
	layered, err := mc.RunParallel(&mc.Config{Model: m, Detector: det}, n, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	vox, err := mc.RunParallel(&mc.Config{Geometry: g, Detector: det}, n, 23, 0)
	if err != nil {
		t.Fatal(err)
	}

	if bal := vox.EnergyBalance(); math.Abs(bal) > 1e-6*float64(n) {
		t.Fatalf("voxel energy balance broken: %g", bal)
	}
	if lat := vox.LateralFraction(); lat > 0.01 {
		t.Fatalf("lateral escape %.3g too large for an equivalence run — widen the grid", lat)
	}

	checkClose(t, "diffuse reflectance", layered.DiffuseReflectance(), vox.DiffuseReflectance(), n)
	checkClose(t, "detected fraction", layered.DetectedFraction(), vox.DetectedFraction(), n)
	for i := range layered.LayerAbsorbed {
		checkClose(t, "absorbed fraction "+m.Layers[i].Name,
			layered.LayerAbsorbed[i]/layered.N(), vox.LayerAbsorbed[i]/vox.N(), n)
	}
}

// TestVoxelizedSlabMatchesLayered is the core acceptance check on a finite
// homogeneous slab, where the voxelization is geometrically exact inside
// the grid.
func TestVoxelizedSlabMatchesLayered(t *testing.T) {
	m := tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)
	// 100×100 mm wide, 0.5 mm depth rows: the 5 mm slab spans exactly ten
	// rows and lateral escape is negligible.
	g, err := voxel.FromModel(m, 100, 100, 10, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(100_000)
	if testing.Short() {
		n = 20_000
	}
	compareGeometries(t, m, g, detector.Annulus{RMin: 1, RMax: 4}, n)
}

// TestVoxelizedAdultHeadMatchesLayered voxelizes the five-layer Table 1
// head (layer boundaries at 3/10/12/16 mm all align with 0.5 mm depth
// rows) and checks the same observables through all five media.
func TestVoxelizedAdultHeadMatchesLayered(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-layer equivalence needs 10⁵ photons; skipped in -short")
	}
	m := tissue.AdultHead()
	// 60 mm deep: the truncated white matter (µeff ≈ 0.6 mm⁻¹) attenuates
	// anything reaching the bottom face by e⁻²⁶; 160 mm wide bounds
	// CSF-assisted lateral spread.
	g, err := voxel.FromModel(m, 160, 160, 120, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	compareGeometries(t, m, g, detector.Annulus{RMin: 5, RMax: 15}, 100_000)
}

// TestVoxelStreamMergeAssociative checks the distributed-reduction
// contract for voxel tallies: RunStream chunks merged in any order equal
// the parallel run.
func TestVoxelStreamMergeAssociative(t *testing.T) {
	g, err := voxel.FromModel(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5), 60, 60, 10, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *mc.Config {
		return &mc.Config{Geometry: g, Detector: detector.Annulus{RMin: 1, RMax: 4}}
	}
	const (
		seed     = 9
		streams  = 4
		perChunk = 1000
	)
	par, err := mc.RunParallel(mk(), streams*perChunk, seed, streams)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mk()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	total := mc.NewTally(cfg)
	for s := streams - 1; s >= 0; s-- {
		chunk, err := mc.RunStream(mk(), perChunk, seed, s, streams)
		if err != nil {
			t.Fatal(err)
		}
		if err := total.Merge(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if total.Launched != par.Launched || total.DetectedCount != par.DetectedCount {
		t.Fatalf("counts differ: launched %d vs %d, detected %d vs %d",
			total.Launched, par.Launched, total.DetectedCount, par.DetectedCount)
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"absorbed", total.AbsorbedWeight, par.AbsorbedWeight},
		{"detected", total.DetectedWeight, par.DetectedWeight},
		{"diffuse", total.DiffuseWeight, par.DiffuseWeight},
		{"lateral", total.LateralWeight, par.LateralWeight},
	} {
		if math.Abs(c.a-c.b) > 1e-9 {
			t.Errorf("%s weight differs: %g vs %g", c.name, c.a, c.b)
		}
	}
	for i := range total.LayerAbsorbed {
		if math.Abs(total.LayerAbsorbed[i]-par.LayerAbsorbed[i]) > 1e-9 {
			t.Errorf("region %d absorbed differs: %g vs %g",
				i, total.LayerAbsorbed[i], par.LayerAbsorbed[i])
		}
	}
}

// TestSphereInclusionPerturbsTransport is the physics smoke test for
// heterogeneity: a strongly absorbing sphere under the detector must soak
// up weight and reduce both reflectance and detection versus the
// unperturbed grid.
func TestSphereInclusionPerturbsTransport(t *testing.T) {
	base := tissue.HomogeneousSlab("phantom", tissue.ScalpProps, 20)
	det := detector.Annulus{RMin: 3, RMax: 10}
	n := int64(40_000)
	if testing.Short() {
		n = 10_000
	}

	clean, err := voxel.FromModel(base, 80, 80, 40, 1, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := clean.Clone()
	inc, err := perturbed.AddMedium("absorber", optics.Properties{MuA: 2, MuS: 19, G: 0.9, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if painted := perturbed.PaintSphere(inc, 0, 0, 4, 3); painted == 0 {
		t.Fatal("sphere painted nothing")
	}

	ref, err := mc.RunParallel(&mc.Config{Geometry: clean, Detector: det}, n, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	per, err := mc.RunParallel(&mc.Config{Geometry: perturbed, Detector: det}, n, 3, 0)
	if err != nil {
		t.Fatal(err)
	}

	if per.DiffuseReflectance() >= ref.DiffuseReflectance() {
		t.Errorf("absorbing sphere did not reduce reflectance: %g vs %g",
			per.DiffuseReflectance(), ref.DiffuseReflectance())
	}
	if per.DetectedFraction() >= ref.DetectedFraction() {
		t.Errorf("absorbing sphere did not reduce detection: %g vs %g",
			per.DetectedFraction(), ref.DetectedFraction())
	}
	if inc >= len(per.LayerAbsorbed) || per.LayerAbsorbed[inc] == 0 {
		t.Errorf("no weight absorbed in the inclusion medium")
	}
	if bal := per.EnergyBalance(); math.Abs(bal) > 1e-6*float64(n) {
		t.Errorf("energy balance broken with inclusion: %g", bal)
	}
}

// TestFirstEntryTallyWithNonOrderedLabels checks LayerEnteredWeight counts
// the first entry into every region even when label indices are not
// depth-ordered — a grid whose shallow media carry higher labels than the
// deep ones (the situation painted inclusions create).
func TestFirstEntryTallyWithNonOrderedLabels(t *testing.T) {
	// Depth rows: [0,2) mm = label 2, [2,4) mm = label 1, [4,10) mm =
	// label 0, so a descending photon enters regions in *decreasing* label
	// order.
	g := voxel.New("inverted", 40, 40, 10, 1, 1, 1, "deep",
		optics.Properties{MuA: 0.02, MuS: 5, G: 0.8, N: 1.4})
	mid, err := g.AddMedium("mid", optics.Properties{MuA: 0.02, MuS: 5, G: 0.8, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	top, err := g.AddMedium("top", optics.Properties{MuA: 0.02, MuS: 5, G: 0.8, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	g.PaintBox(mid, g.X0, g.Y0, 2, -g.X0, -g.Y0, 4)
	g.PaintBox(top, g.X0, g.Y0, 0, -g.X0, -g.Y0, 2)

	tally, err := mc.Run(&mc.Config{Geometry: g}, 2000, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Photons launch in "top" (label 2, not counted as an entry) and must
	// be credited on first entry into the lower-labelled deeper media.
	if tally.LayerEnteredWeight[top] != 0 {
		t.Errorf("launch region counted as an entry: %g", tally.LayerEnteredWeight[top])
	}
	if tally.LayerEnteredWeight[mid] == 0 {
		t.Error("no first-entry weight recorded for the mid region")
	}
	if tally.LayerEnteredWeight[0] == 0 {
		t.Error("no first-entry weight recorded for the deep region")
	}
	// Scattering-dominated 10 mm slab: essentially every surviving packet
	// reaches the mid layer, so its entered weight must be substantial.
	if f := tally.LayerEnteredWeight[mid] / tally.N(); f < 0.5 {
		t.Errorf("mid-region entry fraction %g suspiciously low", f)
	}
}

// TestLaunchOutsideFootprintScoredAsLateral checks that a source wider
// than the grid loses its out-of-footprint launches to LateralWeight
// instead of silently tracing them down the edge columns.
func TestLaunchOutsideFootprintScoredAsLateral(t *testing.T) {
	g := voxel.New("narrow", 10, 10, 10, 1, 1, 1, "base",
		optics.Properties{MuA: 0.02, MuS: 10, G: 0.9, N: 1.4})
	cfg := &mc.Config{Geometry: g, Source: source.UniformDisk{Radius: 20}}
	tally, err := mc.Run(cfg, 5000, 31)
	if err != nil {
		t.Fatal(err)
	}
	// The 5×5 mm footprint covers 25/(π·400) ≈ 2% of the disk; roughly
	// 98% of launches must be scored as lateral loss at launch.
	if f := tally.LateralFraction(); f < 0.9 || f > 1 {
		t.Fatalf("lateral fraction %g, want ≈0.98", f)
	}
	if bal := tally.EnergyBalance(); math.Abs(bal) > 1e-9*tally.N() {
		t.Fatalf("energy balance broken: %g", bal)
	}
}
