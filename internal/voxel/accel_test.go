package voxel

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/optics"
	"repro/internal/rng"
	"repro/internal/vec"
)

// accelTestGrid builds a small heterogeneous grid: three depth bands plus a
// painted sphere, so the radius map sees flat interfaces, a curved one and
// the grid hull.
func accelTestGrid(t *testing.T) *Grid {
	t.Helper()
	g := New("accel", 24, 20, 16, 1, 1, 1, "base",
		optics.Properties{MuA: 0.02, MuS: 10, G: 0.9, N: 1.4})
	mid, err := g.AddMedium("mid", optics.Properties{MuA: 0.05, MuS: 5, G: 0.8, N: 1.35})
	if err != nil {
		t.Fatal(err)
	}
	sph, err := g.AddMedium("sphere", optics.Properties{MuA: 1, MuS: 8, G: 0.9, N: 1.45})
	if err != nil {
		t.Fatal(err)
	}
	g.PaintBox(mid, g.X0, g.Y0, 6, -g.X0, -g.Y0, 11)
	g.PaintSphere(sph, 2, -1, 8, 3)
	return g
}

// TestSafeRadiusInvariant brute-forces the fusion invariant for every
// voxel: the Chebyshev ball of the mapped radius is entirely in-grid and
// same-label, and the radius is maximal (the next larger ball violates).
func TestSafeRadiusInvariant(t *testing.T) {
	g := accelTestGrid(t)
	rad := g.ensureAccel().rad

	ballUniform := func(i, j, k, r int) bool {
		if i-r < 0 || i+r >= g.Nx || j-r < 0 || j+r >= g.Ny || k-r < 0 || k+r >= g.Nz {
			return false
		}
		l := g.Labels[g.Index(i, j, k)]
		for dk := -r; dk <= r; dk++ {
			for dj := -r; dj <= r; dj++ {
				for di := -r; di <= r; di++ {
					if g.Labels[g.Index(i+di, j+dj, k+dk)] != l {
						return false
					}
				}
			}
		}
		return true
	}

	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				r := int(rad[g.Index(i, j, k)])
				if !ballUniform(i, j, k, r) {
					t.Fatalf("voxel (%d,%d,%d): radius %d ball not uniform", i, j, k, r)
				}
				if r < 255 && ballUniform(i, j, k, r+1) {
					t.Errorf("voxel (%d,%d,%d): radius %d not maximal", i, j, k, r)
				}
			}
		}
	}
}

// TestFusionMatchesPlainDDA fires random rays through the heterogeneous
// grid and compares the fused traversal against the same walk with the
// radius map zeroed (which disables both the fast path and in-walk jumps).
// Boundary hits must agree; no-boundary outcomes must agree on "beyond
// maxDist".
func TestFusionMatchesPlainDDA(t *testing.T) {
	g := accelTestGrid(t)
	plain := g.Clone()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := plain.Validate(); err != nil {
		t.Fatal(err)
	}
	plainRad := plain.acc.Load().rad
	for i := range plainRad {
		plainRad[i] = 0
	}

	r := rng.New(2027)
	rays := 2000
	for n := 0; n < rays; n++ {
		pos := vec.V{
			X: g.X0 + r.Float64()*g.Width(),
			Y: g.Y0 + r.Float64()*g.Height(),
			Z: r.Float64() * g.Depth(),
		}
		cosPhi, sinPhi := r.AzimuthUnit()
		cosT := 2*r.Float64() - 1
		sinT := math.Sqrt(1 - cosT*cosT)
		dir := vec.V{X: sinT * cosPhi, Y: sinT * sinPhi, Z: cosT}
		region := g.RegionAt(pos)
		if region < 0 {
			continue
		}
		maxDist := r.Float64() * 12

		sf, hf := g.ToBoundary(pos, dir, region, maxDist)
		sp, hp := plain.ToBoundary(pos, dir, region, maxDist)

		fusedBeyond, plainBeyond := sf > maxDist && hf == (geom.Hit{}), sp > maxDist && hp == (geom.Hit{})
		if fusedBeyond != plainBeyond {
			t.Fatalf("ray %d: fused beyond=%v plain beyond=%v (s %g vs %g)", n, fusedBeyond, plainBeyond, sf, sp)
		}
		if plainBeyond {
			continue
		}
		if math.Abs(sf-sp) > 1e-9 {
			t.Fatalf("ray %d: boundary distance %g vs %g", n, sf, sp)
		}
		if hf != hp {
			t.Fatalf("ray %d: hits differ: %+v vs %+v", n, hf, hp)
		}
	}
}

// TestConcurrentLazyAccelBuild pins the atomic publication of the
// accelerator: goroutines tracing a never-validated shared grid may race
// into the lazy build, and all must come back with consistent results
// (run under -race in CI).
func TestConcurrentLazyAccelBuild(t *testing.T) {
	g := accelTestGrid(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pos := vec.V{X: float64(w) - 4, Z: 3}
			s, _ := g.ToBoundary(pos, vec.V{Z: 1}, g.RegionAt(pos), math.Inf(1))
			if s <= 0 {
				errs[w] = fmt.Errorf("worker %d: non-positive boundary distance %g", w, s)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPaintInvalidatesAccel guards the staleness trap: painting after a
// trace must rebuild the radius map, not fuse through the new inclusion.
func TestPaintInvalidatesAccel(t *testing.T) {
	g := New("repaint", 16, 16, 16, 1, 1, 1, "base",
		optics.Properties{MuA: 0.02, MuS: 10, G: 0.9, N: 1.4})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.acc.Load() == nil {
		t.Fatal("Validate did not build the accelerator")
	}
	lbl, err := g.AddMedium("inc", optics.Properties{MuA: 1, MuS: 5, G: 0.8, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if painted := g.PaintSphere(lbl, 0, 0, 8, 3); painted == 0 {
		t.Fatal("nothing painted")
	}
	if g.acc.Load() != nil {
		t.Fatal("Paint left a stale accelerator in place")
	}
	// A ray straight down the sphere's axis must now report the inclusion.
	s, hit := g.ToBoundary(vec.V{Z: 0.5}, vec.V{Z: 1}, 0, math.Inf(1))
	if hit.Next != lbl {
		t.Fatalf("post-paint trace missed the inclusion: s=%g hit=%+v", s, hit)
	}
}
