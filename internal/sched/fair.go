package sched

// FairShare implements weighted start-time fair queueing over abstract
// flows. Each flow carries a virtual-time tag: the virtual instant at which
// its next quantum of work should begin if every flow received service
// exactly proportional to its weight. Picking the flow with the smallest
// tag and charging it tag += work/weight yields long-run service shares
// proportional to the weights, regardless of quantum sizes.
//
// Flows that join late start at the current global virtual time, so a new
// flow competes fairly from its arrival instead of monopolising the server
// while it "catches up" on service it never queued for. The multi-job
// simulation service uses this with flows = job IDs and work = photons
// assigned; TwoLevel stacks two instances (string-keyed tenants over
// uint64-keyed jobs) for hierarchical fairness.
//
// FairShare is not goroutine-safe; callers serialise access (the service
// registry holds its own lock across Pick/Charge).
type FairShare[K comparable] struct {
	vtime float64
	flows map[K]*fsFlow
}

type fsFlow struct {
	weight float64
	tag    float64 // virtual start time of the flow's next quantum
}

// NewFairShare returns an empty scheduler at virtual time zero.
func NewFairShare[K comparable]() *FairShare[K] {
	return &FairShare[K]{flows: make(map[K]*fsFlow)}
}

// Observe registers flow with the given weight (weight <= 0 is treated as
// 1). A new flow's tag starts at the current virtual time; an existing flow
// keeps its tag but adopts the new weight.
func (fs *FairShare[K]) Observe(flow K, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	if f, ok := fs.flows[flow]; ok {
		f.weight = weight
		return
	}
	fs.flows[flow] = &fsFlow{weight: weight, tag: fs.vtime}
}

// Forget drops a finished flow's accounting state.
func (fs *FairShare[K]) Forget(flow K) { delete(fs.flows, flow) }

// Len reports the number of registered flows.
func (fs *FairShare[K]) Len() int { return len(fs.flows) }

// Pick returns the index into candidates of the flow that should be served
// next (smallest tag; earlier candidate wins ties) or -1 if candidates is
// empty. Unregistered candidates are Observed with weight 1 first.
func (fs *FairShare[K]) Pick(candidates []K) int {
	best := -1
	for i, id := range candidates {
		if _, ok := fs.flows[id]; !ok {
			fs.Observe(id, 1)
		}
		if best == -1 || fs.flows[id].tag < fs.flows[candidates[best]].tag {
			best = i
		}
	}
	return best
}

// Charge accounts work units of service to flow and advances the global
// virtual time to the served flow's start tag (the start-time fair queueing
// rule), so late joiners enter at the service frontier.
func (fs *FairShare[K]) Charge(flow K, work float64) {
	f, ok := fs.flows[flow]
	if !ok {
		fs.Observe(flow, 1)
		f = fs.flows[flow]
	}
	if f.tag > fs.vtime {
		fs.vtime = f.tag
	}
	f.tag += work / f.weight
}

// VirtualTime exposes the global virtual clock (for tests and diagnostics).
func (fs *FairShare[K]) VirtualTime() float64 { return fs.vtime }
