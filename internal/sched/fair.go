package sched

// FairShare implements weighted start-time fair queueing over abstract
// flows. Each flow carries a virtual-time tag: the virtual instant at which
// its next quantum of work should begin if every flow received service
// exactly proportional to its weight. Picking the flow with the smallest
// tag and charging it tag += work/weight yields long-run service shares
// proportional to the weights, regardless of quantum sizes.
//
// Flows that join late start at the current global virtual time, so a new
// flow competes fairly from its arrival instead of monopolising the server
// while it "catches up" on service it never queued for. The multi-job
// simulation service uses this with flows = job IDs and work = photons
// assigned; the cluster simulator can reuse it for any divisible workload.
//
// FairShare is not goroutine-safe; callers serialise access (the service
// registry holds its own lock across Pick/Charge).
type FairShare struct {
	vtime float64
	flows map[uint64]*fsFlow
}

type fsFlow struct {
	weight float64
	tag    float64 // virtual start time of the flow's next quantum
}

// NewFairShare returns an empty scheduler at virtual time zero.
func NewFairShare() *FairShare {
	return &FairShare{flows: make(map[uint64]*fsFlow)}
}

// Observe registers flow with the given weight (minimum 1e-9; weight <= 0
// is treated as 1). A new flow's tag starts at the current virtual time; an
// existing flow keeps its tag but adopts the new weight.
func (fs *FairShare) Observe(flow uint64, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	if f, ok := fs.flows[flow]; ok {
		f.weight = weight
		return
	}
	fs.flows[flow] = &fsFlow{weight: weight, tag: fs.vtime}
}

// Forget drops a finished flow's accounting state.
func (fs *FairShare) Forget(flow uint64) { delete(fs.flows, flow) }

// Pick returns the index into candidates of the flow that should be served
// next (smallest tag; earlier candidate wins ties) or -1 if candidates is
// empty. Unregistered candidates are Observed with weight 1 first.
func (fs *FairShare) Pick(candidates []uint64) int {
	best := -1
	for i, id := range candidates {
		if _, ok := fs.flows[id]; !ok {
			fs.Observe(id, 1)
		}
		if best == -1 || fs.flows[id].tag < fs.flows[candidates[best]].tag {
			best = i
		}
	}
	return best
}

// Charge accounts work units of service to flow and advances the global
// virtual time to the served flow's start tag (the start-time fair queueing
// rule), so late joiners enter at the service frontier.
func (fs *FairShare) Charge(flow uint64, work float64) {
	f, ok := fs.flows[flow]
	if !ok {
		fs.Observe(flow, 1)
		f = fs.flows[flow]
	}
	if f.tag > fs.vtime {
		fs.vtime = f.tag
	}
	f.tag += work / f.weight
}

// VirtualTime exposes the global virtual clock (for tests and diagnostics).
func (fs *FairShare) VirtualTime() float64 { return fs.vtime }
