package sched

// TwoLevel stacks two layers of start-time fair queueing into a
// tenant→job hierarchy: an outer weighted competition between tenants and,
// inside the winning tenant, an inner competition between that tenant's
// jobs. The outer level guarantees each tenant its weighted share of fleet
// throughput no matter how many jobs it queues — one tenant submitting a
// hundred jobs still gets one tenant's share — while the inner level
// splits the tenant's allocation across its own jobs by job weight.
//
// Both levels obey the FairShare late-joiner rule, so a tenant that goes
// idle and returns competes from the current service frontier rather than
// draining an accumulated deficit. Like FairShare, TwoLevel is not
// goroutine-safe; callers serialise access.
type TwoLevel struct {
	tenants *FairShare[string]
	jobs    map[string]*FairShare[uint64]
	owner   map[uint64]string // job → tenant, for Charge/Forget by job id
}

// TenantJob names one schedulable job and its position in the hierarchy.
type TenantJob struct {
	Tenant       string
	TenantWeight float64
	Job          uint64
	JobWeight    float64
}

// NewTwoLevel returns an empty hierarchy at virtual time zero.
func NewTwoLevel() *TwoLevel {
	return &TwoLevel{
		tenants: NewFairShare[string](),
		jobs:    make(map[string]*FairShare[uint64]),
		owner:   make(map[uint64]string),
	}
}

// Pick returns the index into cands of the job to serve next, or -1 if
// cands is empty: first the tenant with the smallest outer tag among those
// present, then that tenant's job with the smallest inner tag. Unseen
// tenants and jobs are registered at the current virtual frontier.
func (tl *TwoLevel) Pick(cands []TenantJob) int {
	if len(cands) == 0 {
		return -1
	}
	// Register everything in sight and collect the distinct tenants in
	// first-appearance order (stable tie-breaking mirrors FairShare.Pick).
	tenantOrder := make([]string, 0, 4)
	seen := make(map[string]bool, 4)
	for _, c := range cands {
		tl.tenants.Observe(c.Tenant, c.TenantWeight)
		tl.jobFS(c.Tenant).Observe(c.Job, c.JobWeight)
		tl.owner[c.Job] = c.Tenant
		if !seen[c.Tenant] {
			seen[c.Tenant] = true
			tenantOrder = append(tenantOrder, c.Tenant)
		}
	}
	winner := tenantOrder[tl.tenants.Pick(tenantOrder)]
	// Inner pick over the winning tenant's candidates only.
	inner := tl.jobFS(winner)
	best := -1
	for i, c := range cands {
		if c.Tenant != winner {
			continue
		}
		if best == -1 || inner.flows[c.Job].tag < inner.flows[cands[best].Job].tag {
			best = i
		}
	}
	return best
}

// Charge accounts work units of service to job at both levels: the job's
// inner tag advances by work/jobWeight and its tenant's outer tag by
// work/tenantWeight, so heavy service to one job dilates its whole
// tenant's claim on the fleet.
func (tl *TwoLevel) Charge(job uint64, work float64) {
	tenant, ok := tl.owner[job]
	if !ok {
		return // never Picked; nothing to account against
	}
	tl.tenants.Charge(tenant, work)
	tl.jobFS(tenant).Charge(job, work)
}

// Forget drops a finished job; when a tenant's last job leaves, the
// tenant's outer flow is dropped too, so a returning tenant re-enters at
// the frontier like any late joiner.
func (tl *TwoLevel) Forget(job uint64) {
	tenant, ok := tl.owner[job]
	if !ok {
		return
	}
	delete(tl.owner, job)
	fs := tl.jobFS(tenant)
	fs.Forget(job)
	if fs.Len() == 0 {
		delete(tl.jobs, tenant)
		tl.tenants.Forget(tenant)
	}
}

// VirtualTime exposes the outer (tenant-level) virtual clock.
func (tl *TwoLevel) VirtualTime() float64 { return tl.tenants.VirtualTime() }

func (tl *TwoLevel) jobFS(tenant string) *FairShare[uint64] {
	fs, ok := tl.jobs[tenant]
	if !ok {
		fs = NewFairShare[uint64]()
		tl.jobs[tenant] = fs
	}
	return fs
}
