package sched

import "testing"

// serve runs n quanta of the given size through the scheduler over the
// candidate flows and returns the per-flow service totals.
func serve(fs *FairShare[uint64], flows []uint64, n int, quantum float64) map[uint64]float64 {
	got := make(map[uint64]float64)
	for i := 0; i < n; i++ {
		k := fs.Pick(flows)
		got[flows[k]] += quantum
		fs.Charge(flows[k], quantum)
	}
	return got
}

func TestFairShareEqualWeights(t *testing.T) {
	fs := NewFairShare[uint64]()
	fs.Observe(1, 1)
	fs.Observe(2, 1)
	got := serve(fs, []uint64{1, 2}, 100, 10)
	if got[1] != got[2] {
		t.Fatalf("equal weights served unequally: %v", got)
	}
}

func TestFairShareWeightedRatio(t *testing.T) {
	fs := NewFairShare[uint64]()
	fs.Observe(1, 3)
	fs.Observe(2, 1)
	got := serve(fs, []uint64{1, 2}, 400, 5)
	ratio := got[1] / got[2]
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("3:1 weights served at ratio %.2f: %v", ratio, got)
	}
}

func TestFairShareLateJoinerDoesNotStarveOthers(t *testing.T) {
	fs := NewFairShare[uint64]()
	fs.Observe(1, 1)
	// Flow 1 runs alone for a while.
	serve(fs, []uint64{1}, 50, 10)
	// Flow 2 joins; from here on service must be ~50/50, not "flow 2 gets
	// everything until it catches up on 500 units of history".
	fs.Observe(2, 1)
	got := serve(fs, []uint64{1, 2}, 100, 10)
	if got[1] < 400 {
		t.Fatalf("existing flow starved after late join: %v", got)
	}
	if got[2] < 400 {
		t.Fatalf("late joiner starved: %v", got)
	}
}

func TestFairShareUnevenQuanta(t *testing.T) {
	// Fairness must hold in work units, not quantum counts: flow 1's quanta
	// are 4x larger, so it should be picked ~4x less often.
	fs := NewFairShare[uint64]()
	fs.Observe(1, 1)
	fs.Observe(2, 1)
	picks := map[uint64]int{}
	work := map[uint64]float64{}
	for i := 0; i < 500; i++ {
		k := fs.Pick([]uint64{1, 2})
		id := []uint64{1, 2}[k]
		q := 10.0
		if id == 1 {
			q = 40.0
		}
		picks[id]++
		work[id] += q
		fs.Charge(id, q)
	}
	if r := work[1] / work[2]; r < 0.9 || r > 1.1 {
		t.Fatalf("work split %.2f:1 with uneven quanta: %v", r, work)
	}
	if picks[1] >= picks[2] {
		t.Fatalf("large-quantum flow picked as often: %v", picks)
	}
}

func TestFairShareForget(t *testing.T) {
	fs := NewFairShare[uint64]()
	fs.Observe(1, 1)
	fs.Charge(1, 100)
	fs.Forget(1)
	// Re-registered flow starts fresh at the virtual frontier.
	fs.Observe(1, 1)
	if k := fs.Pick([]uint64{1}); k != 0 {
		t.Fatalf("pick after forget = %d", k)
	}
}

func TestFairSharePickEmpty(t *testing.T) {
	if k := NewFairShare[uint64]().Pick(nil); k != -1 {
		t.Fatalf("pick on empty candidates = %d, want -1", k)
	}
}
