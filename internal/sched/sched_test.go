package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestFixedChunk(t *testing.T) {
	p := FixedChunk{Photons: 100}
	if got := p.NextChunk(1000, 4); got != 100 {
		t.Fatalf("NextChunk = %d", got)
	}
	if got := p.NextChunk(40, 4); got != 40 {
		t.Fatalf("NextChunk near drain = %d", got)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestGuidedShrinks(t *testing.T) {
	p := Guided{Min: 10}
	first := p.NextChunk(10000, 5)
	if first != 1000 {
		t.Fatalf("guided first chunk = %d, want 1000", first)
	}
	later := p.NextChunk(100, 5)
	if later != 10 {
		t.Fatalf("guided floor = %d, want 10", later)
	}
	if got := p.NextChunk(4, 5); got != 4 {
		t.Fatalf("guided drain = %d, want 4", got)
	}
}

// Property: every policy conserves work — repeatedly pulling chunks consumes
// exactly the total, never over-assigns, and terminates.
func TestPoliciesConserveWork(t *testing.T) {
	policies := []Policy{
		FixedChunk{Photons: 37},
		Guided{Min: 5},
	}
	f := func(totalRaw uint32, kRaw uint8) bool {
		total := int64(totalRaw%100000) + 1
		k := int(kRaw%32) + 1
		for _, p := range policies {
			remaining := total
			pulls := 0
			for remaining > 0 {
				c := p.NextChunk(remaining, k)
				if c <= 0 || c > remaining {
					return false
				}
				remaining -= c
				pulls++
				if pulls > 1<<22 {
					return false // livelock
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualSplitConserves(t *testing.T) {
	alloc := EqualSplit(1003, 4)
	var sum int64
	for _, a := range alloc {
		sum += a
	}
	if sum != 1003 {
		t.Fatalf("equal split sums to %d", sum)
	}
	// Shares differ by at most 1.
	min, max := alloc[0], alloc[0]
	for _, a := range alloc {
		if a < min {
			min = a
		}
		if a > max {
			max = a
		}
	}
	if max-min > 1 {
		t.Fatalf("uneven equal split: %v", alloc)
	}
}

func TestProportionalSplit(t *testing.T) {
	speeds := []float64{1, 3}
	alloc := ProportionalSplit(1000, speeds)
	if alloc[0]+alloc[1] != 1000 {
		t.Fatalf("proportional split sums to %d", alloc[0]+alloc[1])
	}
	if math.Abs(float64(alloc[1])-750) > 2 {
		t.Fatalf("fast worker got %d, want ≈750", alloc[1])
	}
	// Proportional is makespan-balanced: per-worker times equal.
	t0 := float64(alloc[0]) / speeds[0]
	t1 := float64(alloc[1]) / speeds[1]
	if math.Abs(t0-t1)/t0 > 0.02 {
		t.Fatalf("proportional not balanced: %g vs %g", t0, t1)
	}
}

func TestMakespan(t *testing.T) {
	got := Makespan([]int64{100, 300}, []float64{1, 3})
	if got != 100 {
		t.Fatalf("makespan = %g", got)
	}
	if Makespan([]int64{500, 100}, []float64{1, 1}) != 500 {
		t.Fatal("makespan should be the slowest worker")
	}
}

func TestGASplitConservesAndBeatsEqual(t *testing.T) {
	// Strongly heterogeneous fleet: equal split is terrible, GA must land
	// near the proportional optimum.
	speeds := []float64{30, 200, 15, 150, 25, 37, 72, 91}
	const total = int64(1_000_000)

	alloc, ms := GASplit(total, speeds, DefaultGAOptions())
	var sum int64
	for _, a := range alloc {
		if a < 0 {
			t.Fatalf("negative allocation %d", a)
		}
		sum += a
	}
	if sum != total {
		t.Fatalf("GA allocation sums to %d, want %d", sum, total)
	}

	equal := Makespan(EqualSplit(total, len(speeds)), speeds)
	optimal := Makespan(ProportionalSplit(total, speeds), speeds)
	if ms >= equal {
		t.Fatalf("GA makespan %g no better than equal split %g", ms, equal)
	}
	if ms > optimal*1.10 {
		t.Fatalf("GA makespan %g more than 10%% above optimum %g", ms, optimal)
	}
}

func TestGASplitDeterministic(t *testing.T) {
	speeds := []float64{10, 20, 30}
	a1, m1 := GASplit(10000, speeds, DefaultGAOptions())
	a2, m2 := GASplit(10000, speeds, DefaultGAOptions())
	if m1 != m2 {
		t.Fatalf("GA not deterministic: %g vs %g", m1, m2)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("GA allocations differ across identical runs")
		}
	}
}

func TestGASplitEmptyFleet(t *testing.T) {
	alloc, ms := GASplit(100, nil, DefaultGAOptions())
	if alloc != nil || ms != 0 {
		t.Fatal("empty fleet should yield empty result")
	}
}

// Property: GA never loses to its proportional seed by more than mutation
// noise, across random fleets.
func TestGANearProportional(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 2 + r.Intn(6)
		speeds := make([]float64, k)
		for i := range speeds {
			speeds[i] = 10 + 200*r.Float64()
		}
		opt := DefaultGAOptions()
		opt.Generations = 80
		opt.Seed = seed
		_, ms := GASplit(500000, speeds, opt)
		best := Makespan(ProportionalSplit(500000, speeds), speeds)
		return ms <= best*1.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
