// Package sched provides the work-partitioning policies used by the
// distributed system and the cluster simulator: dynamic self-scheduling
// (the paper's platform model), guided self-scheduling, and static
// allocations including the genetic-algorithm scheduler of the authors'
// companion framework (Page & Naughton 2005, reference [4]).
package sched

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Policy yields the size of the next dynamically pulled work chunk, given
// the photons still unassigned and the number of workers.
type Policy interface {
	NextChunk(remaining int64, workers int) int64
	Name() string
}

// FixedChunk always returns the same chunk size — the paper platform's
// dynamic self-scheduling with a fixed work-unit size.
type FixedChunk struct {
	Photons int64
}

// NextChunk implements Policy.
func (f FixedChunk) NextChunk(remaining int64, _ int) int64 {
	return minI64(f.Photons, remaining)
}

// Name implements Policy.
func (f FixedChunk) Name() string { return fmt.Sprintf("fixed-%d", f.Photons) }

// Guided implements guided self-scheduling: chunks of remaining/(2k),
// shrinking toward Min, which trades assignment overhead against tail
// imbalance.
type Guided struct {
	Min int64
}

// NextChunk implements Policy.
func (g Guided) NextChunk(remaining int64, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	c := remaining / int64(2*workers)
	if c < g.Min {
		c = g.Min
	}
	return minI64(c, remaining)
}

// Name implements Policy.
func (g Guided) Name() string { return fmt.Sprintf("guided-min%d", g.Min) }

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// --- Static allocation ------------------------------------------------

// EqualSplit allocates total photons evenly over k workers — the naive
// static baseline that collapses on heterogeneous fleets.
func EqualSplit(total int64, k int) []int64 {
	alloc := make([]int64, k)
	for i := range alloc {
		alloc[i] = total / int64(k)
		if int64(i) < total%int64(k) {
			alloc[i]++
		}
	}
	return alloc
}

// ProportionalSplit allocates photons proportionally to worker speeds —
// the analytically optimal static allocation when speeds are known exactly.
func ProportionalSplit(total int64, speeds []float64) []int64 {
	sum := 0.0
	for _, s := range speeds {
		sum += s
	}
	alloc := make([]int64, len(speeds))
	assigned := int64(0)
	for i, s := range speeds {
		alloc[i] = int64(float64(total) * s / sum)
		assigned += alloc[i]
	}
	// Distribute rounding leftovers to the fastest workers.
	for rem := total - assigned; rem > 0; rem-- {
		best := 0
		for i := range speeds {
			if speeds[i] > speeds[best] {
				best = i
			}
		}
		alloc[best]++
	}
	return alloc
}

// Makespan returns the static-schedule completion time max_i alloc_i/speed_i
// in units of photons per unit speed.
func Makespan(alloc []int64, speeds []float64) float64 {
	worst := 0.0
	for i, a := range alloc {
		t := float64(a) / speeds[i]
		if t > worst {
			worst = t
		}
	}
	return worst
}

// GAOptions tune the genetic-algorithm static scheduler.
type GAOptions struct {
	Population  int
	Generations int
	MutateRate  float64
	Elite       int
	Seed        uint64
}

// DefaultGAOptions mirror the modest parameters of reference [4].
func DefaultGAOptions() GAOptions {
	return GAOptions{Population: 60, Generations: 200, MutateRate: 0.2, Elite: 4, Seed: 1}
}

// GASplit searches for a static allocation of total photons over workers
// with the given speeds that minimises makespan, using a real-coded genetic
// algorithm (tournament selection, uniform crossover, Gaussian mutation).
// It returns the allocation and its makespan.
func GASplit(total int64, speeds []float64, opt GAOptions) ([]int64, float64) {
	k := len(speeds)
	if k == 0 {
		return nil, 0
	}
	if opt.Population < 4 {
		opt.Population = 4
	}
	if opt.Elite < 1 {
		opt.Elite = 1
	}
	r := rng.New(opt.Seed)

	// A chromosome is a vector of positive shares, normalised to total.
	type indiv struct {
		shares  []float64
		fitness float64 // makespan; lower is better
	}
	decode := func(shares []float64) []int64 {
		sum := 0.0
		for _, s := range shares {
			sum += s
		}
		alloc := make([]int64, k)
		assigned := int64(0)
		for i, s := range shares {
			alloc[i] = int64(float64(total) * s / sum)
			assigned += alloc[i]
		}
		for rem := total - assigned; rem > 0; rem-- {
			alloc[int(rem)%k]++
		}
		return alloc
	}
	eval := func(shares []float64) float64 { return Makespan(decode(shares), speeds) }

	pop := make([]indiv, opt.Population)
	for i := range pop {
		shares := make([]float64, k)
		for j := range shares {
			if i == 0 {
				shares[j] = speeds[j] // seed with the proportional heuristic
			} else {
				shares[j] = r.Float64Open()
			}
		}
		pop[i] = indiv{shares: shares, fitness: eval(shares)}
	}

	tournament := func() indiv {
		a, b := pop[r.Intn(len(pop))], pop[r.Intn(len(pop))]
		if a.fitness <= b.fitness {
			return a
		}
		return b
	}

	for gen := 0; gen < opt.Generations; gen++ {
		// Sort-free elitism: find the best few by selection sort (small pop).
		next := make([]indiv, 0, opt.Population)
		bestIdx := make([]int, 0, opt.Elite)
		for e := 0; e < opt.Elite; e++ {
			best := -1
			for i := range pop {
				taken := false
				for _, b := range bestIdx {
					if b == i {
						taken = true
						break
					}
				}
				if taken {
					continue
				}
				if best == -1 || pop[i].fitness < pop[best].fitness {
					best = i
				}
			}
			bestIdx = append(bestIdx, best)
			next = append(next, pop[best])
		}
		for len(next) < opt.Population {
			p1, p2 := tournament(), tournament()
			child := make([]float64, k)
			for j := range child {
				if r.Float64() < 0.5 {
					child[j] = p1.shares[j]
				} else {
					child[j] = p2.shares[j]
				}
				if r.Float64() < opt.MutateRate {
					child[j] *= math.Exp(0.3 * r.Gaussian())
				}
				if child[j] <= 0 || math.IsNaN(child[j]) {
					child[j] = r.Float64Open()
				}
			}
			next = append(next, indiv{shares: child, fitness: eval(child)})
		}
		pop = next
	}

	best := pop[0]
	for _, in := range pop[1:] {
		if in.fitness < best.fitness {
			best = in
		}
	}
	return decode(best.shares), best.fitness
}
