package sched

import "testing"

// serveTJ runs n equal quanta through a TwoLevel over the candidate set
// and returns per-tenant and per-job service totals.
func serveTJ(tl *TwoLevel, cands []TenantJob, n int, quantum float64) (map[string]float64, map[uint64]float64) {
	byTenant := make(map[string]float64)
	byJob := make(map[uint64]float64)
	for i := 0; i < n; i++ {
		k := tl.Pick(cands)
		c := cands[k]
		byTenant[c.Tenant] += quantum
		byJob[c.Job] += quantum
		tl.Charge(c.Job, quantum)
	}
	return byTenant, byJob
}

func TestTwoLevelTenantWeightedRatio(t *testing.T) {
	// Tenant a (weight 3) queues two jobs, tenant b (weight 1) one job.
	// Outer fairness must hold 3:1 between tenants regardless of job
	// counts, and a's allocation must split evenly between its two jobs.
	tl := NewTwoLevel()
	cands := []TenantJob{
		{Tenant: "a", TenantWeight: 3, Job: 1, JobWeight: 1},
		{Tenant: "a", TenantWeight: 3, Job: 2, JobWeight: 1},
		{Tenant: "b", TenantWeight: 1, Job: 3, JobWeight: 1},
	}
	byTenant, byJob := serveTJ(tl, cands, 400, 5)
	if r := byTenant["a"] / byTenant["b"]; r < 2.8 || r > 3.2 {
		t.Fatalf("3:1 tenant weights served at ratio %.2f: %v", r, byTenant)
	}
	if r := byJob[1] / byJob[2]; r < 0.9 || r > 1.1 {
		t.Fatalf("equal-weight jobs inside a tenant split %.2f:1: %v", r, byJob)
	}
}

func TestTwoLevelManyJobsDoNotInflateTenantShare(t *testing.T) {
	// Tenant noisy floods 8 jobs; tenant quiet has 1. Equal tenant weights
	// must still split the fleet 50/50 — per-job FIFO or flat fair share
	// would give noisy 8/9ths.
	tl := NewTwoLevel()
	var cands []TenantJob
	for j := uint64(1); j <= 8; j++ {
		cands = append(cands, TenantJob{Tenant: "noisy", TenantWeight: 1, Job: j, JobWeight: 1})
	}
	cands = append(cands, TenantJob{Tenant: "quiet", TenantWeight: 1, Job: 9, JobWeight: 1})
	byTenant, _ := serveTJ(tl, cands, 400, 10)
	if r := byTenant["noisy"] / byTenant["quiet"]; r < 0.9 || r > 1.1 {
		t.Fatalf("flooding tenant got %.2fx the quiet tenant: %v", r, byTenant)
	}
}

func TestTwoLevelInnerJobWeights(t *testing.T) {
	// One tenant, two jobs at 3:1 job weights: the inner level alone
	// decides, reproducing flat FairShare behaviour.
	tl := NewTwoLevel()
	cands := []TenantJob{
		{Tenant: "t", TenantWeight: 1, Job: 1, JobWeight: 3},
		{Tenant: "t", TenantWeight: 1, Job: 2, JobWeight: 1},
	}
	_, byJob := serveTJ(tl, cands, 400, 5)
	if r := byJob[1] / byJob[2]; r < 2.8 || r > 3.2 {
		t.Fatalf("3:1 job weights served at ratio %.2f: %v", r, byJob)
	}
}

func TestTwoLevelForgetDropsEmptyTenant(t *testing.T) {
	tl := NewTwoLevel()
	cands := []TenantJob{
		{Tenant: "a", TenantWeight: 1, Job: 1, JobWeight: 1},
		{Tenant: "b", TenantWeight: 1, Job: 2, JobWeight: 1},
	}
	serveTJ(tl, cands, 100, 10)
	tl.Forget(1)
	if tl.tenants.Len() != 1 || len(tl.jobs) != 1 {
		t.Fatalf("tenant a not dropped with its last job: %d tenants, %d inner schedulers",
			tl.tenants.Len(), len(tl.jobs))
	}
	// Tenant a returns later: it must re-enter at the frontier, not claim
	// a catch-up deficit that starves b.
	cands[0].Job = 3
	byTenant, _ := serveTJ(tl, cands, 100, 10)
	if byTenant["b"] < 400 {
		t.Fatalf("incumbent starved by returning tenant: %v", byTenant)
	}
}

func TestTwoLevelPickEmpty(t *testing.T) {
	if k := NewTwoLevel().Pick(nil); k != -1 {
		t.Fatalf("pick on empty candidates = %d, want -1", k)
	}
}

func TestTwoLevelChargeUnknownJobIsNoop(t *testing.T) {
	tl := NewTwoLevel()
	tl.Charge(42, 100) // never Picked; must not panic or register state
	if tl.tenants.Len() != 0 || len(tl.owner) != 0 {
		t.Fatalf("charge on unknown job created state")
	}
}
