package protocol

import (
	"strings"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/tissue"
)

// TestWorkerReportRoundTrip checks the piggybacked telemetry report and
// the per-chunk batch timings survive the wire intact — and that a
// report-less request still decodes with a nil Report (the v4 worker
// compatibility the additive encoding promises).
func TestWorkerReportRoundTrip(t *testing.T) {
	tally, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()

	rep := &WorkerReport{
		PhotonsPerSec: 123456.5,
		ChunkSecs:     0.031,
		EncodeSecs:    0.0004,
		Holding:       3,
		Goroutines:    14,
		HeapBytes:     9 << 20,
		Version:       "v1.2.3-4-gabcdef",
	}
	sent := make(chan struct{})
	go func() {
		defer close(sent)
		c1.Send(&Message{Type: MsgTaskRequest, Request: &TaskRequest{
			KnownJobs: []uint64{4},
			Report:    rep,
			Batch: &ResultBatch{Groups: []BatchGroup{{
				JobID:     4,
				Chunks:    []int{7, 8},
				Elapsed:   62 * time.Millisecond,
				TallyData: mc.AppendTally(nil, tally),
				ChunkSecs: []float64{0.030, 0.032},
			}}},
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := m.Request.Report
	if got == nil {
		t.Fatal("report lost in transit")
	}
	if *got != *rep {
		t.Fatalf("report corrupted: got %+v want %+v", *got, *rep)
	}
	secs := m.Request.Batch.Groups[0].ChunkSecs
	if len(secs) != 2 || secs[0] != 0.030 || secs[1] != 0.032 {
		t.Fatalf("per-chunk timings corrupted: %v", secs)
	}

	// A plain v4-style request (no report, no timings) must still decode.
	// (Wait out the first sender: Conn.Send is not concurrency-safe.)
	<-sent
	go func() {
		c1.Send(&Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: []uint64{4}}})
	}()
	m, err = c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Request.Report != nil {
		t.Fatalf("absent report decoded as %+v", m.Request.Report)
	}
}

// TestRecvRejectsOversizedReportVersion: a hostile peer must not make the
// server retain an arbitrarily large build string per session.
func TestRecvRejectsOversizedReportVersion(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	go c1.Send(&Message{Type: MsgTaskRequest, Request: &TaskRequest{
		Report: &WorkerReport{Version: strings.Repeat("x", MaxReportVersion+1)},
	}})
	if _, err := c2.Recv(); err == nil {
		t.Fatal("oversized report version accepted")
	}
}

// TestRecvRejectsChunkSecsLengthMismatch: per-chunk timings must be
// parallel to the chunk list or absent — anything else is a malformed
// batch the reducer would misattribute.
func TestRecvRejectsChunkSecsLengthMismatch(t *testing.T) {
	tally, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	go c1.Send(&Message{Type: MsgResultBatch, Batch: &ResultBatch{Groups: []BatchGroup{{
		JobID:     1,
		Chunks:    []int{0, 1, 2},
		TallyData: mc.AppendTally(nil, tally),
		ChunkSecs: []float64{0.1, 0.2},
	}}}})
	if _, err := c2.Recv(); err == nil {
		t.Fatal("mismatched ChunkSecs length accepted")
	}
}
