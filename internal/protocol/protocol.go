// Package protocol defines the wire protocol between the DataManager server
// and worker clients: gob-encoded message envelopes over a stream transport.
// It mirrors the two-class architecture of the paper's Java platform — the
// DataManager assigns simulations, the Algorithm (worker) returns results.
package protocol

import (
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/mc"
)

// Version is the protocol version; mismatches are rejected at Hello time.
// Version 2 made workers job-agnostic: the job descriptor moved from the
// Welcome to the TaskAssign (a fleet serves many jobs concurrently, and a
// worker learns a job the first time it is handed one of its chunks), task
// requests advertise the jobs a worker already knows, and results that do
// not match a current assignment are rejected rather than reduced.
const Version = 2

// MsgType discriminates the envelope.
type MsgType int

const (
	// MsgHello is sent by a worker immediately after connecting.
	MsgHello MsgType = iota + 1
	// MsgWelcome is the server's reply to Hello; it carries the job.
	MsgWelcome
	// MsgTaskRequest asks the server for the next chunk.
	MsgTaskRequest
	// MsgTaskAssign hands a chunk to the worker.
	MsgTaskAssign
	// MsgTaskResult returns a computed chunk tally.
	MsgTaskResult
	// MsgResultAck confirms a result was accepted (or deduplicated).
	MsgResultAck
	// MsgNoWork tells a worker there is nothing to do right now.
	MsgNoWork
	// MsgError reports a fatal protocol or job error.
	MsgError
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgTaskRequest:
		return "task-request"
	case MsgTaskAssign:
		return "task-assign"
	case MsgTaskResult:
		return "task-result"
	case MsgResultAck:
		return "result-ack"
	case MsgNoWork:
		return "no-work"
	case MsgError:
		return "error"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Hello introduces a worker.
type Hello struct {
	Version int
	Name    string
	// Mflops is the worker's self-reported processing rate (Table 2); the
	// server records it for diagnostics and scheduling heuristics.
	Mflops float64
}

// Welcome greets a freshly connected worker. Jobs are delivered lazily via
// TaskAssign, so one worker session can serve many jobs.
type Welcome struct {
	Version    int
	ServerName string
}

// Job describes one complete simulation the fleet is computing.
type Job struct {
	ID      uint64
	Spec    mc.Spec
	Seed    uint64
	Streams int // total number of RNG streams (= number of chunks)
}

// MaxKnownJobs bounds the KnownJobs advertisement in a TaskRequest. Workers
// cache at most a few dozen descriptors, so anything beyond this is a
// malformed or hostile frame; Recv rejects it before the registry allocates
// per-entry bookkeeping.
const MaxKnownJobs = 4096

// TaskRequest asks the server for the next chunk of any job. KnownJobs is
// the authoritative list of job descriptors the worker currently holds:
// the server omits re-sending bulky specs for listed jobs and re-carries
// the descriptor for any job the worker has evicted from its bounded
// cache. A nil request (legacy callers) leaves the server's per-session
// record of shipped descriptors in place.
type TaskRequest struct {
	KnownJobs []uint64
}

// TaskAssign hands one chunk to a worker. Stream selects the chunk's
// dedicated RNG stream so results are reproducible and order-independent.
// Job carries the full descriptor the first time a session is handed a
// chunk of a job it has not advertised as known.
type TaskAssign struct {
	JobID   uint64
	ChunkID int
	Stream  int
	Photons int64
	Job     *Job
}

// TaskResult returns a chunk's partial tally.
type TaskResult struct {
	JobID   uint64
	ChunkID int
	Elapsed time.Duration
	Tally   *mc.Tally
}

// ResultAck confirms receipt of a result. Duplicate reports (e.g. after a
// timeout-triggered reassignment races the original worker) are acked with
// Duplicate=true and discarded by the reducer. Rejected reports that the
// result did not match any current assignment — a stale worker from a
// previous run, a cancelled job, or a forged JobID — and was not reduced;
// the session stays open so the worker can request fresh work.
type ResultAck struct {
	ChunkID   int
	Duplicate bool
	Rejected  bool
	Reason    string
}

// NoWork tells the worker to idle or exit.
type NoWork struct {
	// Done means the job is complete and the worker should disconnect.
	Done bool
	// RetryIn suggests when to ask again if the job is still running.
	RetryIn time.Duration
}

// Error is a fatal server-side report.
type Error struct {
	Msg string
}

// Message is the envelope travelling on the wire; exactly the field
// matching Type is populated.
type Message struct {
	Type    MsgType
	Hello   *Hello
	Welcome *Welcome
	Request *TaskRequest
	Assign  *TaskAssign
	Result  *TaskResult
	Ack     *ResultAck
	NoWork  *NoWork
	Error   *Error
}

// Conn wraps a stream with gob encode/decode of Messages. It is not safe
// for concurrent writers.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	c   io.Closer
}

// NewConn wraps rw (a net.Conn or an in-memory pipe) in the protocol codec.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{enc: gob.NewEncoder(rw), dec: gob.NewDecoder(rw), c: rw}
}

// Send encodes one message.
func (c *Conn) Send(m *Message) error {
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("protocol: send %v: %w", m.Type, err)
	}
	return nil
}

// Recv decodes the next message and validates its envelope: a missing
// type, an out-of-range type or an oversized KnownJobs advertisement are
// protocol errors, not panics or unbounded allocations further up the
// stack.
func (c *Conn) Recv() (*Message, error) {
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	if m.Type < MsgHello || m.Type > MsgError {
		return nil, fmt.Errorf("protocol: message with invalid type %d", int(m.Type))
	}
	if m.Request != nil && len(m.Request.KnownJobs) > MaxKnownJobs {
		return nil, fmt.Errorf("protocol: task request advertises %d known jobs, max %d",
			len(m.Request.KnownJobs), MaxKnownJobs)
	}
	return &m, nil
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.c.Close() }
