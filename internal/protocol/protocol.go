// Package protocol defines the wire protocol between the DataManager server
// and worker clients: gob-encoded message envelopes over a stream transport.
// It mirrors the two-class architecture of the paper's Java platform — the
// DataManager assigns simulations, the Algorithm (worker) returns results.
package protocol

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
)

// Version is the protocol version; mismatches are rejected at Hello time.
// Version 2 made workers job-agnostic: the job descriptor moved from the
// Welcome to the TaskAssign (a fleet serves many jobs concurrently, and a
// worker learns a job the first time it is handed one of its chunks), task
// requests advertise the jobs a worker already knows, and results that do
// not match a current assignment are rejected rather than reduced.
//
// Version 3 overhauled the result plane: workers pre-reduce consecutive
// chunk tallies per job and flush them as a ResultBatch (standalone or
// piggybacked on the next TaskRequest), tallies travel in the compact
// mc codec instead of per-result gob, task requests advertise the
// computed-but-unflushed chunks they are still Holding, jobs carry the
// multi-core fan width, and acks come back per chunk in a BatchAck.
//
// Version 4 added precision-targeted jobs: a job descriptor may carry a
// Target and an open-ended stream space (Streams == 0 — the server issues
// chunks until the target's relative standard error is met, so there is
// no predetermined chunk count), and chunk tallies of such jobs travel
// with their moment accumulators (mc tally codec version 2). A v3 worker
// would reject the open-ended stream indices and strip the moments, so
// the handshake requires v4.
const Version = 4

// MsgType discriminates the envelope.
type MsgType int

const (
	// MsgHello is sent by a worker immediately after connecting.
	MsgHello MsgType = iota + 1
	// MsgWelcome is the server's reply to Hello; it carries the job.
	MsgWelcome
	// MsgTaskRequest asks the server for the next chunk.
	MsgTaskRequest
	// MsgTaskAssign hands a chunk to the worker.
	MsgTaskAssign
	// MsgTaskResult returns a computed chunk tally.
	MsgTaskResult
	// MsgResultAck confirms a result was accepted (or deduplicated).
	MsgResultAck
	// MsgNoWork tells a worker there is nothing to do right now.
	MsgNoWork
	// MsgError reports a fatal protocol or job error.
	MsgError
	// MsgResultBatch returns several pre-reduced chunk tallies at once.
	MsgResultBatch
	// MsgBatchAck acknowledges a batch with one ResultAck per chunk.
	MsgBatchAck
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgTaskRequest:
		return "task-request"
	case MsgTaskAssign:
		return "task-assign"
	case MsgTaskResult:
		return "task-result"
	case MsgResultAck:
		return "result-ack"
	case MsgNoWork:
		return "no-work"
	case MsgError:
		return "error"
	case MsgResultBatch:
		return "result-batch"
	case MsgBatchAck:
		return "batch-ack"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Hello introduces a worker.
type Hello struct {
	Version int
	Name    string
	// Mflops is the worker's self-reported processing rate (Table 2); the
	// server records it for diagnostics and scheduling heuristics.
	Mflops float64
}

// Welcome greets a freshly connected worker. Jobs are delivered lazily via
// TaskAssign, so one worker session can serve many jobs.
type Welcome struct {
	Version    int
	ServerName string
}

// Job describes one complete simulation the fleet is computing.
type Job struct {
	ID   uint64
	Spec mc.Spec
	Seed uint64
	// Streams is the total number of RNG streams (= number of chunks) of a
	// fixed-count job. Zero means the job is open-ended — a
	// precision-targeted job issues chunks (streams 0, 1, 2, …) until its
	// Target is met, so workers must not bound the stream index.
	Streams int
	// Fan is the job-level multi-core decomposition: each chunk is split
	// across Fan jump-separated sub-streams (mc.RunStreamFan) so a worker
	// can compute one chunk on all its cores. Fan is part of the job's
	// identity — a chunk tally is a pure function of (Seed, Stream, Fan),
	// never of the worker's core count — and ≤ 1 means the legacy
	// single-stream chunk.
	Fan int
	// Target, when set, is the precision goal of an open-ended job
	// (informational for workers — the server owns the stopping rule; the
	// Spec's TrackMoments flag is what makes chunk tallies carry the
	// required moments).
	Target *mc.Target
}

// MaxKnownJobs bounds the KnownJobs advertisement in a TaskRequest. Workers
// cache at most a few dozen descriptors, so anything beyond this is a
// malformed or hostile frame; Recv rejects it before the registry allocates
// per-entry bookkeeping.
const MaxKnownJobs = 4096

// TaskRequest asks the server for the next chunk of any job. KnownJobs is
// the authoritative list of job descriptors the worker currently holds:
// the server omits re-sending bulky specs for listed jobs and re-carries
// the descriptor for any job the worker has evicted from its bounded
// cache. A nil request (legacy callers) leaves the server's per-session
// record of shipped descriptors in place.
//
// Holding is the equally authoritative list of chunks the worker has
// computed but not yet flushed: the server keeps those assignments alive
// instead of treating the new request as abandoning them. Any assignment
// of the session that appears in neither Holding nor the piggybacked
// Batch is abandoned and requeued. Batch, when set, flushes the worker's
// pre-reduced results on the same round trip; the per-chunk acks ride
// back on the reply's BatchAck.
// Want, when > 1, asks the server to grant up to that many chunks of one
// job in a single TaskAssign (the Extra grants), amortising the
// request/assign round trip the way ResultBatch amortises the result
// path. 0 or 1 keeps the one-chunk-per-round-trip behaviour.
// Report, when set, piggybacks the worker's self-measured telemetry (see
// WorkerReport). All of the telemetry fields are additive: gob leaves
// absent fields zero, so a v4 peer that predates them interoperates
// unchanged — which is why Version is still 4.
type TaskRequest struct {
	KnownJobs []uint64
	Holding   []ChunkRef
	Batch     *ResultBatch
	Want      int
	Report    *WorkerReport
}

// MaxReportVersion bounds the WorkerReport build-string length; Recv
// rejects longer ones (a version string is tens of bytes, not kilobytes).
const MaxReportVersion = 128

// WorkerReport is a worker's compact self-portrait, piggybacked on a
// TaskRequest so the server's per-session profile reflects what the
// worker measured rather than only what the server can infer from ack
// timing. Workers attach it at a gentle cadence (not every request), so
// any single report may be slightly stale; the server folds each one into
// its session profile as it arrives.
type WorkerReport struct {
	// PhotonsPerSec is the worker's EWMA of kernel throughput.
	PhotonsPerSec float64
	// ChunkSecs / EncodeSecs are EWMAs of per-chunk compute and
	// batch-encode wall time.
	ChunkSecs  float64
	EncodeSecs float64
	// Holding is the worker's pre-reduction buffer depth at send time.
	Holding int
	// Goroutines and HeapBytes are Go runtime stats (sampled, rate-limited
	// worker-side — ReadMemStats is not free).
	Goroutines int
	HeapBytes  uint64
	// Version is the worker's build/version string (obs.Version).
	Version string
}

// ChunkRef names one chunk of one job.
type ChunkRef struct {
	JobID   uint64
	ChunkID int
}

// TaskAssign hands one or more chunks of one job to a worker. Stream
// selects each chunk's dedicated RNG stream so results are reproducible
// and order-independent. Job carries the full descriptor the first time a
// session is handed a chunk of a job it has not advertised as known.
// Extra carries further grants of the same job when the request asked for
// more than one (TaskRequest.Want); every granted chunk has its own
// outstanding entry and timeout clock on the server.
type TaskAssign struct {
	JobID   uint64
	ChunkID int
	Stream  int
	Photons int64
	Job     *Job
	Extra   []ChunkGrant
}

// ChunkGrant is one additional chunk riding a multi-chunk TaskAssign.
type ChunkGrant struct {
	ChunkID int
	Stream  int
	Photons int64
}

// MaxGrantChunks bounds the chunks one TaskAssign may grant (first plus
// Extra); Recv rejects larger frames.
const MaxGrantChunks = 64

// TaskResult returns a chunk's partial tally. Since protocol v3 the
// batched ResultBatch is the workers' primary result path; TaskResult
// remains for single-result callers and tests.
type TaskResult struct {
	JobID   uint64
	ChunkID int
	Elapsed time.Duration
	Tally   *mc.Tally
}

// MaxBatchChunks bounds the total chunks covered by one ResultBatch;
// larger frames are malformed or hostile and rejected by Recv before the
// registry allocates per-chunk bookkeeping.
const MaxBatchChunks = 4096

// BatchGroup is one job's slice of a ResultBatch: the covered chunk list
// and the worker-side pre-reduction of those chunks' tallies, encoded with
// the compact mc codec (mc.AppendTally). Carrying bytes instead of a
// *mc.Tally keeps the envelope's gob cost flat and lets the server decode
// off the registry lock into a reusable scratch tally.
// ChunkSecs, when non-empty, is the per-chunk compute wall time parallel
// to Chunks — the worker-side timing that lets the server split Elapsed
// into true per-chunk spans instead of assuming a uniform share. Additive
// (v4 workers that omit it still reduce fine); Recv requires its length
// to be zero or exactly len(Chunks).
type BatchGroup struct {
	JobID     uint64
	Chunks    []int
	Elapsed   time.Duration // summed compute time of the covered chunks
	TallyData []byte
	ChunkSecs []float64
}

// ResultBatch carries one or more pre-reduced groups. Groups for distinct
// jobs let a worker interleaving many jobs still flush on one round trip.
type ResultBatch struct {
	Groups []BatchGroup
}

// NumChunks returns the total chunks covered by the batch.
func (b *ResultBatch) NumChunks() int {
	n := 0
	for i := range b.Groups {
		n += len(b.Groups[i].Chunks)
	}
	return n
}

// BatchAck acknowledges a ResultBatch with exactly one ResultAck per
// covered chunk, in batch order — the per-chunk duplicate/rejected
// semantics of the single-result path are unchanged by batching.
type BatchAck struct {
	Acks []ResultAck
}

// ResultAck confirms receipt of a result. Duplicate reports (e.g. after a
// timeout-triggered reassignment races the original worker) are acked with
// Duplicate=true and discarded by the reducer. Rejected reports that the
// result did not match any current assignment — a stale worker from a
// previous run, a cancelled job, or a forged JobID — and was not reduced;
// the session stays open so the worker can request fresh work.
type ResultAck struct {
	// JobID disambiguates acks inside a multi-job BatchAck; single-result
	// acks set it too.
	JobID     uint64
	ChunkID   int
	Duplicate bool
	Rejected  bool
	Reason    string
}

// NoWork tells the worker to idle or exit.
type NoWork struct {
	// Done means the job is complete and the worker should disconnect.
	Done bool
	// RetryIn suggests when to ask again if the job is still running.
	RetryIn time.Duration
}

// Error is a fatal server-side report.
type Error struct {
	Msg string
}

// Message is the envelope travelling on the wire; the field matching Type
// is populated. One exception to the one-field rule: a TaskAssign or
// NoWork reply to a TaskRequest that piggybacked a Batch also carries the
// BatchAck for it.
type Message struct {
	Type     MsgType
	Hello    *Hello
	Welcome  *Welcome
	Request  *TaskRequest
	Assign   *TaskAssign
	Result   *TaskResult
	Ack      *ResultAck
	NoWork   *NoWork
	Error    *Error
	Batch    *ResultBatch
	BatchAck *BatchAck
}

// ConnMetrics counts frames and bytes by direction and message type on
// behalf of a Conn. The per-type counters are resolved once at
// construction, so the per-frame cost on an instrumented connection is
// two atomic adds; an uninstrumented Conn pays only a nil check. One
// ConnMetrics may be shared by every connection of a process (the
// counters are fleet-wide totals, not per-session series — per-session
// metric labels would be unbounded cardinality).
type ConnMetrics struct {
	sendFrames [MsgBatchAck + 1]*obs.Counter
	recvFrames [MsgBatchAck + 1]*obs.Counter
	sendBytes  [MsgBatchAck + 1]*obs.Counter
	recvBytes  [MsgBatchAck + 1]*obs.Counter
}

// NewConnMetrics registers <subsystem>_frames_total and
// <subsystem>_bytes_total (labels: dir, type) on reg and pre-resolves a
// counter per direction and message type. Registration is idempotent:
// calling it again with the same subsystem returns a view onto the same
// counters.
func NewConnMetrics(reg *obs.Registry, subsystem string) *ConnMetrics {
	frames := reg.CounterVec(subsystem+"_frames_total",
		"Protocol frames by direction and message type.", "dir", "type")
	bytes := reg.CounterVec(subsystem+"_bytes_total",
		"Protocol bytes by direction and message type.", "dir", "type")
	m := &ConnMetrics{}
	for t := MsgHello; t <= MsgBatchAck; t++ {
		m.sendFrames[t] = frames.With("send", t.String())
		m.recvFrames[t] = frames.With("recv", t.String())
		m.sendBytes[t] = bytes.With("send", t.String())
		m.recvBytes[t] = bytes.With("recv", t.String())
	}
	return m
}

// countWriter / countReader observe the raw transport byte streams so
// Send/Recv can attribute per-message byte deltas to the message type.
// The counts are read only from the same goroutine that drives the
// codec half, so plain fields suffice (a Conn is half-duplex per side:
// one goroutine sends, one receives).
type countWriter struct {
	w io.Writer
	n uint64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += uint64(n)
	return n, err
}

type countReader struct {
	r io.Reader
	n uint64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += uint64(n)
	return n, err
}

// Conn wraps a stream with gob encode/decode of Messages. It is not safe
// for concurrent writers.
type Conn struct {
	enc *gob.Encoder
	dec *gob.Decoder
	bw  *bufio.Writer
	cw  *countWriter
	cr  *countReader
	met *ConnMetrics
	c   io.Closer
}

// NewConn wraps rw (a net.Conn or an in-memory pipe) in the protocol codec.
// Writes are buffered and flushed once per Send: gob emits a message as
// several small writes (type sections, then the value), and coalescing them
// halves the rendezvous count on synchronous transports like net.Pipe and
// the syscall count on TCP.
func NewConn(rw io.ReadWriteCloser) *Conn {
	cw := &countWriter{w: rw}
	cr := &countReader{r: rw}
	bw := bufio.NewWriterSize(cw, 16<<10)
	return &Conn{enc: gob.NewEncoder(bw), dec: gob.NewDecoder(cr), bw: bw, cw: cw, cr: cr, c: rw}
}

// SetMetrics attaches frame/byte accounting to the connection. Call it
// before the first Send/Recv; nil detaches.
func (c *Conn) SetMetrics(m *ConnMetrics) { c.met = m }

// Send encodes one message and flushes it to the transport.
func (c *Conn) Send(m *Message) error {
	before := c.cw.n
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("protocol: send %v: %w", m.Type, err)
	}
	if err := c.bw.Flush(); err != nil {
		return fmt.Errorf("protocol: send %v: %w", m.Type, err)
	}
	if c.met != nil && m.Type >= MsgHello && m.Type <= MsgBatchAck {
		c.met.sendFrames[m.Type].Inc()
		c.met.sendBytes[m.Type].Add(c.cw.n - before)
	}
	return nil
}

// Recv decodes the next message and validates its envelope: a missing
// type, an out-of-range type, an oversized KnownJobs/Holding advertisement
// or an oversized batch are protocol errors, not panics or unbounded
// allocations further up the stack.
func (c *Conn) Recv() (*Message, error) {
	before := c.cr.n
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	if m.Type < MsgHello || m.Type > MsgBatchAck {
		return nil, fmt.Errorf("protocol: message with invalid type %d", int(m.Type))
	}
	if c.met != nil {
		c.met.recvFrames[m.Type].Inc()
		c.met.recvBytes[m.Type].Add(c.cr.n - before)
	}
	if m.Request != nil {
		if len(m.Request.KnownJobs) > MaxKnownJobs {
			return nil, fmt.Errorf("protocol: task request advertises %d known jobs, max %d",
				len(m.Request.KnownJobs), MaxKnownJobs)
		}
		if len(m.Request.Holding) > MaxBatchChunks {
			return nil, fmt.Errorf("protocol: task request holds %d chunks, max %d",
				len(m.Request.Holding), MaxBatchChunks)
		}
		if rep := m.Request.Report; rep != nil && len(rep.Version) > MaxReportVersion {
			return nil, fmt.Errorf("protocol: worker report version string is %d bytes, max %d",
				len(rep.Version), MaxReportVersion)
		}
	}
	if m.Assign != nil && len(m.Assign.Extra) > MaxGrantChunks-1 {
		return nil, fmt.Errorf("protocol: task assign grants %d chunks, max %d",
			1+len(m.Assign.Extra), MaxGrantChunks)
	}
	if m.BatchAck != nil && len(m.BatchAck.Acks) > MaxBatchChunks {
		return nil, fmt.Errorf("protocol: batch ack covers %d chunks, max %d",
			len(m.BatchAck.Acks), MaxBatchChunks)
	}
	for _, b := range []*ResultBatch{m.Batch, batchOf(m.Request)} {
		if b == nil {
			continue
		}
		if n := b.NumChunks(); n > MaxBatchChunks {
			return nil, fmt.Errorf("protocol: result batch covers %d chunks, max %d", n, MaxBatchChunks)
		}
		for i := range b.Groups {
			if len(b.Groups[i].Chunks) == 0 {
				return nil, fmt.Errorf("protocol: result batch group %d covers no chunks", i)
			}
			if ns := len(b.Groups[i].ChunkSecs); ns != 0 && ns != len(b.Groups[i].Chunks) {
				return nil, fmt.Errorf("protocol: result batch group %d has %d chunk timings for %d chunks",
					i, ns, len(b.Groups[i].Chunks))
			}
		}
	}
	return &m, nil
}

func batchOf(r *TaskRequest) *ResultBatch {
	if r == nil {
		return nil
	}
	return r.Batch
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.c.Close() }
