package protocol

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestConnMetricsAccounting pins the frame/byte bookkeeping: every frame
// sent is counted once under its type on the sender and once on the
// receiver, and the byte totals on both sides of a loss-free pipe agree.
func TestConnMetricsAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	sm := NewConnMetrics(reg, "client")
	rm := NewConnMetrics(reg, "server")
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	c1.SetMetrics(sm)
	c2.SetMetrics(rm)

	msgs := []*Message{
		{Type: MsgHello, Hello: &Hello{Version: Version, Name: "w0", Mflops: 50}},
		{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: []uint64{1, 2}}},
		{Type: MsgTaskRequest, Request: &TaskRequest{Want: 4}},
		{Type: MsgNoWork, NoWork: &NoWork{Done: true}},
	}
	errc := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := c1.Send(m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for range msgs {
		if _, err := c2.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}

	if got := sm.sendFrames[MsgTaskRequest].Value(); got != 2 {
		t.Fatalf("client sent task-request frames = %d, want 2", got)
	}
	if got := sm.sendFrames[MsgHello].Value(); got != 1 {
		t.Fatalf("client sent hello frames = %d, want 1", got)
	}
	if got := rm.recvFrames[MsgNoWork].Value(); got != 1 {
		t.Fatalf("server received no-work frames = %d, want 1", got)
	}
	var sent, recv uint64
	for mt := MsgHello; mt <= MsgBatchAck; mt++ {
		sent += sm.sendBytes[mt].Value()
		recv += rm.recvBytes[mt].Value()
		if sm.recvBytes[mt].Value() != 0 || rm.sendBytes[mt].Value() != 0 {
			t.Fatalf("bytes counted in the unused direction for %v", mt)
		}
	}
	if sent == 0 || sent != recv {
		t.Fatalf("byte totals disagree: sent %d, received %d", sent, recv)
	}

	text := &strings.Builder{}
	if err := reg.WriteText(text); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`client_frames_total{dir="send",type="hello"} 1`,
		`server_frames_total{dir="recv",type="task-request"} 2`,
	} {
		if !strings.Contains(text.String(), line) {
			t.Fatalf("exposition missing %q in:\n%s", line, text.String())
		}
	}
}

// TestConnMetricsSharedAcrossConns checks the intended deployment shape:
// one ConnMetrics shared by many connections accumulates fleet totals,
// and re-registering the same subsystem resolves onto the same counters.
func TestConnMetricsSharedAcrossConns(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewConnMetrics(reg, "fleet")
	m2 := NewConnMetrics(reg, "fleet")
	for i := 0; i < 2; i++ {
		c1, c2 := pipePair()
		c1.SetMetrics(m)
		c2.SetMetrics(m2)
		errc := make(chan error, 1)
		go func() {
			errc <- c1.Send(&Message{Type: MsgHello, Hello: &Hello{Version: Version}})
		}()
		if _, err := c2.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		c1.Close()
		c2.Close()
	}
	if got := m.sendFrames[MsgHello].Value(); got != 2 {
		t.Fatalf("shared metrics counted %d hello sends, want 2", got)
	}
	if got := m.recvFrames[MsgHello].Value(); got != 2 {
		t.Fatalf("idempotent re-registration split the counters: recv = %d, want 2", got)
	}
}
