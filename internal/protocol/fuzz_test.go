package protocol

import (
	"bytes"
	"io"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

// readCloser adapts a bytes.Reader to the ReadWriteCloser Conn expects;
// writes vanish (the fuzzer only exercises the decode direction).
type readCloser struct{ *bytes.Reader }

func (readCloser) Write(p []byte) (int, error) { return len(p), nil }
func (readCloser) Close() error                { return nil }

// encodeMessages gob-encodes a sequence of messages into one wire blob.
func encodeMessages(tb testing.TB, msgs ...*Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	c := &Conn{}
	*c = *NewConn(struct {
		io.Reader
		io.Writer
		io.Closer
	}{&buf, &buf, io.NopCloser(nil)})
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func seedMessages(tb testing.TB) []*Message {
	tb.Helper()
	spec := mc.NewSpec(
		tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4},
	)
	tally, err := mc.Run(&mc.Config{Model: tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)}, 50, 1)
	if err != nil {
		tb.Fatal(err)
	}
	return []*Message{
		{Type: MsgHello, Hello: &Hello{Version: Version, Name: "w0", Mflops: 42}},
		{Type: MsgWelcome, Welcome: &Welcome{Version: Version, ServerName: "srv"}},
		{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: []uint64{1, 2, 3}}},
		{Type: MsgTaskAssign, Assign: &TaskAssign{
			JobID: 9, ChunkID: 4, Stream: 4, Photons: 1000,
			Job: &Job{ID: 9, Spec: *spec, Seed: 77, Streams: 8},
		}},
		{Type: MsgTaskResult, Result: &TaskResult{JobID: 9, ChunkID: 4, Elapsed: time.Second, Tally: tally}},
		{Type: MsgResultAck, Ack: &ResultAck{ChunkID: 4, Duplicate: true, Reason: "dup"}},
		{Type: MsgNoWork, NoWork: &NoWork{Done: true, RetryIn: time.Minute}},
		{Type: MsgError, Error: &Error{Msg: "boom"}},
	}
}

// FuzzDecodeMessage throws arbitrary bytes at the protocol v2 wire decoder:
// valid frames, truncated gobs, bit-flipped envelopes and oversized
// KnownJobs advertisements. The decoder must never panic, and every
// message it does accept must satisfy the envelope invariants Recv
// promises (a known type, a bounded KnownJobs list).
func FuzzDecodeMessage(f *testing.F) {
	msgs := seedMessages(f)

	// Seed: each message alone, the whole conversation, a truncated stream
	// and an oversized KnownJobs frame.
	for _, m := range msgs {
		f.Add(encodeMessages(f, m))
	}
	all := encodeMessages(f, msgs...)
	f.Add(all)
	f.Add(all[:len(all)/3])
	f.Add(all[:len(all)-1])
	big := make([]uint64, MaxKnownJobs+1)
	f.Add(encodeMessages(f, &Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: big}}))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(readCloser{bytes.NewReader(data)})
		// Bound the loop: a hostile stream must not decode forever.
		for i := 0; i < 64; i++ {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Type < MsgHello || m.Type > MsgError {
				t.Fatalf("Recv accepted invalid type %d", int(m.Type))
			}
			if m.Request != nil && len(m.Request.KnownJobs) > MaxKnownJobs {
				t.Fatalf("Recv accepted %d known jobs", len(m.Request.KnownJobs))
			}
		}
	})
}

// TestRecvRejectsOversizedKnownJobs pins the new envelope validation
// outside the fuzzer, so a plain `go test` covers it too.
func TestRecvRejectsOversizedKnownJobs(t *testing.T) {
	big := make([]uint64, MaxKnownJobs+1)
	data := encodeMessages(t, &Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: big}})
	c := NewConn(readCloser{bytes.NewReader(data)})
	if _, err := c.Recv(); err == nil {
		t.Fatal("oversized KnownJobs accepted")
	}

	ok := encodeMessages(t, &Message{Type: MsgTaskRequest,
		Request: &TaskRequest{KnownJobs: make([]uint64, MaxKnownJobs)}})
	c = NewConn(readCloser{bytes.NewReader(ok)})
	if _, err := c.Recv(); err != nil {
		t.Fatalf("at-limit KnownJobs rejected: %v", err)
	}
}

// TestRecvRejectsInvalidType covers the type-range validation.
func TestRecvRejectsInvalidType(t *testing.T) {
	for _, typ := range []MsgType{0, MsgError + 1, -3} {
		data := encodeMessages(t, &Message{Type: typ})
		c := NewConn(readCloser{bytes.NewReader(data)})
		if _, err := c.Recv(); err == nil {
			t.Fatalf("type %d accepted", int(typ))
		}
	}
}
