package protocol

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

// updateCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzDecodeMessage with the current wire encoding:
//
//	go test ./internal/protocol -run TestCommittedCorpus -update-corpus
//
// Run it whenever the protocol gains message shapes worth seeding (the v3
// batch frames were added this way) and commit the diff.
var updateCorpus = flag.Bool("update-corpus", false, "rewrite committed fuzz corpus seeds")

// readCloser adapts a bytes.Reader to the ReadWriteCloser Conn expects;
// writes vanish (the fuzzer only exercises the decode direction).
type readCloser struct{ *bytes.Reader }

func (readCloser) Write(p []byte) (int, error) { return len(p), nil }
func (readCloser) Close() error                { return nil }

// encodeMessages gob-encodes a sequence of messages into one wire blob.
func encodeMessages(tb testing.TB, msgs ...*Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	c := &Conn{}
	*c = *NewConn(struct {
		io.Reader
		io.Writer
		io.Closer
	}{&buf, &buf, io.NopCloser(nil)})
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

func seedMessages(tb testing.TB) []*Message {
	tb.Helper()
	spec := mc.NewSpec(
		tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4},
	)
	tally, err := mc.Run(&mc.Config{Model: tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5)}, 50, 1)
	if err != nil {
		tb.Fatal(err)
	}
	compact := mc.AppendTally(nil, tally)
	// A moments-carrying chunk of a precision-targeted job (tally codec
	// v2, open-ended descriptor).
	precSpec := *spec
	precSpec.TrackMoments = true
	momTally, err := mc.Run(&mc.Config{
		Model: tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5), TrackMoments: true}, 50, 2)
	if err != nil {
		tb.Fatal(err)
	}
	momCompact := mc.AppendTally(nil, momTally)
	return []*Message{
		{Type: MsgHello, Hello: &Hello{Version: Version, Name: "w0", Mflops: 42}},
		{Type: MsgWelcome, Welcome: &Welcome{Version: Version, ServerName: "srv"}},
		{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: []uint64{1, 2, 3}}},
		{Type: MsgTaskAssign, Assign: &TaskAssign{
			JobID: 9, ChunkID: 4, Stream: 4, Photons: 1000,
			Job: &Job{ID: 9, Spec: *spec, Seed: 77, Streams: 8, Fan: 4},
		}},
		{Type: MsgTaskResult, Result: &TaskResult{JobID: 9, ChunkID: 4, Elapsed: time.Second, Tally: tally}},
		{Type: MsgResultAck, Ack: &ResultAck{JobID: 9, ChunkID: 4, Duplicate: true, Reason: "dup"}},
		{Type: MsgNoWork, NoWork: &NoWork{Done: true, RetryIn: time.Minute}},
		{Type: MsgError, Error: &Error{Msg: "boom"}},
		// Protocol v3 frames: a standalone multi-job batch, a task request
		// piggybacking a flush while holding other chunks, and a per-chunk
		// batch ack.
		{Type: MsgResultBatch, Batch: &ResultBatch{Groups: []BatchGroup{
			{JobID: 9, Chunks: []int{4, 5, 6}, Elapsed: 3 * time.Second, TallyData: compact},
			{JobID: 12, Chunks: []int{0}, TallyData: compact},
		}}},
		{Type: MsgTaskRequest, Request: &TaskRequest{
			KnownJobs: []uint64{9, 12},
			Holding:   []ChunkRef{{JobID: 12, ChunkID: 1}},
			Batch: &ResultBatch{Groups: []BatchGroup{
				{JobID: 9, Chunks: []int{7}, TallyData: compact},
			}},
		}},
		{Type: MsgBatchAck, BatchAck: &BatchAck{Acks: []ResultAck{
			{JobID: 9, ChunkID: 4},
			{JobID: 9, ChunkID: 5, Duplicate: true},
			{JobID: 12, ChunkID: 0, Rejected: true, Reason: "stale"},
		}}},
		// Protocol v4 frames: an open-ended precision-job descriptor
		// (Streams 0, Target set) and its moments-carrying batch result.
		{Type: MsgTaskAssign, Assign: &TaskAssign{
			JobID: 21, ChunkID: 0, Stream: 0, Photons: 500,
			Job: &Job{ID: 21, Spec: precSpec, Seed: 19, Streams: 0,
				Target: &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.01,
					MinPhotons: 8000, MaxPhotons: 1 << 20}},
		}},
		{Type: MsgResultBatch, Batch: &ResultBatch{Groups: []BatchGroup{
			{JobID: 21, Chunks: []int{0}, Elapsed: time.Second, TallyData: momCompact},
		}}},
	}
}

// FuzzDecodeMessage throws arbitrary bytes at the protocol v3 wire decoder:
// valid frames (including batched results and piggybacked flushes),
// truncated gobs, bit-flipped envelopes and oversized KnownJobs/Holding/
// batch advertisements. The decoder must never panic, and every message it
// does accept must satisfy the envelope invariants Recv promises (a known
// type, bounded advertisement and batch sizes, no empty batch groups).
func FuzzDecodeMessage(f *testing.F) {
	msgs := seedMessages(f)

	// Seed: each message alone, the whole conversation, a truncated stream
	// and oversized KnownJobs/batch frames.
	for _, m := range msgs {
		f.Add(encodeMessages(f, m))
	}
	all := encodeMessages(f, msgs...)
	f.Add(all)
	f.Add(all[:len(all)/3])
	f.Add(all[:len(all)-1])
	big := make([]uint64, MaxKnownJobs+1)
	f.Add(encodeMessages(f, &Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: big}}))
	bigChunks := make([]int, MaxBatchChunks+1)
	f.Add(encodeMessages(f, &Message{Type: MsgResultBatch, Batch: &ResultBatch{
		Groups: []BatchGroup{{JobID: 1, Chunks: bigChunks}}}}))
	f.Add(encodeMessages(f, &Message{Type: MsgResultBatch, Batch: &ResultBatch{
		Groups: []BatchGroup{{JobID: 1}}}})) // empty group
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(readCloser{bytes.NewReader(data)})
		// Bound the loop: a hostile stream must not decode forever.
		for i := 0; i < 64; i++ {
			m, err := c.Recv()
			if err != nil {
				return
			}
			if m.Type < MsgHello || m.Type > MsgBatchAck {
				t.Fatalf("Recv accepted invalid type %d", int(m.Type))
			}
			if m.Request != nil {
				if len(m.Request.KnownJobs) > MaxKnownJobs {
					t.Fatalf("Recv accepted %d known jobs", len(m.Request.KnownJobs))
				}
				if len(m.Request.Holding) > MaxBatchChunks {
					t.Fatalf("Recv accepted %d held chunks", len(m.Request.Holding))
				}
			}
			for _, b := range []*ResultBatch{m.Batch, batchOf(m.Request)} {
				if b == nil {
					continue
				}
				if b.NumChunks() > MaxBatchChunks {
					t.Fatalf("Recv accepted a %d-chunk batch", b.NumChunks())
				}
				for _, g := range b.Groups {
					if len(g.Chunks) == 0 {
						t.Fatal("Recv accepted an empty batch group")
					}
				}
			}
			if m.Assign != nil && 1+len(m.Assign.Extra) > MaxGrantChunks {
				t.Fatalf("Recv accepted a %d-chunk grant", 1+len(m.Assign.Extra))
			}
			if m.BatchAck != nil && len(m.BatchAck.Acks) > MaxBatchChunks {
				t.Fatalf("Recv accepted a %d-ack batch ack", len(m.BatchAck.Acks))
			}
		}
	})
}

// corpusSeeds names the committed corpus entries and their frame builders.
// They overlap FuzzDecodeMessage's f.Add seeds on purpose: the committed
// files make the interesting shapes available to `go test -fuzz` runs from
// a clean cache (the CI smoke job) without re-running the seed builders.
func corpusSeeds(tb testing.TB) map[string][]byte {
	msgs := seedMessages(tb)
	all := encodeMessages(tb, msgs...)
	seeds := map[string][]byte{
		"hello":        encodeMessages(tb, msgs[0]),
		"task_request": encodeMessages(tb, msgs[2]),
		"truncated":    all[:len(all)/3],
	}
	big := make([]uint64, MaxKnownJobs+1)
	seeds["oversized_knownjobs"] = encodeMessages(tb,
		&Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: big}})
	// Protocol v3/v4 frames.
	for _, m := range msgs {
		switch {
		case m.Type == MsgResultBatch && seeds["result_batch_v3"] == nil:
			seeds["result_batch_v3"] = encodeMessages(tb, m)
		case m.Type == MsgBatchAck:
			seeds["batch_ack_v3"] = encodeMessages(tb, m)
		case m.Type == MsgTaskRequest && m.Request != nil && m.Request.Batch != nil:
			seeds["piggyback_request_v3"] = encodeMessages(tb, m)
		case m.Type == MsgTaskAssign && m.Assign != nil && m.Assign.Job != nil && m.Assign.Job.Target != nil:
			seeds["precision_assign_v4"] = encodeMessages(tb, m)
		}
	}
	// The last ResultBatch in the conversation is the moments-carrying v4
	// one (tally codec version 2).
	for i := len(msgs) - 1; i >= 0; i-- {
		if msgs[i].Type == MsgResultBatch {
			seeds["moments_batch_v4"] = encodeMessages(tb, msgs[i])
			break
		}
	}
	seeds["empty_batch_group_v3"] = encodeMessages(tb,
		&Message{Type: MsgResultBatch, Batch: &ResultBatch{Groups: []BatchGroup{{JobID: 1}}}})
	return seeds
}

// TestCommittedCorpusCoversV3 keeps the committed seed corpus in sync with
// the protocol: every named seed must exist on disk (regenerate with
// -update-corpus), and the valid ones must still decode.
func TestCommittedCorpusCoversV3(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeMessage")
	for name, data := range corpusSeeds(t) {
		path := filepath.Join(dir, name)
		if *updateCorpus {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("rewrote %s (%d frame bytes)", path, len(data))
			continue
		}
		if _, err := os.Stat(path); err != nil {
			t.Errorf("corpus seed %s missing (run with -update-corpus): %v", name, err)
		}
	}
}

// TestRecvRejectsOversizedKnownJobs pins the new envelope validation
// outside the fuzzer, so a plain `go test` covers it too.
func TestRecvRejectsOversizedKnownJobs(t *testing.T) {
	big := make([]uint64, MaxKnownJobs+1)
	data := encodeMessages(t, &Message{Type: MsgTaskRequest, Request: &TaskRequest{KnownJobs: big}})
	c := NewConn(readCloser{bytes.NewReader(data)})
	if _, err := c.Recv(); err == nil {
		t.Fatal("oversized KnownJobs accepted")
	}

	ok := encodeMessages(t, &Message{Type: MsgTaskRequest,
		Request: &TaskRequest{KnownJobs: make([]uint64, MaxKnownJobs)}})
	c = NewConn(readCloser{bytes.NewReader(ok)})
	if _, err := c.Recv(); err != nil {
		t.Fatalf("at-limit KnownJobs rejected: %v", err)
	}
}

// TestRecvRejectsInvalidType covers the type-range validation.
func TestRecvRejectsInvalidType(t *testing.T) {
	for _, typ := range []MsgType{0, MsgBatchAck + 1, -3} {
		data := encodeMessages(t, &Message{Type: typ})
		c := NewConn(readCloser{bytes.NewReader(data)})
		if _, err := c.Recv(); err == nil {
			t.Fatalf("type %d accepted", int(typ))
		}
	}
}

// TestRecvRejectsOversizedBatch covers the batch bounds for standalone and
// piggybacked batches, plus the no-empty-groups rule.
func TestRecvRejectsOversizedBatch(t *testing.T) {
	big := &ResultBatch{Groups: []BatchGroup{{JobID: 1, Chunks: make([]int, MaxBatchChunks+1)}}}
	for name, m := range map[string]*Message{
		"standalone": {Type: MsgResultBatch, Batch: big},
		"piggyback":  {Type: MsgTaskRequest, Request: &TaskRequest{Batch: big}},
		"holding": {Type: MsgTaskRequest,
			Request: &TaskRequest{Holding: make([]ChunkRef, MaxBatchChunks+1)}},
		"empty-group": {Type: MsgResultBatch,
			Batch: &ResultBatch{Groups: []BatchGroup{{JobID: 1}}}},
		"grant": {Type: MsgTaskAssign,
			Assign: &TaskAssign{JobID: 1, Extra: make([]ChunkGrant, MaxGrantChunks)}},
		"batch-ack": {Type: MsgBatchAck,
			BatchAck: &BatchAck{Acks: make([]ResultAck, MaxBatchChunks+1)}},
	} {
		c := NewConn(readCloser{bytes.NewReader(encodeMessages(t, m))})
		if _, err := c.Recv(); err == nil {
			t.Fatalf("%s frame accepted", name)
		}
	}

	ok := &Message{Type: MsgResultBatch, Batch: &ResultBatch{
		Groups: []BatchGroup{{JobID: 1, Chunks: make([]int, MaxBatchChunks)}}}}
	c := NewConn(readCloser{bytes.NewReader(encodeMessages(t, ok))})
	if _, err := c.Recv(); err != nil {
		t.Fatalf("at-limit batch rejected: %v", err)
	}
}
