package protocol

import (
	"io"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/source"
	"repro/internal/tissue"
	"repro/internal/voxel"
)

// pipePair returns two protocol connections joined by an in-memory pipe.
func pipePair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestHelloRoundTrip(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()

	go func() {
		c1.Send(&Message{Type: MsgHello, Hello: &Hello{
			Version: Version, Name: "w1", Mflops: 209,
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Type != MsgHello || m.Hello.Name != "w1" || m.Hello.Mflops != 209 {
		t.Fatalf("round trip lost data: %+v", m)
	}
}

func TestJobSpecRoundTrip(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()

	spec := mc.NewSpec(tissue.AdultHead(),
		source.Spec{Kind: source.KindGaussian, Param: 2},
		detector.Spec{Kind: detector.KindDisk, CenterX: 20, Radius: 2.5,
			Gate: detector.Gate{MinPath: 10, MaxPath: 900}})
	spec.Boundary = mc.BoundaryDeterministic
	spec.PathGrid = &mc.GridSpec{N: 50, Edge: 60}

	go func() {
		c1.Send(&Message{Type: MsgTaskAssign, Assign: &TaskAssign{
			JobID: 42, ChunkID: 3, Stream: 3, Photons: 500,
			Job: &Job{ID: 42, Spec: *spec, Seed: 7, Streams: 100},
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if m.Assign.Job == nil {
		t.Fatal("piggybacked job descriptor lost")
	}
	job := *m.Assign.Job
	if job.ID != 42 || job.Seed != 7 || job.Streams != 100 {
		t.Fatalf("job metadata lost: %+v", job)
	}
	got := job.Spec
	if got.Boundary != mc.BoundaryDeterministic {
		t.Fatal("boundary mode lost")
	}
	if got.Model.NumLayers() != 5 {
		t.Fatalf("model layers %d", got.Model.NumLayers())
	}
	// Semi-infinite layer thickness must survive gob.
	if !math.IsInf(got.Model.Layers[4].Thickness, 1) {
		t.Fatalf("infinite thickness lost: %g", got.Model.Layers[4].Thickness)
	}
	if got.PathGrid == nil || got.PathGrid.N != 50 {
		t.Fatal("grid spec lost")
	}
	if got.Detector.Gate.MaxPath != 900 {
		t.Fatal("gate lost")
	}
	// The received spec must be buildable.
	if _, err := got.Build(); err != nil {
		t.Fatalf("received spec unbuildable: %v", err)
	}
}

func TestTallyRoundTripPreservesEverything(t *testing.T) {
	cfg := &mc.Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 5, RMax: 15},
		AbsGrid:  &mc.GridSpec{N: 8, Edge: 40},
		PathGrid: &mc.GridSpec{N: 8, Edge: 40},
		PathHist: &mc.HistSpec{Min: 0, Max: 500, Bins: 50},
	}
	tally, err := mc.Run(cfg, 3000, 99)
	if err != nil {
		t.Fatal(err)
	}

	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	go func() {
		c1.Send(&Message{Type: MsgTaskResult, Result: &TaskResult{
			JobID: 1, ChunkID: 3, Elapsed: 5 * time.Second, Tally: tally,
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := m.Result.Tally
	if got.Launched != tally.Launched ||
		got.AbsorbedWeight != tally.AbsorbedWeight ||
		got.DetectedWeight != tally.DetectedWeight ||
		got.DetectedCount != tally.DetectedCount {
		t.Fatal("scalar fields lost in transit")
	}
	if got.PathStats.Mean() != tally.PathStats.Mean() {
		t.Fatal("path stats lost")
	}
	if got.AbsGrid.Total() != tally.AbsGrid.Total() {
		t.Fatal("absorption grid lost")
	}
	if got.PathHist.Total() != tally.PathHist.Total() {
		t.Fatal("histogram lost")
	}
	for i := range tally.LayerAbsorbed {
		if got.LayerAbsorbed[i] != tally.LayerAbsorbed[i] {
			t.Fatal("layer data lost")
		}
	}
}

// TestResultBatchRoundTrip covers the v3 batched result path: an empty
// batch (no groups — a legal no-op), a one-chunk batch, and a multi-job
// batch whose compact tally payloads must decode bit-exact on the far side.
func TestResultBatchRoundTrip(t *testing.T) {
	tallyA, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	tallyB, err := mc.Run(&mc.Config{
		Model:  tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		Radial: &mc.HistSpec{Min: 0, Max: 30, Bins: 15},
	}, 200, 6)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		batch *ResultBatch
	}{
		{"empty", &ResultBatch{}},
		{"one-chunk", &ResultBatch{Groups: []BatchGroup{
			{JobID: 3, Chunks: []int{0}, Elapsed: time.Second, TallyData: mc.AppendTally(nil, tallyA)},
		}}},
		{"multi-job", &ResultBatch{Groups: []BatchGroup{
			{JobID: 3, Chunks: []int{2, 3, 5}, Elapsed: 2 * time.Second, TallyData: mc.AppendTally(nil, tallyA)},
			{JobID: 9, Chunks: []int{1}, TallyData: mc.AppendTally(nil, tallyB)},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c1, c2 := pipePair()
			defer c1.Close()
			defer c2.Close()
			go c1.Send(&Message{Type: MsgResultBatch, Batch: tc.batch})
			m, err := c2.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.Type != MsgResultBatch || m.Batch == nil {
				t.Fatalf("got %v", m.Type)
			}
			got := m.Batch
			if len(got.Groups) != len(tc.batch.Groups) || got.NumChunks() != tc.batch.NumChunks() {
				t.Fatalf("batch shape lost: %+v", got)
			}
			for i, g := range got.Groups {
				want := tc.batch.Groups[i]
				if g.JobID != want.JobID || g.Elapsed != want.Elapsed {
					t.Fatalf("group %d metadata lost", i)
				}
				for k, ch := range g.Chunks {
					if ch != want.Chunks[k] {
						t.Fatalf("group %d chunk list changed", i)
					}
				}
				dec, err := mc.DecodeTally(g.TallyData)
				if err != nil {
					t.Fatalf("group %d tally: %v", i, err)
				}
				src, err := mc.DecodeTally(want.TallyData)
				if err != nil {
					t.Fatal(err)
				}
				if dec.Launched != src.Launched || dec.AbsorbedWeight != src.AbsorbedWeight {
					t.Fatalf("group %d tally payload corrupted", i)
				}
			}
		})
	}
}

// TestTaskRequestPiggybackRoundTrip checks a flush riding a task request
// and the per-chunk acks riding the assign reply both survive the wire.
func TestTaskRequestPiggybackRoundTrip(t *testing.T) {
	tally, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 100, 8)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()

	go func() {
		c1.Send(&Message{Type: MsgTaskRequest, Request: &TaskRequest{
			KnownJobs: []uint64{4},
			Holding:   []ChunkRef{{JobID: 4, ChunkID: 9}},
			Batch: &ResultBatch{Groups: []BatchGroup{
				{JobID: 4, Chunks: []int{7, 8}, TallyData: mc.AppendTally(nil, tally)},
			}},
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	req := m.Request
	if req == nil || req.Batch == nil || len(req.Holding) != 1 || req.Holding[0].ChunkID != 9 {
		t.Fatalf("piggybacked request lost data: %+v", req)
	}
	if req.Batch.NumChunks() != 2 {
		t.Fatalf("piggybacked batch covers %d chunks", req.Batch.NumChunks())
	}

	go func() {
		c2.Send(&Message{Type: MsgTaskAssign,
			Assign: &TaskAssign{JobID: 4, ChunkID: 10, Stream: 10, Photons: 50},
			BatchAck: &BatchAck{Acks: []ResultAck{
				{JobID: 4, ChunkID: 7},
				{JobID: 4, ChunkID: 8, Duplicate: true},
			}},
		})
	}()
	reply, err := c1.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.BatchAck == nil || len(reply.BatchAck.Acks) != 2 {
		t.Fatalf("batch ack lost from reply: %+v", reply)
	}
	if a := reply.BatchAck.Acks[1]; a.JobID != 4 || a.ChunkID != 8 || !a.Duplicate {
		t.Fatalf("per-chunk ack corrupted: %+v", a)
	}
	if reply.Assign == nil || reply.Assign.ChunkID != 10 {
		t.Fatal("assignment lost from piggybacked reply")
	}
}

func TestRecvRejectsUntypedMessage(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	go c1.Send(&Message{})
	if _, err := c2.Recv(); err == nil {
		t.Fatal("untyped message accepted")
	}
}

func TestRecvOnClosedConn(t *testing.T) {
	c1, c2 := pipePair()
	c1.Close()
	if _, err := c2.Recv(); err == nil || err == io.EOF && false {
		// any error is fine; just must not hang or succeed
		if err == nil {
			t.Fatal("recv on closed pipe succeeded")
		}
	}
}

func TestMsgTypeStrings(t *testing.T) {
	types := []MsgType{MsgHello, MsgWelcome, MsgTaskRequest, MsgTaskAssign,
		MsgTaskResult, MsgResultAck, MsgNoWork, MsgError, MsgResultBatch,
		MsgBatchAck, MsgType(42)}
	for _, ty := range types {
		if ty.String() == "" {
			t.Fatalf("empty string for %d", int(ty))
		}
	}
}

func TestManyMessagesSequential(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			c1.Send(&Message{Type: MsgTaskAssign, Assign: &TaskAssign{
				ChunkID: i, Stream: i, Photons: int64(i * 10),
			}})
		}
	}()
	for i := 0; i < n; i++ {
		m, err := c2.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Assign.ChunkID != i {
			t.Fatalf("message %d arrived out of order as %d", i, m.Assign.ChunkID)
		}
	}
}

// TestVoxelJobSpecRoundTrip checks a heterogeneous voxel-geometry Spec —
// label grid, media table and ambient indices — survives the wire intact
// and stays buildable on the receiving side.
func TestVoxelJobSpecRoundTrip(t *testing.T) {
	c1, c2 := pipePair()
	defer c1.Close()
	defer c2.Close()

	g, err := voxel.FromModel(tissue.AdultHead(), 24, 24, 40, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := g.AddMedium("tumour", optics.Properties{MuA: 0.3, MuS: 10, G: 0.9, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	g.PaintSphere(inc, 0, 0, 14, 5)
	spec := mc.NewVoxelSpec(g,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 2, RMax: 10})

	go func() {
		c1.Send(&Message{Type: MsgTaskAssign, Assign: &TaskAssign{
			JobID: 7, ChunkID: 0, Stream: 0, Photons: 100,
			Job: &Job{ID: 7, Spec: *spec, Seed: 3, Streams: 10},
		}})
	}()
	m, err := c2.Recv()
	if err != nil {
		t.Fatal(err)
	}
	got := m.Assign.Job.Spec
	if got.Voxel == nil {
		t.Fatal("voxel grid lost")
	}
	if err := got.Voxel.Validate(); err != nil {
		t.Fatalf("received grid invalid: %v", err)
	}
	if got.Voxel.NumRegions() != g.NumRegions() {
		t.Fatalf("media lost: %d vs %d", got.Voxel.NumRegions(), g.NumRegions())
	}
	for i := range g.Labels {
		if got.Voxel.Labels[i] != g.Labels[i] {
			t.Fatalf("label %d changed", i)
		}
	}
	if got.Voxel.NAbove != g.NAbove || got.Voxel.NBelow != g.NBelow {
		t.Fatal("ambient indices lost")
	}
	cfg, err := got.Build()
	if err != nil {
		t.Fatalf("received voxel spec unbuildable: %v", err)
	}
	if cfg.Geometry == nil || cfg.Geometry.NumRegions() != g.NumRegions() {
		t.Fatal("built config has wrong geometry")
	}
}
