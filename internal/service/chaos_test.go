package service

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
)

// killConn injects deterministic transport death: the connection errors
// (and closes, so the server side unblocks too) after budget writes.
// Because protocol.Conn flushes once per Send, the budget counts frames —
// a small budget kills the worker mid-batch with computed-but-unflushed
// results in its buffer, the abrupt-death case the Holding advertisement
// cannot soften.
type killConn struct {
	net.Conn
	mu     sync.Mutex
	writes int
	budget int
}

func (c *killConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	kill := c.writes > c.budget
	c.mu.Unlock()
	if kill {
		c.Conn.Close()
		return 0, errors.New("chaos: injected connection death")
	}
	return c.Conn.Write(p)
}

// startChaosWorkers runs n workers that are repeatedly killed and
// restarted: attempt k of each worker dies after 4·2^k frames, so early
// sessions die mid-batch (losing unflushed pre-reductions, abandoning
// granted chunks) while later ones live long enough to guarantee
// progress.
func startChaosWorkers(t *testing.T, reg *Registry, n int) {
	t.Helper()
	stop := make(chan struct{})
	var mu sync.Mutex
	live := make(map[int]net.Conn)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("chaos-%c", 'a'+i)
		go func(i int, name string) {
			for attempt := 0; ; attempt++ {
				select {
				case <-stop:
					return
				default:
				}
				server, client := net.Pipe()
				go reg.HandleConn(server)
				budget := 4 << uint(attempt)
				if budget > 1<<20 {
					budget = 1 << 20
				}
				kc := &killConn{Conn: client, budget: budget}
				mu.Lock()
				live[i] = kc
				mu.Unlock()
				_, _ = batchClient(kc, name, 3)
				kc.Conn.Close()
			}
		}(i, name)
	}
	t.Cleanup(func() {
		close(stop)
		mu.Lock()
		for _, c := range live {
			c.Close()
		}
		mu.Unlock()
	})
}

// TestChaosFleetReproducesReduction is the kill/restart end-to-end check:
// a 3-worker fleet whose workers die mid-batch and reconnect — with
// timeout reassignment armed and fan > 1 — must still reproduce the
// single-stream reduction exactly, for a fixed-count job and for a
// precision-targeted one (whose reduced chunk set, whatever the chaos
// made it, must merge to the same tally as computing those streams
// locally).
func TestChaosFleetReproducesReduction(t *testing.T) {
	oreg := obs.NewRegistry()
	reg := New(Options{Policy: FairShare(), Obs: oreg})
	startChaosWorkers(t, reg, 3)

	fixedSpec := slabSpec(5)
	const total, chunk, seed, fan = 3000, 250, 11, 2
	precSpec := targetSpec(7)
	const pChunk, pSeed = 400, 19

	fixed, err := reg.Submit(JobSpec{
		Spec: fixedSpec, TotalPhotons: total, ChunkPhotons: chunk, Seed: seed,
		Fan: fan, ChunkTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := reg.Submit(JobSpec{
		Spec: precSpec, ChunkPhotons: pChunk, Seed: pSeed, Fan: fan,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.015, MinPhotons: 4000},
		ChunkTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var fixedRes, precRes *Result
	var errF, errP error
	wg.Add(2)
	go func() { defer wg.Done(); fixedRes, errF = fixed.Job.Wait(120 * time.Second) }()
	go func() { defer wg.Done(); precRes, errP = prec.Job.Wait(120 * time.Second) }()
	wg.Wait()
	if errF != nil || errP != nil {
		t.Fatal(errF, errP)
	}

	// Fixed-count: identical to the standalone fan-matched decomposition.
	wantFixed := localTallyFan(t, fixedSpec, total, chunk, seed, fan)
	compareTallies(t, "fixed", fixedRes.Tally, wantFixed)

	// Precision: rebuild exactly the chunk set the chaos run reduced and
	// reproduce its tally stream by stream.
	if !precRes.TargetMet {
		t.Fatalf("precision job finished unmet after %d photons", precRes.Tally.Launched)
	}
	reg.mu.Lock()
	var reduced []int
	for id, done := range prec.Job.completed {
		if done {
			reduced = append(reduced, id)
		}
	}
	reg.mu.Unlock()
	if len(reduced) == 0 {
		t.Fatal("precision job reduced no chunks")
	}
	cfg, err := precSpec.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantPrec := mc.NewTally(cfg)
	for _, id := range reduced {
		tt, err := mc.RunStreamFan(cfg, pChunk, pSeed, id, 0, fan)
		if err != nil {
			t.Fatal(err)
		}
		if err := wantPrec.Merge(tt); err != nil {
			t.Fatal(err)
		}
	}
	if precRes.Tally.Launched != int64(len(reduced))*pChunk {
		t.Fatalf("launched %d != %d reduced chunks × %d",
			precRes.Tally.Launched, len(reduced), pChunk)
	}
	compareTallies(t, "precision", precRes.Tally, wantPrec)

	// The chaos must actually have exercised the recovery paths —
	// otherwise this test silently degrades to the plain e2e one.
	st := reg.Stats()
	if fixedRes.Reassigned+precRes.Reassigned == 0 {
		t.Error("no chunk was ever reassigned; kill budgets too generous to test recovery")
	}
	if st.Workers > 3 {
		t.Errorf("stats count %d workers, max 3 live", st.Workers)
	}

	// The exported metrics must tell the same recovery story as the
	// internal ledgers: every reassignment of these two jobs appears in
	// the reassigned counter, and the per-reason reject series sum to
	// exactly the registry's reject count.
	var buf bytes.Buffer
	if err := oreg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	m := parseExposition(t, buf.Bytes())
	if got, want := m["service_chunks_reassigned_total"], float64(fixedRes.Reassigned+precRes.Reassigned); got != want {
		t.Errorf("scraped reassigned %g != job ledgers %g", got, want)
	}
	rejects := m[`service_results_rejected_total{reason="stale"}`] +
		m[`service_results_rejected_total{reason="batch"}`] +
		m[`service_results_rejected_total{reason="benign"}`]
	if rejects != float64(st.RejectedResults) {
		t.Errorf("scraped rejects by reason sum to %g, stats say %d", rejects, st.RejectedResults)
	}
	if got, want := m["service_chunks_completed_total"], float64(total/chunk+len(reduced)); got != want {
		t.Errorf("scraped completions %g, want %g reduced chunks", got, want)
	}
	if m["service_photons_reduced_total"] != float64(st.PhotonsCompleted) {
		t.Errorf("scraped photons %g != stats %d",
			m["service_photons_reduced_total"], st.PhotonsCompleted)
	}
	if m["fleet_reconnects_total"] == 0 {
		t.Error("chaos restarts never counted as reconnects")
	}
}

// compareTallies asserts the distributed tally matches the local
// reduction: integer observables exactly, weight sums to the usual
// merge-order tolerance, and the moment accumulators' exact parts
// (sample counts, photon weights) exactly.
func compareTallies(t *testing.T, label string, got, want *mc.Tally) {
	t.Helper()
	if got.Launched != want.Launched || got.DetectedCount != want.DetectedCount {
		t.Fatalf("%s: launched/detected %d/%d, want %d/%d",
			label, got.Launched, got.DetectedCount, want.Launched, want.DetectedCount)
	}
	for _, c := range []struct {
		name     string
		got, min float64
	}{
		{"diffuse", got.DiffuseWeight, want.DiffuseWeight},
		{"absorbed", got.AbsorbedWeight, want.AbsorbedWeight},
		{"transmit", got.TransmitWeight, want.TransmitWeight},
		{"detected", got.DetectedWeight, want.DetectedWeight},
	} {
		if math.Abs(c.got-c.min) > 1e-9 {
			t.Fatalf("%s: %s weight %g != local %g", label, c.name, c.got, c.min)
		}
	}
	if (got.Moments == nil) != (want.Moments == nil) {
		t.Fatalf("%s: moments presence differs", label)
	}
	if got.Moments != nil {
		if got.Moments.Diffuse.N != want.Moments.Diffuse.N {
			t.Fatalf("%s: moment samples %d != %d", label, got.Moments.Diffuse.N, want.Moments.Diffuse.N)
		}
		if got.Moments.Diffuse.SumW != want.Moments.Diffuse.SumW {
			t.Fatalf("%s: moment weight %g != %g", label, got.Moments.Diffuse.SumW, want.Moments.Diffuse.SumW)
		}
	}
}
