package service

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// JobState is the lifecycle of a job inside the registry.
//
//	Queued ──assign──▶ Running ──last chunk reduced──▶ Done
//	   │                  │
//	   └───────Cancel─────┴──▶ Canceled
//
// A cache-hit submission is born Done.
type JobState int

const (
	StateQueued JobState = iota + 1
	StateRunning
	StateDone
	StateCanceled
)

// String implements fmt.Stringer (also the HTTP API spelling).
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// WorkerInfo summarises one worker's contribution to a job.
type WorkerInfo struct {
	Name      string
	Mflops    float64
	Chunks    int
	Connected time.Time
}

// Result is the outcome of a completed job.
type Result struct {
	Tally *mc.Tally
	// Elapsed is the wall-clock job duration, first assignment to last
	// reduction (zero for cache hits).
	Elapsed time.Duration
	// Chunks, Reassigned, Duplicates and Rejected describe scheduling
	// behaviour.
	Chunks     int
	Reassigned int
	Duplicates int
	Rejected   int
	// CacheHit reports the result was served from the content-addressed
	// cache without assigning any chunks.
	CacheHit bool
	// Target echoes a precision-targeted job's goal; TargetMet reports
	// whether the stopping rule fired (false means the photon cap ended
	// the job first — the tally still reports its achieved RSE).
	Target    *mc.Target
	TargetMet bool
	// Workers lists per-client contribution, sorted by name.
	Workers []WorkerInfo
}

// JobStatus is a point-in-time snapshot of a job (the GET /jobs/{id} body).
// For precision-targeted jobs TotalChunks counts chunks issued so far (the
// job is open-ended), PhotonsRun counts photons actually reduced, and
// Estimate/RelStdErr/CI95 report the live observable estimate — absent
// until two chunks have reduced, since one sample has no spread.
type JobStatus struct {
	ID              uint64     `json:"-"`
	IDHex           string     `json:"id"`
	Label           string     `json:"label,omitempty"`
	Tenant          string     `json:"tenant,omitempty"`
	State           string     `json:"state"`
	CacheHit        bool       `json:"cacheHit,omitempty"`
	TotalPhotons    int64      `json:"photons"`
	ChunkPhotons    int64      `json:"chunkPhotons"`
	CompletedChunks int        `json:"completedChunks"`
	TotalChunks     int        `json:"totalChunks"`
	Priority        int        `json:"priority,omitempty"`
	Weight          float64    `json:"weight,omitempty"`
	Reassigned      int        `json:"reassigned,omitempty"`
	Duplicates      int        `json:"duplicates,omitempty"`
	Rejected        int        `json:"rejected,omitempty"`
	Target          *mc.Target `json:"target,omitempty"`
	TargetMet       bool       `json:"targetMet,omitempty"`
	PhotonsRun      int64      `json:"photonsRun,omitempty"`
	Estimate        float64    `json:"estimate,omitempty"`
	RelStdErr       float64    `json:"relStdErr,omitempty"`
	CI95            float64    `json:"ci95,omitempty"`
	Submitted       time.Time  `json:"submitted"`
	Finished        time.Time  `json:"finished,omitzero"`
}

// chunkState tracks one outstanding work unit.
type chunkState struct {
	id       int
	photons  int64
	assigned time.Time
	session  uint64 // fleet session the chunk is out on
	worker   string
	tries    int
}

// Job is one simulation owned by a Registry. All mutable state is guarded
// by the registry's lock, except the tally: merges happen under the
// per-job redMu so the fleet's dispatch lock is never held across a
// (potentially grid-sized) Merge. Lock order is redMu before the registry
// lock — reducers take redMu, merge, then re-enter the registry lock to
// publish completion; Snapshot takes both in the same order to read a
// merge-consistent (completed set, tally) pair.
type Job struct {
	reg *Registry

	id   uint64
	seq  uint64
	key  Key
	pkey Key // physics key (meets-or-exceeds cache index)
	spec JobSpec

	// nChunks is the fixed chunk count of a budgeted job. A
	// precision-targeted job (spec.Target != nil) is open-ended: nChunks
	// is the high-water mark of chunks *issued* so far and grows as the
	// dispatcher synthesises new chunk ids.
	nChunks     int
	pending     []int // chunk ids awaiting assignment (LIFO on reassign)
	outstanding map[int]*chunkState
	photons     []int64 // photons per chunk
	completed   []bool
	nCompleted  int
	// queued stamps, per chunk, when the chunk last entered the pending
	// queue (submission, open-ended issuance, or any requeue) — the start
	// of a span's queue-wait segment. Parallel to photons/completed.
	queued []time.Time

	// Precision-job progress, published under the registry lock after
	// each merge so Status never needs the reduction lock: the live
	// estimate of the target observable, its relative standard error and
	// 95% CI half-width, photons reduced, and whether the stopping rule
	// fired (vs the photon cap).
	estimate   float64
	estRSE     float64
	estCI      float64
	photonsRun int64
	targetMet  bool

	// merging marks chunks claimed by an in-flight off-lock reduction:
	// no longer outstanding (reclaim must not requeue them), not yet
	// completed (drain must not fire). A concurrent result for a merging
	// chunk is a benign duplicate.
	merging map[int]bool
	redMu   sync.Mutex // serialises merges into tally; held before reg.mu
	tally   *mc.Tally

	// chunkSecs is an EWMA of observed per-chunk compute seconds (from
	// result Elapsed), used to cap multi-chunk grants so a serially
	// computing worker cannot be handed more chunks than fit inside the
	// job's ChunkTimeout. Zero until the first result lands.
	chunkSecs float64

	state      JobState
	cacheHit   bool
	reassigned int
	duplicates int
	rejected   int
	assigned   int64 // photons handed out (fair-share accounting)
	workers    map[string]*WorkerInfo

	// tstats is the job's tenant accounting bucket and tweight the
	// tenant's scheduling weight, both resolved once by registerLocked so
	// the dispatch and reduce hot paths never do a map lookup per event.
	tstats  *tenantStats
	tweight float64

	submitted  time.Time
	started    time.Time
	finishedAt time.Time
	finished   chan struct{}

	// events is the job's bounded lifecycle trace (nil when disabled). It
	// has its own mutex and never nests under the registry lock's critical
	// sections for more than a ring append.
	events *obs.Trace
	// spans is the job's bounded per-chunk timing ring (nil when
	// disabled): queue-wait / wire+hold / compute / reduce segments joined
	// from server stamps and worker-reported compute durations.
	spans *obs.Spans
}

// newJob builds the chunk partition for a normalized spec. It is called
// outside the registry lock (Spec.Build can be expensive); the job's ID
// and sequence number are assigned later by registerLocked.
func newJob(reg *Registry, key Key, spec JobSpec) (*Job, error) {
	cfg, err := spec.Spec.Build()
	if err != nil {
		return nil, err
	}
	n := spec.numChunks()
	j := &Job{
		reg:         reg,
		key:         key,
		spec:        spec,
		nChunks:     n,
		outstanding: make(map[int]*chunkState),
		photons:     make([]int64, n),
		completed:   make([]bool, n),
		merging:     make(map[int]bool),
		tally:       mc.NewTally(cfg),
		state:       StateQueued,
		workers:     make(map[string]*WorkerInfo),
		finished:    make(chan struct{}),
		submitted:   time.Now(),
		events:      reg.newTrace(),
		spans:       reg.newSpans(),
	}
	j.queued = make([]time.Time, n)
	remaining := spec.TotalPhotons
	for i := 0; i < n; i++ {
		p := spec.ChunkPhotons
		if p > remaining {
			p = remaining
		}
		remaining -= p
		j.photons[i] = p
		j.pending = append(j.pending, i)
		j.queued[i] = j.submitted
	}
	// An open-ended job starts with no chunks at all (numChunks returned
	// 0); the dispatcher issues them on demand via issueChunkLocked.
	return j, nil
}

// openEnded reports precision-targeted (run-until-precision) issuance.
func (j *Job) openEnded() bool { return j.spec.Target != nil }

// issuedPhotonsLocked is the photon total of every chunk issued so far
// (open-ended chunks are uniformly ChunkPhotons-sized).
func (j *Job) issuedPhotonsLocked() int64 {
	return int64(j.nChunks) * j.spec.ChunkPhotons
}

// issuableChunksLocked returns how many fresh chunks an open-ended job may
// still issue, capped for candidate accounting (the true remaining budget
// can be millions of chunks; schedulers only need "plenty").
func (j *Job) issuableChunksLocked() int {
	if !j.openEnded() || j.targetMet {
		return 0
	}
	left := (j.spec.Target.MaxPhotons - j.issuedPhotonsLocked()) / j.spec.ChunkPhotons
	if left <= 0 {
		return 0
	}
	if left > int64(protocol.MaxGrantChunks) {
		return protocol.MaxGrantChunks
	}
	return int(left)
}

// issueChunkLocked synthesises the next fresh chunk of an open-ended job.
// The caller must have checked issuableChunksLocked.
func (j *Job) issueChunkLocked() int {
	id := j.nChunks
	j.nChunks++
	j.photons = append(j.photons, j.spec.ChunkPhotons)
	j.completed = append(j.completed, false)
	j.queued = append(j.queued, time.Now())
	return id
}

// requeueLocked returns a chunk to the pending queue, restarting its
// queue-wait clock so span accounting measures the current wait, not the
// sum across reassignments. Every requeue path must come through here.
func (j *Job) requeueLocked(id int) {
	j.pending = append(j.pending, id)
	if id >= 0 && id < len(j.queued) {
		j.queued[id] = time.Now()
	}
}

// queuedAtLocked returns when the chunk last entered the pending queue
// (zero for jobs predating the queue stamps, e.g. born-done jobs).
func (j *Job) queuedAtLocked(id int) time.Time {
	if id >= 0 && id < len(j.queued) {
		return j.queued[id]
	}
	return time.Time{}
}

// ID returns the job's registry-unique identifier (also the wire JobID).
func (j *Job) ID() uint64 { return j.id }

// NumChunks returns the total number of work units.
func (j *Job) NumChunks() int { return j.nChunks }

// Done returns a channel closed when the job finishes (done or cancelled).
func (j *Job) Done() <-chan struct{} { return j.finished }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:              j.id,
		IDHex:           fmt.Sprintf("%016x", j.id),
		Label:           j.spec.Label,
		Tenant:          j.spec.Tenant,
		State:           j.state.String(),
		CacheHit:        j.cacheHit,
		TotalPhotons:    j.spec.TotalPhotons,
		ChunkPhotons:    j.spec.ChunkPhotons,
		CompletedChunks: j.nCompleted,
		TotalChunks:     j.nChunks,
		Priority:        j.spec.Priority,
		Weight:          j.spec.Weight,
		Reassigned:      j.reassigned,
		Duplicates:      j.duplicates,
		Rejected:        j.rejected,
		Target:          j.spec.Target,
		TargetMet:       j.targetMet,
		PhotonsRun:      j.photonsRun,
		Submitted:       j.submitted,
		Finished:        j.finishedAt,
	}
	// The estimate triple is published together after each merge; an
	// infinite RSE (fewer than two chunks) is withheld rather than sent
	// through JSON.
	if j.estRSE > 0 && !math.IsInf(j.estRSE, 1) {
		st.Estimate = j.estimate
		st.RelStdErr = j.estRSE
		st.CI95 = j.estCI
	}
	return st
}

// Progress returns the number of reduced chunks and the total.
func (j *Job) Progress() (completedChunks, total int) {
	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	return j.nCompleted, j.nChunks
}

// ErrCanceled is wrapped by Wait when the job was cancelled.
var ErrCanceled = fmt.Errorf("service: job canceled")

// Wait blocks until the job completes or the timeout elapses (zero waits
// forever), then returns the reduced result.
func (j *Job) Wait(timeout time.Duration) (*Result, error) {
	if timeout > 0 {
		select {
		case <-j.finished:
		case <-time.After(timeout):
			done, total := j.Progress()
			return nil, fmt.Errorf("service: job %016x incomplete after %v (%d/%d chunks)",
				j.id, timeout, done, total)
		}
	} else {
		<-j.finished
	}

	j.reg.mu.Lock()
	defer j.reg.mu.Unlock()
	if j.state == StateCanceled {
		return nil, fmt.Errorf("%w (job %016x)", ErrCanceled, j.id)
	}
	res := &Result{
		Tally:      j.tally,
		Chunks:     j.nChunks,
		Reassigned: j.reassigned,
		Duplicates: j.duplicates,
		Rejected:   j.rejected,
		CacheHit:   j.cacheHit,
		Target:     j.spec.Target,
		TargetMet:  j.targetMet,
	}
	if !j.started.IsZero() {
		res.Elapsed = j.finishedAt.Sub(j.started)
	}
	for _, w := range j.workers {
		res.Workers = append(res.Workers, *w)
	}
	sort.Slice(res.Workers, func(i, k int) bool { return res.Workers[i].Name < res.Workers[k].Name })
	return res, nil
}

// bornDoneJob builds a completed job around a cached tally — no geometry
// construction, no chunk queue; the ID and sequence are assigned by
// registerLocked like any other job.
func bornDoneJob(reg *Registry, key Key, spec JobSpec, tally *mc.Tally) *Job {
	n := spec.numChunks()
	now := time.Now()
	j := &Job{
		reg:         reg,
		key:         key,
		spec:        spec,
		nChunks:     n,
		outstanding: make(map[int]*chunkState),
		completed:   make([]bool, n),
		nCompleted:  n,
		merging:     make(map[int]bool),
		tally:       tally,
		state:       StateDone,
		cacheHit:    true,
		workers:     make(map[string]*WorkerInfo),
		finished:    make(chan struct{}),
		submitted:   now,
		finishedAt:  now,
		events:      reg.newTrace(),
		spans:       reg.newSpans(),
	}
	for i := range j.completed {
		j.completed[i] = true
	}
	j.publishEstimate(tally)
	close(j.finished)
	return j
}

// publishEstimate refreshes the job's Status-visible estimate fields from
// a tally. Reducers call it under both the reduction and registry locks;
// construction paths (cache hits, snapshot resumes) call it before the job
// is published anywhere.
func (j *Job) publishEstimate(t *mc.Tally) {
	if t == nil || t.Moments == nil {
		return
	}
	observable := mc.ObsDiffuse
	if j.spec.Target != nil {
		observable = j.spec.Target.Observable
	}
	j.estimate, j.estCI = t.EstimateCI(observable)
	j.estRSE = t.RelStdErr(observable)
	j.photonsRun = t.Launched
	if j.spec.Target != nil && j.spec.Target.MetBy(t) {
		j.targetMet = true
	}
}

// absorbParamsLocked folds a coalesced duplicate submission's scheduling
// parameters into the live job, keeping the stronger of each: an urgent
// identical resubmission must not be silently demoted to the incumbent's
// priority or weight.
func (j *Job) absorbParamsLocked(spec JobSpec) {
	if spec.Priority > j.spec.Priority {
		j.spec.Priority = spec.Priority
	}
	if spec.Weight > j.spec.Weight {
		j.spec.Weight = spec.Weight
	}
	if j.spec.Label == "" {
		j.spec.Label = spec.Label
	}
}

// schedulable reports whether the job can receive assignments (lock held):
// requeued chunks for any job, plus fresh open-ended issuance while a
// precision target is unmet and under budget.
func (j *Job) schedulableLocked() bool {
	if j.state != StateQueued && j.state != StateRunning {
		return false
	}
	return len(j.pending) > 0 || j.issuableChunksLocked() > 0
}

// activeLocked reports whether the job still has work in flight or queued.
func (j *Job) activeLocked() bool {
	return j.state == StateQueued || j.state == StateRunning
}

// reclaimExpiredLocked requeues chunks whose results are overdue.
func (j *Job) reclaimExpiredLocked(now time.Time) {
	if j.spec.ChunkTimeout <= 0 || !j.activeLocked() {
		return
	}
	for id, st := range j.outstanding {
		if now.Sub(st.assigned) > j.spec.ChunkTimeout {
			delete(j.outstanding, id)
			j.requeueLocked(id)
			j.reassigned++
			j.reg.met.chunksReassigned.Inc()
			j.trace(obs.Event{Kind: obs.EvChunkReassigned, Chunk: id,
				Worker: st.worker, Detail: "timeout"})
			j.reg.log.Debug("chunk timed out; requeued", "job", jobHex(j.id),
				"chunk", id, "worker", st.worker)
		}
	}
}

// Snapshot is a serialisable view of a job's reduction state, sufficient
// to resume it in a fresh registry (the checkpoint payload).
type Snapshot struct {
	Spec      JobSpec
	NChunks   int
	Completed []int // sorted chunk ids already reduced
	Tally     *mc.Tally
}

// Snapshot captures the job's current reduction state. Chunks in flight
// are not part of the snapshot and will be recomputed on resume.
//
// The per-job reduction lock is taken first (the lock order reducers use),
// so the snapshot never observes a chunk whose merge has landed in the
// tally without its completion mark, or vice versa — either would
// double-count or drop the chunk on resume. Only the gob *encode* of the
// tally runs under the locks (it must see a merge-consistent view); the
// decode half of the deep copy happens after release, so periodic
// checkpointing of a large-tally job holds the fleet's dispatch lock for
// roughly half the clone cost.
func (j *Job) Snapshot() *Snapshot {
	j.redMu.Lock()
	j.reg.mu.Lock()
	snap := &Snapshot{
		Spec:    j.spec,
		NChunks: j.nChunks,
	}
	spec := *j.spec.Spec // keep the snapshot independent of the live job
	snap.Spec.Spec = &spec
	for id := 0; id < j.nChunks; id++ {
		if j.completed[id] {
			snap.Completed = append(snap.Completed, id)
		}
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(j.tally)
	j.reg.mu.Unlock()
	j.redMu.Unlock()
	if err != nil {
		panic(fmt.Sprintf("service: snapshot tally encode: %v", err))
	}
	var tally mc.Tally
	if err := gob.NewDecoder(&buf).Decode(&tally); err != nil {
		panic(fmt.Sprintf("service: snapshot tally decode: %v", err))
	}
	snap.Tally = &tally
	return snap
}
