package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/mc"
)

// postJob submits a job over the HTTP API and returns the response.
func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobAccepted, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var acc JobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	return acc, resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// waitDone polls GET /jobs/{id} until the job reports done.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: http %d", id, code)
		}
		if st.State == "done" {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// TestHTTPConcurrentJobsEndToEnd is the PR acceptance test: two concurrent
// jobs submitted over the HTTP API share one 3-worker fleet, both tallies
// match their standalone single-job runs, and resubmitting a completed
// Spec returns the cached result without assigning any chunks.
func TestHTTPConcurrentJobsEndToEnd(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	ts := httptest.NewServer(NewAPI(reg).Handler())
	defer ts.Close()
	startWorkers(t, reg, 3)

	specA, specB := slabSpec(5), slabSpec(8)
	const totalA, chunkA, seedA = 3000, 250, 31
	const totalB, chunkB, seedB = 2000, 200, 41

	accA, code := postJob(t, ts, JobRequest{Spec: specA, Photons: totalA, ChunkPhotons: chunkA, Seed: seedA, Label: "job-a"})
	if code != http.StatusCreated || accA.Cached {
		t.Fatalf("submit A: http %d %+v", code, accA)
	}
	accB, code := postJob(t, ts, JobRequest{Spec: specB, Photons: totalB, ChunkPhotons: chunkB, Seed: seedB, Label: "job-b"})
	if code != http.StatusCreated || accB.Cached {
		t.Fatalf("submit B: http %d %+v", code, accB)
	}
	if accA.ID == accB.ID {
		t.Fatal("distinct jobs share an ID")
	}

	// Both jobs run concurrently on the shared fleet.
	var wg sync.WaitGroup
	wg.Add(2)
	for _, id := range []string{accA.ID, accB.ID} {
		go func(id string) { defer wg.Done(); waitDone(t, ts, id) }(id)
	}
	wg.Wait()

	var resA, resB JobResultBody
	if code := getJSON(t, ts.URL+"/jobs/"+accA.ID+"/result", &resA); code != http.StatusOK {
		t.Fatalf("result A: http %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/"+accB.ID+"/result", &resB); code != http.StatusOK {
		t.Fatalf("result B: http %d", code)
	}

	wantA := localTally(t, specA, totalA, chunkA, seedA)
	wantB := localTally(t, specB, totalB, chunkB, seedB)
	if resA.Tally.Launched != totalA || resB.Tally.Launched != totalB {
		t.Fatalf("launched %d/%d over HTTP, want %d/%d",
			resA.Tally.Launched, resB.Tally.Launched, totalA, totalB)
	}
	if math.Abs(resA.Tally.AbsorbedWeight-wantA.AbsorbedWeight) > 1e-9 ||
		resA.Tally.DetectedCount != wantA.DetectedCount {
		t.Fatal("job A tally over HTTP differs from its standalone single-job run")
	}
	if math.Abs(resB.Tally.AbsorbedWeight-wantB.AbsorbedWeight) > 1e-9 ||
		resB.Tally.DetectedCount != wantB.DetectedCount {
		t.Fatal("job B tally over HTTP differs from its standalone single-job run")
	}

	// Resubmit job A verbatim: served from cache, no chunks assigned.
	var before Stats
	getJSON(t, ts.URL+"/stats", &before)
	dup, code := postJob(t, ts, JobRequest{Spec: specA, Photons: totalA, ChunkPhotons: chunkA, Seed: seedA})
	if code != http.StatusOK || !dup.Cached {
		t.Fatalf("resubmission not cached: http %d %+v", code, dup)
	}
	var dupRes JobResultBody
	if code := getJSON(t, ts.URL+"/jobs/"+dup.ID+"/result", &dupRes); code != http.StatusOK {
		t.Fatalf("cached result: http %d", code)
	}
	if !dupRes.CacheHit {
		t.Fatal("cached result not flagged")
	}
	if dupRes.Tally.Launched != totalA ||
		math.Abs(dupRes.Tally.AbsorbedWeight-resA.Tally.AbsorbedWeight) > 0 {
		t.Fatal("cached tally differs from the original")
	}
	var after Stats
	getJSON(t, ts.URL+"/stats", &after)
	if after.ChunksAssigned != before.ChunksAssigned {
		t.Fatalf("cache hit assigned %d chunks", after.ChunksAssigned-before.ChunksAssigned)
	}
	if after.CacheHits == 0 || after.Workers != 3 || after.JobsDone < 3 {
		t.Fatalf("stats inconsistent: %+v", after)
	}
}

func TestHTTPCancelAndErrors(t *testing.T) {
	reg := New(Options{})
	ts := httptest.NewServer(NewAPI(reg).Handler())
	defer ts.Close()

	// No workers: the job stays queued until cancelled.
	acc, code := postJob(t, ts, JobRequest{Spec: slabSpec(5), Photons: 1000, ChunkPhotons: 100, Seed: 7})
	if code != http.StatusCreated {
		t.Fatalf("submit: http %d", code)
	}

	// Result before completion → 202.
	var e apiError
	if code := getJSON(t, ts.URL+"/jobs/"+acc.ID+"/result", &e); code != http.StatusAccepted {
		t.Fatalf("early result: http %d", code)
	}

	// Cancel.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+acc.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: http %d", resp.StatusCode)
	}
	var st JobStatus
	getJSON(t, ts.URL+"/jobs/"+acc.ID, &st)
	if st.State != "canceled" {
		t.Fatalf("state %q after cancel", st.State)
	}
	if code := getJSON(t, ts.URL+"/jobs/"+acc.ID+"/result", &e); code != http.StatusGone {
		t.Fatalf("result of canceled job: http %d", code)
	}

	// Unknown and malformed IDs.
	if code := getJSON(t, ts.URL+"/jobs/00000000deadbeef", &e); code != http.StatusNotFound {
		t.Fatalf("unknown id: http %d", code)
	}
	if code := getJSON(t, ts.URL+"/jobs/zzz", &e); code != http.StatusBadRequest {
		t.Fatalf("malformed id: http %d", code)
	}

	// Invalid submission → 422.
	if _, code := postJob(t, ts, JobRequest{Photons: 100}); code != http.StatusUnprocessableEntity {
		t.Fatalf("specless submission: http %d", code)
	}

	// List includes the canceled job.
	var list []JobStatus
	getJSON(t, ts.URL+"/jobs", &list)
	found := false
	for _, s := range list {
		if s.IDHex == acc.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("canceled job missing from list: %+v", list)
	}
}

// TestHTTPJobIDRoundTrip pins the hex ID encoding the API promises.
func TestHTTPJobIDRoundTrip(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 100, ChunkPhotons: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := out.Job.Status()
	if want := fmt.Sprintf("%016x", out.Job.ID()); st.IDHex != want {
		t.Fatalf("IDHex %q, want %q", st.IDHex, want)
	}
	var back uint64
	if _, err := fmt.Sscanf(st.IDHex, "%x", &back); err != nil || back != out.Job.ID() {
		t.Fatalf("hex id does not round-trip: %v %d", err, back)
	}
}

// TestHTTPPrecisionJob drives a precision-targeted job over the HTTP API:
// submission with a target body, progress reporting estimate ± CI and
// photons spent, and the result echoing the met target.
func TestHTTPPrecisionJob(t *testing.T) {
	reg := New(Options{})
	ts := httptest.NewServer(NewAPI(reg).Handler())
	defer ts.Close()
	startWorkers(t, reg, 2)

	spec := targetSpec(5)
	acc, code := postJob(t, ts, JobRequest{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         41,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.02, MinPhotons: 4000},
		Label:        "precision",
	})
	if code != http.StatusCreated {
		t.Fatalf("submit: http %d", code)
	}

	st := waitDone(t, ts, acc.ID)
	if !st.TargetMet {
		t.Fatalf("status not met: %+v", st)
	}
	if st.Target == nil || st.Target.RelErr != 0.02 {
		t.Fatalf("status target missing: %+v", st.Target)
	}
	if st.PhotonsRun < 4000 {
		t.Fatalf("photonsRun %d below floor", st.PhotonsRun)
	}
	if st.Estimate <= 0 || st.CI95 <= 0 || st.RelStdErr <= 0 || st.RelStdErr > 0.02 {
		t.Fatalf("estimate triple wrong: est=%g ci=%g rse=%g", st.Estimate, st.CI95, st.RelStdErr)
	}

	var res JobResultBody
	if code := getJSON(t, ts.URL+"/jobs/"+acc.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: http %d", code)
	}
	if !res.TargetMet || res.Target == nil {
		t.Fatalf("result body lost the target: %+v", res)
	}
	if res.Tally.Launched != st.PhotonsRun {
		t.Fatalf("result launched %d != status photonsRun %d", res.Tally.Launched, st.PhotonsRun)
	}
	if res.Tally.Moments == nil {
		t.Fatal("result tally carries no moments")
	}
	if got := res.Tally.RelStdErr(mc.ObsDiffuse); math.Abs(got-st.RelStdErr) > 1e-12 {
		t.Fatalf("tally RSE %g != status %g", got, st.RelStdErr)
	}

	// A bad target is rejected at submission, not accepted and wedged.
	if _, code := postJob(t, ts, JobRequest{
		Spec:   spec,
		Seed:   1,
		Target: &mc.Target{RelErr: 2},
	}); code != http.StatusUnprocessableEntity {
		t.Fatalf("bad target: http %d", code)
	}
}
