package service

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/protocol"
)

// TestStatsLifecycleConsistentUnderConcurrentCancel is the regression test
// for lifecycle-counter consistency: jobs canceled while their batches are
// mid-reduction must leave /stats coherent at every observable instant —
// the four state counters always partition the retained jobs, a job never
// reports queue depth after leaving the active states, and the fleet
// quiesces with zero pending/outstanding chunks instead of recomputing
// work for dead jobs. (The reducer re-checks liveness under the reduction
// lock before merging; without that, a cancel racing phase 2 let the dead
// job keep absorbing weight while the counters claimed it was gone.)
func TestStatsLifecycleConsistentUnderConcurrentCancel(t *testing.T) {
	reg := New(Options{Policy: FairShare(), RetainDone: -1})
	startWorkers(t, reg, 3)

	const jobs = 8
	outs := make([]*SubmitOutcome, jobs)
	for i := 0; i < jobs; i++ {
		out, err := reg.Submit(JobSpec{
			Spec:         slabSpec(4 + float64(i)), // distinct keys
			TotalPhotons: 2000,
			ChunkPhotons: 100,
			Seed:         uint64(100 + i),
			ChunkTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}

	// Poll the invariant while cancels race the reductions.
	stopPolling := make(chan struct{})
	var pollWG sync.WaitGroup
	pollWG.Add(1)
	go func() {
		defer pollWG.Done()
		for {
			select {
			case <-stopPolling:
				return
			default:
			}
			st := reg.Stats()
			if got := st.JobsQueued + st.JobsRunning + st.JobsDone + st.JobsCanceled; got != jobs {
				t.Errorf("state counters sum to %d, want %d (%+v)", got, jobs, st)
				return
			}
			if st.PendingChunks < 0 || st.OutstandingChunks < 0 {
				t.Errorf("negative queue depth: %+v", st)
				return
			}
		}
	}()

	// Cancel every odd job from concurrent goroutines while the fleet is
	// reducing; tolerate losing the race with completion.
	var cancelWG sync.WaitGroup
	for i := 1; i < jobs; i += 2 {
		cancelWG.Add(1)
		go func(id uint64) {
			defer cancelWG.Done()
			err := reg.Cancel(id)
			if err != nil && !errorsIsAlreadyFinished(err) {
				t.Errorf("cancel: %v", err)
			}
		}(outs[i].Job.ID())
	}
	cancelWG.Wait()

	// Every job settles: evens complete, odds are canceled or completed.
	doneStates := map[string]int{}
	for i, out := range outs {
		res, err := out.Job.Wait(60 * time.Second)
		switch {
		case err == nil:
			doneStates["done"]++
			if res.Tally.Launched != 2000 {
				t.Errorf("job %d launched %d, want 2000", i, res.Tally.Launched)
			}
		case errors.Is(err, ErrCanceled):
			doneStates["canceled"]++
		default:
			t.Fatalf("job %d: %v", i, err)
		}
	}
	close(stopPolling)
	pollWG.Wait()

	// Quiesce: give in-flight batches a moment to drain, then the
	// counters must agree with the observed terminal states and no dead
	// job may still be charged queue depth.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := reg.Stats()
		if st.PendingChunks == 0 && st.OutstandingChunks == 0 &&
			st.JobsDone == doneStates["done"] && st.JobsCanceled == doneStates["canceled"] &&
			st.JobsQueued == 0 && st.JobsRunning == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet did not quiesce consistently: %+v vs terminal %v", st, doneStates)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And canceled jobs reject late interest rather than resurrecting.
	for i := 1; i < jobs; i += 2 {
		if err := reg.Cancel(outs[i].Job.ID()); err == nil {
			t.Errorf("double cancel of job %d accepted", i)
		}
	}
}

// errorsIsAlreadyFinished matches the Cancel error for a job that beat the
// cancel to a terminal state.
func errorsIsAlreadyFinished(err error) bool {
	return err != nil && strings.Contains(err.Error(), "already")
}

// TestUndecodableBatchRejectedAndRequeued drives the rejectGroup path: a
// batch whose tally bytes do not decode must reject every covered chunk,
// requeue the honestly owned ones, and leave the job finishable by an
// honest worker.
func TestUndecodableBatchRejectedAndRequeued(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sess := reg.registerSession(&protocol.Hello{Name: "hostile"}, "")
	defer reg.releaseSession(sess)

	msg := reg.nextAssignment(sess, &protocol.TaskRequest{Want: 2})
	if msg.Type != protocol.MsgTaskAssign {
		t.Fatalf("expected assignment, got %v", msg.Type)
	}
	chunks := []int{msg.Assign.ChunkID}
	for _, g := range msg.Assign.Extra {
		chunks = append(chunks, g.ChunkID)
	}
	var scratch mc.Tally
	acks := reg.reduceBatch(sess, &protocol.ResultBatch{Groups: []protocol.BatchGroup{{
		JobID:     msg.Assign.JobID,
		Chunks:    chunks,
		TallyData: []byte{0xFF, 0xFF, 0xFF},
	}}}, &scratch)
	if len(acks) != len(chunks) {
		t.Fatalf("%d acks for %d chunks", len(acks), len(chunks))
	}
	for _, a := range acks {
		if !a.Rejected {
			t.Fatalf("undecodable chunk %d not rejected: %+v", a.ChunkID, a)
		}
	}
	st := out.Job.Status()
	if st.Rejected != len(chunks) {
		t.Fatalf("job counted %d rejections, want %d", st.Rejected, len(chunks))
	}

	// The requeued chunks are still assignable and the job completes.
	startWorkers(t, reg, 1)
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 300 {
		t.Fatalf("launched %d after recompute", res.Tally.Launched)
	}
}

// TestServeDrainsFleet covers Registry.Serve end to end over real TCP: a
// DrainOnEmpty registry accepts workers, finishes its jobs, tells the
// fleet Done and returns.
func TestServeDrainsFleet(t *testing.T) {
	reg := New(Options{DrainOnEmpty: true})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 400, ChunkPhotons: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- reg.Serve(l) }()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := workClient(conn, "tcp-worker"); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Job.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
