// The fleet-introspection end-to-end test lives in an external test
// package because it drives the real production worker (distsys.Work)
// against a service Registry, and distsys imports service's sibling
// packages from above it in the import graph.
package service_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/distsys"
	"repro/internal/mc"
	"repro/internal/protocol"
	"repro/internal/service"
	"repro/internal/source"
	"repro/internal/tissue"
)

type fleetRow struct {
	Name                  string  `json:"name"`
	ChunksCompleted       int     `json:"chunksCompleted"`
	ReportedPhotonsPerSec float64 `json:"reportedPhotonsPerSec"`
	InferredPhotonsPerSec float64 `json:"inferredPhotonsPerSec"`
	ChunkSeconds          float64 `json:"chunkSeconds"`
	Version               string  `json:"version"`
}

type spanRow struct {
	Chunk          int     `json:"chunk"`
	Worker         string  `json:"worker"`
	QueueSeconds   float64 `json:"queueSeconds"`
	WireSeconds    float64 `json:"wireSeconds"`
	ComputeSeconds float64 `json:"computeSeconds"`
	ReduceSeconds  float64 `json:"reduceSeconds"`
}

func decodeInto(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: http %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}

// TestFleetIntrospectionEndToEnd is the PR acceptance test: a real
// production worker (distsys.Work, telemetry on by default) drains a job,
// after which GET /fleet shows the worker's self-reported throughput,
// GET /jobs/{id}/spans decomposes every chunk into positive segments, and
// a report-less v4-style TaskRequest on a raw protocol connection is
// still served — the telemetry fields are additive, not required.
func TestFleetIntrospectionEndToEnd(t *testing.T) {
	reg := service.New(service.Options{})
	ts := httptest.NewServer(service.NewAPI(reg).Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		go distsys.Work(client, distsys.WorkerOptions{Name: fmt.Sprintf("e2e-%d", i)})
		t.Cleanup(func() { client.Close() })
	}

	spec := mc.NewSpec(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 6),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	const chunks = 8
	body, _ := json.Marshal(map[string]any{
		"spec": spec, "photons": 4000, "chunkPhotons": 500, "seed": 11,
	})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: http %d", resp.StatusCode)
	}

	deadline := time.Now().Add(60 * time.Second)
	for {
		var st struct {
			State string `json:"state"`
		}
		decodeInto(t, ts.URL+"/jobs/"+acc.ID, &st)
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every chunk got a span, and every span decomposes into positive
	// queue, compute and reduce segments (wire may round to ~0 on an
	// in-memory pipe, but can never be negative).
	var spans struct {
		Spans []spanRow `json:"spans"`
	}
	decodeInto(t, ts.URL+"/jobs/"+acc.ID+"/spans", &spans)
	if len(spans.Spans) != chunks {
		t.Fatalf("got %d spans for %d chunks", len(spans.Spans), chunks)
	}
	for _, sp := range spans.Spans {
		if sp.QueueSeconds <= 0 || sp.ComputeSeconds <= 0 || sp.ReduceSeconds <= 0 {
			t.Fatalf("span has non-positive segments: %+v", sp)
		}
		if sp.WireSeconds < 0 {
			t.Fatalf("span has negative wire time: %+v", sp)
		}
		if sp.Worker == "" {
			t.Fatalf("span lost its worker: %+v", sp)
		}
	}

	// The workers keep idle-polling after the job, so their piggybacked
	// reports (250ms cadence) land shortly; /fleet must then show a
	// nonzero self-reported rate next to the server-inferred one.
	var fleet struct {
		Workers []fleetRow `json:"workers"`
	}
	reportDeadline := time.Now().Add(15 * time.Second)
	for {
		decodeInto(t, ts.URL+"/fleet", &fleet)
		reported := 0
		for _, w := range fleet.Workers {
			if w.ReportedPhotonsPerSec > 0 {
				reported++
			}
		}
		if len(fleet.Workers) == 2 && reported == 2 {
			break
		}
		if time.Now().After(reportDeadline) {
			t.Fatalf("worker reports never surfaced on /fleet: %+v", fleet.Workers)
		}
		time.Sleep(25 * time.Millisecond)
	}
	completed := 0
	for _, w := range fleet.Workers {
		completed += w.ChunksCompleted
		if w.ChunkSeconds <= 0 || w.Version == "" {
			t.Fatalf("worker profile incomplete: %+v", w)
		}
		if w.ChunksCompleted > 0 && w.InferredPhotonsPerSec <= 0 {
			t.Fatalf("no inferred rate for a worker that completed chunks: %+v", w)
		}
	}
	if completed != chunks {
		t.Fatalf("fleet completed %d chunks, job had %d", completed, chunks)
	}

	// Backward compatibility: a bare TaskRequest with no Report (what a
	// pre-telemetry v4 worker sends) must still be served work.
	server, client := net.Pipe()
	go reg.HandleConn(server)
	defer client.Close()
	pc := protocol.NewConn(client)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: "legacy"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
		Request: &protocol.TaskRequest{}}); err != nil {
		t.Fatal(err)
	}
	msg, err := pc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != protocol.MsgTaskAssign && msg.Type != protocol.MsgNoWork {
		t.Fatalf("report-less request not served: got %v", msg.Type)
	}
	decodeInto(t, ts.URL+"/fleet", &fleet)
	if len(fleet.Workers) != 3 {
		t.Fatalf("legacy session missing from /fleet: %+v", fleet.Workers)
	}
	for _, w := range fleet.Workers {
		if w.Name == "legacy" && w.ReportedPhotonsPerSec != 0 {
			t.Fatalf("report-less session grew a reported rate: %+v", w)
		}
	}
}
