package service

import (
	"repro/internal/sched"
)

// Candidate summarises one schedulable job for a cross-job Policy decision.
type Candidate struct {
	ID              uint64
	Seq             uint64 // submission order, ascending
	Priority        int
	Weight          float64
	PendingChunks   int
	AssignedPhotons int64
}

// Policy chooses which job's chunk the next idle worker receives. The
// registry holds its lock across calls, so implementations may keep state
// without their own synchronisation. Pick receives at least one candidate
// and returns an index into the slice; Charge is called after the chosen
// job is granted work photons; Forget is called when a job leaves the
// schedulable set (done or cancelled).
type Policy interface {
	Name() string
	Pick(cands []Candidate) int
	Charge(id uint64, workPhotons int64, weight float64)
	Forget(id uint64)
}

type noAccounting struct{}

func (noAccounting) Charge(uint64, int64, float64) {}
func (noAccounting) Forget(uint64)                 {}

// fifoPolicy serves jobs strictly in submission order.
type fifoPolicy struct{ noAccounting }

// FIFO returns the first-come-first-served cross-job policy: the oldest
// job with pending work drains completely before the next starts.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Pick(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Seq < cands[best].Seq {
			best = i
		}
	}
	return best
}

// priorityPolicy serves the highest-priority job first, FIFO within a tier.
type priorityPolicy struct{ noAccounting }

// Priority returns the strict-priority policy: higher JobSpec.Priority
// pre-empts lower at every assignment; equal priorities drain FIFO.
func Priority() Policy { return priorityPolicy{} }

func (priorityPolicy) Name() string { return "priority" }

func (priorityPolicy) Pick(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Priority > cands[best].Priority ||
			(c.Priority == cands[best].Priority && c.Seq < cands[best].Seq) {
			best = i
		}
	}
	return best
}

// fairPolicy interleaves jobs in proportion to their weights using
// start-time fair queueing (sched.FairShare) with work = assigned photons.
type fairPolicy struct {
	fs *sched.FairShare
}

// FairShare returns the weighted fair-share policy: concurrent jobs
// receive fleet throughput proportional to JobSpec.Weight, and a job
// submitted mid-run competes from the current service frontier instead of
// starving the incumbents.
func FairShare() Policy { return &fairPolicy{fs: sched.NewFairShare()} }

func (p *fairPolicy) Name() string { return "fair-share" }

func (p *fairPolicy) Pick(cands []Candidate) int {
	ids := make([]uint64, len(cands))
	for i, c := range cands {
		p.fs.Observe(c.ID, c.Weight)
		ids[i] = c.ID
	}
	return p.fs.Pick(ids)
}

func (p *fairPolicy) Charge(id uint64, workPhotons int64, weight float64) {
	p.fs.Observe(id, weight)
	p.fs.Charge(id, float64(workPhotons))
}

func (p *fairPolicy) Forget(id uint64) { p.fs.Forget(id) }

// PolicyByName maps the CLI spelling to a policy; unknown names fall back
// to FIFO with ok=false.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "fifo", "":
		return FIFO(), true
	case "priority":
		return Priority(), true
	case "fair", "fair-share", "fairshare":
		return FairShare(), true
	default:
		return FIFO(), false
	}
}
