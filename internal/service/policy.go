package service

import (
	"repro/internal/sched"
)

// Candidate summarises one schedulable job for a cross-job Policy decision.
type Candidate struct {
	ID              uint64
	Seq             uint64 // submission order, ascending
	Priority        int
	Weight          float64
	Tenant          string  // owning tenant (DefaultTenant when unattributed)
	TenantWeight    float64 // tenant's share under TenantFairShare
	PendingChunks   int
	AssignedPhotons int64
}

// Policy chooses which job's chunk the next idle worker receives. The
// registry holds its lock across calls, so implementations may keep state
// without their own synchronisation. Pick receives at least one candidate
// and returns an index into the slice; Charge is called with the chosen
// candidate after its job is granted work photons; Forget is called when a
// job leaves the schedulable set (done or cancelled).
type Policy interface {
	Name() string
	Pick(cands []Candidate) int
	Charge(c Candidate, workPhotons int64)
	Forget(id uint64)
}

type noAccounting struct{}

func (noAccounting) Charge(Candidate, int64) {}
func (noAccounting) Forget(uint64)           {}

// fifoPolicy serves jobs strictly in submission order.
type fifoPolicy struct{ noAccounting }

// FIFO returns the first-come-first-served cross-job policy: the oldest
// job with pending work drains completely before the next starts.
func FIFO() Policy { return fifoPolicy{} }

func (fifoPolicy) Name() string { return "fifo" }

func (fifoPolicy) Pick(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Seq < cands[best].Seq {
			best = i
		}
	}
	return best
}

// priorityPolicy serves the highest-priority job first, FIFO within a tier.
type priorityPolicy struct{ noAccounting }

// Priority returns the strict-priority policy: higher JobSpec.Priority
// pre-empts lower at every assignment; equal priorities drain FIFO.
func Priority() Policy { return priorityPolicy{} }

func (priorityPolicy) Name() string { return "priority" }

func (priorityPolicy) Pick(cands []Candidate) int {
	best := 0
	for i, c := range cands {
		if c.Priority > cands[best].Priority ||
			(c.Priority == cands[best].Priority && c.Seq < cands[best].Seq) {
			best = i
		}
	}
	return best
}

// fairPolicy interleaves jobs in proportion to their weights using
// start-time fair queueing (sched.FairShare) with work = assigned photons.
type fairPolicy struct {
	fs *sched.FairShare[uint64]
}

// FairShare returns the weighted fair-share policy: concurrent jobs
// receive fleet throughput proportional to JobSpec.Weight, and a job
// submitted mid-run competes from the current service frontier instead of
// starving the incumbents.
func FairShare() Policy { return &fairPolicy{fs: sched.NewFairShare[uint64]()} }

func (p *fairPolicy) Name() string { return "fair-share" }

func (p *fairPolicy) Pick(cands []Candidate) int {
	ids := make([]uint64, len(cands))
	for i, c := range cands {
		p.fs.Observe(c.ID, c.Weight)
		ids[i] = c.ID
	}
	return p.fs.Pick(ids)
}

func (p *fairPolicy) Charge(c Candidate, workPhotons int64) {
	p.fs.Observe(c.ID, c.Weight)
	p.fs.Charge(c.ID, float64(workPhotons))
}

func (p *fairPolicy) Forget(id uint64) { p.fs.Forget(id) }

// tenantFairPolicy serves tenants by weighted start-time fair queueing and
// jobs within the picked tenant the same way — sched.TwoLevel with outer
// weights from the tenant table and inner weights from JobSpec.Weight.
type tenantFairPolicy struct {
	tl *sched.TwoLevel
	tj []sched.TenantJob // Pick scratch, reused under the registry lock
}

// TenantFairShare returns the two-level tenant→job fair-share policy: each
// tenant receives fleet throughput proportional to its table weight no
// matter how many jobs it queues, and a tenant's allocation splits across
// its own jobs by job weight.
func TenantFairShare() Policy { return &tenantFairPolicy{tl: sched.NewTwoLevel()} }

func (p *tenantFairPolicy) Name() string { return "tenant-fair" }

func (p *tenantFairPolicy) Pick(cands []Candidate) int {
	tj := p.tj[:0]
	for _, c := range cands {
		tj = append(tj, sched.TenantJob{
			Tenant: c.Tenant, TenantWeight: c.TenantWeight,
			Job: c.ID, JobWeight: c.Weight,
		})
	}
	p.tj = tj
	return p.tl.Pick(tj)
}

func (p *tenantFairPolicy) Charge(c Candidate, workPhotons int64) {
	p.tl.Charge(c.ID, float64(workPhotons))
}

func (p *tenantFairPolicy) Forget(id uint64) { p.tl.Forget(id) }

// PolicyByName maps the CLI spelling to a policy; unknown names fall back
// to FIFO with ok=false.
func PolicyByName(name string) (Policy, bool) {
	switch name {
	case "fifo", "":
		return FIFO(), true
	case "priority":
		return Priority(), true
	case "fair", "fair-share", "fairshare":
		return FairShare(), true
	case "tenant-fair", "tenant", "tenantfair":
		return TenantFairShare(), true
	default:
		return FIFO(), false
	}
}
