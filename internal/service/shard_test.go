package service

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// TestShardRoutingIsPureFunctionOfKey is the routing property test: shard
// assignment depends on nothing but (key bytes, shard count) — no gateway
// state, no clock, no registration order — so any two gateways (or one
// gateway across restarts) route identically, and the key→ID derivation
// lands GETs on the same shard POSTs went to.
func TestShardRoutingIsPureFunctionOfKey(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10_000; trial++ {
		var k Key
		rng.Read(k[:])
		for _, shards := range []int{1, 2, 3, 4, 7, 16} {
			got := ShardOfKey(k, shards)
			if got < 0 || got >= shards {
				t.Fatalf("ShardOfKey(%x, %d) = %d out of range", k[:8], shards, got)
			}
			if again := ShardOfKey(k, shards); again != got {
				t.Fatalf("ShardOfKey not deterministic: %d then %d", got, again)
			}
			// The ID a registry mints from this key routes to the same
			// shard (modulo the reserved-zero nudge, which stays in shard
			// 0's range).
			if byID := ShardOfID(KeyID(k), shards); byID != got {
				t.Fatalf("ShardOfID(KeyID) = %d, ShardOfKey = %d (shards %d, key %x)",
					byID, got, shards, k[:8])
			}
		}
	}
}

// TestShardRangesContiguousAndExhaustive pins the partition shape: walking
// IDs upward crosses each shard exactly once, in order — the property that
// makes "shard i owns range i" documentation true and keeps a renumbered
// replica list from moving keys.
func TestShardRangesContiguousAndExhaustive(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 5, 8} {
		width := uint64(math.MaxUint64)/uint64(shards) + 1
		prev := -1
		for s := 0; s < shards; s++ {
			lo := width * uint64(s)
			cur := ShardOfID(lo, shards)
			if cur != prev+1 {
				t.Fatalf("shards=%d: range start %d maps to shard %d, want %d",
					shards, lo, cur, prev+1)
			}
			// The range is closed under its width (last shard absorbs the
			// remainder up to MaxUint64).
			hi := uint64(math.MaxUint64)
			if s < shards-1 {
				hi = lo + width - 1
			}
			if got := ShardOfID(hi, shards); got != cur {
				t.Fatalf("shards=%d: range end %d maps to shard %d, want %d",
					shards, hi, got, cur)
			}
			prev = cur
		}
		if prev != shards-1 {
			t.Fatalf("shards=%d: walk ended on shard %d", shards, prev)
		}
	}
	if got := ShardOfID(0, 4); got != 0 {
		t.Fatalf("ShardOfID(0) = %d, want 0", got)
	}
	if got := ShardOfID(math.MaxUint64, 4); got != 3 {
		t.Fatalf("ShardOfID(max) = %d, want 3", got)
	}
}

// TestRoutingKeysMatchSubmit pins the gateway's key derivation to the
// registry's own: RoutingKeys on a request-shaped spec yields exactly the
// key Submit files the job under (observable through the minted ID).
func TestRoutingKeysMatchSubmit(t *testing.T) {
	mk := func() JobSpec {
		return JobSpec{Spec: slabSpec(6), TotalPhotons: 400, ChunkPhotons: 100, Seed: 9}
	}
	routed := mk()
	key, pkey, err := RoutingKeys(&routed, 0)
	if err != nil {
		t.Fatalf("RoutingKeys: %v", err)
	}
	if pkey == (Key{}) || key == pkey {
		t.Fatalf("physics key missing or equal to content key")
	}
	reg := New(Options{})
	out, err := reg.Submit(mk())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if want := KeyID(key); out.Job.ID() != want {
		t.Fatalf("Submit minted id %016x, RoutingKeys predicts %016x", out.Job.ID(), want)
	}
	if got := binary.BigEndian.Uint64(key[:8]); KeyID(key) != got && got != 0 {
		t.Fatalf("KeyID(%x) = %d", key[:8], KeyID(key))
	}
	// Malformed specs come back typed, exactly like Submit's own 422 path.
	bad := JobSpec{Spec: slabSpec(6)} // no photons, no target
	if _, _, err := RoutingKeys(&bad, 0); !IsInvalid(err) {
		t.Fatalf("RoutingKeys on invalid spec: %v (want InvalidJobError)", err)
	}
}
