package service

import (
	"fmt"
	"net"
	"sync"
	"testing"
)

// BenchmarkServicePlaneBatched mirrors cmd/mcbench's service-plane
// workload (many 1-photon chunks so dispatch overhead dominates) for
// profiling the registry hot path in isolation.
func BenchmarkServicePlaneBatched(b *testing.B) {
	const jobs, chunksPerJob, workers = 48, 16, 4
	for n := 0; n < b.N; n++ {
		reg := New(Options{DrainOnEmpty: true, CacheSize: -1})
		handles := make([]*Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			out, err := reg.Submit(JobSpec{
				Spec:         slabSpec(5),
				TotalPhotons: chunksPerJob,
				ChunkPhotons: 1,
				Seed:         uint64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, out.Job)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			server, client := net.Pipe()
			go reg.HandleConn(server)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, _ = batchClient(client, fmt.Sprintf("bench-%d", w), 4)
			}(w)
		}
		for _, j := range handles {
			if _, err := j.Wait(0); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}
