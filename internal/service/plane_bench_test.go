package service

import (
	"fmt"
	"net"
	"sync"
	"testing"

	"repro/internal/wal"
)

// BenchmarkServicePlaneBatched mirrors cmd/mcbench's service-plane
// workload (many 1-photon chunks so dispatch overhead dominates) for
// profiling the registry hot path in isolation.
func BenchmarkServicePlaneBatched(b *testing.B) {
	const jobs, chunksPerJob, workers = 48, 16, 4
	for n := 0; n < b.N; n++ {
		reg := New(Options{DrainOnEmpty: true, CacheSize: -1})
		handles := make([]*Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			out, err := reg.Submit(JobSpec{
				Spec:         slabSpec(5),
				TotalPhotons: chunksPerJob,
				ChunkPhotons: 1,
				Seed:         uint64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, out.Job)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			server, client := net.Pipe()
			go reg.HandleConn(server)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, _ = batchClient(client, fmt.Sprintf("bench-%d", w), 4)
			}(w)
		}
		for _, j := range handles {
			if _, err := j.Wait(0); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
	}
}

// BenchmarkServicePlaneWAL is the same workload with the crash journal
// armed (interval fsync) — the WAL-on half of cmd/mcbench's A/B, kept
// here so the journal's hot-path cost is profileable in isolation.
func BenchmarkServicePlaneWAL(b *testing.B) {
	const jobs, chunksPerJob, workers = 48, 16, 4
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		wlog, _, err := wal.Open(wal.Options{Dir: b.TempDir(), Fsync: wal.FsyncInterval})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		reg := New(Options{
			DrainOnEmpty: true, CacheSize: -1,
			Journal: NewJournal(wlog, JournalOptions{}),
		})
		handles := make([]*Job, 0, jobs)
		for i := 0; i < jobs; i++ {
			out, err := reg.Submit(JobSpec{
				Spec:         slabSpec(5),
				TotalPhotons: chunksPerJob,
				ChunkPhotons: 1,
				Seed:         uint64(i + 1),
			})
			if err != nil {
				b.Fatal(err)
			}
			handles = append(handles, out.Job)
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			server, client := net.Pipe()
			go reg.HandleConn(server)
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, _ = batchClient(client, fmt.Sprintf("bench-%d", w), 4)
			}(w)
		}
		for _, j := range handles {
			if _, err := j.Wait(0); err != nil {
				b.Fatal(err)
			}
		}
		wg.Wait()
		b.StopTimer()
		wlog.Close()
		b.StartTimer()
	}
}
