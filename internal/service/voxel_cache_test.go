package service

import (
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/source"
	"repro/internal/voxel"
)

// voxelSpec builds a small heterogeneous voxel job: a 5 mm slab grid with
// an absorbing sphere, cheap enough to drain in-process but exercising the
// fused DDA path end to end over the wire protocol.
func voxelSpec(t *testing.T) *mc.Spec {
	t.Helper()
	g := voxel.New("cache-slab", 30, 30, 10, 1, 1, 0.5, "phantom",
		optics.Properties{MuA: 0.02, MuS: 10, G: 0.9, N: 1.4})
	inc, err := g.AddMedium("absorber", optics.Properties{MuA: 1.5, MuS: 8, G: 0.9, N: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if painted := g.PaintSphere(inc, 0, 0, 2.5, 1.5); painted == 0 {
		t.Fatal("sphere painted nothing")
	}
	return mc.NewVoxelSpec(g,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

// TestVoxelCacheHitMatchesRecompute extends the stream-merge reproducibility
// contract to the service layer over a voxel geometry: a job computed by a
// worker fleet must equal the local stream-by-stream reduction, a duplicate
// submission must be served from the cache with the identical tally, and an
// independent registry recomputing the same job from scratch must reproduce
// it — cache hits are indistinguishable from recomputation. Run under
// -race in CI, this also guards the accelerator build and cache cloning
// for data races.
func TestVoxelCacheHitMatchesRecompute(t *testing.T) {
	spec := voxelSpec(t)
	const total, chunk, seed = 2000, 250, 37

	reg := New(Options{})
	startWorkers(t, reg, 3)
	out, err := reg.Submit(JobSpec{Spec: spec, TotalPhotons: total, ChunkPhotons: chunk, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Fleet reduction equals the local stream-by-stream ground truth
	// (merge order may differ, so compare to floating-point tolerance).
	want := localTally(t, voxelSpec(t), total, chunk, seed)
	if res.Tally.Launched != want.Launched || res.Tally.DetectedCount != want.DetectedCount {
		t.Fatalf("counts differ: launched %d vs %d, detected %d vs %d",
			res.Tally.Launched, want.Launched, res.Tally.DetectedCount, want.DetectedCount)
	}
	for _, c := range []struct {
		name string
		a, b float64
	}{
		{"absorbed", res.Tally.AbsorbedWeight, want.AbsorbedWeight},
		{"diffuse", res.Tally.DiffuseWeight, want.DiffuseWeight},
		{"detected", res.Tally.DetectedWeight, want.DetectedWeight},
		{"lateral", res.Tally.LateralWeight, want.LateralWeight},
		{"transmit", res.Tally.TransmitWeight, want.TransmitWeight},
	} {
		if math.Abs(c.a-c.b) > 1e-9 {
			t.Errorf("%s weight: fleet %g vs local %g", c.name, c.a, c.b)
		}
	}

	// Duplicate submission: a cache hit carrying the identical result.
	dup, err := reg.Submit(JobSpec{Spec: voxelSpec(t), TotalPhotons: total, ChunkPhotons: chunk, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("identical voxel submission not served from cache")
	}
	dupRes, err := dup.Job.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dupRes.CacheHit {
		t.Fatal("cached result not flagged")
	}
	if !reflect.DeepEqual(dupRes.Tally, res.Tally) {
		t.Fatal("cache-hit tally differs from the original result")
	}

	// A fresh registry recomputing from scratch must reproduce the result:
	// the cache is a pure shortcut, never a divergence.
	reg2 := New(Options{CacheSize: -1})
	startWorkers(t, reg2, 2)
	out2, err := reg2.Submit(JobSpec{Spec: voxelSpec(t), TotalPhotons: total, ChunkPhotons: chunk, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if out2.Cached {
		t.Fatal("cache-disabled registry reported a cache hit")
	}
	res2, err := out2.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Tally.AbsorbedWeight-res.Tally.AbsorbedWeight) > 1e-9 ||
		math.Abs(res2.Tally.DetectedWeight-res.Tally.DetectedWeight) > 1e-9 ||
		res2.Tally.DetectedCount != res.Tally.DetectedCount {
		t.Fatal("recomputed voxel job differs from the cached one")
	}
	if bal := res2.Tally.EnergyBalance(); math.Abs(bal) > 1e-6*res2.Tally.N() {
		t.Fatalf("energy balance broken through the service layer: %g", bal)
	}
}
