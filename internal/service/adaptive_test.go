package service

import (
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/mc"
)

// targetSpec returns the layered spec precision tests steer by diffuse
// reflectance, with moments pre-enabled so fixed-count runs of it are
// physics-index comparable to targeted ones.
func targetSpec(thicknessMM float64) *mc.Spec {
	spec := slabSpec(thicknessMM)
	spec.TrackMoments = true
	return spec
}

// TestRunAdaptiveMeetsAcceptance pins the headline acceptance numbers on
// the deterministic local loop: a 1%-RSE diffuse-reflectance job stops
// ≥5× below a conservative fixed budget, its reported 95% CI covers the
// value of a reference run ten times longer, and its estimate matches the
// tally's direct ratio.
func TestRunAdaptiveMeetsAcceptance(t *testing.T) {
	const (
		chunk              = 500
		conservativeBudget = 100_000 // what a cautious user runs for 1% on Rd
	)
	spec := targetSpec(5)
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The 24-chunk floor puts the first RSE test past the point where 1%
	// is genuinely reachable (true RSE at 4k photons is ~1.3% here): a
	// lower floor would select for optimistically small early variance
	// estimates and stop with an overconfident CI — the stopping rule's
	// standard bias, which this test would then flag as missed coverage.
	tgt := mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.01,
		MinPhotons: 24 * chunk, MaxPhotons: conservativeBudget}
	tally, err := mc.RunAdaptive(cfg, tgt, 41, chunk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tgt.MetBy(tally) {
		t.Fatalf("adaptive run stopped unmet: %d photons, RSE %g",
			tally.Launched, tally.RelStdErr(mc.ObsDiffuse))
	}
	if tally.Launched*5 > conservativeBudget {
		t.Fatalf("adaptive run used %d photons, not ≥5× under the %d budget",
			tally.Launched, conservativeBudget)
	}

	est, ci := tally.EstimateCI(mc.ObsDiffuse)
	if math.Abs(est-tally.DiffuseReflectance()) > 1e-9 {
		t.Fatalf("moment estimate %g != direct ratio %g", est, tally.DiffuseReflectance())
	}

	// Reference: ten times the adaptive spend, independent streams.
	refCfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.RunParallel(refCfg, 10*tally.Launched, 97, 8)
	if err != nil {
		t.Fatal(err)
	}
	refEst, refCI := ref.EstimateCI(mc.ObsDiffuse)
	if math.Abs(est-refEst) > ci+refCI {
		t.Fatalf("adaptive CI does not cover the 10× reference: |%.5f−%.5f| = %.5f > %.5f+%.5f",
			est, refEst, math.Abs(est-refEst), ci, refCI)
	}

	// Determinism: the loop is a pure function of its inputs.
	again, err := mc.RunAdaptive(cfg, tgt, 41, chunk, 4)
	if err != nil {
		t.Fatal(err)
	}
	if again.Launched != tally.Launched || again.DiffuseWeight != tally.DiffuseWeight {
		t.Fatal("RunAdaptive is not deterministic for fixed inputs")
	}
}

// TestPrecisionTargetedJobEndToEnd drives a run-until-precision job over a
// 3-worker batched fleet: the registry must issue chunks open-endedly,
// finalize at the target, normalize by the photons actually simulated, and
// report a sane estimate ± CI in both Result and Status.
func TestPrecisionTargetedJobEndToEnd(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	for i := 0; i < 3; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		name := string(rune('a' + i))
		go func() { _, _ = batchClient(client, name, 3) }()
		t.Cleanup(func() { client.Close() })
	}

	spec := targetSpec(5)
	out, err := reg.Submit(JobSpec{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         41,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.01},
		ChunkTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cached || out.Coalesced {
		t.Fatal("fresh precision job reported cached/coalesced")
	}
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TargetMet {
		t.Fatalf("job finished unmet after %d photons", res.Tally.Launched)
	}
	launched := res.Tally.Launched
	if launched < DefaultMinTargetChunks*500 {
		t.Fatalf("stopped below the %d-photon floor: %d", DefaultMinTargetChunks*500, launched)
	}
	if launched > 20_000 {
		t.Fatalf("spent %d photons for 1%% on Rd; expected a few thousand", launched)
	}
	if rse := res.Tally.RelStdErr(mc.ObsDiffuse); rse > 0.01 {
		t.Fatalf("reported RSE %g above the 0.01 target", rse)
	}
	// Normalized by photons actually simulated: the launched count must
	// equal the reduced chunks times the chunk size.
	var completed int64
	for _, done := range out.Job.completed {
		if done {
			completed++
		}
	}
	if launched != completed*500 {
		t.Fatalf("launched %d != %d reduced chunks × 500", launched, completed)
	}

	// The estimate must agree with an independent 10× reference well
	// inside a generous multiple of the combined uncertainty (the chunk
	// set a nondeterministic fleet reduces varies run to run, so this
	// bound is deliberately loose — the tight CI-coverage check lives in
	// the deterministic TestRunAdaptiveMeetsAcceptance).
	est, ci := res.Tally.EstimateCI(mc.ObsDiffuse)
	refCfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mc.RunParallel(refCfg, 10*launched, 97, 8)
	if err != nil {
		t.Fatal(err)
	}
	refEst, refCI := ref.EstimateCI(mc.ObsDiffuse)
	if math.Abs(est-refEst) > 3*(ci+refCI) {
		t.Fatalf("fleet estimate %.5f vs reference %.5f: outside 3×(%.5f+%.5f)",
			est, refEst, ci, refCI)
	}

	st := out.Job.Status()
	if !st.TargetMet || st.PhotonsRun != launched {
		t.Fatalf("status targetMet=%v photonsRun=%d, want true/%d", st.TargetMet, st.PhotonsRun, launched)
	}
	if st.Estimate == 0 || st.RelStdErr == 0 || st.CI95 == 0 {
		t.Fatalf("status estimate triple missing: %+v", st)
	}
	if st.Target == nil || st.Target.MaxPhotons == 0 {
		t.Fatal("status does not echo the normalized target")
	}

	// Identical resubmission: exact-key cache hit, no new chunks.
	before := reg.Stats().ChunksAssigned
	dup, err := reg.Submit(JobSpec{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         41,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.01},
		ChunkTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("identical precision resubmission not cache-served")
	}
	// A *looser* target of the same physics is met-or-exceeded by the
	// stored run: served from the physics index, again without photons.
	loose, err := reg.Submit(JobSpec{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         41,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Cached {
		t.Fatal("looser precision request not served by meets-or-exceeds cache")
	}
	looseRes, err := loose.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if looseRes.Tally.Launched != launched || !looseRes.TargetMet {
		t.Fatalf("meets-or-exceeds hit returned %d photons, met=%v",
			looseRes.Tally.Launched, looseRes.TargetMet)
	}
	if after := reg.Stats().ChunksAssigned; after != before {
		t.Fatalf("cache-served submissions assigned %d chunks", after-before)
	}
	// A precision submission probes both the exact and the physics index
	// but must count as ONE cache lookup: the fresh submission recorded
	// one miss, the two cache-served ones one hit each.
	st2 := reg.Stats()
	if st2.CacheMisses != 1 || st2.CacheHits != 2 {
		t.Fatalf("cache counters hits=%d misses=%d, want 2/1", st2.CacheHits, st2.CacheMisses)
	}
}

// TestFixedJobServesPrecisionRequest covers the other meets-or-exceeds
// direction: a deep fixed-count run with TrackMoments set satisfies a
// later precision request for the same decomposition.
func TestFixedJobServesPrecisionRequest(t *testing.T) {
	reg := New(Options{})
	startWorkers(t, reg, 2)

	spec := targetSpec(6)
	out, err := reg.Submit(JobSpec{Spec: spec, TotalPhotons: 6000, ChunkPhotons: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Moments == nil {
		t.Fatal("TrackMoments fixed job produced no moments")
	}
	rse := res.Tally.RelStdErr(mc.ObsDiffuse)
	if math.IsInf(rse, 1) {
		t.Fatal("fixed job RSE unavailable")
	}

	prec, err := reg.Submit(JobSpec{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         7,
		Target: &mc.Target{Observable: mc.ObsDiffuse, RelErr: rse * 1.5,
			MinPhotons: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !prec.Cached {
		t.Fatal("precision request not served by the fixed run's physics entry")
	}
	pres, err := prec.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Tally.Launched != 6000 {
		t.Fatalf("served tally has %d photons, want 6000", pres.Tally.Launched)
	}

	// A *stricter* target than the stored run achieved must miss the
	// index and run fresh chunks.
	strict, err := reg.Submit(JobSpec{
		Spec:         spec,
		ChunkPhotons: 500,
		Seed:         7,
		Target:       &mc.Target{Observable: mc.ObsDiffuse, RelErr: rse / 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Cached {
		t.Fatal("stricter request served by a shallower stored run")
	}
	sres, err := strict.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := sres.Tally.RelStdErr(mc.ObsDiffuse); got > rse/4 {
		t.Fatalf("strict job finished with RSE %g > %g", got, rse/4)
	}
	if sres.Tally.Launched <= 6000 {
		t.Fatalf("strict job spent %d photons, no more than the stored run", sres.Tally.Launched)
	}
}

// TestPrecisionJobBudgetCap: a target the budget cannot reach finishes at
// its photon cap, unmet, reporting the achieved RSE — it must not spin.
func TestPrecisionJobBudgetCap(t *testing.T) {
	reg := New(Options{})
	startWorkers(t, reg, 2)

	out, err := reg.Submit(JobSpec{
		Spec:         targetSpec(5),
		ChunkPhotons: 500,
		Seed:         11,
		Target: &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.0001,
			MinPhotons: 1000, MaxPhotons: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetMet {
		t.Fatal("0.01% RSE reported met on 3000 photons")
	}
	if res.Tally.Launched != 3000 {
		t.Fatalf("budget-capped job launched %d, want exactly 3000", res.Tally.Launched)
	}
	if math.IsInf(res.Tally.RelStdErr(mc.ObsDiffuse), 1) {
		t.Fatal("capped job reports no achieved RSE")
	}
}

// TestNormalizePrecisionDefaults pins the submission normalization: chunk
// and floor defaults, operator cap clamping, chunk-aligned budgets, the
// fixed-photon field ignored, and the caller's spec never mutated.
func TestNormalizePrecisionDefaults(t *testing.T) {
	spec := slabSpec(5) // TrackMoments deliberately false
	js := JobSpec{
		Spec:         spec,
		TotalPhotons: 999_999, // ignored for targeted jobs
		Seed:         1,
		Target:       &mc.Target{RelErr: 0.02},
	}
	if err := js.normalize(0); err != nil {
		t.Fatal(err)
	}
	if js.TotalPhotons != 0 {
		t.Fatalf("TotalPhotons %d not cleared", js.TotalPhotons)
	}
	if js.ChunkPhotons != DefaultTargetChunkPhotons {
		t.Fatalf("chunk default %d, want %d", js.ChunkPhotons, DefaultTargetChunkPhotons)
	}
	if js.Target.Observable != mc.ObsDiffuse {
		t.Fatalf("observable default %q", js.Target.Observable)
	}
	if js.Target.MinPhotons != DefaultMinTargetChunks*DefaultTargetChunkPhotons {
		t.Fatalf("min floor %d", js.Target.MinPhotons)
	}
	if js.Target.MaxPhotons != DefaultMaxTargetPhotons {
		t.Fatalf("max default %d", js.Target.MaxPhotons)
	}
	if !js.Spec.TrackMoments {
		t.Fatal("normalized spec does not track moments")
	}
	if spec.TrackMoments {
		t.Fatal("normalize mutated the caller's spec")
	}

	// Operator cap clamps and budgets align to whole chunks.
	js2 := JobSpec{
		Spec:         slabSpec(5),
		ChunkPhotons: 300,
		Target:       &mc.Target{RelErr: 0.01, MinPhotons: 500, MaxPhotons: 10_000_000},
	}
	if err := js2.normalize(1000); err != nil {
		t.Fatal(err)
	}
	if js2.Target.MaxPhotons != 1200 { // clamped to 1000, rounded up to 4 chunks
		t.Fatalf("cap %d, want 1200", js2.Target.MaxPhotons)
	}

	// A defaulted floor shrinks to a small budget instead of raising it…
	js3 := JobSpec{
		Spec:         slabSpec(5),
		ChunkPhotons: 10_000,
		Target:       &mc.Target{RelErr: 0.01, MaxPhotons: 50_000},
	}
	if err := js3.normalize(0); err != nil {
		t.Fatal(err)
	}
	if js3.Target.MaxPhotons != 50_000 || js3.Target.MinPhotons != 50_000 {
		t.Fatalf("small budget mangled: min %d max %d", js3.Target.MinPhotons, js3.Target.MaxPhotons)
	}
	// …and an explicit floor above the operator cap is rejected, never
	// silently granted a bigger budget than the operator allows.
	js4 := JobSpec{
		Spec:         slabSpec(5),
		ChunkPhotons: 300,
		Target:       &mc.Target{RelErr: 0.01, MinPhotons: 10_000_000_000},
	}
	if err := js4.normalize(1000); err == nil {
		t.Fatalf("floor above the operator cap accepted: %+v", js4.Target)
	}

	// Invalid targets are rejected.
	for _, bad := range []mc.Target{
		{RelErr: 0},
		{RelErr: 1.5},
		{RelErr: 0.1, Observable: "nonsense"},
		{RelErr: 0.1, MinPhotons: -1},
	} {
		bad := bad
		js := JobSpec{Spec: slabSpec(5), Target: &bad}
		if err := js.normalize(0); err == nil {
			t.Fatalf("target %+v accepted", bad)
		}
	}
}

// TestPrecisionCheckpointResume round-trips an in-flight precision job
// through Snapshot/SubmitSnapshot: completed chunks stay reduced, the
// estimate is restored, and the resumed job can still finish.
func TestPrecisionCheckpointResume(t *testing.T) {
	reg := New(Options{})
	startWorkers(t, reg, 2)
	spec := targetSpec(7)
	tgt := &mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.008}
	out, err := reg.Submit(JobSpec{Spec: spec, ChunkPhotons: 400, Seed: 19, Target: tgt})
	if err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	snap := out.Job.Snapshot()
	if snap.NChunks == 0 || snap.Tally.Moments == nil {
		t.Fatalf("snapshot lost the precision state: %d chunks", snap.NChunks)
	}

	// Resuming a met snapshot in a fresh registry is born done.
	reg2 := New(Options{})
	j2, err := reg2.SubmitSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("met snapshot did not resume as done")
	}
	res2, err := j2.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tally.Launched != res.Tally.Launched || !res2.TargetMet {
		t.Fatalf("resume changed the result: %d vs %d photons", res2.Tally.Launched, res.Tally.Launched)
	}

	// A partial snapshot (half the chunks dropped) resumes active and
	// completes over a fleet.
	partial := *snap
	partial.Completed = snap.Completed[:len(snap.Completed)/2]
	reg3 := New(Options{})
	startWorkers(t, reg3, 2)
	j3, err := reg3.SubmitSnapshot(&partial)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := j3.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res3.TargetMet {
		t.Fatal("resumed partial job finished unmet")
	}
	if got := res3.Tally.RelStdErr(tgt.Observable); got > tgt.RelErr {
		t.Fatalf("resumed job RSE %g above target", got)
	}
}
