package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// scrape fetches url and parses the Prometheus text exposition into a
// map keyed by the full series (name plus label set, exactly as
// rendered), so tests assert on e.g.
// `service_cache_hits_total{index="exact"}`.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: http %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, body)
}

func parseExposition(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// obsServer builds a registry instrumented into its own obs.Registry and
// an HTTP server carrying both the job API and the debug surface on one
// mux — the multiplexed layout cmd/mcqueue defaults to.
func obsServer(t *testing.T, opts Options) (*Registry, *httptest.Server) {
	t.Helper()
	oreg := obs.NewRegistry()
	opts.Obs = oreg
	reg := New(opts)
	ready := obs.NewReadiness("fleet-listener")
	ready.Set("fleet-listener", true)
	mux := http.NewServeMux()
	NewAPI(reg).Register(mux)
	obs.RegisterDebug(mux, oreg, ready)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return reg, ts
}

// TestObsMetricsEndToEnd runs concurrent jobs plus a cached resubmission
// through a fleet and checks the scraped service-plane series against the
// invariants the instrumentation promises: grants cover completions, the
// cache-probe ledger balances, gauges reflect the live fleet, and the
// per-job event trace tells the submitted → granted → completed →
// finalized story.
func TestObsMetricsEndToEnd(t *testing.T) {
	reg, ts := obsServer(t, Options{Policy: FairShare()})
	startWorkers(t, reg, 3)

	specA, specB := slabSpec(5), slabSpec(8)
	const totalA, chunkA, seedA = 3000, 250, 31
	const totalB, chunkB, seedB = 2000, 200, 41

	accA, code := postJob(t, ts, JobRequest{Spec: specA, Photons: totalA, ChunkPhotons: chunkA, Seed: seedA})
	if code != http.StatusCreated {
		t.Fatalf("submit A: http %d", code)
	}
	accB, code := postJob(t, ts, JobRequest{Spec: specB, Photons: totalB, ChunkPhotons: chunkB, Seed: seedB})
	if code != http.StatusCreated {
		t.Fatalf("submit B: http %d", code)
	}
	waitDone(t, ts, accA.ID)
	waitDone(t, ts, accB.ID)

	// Exact-index cache hit: resubmit A verbatim.
	if dup, code := postJob(t, ts, JobRequest{Spec: specA, Photons: totalA, ChunkPhotons: chunkA, Seed: seedA}); code != http.StatusOK || !dup.Cached {
		t.Fatalf("resubmission not cached: http %d %+v", code, dup)
	}

	m := scrape(t, ts.URL+"/metrics")
	st := reg.Stats()

	const wantChunks = totalA/chunkA + totalB/chunkB // 12 + 10
	if got := m["service_chunks_completed_total"]; got != wantChunks {
		t.Fatalf("chunks completed %g, want %d", got, wantChunks)
	}
	if m["service_chunks_granted_total"] < m["service_chunks_completed_total"] {
		t.Fatalf("granted %g < completed %g",
			m["service_chunks_granted_total"], m["service_chunks_completed_total"])
	}
	if got := m["service_jobs_submitted_total"]; got != 2 {
		t.Fatalf("jobs submitted %g, want 2", got)
	}
	if got := m["service_photons_reduced_total"]; got != totalA+totalB {
		t.Fatalf("photons reduced %g, want %d", got, totalA+totalB)
	}

	// The cache-probe ledger balances: every lookup is a hit on exactly one
	// index or a miss.
	hits := m[`service_cache_hits_total{index="exact"}`] + m[`service_cache_hits_total{index="physics"}`]
	if lookups := m["service_cache_lookups_total"]; hits+m["service_cache_misses_total"] != lookups {
		t.Fatalf("cache ledger unbalanced: %g hits + %g misses != %g lookups",
			hits, m["service_cache_misses_total"], lookups)
	}
	if m[`service_cache_hits_total{index="exact"}`] != 1 {
		t.Fatalf("exact hits %g, want 1", m[`service_cache_hits_total{index="exact"}`])
	}

	// Scrape-time gauges agree with Stats().
	if got := m["fleet_workers"]; got != float64(st.Workers) || got != 3 {
		t.Fatalf("fleet_workers %g, stats %d, want 3", got, st.Workers)
	}
	if got := m[`service_jobs{state="done"}`]; got != float64(st.JobsDone) {
		t.Fatalf(`service_jobs{state="done"} %g != stats %d`, got, st.JobsDone)
	}

	// Reduce latency histogram saw every merged group.
	if got := m["service_reduce_seconds_count"]; got == 0 || got != float64(st.TallyMerges) {
		t.Fatalf("reduce histogram count %g, stats report %d merges", got, st.TallyMerges)
	}

	// The debug surface rides the same mux as the API.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: http %d", path, resp.StatusCode)
		}
	}

	// Job A's lifecycle trace: submitted first, then grants and
	// completions for every chunk, finalized last.
	var evs eventsBody
	if code := getJSON(t, ts.URL+"/jobs/"+accA.ID+"/events", &evs); code != http.StatusOK {
		t.Fatalf("events: http %d", code)
	}
	if evs.Dropped != 0 {
		t.Fatalf("small job dropped %d events", evs.Dropped)
	}
	if len(evs.Events) == 0 || evs.Events[0].Kind != "submitted" {
		t.Fatalf("trace does not open with submitted: %+v", evs.Events)
	}
	if last := evs.Events[len(evs.Events)-1]; last.Kind != "finalized" {
		t.Fatalf("trace does not close with finalized: %+v", last)
	}
	counts := map[string]int{}
	for _, e := range evs.Events {
		counts[e.Kind]++
		switch e.Kind {
		case "chunk-granted", "chunk-completed":
			if e.Chunk == nil || *e.Chunk < 0 || *e.Chunk >= totalA/chunkA {
				t.Fatalf("%s event with bad chunk: %+v", e.Kind, e)
			}
			if e.Worker == "" {
				t.Fatalf("%s event without worker: %+v", e.Kind, e)
			}
		case "submitted", "finalized":
			if e.Chunk != nil {
				t.Fatalf("%s event carries a chunk id: %+v", e.Kind, e)
			}
		}
	}
	if counts["chunk-completed"] != totalA/chunkA {
		t.Fatalf("trace completed %d chunks, want %d", counts["chunk-completed"], totalA/chunkA)
	}
	if counts["chunk-granted"] < counts["chunk-completed"] {
		t.Fatalf("trace granted %d < completed %d",
			counts["chunk-granted"], counts["chunk-completed"])
	}
}

// TestObsShedOverCapacity pins the -max-active-jobs admission behaviour:
// over the cap POST /jobs sheds with 429 + Retry-After and the shed
// counter moves, while coalescing and cache hits bypass the active-jobs
// cap (they add no job; with no token-bucket policy they shed nowhere).
func TestObsShedOverCapacity(t *testing.T) {
	_, ts := obsServer(t, Options{MaxActiveJobs: 1})

	// No workers: the first job camps on the only active slot.
	acc, code := postJob(t, ts, JobRequest{Spec: slabSpec(5), Photons: 1000, ChunkPhotons: 100, Seed: 7})
	if code != http.StatusCreated {
		t.Fatalf("submit: http %d", code)
	}

	// A distinct second job is shed — raw request so the header is visible.
	body, _ := json.Marshal(JobRequest{Spec: slabSpec(9), Photons: 1000, ChunkPhotons: 100, Seed: 8})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap submit: http %d, want 429", resp.StatusCode)
	}
	// One active job against the cap → a one-second, depth-derived wait
	// (the deeper-backlog shape is pinned in TestHTTPRetryAfterShapes).
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("429 Retry-After %q, want %q", got, "1")
	}

	// Coalescing with the active job does not count against the cap.
	dup, code := postJob(t, ts, JobRequest{Spec: slabSpec(5), Photons: 1000, ChunkPhotons: 100, Seed: 7})
	if code != http.StatusOK || !dup.Coalesced {
		t.Fatalf("coalesced resubmission shed: http %d %+v", code, dup)
	}
	if dup.ID != acc.ID {
		t.Fatalf("coalesced onto %s, want %s", dup.ID, acc.ID)
	}

	m := scrape(t, ts.URL+"/metrics")
	if got := m[`service_jobs_shed_total{reason="cap"}`]; got != 1 {
		t.Fatalf(`jobs shed{reason="cap"} %g, want 1`, got)
	}
	if got := m[`service_tenant_jobs_shed_total{tenant="default"}`]; got != 1 {
		t.Fatalf("default-tenant shed %g, want 1", got)
	}
	if got := m["service_jobs_submitted_total"]; got != 1 {
		t.Fatalf("jobs submitted %g, want 1", got)
	}
}

// TestObsResumeNotCountedAsSubmit pins the resume-accounting fix: a
// checkpointed job restored via SubmitSnapshot moves the dedicated resumed
// counter, never the submitted one, and the scraped series agree with the
// Stats rollup — per tenant included.
func TestObsResumeNotCountedAsSubmit(t *testing.T) {
	seed := New(Options{})
	out, err := seed.Submit(JobSpec{
		Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 9, Tenant: "carol",
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := out.Job.Snapshot()

	reg, ts := obsServer(t, Options{})
	if _, err := reg.SubmitSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	m := scrape(t, ts.URL+"/metrics")
	if got := m["service_jobs_resumed_total"]; got != 1 {
		t.Fatalf("jobs resumed %g, want 1", got)
	}
	if got := m["service_jobs_submitted_total"]; got != 0 {
		t.Fatalf("resume leaked into jobs submitted: %g", got)
	}

	// A fresh submission moves submitted, not resumed.
	if _, code := postJob(t, ts, JobRequest{Spec: slabSpec(8), Photons: 100, ChunkPhotons: 100, Seed: 10}); code != http.StatusCreated {
		t.Fatalf("fresh submit: http %d", code)
	}
	m = scrape(t, ts.URL+"/metrics")
	st := reg.Stats()
	if m["service_jobs_submitted_total"] != float64(st.JobsSubmitted) || st.JobsSubmitted != 1 {
		t.Fatalf("submitted: scrape %g, stats %d, want 1",
			m["service_jobs_submitted_total"], st.JobsSubmitted)
	}
	if m["service_jobs_resumed_total"] != float64(st.JobsResumed) || st.JobsResumed != 1 {
		t.Fatalf("resumed: scrape %g, stats %d, want 1",
			m["service_jobs_resumed_total"], st.JobsResumed)
	}
	// The snapshot carried its tenant through, and the rollup counts the
	// resume as a resume.
	if c := st.Tenants["carol"]; c.Resumed != 1 || c.Submitted != 0 {
		t.Fatalf("carol rollup %+v, want resumed 1, submitted 0", c)
	}
}
