package service

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fakeClock is an injectable admission clock: time moves only when the
// test says so, making token-bucket refill arithmetic exact.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func mustAdmit(t *testing.T, v AdmissionVerdict) {
	t.Helper()
	if !v.OK {
		t.Fatalf("admission refused: %+v", v)
	}
}

// TestTokenBucketJobRateExact pins the job-rate bucket's arithmetic on a
// frozen clock: burst drains exactly, one token returns after exactly one
// refill period, and partial refills round the Retry-After up to whole
// seconds.
func TestTokenBucketJobRateExact(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{Tenants: map[string]TenantClass{
		"t": {JobsPerSec: 1, JobBurst: 2},
	}}, clk.now)

	// The bucket is born full: the burst admits, then the rate governs.
	mustAdmit(t, tb.Admit("t", 0))
	mustAdmit(t, tb.Admit("t", 0))
	v := tb.Admit("t", 0)
	if v.OK || v.Reason != ShedReasonTenantRate {
		t.Fatalf("post-burst admit: %+v", v)
	}
	if v.RetryAfter != time.Second {
		t.Fatalf("empty bucket at 1/s: RetryAfter %v, want 1s", v.RetryAfter)
	}

	// Exactly one refill period buys exactly one token.
	clk.advance(time.Second)
	mustAdmit(t, tb.Admit("t", 0))
	if v := tb.Admit("t", 0); v.OK {
		t.Fatal("second token appeared from a single refill period")
	}

	// A partial refill leaves a sub-second deficit; Retry-After rounds up.
	clk.advance(300 * time.Millisecond)
	v = tb.Admit("t", 0)
	if v.OK || v.RetryAfter != time.Second {
		t.Fatalf("0.7s deficit: %+v, want refusal with 1s Retry-After", v)
	}

	// A long idle stretch refills to burst, no further.
	clk.advance(time.Hour)
	mustAdmit(t, tb.Admit("t", 0))
	mustAdmit(t, tb.Admit("t", 0))
	if v := tb.Admit("t", 0); v.OK {
		t.Fatal("idle refill exceeded burst capacity")
	}
}

// TestTokenBucketPhotonQuota pins the photon dimension: cost debits the
// bucket, a refusal computes the exact refill wait, and a single job
// costing more than the burst is never admissible.
func TestTokenBucketPhotonQuota(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{Tenants: map[string]TenantClass{
		"t": {PhotonsPerSec: 100}, // burst defaults to 10s of refill = 1000
	}}, clk.now)

	mustAdmit(t, tb.Admit("t", 600))
	v := tb.Admit("t", 600)
	if v.OK || v.Reason != ShedReasonTenantQuota {
		t.Fatalf("over-quota admit: %+v", v)
	}
	// 400 tokens remain, 200 short, refilling at 100/s: exactly 2s.
	if v.RetryAfter != 2*time.Second {
		t.Fatalf("deficit 200 at 100/s: RetryAfter %v, want 2s", v.RetryAfter)
	}

	// The refusal spent nothing: 2s later the advertised wait suffices.
	clk.advance(2 * time.Second)
	mustAdmit(t, tb.Admit("t", 600))

	// A cost above burst capacity can never be admitted, and says so.
	v = tb.Admit("t", 5000)
	if v.OK || v.Reason != ShedReasonTenantQuota {
		t.Fatalf("impossible cost admitted: %+v", v)
	}
	if !strings.Contains(v.Detail, "exceeds tenant burst") {
		t.Fatalf("impossible cost not called out: %q", v.Detail)
	}
}

// TestTokenBucketProbeSpendsNothing: Probe is the registry's pre-Build
// check and must never debit — otherwise every submission would pay twice.
func TestTokenBucketProbeSpendsNothing(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{Tenants: map[string]TenantClass{
		"t": {JobsPerSec: 1, JobBurst: 1},
	}}, clk.now)

	for i := 0; i < 5; i++ {
		mustAdmit(t, tb.Probe("t", 0))
	}
	mustAdmit(t, tb.Admit("t", 0)) // the token probes left behind
	if v := tb.Probe("t", 0); v.OK || v.RetryAfter != time.Second {
		t.Fatalf("probe of an empty bucket: %+v", v)
	}
}

// TestTokenBucketRefusalLeaksNoTokens: a photon-quota refusal must not
// consume the job token that was checked first.
func TestTokenBucketRefusalLeaksNoTokens(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{Tenants: map[string]TenantClass{
		"t": {JobsPerSec: 1, JobBurst: 1, PhotonsPerSec: 1, PhotonBurst: 10},
	}}, clk.now)

	if v := tb.Admit("t", 100); v.OK {
		t.Fatalf("cost 100 admitted against burst 10")
	}
	// The single job token must still be there for an affordable job.
	mustAdmit(t, tb.Admit("t", 5))
}

// TestTokenBucketUnknownTenantGetsDefault: tenants absent from the table
// run under the default class, each with their own buckets.
func TestTokenBucketUnknownTenantGetsDefault(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{
		Default: TenantClass{JobsPerSec: 0.5, JobBurst: 1},
	}, clk.now)

	mustAdmit(t, tb.Admit("stranger", 0))
	v := tb.Admit("stranger", 0)
	if v.OK || v.RetryAfter != 2*time.Second {
		t.Fatalf("default class at 0.5/s: %+v, want refusal with 2s", v)
	}
	// A different stranger has an untouched bucket of their own.
	mustAdmit(t, tb.Admit("other", 0))
}

// TestTokenBucketLevels checks the /tenants introspection snapshot.
func TestTokenBucketLevels(t *testing.T) {
	clk := newFakeClock()
	tb := NewTokenBucket(&TenantTable{Tenants: map[string]TenantClass{
		"b": {JobsPerSec: 1, JobBurst: 4, PhotonsPerSec: 100, PhotonBurst: 1000},
	}}, clk.now)
	mustAdmit(t, tb.Admit("b", 250))
	mustAdmit(t, tb.Admit("a", 0)) // unlimited via empty default class

	ls := tb.Levels()
	if len(ls) != 2 || ls[0].Tenant != "a" || ls[1].Tenant != "b" {
		t.Fatalf("levels not sorted by tenant: %+v", ls)
	}
	if ls[1].JobTokens != 3 || ls[1].PhotonTokens != 750 {
		t.Fatalf("tenant b levels %+v, want 3 job / 750 photon tokens", ls[1])
	}
}

// TestLoadTenantTable round-trips the -tenants file, including the
// defaults normalization and the loud failures for typos and bad names.
func TestLoadTenantTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	table, err := LoadTenantTable(write("ok.json", `{
		"default": {"jobsPerSec": 2},
		"tenants": {
			"alice": {"weight": 3, "jobsPerSec": 2},
			"flood": {"jobsPerSec": 0.5, "jobBurst": 2}
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if c := table.Class("alice"); c.Weight != 3 || c.JobBurst != 1 {
		t.Fatalf("alice class %+v: want weight 3, burst normalized to 1", c)
	}
	if c := table.Class("nobody"); c.JobsPerSec != 2 || c.Weight != 1 {
		t.Fatalf("unknown tenant got %+v, want the default class", c)
	}
	if w := table.Weight("flood"); w != 1 {
		t.Fatalf("flood weight %g, want 1", w)
	}

	// NB: Go's JSON matching is case-insensitive, so the typo must differ
	// by more than case to be unknown.
	if _, err := LoadTenantTable(write("typo.json",
		`{"tenants": {"x": {"jobRate": 1}}}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	if _, err := LoadTenantTable(write("name.json",
		`{"tenants": {"`+strings.Repeat("x", MaxTenantNameLen+1)+`": {}}}`)); err == nil {
		t.Fatal("overlong tenant name accepted")
	}
	if _, err := LoadTenantTable(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestShedErrorWrapsOverloaded keeps pre-tenancy errors.Is checks working.
func TestShedErrorWrapsOverloaded(t *testing.T) {
	err := error(&ShedError{Tenant: "t", Reason: ShedReasonTenantRate})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatal("ShedError does not unwrap to ErrOverloaded")
	}
}

// TestRegistrySubmitTenantAdmission drives the registry directly: a
// rate-limited tenant's second fresh job sheds with a typed ShedError,
// coalescing costs one job-rate token (an empty bucket sheds even a
// duplicate — PR 10 closed the resubmit-a-live-spec quota bypass), other
// tenants are untouched, and the per-tenant stats rollup records it all.
func TestRegistrySubmitTenantAdmission(t *testing.T) {
	clk := newFakeClock()
	table := &TenantTable{Tenants: map[string]TenantClass{
		"flood": {JobsPerSec: 0.25, JobBurst: 1},
	}}
	reg := New(Options{Admission: NewTokenBucket(table, clk.now), Tenants: table})

	first, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 1, Tenant: "flood"})
	if err != nil {
		t.Fatal(err)
	}
	if got := first.Job.Status().Tenant; got != "flood" {
		t.Fatalf("job status tenant %q", got)
	}

	_, err = reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 300, ChunkPhotons: 100, Seed: 2, Tenant: "flood"})
	var shed *ShedError
	if !errors.As(err, &shed) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second flood job: %v, want ShedError wrapping ErrOverloaded", err)
	}
	if shed.Reason != ShedReasonTenantRate || shed.Tenant != "flood" {
		t.Fatalf("shed verdict %+v", shed)
	}
	if shed.RetryAfter != 4*time.Second {
		t.Fatalf("RetryAfter %v at 0.25 jobs/s, want 4s", shed.RetryAfter)
	}

	// Coalescing with the live identical job is a submission too: with the
	// job bucket empty it sheds like any other, so resubmitting a popular
	// live spec cannot bypass the jobs/sec quota.
	_, err = reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 1, Tenant: "flood"})
	if !errors.As(err, &shed) || shed.Reason != ShedReasonTenantRate {
		t.Fatalf("coalesced resubmission on empty bucket: %v, want tenant_rate ShedError", err)
	}
	// Once the bucket refills, the duplicate coalesces — it debits the one
	// job token but no photons, and it skips any active-jobs cap.
	clk.advance(4 * time.Second)
	dup, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 1, Tenant: "flood"})
	if err != nil || !dup.Coalesced || dup.Job != first.Job {
		t.Fatalf("coalesced resubmission after refill: %+v, %v", dup, err)
	}

	// Another tenant has its own (unlimited, default-class) bucket.
	if _, err := reg.Submit(JobSpec{Spec: slabSpec(9), TotalPhotons: 300, ChunkPhotons: 100, Seed: 3, Tenant: "calm"}); err != nil {
		t.Fatal(err)
	}

	st := reg.Stats()
	if st.Admission != "token-bucket" {
		t.Fatalf("stats admission %q", st.Admission)
	}
	f := st.Tenants["flood"]
	if f.Submitted != 1 || f.Shed != 2 || f.ActiveJobs != 1 {
		t.Fatalf("flood rollup %+v", f)
	}
	if c := st.Tenants["calm"]; c.Submitted != 1 || c.Shed != 0 {
		t.Fatalf("calm rollup %+v", c)
	}

	// The introspection list carries live bucket levels for flood.
	var floodStatus *TenantStatus
	for _, ts := range reg.Tenants() {
		if ts.Name == "flood" {
			s := ts
			floodStatus = &s
		}
	}
	if floodStatus == nil || floodStatus.JobTokens == nil {
		t.Fatalf("flood missing from Tenants() or without bucket levels: %+v", floodStatus)
	}
	if *floodStatus.JobTokens != 0 {
		t.Fatalf("flood job tokens %g, want 0 after its burst", *floodStatus.JobTokens)
	}
}

// TestJobSpecTenantNormalize: an empty tenant becomes the default; an
// overlong one is rejected at submission.
func TestJobSpecTenantNormalize(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 100, ChunkPhotons: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Job.Status().Tenant; got != DefaultTenant {
		t.Fatalf("unattributed job tenant %q, want %q", got, DefaultTenant)
	}
	_, err = reg.Submit(JobSpec{
		Spec: slabSpec(8), TotalPhotons: 100, ChunkPhotons: 100, Seed: 2,
		Tenant: strings.Repeat("x", MaxTenantNameLen+1),
	})
	if err == nil {
		t.Fatal("overlong tenant accepted")
	}
}

// TestTenantFairShareTwoTenants is the scheduling acceptance test: two
// tenants at 3:1 weights, two equal-weight jobs each, served by one probe
// worker through the real dispatcher. Tenant a must receive ~3x tenant b's
// assignments regardless of per-tenant job counts, and a's two jobs must
// split their tenant's share evenly.
func TestTenantFairShareTwoTenants(t *testing.T) {
	table := &TenantTable{Tenants: map[string]TenantClass{
		"a": {Weight: 3},
		"b": {Weight: 1},
	}}
	reg := New(Options{Policy: TenantFairShare(), Tenants: table})

	submit := func(mua float64, seed uint64, tenant string) uint64 {
		t.Helper()
		out, err := reg.Submit(JobSpec{
			Spec: slabSpec(mua), TotalPhotons: 8000, ChunkPhotons: 100,
			Seed: seed, Tenant: tenant,
		})
		if err != nil {
			t.Fatal(err)
		}
		return out.Job.ID()
	}
	a1 := submit(5, 1, "a")
	a2 := submit(8, 2, "a")
	b1 := submit(9, 3, "b")

	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	counts := map[uint64]int{}
	for i := 0; i < 80; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Assign == nil {
			t.Fatalf("assignment %d: no chunk", i)
		}
		counts[msg.Assign.JobID]++
		completeAssign(reg, sess, msg.Assign)
	}

	aTotal := counts[a1] + counts[a2]
	bTotal := counts[b1]
	if aTotal+bTotal != 80 {
		t.Fatalf("assignments went to unknown jobs: %v", counts)
	}
	ratio := float64(aTotal) / float64(bTotal)
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("3:1 tenant weights served at %.2f (%d vs %d)", ratio, aTotal, bTotal)
	}
	// Within tenant a, the two equal-weight jobs split evenly.
	inner := float64(counts[a1]) / float64(counts[a2])
	if inner < 0.7 || inner > 1.4 {
		t.Fatalf("tenant a's jobs split %d vs %d", counts[a1], counts[a2])
	}
}
