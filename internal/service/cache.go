package service

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"repro/internal/canon"
	"repro/internal/mc"
)

// Key content-addresses a job result: the SHA-256 of the canonical
// encoding (internal/canon) of (Spec, TotalPhotons, ChunkPhotons, Seed).
// Those four fields are exactly what the reproducibility contract says a
// result depends on — the spec fixes the physics, the photon totals fix
// the chunking (and with it the RNG stream count), and the seed fixes
// the streams — so two submissions with equal keys produce bit-identical
// tallies and the second can be served from cache.
//
// canon, not gob: gob grants wire type IDs from a process-global
// first-encode-wins counter, so the byte stream for identical values
// depends on what else the process gob-encoded earlier (a worker
// connection's protocol traffic was enough to shift every subsequent
// key, which broke journal replay's job-ID stability). canon has no
// global state, so equal specs hash equally in every process.
type Key [sha256.Size]byte

// String renders the key as hex for logs and the HTTP API.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// KeyOf computes the content address of a job.
func KeyOf(spec *mc.Spec, totalPhotons, chunkPhotons int64, seed uint64) (Key, error) {
	return KeyOfFan(spec, totalPhotons, chunkPhotons, seed, 0)
}

// KeyOfFan is KeyOf for fanned jobs: a fan width > 1 changes every chunk
// tally (the chunk decomposes into fan sub-streams), so it must be part of
// the content address. The fan is appended to the hash input only when it
// is > 1, which keeps the key *format* — and with it every existing cache
// entry and restart-stable job ID of legacy single-stream jobs — untouched.
func KeyOfFan(spec *mc.Spec, totalPhotons, chunkPhotons int64, seed uint64, fan int) (Key, error) {
	return keyOf(spec, totalPhotons, chunkPhotons, seed, fan, nil)
}

// KeyOfTarget is the content address of a precision-targeted job: the
// fixed-count tuple (with TotalPhotons zero — the count is open-ended)
// extended by the normalized Target, appended the same trailing way the
// fan is so every fixed-count key is untouched.
func KeyOfTarget(spec *mc.Spec, chunkPhotons int64, seed uint64, fan int, tgt *mc.Target) (Key, error) {
	return keyOf(spec, 0, chunkPhotons, seed, fan, tgt)
}

func keyOf(spec *mc.Spec, totalPhotons, chunkPhotons int64, seed uint64, fan int, tgt *mc.Target) (Key, error) {
	h := sha256.New()
	canonical := struct {
		Spec         *mc.Spec
		TotalPhotons int64
		ChunkPhotons int64
		Seed         uint64
	}{spec, totalPhotons, chunkPhotons, seed}
	if err := canon.Write(h, &canonical); err != nil {
		return Key{}, fmt.Errorf("service: cache key: %w", err)
	}
	if fan > 1 {
		if err := canon.Write(h, fan); err != nil {
			return Key{}, fmt.Errorf("service: cache key: %w", err)
		}
	}
	if tgt != nil {
		if err := canon.Write(h, tgt); err != nil {
			return Key{}, fmt.Errorf("service: cache key: %w", err)
		}
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// PhysicsKeyOf addresses what a tally *is* rather than how much of it was
// asked for: the (Spec, ChunkPhotons, Seed, Fan) tuple that fixes the
// physics, the chunk decomposition and the RNG streams — everything but
// the stopping point. Every moments-tracking result is indexed under its
// physics key so a precision-targeted request can be served by any stored
// run of the same decomposition that meets-or-exceeds it (more photons,
// tighter RSE), whether that run was itself targeted or fixed-count.
func PhysicsKeyOf(spec *mc.Spec, chunkPhotons int64, seed uint64, fan int) (Key, error) {
	h := sha256.New()
	canonical := struct {
		Physics      string // domain separator vs the job-key tuple
		Spec         *mc.Spec
		ChunkPhotons int64
		Seed         uint64
		Fan          int
	}{"physics", spec, chunkPhotons, seed, fan}
	if err := canon.Write(h, &canonical); err != nil {
		return Key{}, fmt.Errorf("service: physics key: %w", err)
	}
	var k Key
	h.Sum(k[:0])
	return k, nil
}

// cache is a bounded FIFO-evicting map from job key to completed tally,
// plus a physics-keyed side index serving meets-or-exceeds precision
// lookups (one entry per physics key: the deepest — most photons — stored
// run of that decomposition). It carries its own lock so the
// gob-round-trip tally clones in get/put never stall the registry mutex
// (and with it the whole fleet).
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[Key]*mc.Tally
	order   []Key
	hits    int64
	misses  int64

	physics      map[Key]*mc.Tally
	physicsOrder []Key
}

func newCache(max int) *cache {
	if max < 0 {
		return nil
	}
	if max == 0 {
		max = 256
	}
	return &cache{
		max:     max,
		entries: make(map[Key]*mc.Tally),
		physics: make(map[Key]*mc.Tally),
	}
}

// get returns a deep copy of the cached tally (callers may mutate results).
func (c *cache) get(k Key) *mc.Tally {
	return c.getCounted(k, true)
}

// getCounted is get with the miss counter optional: a lookup that falls
// through to a second index (the physics lookup of precision submissions)
// must record one miss for the whole submission, not one per index probed
// — or the /stats hit rate operators size the cache by is skewed.
func (c *cache) getCounted(k Key, recordMiss bool) *mc.Tally {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.entries[k]
	if !ok {
		if recordMiss {
			c.misses++
		}
		return nil
	}
	c.hits++
	return cloneTally(t)
}

// put stores a deep copy of a pre-cloned tally: the live tally is also
// handed to Wait callers, who are free to Merge into it; the cache entry
// must not alias it. Callers clone before put so the expensive gob round
// trip can happen outside any lock they hold.
func (c *cache) put(k Key, clone *mc.Tally) {
	if c == nil || clone == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; !ok {
		c.order = append(c.order, k)
		if len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.entries[k] = clone
}

// putPhysics indexes a pre-cloned moments-carrying tally under its physics
// key, keeping the deepest run per key (a later shallower run must not
// evict a stored result that satisfies stricter targets).
func (c *cache) putPhysics(pk Key, clone *mc.Tally) {
	if c == nil || clone == nil || clone.Moments == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.physics[pk]; ok {
		if clone.Launched > cur.Launched {
			c.physics[pk] = clone
		}
		return
	}
	c.physicsOrder = append(c.physicsOrder, pk)
	if len(c.physicsOrder) > c.max {
		delete(c.physics, c.physicsOrder[0])
		c.physicsOrder = c.physicsOrder[1:]
	}
	c.physics[pk] = clone
}

// getMeeting returns a deep copy of the physics-indexed tally for pk if it
// satisfies tgt (photon floor reached, RSE at or below the requested
// relative error) — the meets-or-exceeds cache hit of precision-targeted
// submissions. A request is never penalised for a stored run having spent
// *more* photons than its own cap: the extra precision is free.
func (c *cache) getMeeting(pk Key, tgt *mc.Target) *mc.Tally {
	if c == nil || tgt == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.physics[pk]
	if !ok || !tgt.MetBy(t) {
		c.misses++
		return nil
	}
	c.hits++
	return cloneTally(t)
}

// stats snapshots the entry count and hit/miss counters.
func (c *cache) stats() (entries int, hits, misses int64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.hits, c.misses
}
