package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/protocol"
)

// session is one live worker connection. The registry lock guards the
// fields below; each session is driven by a single HandleConn goroutine.
type session struct {
	id        uint64
	name      string
	mflops    float64
	connected time.Time
	cur       *assignment     // the chunk this session is computing, if any
	knownJobs map[uint64]bool // descriptors already shipped on this conn
}

// assignment pins a handed-out chunk to the session it went to.
type assignment struct {
	job     *Job
	chunkID int
}

// Serve accepts worker connections on l until l is closed — or, for a
// DrainOnEmpty registry, until every submitted job has finished. Each
// connection is handled on its own goroutine.
func (r *Registry) Serve(l net.Listener) error {
	go func() {
		<-r.drained
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.drained:
				return nil
			default:
				return err
			}
		}
		go func() {
			if err := r.HandleConn(conn); err != nil && !errors.Is(err, io.EOF) {
				r.logf("service: connection ended: %v", err)
			}
		}()
	}
}

// HandleConn speaks the protocol with one worker over any stream transport
// (TCP connection or in-memory pipe).
func (r *Registry) HandleConn(rw io.ReadWriteCloser) error {
	pc := protocol.NewConn(rw)
	defer pc.Close()

	first, err := pc.Recv()
	if err != nil {
		return err
	}
	if first.Type != protocol.MsgHello || first.Hello == nil {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: "expected hello"}})
		return fmt.Errorf("service: expected hello, got %v", first.Type)
	}
	if first.Hello.Version != protocol.Version {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: fmt.Sprintf("version mismatch: server %d, client %d",
				protocol.Version, first.Hello.Version)}})
		return fmt.Errorf("service: version mismatch from %q", first.Hello.Name)
	}
	sess := r.registerSession(first.Hello)
	defer r.releaseSession(sess)

	err = pc.Send(&protocol.Message{Type: protocol.MsgWelcome, Welcome: &protocol.Welcome{
		Version:    protocol.Version,
		ServerName: "mcqueue",
	}})
	if err != nil {
		return err
	}

	for {
		msg, err := pc.Recv()
		if err != nil {
			return err
		}
		switch msg.Type {
		case protocol.MsgTaskRequest:
			reply := r.nextAssignment(sess, msg.Request)
			if err := pc.Send(reply); err != nil {
				return err
			}
			if reply.Type == protocol.MsgNoWork && reply.NoWork.Done {
				return nil
			}
		case protocol.MsgTaskResult:
			if msg.Result == nil || msg.Result.Tally == nil {
				return fmt.Errorf("service: empty result from %q", sess.name)
			}
			ack := r.handleResult(sess, msg.Result)
			if err := pc.Send(&protocol.Message{Type: protocol.MsgResultAck, Ack: ack}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("service: unexpected message %v from %q", msg.Type, sess.name)
		}
	}
}

func (r *Registry) registerSession(h *protocol.Hello) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSess++
	name := h.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", r.nextSess)
	}
	sess := &session{
		id:        r.nextSess,
		name:      name,
		mflops:    h.Mflops,
		connected: time.Now(),
		knownJobs: make(map[uint64]bool),
	}
	r.sessions[sess.id] = sess
	r.logf("service: worker %q connected (%.0f Mflop/s)", name, h.Mflops)
	return sess
}

// releaseSession requeues the chunk outstanding on a dropped connection.
func (r *Registry) releaseSession(sess *session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, sess.id)
	r.releaseCurLocked(sess)
}

// releaseCurLocked abandons the session's current assignment, requeueing
// its chunk if it is still outstanding on this session. Every path that
// gives up on an assignment (disconnect, a fresh request without a result,
// an unmergeable result) must come through here — a chunk left in
// outstanding with no owner would otherwise wedge a ChunkTimeout=0 job
// forever.
func (r *Registry) releaseCurLocked(sess *session) {
	if sess.cur == nil {
		return
	}
	j, id := sess.cur.job, sess.cur.chunkID
	sess.cur = nil
	if !j.activeLocked() {
		return
	}
	if st := j.outstanding[id]; st != nil && st.session == sess.id {
		delete(j.outstanding, id)
		j.pending = append(j.pending, id)
		j.reassigned++
		r.logf("service: worker %q abandoned job %016x chunk %d; requeued", sess.name, j.id, id)
	}
}

// nextAssignment picks the next chunk for an idle worker: reclaim overdue
// chunks everywhere, gather the schedulable jobs, and let the cross-job
// policy choose.
func (r *Registry) nextAssignment(sess *session, req *protocol.TaskRequest) *protocol.Message {
	r.mu.Lock()
	defer r.mu.Unlock()

	if req != nil {
		// The request's KnownJobs list is authoritative: the worker may
		// have evicted descriptors it advertised earlier, in which case
		// the next assignment of that job must re-carry the descriptor.
		clear(sess.knownJobs)
		for _, id := range req.KnownJobs {
			sess.knownJobs[id] = true
		}
	}
	r.releaseCurLocked(sess) // a new request abandons any undelivered assignment

	now := time.Now()
	var cands []Candidate
	var jobs []*Job
	outstanding := false
	minTimeout := time.Duration(0)
	for _, j := range r.active {
		j.reclaimExpiredLocked(now)
		if len(j.outstanding) > 0 {
			outstanding = true
			if j.spec.ChunkTimeout > 0 && (minTimeout == 0 || j.spec.ChunkTimeout < minTimeout) {
				minTimeout = j.spec.ChunkTimeout
			}
		}
		if !j.schedulableLocked() {
			continue
		}
		cands = append(cands, Candidate{
			ID:              j.id,
			Seq:             j.seq,
			Priority:        j.spec.Priority,
			Weight:          j.spec.Weight,
			PendingChunks:   len(j.pending),
			AssignedPhotons: j.assigned,
		})
		jobs = append(jobs, j)
	}

	if len(cands) == 0 {
		if !outstanding && r.opts.DrainOnEmpty && r.seq > 0 {
			r.checkDrainLocked()
			select {
			case <-r.drained:
				return &protocol.Message{Type: protocol.MsgNoWork,
					NoWork: &protocol.NoWork{Done: true}}
			default:
			}
		}
		retry := minTimeout / 4
		if retry <= 0 {
			retry = 50 * time.Millisecond
		}
		return &protocol.Message{Type: protocol.MsgNoWork, NoWork: &protocol.NoWork{RetryIn: retry}}
	}

	pick := r.policy.Pick(cands)
	if pick < 0 || pick >= len(jobs) {
		pick = 0
	}
	j := jobs[pick]

	id := j.pending[len(j.pending)-1]
	j.pending = j.pending[:len(j.pending)-1]
	tries := 1
	if st := j.outstanding[id]; st != nil {
		tries = st.tries + 1
	}
	j.outstanding[id] = &chunkState{
		id: id, photons: j.photons[id], assigned: now,
		session: sess.id, worker: sess.name, tries: tries,
	}
	if j.state == StateQueued {
		j.state = StateRunning
	}
	if j.started.IsZero() {
		j.started = now
	}
	if _, ok := j.workers[sess.name]; !ok {
		j.workers[sess.name] = &WorkerInfo{
			Name: sess.name, Mflops: sess.mflops, Connected: sess.connected,
		}
	}
	j.assigned += j.photons[id]
	r.chunksAssigned++
	r.policy.Charge(j.id, j.photons[id], j.spec.Weight)
	sess.cur = &assignment{job: j, chunkID: id}

	assign := &protocol.TaskAssign{
		JobID:   j.id,
		ChunkID: id,
		Stream:  id,
		Photons: j.photons[id],
	}
	if !sess.knownJobs[j.id] {
		assign.Job = &protocol.Job{
			ID:      j.id,
			Spec:    *j.spec.Spec,
			Seed:    j.spec.Seed,
			Streams: j.nChunks,
		}
		sess.knownJobs[j.id] = true
	}
	return &protocol.Message{Type: protocol.MsgTaskAssign, Assign: assign}
}

// handleResult routes a returned tally to its job. A result is reduced
// exactly once, and only when it matches the session's current assignment:
// anything else — unknown or cancelled JobID (a stale worker from a
// previous run, a forged ID), an out-of-range chunk, a chunk this session
// was never handed — is rejected without touching the tally. Results for
// already-completed chunks (the reassignment race) are benign duplicates.
func (r *Registry) handleResult(sess *session, res *protocol.TaskResult) *protocol.ResultAck {
	r.mu.Lock()
	ack, finished := r.handleResultLocked(sess, res)
	r.mu.Unlock()
	if finished != nil {
		r.sealJob(finished) // cache clone + waiter release, off the hot lock
	}
	return ack
}

func (r *Registry) handleResultLocked(sess *session, res *protocol.TaskResult) (*protocol.ResultAck, *Job) {
	reject := func(reason string) *protocol.ResultAck {
		r.rejected++
		r.logf("service: rejected result from %q: %s", sess.name, reason)
		return &protocol.ResultAck{ChunkID: res.ChunkID, Rejected: true, Reason: reason}
	}

	j := r.jobs[res.JobID]
	if j == nil {
		return reject(fmt.Sprintf("unknown job %016x", res.JobID)), nil
	}
	if j.state == StateCanceled {
		j.rejected++
		if sess.cur != nil && sess.cur.job == j {
			sess.cur = nil // nothing to requeue; Cancel dropped the chunks
		}
		return reject(fmt.Sprintf("job %016x canceled", res.JobID)), nil
	}
	if res.ChunkID < 0 || res.ChunkID >= j.nChunks {
		j.rejected++
		return reject(fmt.Sprintf("job %016x has no chunk %d", res.JobID, res.ChunkID)), nil
	}
	if j.completed[res.ChunkID] {
		j.duplicates++
		// Any outstanding entry for a completed chunk is stale (a
		// reassignment the merge beat to the finish line); drop it so the
		// reclaim loop cannot requeue an already-reduced chunk.
		delete(j.outstanding, res.ChunkID)
		if sess.cur != nil && sess.cur.job == j && sess.cur.chunkID == res.ChunkID {
			sess.cur = nil
		}
		return &protocol.ResultAck{ChunkID: res.ChunkID, Duplicate: true}, nil
	}
	if sess.cur == nil || sess.cur.job != j || sess.cur.chunkID != res.ChunkID {
		j.rejected++
		return reject(fmt.Sprintf("job %016x chunk %d does not match the session's current assignment",
			res.JobID, res.ChunkID)), nil
	}
	if err := j.tally.Merge(res.Tally); err != nil {
		j.rejected++
		r.releaseCurLocked(sess) // requeue the chunk for an honest recompute
		return reject(fmt.Sprintf("unmergeable tally: %v", err)), nil
	}
	sess.cur = nil
	j.completed[res.ChunkID] = true
	j.nCompleted++
	delete(j.outstanding, res.ChunkID)
	// If a timeout reclaimed this chunk before the late result landed, it
	// is back in pending; purge it or the fleet recomputes a reduced chunk.
	for i, p := range j.pending {
		if p == res.ChunkID {
			j.pending = append(j.pending[:i], j.pending[i+1:]...)
			break
		}
	}
	if w := j.workers[sess.name]; w != nil {
		w.Chunks++
	}
	r.photonsDone += res.Tally.Launched
	var finished *Job
	if j.nCompleted == j.nChunks {
		r.finishJobLocked(j)
		finished = j
	}
	return &protocol.ResultAck{ChunkID: res.ChunkID}, finished
}
