package service

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/protocol"
)

// session is one live worker connection. The registry lock guards the
// fields below; each session is driven by a single HandleConn goroutine.
type session struct {
	id        uint64
	name      string
	mflops    float64
	remote    string // transport remote address ("" for in-memory pipes)
	connected time.Time
	lastSeen  time.Time // last TaskRequest or result from this connection
	// assigned is the set of chunks this session owns: the one it is
	// computing plus any it has computed but not yet flushed (protocol v3
	// workers batch results). An entry lives until its result is reduced,
	// the worker stops advertising it (abandoned → requeued), or the
	// connection drops.
	assigned  map[chunkRef]*assignment
	knownJobs map[uint64]bool // descriptors already shipped on this conn

	// Per-session profile: the worker's latest piggybacked WorkerReport
	// (hasReport false until one arrives — pre-telemetry workers never
	// send one), the count of chunks this session has had reduced, and the
	// server's own ack-timing throughput inference (an EWMA of group
	// photons over grant-to-arrival wall time) — the reported-vs-inferred
	// pair GET /fleet exposes.
	report      protocol.WorkerReport
	hasReport   bool
	completed   int
	inferredPPS float64
}

// blend folds a sample into an EWMA, seeding on first use — the shared
// smoothing for the server's per-job chunkSecs and per-session throughput
// profiles (and the same 0.7/0.3 the worker uses for its reported EWMAs).
func blend(cur, sample float64) float64 {
	if cur == 0 {
		return sample
	}
	return 0.7*cur + 0.3*sample
}

// chunkRef names one chunk of one job.
type chunkRef struct {
	job   uint64
	chunk int
}

// Idle-worker retry hints: busyRetry while any chunk is outstanding or
// merging (its reduction may free this worker immediately), idleRetry when
// the service is truly empty.
const (
	busyRetry = 5 * time.Millisecond
	idleRetry = 50 * time.Millisecond
)

// assignment pins a handed-out chunk to the session it went to.
type assignment struct {
	job     *Job
	chunkID int
}

// Serve accepts worker connections on l until l is closed — or, for a
// DrainOnEmpty registry, until every submitted job has finished. Each
// connection is handled on its own goroutine.
func (r *Registry) Serve(l net.Listener) error {
	go func() {
		<-r.drained
		l.Close()
	}()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-r.drained:
				return nil
			default:
				return err
			}
		}
		go func() {
			if err := r.HandleConn(conn); err != nil && !errors.Is(err, io.EOF) {
				r.log.Warn("connection ended", "err", err)
			}
		}()
	}
}

// HandleConn speaks the protocol with one worker over any stream transport
// (TCP connection or in-memory pipe).
func (r *Registry) HandleConn(rw io.ReadWriteCloser) error {
	pc := protocol.NewConn(rw)
	defer pc.Close()

	first, err := pc.Recv()
	if err != nil {
		return err
	}
	if first.Type != protocol.MsgHello || first.Hello == nil {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: "expected hello"}})
		return fmt.Errorf("service: expected hello, got %v", first.Type)
	}
	if first.Hello.Version != protocol.Version {
		pc.Send(&protocol.Message{Type: protocol.MsgError,
			Error: &protocol.Error{Msg: fmt.Sprintf("version mismatch: server %d, client %d",
				protocol.Version, first.Hello.Version)}})
		return fmt.Errorf("service: version mismatch from %q", first.Hello.Name)
	}
	remote := ""
	if nc, ok := rw.(net.Conn); ok {
		remote = nc.RemoteAddr().String()
	}
	sess := r.registerSession(first.Hello, remote)
	defer r.releaseSession(sess)

	err = pc.Send(&protocol.Message{Type: protocol.MsgWelcome, Welcome: &protocol.Welcome{
		Version:    protocol.Version,
		ServerName: "mcqueue",
	}})
	if err != nil {
		return err
	}

	// scratch is this connection's reusable decode target: batch tallies
	// land in it, are merged into the job, and the buffers are reused for
	// the next group — steady-state batch decoding allocates almost
	// nothing.
	var scratch mc.Tally
	for {
		msg, err := pc.Recv()
		if err != nil {
			return err
		}
		switch msg.Type {
		case protocol.MsgTaskRequest:
			var acks *protocol.BatchAck
			if msg.Request != nil && msg.Request.Batch != nil {
				acks = &protocol.BatchAck{Acks: r.reduceBatch(sess, msg.Request.Batch, &scratch)}
			}
			reply := r.nextAssignment(sess, msg.Request)
			reply.BatchAck = acks
			if err := pc.Send(reply); err != nil {
				return err
			}
			if reply.Type == protocol.MsgNoWork && reply.NoWork.Done {
				return nil
			}
		case protocol.MsgResultBatch:
			if msg.Batch == nil {
				return fmt.Errorf("service: empty batch from %q", sess.name)
			}
			ack := &protocol.BatchAck{Acks: r.reduceBatch(sess, msg.Batch, &scratch)}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgBatchAck, BatchAck: ack}); err != nil {
				return err
			}
		case protocol.MsgTaskResult:
			if msg.Result == nil || msg.Result.Tally == nil {
				return fmt.Errorf("service: empty result from %q", sess.name)
			}
			ack := r.handleResult(sess, msg.Result)
			if err := pc.Send(&protocol.Message{Type: protocol.MsgResultAck, Ack: ack}); err != nil {
				return err
			}
		default:
			return fmt.Errorf("service: unexpected message %v from %q", msg.Type, sess.name)
		}
	}
}

func (r *Registry) registerSession(h *protocol.Hello, remote string) *session {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextSess++
	name := h.Name
	if name == "" {
		name = fmt.Sprintf("worker-%d", r.nextSess)
	}
	now := time.Now()
	sess := &session{
		id:        r.nextSess,
		name:      name,
		mflops:    h.Mflops,
		remote:    remote,
		connected: now,
		lastSeen:  now,
		assigned:  make(map[chunkRef]*assignment),
		knownJobs: make(map[uint64]bool),
	}
	r.sessions[sess.id] = sess
	r.met.sessionsTotal.Inc()
	if r.seenNames[name] {
		r.met.reconnects.Inc()
	}
	r.seenNames[name] = true
	r.log.Info("worker connected", "worker", name, "mflops", h.Mflops)
	return sess
}

// releaseSession requeues every chunk outstanding on a dropped connection.
func (r *Registry) releaseSession(sess *session) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.sessions, sess.id)
	for ref, a := range sess.assigned {
		r.releaseAssignmentLocked(sess, ref, a)
	}
}

// releaseAssignmentLocked abandons one of the session's assignments,
// requeueing its chunk if it is still outstanding on this session. Every
// path that gives up on an assignment (disconnect, a request that stops
// advertising the chunk, an unmergeable result) must come through here — a
// chunk left in outstanding with no owner would otherwise wedge a
// ChunkTimeout=0 job forever.
func (r *Registry) releaseAssignmentLocked(sess *session, ref chunkRef, a *assignment) {
	delete(sess.assigned, ref)
	j := a.job
	if !j.activeLocked() {
		return
	}
	if st := j.outstanding[ref.chunk]; st != nil && st.session == sess.id {
		delete(j.outstanding, ref.chunk)
		j.requeueLocked(ref.chunk)
		j.reassigned++
		r.met.chunksReassigned.Inc()
		j.trace(obs.Event{Kind: obs.EvChunkReassigned, Chunk: ref.chunk,
			Worker: sess.name, Detail: "abandoned"})
		r.log.Debug("chunk abandoned; requeued", "job", jobHex(j.id),
			"chunk", ref.chunk, "worker", sess.name)
	}
}

// nextAssignment picks the next chunk for an idle worker: sync the
// worker's advertised state, reclaim overdue chunks everywhere, gather the
// schedulable jobs, and let the cross-job policy choose.
func (r *Registry) nextAssignment(sess *session, req *protocol.TaskRequest) *protocol.Message {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()

	if sess.assigned == nil { // tests construct sessions directly
		sess.assigned = make(map[chunkRef]*assignment)
	}
	sess.lastSeen = now
	if req != nil && req.Report != nil {
		// Fold the piggybacked telemetry into the session profile. The
		// report is the worker's own EWMA state, so the latest one simply
		// replaces the previous — no server-side re-smoothing.
		sess.report = *req.Report
		sess.hasReport = true
	}
	if req != nil {
		// The request's KnownJobs list is authoritative: the worker may
		// have evicted descriptors it advertised earlier, in which case
		// the next assignment of that job must re-carry the descriptor.
		clear(sess.knownJobs)
		for _, id := range req.KnownJobs {
			sess.knownJobs[id] = true
		}
	}
	// Equally authoritative: the Holding list (plus any batch flushed just
	// before this call, whose chunks have already left sess.assigned). An
	// assignment the worker no longer advertises is abandoned — for a
	// legacy nil request that is every undelivered assignment, preserving
	// the v2 "a new request abandons the current chunk" semantics.
	if len(sess.assigned) > 0 {
		var held map[chunkRef]bool
		if req != nil && len(req.Holding) > 0 {
			held = make(map[chunkRef]bool, len(req.Holding))
			for _, h := range req.Holding {
				held[chunkRef{h.JobID, h.ChunkID}] = true
			}
		}
		for ref, a := range sess.assigned {
			if !held[ref] {
				r.releaseAssignmentLocked(sess, ref, a)
			}
		}
	}

	cands := r.candScratch[:0]
	jobs := r.jobScratch[:0]
	outstanding := false
	minTimeout := time.Duration(0)
	pendTotal := 0
	for _, j := range r.active {
		j.reclaimExpiredLocked(now)
		if len(j.outstanding) > 0 || len(j.merging) > 0 {
			outstanding = true
			if j.spec.ChunkTimeout > 0 && (minTimeout == 0 || j.spec.ChunkTimeout < minTimeout) {
				minTimeout = j.spec.ChunkTimeout
			}
		}
		if !j.schedulableLocked() {
			continue
		}
		// Open-ended jobs count their issuable headroom (capped) alongside
		// requeued chunks, so grant sizing and policies see real depth.
		depth := len(j.pending) + j.issuableChunksLocked()
		pendTotal += depth
		cands = append(cands, Candidate{
			ID:              j.id,
			Seq:             j.seq,
			Priority:        j.spec.Priority,
			Weight:          j.spec.Weight,
			Tenant:          j.spec.Tenant,
			TenantWeight:    j.tweight,
			PendingChunks:   depth,
			AssignedPhotons: j.assigned,
		})
		jobs = append(jobs, j)
	}
	r.candScratch, r.jobScratch = cands, jobs // reuse the backing arrays

	if len(cands) == 0 {
		if !outstanding && r.opts.DrainOnEmpty && r.seq > 0 {
			r.checkDrainLocked()
			select {
			case <-r.drained:
				return &protocol.Message{Type: protocol.MsgNoWork,
					NoWork: &protocol.NoWork{Done: true}}
			default:
			}
		}
		retry := minTimeout / 4
		if retry <= 0 || retry > idleRetry {
			retry = idleRetry
		}
		if outstanding && retry > busyRetry {
			// Chunks are in flight (or held in worker batches): their
			// reduction can unblock this worker — or end a draining
			// service — any moment, so poll fast instead of sleeping out
			// the tail of the queue.
			retry = busyRetry
		}
		return &protocol.Message{Type: protocol.MsgNoWork, NoWork: &protocol.NoWork{RetryIn: retry}}
	}

	pick := r.policy.Pick(cands)
	if pick < 0 || pick >= len(jobs) {
		pick = 0
	}
	j := jobs[pick]

	// Grant up to Want chunks of the picked job in one reply. Every grant
	// gets its own outstanding entry (so per-chunk timeout reassignment is
	// unchanged) and its own policy charge (so fair-share accounting stays
	// per chunk; only the interleaving granularity coarsens).
	want := 1
	if req != nil && req.Want > 1 {
		want = req.Want
		if want > protocol.MaxGrantChunks {
			want = protocol.MaxGrantChunks
		}
		// Keep the tail parallel: when the whole schedulable queue is
		// shallow relative to the fleet, never hand one worker more than
		// its fleet-fair share of it.
		if n := len(r.sessions); n > 1 {
			if fair := (pendTotal + n - 1) / n; fair < want {
				want = fair
			}
		}
		// Keep the grant inside the timeout envelope: a worker computes
		// its grant serially, so the last chunk's clock runs for the whole
		// window. Granting more than ~a quarter of the timeout's worth of
		// estimated compute would make spurious reclaims — and, with
		// all-or-nothing batches, wholesale recomputes — systematic. With
		// no estimate yet, probe one chunk at a time.
		if j.spec.ChunkTimeout > 0 {
			byTimeout := 1
			if j.chunkSecs > 0 {
				byTimeout = int(j.spec.ChunkTimeout.Seconds() / (4 * j.chunkSecs))
			}
			if byTimeout < want {
				want = byTimeout
			}
		}
		if want < 1 {
			want = 1
		}
	}
	grant := func() (int, int64) {
		var id int
		if n := len(j.pending); n > 0 {
			id = j.pending[n-1]
			j.pending = j.pending[:n-1]
		} else {
			// Open-ended issuance: synthesise the next fresh chunk. The
			// schedulable check (or the loop condition below) guaranteed
			// budget headroom.
			id = j.issueChunkLocked()
		}
		tries := 1
		if st := j.outstanding[id]; st != nil {
			tries = st.tries + 1
		}
		j.outstanding[id] = &chunkState{
			id: id, photons: j.photons[id], assigned: now,
			session: sess.id, worker: sess.name, tries: tries,
		}
		j.assigned += j.photons[id]
		r.chunksAssigned++
		r.met.chunksGranted.Inc()
		j.trace(obs.Event{Kind: obs.EvChunkGranted, Chunk: id, Worker: sess.name})
		r.policy.Charge(cands[pick], j.photons[id])
		sess.assigned[chunkRef{j.id, id}] = &assignment{job: j, chunkID: id}
		return id, j.photons[id]
	}

	if j.state == StateQueued {
		j.state = StateRunning
	}
	if j.started.IsZero() {
		j.started = now
	}
	if _, ok := j.workers[sess.name]; !ok {
		j.workers[sess.name] = &WorkerInfo{
			Name: sess.name, Mflops: sess.mflops, Connected: sess.connected,
		}
	}

	id, photons := grant()
	assign := &protocol.TaskAssign{
		JobID:   j.id,
		ChunkID: id,
		Stream:  id,
		Photons: photons,
	}
	for len(assign.Extra)+1 < want && (len(j.pending) > 0 || j.issuableChunksLocked() > 0) {
		id, photons := grant()
		assign.Extra = append(assign.Extra, protocol.ChunkGrant{
			ChunkID: id, Stream: id, Photons: photons,
		})
	}
	if !sess.knownJobs[j.id] {
		streams := j.nChunks
		if j.openEnded() {
			streams = 0 // open-ended: workers must not bound the stream index
		}
		assign.Job = &protocol.Job{
			ID:      j.id,
			Spec:    *j.spec.Spec,
			Seed:    j.spec.Seed,
			Streams: streams,
			Fan:     j.spec.Fan,
			Target:  j.spec.Target,
		}
		sess.knownJobs[j.id] = true
	}
	return &protocol.Message{Type: protocol.MsgTaskAssign, Assign: assign}
}

// reduceBatch reduces a worker-side pre-reduced batch group by group,
// returning one ack per covered chunk in batch order. Each group's tally
// is decoded into the caller's scratch tally off the registry lock.
func (r *Registry) reduceBatch(sess *session, b *protocol.ResultBatch, scratch *mc.Tally) []protocol.ResultAck {
	acks := make([]protocol.ResultAck, 0, b.NumChunks())
	for i := range b.Groups {
		g := &b.Groups[i]
		if err := mc.DecodeTallyInto(scratch, g.TallyData); err != nil {
			// The payload is unusable; give the chunks back to the queue so
			// an honest recompute can finish the job.
			acks = append(acks, r.rejectGroup(sess, g, fmt.Sprintf("undecodable tally: %v", err))...)
			continue
		}
		acks = append(acks, r.reduceGroup(sess, g.JobID, g.Chunks, scratch, g.Elapsed, g.ChunkSecs)...)
	}
	r.mu.Lock()
	r.batches++
	r.mu.Unlock()
	r.met.batchesReduced.Inc()
	return acks
}

// rejectGroup rejects every chunk of a group, requeueing the ones this
// session legitimately owned.
func (r *Registry) rejectGroup(sess *session, g *protocol.BatchGroup, reason string) []protocol.ResultAck {
	r.mu.Lock()
	defer r.mu.Unlock()
	acks := make([]protocol.ResultAck, 0, len(g.Chunks))
	for _, id := range g.Chunks {
		ref := chunkRef{g.JobID, id}
		if a := sess.assigned[ref]; a != nil {
			r.releaseAssignmentLocked(sess, ref, a)
			a.job.rejected++
			a.job.trace(obs.Event{Kind: obs.EvChunkRejected, Chunk: id,
				Worker: sess.name, Detail: reason})
		}
		r.rejected++
		r.met.rejectedBatch.Inc()
		acks = append(acks, protocol.ResultAck{JobID: g.JobID, ChunkID: id, Rejected: true, Reason: reason})
	}
	r.log.Warn("rejected result group", "worker", sess.name,
		"chunks", len(g.Chunks), "reason", reason)
	return acks
}

// handleResult routes a single returned tally to its job — the
// pre-batching result path, still spoken by tests and single-result
// clients. It shares the reduction machinery (and its exactly-once
// guarantees) with the batched path.
func (r *Registry) handleResult(sess *session, res *protocol.TaskResult) *protocol.ResultAck {
	acks := r.reduceGroup(sess, res.JobID, []int{res.ChunkID}, res.Tally, res.Elapsed, nil)
	return &acks[0]
}

// spanSeed is the server-side half of one chunk's span, captured at claim
// time (phase 1) while the chunk's outstanding entry still exists, and
// joined with compute/reduce durations at publish time (phase 3).
type spanSeed struct {
	idx     int // index into the group's chunk list (for per-chunk timings)
	chunk   int
	granted time.Time
	queued  time.Time
}

// reduceGroup performs the exactly-once reduction of one pre-merged group
// of chunks in three phases:
//
//  1. under the registry lock, classify every covered chunk (duplicate,
//     stale, or claimable) and — only if the whole group is claimable —
//     claim the chunks by moving them from outstanding into the job's
//     merging set;
//  2. off the registry lock, under the job's redMu, merge the combined
//     tally — the fleet keeps dispatching while a large tally merges;
//  3. re-enter the registry lock to publish completion, credit the worker
//     and detect job finish.
//
// A group is all-or-nothing: the tally is the sum of all covered chunks,
// so if any chunk is a duplicate (the timeout-reassignment race) the
// others are requeued for an honest recompute instead of merging a blob
// that would double-count. Chunk tallies are pure functions of the stream
// index, so the recompute reproduces the identical result.
//
// secs, when it has one entry per chunk, is the worker-reported per-chunk
// compute time (BatchGroup.ChunkSecs); it refines the span compute
// segment, which otherwise falls back to an even share of elapsed.
func (r *Registry) reduceGroup(sess *session, jobID uint64, chunks []int, tally *mc.Tally, elapsed time.Duration, secs []float64) []protocol.ResultAck {
	arrival := time.Now()
	acks := make([]protocol.ResultAck, len(chunks))
	for i, id := range chunks {
		acks[i] = protocol.ResultAck{JobID: jobID, ChunkID: id}
	}
	reject := func(i int, class *obs.Counter, reason string) {
		acks[i].Rejected = true
		acks[i].Reason = reason
		r.rejected++
		class.Inc()
	}

	// Phase 1: classify and claim under the registry lock.
	r.mu.Lock()
	sess.lastSeen = arrival
	j := r.jobs[jobID]
	if j == nil {
		for i, id := range chunks {
			delete(sess.assigned, chunkRef{jobID, id})
			reject(i, r.met.rejectedStale, fmt.Sprintf("unknown job %016x", jobID))
		}
		r.mu.Unlock()
		r.log.Warn("rejected result for unknown job", "worker", sess.name, "job", jobHex(jobID))
		return acks
	}
	if j.state == StateCanceled {
		for i, id := range chunks {
			delete(sess.assigned, chunkRef{jobID, id}) // nothing to requeue; Cancel dropped the chunks
			reject(i, r.met.rejectedStale, fmt.Sprintf("job %016x canceled", jobID))
			j.rejected++
			j.trace(obs.Event{Kind: obs.EvChunkRejected, Chunk: id,
				Worker: sess.name, Detail: "canceled"})
		}
		r.mu.Unlock()
		r.log.Warn("rejected result for canceled job", "worker", sess.name, "job", jobHex(jobID))
		return acks
	}
	if j.state == StateDone {
		// An early-finalized precision job (a done fixed-count job has
		// every chunk completed and takes the duplicate path below):
		// chunks reduced before the stopping point are the benign
		// duplicate race, stragglers computed past it are benign-rejected
		// — acknowledged, never merged, never requeued.
		for i, id := range chunks {
			delete(sess.assigned, chunkRef{jobID, id})
			if id >= 0 && id < j.nChunks && j.completed[id] {
				acks[i].Duplicate = true
				j.duplicates++
				r.met.duplicates.Inc()
			} else {
				reject(i, r.met.rejectedBenign, fmt.Sprintf("job %016x already finalized", jobID))
				j.rejected++
				j.trace(obs.Event{Kind: obs.EvChunkRejected, Chunk: id,
					Worker: sess.name, Detail: "already finalized"})
			}
		}
		r.mu.Unlock()
		return acks
	}

	claimable := true
	seen := make(map[int]bool, len(chunks))
	for i, id := range chunks {
		switch {
		case seen[id]:
			// A repeated chunk in one group would double-count its
			// completion; nothing honest produces it.
			reject(i, r.met.rejectedStale, fmt.Sprintf("job %016x chunk %d listed twice in one group", jobID, id))
			j.rejected++
			claimable = false
			continue
		case id < 0 || id >= j.nChunks:
			reject(i, r.met.rejectedStale, fmt.Sprintf("job %016x has no chunk %d", jobID, id))
			j.rejected++
			claimable = false
		case j.completed[id] || j.merging[id]:
			// Already reduced (or being reduced): the reassignment race.
			acks[i].Duplicate = true
			j.duplicates++
			r.met.duplicates.Inc()
			// Any outstanding entry for a completed chunk is stale (a
			// reassignment the merge beat to the finish line); drop it so
			// the reclaim loop cannot requeue an already-reduced chunk.
			if j.completed[id] {
				delete(j.outstanding, id)
			}
			delete(sess.assigned, chunkRef{jobID, id})
			claimable = false
		case sess.assigned[chunkRef{jobID, id}] == nil:
			reject(i, r.met.rejectedStale, fmt.Sprintf("job %016x chunk %d does not match a current assignment of the session",
				jobID, id))
			j.rejected++
			claimable = false
		}
		seen[id] = true
	}
	if !claimable {
		// Mixed group: requeue the chunks that were honestly owned so the
		// fleet recomputes them, and report why.
		for i, id := range chunks {
			if acks[i].Duplicate || acks[i].Rejected {
				continue
			}
			ref := chunkRef{jobID, id}
			r.releaseAssignmentLocked(sess, ref, sess.assigned[ref])
			reject(i, r.met.rejectedBatch, fmt.Sprintf("job %016x chunk %d rode a partially stale batch; requeued", jobID, id))
			j.rejected++
			j.trace(obs.Event{Kind: obs.EvChunkRejected, Chunk: id,
				Worker: sess.name, Detail: "partially stale batch"})
		}
		r.mu.Unlock()
		r.log.Warn("rejected partially stale result group", "worker", sess.name,
			"job", jobHex(jobID), "chunks", len(chunks))
		return acks
	}
	// Claim the chunks, seeding spans from the outstanding entries before
	// they go. A chunk whose entry is missing or owned by another session
	// (a timeout reclaim raced this flush — the late result still wins the
	// reduction) has no trustworthy grant stamp, so it gets no span. Seeds
	// are gathered even when the per-job ring is disabled: the aggregate
	// span histograms observe regardless.
	var seeds []spanSeed
	var minGranted time.Time
	for i, id := range chunks {
		if st := j.outstanding[id]; st != nil && st.session == sess.id {
			seeds = append(seeds, spanSeed{idx: i, chunk: id,
				granted: st.assigned, queued: j.queuedAtLocked(id)})
			if minGranted.IsZero() || st.assigned.Before(minGranted) {
				minGranted = st.assigned
			}
		}
		delete(j.outstanding, id) // late result wins over any reassignment
		j.merging[id] = true
		delete(sess.assigned, chunkRef{jobID, id})
	}
	r.mu.Unlock()

	// Phase 2: merge off the registry lock. redMu serialises merges into
	// this job's tally and orders before the registry lock (Snapshot takes
	// them in the same order).
	j.redMu.Lock()
	// Re-check liveness now that the reduction lock is held: a cancel —
	// or another batch meeting the job's precision target — may have
	// landed while this group waited, and a job that left the active
	// states must not absorb more weight. Its tally is either published
	// to waiters and the cache (Done) or discarded (Canceled); merging
	// into it after the fact would corrupt the former and waste work on
	// the latter, and /stats lifecycle counters would drift from the
	// tallies behind them. State changes to Done require this redMu, so
	// the check cannot go stale before the merge below.
	r.mu.Lock()
	live := j.activeLocked()
	r.mu.Unlock()
	var mergeErr error
	var mergeDur time.Duration
	if live {
		mergeStart := time.Now()
		mergeErr = j.tally.Merge(tally)
		mergeDur = time.Since(mergeStart)
		r.met.reduceSeconds.Observe(mergeDur.Seconds())
	}

	// Phase 3: publish.
	r.mu.Lock()
	var finished *Job
	var reduced bool
	switch {
	case mergeErr != nil:
		for i, id := range chunks {
			delete(j.merging, id)
			if j.activeLocked() {
				j.requeueLocked(id) // honest recompute
				j.reassigned++
				r.met.chunksReassigned.Inc()
				j.trace(obs.Event{Kind: obs.EvChunkReassigned, Chunk: id,
					Worker: sess.name, Detail: "unmergeable tally"})
			}
			reject(i, r.met.rejectedBatch, fmt.Sprintf("unmergeable tally: %v", mergeErr))
			j.rejected++
		}
		r.log.Warn("rejected unmergeable result group", "worker", sess.name,
			"job", jobHex(jobID), "chunks", len(chunks), "err", mergeErr)
	case !live || !j.activeLocked():
		// The job was canceled (possibly mid-merge: that weight is
		// invisible — a canceled tally is never returned or cached) or
		// finalized while this group waited on the reduction lock; the
		// chunks are already dropped or moot.
		reason, class := "canceled", r.met.rejectedStale
		if j.state == StateDone {
			reason, class = "already finalized", r.met.rejectedBenign
		}
		for i := range chunks {
			delete(j.merging, chunks[i])
			reject(i, class, fmt.Sprintf("job %016x %s", jobID, reason))
			j.rejected++
			j.trace(obs.Event{Kind: obs.EvChunkRejected, Chunk: chunks[i],
				Worker: sess.name, Detail: reason})
		}
	default:
		reduced = true
		for _, id := range chunks {
			delete(j.merging, id)
			j.completed[id] = true
			j.nCompleted++
			j.trace(obs.Event{Kind: obs.EvChunkCompleted, Chunk: id, Worker: sess.name})
			// If a timeout reclaimed this chunk before the late result
			// landed, it is back in pending (purge it or the fleet
			// recomputes a reduced chunk) — or was even re-assigned while
			// the merge ran (drop the stale outstanding entry so the
			// reclaim loop cannot requeue a completed chunk).
			delete(j.outstanding, id)
			for i, p := range j.pending {
				if p == id {
					j.pending = append(j.pending[:i], j.pending[i+1:]...)
					break
				}
			}
		}
		if w := j.workers[sess.name]; w != nil {
			w.Chunks += len(chunks)
		}
		if elapsed > 0 {
			j.chunkSecs = blend(j.chunkSecs, elapsed.Seconds()/float64(len(chunks)))
		}
		// Session profile: chunks credited, and the ack-timing throughput
		// inference — group photons over earliest-grant-to-arrival wall
		// time. It folds compute, wire and hold into one number (unlike
		// the worker's reported kernel-only EWMA), which is exactly the
		// reported-vs-inferred contrast /fleet exists to show.
		sess.completed += len(chunks)
		if !minGranted.IsZero() {
			if wall := arrival.Sub(minGranted).Seconds(); wall > 0 {
				sess.inferredPPS = blend(sess.inferredPPS, float64(tally.Launched)/wall)
			}
		}
		// Join the phase-1 seeds with the worker-reported compute and this
		// merge's duration into per-chunk spans; the segment histograms
		// observe every span even after the per-job ring wraps.
		reduceShare := mergeDur / time.Duration(len(chunks))
		for _, sd := range seeds {
			compute := elapsed / time.Duration(len(chunks))
			if len(secs) == len(chunks) {
				compute = time.Duration(secs[sd.idx] * float64(time.Second))
			}
			queue := sd.granted.Sub(sd.queued)
			if sd.queued.IsZero() || queue < 0 {
				queue = 0
			}
			wire := arrival.Sub(sd.granted) - compute
			if wire < 0 {
				wire = 0
			}
			j.spans.Record(obs.Span{
				Chunk: sd.chunk, Worker: sess.name, Granted: sd.granted,
				Queue: queue, Wire: wire, Compute: compute, Reduce: reduceShare,
			})
			r.met.spanQueue.Observe(queue.Seconds())
			r.met.spanWire.Observe(wire.Seconds())
			r.met.spanCompute.Observe(compute.Seconds())
			r.met.spanReduce.Observe(reduceShare.Seconds())
		}
		r.photonsDone += tally.Launched
		r.merges++
		j.tstats.photons += tally.Launched
		r.met.chunksCompleted.Add(uint64(len(chunks)))
		r.met.photonsReduced.Add(uint64(tally.Launched))
		j.tstats.photC.Add(uint64(tally.Launched))
		// Re-estimate the observable off the dispatch-critical path (the
		// moment arithmetic is a handful of float ops on the already
		// redMu-guarded tally) and publish it for Status readers.
		j.publishEstimate(j.tally)
		if j.openEnded() {
			j.trace(obs.Event{Kind: obs.EvEstimate, Value: j.estRSE})
		}
		switch {
		case j.openEnded() && j.targetMet:
			// The stopping rule fired: finalize immediately. Granting
			// stops, queued and in-flight chunks are shed (stragglers
			// that still flush are benign-rejected above), and the
			// result is normalized by the photons actually reduced.
			j.pending = nil
			j.outstanding = make(map[int]*chunkState)
			r.finishJobLocked(j)
			finished = j
			j.trace(obs.Event{Kind: obs.EvFinalized, Detail: "target-met", Value: j.estRSE})
			r.log.Info("job met precision target", "job", jobHex(j.id),
				"observable", j.spec.Target.Observable, "relErr", j.spec.Target.RelErr,
				"photons", j.photonsRun)
		case j.nCompleted == j.nChunks && (!j.openEnded() || j.issuableChunksLocked() == 0):
			// Fixed-count: every chunk reduced. Open-ended: the photon
			// cap is spent and nothing is left in flight — the job
			// finishes unmet, reporting its achieved RSE.
			r.finishJobLocked(j)
			finished = j
			detail := "complete"
			if j.openEnded() {
				detail = "budget-exhausted"
			}
			j.trace(obs.Event{Kind: obs.EvFinalized, Detail: detail, Value: j.estRSE})
		}
	}
	r.mu.Unlock()
	j.redMu.Unlock()
	if reduced {
		// Journal off both locks. On finalize this runs before sealJob:
		// waiters stay blocked on j.finished until the final snapshot is
		// appended, so nothing can mutate the returned tally mid-encode.
		r.journal.chunksReduced(r, j, chunks, finished != nil)
	}
	if finished != nil {
		r.sealJob(finished) // cache clone + waiter release, off the hot lock
	}
	return acks
}

// SessionStatus is one live worker session in the GET /fleet table: the
// connection's identity and freshness, the chunks it holds and has
// completed, and the reported-vs-inferred throughput pair — the worker's
// own kernel EWMA next to the server's ack-timing estimate. The reported
// fields (photons/sec through version) are zero/absent for sessions that
// have never piggybacked a WorkerReport.
type SessionStatus struct {
	ID                    uint64    `json:"id"`
	Name                  string    `json:"name"`
	Remote                string    `json:"remote,omitempty"`
	Mflops                float64   `json:"mflops,omitempty"`
	Connected             time.Time `json:"connectedSince"`
	LastSeen              time.Time `json:"lastSeen"`
	ChunksHeld            int       `json:"chunksHeld"`
	ChunksCompleted       int       `json:"chunksCompleted"`
	InferredPhotonsPerSec float64   `json:"inferredPhotonsPerSec,omitempty"`
	ReportedPhotonsPerSec float64   `json:"reportedPhotonsPerSec,omitempty"`
	ChunkSeconds          float64   `json:"chunkSeconds,omitempty"`
	EncodeSeconds         float64   `json:"encodeSeconds,omitempty"`
	Holding               int       `json:"holding,omitempty"`
	Goroutines            int       `json:"goroutines,omitempty"`
	HeapBytes             uint64    `json:"heapBytes,omitempty"`
	Version               string    `json:"version,omitempty"`
}

// Fleet snapshots every live worker session, ordered by session id
// (connection order). This is the data ROADMAP item 5's speed-profile
// scheduling needs: who is connected, how fast each worker says it is,
// and how fast the server has observed it to be.
func (r *Registry) Fleet() []SessionStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SessionStatus, 0, len(r.sessions))
	for _, s := range r.sessions {
		ss := SessionStatus{
			ID:                    s.id,
			Name:                  s.name,
			Remote:                s.remote,
			Mflops:                s.mflops,
			Connected:             s.connected,
			LastSeen:              s.lastSeen,
			ChunksHeld:            len(s.assigned),
			ChunksCompleted:       s.completed,
			InferredPhotonsPerSec: s.inferredPPS,
		}
		if s.hasReport {
			ss.ReportedPhotonsPerSec = s.report.PhotonsPerSec
			ss.ChunkSeconds = s.report.ChunkSecs
			ss.EncodeSeconds = s.report.EncodeSecs
			ss.Holding = s.report.Holding
			ss.Goroutines = s.report.Goroutines
			ss.HeapBytes = s.report.HeapBytes
			ss.Version = s.report.Version
		}
		out = append(out, ss)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}
