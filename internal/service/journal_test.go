package service

import (
	"bytes"
	"errors"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/wal"
)

// journaledRegistry opens a WAL in dir and builds a registry journaling
// into it. Auto-compaction is disabled (CompactBytes < 0) so tests see
// exactly the records their scenario produced.
func journaledRegistry(t *testing.T, dir string, snapEvery int, o Options) (*Registry, *wal.Log, *wal.Replay) {
	t.Helper()
	wl, rep, err := wal.Open(wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	o.Journal = NewJournal(wl, JournalOptions{SnapshotEvery: snapEvery, CompactBytes: -1})
	return New(o), wl, rep
}

// replayInto folds the records from dir into a fresh registry.
func replayInto(t *testing.T, dir string, o Options) (*Registry, *wal.Log, int) {
	t.Helper()
	reg, wl, rep := journaledRegistry(t, dir, 0, o)
	restored, err := reg.journal.Replay(reg, rep.Records)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return reg, wl, restored
}

// workChunks runs the minimal per-chunk worker loop until n chunks are
// accepted, then disconnects — the mid-run crash shape the journal tests
// need. It mirrors workClient but with a chunk budget.
func workChunks(rw net.Conn, n int) error {
	pc := protocol.NewConn(rw)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: "crashy"}}); err != nil {
		return err
	}
	if _, err := pc.Recv(); err != nil {
		return err
	}
	type rt struct {
		cfg     *mc.Config
		seed    uint64
		streams int
	}
	jobs := map[uint64]*rt{}
	for done := 0; done < n; {
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
			Request: &protocol.TaskRequest{}}); err != nil {
			return err
		}
		msg, err := pc.Recv()
		if err != nil {
			return err
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			r := jobs[a.JobID]
			if r == nil {
				if a.Job == nil {
					return errors.New("assign without descriptor")
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return err
				}
				r = &rt{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams}
				jobs[a.JobID] = r
			}
			tally, err := mc.RunStream(r.cfg, a.Photons, r.seed, a.Stream, r.streams)
			if err != nil {
				return err
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskResult,
				Result: &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tally}}); err != nil {
				return err
			}
			if _, err := pc.Recv(); err != nil {
				return err
			}
			done++
		case protocol.MsgNoWork:
			if msg.NoWork.Done {
				return nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			return errors.New("unexpected message")
		}
	}
	return nil
}

func tallyBytes(t *testing.T, tt *mc.Tally) []byte {
	t.Helper()
	if tt == nil {
		t.Fatal("nil tally")
	}
	return mc.AppendTally(nil, tt)
}

// TestJournalReplayResumesAcceptedJob: a job journaled at accept time but
// never started survives a crash — replay re-queues it under the same
// content-derived ID, admission-exempt, counted in stats and metrics, and
// a worker then completes it to the standalone ground truth.
func TestJournalReplayResumesAcceptedJob(t *testing.T) {
	dir := t.TempDir()
	regA, wlA, rep0 := journaledRegistry(t, dir, 0, Options{})
	if len(rep0.Records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(rep0.Records))
	}
	spec := slabSpec(3)
	out, err := regA.Submit(JobSpec{Spec: spec, TotalPhotons: 2000, ChunkPhotons: 250, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	id := out.Job.ID()
	wlA.Close() // the crash: nothing but the journal survives

	obsReg := obs.NewRegistry()
	regB, wlB, restored := replayInto(t, dir, Options{Obs: obsReg})
	defer wlB.Close()
	if restored != 1 {
		t.Fatalf("replay restored %d jobs, want 1", restored)
	}
	j := regB.Get(id)
	if j == nil {
		t.Fatal("replayed job did not keep its content-derived ID")
	}
	if st := j.Status().State; st != StateQueued.String() {
		t.Fatalf("replayed job state %q, want queued", st)
	}
	if got := regB.Stats().JobsReplayed; got != 1 {
		t.Fatalf("Stats.JobsReplayed = %d, want 1", got)
	}
	var buf bytes.Buffer
	obsReg.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("service_jobs_replayed_total 1")) {
		t.Fatalf("metrics missing replay count:\n%s", buf.String())
	}

	startWorkers(t, regB, 1)
	res, err := j.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := localTally(t, spec, 2000, 250, 7)
	if res.Tally.Launched != 2000 {
		t.Fatalf("launched %d, want 2000", res.Tally.Launched)
	}
	if math.Abs(res.Tally.AbsorbedWeight-want.AbsorbedWeight) > 1e-9 {
		t.Fatalf("absorbed %g != standalone %g", res.Tally.AbsorbedWeight, want.AbsorbedWeight)
	}
}

// TestJournalCrashMidRunByteIdenticalTally is the PR's durability
// acceptance property: kill the registry mid-job, replay from the last
// amortized snapshot, recompute the lost tail, and the final tally is
// byte-for-byte the uninterrupted run's. Single worker + per-chunk
// results make the merge order deterministic (grants pop descending), so
// "identical" here means identical float fold — not just close.
func TestJournalCrashMidRunByteIdenticalTally(t *testing.T) {
	spec := slabSpec(4)
	js := JobSpec{Spec: spec, TotalPhotons: 2000, ChunkPhotons: 250, Seed: 13}

	// Baseline: the same job on an unjournaled registry, one worker,
	// never interrupted.
	base := New(Options{})
	outBase, err := base.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	startWorkers(t, base, 1)
	resBase, err := outBase.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	baseBytes := tallyBytes(t, resBase.Tally)

	// Crash run: snapshot every 2 reduced chunks, kill after 5 of 8.
	dir := t.TempDir()
	regA, wlA, _ := journaledRegistry(t, dir, 2, Options{})
	outA, err := regA.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go regA.HandleConn(server)
	if err := workChunks(client, 5); err != nil {
		t.Fatalf("partial worker: %v", err)
	}
	client.Close()
	if done, _ := outA.Job.Progress(); done != 5 {
		t.Fatalf("crash run completed %d chunks, want 5", done)
	}
	wlA.Close() // SIGKILL

	regB, wlB, restored := replayInto(t, dir, Options{})
	defer wlB.Close()
	if restored != 1 {
		t.Fatalf("replay restored %d jobs, want 1", restored)
	}
	j := regB.Get(outA.Job.ID())
	if j == nil {
		t.Fatal("mid-run job not replayed")
	}
	// The 5th chunk landed after the last snapshot: its chunk record is a
	// progress marker only, so replay resumes from 4 completed and the
	// 5th recomputes (chunk tallies are pure functions of the stream).
	if done, total := j.Progress(); done != 4 || total != 8 {
		t.Fatalf("resumed at %d/%d chunks, want 4/8 (last snapshot)", done, total)
	}
	startWorkers(t, regB, 1)
	res, err := j.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyBytes(t, res.Tally), baseBytes) {
		t.Fatal("resumed tally is not byte-identical to the uninterrupted run")
	}
}

// TestJournalFinalizedReplayBornDone: a finished job replays born-Done —
// its result is servable with zero workers attached, and the result cache
// is re-seeded so an identical resubmission is a cache hit.
func TestJournalFinalizedReplayBornDone(t *testing.T) {
	dir := t.TempDir()
	regA, wlA, _ := journaledRegistry(t, dir, 0, Options{})
	spec := slabSpec(5)
	js := JobSpec{Spec: spec, TotalPhotons: 1000, ChunkPhotons: 250, Seed: 3}
	out, err := regA.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	startWorkers(t, regA, 1)
	resA, err := out.Job.Wait(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	wlA.Close()

	regB, wlB, restored := replayInto(t, dir, Options{})
	defer wlB.Close()
	if restored != 1 {
		t.Fatalf("replay restored %d jobs, want 1", restored)
	}
	j := regB.Get(out.Job.ID())
	if j == nil {
		t.Fatal("finished job not replayed")
	}
	if st := j.Status().State; st != StateDone.String() {
		t.Fatalf("replayed job state %q, want done", st)
	}
	resB, err := j.Wait(time.Second) // no workers: must already be done
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyBytes(t, resB.Tally), tallyBytes(t, resA.Tally)) {
		t.Fatal("replayed final tally differs from the pre-crash result")
	}
	dup, err := regB.Submit(js)
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("replay did not re-seed the result cache")
	}
}

// TestJournalCanceledJobNotReplayed: a cancel mark drops the job from the
// fold — a restart must not resurrect work the operator killed.
func TestJournalCanceledJobNotReplayed(t *testing.T) {
	dir := t.TempDir()
	regA, wlA, _ := journaledRegistry(t, dir, 0, Options{})
	out, err := regA.Submit(JobSpec{Spec: slabSpec(6), TotalPhotons: 1000, ChunkPhotons: 250, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := regA.Cancel(out.Job.ID()); err != nil {
		t.Fatal(err)
	}
	wlA.Close()

	regB, wlB, restored := replayInto(t, dir, Options{})
	defer wlB.Close()
	if restored != 0 {
		t.Fatalf("replay restored %d jobs, want 0", restored)
	}
	if regB.Get(out.Job.ID()) != nil {
		t.Fatal("canceled job resurrected by replay")
	}
}

// TestJournalCompactionShrinksAndReplays: CompactJournal rewrites a
// chatty history (accept + per-chunk records + per-chunk snapshots) down
// to one snapshot per retained job, the log shrinks, canceled jobs are
// dropped, and a replay of the compacted log restores the same state.
func TestJournalCompactionShrinksAndReplays(t *testing.T) {
	dir := t.TempDir()
	regA, wlA, _ := journaledRegistry(t, dir, 1, Options{}) // snapshot every chunk: maximal history
	specDone := slabSpec(7)
	outDone, err := regA.Submit(JobSpec{Spec: specDone, TotalPhotons: 2000, ChunkPhotons: 250, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go regA.HandleConn(server)
	if err := workChunks(client, 8); err != nil {
		t.Fatal(err)
	}
	client.Close()
	resDone, err := outDone.Job.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	outQueued, err := regA.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 1000, ChunkPhotons: 250, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	outCanceled, err := regA.Submit(JobSpec{Spec: slabSpec(9), TotalPhotons: 1000, ChunkPhotons: 250, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if err := regA.Cancel(outCanceled.Job.ID()); err != nil {
		t.Fatal(err)
	}

	before := wlA.Size()
	if err := regA.CompactJournal(); err != nil {
		t.Fatalf("CompactJournal: %v", err)
	}
	if after := wlA.Size(); after >= before {
		t.Fatalf("compaction did not shrink the journal: %d -> %d", before, after)
	}
	wlA.Close()

	regB, wlB, restored := replayInto(t, dir, Options{})
	defer wlB.Close()
	if restored != 2 {
		t.Fatalf("replay restored %d jobs, want 2 (done + queued)", restored)
	}
	jd := regB.Get(outDone.Job.ID())
	if jd == nil || jd.Status().State != StateDone.String() {
		t.Fatalf("finished job lost in compaction: %v", jd)
	}
	resB, err := jd.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyBytes(t, resB.Tally), tallyBytes(t, resDone.Tally)) {
		t.Fatal("compaction changed the finished job's tally")
	}
	jq := regB.Get(outQueued.Job.ID())
	if jq == nil || jq.Status().State != StateQueued.String() {
		t.Fatalf("queued job lost in compaction: %v", jq)
	}
	if regB.Get(outCanceled.Job.ID()) != nil {
		t.Fatal("compaction retained a canceled job")
	}
}

// TestJournalCompactionCrashDoubleReplay reconstructs, at the service
// layer, the on-disk state of a crash at wal.mid-compaction: old history
// AND the compacted segment both present. Replay must be idempotent — the
// compacted records fold last and supersede the duplicated history.
func TestJournalCompactionCrashDoubleReplay(t *testing.T) {
	dir := t.TempDir()
	regA, wlA, _ := journaledRegistry(t, dir, 2, Options{})
	out, err := regA.Submit(JobSpec{Spec: slabSpec(10), TotalPhotons: 2000, ChunkPhotons: 250, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go regA.HandleConn(server)
	if err := workChunks(client, 8); err != nil {
		t.Fatal(err)
	}
	client.Close()
	resA, err := out.Job.Wait(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := wlA.Sync(); err != nil {
		t.Fatal(err)
	}
	saved := map[string][]byte{}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		saved[filepath.Base(s)] = data
	}
	if err := regA.CompactJournal(); err != nil {
		t.Fatal(err)
	}
	wlA.Close()
	// Resurrect the pre-compaction segments next to the compacted one.
	for name, data := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	regB, wlB, restored := replayInto(t, dir, Options{})
	defer wlB.Close()
	if restored != 1 {
		t.Fatalf("double replay restored %d jobs, want 1 (idempotence)", restored)
	}
	j := regB.Get(out.Job.ID())
	if j == nil || j.Status().State != StateDone.String() {
		t.Fatal("job lost across compaction crash")
	}
	resB, err := j.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyBytes(t, resB.Tally), tallyBytes(t, resA.Tally)) {
		t.Fatal("double replay changed the tally")
	}
}
