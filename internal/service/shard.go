package service

import (
	"encoding/binary"
	"math"
)

// Shard routing: the uint64 prefix of a job's content Key is partitioned
// into `shards` contiguous, equal-width ranges, and shard i owns the i-th
// range. Because job IDs are themselves derived from the same prefix
// (freeIDLocked), a stateless gateway can route POST /jobs by the key it
// computes from the request body and every GET /jobs/{id} by the ID alone
// — no routing table, no lookup service, no shared state. The mapping is
// a pure function of (key, shards): it survives gateway restarts, and
// renaming or re-ordering a shard's replicas never moves a key.

// ShardOfKey returns which of `shards` key-range shards owns k.
func ShardOfKey(k Key, shards int) int {
	return ShardOfID(binary.BigEndian.Uint64(k[:8]), shards)
}

// ShardOfID returns the shard owning a job ID. IDs are the big-endian
// uint64 prefix of the job's content key (plus a vanishingly rare linear
// probe on collision), so ShardOfID(id, n) agrees with ShardOfKey of the
// key the ID came from.
func ShardOfID(id uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	width := math.MaxUint64/uint64(shards) + 1
	i := int(id / width)
	if i >= shards { // the last range absorbs the rounding remainder
		i = shards - 1
	}
	return i
}

// KeyID is the job ID a registry derives from a content key (before the
// collision probe): the big-endian uint64 of the key's first 8 bytes.
// Zero is reserved, so it maps to 1 exactly as freeIDLocked does.
func KeyID(k Key) uint64 {
	id := binary.BigEndian.Uint64(k[:8])
	if id == 0 {
		id = 1
	}
	return id
}

// RoutingKeys normalizes the spec in place exactly as Submit will and
// returns its content key and physics key — what a gateway needs to pick
// the owning shard and to probe the shared result cache before routing
// (the normalized spec then also answers AdmissionPhotons).
// maxTargetPhotons must match the shards' own operator cap: it clamps a
// targeted submission's photon budget during normalization and therefore
// participates in the key (pass 0 for the default). Validation failures
// come back wrapped as InvalidJobError, like Submit's own.
func RoutingKeys(spec *JobSpec, maxTargetPhotons int64) (key, pkey Key, err error) {
	if err := spec.normalize(maxTargetPhotons); err != nil {
		return Key{}, Key{}, invalid(err)
	}
	key, pkey, err = keysOf(spec)
	if err != nil {
		return Key{}, Key{}, invalid(err)
	}
	return key, pkey, nil
}

// AdmissionPhotons exposes the photon cost admission charges for a
// normalized submission — the fixed budget, or a targeted job's
// guaranteed minimum. A gateway holding the tenant buckets debits exactly
// this, so gateway-side admission matches single-node admission.
func (s *JobSpec) AdmissionPhotons() int64 { return s.admissionPhotons() }
