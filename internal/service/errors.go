package service

import "errors"

// InvalidJobError marks a Submit refusal the submission itself caused — a
// malformed spec, a contradictory target, an over-long tenant name. The
// HTTP layer maps it to 422 Unprocessable Entity, and a routing tier must
// never retry it on another shard: the same bytes fail everywhere. Every
// other non-shed Submit error is the service's own problem (a Spec.Build
// failure, journal wiring) and maps to 503 Service Unavailable, which a
// gateway may retry on a standby.
type InvalidJobError struct{ Err error }

func (e *InvalidJobError) Error() string { return e.Err.Error() }
func (e *InvalidJobError) Unwrap() error { return e.Err }

// invalid wraps a validation failure as client-attributable; nil-safe.
func invalid(err error) error {
	if err == nil {
		return nil
	}
	return &InvalidJobError{Err: err}
}

// IsInvalid reports whether err is client-attributable (422, don't retry)
// as opposed to a service-side failure (503, retry another replica).
func IsInvalid(err error) bool {
	var e *InvalidJobError
	return errors.As(err, &e)
}
