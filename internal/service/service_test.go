package service

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/protocol"
	"repro/internal/source"
	"repro/internal/tissue"
)

// slabSpec returns a cheap layered simulation spec; thickness varies the
// content key, so different thicknesses are different jobs.
func slabSpec(thicknessMM float64) *mc.Spec {
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, thicknessMM)
	return mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

// localTally computes the ground-truth reduction of a job's streams.
func localTally(t *testing.T, spec *mc.Spec, total, chunk int64, seed uint64) *mc.Tally {
	t.Helper()
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	streams := int((total + chunk - 1) / chunk)
	want := mc.NewTally(cfg)
	remaining := total
	for s := 0; s < streams; s++ {
		n := chunk
		if n > remaining {
			n = remaining
		}
		remaining -= n
		tt, err := mc.RunStream(cfg, n, seed, s, streams)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Merge(tt); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// startWorkers attaches n in-memory pipe workers to the registry and
// arranges for their goroutines to die when the test ends.
func startWorkers(t *testing.T, reg *Registry, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		name := string(rune('a' + i))
		go func() {
			// Long-lived registries never say Done; the worker exits when
			// the test closes its pipe.
			_, _ = workClient(client, name)
		}()
		t.Cleanup(func() { client.Close() })
	}
}

// workClient is a minimal v2 worker loop (mirrors distsys.Work, which
// lives above this package in the import graph).
func workClient(rw net.Conn, name string) (int, error) {
	pc := protocol.NewConn(rw)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: name}}); err != nil {
		return 0, err
	}
	if _, err := pc.Recv(); err != nil {
		return 0, err
	}
	type rt struct {
		cfg     *mc.Config
		seed    uint64
		streams int
	}
	jobs := map[uint64]*rt{}
	chunks := 0
	for {
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
			Request: &protocol.TaskRequest{}}); err != nil {
			return chunks, err
		}
		msg, err := pc.Recv()
		if err != nil {
			return chunks, err
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			r := jobs[a.JobID]
			if r == nil {
				if a.Job == nil {
					return chunks, errors.New("assign without descriptor")
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return chunks, err
				}
				r = &rt{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams}
				jobs[a.JobID] = r
			}
			tally, err := mc.RunStream(r.cfg, a.Photons, r.seed, a.Stream, r.streams)
			if err != nil {
				return chunks, err
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskResult,
				Result: &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tally}}); err != nil {
				return chunks, err
			}
			if _, err := pc.Recv(); err != nil {
				return chunks, err
			}
			chunks++
		case protocol.MsgNoWork:
			if msg.NoWork.Done {
				return chunks, nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			return chunks, errors.New("unexpected message")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	reg := New(Options{})
	if _, err := reg.Submit(JobSpec{}); err == nil {
		t.Fatal("job without spec accepted")
	}
	if _, err := reg.Submit(JobSpec{Spec: slabSpec(5)}); err == nil {
		t.Fatal("zero-photon job accepted")
	}
}

func TestChunkPartition(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1050, ChunkPhotons: 100})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	if j.NumChunks() != 11 {
		t.Fatalf("chunks = %d, want 11", j.NumChunks())
	}
	// Total photons across chunks must be conserved (the tail chunk is
	// short).
	var total int64
	for _, p := range j.photons {
		total += p
	}
	if total != 1050 {
		t.Fatalf("chunk photons sum to %d, want 1050", total)
	}
	if j.photons[10] != 50 {
		t.Fatalf("tail chunk has %d photons, want 50", j.photons[10])
	}
}

func TestKeyOfDistinguishesJobs(t *testing.T) {
	base, _ := KeyOf(slabSpec(5), 1000, 100, 1)
	cases := map[string]Key{}
	k, _ := KeyOf(slabSpec(6), 1000, 100, 1)
	cases["spec"] = k
	k, _ = KeyOf(slabSpec(5), 2000, 100, 1)
	cases["photons"] = k
	k, _ = KeyOf(slabSpec(5), 1000, 200, 1)
	cases["chunking"] = k
	k, _ = KeyOf(slabSpec(5), 1000, 100, 2)
	cases["seed"] = k
	for dim, key := range cases {
		if key == base {
			t.Fatalf("changing %s did not change the cache key", dim)
		}
	}
	again, _ := KeyOf(slabSpec(5), 1000, 100, 1)
	if again != base {
		t.Fatal("identical submission hashed differently")
	}
}

func TestCoalesceIdenticalActiveSubmission(t *testing.T) {
	reg := New(Options{})
	first, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Coalesced || second.Job != first.Job {
		t.Fatal("identical active submission not coalesced")
	}
	if s := reg.Stats(); s.JobsQueued != 1 {
		t.Fatalf("coalesced submission created a second job: %+v", s)
	}
	// An urgent duplicate must not be demoted to the incumbent's
	// scheduling parameters: the live job absorbs the stronger ones.
	urgent, err := reg.Submit(JobSpec{
		Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3,
		Priority: 9, Weight: 4, Label: "urgent",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !urgent.Coalesced {
		t.Fatal("identical submission with different scheduling params not coalesced")
	}
	st := first.Job.Status()
	if st.Priority != 9 || st.Weight != 4 || st.Label != "urgent" {
		t.Fatalf("coalesce dropped scheduling params: %+v", st)
	}
}

func TestCancel(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Cancel(out.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Job.Wait(time.Second); !errors.Is(err, ErrCanceled) {
		t.Fatalf("wait on canceled job: %v", err)
	}
	if st := out.Job.Status(); st.State != "canceled" {
		t.Fatalf("state %q after cancel", st.State)
	}
	if err := reg.Cancel(out.Job.ID()); err == nil {
		t.Fatal("double cancel accepted")
	}
	// A canceled job no longer blocks an identical resubmission.
	again, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if again.Coalesced || again.Cached {
		t.Fatal("resubmission after cancel was deduplicated")
	}
}

// TestConcurrentJobsSharedFleet is the concurrent-job end-to-end check:
// two jobs with different specs submitted to one registry over a 3-worker
// in-memory fleet finish with tallies matching their single-job runs, and
// a duplicate submission is served from the cache without launching
// photons.
func TestConcurrentJobsSharedFleet(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	startWorkers(t, reg, 3)

	specA, specB := slabSpec(5), slabSpec(8)
	const totalA, chunkA, seedA = 3000, 250, 11
	const totalB, chunkB, seedB = 2000, 200, 23

	var outA, outB *SubmitOutcome
	var err error
	if outA, err = reg.Submit(JobSpec{Spec: specA, TotalPhotons: totalA, ChunkPhotons: chunkA, Seed: seedA}); err != nil {
		t.Fatal(err)
	}
	if outB, err = reg.Submit(JobSpec{Spec: specB, TotalPhotons: totalB, ChunkPhotons: chunkB, Seed: seedB}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var resA, resB *Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); resA, errA = outA.Job.Wait(60 * time.Second) }()
	go func() { defer wg.Done(); resB, errB = outB.Job.Wait(60 * time.Second) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}

	wantA := localTally(t, specA, totalA, chunkA, seedA)
	wantB := localTally(t, specB, totalB, chunkB, seedB)
	if resA.Tally.Launched != totalA || resB.Tally.Launched != totalB {
		t.Fatalf("launched %d/%d, want %d/%d",
			resA.Tally.Launched, resB.Tally.Launched, totalA, totalB)
	}
	if math.Abs(resA.Tally.AbsorbedWeight-wantA.AbsorbedWeight) > 1e-9 {
		t.Fatalf("job A absorbed %g != standalone %g", resA.Tally.AbsorbedWeight, wantA.AbsorbedWeight)
	}
	if math.Abs(resB.Tally.AbsorbedWeight-wantB.AbsorbedWeight) > 1e-9 {
		t.Fatalf("job B absorbed %g != standalone %g", resB.Tally.AbsorbedWeight, wantB.AbsorbedWeight)
	}
	if resA.Tally.DetectedCount != wantA.DetectedCount || resB.Tally.DetectedCount != wantB.DetectedCount {
		t.Fatal("multi-job detection counts differ from standalone runs")
	}

	// Duplicate submission: served from cache, zero new chunks assigned.
	assignedBefore := reg.Stats().ChunksAssigned
	dup, err := reg.Submit(JobSpec{Spec: specA, TotalPhotons: totalA, ChunkPhotons: chunkA, Seed: seedA})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("duplicate submission not served from cache")
	}
	dupRes, err := dup.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dupRes.CacheHit {
		t.Fatal("cached result not flagged")
	}
	if math.Abs(dupRes.Tally.AbsorbedWeight-resA.Tally.AbsorbedWeight) > 0 {
		t.Fatal("cached tally differs from the original result")
	}
	if after := reg.Stats().ChunksAssigned; after != assignedBefore {
		t.Fatalf("cache hit assigned %d chunks", after-assignedBefore)
	}
}

// TestFairSharePolicyInterleavesJobs drives the dispatcher directly (no
// workers) and checks weighted fair-share assignment ratios.
func TestFairSharePolicyInterleavesJobs(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	heavy, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 9000, ChunkPhotons: 100, Seed: 1, Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	light, err := reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 9000, ChunkPhotons: 100, Seed: 2, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	counts := map[uint64]int{}
	for i := 0; i < 40; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Type != protocol.MsgTaskAssign {
			t.Fatalf("assignment %d: got %v", i, msg.Type)
		}
		counts[msg.Assign.JobID]++
		completeAssign(reg, sess, msg.Assign)
	}
	h, l := counts[heavy.Job.ID()], counts[light.Job.ID()]
	if h+l != 40 {
		t.Fatalf("assignments went to unknown jobs: %v", counts)
	}
	ratio := float64(h) / float64(l)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("3:1 weights assigned at ratio %.2f (%d vs %d)", ratio, h, l)
	}
}

// completeAssign marks a probe session's assigned chunk as reduced without
// running physics, so dispatcher tests can drain queues synchronously.
func completeAssign(reg *Registry, sess *session, a *protocol.TaskAssign) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	j := reg.jobs[a.JobID]
	if !j.completed[a.ChunkID] {
		j.completed[a.ChunkID] = true
		j.nCompleted++
	}
	delete(j.outstanding, a.ChunkID)
	sess.cur = nil
}

// TestPriorityPolicyDrainsHighFirst checks strict priority ordering.
func TestPriorityPolicyDrainsHighFirst(t *testing.T) {
	reg := New(Options{Policy: Priority()})
	lo, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 500, ChunkPhotons: 100, Seed: 1, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 500, ChunkPhotons: 100, Seed: 2, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()
	for i := 0; i < 5; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Assign.JobID != hi.Job.ID() {
			t.Fatalf("assignment %d went to low-priority job", i)
		}
		completeAssign(reg, sess, msg.Assign)
	}
	if msg := reg.nextAssignment(sess, nil); msg.Assign.JobID != lo.Job.ID() {
		t.Fatal("low-priority job not served after high drained")
	}
}

// TestFIFODrainsInOrder checks the default policy serves submission order.
func TestFIFODrainsInOrder(t *testing.T) {
	reg := New(Options{})
	first, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 300, ChunkPhotons: 100, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()
	for i := 0; i < 3; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Assign.JobID != first.Job.ID() {
			t.Fatalf("assignment %d left the FIFO head", i)
		}
		completeAssign(reg, sess, msg.Assign)
	}
}

// TestAbandonedAssignmentRequeued guards against stranded chunks: with
// ChunkTimeout=0 a chunk abandoned by a new task-request (or by an
// unmergeable result) must return to the pending queue, or the job could
// never complete.
func TestAbandonedAssignmentRequeued(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	first := reg.nextAssignment(sess, nil).Assign
	// Request again without delivering a result: the first chunk must be
	// requeued, not left ownerless in outstanding.
	second := reg.nextAssignment(sess, nil).Assign
	reg.mu.Lock()
	pending, outstanding := len(j.pending), len(j.outstanding)
	reassigned := j.reassigned
	reg.mu.Unlock()
	if pending+outstanding != 2 || outstanding != 1 {
		t.Fatalf("chunk stranded: pending %d, outstanding %d after abandon", pending, outstanding)
	}
	if reassigned != 1 {
		t.Fatalf("reassigned = %d, want 1", reassigned)
	}
	_ = first

	// An unmergeable tally must also requeue the chunk (and count as a
	// rejection), so a malformed result cannot wedge the job.
	ack := reg.handleResult(sess, &protocol.TaskResult{
		JobID: j.ID(), ChunkID: second.ChunkID, Tally: &mc.Tally{},
	})
	if !ack.Rejected {
		t.Fatal("unmergeable tally not rejected")
	}
	reg.mu.Lock()
	pending, outstanding = len(j.pending), len(j.outstanding)
	reg.mu.Unlock()
	if pending != 2 || outstanding != 0 {
		t.Fatalf("chunk stranded after bad merge: pending %d, outstanding %d", pending, outstanding)
	}
}

// TestLateResultAfterReclaimDoesNotRecompute drives the timeout-reclaim
// race by hand: chunks time out and are requeued, then the original
// workers' results land late. The late merges must purge the requeued
// copies from pending/outstanding so the fleet never recomputes an
// already-reduced chunk, and the third worker's redundant result must be
// acked as a benign duplicate.
func TestLateResultAfterReclaimDoesNotRecompute(t *testing.T) {
	spec := slabSpec(5)
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{
		Spec: spec, TotalPhotons: 200, ChunkPhotons: 100, Seed: 14,
		ChunkTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	chunkTally := func(a *protocol.TaskAssign) *protocol.TaskResult {
		tt, err := mc.RunStream(cfg, a.Photons, 14, a.Stream, j.NumChunks())
		if err != nil {
			t.Fatal(err)
		}
		return &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tt}
	}
	newSess := func(id uint64) *session {
		s := &session{id: id, name: fmt.Sprintf("s%d", id), knownJobs: map[uint64]bool{}}
		reg.mu.Lock()
		reg.sessions[s.id] = s
		reg.mu.Unlock()
		return s
	}
	s1, s2, s3 := newSess(101), newSess(102), newSess(103)

	a1 := reg.nextAssignment(s1, nil).Assign
	a2 := reg.nextAssignment(s2, nil).Assign
	time.Sleep(60 * time.Millisecond) // both chunks overdue
	a3 := reg.nextAssignment(s3, nil).Assign
	if a3 == nil {
		t.Fatal("no chunk reclaimed after timeout")
	}

	// The original workers deliver late; both must still be reduced (they
	// computed the right streams) and must clean up the requeued copies.
	if ack := reg.handleResult(s1, chunkTally(a1)); ack.Rejected || ack.Duplicate {
		t.Fatalf("late result 1 not reduced: %+v", ack)
	}
	reg.mu.Lock()
	for _, p := range j.pending {
		if p == a1.ChunkID {
			t.Fatal("merged chunk still in pending (would be recomputed)")
		}
	}
	reg.mu.Unlock()
	if ack := reg.handleResult(s2, chunkTally(a2)); ack.Rejected || ack.Duplicate {
		t.Fatalf("late result 2 not reduced: %+v", ack)
	}
	if ack := reg.handleResult(s3, chunkTally(a3)); !ack.Duplicate {
		t.Fatalf("redundant reassigned result not a duplicate: %+v", ack)
	}

	res, err := j.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 200 {
		t.Fatalf("launched %d, want 200 (chunk recomputed or lost)", res.Tally.Launched)
	}
	if res.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", res.Duplicates)
	}
	reg.mu.Lock()
	pending, outstanding := len(j.pending), len(j.outstanding)
	reg.mu.Unlock()
	if pending != 0 || outstanding != 0 {
		t.Fatalf("queue not clean after completion: pending %d, outstanding %d", pending, outstanding)
	}
}

// TestCachePutIsolatedFromCallerMutation guards the cache against callers
// merging into the Result.Tally they were handed back.
func TestCachePutIsolatedFromCallerMutation(t *testing.T) {
	reg := New(Options{DrainOnEmpty: true})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go reg.HandleConn(server)
	if _, err := workClient(client, "w"); err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	launched := res.Tally.Launched
	if err := res.Tally.Merge(res.Tally); err != nil { // caller mutates its copy
		t.Fatal(err)
	}
	dup, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("resubmission not cached")
	}
	cached, err := dup.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Tally.Launched != launched {
		t.Fatalf("cache aliased the caller's tally: launched %d, want %d",
			cached.Tally.Launched, launched)
	}
}

// TestResultCacheEviction checks the FIFO bound holds.
func TestResultCacheEviction(t *testing.T) {
	c := newCache(2)
	t1, t2, t3 := &mc.Tally{Launched: 1}, &mc.Tally{Launched: 2}, &mc.Tally{Launched: 3}
	k1, _ := KeyOf(slabSpec(5), 100, 100, 1)
	k2, _ := KeyOf(slabSpec(5), 100, 100, 2)
	k3, _ := KeyOf(slabSpec(5), 100, 100, 3)
	c.put(k1, t1)
	c.put(k2, t2)
	c.put(k3, t3)
	if c.get(k1) != nil {
		t.Fatal("oldest entry not evicted")
	}
	if got := c.get(k3); got == nil || got.Launched != 3 {
		t.Fatal("newest entry lost")
	}
	if got := c.get(k2); got == t2 {
		t.Fatal("cache returned its internal tally instead of a copy")
	}
}

// TestRetainDoneEviction checks finished jobs are bounded.
func TestRetainDoneEviction(t *testing.T) {
	reg := New(Options{RetainDone: 2, CacheSize: -1})
	var ids []uint64
	for seed := uint64(1); seed <= 4; seed++ {
		out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 100, ChunkPhotons: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, out.Job.ID())
		if err := reg.Cancel(out.Job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Get(ids[0]) != nil || reg.Get(ids[1]) != nil {
		t.Fatal("oldest finished jobs not evicted")
	}
	if reg.Get(ids[2]) == nil || reg.Get(ids[3]) == nil {
		t.Fatal("recent finished jobs evicted")
	}
}

// TestDrainOnEmpty checks one-shot registries tell workers Done.
func TestDrainOnEmpty(t *testing.T) {
	reg := New(Options{DrainOnEmpty: true, CacheSize: -1})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go reg.HandleConn(server)
	chunks, err := workClient(client, "solo")
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 3 {
		t.Fatalf("worker computed %d chunks, want 3", chunks)
	}
	if _, err := out.Job.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-reg.Drained():
	default:
		t.Fatal("registry not drained after last job")
	}
}
