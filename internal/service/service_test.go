package service

import (
	"errors"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/protocol"
	"repro/internal/source"
	"repro/internal/tissue"
)

// slabSpec returns a cheap layered simulation spec; thickness varies the
// content key, so different thicknesses are different jobs.
func slabSpec(thicknessMM float64) *mc.Spec {
	model := tissue.HomogeneousSlab("slab", tissue.ScalpProps, thicknessMM)
	return mc.NewSpec(model,
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
}

// localTally computes the ground-truth reduction of a job's streams.
func localTally(t *testing.T, spec *mc.Spec, total, chunk int64, seed uint64) *mc.Tally {
	t.Helper()
	return localTallyFan(t, spec, total, chunk, seed, 0)
}

// localTallyFan is localTally for fanned jobs: the standalone decomposition
// a fan-width-f distributed job must reproduce.
func localTallyFan(t *testing.T, spec *mc.Spec, total, chunk int64, seed uint64, fan int) *mc.Tally {
	t.Helper()
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	streams := int((total + chunk - 1) / chunk)
	want := mc.NewTally(cfg)
	remaining := total
	for s := 0; s < streams; s++ {
		n := chunk
		if n > remaining {
			n = remaining
		}
		remaining -= n
		tt, err := mc.RunStreamFan(cfg, n, seed, s, streams, fan)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Merge(tt); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// startWorkers attaches n in-memory pipe workers to the registry and
// arranges for their goroutines to die when the test ends.
func startWorkers(t *testing.T, reg *Registry, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		name := string(rune('a' + i))
		go func() {
			// Long-lived registries never say Done; the worker exits when
			// the test closes its pipe.
			_, _ = workClient(client, name)
		}()
		t.Cleanup(func() { client.Close() })
	}
}

// workClient is a minimal v2 worker loop (mirrors distsys.Work, which
// lives above this package in the import graph).
func workClient(rw net.Conn, name string) (int, error) {
	pc := protocol.NewConn(rw)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: name}}); err != nil {
		return 0, err
	}
	if _, err := pc.Recv(); err != nil {
		return 0, err
	}
	type rt struct {
		cfg     *mc.Config
		seed    uint64
		streams int
	}
	jobs := map[uint64]*rt{}
	chunks := 0
	for {
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest,
			Request: &protocol.TaskRequest{}}); err != nil {
			return chunks, err
		}
		msg, err := pc.Recv()
		if err != nil {
			return chunks, err
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			r := jobs[a.JobID]
			if r == nil {
				if a.Job == nil {
					return chunks, errors.New("assign without descriptor")
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return chunks, err
				}
				r = &rt{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams}
				jobs[a.JobID] = r
			}
			tally, err := mc.RunStream(r.cfg, a.Photons, r.seed, a.Stream, r.streams)
			if err != nil {
				return chunks, err
			}
			if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskResult,
				Result: &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tally}}); err != nil {
				return chunks, err
			}
			if _, err := pc.Recv(); err != nil {
				return chunks, err
			}
			chunks++
		case protocol.MsgNoWork:
			if msg.NoWork.Done {
				return chunks, nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			return chunks, errors.New("unexpected message")
		}
	}
}

// batchClient is a minimal protocol v3 worker that mirrors distsys.Work's
// result plane: chunks computed with the job's fan, pre-reduced per job,
// flushed as a batch piggybacked on the next task request once flushChunks
// accumulate (or standalone when idle), with Holding advertised in between.
func batchClient(rw net.Conn, name string, flushChunks int) (int, error) {
	pc := protocol.NewConn(rw)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: protocol.Version, Name: name}}); err != nil {
		return 0, err
	}
	if _, err := pc.Recv(); err != nil {
		return 0, err
	}
	type rt struct {
		cfg     *mc.Config
		seed    uint64
		streams int
		fan     int
	}
	jobs := map[uint64]*rt{}
	type group struct {
		chunks []int
		tally  *mc.Tally
	}
	pending := map[uint64]*group{}
	var order []uint64
	buffered, accepted := 0, 0

	encode := func() *protocol.ResultBatch {
		b := &protocol.ResultBatch{}
		for _, id := range order {
			g := pending[id]
			b.Groups = append(b.Groups, protocol.BatchGroup{
				JobID: id, Chunks: g.chunks, TallyData: mc.AppendTally(nil, g.tally),
			})
		}
		return b
	}
	apply := func(acks []protocol.ResultAck) {
		for _, a := range acks {
			if !a.Rejected {
				accepted++
			}
		}
		pending = map[uint64]*group{}
		order = nil
		buffered = 0
	}
	holding := func() []protocol.ChunkRef {
		var refs []protocol.ChunkRef
		for _, id := range order {
			for _, c := range pending[id].chunks {
				refs = append(refs, protocol.ChunkRef{JobID: id, ChunkID: c})
			}
		}
		return refs
	}

	for {
		req := &protocol.TaskRequest{}
		flushing := buffered >= flushChunks && buffered > 0
		if flushing {
			req.Batch = encode()
		} else {
			req.Holding = holding()
		}
		if err := pc.Send(&protocol.Message{Type: protocol.MsgTaskRequest, Request: req}); err != nil {
			return accepted, err
		}
		msg, err := pc.Recv()
		if err != nil {
			return accepted, err
		}
		if flushing {
			if msg.BatchAck == nil {
				return accepted, errors.New("flush reply lost its batch ack")
			}
			apply(msg.BatchAck.Acks)
		}
		switch msg.Type {
		case protocol.MsgTaskAssign:
			a := msg.Assign
			r := jobs[a.JobID]
			if r == nil {
				if a.Job == nil {
					return accepted, errors.New("assign without descriptor")
				}
				cfg, err := a.Job.Spec.Build()
				if err != nil {
					return accepted, err
				}
				r = &rt{cfg: cfg, seed: a.Job.Seed, streams: a.Job.Streams, fan: a.Job.Fan}
				jobs[a.JobID] = r
			}
			tally, err := mc.RunStreamFan(r.cfg, a.Photons, r.seed, a.Stream, r.streams, r.fan)
			if err != nil {
				return accepted, err
			}
			g := pending[a.JobID]
			if g == nil {
				g = &group{tally: tally}
				pending[a.JobID] = g
				order = append(order, a.JobID)
			} else if err := g.tally.Merge(tally); err != nil {
				return accepted, err
			}
			g.chunks = append(g.chunks, a.ChunkID)
			buffered++
		case protocol.MsgNoWork:
			if buffered > 0 {
				if err := pc.Send(&protocol.Message{Type: protocol.MsgResultBatch, Batch: encode()}); err != nil {
					return accepted, err
				}
				ack, err := pc.Recv()
				if err != nil {
					return accepted, err
				}
				if ack.Type != protocol.MsgBatchAck || ack.BatchAck == nil {
					return accepted, errors.New("expected batch ack")
				}
				apply(ack.BatchAck.Acks)
				continue
			}
			if msg.NoWork.Done {
				return accepted, nil
			}
			time.Sleep(msg.NoWork.RetryIn)
		default:
			return accepted, errors.New("unexpected message")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	reg := New(Options{})
	if _, err := reg.Submit(JobSpec{}); err == nil {
		t.Fatal("job without spec accepted")
	}
	if _, err := reg.Submit(JobSpec{Spec: slabSpec(5)}); err == nil {
		t.Fatal("zero-photon job accepted")
	}
}

func TestChunkPartition(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1050, ChunkPhotons: 100})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	if j.NumChunks() != 11 {
		t.Fatalf("chunks = %d, want 11", j.NumChunks())
	}
	// Total photons across chunks must be conserved (the tail chunk is
	// short).
	var total int64
	for _, p := range j.photons {
		total += p
	}
	if total != 1050 {
		t.Fatalf("chunk photons sum to %d, want 1050", total)
	}
	if j.photons[10] != 50 {
		t.Fatalf("tail chunk has %d photons, want 50", j.photons[10])
	}
}

func TestKeyOfDistinguishesJobs(t *testing.T) {
	base, _ := KeyOf(slabSpec(5), 1000, 100, 1)
	cases := map[string]Key{}
	k, _ := KeyOf(slabSpec(6), 1000, 100, 1)
	cases["spec"] = k
	k, _ = KeyOf(slabSpec(5), 2000, 100, 1)
	cases["photons"] = k
	k, _ = KeyOf(slabSpec(5), 1000, 200, 1)
	cases["chunking"] = k
	k, _ = KeyOf(slabSpec(5), 1000, 100, 2)
	cases["seed"] = k
	for dim, key := range cases {
		if key == base {
			t.Fatalf("changing %s did not change the cache key", dim)
		}
	}
	again, _ := KeyOf(slabSpec(5), 1000, 100, 1)
	if again != base {
		t.Fatal("identical submission hashed differently")
	}
}

func TestCoalesceIdenticalActiveSubmission(t *testing.T) {
	reg := New(Options{})
	first, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	second, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Coalesced || second.Job != first.Job {
		t.Fatal("identical active submission not coalesced")
	}
	if s := reg.Stats(); s.JobsQueued != 1 {
		t.Fatalf("coalesced submission created a second job: %+v", s)
	}
	// An urgent duplicate must not be demoted to the incumbent's
	// scheduling parameters: the live job absorbs the stronger ones.
	urgent, err := reg.Submit(JobSpec{
		Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 3,
		Priority: 9, Weight: 4, Label: "urgent",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !urgent.Coalesced {
		t.Fatal("identical submission with different scheduling params not coalesced")
	}
	st := first.Job.Status()
	if st.Priority != 9 || st.Weight != 4 || st.Label != "urgent" {
		t.Fatalf("coalesce dropped scheduling params: %+v", st)
	}
}

func TestCancel(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.Cancel(out.Job.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := out.Job.Wait(time.Second); !errors.Is(err, ErrCanceled) {
		t.Fatalf("wait on canceled job: %v", err)
	}
	if st := out.Job.Status(); st.State != "canceled" {
		t.Fatalf("state %q after cancel", st.State)
	}
	if err := reg.Cancel(out.Job.ID()); err == nil {
		t.Fatal("double cancel accepted")
	}
	// A canceled job no longer blocks an identical resubmission.
	again, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 1000, ChunkPhotons: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if again.Coalesced || again.Cached {
		t.Fatal("resubmission after cancel was deduplicated")
	}
}

// TestConcurrentJobsSharedFleet is the concurrent-job end-to-end check:
// two jobs with different specs submitted to one registry over a 3-worker
// in-memory fleet finish with tallies matching their single-job runs, and
// a duplicate submission is served from the cache without launching
// photons. The fleet speaks the full v3 result plane — job A fans each
// chunk across 2 sub-streams and both jobs' results ride pre-reduced
// batches (flush threshold 3) with timeout reassignment armed — and must
// still reproduce the standalone fan-matched decompositions exactly.
func TestConcurrentJobsSharedFleet(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	for i := 0; i < 3; i++ {
		server, client := net.Pipe()
		go reg.HandleConn(server)
		name := string(rune('a' + i))
		go func() {
			// Long-lived registries never say Done; the worker exits when
			// the test closes its pipe.
			_, _ = batchClient(client, name, 3)
		}()
		t.Cleanup(func() { client.Close() })
	}

	specA, specB := slabSpec(5), slabSpec(8)
	const totalA, chunkA, seedA, fanA = 3000, 250, 11, 2
	const totalB, chunkB, seedB = 2000, 200, 23

	var outA, outB *SubmitOutcome
	var err error
	if outA, err = reg.Submit(JobSpec{
		Spec: specA, TotalPhotons: totalA, ChunkPhotons: chunkA, Seed: seedA,
		Fan: fanA, ChunkTimeout: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if outB, err = reg.Submit(JobSpec{Spec: specB, TotalPhotons: totalB, ChunkPhotons: chunkB, Seed: seedB}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var resA, resB *Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); resA, errA = outA.Job.Wait(60 * time.Second) }()
	go func() { defer wg.Done(); resB, errB = outB.Job.Wait(60 * time.Second) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}

	wantA := localTallyFan(t, specA, totalA, chunkA, seedA, fanA)
	wantB := localTally(t, specB, totalB, chunkB, seedB)
	if resA.Tally.Launched != totalA || resB.Tally.Launched != totalB {
		t.Fatalf("launched %d/%d, want %d/%d",
			resA.Tally.Launched, resB.Tally.Launched, totalA, totalB)
	}
	if math.Abs(resA.Tally.AbsorbedWeight-wantA.AbsorbedWeight) > 1e-9 {
		t.Fatalf("job A absorbed %g != standalone %g", resA.Tally.AbsorbedWeight, wantA.AbsorbedWeight)
	}
	if math.Abs(resB.Tally.AbsorbedWeight-wantB.AbsorbedWeight) > 1e-9 {
		t.Fatalf("job B absorbed %g != standalone %g", resB.Tally.AbsorbedWeight, wantB.AbsorbedWeight)
	}
	if resA.Tally.DetectedCount != wantA.DetectedCount || resB.Tally.DetectedCount != wantB.DetectedCount {
		t.Fatal("multi-job detection counts differ from standalone runs")
	}

	// Duplicate submission (same fan → same content key): served from
	// cache, zero new chunks assigned.
	assignedBefore := reg.Stats().ChunksAssigned
	dup, err := reg.Submit(JobSpec{Spec: specA, TotalPhotons: totalA, ChunkPhotons: chunkA, Seed: seedA, Fan: fanA})
	if err != nil {
		t.Fatal(err)
	}
	// A different fan is a different decomposition, hence a different key;
	// fan ≤ 1 keeps the legacy key format.
	kFan, _ := KeyOfFan(specA, totalA, chunkA, seedA, fanA)
	kPlain, _ := KeyOf(specA, totalA, chunkA, seedA)
	kOne, _ := KeyOfFan(specA, totalA, chunkA, seedA, 1)
	if kFan == kPlain {
		t.Fatal("fan width did not change the content key")
	}
	if kOne != kPlain {
		t.Fatal("fan 1 changed the legacy content key")
	}
	if !dup.Cached {
		t.Fatal("duplicate submission not served from cache")
	}
	dupRes, err := dup.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !dupRes.CacheHit {
		t.Fatal("cached result not flagged")
	}
	if math.Abs(dupRes.Tally.AbsorbedWeight-resA.Tally.AbsorbedWeight) > 0 {
		t.Fatal("cached tally differs from the original result")
	}
	if after := reg.Stats().ChunksAssigned; after != assignedBefore {
		t.Fatalf("cache hit assigned %d chunks", after-assignedBefore)
	}
}

// TestFairSharePolicyInterleavesJobs drives the dispatcher directly (no
// workers) and checks weighted fair-share assignment ratios.
func TestFairSharePolicyInterleavesJobs(t *testing.T) {
	reg := New(Options{Policy: FairShare()})
	heavy, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 9000, ChunkPhotons: 100, Seed: 1, Weight: 3})
	if err != nil {
		t.Fatal(err)
	}
	light, err := reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 9000, ChunkPhotons: 100, Seed: 2, Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	counts := map[uint64]int{}
	for i := 0; i < 40; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Type != protocol.MsgTaskAssign {
			t.Fatalf("assignment %d: got %v", i, msg.Type)
		}
		counts[msg.Assign.JobID]++
		completeAssign(reg, sess, msg.Assign)
	}
	h, l := counts[heavy.Job.ID()], counts[light.Job.ID()]
	if h+l != 40 {
		t.Fatalf("assignments went to unknown jobs: %v", counts)
	}
	ratio := float64(h) / float64(l)
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("3:1 weights assigned at ratio %.2f (%d vs %d)", ratio, h, l)
	}
}

// completeAssign marks a probe session's assigned chunk as reduced without
// running physics, so dispatcher tests can drain queues synchronously.
func completeAssign(reg *Registry, sess *session, a *protocol.TaskAssign) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	j := reg.jobs[a.JobID]
	if !j.completed[a.ChunkID] {
		j.completed[a.ChunkID] = true
		j.nCompleted++
	}
	delete(j.outstanding, a.ChunkID)
	delete(sess.assigned, chunkRef{a.JobID, a.ChunkID})
}

// TestPriorityPolicyDrainsHighFirst checks strict priority ordering.
func TestPriorityPolicyDrainsHighFirst(t *testing.T) {
	reg := New(Options{Policy: Priority()})
	lo, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 500, ChunkPhotons: 100, Seed: 1, Priority: 0})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 500, ChunkPhotons: 100, Seed: 2, Priority: 5})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()
	for i := 0; i < 5; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Assign.JobID != hi.Job.ID() {
			t.Fatalf("assignment %d went to low-priority job", i)
		}
		completeAssign(reg, sess, msg.Assign)
	}
	if msg := reg.nextAssignment(sess, nil); msg.Assign.JobID != lo.Job.ID() {
		t.Fatal("low-priority job not served after high drained")
	}
}

// TestFIFODrainsInOrder checks the default policy serves submission order.
func TestFIFODrainsInOrder(t *testing.T) {
	reg := New(Options{})
	first, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = reg.Submit(JobSpec{Spec: slabSpec(8), TotalPhotons: 300, ChunkPhotons: 100, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()
	for i := 0; i < 3; i++ {
		msg := reg.nextAssignment(sess, nil)
		if msg.Assign.JobID != first.Job.ID() {
			t.Fatalf("assignment %d left the FIFO head", i)
		}
		completeAssign(reg, sess, msg.Assign)
	}
}

// TestAbandonedAssignmentRequeued guards against stranded chunks: with
// ChunkTimeout=0 a chunk abandoned by a new task-request (or by an
// unmergeable result) must return to the pending queue, or the job could
// never complete.
func TestAbandonedAssignmentRequeued(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	sess := &session{id: 999, name: "probe", knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	first := reg.nextAssignment(sess, nil).Assign
	// Request again without delivering a result: the first chunk must be
	// requeued, not left ownerless in outstanding.
	second := reg.nextAssignment(sess, nil).Assign
	reg.mu.Lock()
	pending, outstanding := len(j.pending), len(j.outstanding)
	reassigned := j.reassigned
	reg.mu.Unlock()
	if pending+outstanding != 2 || outstanding != 1 {
		t.Fatalf("chunk stranded: pending %d, outstanding %d after abandon", pending, outstanding)
	}
	if reassigned != 1 {
		t.Fatalf("reassigned = %d, want 1", reassigned)
	}
	_ = first

	// An unmergeable tally must also requeue the chunk (and count as a
	// rejection), so a malformed result cannot wedge the job.
	ack := reg.handleResult(sess, &protocol.TaskResult{
		JobID: j.ID(), ChunkID: second.ChunkID, Tally: &mc.Tally{},
	})
	if !ack.Rejected {
		t.Fatal("unmergeable tally not rejected")
	}
	reg.mu.Lock()
	pending, outstanding = len(j.pending), len(j.outstanding)
	reg.mu.Unlock()
	if pending != 2 || outstanding != 0 {
		t.Fatalf("chunk stranded after bad merge: pending %d, outstanding %d", pending, outstanding)
	}
}

// TestLateResultAfterReclaimDoesNotRecompute drives the timeout-reclaim
// race by hand: chunks time out and are requeued, then the original
// workers' results land late. The late merges must purge the requeued
// copies from pending/outstanding so the fleet never recomputes an
// already-reduced chunk, and the third worker's redundant result must be
// acked as a benign duplicate.
func TestLateResultAfterReclaimDoesNotRecompute(t *testing.T) {
	spec := slabSpec(5)
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{
		Spec: spec, TotalPhotons: 200, ChunkPhotons: 100, Seed: 14,
		ChunkTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	chunkTally := func(a *protocol.TaskAssign) *protocol.TaskResult {
		tt, err := mc.RunStream(cfg, a.Photons, 14, a.Stream, j.NumChunks())
		if err != nil {
			t.Fatal(err)
		}
		return &protocol.TaskResult{JobID: a.JobID, ChunkID: a.ChunkID, Tally: tt}
	}
	newSess := func(id uint64) *session {
		s := &session{id: id, name: fmt.Sprintf("s%d", id), knownJobs: map[uint64]bool{}}
		reg.mu.Lock()
		reg.sessions[s.id] = s
		reg.mu.Unlock()
		return s
	}
	s1, s2, s3 := newSess(101), newSess(102), newSess(103)

	a1 := reg.nextAssignment(s1, nil).Assign
	a2 := reg.nextAssignment(s2, nil).Assign
	time.Sleep(60 * time.Millisecond) // both chunks overdue
	a3 := reg.nextAssignment(s3, nil).Assign
	if a3 == nil {
		t.Fatal("no chunk reclaimed after timeout")
	}

	// The original workers deliver late; both must still be reduced (they
	// computed the right streams) and must clean up the requeued copies.
	if ack := reg.handleResult(s1, chunkTally(a1)); ack.Rejected || ack.Duplicate {
		t.Fatalf("late result 1 not reduced: %+v", ack)
	}
	reg.mu.Lock()
	for _, p := range j.pending {
		if p == a1.ChunkID {
			t.Fatal("merged chunk still in pending (would be recomputed)")
		}
	}
	reg.mu.Unlock()
	if ack := reg.handleResult(s2, chunkTally(a2)); ack.Rejected || ack.Duplicate {
		t.Fatalf("late result 2 not reduced: %+v", ack)
	}
	if ack := reg.handleResult(s3, chunkTally(a3)); !ack.Duplicate {
		t.Fatalf("redundant reassigned result not a duplicate: %+v", ack)
	}

	res, err := j.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 200 {
		t.Fatalf("launched %d, want 200 (chunk recomputed or lost)", res.Tally.Launched)
	}
	if res.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", res.Duplicates)
	}
	reg.mu.Lock()
	pending, outstanding := len(j.pending), len(j.outstanding)
	reg.mu.Unlock()
	if pending != 0 || outstanding != 0 {
		t.Fatalf("queue not clean after completion: pending %d, outstanding %d", pending, outstanding)
	}
}

// TestPartiallyStaleBatchRequeued drives the batched reduction through the
// timeout-reassignment race: a batch covering one chunk another session
// already reduced must not merge its combined tally (it would double-count
// the duplicate), and the honestly-owned chunks must be requeued so an
// honest recompute — bit-identical, chunk tallies being pure functions of
// the stream — completes the job exactly once.
func TestPartiallyStaleBatchRequeued(t *testing.T) {
	spec := slabSpec(5)
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{
		Spec: spec, TotalPhotons: 300, ChunkPhotons: 100, Seed: 19,
		ChunkTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	chunkTally := func(a *protocol.TaskAssign) *mc.Tally {
		tt, err := mc.RunStream(cfg, a.Photons, 19, a.Stream, j.NumChunks())
		if err != nil {
			t.Fatal(err)
		}
		return tt
	}
	newSess := func(id uint64) *session {
		s := &session{id: id, name: fmt.Sprintf("s%d", id),
			assigned: map[chunkRef]*assignment{}, knownJobs: map[uint64]bool{}}
		reg.mu.Lock()
		reg.sessions[s.id] = s
		reg.mu.Unlock()
		return s
	}
	s1, s2 := newSess(201), newSess(202)

	// s1 takes two chunks (advertising the first as held), both time out,
	// and s2 recomputes the first.
	a1 := reg.nextAssignment(s1, nil).Assign
	hold1 := &protocol.TaskRequest{Holding: []protocol.ChunkRef{{JobID: a1.JobID, ChunkID: a1.ChunkID}}}
	a2 := reg.nextAssignment(s1, hold1).Assign
	time.Sleep(60 * time.Millisecond)
	a3 := reg.nextAssignment(s2, nil).Assign
	if a3.ChunkID != a2.ChunkID {
		// LIFO requeue hands back the most recently reclaimed chunk; the
		// test only needs *some* overlap, so track which one s2 got.
		t.Logf("s2 recomputes chunk %d", a3.ChunkID)
	}
	if ack := reg.handleResult(s2, &protocol.TaskResult{
		JobID: a3.JobID, ChunkID: a3.ChunkID, Tally: chunkTally(a3)}); ack.Rejected || ack.Duplicate {
		t.Fatalf("s2 recompute not reduced: %+v", ack)
	}

	// s1 now flushes a pre-reduced batch covering both chunks — one of
	// which s2 already completed. Nothing from this blob may merge.
	combined := mc.NewTally(cfg)
	if err := combined.Merge(chunkTally(a1)); err != nil {
		t.Fatal(err)
	}
	if err := combined.Merge(chunkTally(a2)); err != nil {
		t.Fatal(err)
	}
	launchedBefore := func() int64 {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return j.tally.Launched
	}()
	acks := reg.reduceBatch(s1, &protocol.ResultBatch{Groups: []protocol.BatchGroup{{
		JobID:     a1.JobID,
		Chunks:    []int{a1.ChunkID, a2.ChunkID},
		TallyData: mc.AppendTally(nil, combined),
	}}}, &mc.Tally{})
	if len(acks) != 2 {
		t.Fatalf("got %d acks for a 2-chunk batch", len(acks))
	}
	var dups, rejects int
	for _, a := range acks {
		switch {
		case a.Duplicate:
			dups++
		case a.Rejected:
			rejects++
		}
	}
	if dups != 1 || rejects != 1 {
		t.Fatalf("acks = %+v, want one duplicate and one rejected-requeued", acks)
	}
	if got := func() int64 {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return j.tally.Launched
	}(); got != launchedBefore {
		t.Fatalf("partially stale batch leaked %d photons into the tally", got-launchedBefore)
	}

	// The fresh chunk is back in pending; an honest recompute finishes the
	// job with exactly-once totals.
	for {
		m := reg.nextAssignment(s2, nil)
		if m.Type != protocol.MsgTaskAssign {
			break
		}
		a := m.Assign
		if ack := reg.handleResult(s2, &protocol.TaskResult{
			JobID: a.JobID, ChunkID: a.ChunkID, Tally: chunkTally(a)}); ack.Rejected {
			t.Fatalf("honest recompute rejected: %+v", ack)
		}
	}
	res, err := j.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tally.Launched != 300 {
		t.Fatalf("launched %d, want 300 (double count or lost chunk)", res.Tally.Launched)
	}
	want := localTally(t, spec, 300, 100, 19)
	if math.Abs(res.Tally.AbsorbedWeight-want.AbsorbedWeight) > 1e-9 {
		t.Fatalf("absorbed %g != standalone %g", res.Tally.AbsorbedWeight, want.AbsorbedWeight)
	}
}

// TestGrantCappedByChunkTimeout keeps multi-chunk grants inside the
// timeout envelope: a worker computes its grant serially, so handing it
// more chunks than fit in ChunkTimeout would guarantee spurious reclaims
// and batch-wide recomputes. With no compute estimate the dispatcher
// probes one chunk; once results carry Elapsed it grants up to a quarter
// of the timeout's worth.
func TestGrantCappedByChunkTimeout(t *testing.T) {
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{
		Spec: slabSpec(5), TotalPhotons: 3200, ChunkPhotons: 100, Seed: 31,
		ChunkTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	sess := &session{id: 401, name: "probe",
		assigned: map[chunkRef]*assignment{}, knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()

	// No estimate yet: probe a single chunk even though 8 were requested.
	a := reg.nextAssignment(sess, &protocol.TaskRequest{Want: 8}).Assign
	if len(a.Extra) != 0 {
		t.Fatalf("untimed job granted %d chunks before any estimate", 1+len(a.Extra))
	}
	completeAssign(reg, sess, a)

	// 100 ms per chunk against a 2 s timeout: at most 2s/(4×100ms) = 5.
	reg.mu.Lock()
	j.chunkSecs = 0.1
	reg.mu.Unlock()
	a = reg.nextAssignment(sess, &protocol.TaskRequest{Want: 8}).Assign
	if got := 1 + len(a.Extra); got != 5 {
		t.Fatalf("granted %d chunks, want 5 (2s timeout / 4×100ms chunks)", got)
	}

	// A job without a timeout grants the full request.
	reg2 := New(Options{})
	out2, err := reg2.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 3200, ChunkPhotons: 100, Seed: 32})
	if err != nil {
		t.Fatal(err)
	}
	sess2 := &session{id: 402, name: "probe2",
		assigned: map[chunkRef]*assignment{}, knownJobs: map[uint64]bool{}}
	reg2.mu.Lock()
	reg2.sessions[sess2.id] = sess2
	reg2.mu.Unlock()
	a = reg2.nextAssignment(sess2, &protocol.TaskRequest{Want: 8}).Assign
	if got := 1 + len(a.Extra); got != 8 {
		t.Fatalf("untimed job granted %d chunks, want 8", got)
	}
	_ = out2
}

// TestBatchGroupRepeatedChunkRejected guards the claim protocol against a
// hostile group listing the same chunk twice, which would double-count
// its completion and finish the job with missing chunks.
func TestBatchGroupRepeatedChunkRejected(t *testing.T) {
	spec := slabSpec(5)
	reg := New(Options{})
	out, err := reg.Submit(JobSpec{Spec: spec, TotalPhotons: 200, ChunkPhotons: 100, Seed: 27})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{id: 301, name: "hostile",
		assigned: map[chunkRef]*assignment{}, knownJobs: map[uint64]bool{}}
	reg.mu.Lock()
	reg.sessions[sess.id] = sess
	reg.mu.Unlock()
	a := reg.nextAssignment(sess, nil).Assign

	tt, err := mc.RunStream(cfg, a.Photons, 27, a.Stream, j.NumChunks())
	if err != nil {
		t.Fatal(err)
	}
	acks := reg.reduceBatch(sess, &protocol.ResultBatch{Groups: []protocol.BatchGroup{{
		JobID:     a.JobID,
		Chunks:    []int{a.ChunkID, a.ChunkID},
		TallyData: mc.AppendTally(nil, tt),
	}}}, &mc.Tally{})
	for i, ack := range acks {
		if !ack.Rejected {
			t.Fatalf("ack %d for a repeated-chunk group not rejected: %+v", i, ack)
		}
	}
	reg.mu.Lock()
	completed, launched := j.nCompleted, j.tally.Launched
	reg.mu.Unlock()
	if completed != 0 || launched != 0 {
		t.Fatalf("repeated-chunk group reduced anyway: %d completed, %d launched", completed, launched)
	}
}

// TestV2WorkerRejectedGracefully pins the version gate: a protocol v2
// worker connecting to the v3 service gets a clear error message and a
// closed session — no hang, no silent protocol confusion.
func TestV2WorkerRejectedGracefully(t *testing.T) {
	reg := New(Options{})
	server, client := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- reg.HandleConn(server) }()

	pc := protocol.NewConn(client)
	defer pc.Close()
	if err := pc.Send(&protocol.Message{Type: protocol.MsgHello,
		Hello: &protocol.Hello{Version: 2, Name: "legacy"}}); err != nil {
		t.Fatal(err)
	}
	reply, err := pc.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != protocol.MsgError || reply.Error == nil {
		t.Fatalf("v2 hello answered with %v, want a protocol error", reply.Type)
	}
	if !strings.Contains(reply.Error.Msg, "version mismatch") {
		t.Fatalf("unclear rejection message: %q", reply.Error.Msg)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server treated the v2 worker as accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on a v2 worker")
	}
	if _, err := pc.Recv(); err == nil {
		t.Fatal("session left open after version rejection")
	}
}

// TestCachePutIsolatedFromCallerMutation guards the cache against callers
// merging into the Result.Tally they were handed back.
func TestCachePutIsolatedFromCallerMutation(t *testing.T) {
	reg := New(Options{DrainOnEmpty: true})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go reg.HandleConn(server)
	if _, err := workClient(client, "w"); err != nil {
		t.Fatal(err)
	}
	res, err := out.Job.Wait(time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	launched := res.Tally.Launched
	// Caller mutates its copy (self-merge is rejected by mc.Tally, so fold
	// in a clone to double every accumulator).
	if err := res.Tally.Merge(cloneTally(res.Tally)); err != nil {
		t.Fatal(err)
	}
	dup, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 200, ChunkPhotons: 100, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Cached {
		t.Fatal("resubmission not cached")
	}
	cached, err := dup.Job.Wait(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Tally.Launched != launched {
		t.Fatalf("cache aliased the caller's tally: launched %d, want %d",
			cached.Tally.Launched, launched)
	}
}

// TestResultCacheEviction checks the FIFO bound holds.
func TestResultCacheEviction(t *testing.T) {
	c := newCache(2)
	t1, t2, t3 := &mc.Tally{Launched: 1}, &mc.Tally{Launched: 2}, &mc.Tally{Launched: 3}
	k1, _ := KeyOf(slabSpec(5), 100, 100, 1)
	k2, _ := KeyOf(slabSpec(5), 100, 100, 2)
	k3, _ := KeyOf(slabSpec(5), 100, 100, 3)
	c.put(k1, t1)
	c.put(k2, t2)
	c.put(k3, t3)
	if c.get(k1) != nil {
		t.Fatal("oldest entry not evicted")
	}
	if got := c.get(k3); got == nil || got.Launched != 3 {
		t.Fatal("newest entry lost")
	}
	if got := c.get(k2); got == t2 {
		t.Fatal("cache returned its internal tally instead of a copy")
	}
}

// TestRetainDoneEviction checks finished jobs are bounded.
func TestRetainDoneEviction(t *testing.T) {
	reg := New(Options{RetainDone: 2, CacheSize: -1})
	var ids []uint64
	for seed := uint64(1); seed <= 4; seed++ {
		out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 100, ChunkPhotons: 100, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, out.Job.ID())
		if err := reg.Cancel(out.Job.ID()); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Get(ids[0]) != nil || reg.Get(ids[1]) != nil {
		t.Fatal("oldest finished jobs not evicted")
	}
	if reg.Get(ids[2]) == nil || reg.Get(ids[3]) == nil {
		t.Fatal("recent finished jobs evicted")
	}
}

// TestDrainOnEmpty checks one-shot registries tell workers Done.
func TestDrainOnEmpty(t *testing.T) {
	reg := New(Options{DrainOnEmpty: true, CacheSize: -1})
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 300, ChunkPhotons: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	go reg.HandleConn(server)
	chunks, err := workClient(client, "solo")
	if err != nil {
		t.Fatal(err)
	}
	if chunks != 3 {
		t.Fatalf("worker computed %d chunks, want 3", chunks)
	}
	if _, err := out.Job.Wait(time.Second); err != nil {
		t.Fatal(err)
	}
	select {
	case <-reg.Drained():
	default:
		t.Fatal("registry not drained after last job")
	}
}
