package service

import (
	"fmt"

	"repro/internal/obs"
)

// svcMetrics is the registry's pre-resolved instrument set. Every counter
// a hot path touches is resolved once here, so steady-state accounting is
// a single atomic add — no map lookups, no label formatting, no locks
// beyond the ones dispatch already holds. Metrics carry no per-job,
// per-chunk or per-worker labels (unbounded cardinality); that detail
// lives in each job's bounded event trace instead.
type svcMetrics struct {
	jobsSubmitted *obs.Counter
	jobsResumed   *obs.Counter
	jobsReplayed  *obs.Counter
	jobsCoalesced *obs.Counter
	jobsShed      *obs.CounterVec // by shed reason: cap, tenant_rate, tenant_quota

	// Per-tenant accounting families; children are pre-resolved into each
	// tenantStats the first time a tenant is seen.
	tenantSubmitted *obs.CounterVec
	tenantShed      *obs.CounterVec
	tenantPhotons   *obs.CounterVec

	cacheLookups    *obs.Counter
	cacheHitExact   *obs.Counter
	cacheHitPhysics *obs.Counter
	cacheMisses     *obs.Counter

	chunksGranted    *obs.Counter
	chunksCompleted  *obs.Counter
	chunksReassigned *obs.Counter

	rejectedStale  *obs.Counter // results matching no live assignment
	rejectedBatch  *obs.Counter // undecodable / partially stale / unmergeable groups
	rejectedBenign *obs.Counter // stragglers after an early finalize
	duplicates     *obs.Counter

	batchesReduced *obs.Counter
	photonsReduced *obs.Counter
	reduceSeconds  *obs.Histogram

	// Per-chunk span segment distributions — the aggregate view of the
	// per-job span rings, immune to ring eviction.
	spanQueue   *obs.Histogram
	spanWire    *obs.Histogram
	spanCompute *obs.Histogram
	spanReduce  *obs.Histogram

	sessionsTotal *obs.Counter
	reconnects    *obs.Counter
}

// newServiceMetrics registers the service-plane instruments on reg and
// installs the scrape-time gauges that read registry state. The gauge
// callbacks take r.mu, so a scrape must never run while the caller holds
// it (the HTTP handler never does).
func newServiceMetrics(reg *obs.Registry, r *Registry) *svcMetrics {
	m := &svcMetrics{
		jobsSubmitted: reg.Counter("service_jobs_submitted_total",
			"Jobs accepted as fresh work (cache hits, coalesced submissions and checkpoint resumes excluded)."),
		jobsResumed: reg.Counter("service_jobs_resumed_total",
			"Jobs restored from checkpoints (admission-exempt submissions)."),
		jobsReplayed: reg.Counter("service_jobs_replayed_total",
			"Jobs restored by write-ahead journal replay after a restart."),
		jobsCoalesced: reg.Counter("service_jobs_coalesced_total",
			"Submissions attached to an identical already-active job."),
		jobsShed: reg.CounterVec("service_jobs_shed_total",
			"Submissions refused by admission, by reason.", "reason"),
		tenantSubmitted: reg.CounterVec("service_tenant_jobs_submitted_total",
			"Fresh jobs accepted, by tenant.", "tenant"),
		tenantShed: reg.CounterVec("service_tenant_jobs_shed_total",
			"Submissions refused by admission, by tenant.", "tenant"),
		tenantPhotons: reg.CounterVec("service_tenant_photons_total",
			"Photons reduced into results, by tenant.", "tenant"),
		cacheLookups: reg.Counter("service_cache_lookups_total",
			"Result-cache probes (one per non-coalesced submission)."),
		cacheMisses: reg.Counter("service_cache_misses_total",
			"Result-cache probes that found nothing."),
		chunksGranted: reg.Counter("service_chunks_granted_total",
			"Chunks handed to workers, including re-grants after reassignment."),
		chunksCompleted: reg.Counter("service_chunks_completed_total",
			"Chunks whose tallies reduced into a job exactly once."),
		chunksReassigned: reg.Counter("service_chunks_reassigned_total",
			"Chunks requeued after a timeout, disconnect or abandoned assignment."),
		duplicates: reg.Counter("service_duplicate_results_total",
			"Results acknowledged as duplicates of an already-reduced chunk."),
		batchesReduced: reg.Counter("service_batches_reduced_total",
			"Worker result batches processed by the reducer."),
		photonsReduced: reg.Counter("service_photons_reduced_total",
			"Photons represented by reduced tallies."),
		reduceSeconds: reg.Histogram("service_reduce_seconds",
			"Off-lock tally merge duration per reduced group.", obs.DefBuckets),
		spanQueue: reg.Histogram("service_span_queue_seconds",
			"Span segment: chunk issued or requeued until granted to a worker.", obs.DefBuckets),
		spanWire: reg.Histogram("service_span_wire_seconds",
			"Span segment: granted until result arrival, minus compute (wire, encode, worker hold buffer).", obs.DefBuckets),
		spanCompute: reg.Histogram("service_span_compute_seconds",
			"Span segment: per-chunk compute (worker-reported, or the chunk's share of batch elapsed).", obs.DefBuckets),
		spanReduce: reg.Histogram("service_span_reduce_seconds",
			"Span segment: the chunk's share of its batch's off-lock tally merge.", obs.DefBuckets),
		sessionsTotal: reg.Counter("fleet_sessions_total",
			"Worker sessions ever accepted."),
		reconnects: reg.Counter("fleet_reconnects_total",
			"Sessions whose worker name had connected before (reconnections)."),
	}
	hits := reg.CounterVec("service_cache_hits_total",
		"Result-cache hits by index probed.", "index")
	m.cacheHitExact = hits.With("exact")
	m.cacheHitPhysics = hits.With("physics")
	rej := reg.CounterVec("service_results_rejected_total",
		"Results the reducer refused, by reason.", "reason")
	m.rejectedStale = rej.With("stale")
	m.rejectedBatch = rej.With("batch")
	m.rejectedBenign = rej.With("benign")

	reg.GaugeVecFunc("service_jobs", "Retained jobs by lifecycle state.", "state",
		func() map[string]float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			out := map[string]float64{
				StateQueued.String(): 0, StateRunning.String(): 0,
				StateDone.String(): 0, StateCanceled.String(): 0,
			}
			for _, j := range r.order {
				out[j.state.String()]++
			}
			return out
		})
	reg.GaugeFunc("service_pending_chunks",
		"Chunks of live jobs awaiting assignment.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, j := range r.active {
				n += len(j.pending)
			}
			return float64(n)
		})
	reg.GaugeFunc("service_outstanding_chunks",
		"Chunks of live jobs out on workers.", func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			n := 0
			for _, j := range r.active {
				n += len(j.outstanding)
			}
			return float64(n)
		})
	reg.GaugeFunc("fleet_workers", "Currently connected worker sessions.",
		func() float64 {
			r.mu.Lock()
			defer r.mu.Unlock()
			return float64(len(r.sessions))
		})
	return m
}

// trace records one lifecycle event on a job's bounded ring (nil-safe:
// tracing disabled or the job predates the registry).
func (j *Job) trace(e obs.Event) {
	if e.Chunk == 0 && e.Kind != obs.EvChunkGranted && e.Kind != obs.EvChunkCompleted &&
		e.Kind != obs.EvChunkReassigned && e.Kind != obs.EvChunkRejected {
		e.Chunk = -1
	}
	j.events.Record(e)
}

// Events returns the job's retained lifecycle events in chronological
// order and the count of older events its bounded ring overwrote.
func (j *Job) Events() ([]obs.Event, uint64) { return j.events.Snapshot() }

// newTrace builds a job's event ring per the registry options: 0 means
// DefaultTraceEvents, negative disables tracing (a nil ring drops all
// records at the cost of one nil check).
func (r *Registry) newTrace() *obs.Trace {
	if r.opts.TraceEvents < 0 {
		return nil
	}
	return obs.NewTrace(r.opts.TraceEvents)
}

// Spans returns the job's retained per-chunk spans in completion order and
// the count of older spans its bounded ring overwrote.
func (j *Job) Spans() ([]obs.Span, uint64) { return j.spans.Snapshot() }

// newSpans builds a job's span ring per the registry options: 0 means
// DefaultSpanEvents, negative disables span recording.
func (r *Registry) newSpans() *obs.Spans {
	if r.opts.SpanEvents < 0 {
		return nil
	}
	return obs.NewSpans(r.opts.SpanEvents)
}

// ErrOverloaded is wrapped by every ShedError Submit returns when
// admission refuses new work (active-job cap or per-tenant token buckets);
// the HTTP layer maps it to 429 with the verdict's computed Retry-After.
var ErrOverloaded = fmt.Errorf("service: submission shed by admission control")
