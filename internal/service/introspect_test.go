package service

import (
	"net/http"
	"net/url"
	"testing"
	"time"

	"repro/internal/mc"
	"repro/internal/protocol"
)

// TestSpanJoinAndFleetProfile drives one session through the dispatch and
// reduction path by hand, with a known telemetry report and known
// per-chunk timings, and checks the joined artifacts deterministically:
// the span's compute segment is exactly the worker-reported duration (and
// exactly the batch share when the worker reported none), and GET /fleet
// carries the report verbatim next to the server-side profile.
func TestSpanJoinAndFleetProfile(t *testing.T) {
	reg, ts := obsServer(t, Options{})
	sess := reg.registerSession(&protocol.Hello{Name: "probe", Mflops: 120}, "10.9.8.7:1234")
	out, err := reg.Submit(JobSpec{Spec: slabSpec(5), TotalPhotons: 2, ChunkPhotons: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	j := out.Job

	rep := &protocol.WorkerReport{
		PhotonsPerSec: 5000, ChunkSecs: 0.25, EncodeSecs: 0.001,
		Holding: 1, Goroutines: 7, HeapBytes: 1 << 20, Version: "test-build",
	}
	var cfg *mc.Config
	var meta protocol.Job
	runChunk := func(req *protocol.TaskRequest, elapsed time.Duration, secs []float64) {
		t.Helper()
		msg := reg.nextAssignment(sess, req)
		if msg.Type != protocol.MsgTaskAssign {
			t.Fatalf("expected an assignment, got %v", msg.Type)
		}
		a := msg.Assign
		if a.Job != nil {
			meta = *a.Job
			var err error
			if cfg, err = a.Job.Spec.Build(); err != nil {
				t.Fatal(err)
			}
		}
		if cfg == nil {
			t.Fatal("assignment for a job whose spec was never sent")
		}
		tally, err := mc.RunStreamFan(cfg, a.Photons, meta.Seed, a.Stream, meta.Streams, meta.Fan)
		if err != nil {
			t.Fatal(err)
		}
		acks := reg.reduceGroup(sess, a.JobID, []int{a.ChunkID}, tally, elapsed, secs)
		if len(acks) != 1 || acks[0].Rejected {
			t.Fatalf("chunk not reduced cleanly: %+v", acks)
		}
	}

	// Chunk 1: worker-reported per-chunk timing wins over the batch share.
	runChunk(&protocol.TaskRequest{Report: rep}, 300*time.Millisecond, []float64{0.25})
	// Chunk 2: no timings — compute falls back to elapsed / len(chunks).
	// (The job spec is already known; KnownJobs keeps the assign lean.)
	runChunk(&protocol.TaskRequest{KnownJobs: []uint64{j.ID()}}, 100*time.Millisecond, nil)

	spans, dropped := j.Spans()
	if dropped != 0 || len(spans) != 2 {
		t.Fatalf("got %d spans, %d dropped", len(spans), dropped)
	}
	if spans[0].Compute != 250*time.Millisecond {
		t.Fatalf("span 1 compute %v, want the reported 250ms exactly", spans[0].Compute)
	}
	if spans[1].Compute != 100*time.Millisecond {
		t.Fatalf("span 2 compute %v, want the batch share 100ms exactly", spans[1].Compute)
	}
	for i, sp := range spans {
		if sp.Worker != "probe" || sp.Granted.IsZero() {
			t.Fatalf("span %d lost its attribution: %+v", i, sp)
		}
		if sp.Queue < 0 || sp.Wire < 0 || sp.Reduce <= 0 {
			t.Fatalf("span %d has impossible segments: %+v", i, sp)
		}
	}

	fleet := reg.Fleet()
	if len(fleet) != 1 {
		t.Fatalf("fleet has %d sessions, want 1", len(fleet))
	}
	w := fleet[0]
	if w.Name != "probe" || w.Remote != "10.9.8.7:1234" || w.Mflops != 120 {
		t.Fatalf("session identity wrong: %+v", w)
	}
	if w.ReportedPhotonsPerSec != 5000 || w.ChunkSeconds != 0.25 ||
		w.Goroutines != 7 || w.HeapBytes != 1<<20 || w.Version != "test-build" {
		t.Fatalf("worker report not folded into profile: %+v", w)
	}
	if w.ChunksCompleted != 2 {
		t.Fatalf("completed %d chunks, want 2", w.ChunksCompleted)
	}
	if w.InferredPhotonsPerSec <= 0 {
		t.Fatalf("no inferred throughput after two reductions: %+v", w)
	}
	if w.LastSeen.Before(w.Connected) {
		t.Fatalf("lastSeen precedes connect: %+v", w)
	}

	// The same profile over HTTP, and the spans with seconds-valued
	// segments.
	var fb fleetBody
	if code := getJSON(t, ts.URL+"/fleet", &fb); code != http.StatusOK {
		t.Fatalf("GET /fleet: http %d", code)
	}
	if len(fb.Workers) != 1 || fb.Workers[0].ReportedPhotonsPerSec != 5000 {
		t.Fatalf("GET /fleet body: %+v", fb)
	}
	var sb spansBody
	if code := getJSON(t, ts.URL+"/jobs/"+out.Job.Status().IDHex+"/spans", &sb); code != http.StatusOK {
		t.Fatalf("GET spans: http %d", code)
	}
	if len(sb.Spans) != 2 || sb.Spans[0].ComputeSeconds != 0.25 {
		t.Fatalf("GET spans body: %+v", sb)
	}

	// The aggregate histograms observed every segment of both spans.
	m := scrape(t, ts.URL+"/metrics")
	for _, series := range []string{
		"service_span_queue_seconds_count", "service_span_wire_seconds_count",
		"service_span_compute_seconds_count", "service_span_reduce_seconds_count",
	} {
		if m[series] != 2 {
			t.Fatalf("%s = %g, want 2", series, m[series])
		}
	}
}

// TestSpanRingDisabled: SpanEvents < 0 must disable per-job span
// retention without touching the reduction path or the histograms.
func TestSpanRingDisabled(t *testing.T) {
	reg, ts := obsServer(t, Options{SpanEvents: -1})
	startWorkers(t, reg, 2)
	acc, code := postJob(t, ts, JobRequest{Spec: slabSpec(4), Photons: 800, ChunkPhotons: 200, Seed: 5})
	if code != http.StatusCreated {
		t.Fatalf("submit: http %d", code)
	}
	waitDone(t, ts, acc.ID)
	var sb spansBody
	if code := getJSON(t, ts.URL+"/jobs/"+acc.ID+"/spans", &sb); code != http.StatusOK {
		t.Fatalf("GET spans: http %d", code)
	}
	if len(sb.Spans) != 0 {
		t.Fatalf("span recording disabled but %d spans retained", len(sb.Spans))
	}
	if m := scrape(t, ts.URL+"/metrics"); m["service_span_compute_seconds_count"] != 4 {
		t.Fatalf("aggregate histograms must observe regardless: %g", m["service_span_compute_seconds_count"])
	}
}

// TestHTTPEventsFilters pins the server-side ?kind= and ?since= filtering
// of the lifecycle trace, including the 400s on malformed filters.
func TestHTTPEventsFilters(t *testing.T) {
	reg, ts := obsServer(t, Options{})
	startWorkers(t, reg, 2)
	const chunks = 4
	acc, code := postJob(t, ts, JobRequest{Spec: slabSpec(6), Photons: 1200, ChunkPhotons: 300, Seed: 9})
	if code != http.StatusCreated {
		t.Fatalf("submit: http %d", code)
	}
	waitDone(t, ts, acc.ID)
	base := ts.URL + "/jobs/" + acc.ID + "/events"

	var all eventsBody
	if code := getJSON(t, base, &all); code != http.StatusOK {
		t.Fatalf("GET events: http %d", code)
	}
	wantCompleted := 0
	for _, e := range all.Events {
		if e.Kind == "chunk-completed" {
			wantCompleted++
		}
	}
	if wantCompleted != chunks {
		t.Fatalf("trace has %d completions, want %d", wantCompleted, chunks)
	}

	var comp eventsBody
	if code := getJSON(t, base+"?kind=chunk-completed", &comp); code != http.StatusOK {
		t.Fatalf("GET events?kind=: http %d", code)
	}
	if len(comp.Events) != wantCompleted {
		t.Fatalf("kind filter kept %d events, want %d", len(comp.Events), wantCompleted)
	}
	for _, e := range comp.Events {
		if e.Kind != "chunk-completed" {
			t.Fatalf("kind filter leaked a %q event", e.Kind)
		}
	}

	// since= keeps strictly-newer events only; anchored at the first
	// completion, the filtered view must drop it and everything older.
	anchor := comp.Events[0].Time
	sinceURL := base + "?since=" + url.QueryEscape(anchor.Format(time.RFC3339Nano))
	var newer eventsBody
	if code := getJSON(t, sinceURL, &newer); code != http.StatusOK {
		t.Fatalf("GET events?since=: http %d", code)
	}
	if len(newer.Events) == 0 || len(newer.Events) >= len(all.Events) {
		t.Fatalf("since filter kept %d of %d events", len(newer.Events), len(all.Events))
	}
	for _, e := range newer.Events {
		if !e.Time.After(anchor) {
			t.Fatalf("since filter leaked an event at %v (anchor %v)", e.Time, anchor)
		}
	}

	// Both filters compose.
	var both eventsBody
	if code := getJSON(t, sinceURL+"&kind=finalized", &both); code != http.StatusOK {
		t.Fatalf("GET events with both filters: http %d", code)
	}
	if len(both.Events) != 1 || both.Events[0].Kind != "finalized" {
		t.Fatalf("composed filters returned %+v", both.Events)
	}

	for _, bad := range []string{"?kind=no-such-kind", "?since=yesterday"} {
		resp, err := http.Get(base + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET events%s: http %d, want 400", bad, resp.StatusCode)
		}
	}
}
