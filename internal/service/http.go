package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
)

// API serves the registry over HTTP/JSON:
//
//	POST   /jobs            submit a job (returns id; cached/coalesced dedup;
//	                        tenant from X-MC-Tenant header or body; 429 +
//	                        computed Retry-After when admission sheds it)
//	GET    /jobs            list retained jobs
//	GET    /jobs/{id}       job status with progress
//	GET    /jobs/{id}/result reduced tally once done (202 while running)
//	GET    /jobs/{id}/events bounded lifecycle event trace (?kind=, ?since=)
//	GET    /jobs/{id}/spans  bounded per-chunk timing spans
//	DELETE /jobs/{id}       cancel a queued/running job
//	GET    /stats           fleet and queue health (with per-tenant rollup)
//	GET    /fleet           live worker sessions with telemetry profiles
//	GET    /tenants         per-tenant accounting and live bucket levels
type API struct {
	reg *Registry
	// MaxBodyBytes caps the POST /jobs request body; an oversized body is
	// a 413. 0 means DefaultMaxBodyBytes, negative disables the cap.
	MaxBodyBytes int64
}

// DefaultMaxBodyBytes is the POST /jobs body cap when API.MaxBodyBytes is
// zero: far above any sane spec (voxel grids ship as dimensions + fills,
// not dense arrays), far below what could OOM the daemon.
const DefaultMaxBodyBytes = 32 << 20

// TenantHeader is the request header naming the submitting tenant; it wins
// over JobRequest.Tenant, and both empty means DefaultTenant.
const TenantHeader = "X-MC-Tenant"

// NewAPI wraps a registry in the HTTP layer.
func NewAPI(reg *Registry) *API { return &API{reg: reg} }

// JobRequest is the POST /jobs body. Spec is the full serialisable
// simulation description (layered model or voxel grid, source, detector).
// Exactly one of Photons (fixed budget) or Target (run until the named
// observable reaches the requested relative standard error) sizes the job.
type JobRequest struct {
	Spec         *mc.Spec `json:"spec"`
	Photons      int64    `json:"photons,omitempty"`
	ChunkPhotons int64    `json:"chunkPhotons,omitempty"`
	Seed         uint64   `json:"seed,omitempty"`
	// Fan is the per-chunk multi-core decomposition width (see
	// JobSpec.Fan); ≤ 1 keeps the legacy single-stream chunks.
	Fan int `json:"fan,omitempty"`
	// Target makes the job precision-targeted (see JobSpec.Target), e.g.
	// {"observable":"diffuse","relErr":0.01}. GET /jobs/{id} then reports
	// the live estimate ± CI and the photons spent.
	Target       *mc.Target    `json:"target,omitempty"`
	ChunkTimeout time.Duration `json:"chunkTimeoutNs,omitempty"`
	Priority     int           `json:"priority,omitempty"`
	Weight       float64       `json:"weight,omitempty"`
	Label        string        `json:"label,omitempty"`
	// Tenant attributes the job for admission control and fair scheduling;
	// the X-MC-Tenant request header overrides it, and both empty maps to
	// the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
}

// JobAccepted is the POST /jobs response.
type JobAccepted struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
}

// JobResultBody is the GET /jobs/{id}/result response.
type JobResultBody struct {
	ID       string     `json:"id"`
	CacheHit bool       `json:"cacheHit,omitempty"`
	Target   *mc.Target `json:"target,omitempty"`
	// TargetMet reports a precision-targeted job stopped because its
	// RSE goal was reached (false: the photon cap ended it first).
	TargetMet bool      `json:"targetMet,omitempty"`
	Elapsed   float64   `json:"elapsedSeconds"`
	Tally     *mc.Tally `json:"tally"`
}

type apiError struct {
	Error string `json:"error"`
	State string `json:"state,omitempty"`
}

// Handler returns the API's route multiplexer.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	a.Register(mux)
	return mux
}

// Register mounts the API's routes on an existing mux, so a daemon can
// multiplex the job API with its debug surface on one listener.
func (a *API) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", a.submit)
	mux.HandleFunc("GET /jobs", a.list)
	mux.HandleFunc("GET /jobs/{id}", a.status)
	mux.HandleFunc("GET /jobs/{id}/result", a.result)
	mux.HandleFunc("GET /jobs/{id}/events", a.events)
	mux.HandleFunc("GET /jobs/{id}/spans", a.spans)
	mux.HandleFunc("DELETE /jobs/{id}", a.cancel)
	mux.HandleFunc("GET /stats", a.stats)
	mux.HandleFunc("GET /fleet", a.fleet)
	mux.HandleFunc("GET /tenants", a.tenants)
}

func writeJSON(w http.ResponseWriter, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(body)
}

func (a *API) jobFromPath(w http.ResponseWriter, req *http.Request) *Job {
	id, err := strconv.ParseUint(req.PathValue("id"), 16, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad job id: %v", err)})
		return nil
	}
	j := a.reg.Get(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("no job %016x", id)})
		return nil
	}
	return j
}

func (a *API) submit(w http.ResponseWriter, req *http.Request) {
	// Bound the body before touching it: a multi-GB "spec" must die at the
	// reader, not after the decoder has buffered it into memory.
	limit := a.MaxBodyBytes
	if limit == 0 {
		limit = DefaultMaxBodyBytes
	}
	r := req.Body
	if limit > 0 {
		r = http.MaxBytesReader(w, req.Body, limit)
	}
	dec := json.NewDecoder(r)
	// A typoed field ("prioirty", "photon") must fail loudly, not submit a
	// silently-defaulted job.
	dec.DisallowUnknownFields()
	var body JobRequest
	if err := dec.Decode(&body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad request body: %v", err)})
		return
	}
	tenant := strings.TrimSpace(req.Header.Get(TenantHeader))
	if tenant == "" {
		tenant = strings.TrimSpace(body.Tenant)
	}
	if len(tenant) > MaxTenantNameLen {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("tenant name longer than %d bytes", MaxTenantNameLen)})
		return
	}
	out, err := a.reg.Submit(JobSpec{
		Spec:         body.Spec,
		TotalPhotons: body.Photons,
		ChunkPhotons: body.ChunkPhotons,
		Seed:         body.Seed,
		Fan:          body.Fan,
		Target:       body.Target,
		ChunkTimeout: body.ChunkTimeout,
		Priority:     body.Priority,
		Weight:       body.Weight,
		Label:        body.Label,
		Tenant:       tenant,
	})
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			// Load shedding, not a malformed job: tell the client when a
			// retry could succeed — the token bucket's refill time, or a
			// queue-depth-scaled wait for the active-job cap.
			secs := int64((shed.RetryAfter + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
			return
		}
		if IsInvalid(err) {
			// The submission itself is malformed: the client's fault, and
			// deterministic — a gateway must not retry it on another shard.
			writeJSON(w, http.StatusUnprocessableEntity, apiError{Error: err.Error()})
			return
		}
		// Everything else (a Spec.Build failure, internal wiring) is the
		// service's own problem: a 503 a routing tier may retry elsewhere.
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		return
	}
	st := out.Job.Status()
	code := http.StatusCreated
	if out.Cached || out.Coalesced {
		code = http.StatusOK
	}
	writeJSON(w, code, JobAccepted{
		ID:        st.IDHex,
		State:     st.State,
		Cached:    out.Cached,
		Coalesced: out.Coalesced,
	})
}

func (a *API) list(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.reg.List())
}

func (a *API) status(w http.ResponseWriter, req *http.Request) {
	j := a.jobFromPath(w, req)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (a *API) result(w http.ResponseWriter, req *http.Request) {
	j := a.jobFromPath(w, req)
	if j == nil {
		return
	}
	st := j.Status()
	switch st.State {
	case StateDone.String():
		res, err := j.Wait(time.Second) // already done; returns immediately
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, JobResultBody{
			ID:        st.IDHex,
			CacheHit:  res.CacheHit,
			Target:    res.Target,
			TargetMet: res.TargetMet,
			Elapsed:   res.Elapsed.Seconds(),
			Tally:     res.Tally,
		})
	case StateCanceled.String():
		writeJSON(w, http.StatusGone, apiError{Error: "job canceled", State: st.State})
	default:
		writeJSON(w, http.StatusAccepted, apiError{Error: "job not finished", State: st.State})
	}
}

// eventBody is the JSON view of one trace event; chunk is omitted for
// events that are not chunk-scoped.
type eventBody struct {
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Chunk  *int      `json:"chunk,omitempty"`
	Worker string    `json:"worker,omitempty"`
	Detail string    `json:"detail,omitempty"`
	Value  float64   `json:"value,omitempty"`
}

// eventsBody is the GET /jobs/{id}/events response. Dropped counts older
// events the bounded ring has overwritten.
type eventsBody struct {
	ID      string      `json:"id"`
	Dropped uint64      `json:"dropped,omitempty"`
	Events  []eventBody `json:"events"`
}

func (a *API) events(w http.ResponseWriter, req *http.Request) {
	j := a.jobFromPath(w, req)
	if j == nil {
		return
	}
	// Server-side filters, so a client after one kind (or only what's new
	// since its last poll) doesn't ship the whole ring every time.
	q := req.URL.Query()
	var wantKind obs.EventKind
	if s := q.Get("kind"); s != "" {
		k, ok := obs.ParseEventKind(s)
		if !ok {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown event kind %q", s)})
			return
		}
		wantKind = k
	}
	var since time.Time
	if s := q.Get("since"); s != "" {
		t, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("bad since time: %v", err)})
			return
		}
		since = t
	}
	evs, dropped := j.Events()
	body := eventsBody{
		ID:      fmt.Sprintf("%016x", j.ID()),
		Dropped: dropped,
		Events:  make([]eventBody, 0, len(evs)),
	}
	for _, e := range evs {
		if wantKind != 0 && e.Kind != wantKind {
			continue
		}
		if !since.IsZero() && !e.Time.After(since) {
			continue
		}
		eb := eventBody{
			Time:   e.Time,
			Kind:   e.Kind.String(),
			Worker: e.Worker,
			Detail: e.Detail,
			Value:  e.Value,
		}
		if e.Chunk >= 0 {
			chunk := e.Chunk
			eb.Chunk = &chunk
		}
		body.Events = append(body.Events, eb)
	}
	writeJSON(w, http.StatusOK, body)
}

// spanBody is the JSON view of one per-chunk span; segment durations are
// seconds.
type spanBody struct {
	Chunk          int       `json:"chunk"`
	Worker         string    `json:"worker,omitempty"`
	Granted        time.Time `json:"granted"`
	QueueSeconds   float64   `json:"queueSeconds"`
	WireSeconds    float64   `json:"wireSeconds"`
	ComputeSeconds float64   `json:"computeSeconds"`
	ReduceSeconds  float64   `json:"reduceSeconds"`
}

// spansBody is the GET /jobs/{id}/spans response. Dropped counts older
// spans the bounded ring has overwritten.
type spansBody struct {
	ID      string     `json:"id"`
	Dropped uint64     `json:"dropped,omitempty"`
	Spans   []spanBody `json:"spans"`
}

func (a *API) spans(w http.ResponseWriter, req *http.Request) {
	j := a.jobFromPath(w, req)
	if j == nil {
		return
	}
	sps, dropped := j.Spans()
	body := spansBody{
		ID:      fmt.Sprintf("%016x", j.ID()),
		Dropped: dropped,
		Spans:   make([]spanBody, 0, len(sps)),
	}
	for _, s := range sps {
		body.Spans = append(body.Spans, spanBody{
			Chunk:          s.Chunk,
			Worker:         s.Worker,
			Granted:        s.Granted,
			QueueSeconds:   s.Queue.Seconds(),
			WireSeconds:    s.Wire.Seconds(),
			ComputeSeconds: s.Compute.Seconds(),
			ReduceSeconds:  s.Reduce.Seconds(),
		})
	}
	writeJSON(w, http.StatusOK, body)
}

// fleetBody is the GET /fleet response.
type fleetBody struct {
	Workers []SessionStatus `json:"workers"`
	Tenants []TenantStatus  `json:"tenants,omitempty"`
}

func (a *API) fleet(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, fleetBody{Workers: a.reg.Fleet(), Tenants: a.reg.Tenants()})
}

// tenantsBody is the GET /tenants response.
type tenantsBody struct {
	Admission string         `json:"admission"`
	Tenants   []TenantStatus `json:"tenants"`
}

func (a *API) tenants(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, tenantsBody{
		Admission: a.reg.admission.Name(),
		Tenants:   a.reg.Tenants(),
	})
}

func (a *API) cancel(w http.ResponseWriter, req *http.Request) {
	j := a.jobFromPath(w, req)
	if j == nil {
		return
	}
	if err := a.reg.Cancel(j.ID()); err != nil {
		writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (a *API) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, a.reg.Stats())
}
