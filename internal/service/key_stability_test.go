package service

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/mc"
)

// TestKeyStableAcrossGobHistory pins the regression that motivated the
// JSON-based key: gob assigns wire type IDs from a process-global
// first-encode-wins counter, so hashing a gob stream gave different keys
// depending on what the process had gob-encoded before (connecting a
// worker — whose protocol is gob — before the first submission was enough
// to change every job ID, which broke journal replay's ID stability).
// The content key must not move when unrelated gob encodes run first.
func TestKeyStableAcrossGobHistory(t *testing.T) {
	before, err := KeyOf(slabSpec(5), 1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Churn the global gob type registry with types the key path also
	// encodes, plus some it does not.
	type noise struct {
		A mc.Spec
		B []string
		C map[string]int
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(noise{A: *slabSpec(7), B: []string{"x"}, C: map[string]int{"y": 1}}); err != nil {
		t.Fatal(err)
	}

	after, err := KeyOf(slabSpec(5), 1000, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("content key moved after unrelated gob encodes: %s -> %s", before, after)
	}
}
