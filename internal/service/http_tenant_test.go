package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// rawPost submits arbitrary bytes (with optional tenant header) and
// returns the response with its body drained into a string.
func rawPost(t *testing.T, url, tenant string, body []byte) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// TestHTTPBodyLimitAndUnknownField pins two ingress hardening fixes: an
// oversized body dies at the reader with 413, and a typoed request field
// is a 400, not a silently-defaulted job.
func TestHTTPBodyLimitAndUnknownField(t *testing.T) {
	reg := New(Options{})
	api := NewAPI(reg)
	api.MaxBodyBytes = 2048
	mux := http.NewServeMux()
	api.Register(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()

	big := `{"label":"` + strings.Repeat("a", 4096) + `"}`
	resp, body := rawPost(t, ts.URL+"/jobs", "", []byte(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: http %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(body, "2048") {
		t.Fatalf("413 body does not name the limit: %s", body)
	}

	resp, body = rawPost(t, ts.URL+"/jobs", "", []byte(`{"photonz":100}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: http %d, want 400", resp.StatusCode)
	}
	if !strings.Contains(body, "photonz") {
		t.Fatalf("400 body does not name the bad field: %s", body)
	}

	// A well-formed request under the limit still sails through.
	if _, code := postJob(t, ts, JobRequest{Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: 1}); code != http.StatusCreated {
		t.Fatalf("small valid submit under limit: http %d", code)
	}
}

// TestHTTPTenantResolution: the X-MC-Tenant header wins over the body
// field, the body field wins over nothing, nothing means "default", and
// an overlong name is rejected before submission.
func TestHTTPTenantResolution(t *testing.T) {
	reg := New(Options{})
	ts := httptest.NewServer(NewAPI(reg).Handler())
	defer ts.Close()

	submit := func(tenant string, seed uint64, bodyTenant string) JobStatus {
		t.Helper()
		body, _ := json.Marshal(JobRequest{
			Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: seed, Tenant: bodyTenant,
		})
		resp, raw := rawPost(t, ts.URL+"/jobs", tenant, body)
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit: http %d: %s", resp.StatusCode, raw)
		}
		var acc JobAccepted
		if err := json.Unmarshal([]byte(raw), &acc); err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		if code := getJSON(t, ts.URL+"/jobs/"+acc.ID, &st); code != http.StatusOK {
			t.Fatalf("status: http %d", code)
		}
		return st
	}

	if st := submit("header-tenant", 1, "body-tenant"); st.Tenant != "header-tenant" {
		t.Fatalf("header did not win: %q", st.Tenant)
	}
	if st := submit("", 2, "body-tenant"); st.Tenant != "body-tenant" {
		t.Fatalf("body tenant ignored: %q", st.Tenant)
	}
	if st := submit("", 3, ""); st.Tenant != DefaultTenant {
		t.Fatalf("unattributed job tenant %q, want %q", st.Tenant, DefaultTenant)
	}

	body, _ := json.Marshal(JobRequest{Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: 4})
	resp, _ := rawPost(t, ts.URL+"/jobs", strings.Repeat("x", MaxTenantNameLen+1), body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overlong tenant: http %d, want 400", resp.StatusCode)
	}
}

// TestHTTPRetryAfterShapes pins both derivations of the 429 Retry-After
// header: the cap path scales with active-job depth, the token-bucket path
// advertises the bucket's exact refill wait. Neither is the old constant.
func TestHTTPRetryAfterShapes(t *testing.T) {
	// Cap path: 3 active jobs → Retry-After 3.
	capReg := New(Options{MaxActiveJobs: 3})
	capTS := httptest.NewServer(NewAPI(capReg).Handler())
	defer capTS.Close()
	for seed := uint64(1); seed <= 3; seed++ {
		if _, code := postJob(t, capTS, JobRequest{Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: seed}); code != http.StatusCreated {
			t.Fatalf("seed %d: http %d", seed, code)
		}
	}
	body, _ := json.Marshal(JobRequest{Spec: slabSpec(8), Photons: 100, ChunkPhotons: 100, Seed: 4})
	resp, _ := rawPost(t, capTS.URL+"/jobs", "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap: http %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("cap Retry-After %q, want %q (one second per active job)", got, "3")
	}

	// Bucket path on a frozen clock: 0.25 jobs/s → exactly 4s to one token.
	clk := newFakeClock()
	table := &TenantTable{Tenants: map[string]TenantClass{
		"flood": {JobsPerSec: 0.25, JobBurst: 1},
	}}
	tbReg := New(Options{Admission: NewTokenBucket(table, clk.now), Tenants: table})
	tbTS := httptest.NewServer(NewAPI(tbReg).Handler())
	defer tbTS.Close()
	body, _ = json.Marshal(JobRequest{Spec: slabSpec(5), Photons: 100, ChunkPhotons: 100, Seed: 5})
	if resp, raw := rawPost(t, tbTS.URL+"/jobs", "flood", body); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first flood job: http %d: %s", resp.StatusCode, raw)
	}
	body, _ = json.Marshal(JobRequest{Spec: slabSpec(8), Photons: 100, ChunkPhotons: 100, Seed: 6})
	resp, raw := rawPost(t, tbTS.URL+"/jobs", "flood", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited flood job: http %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("Retry-After"); got != "4" {
		t.Fatalf("bucket Retry-After %q, want %q (refill at 0.25/s)", got, "4")
	}
	if !strings.Contains(raw, ShedReasonTenantRate) {
		t.Fatalf("429 body does not carry the shed reason: %s", raw)
	}
}

// TestHTTPTenantFloodEndToEnd is the PR acceptance e2e: tenant flood's
// second job sheds with 429 while tenant alice's job completes on the same
// fleet; cache hits debit one job-rate token (and zero photons); and the
// shed shows up reason- and tenant-labeled on /metrics, in /stats, /fleet
// and /tenants.
func TestHTTPTenantFloodEndToEnd(t *testing.T) {
	table := &TenantTable{Tenants: map[string]TenantClass{
		"flood": {JobsPerSec: 0.001, JobBurst: 1},
		"alice": {Weight: 3},
		"probe": {JobsPerSec: 0.001, JobBurst: 5, PhotonsPerSec: 0.001, PhotonBurst: 1},
	}}
	reg, ts := obsServer(t, Options{
		Admission: NewTokenBucket(table, nil),
		Tenants:   table,
		Policy:    TenantFairShare(),
	})
	startWorkers(t, reg, 2)

	floodReq := JobRequest{Spec: slabSpec(5), Photons: 500, ChunkPhotons: 100, Seed: 71}
	body, _ := json.Marshal(floodReq)
	resp, raw := rawPost(t, ts.URL+"/jobs", "flood", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("flood's first job: http %d: %s", resp.StatusCode, raw)
	}
	var floodAcc JobAccepted
	if err := json.Unmarshal([]byte(raw), &floodAcc); err != nil {
		t.Fatal(err)
	}

	// The flood: a second distinct job inside the refill window sheds.
	body, _ = json.Marshal(JobRequest{Spec: slabSpec(9), Photons: 500, ChunkPhotons: 100, Seed: 72})
	resp, raw = rawPost(t, ts.URL+"/jobs", "flood", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood's second job: http %d: %s", resp.StatusCode, raw)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 2 {
		t.Fatalf("flood Retry-After %q, want a bucket-derived wait >= 2s",
			resp.Header.Get("Retry-After"))
	}

	// Alice is untouched by flood's empty bucket.
	body, _ = json.Marshal(JobRequest{Spec: slabSpec(8), Photons: 400, ChunkPhotons: 100, Seed: 73})
	resp, raw = rawPost(t, ts.URL+"/jobs", "alice", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("alice's job: http %d: %s", resp.StatusCode, raw)
	}
	var aliceAcc JobAccepted
	if err := json.Unmarshal([]byte(raw), &aliceAcc); err != nil {
		t.Fatal(err)
	}
	waitDone(t, ts, aliceAcc.ID)
	waitDone(t, ts, floodAcc.ID)

	// Cache hits debit one job-rate token: flood resubmits its finished
	// job verbatim with an empty bucket and is shed before the cache can
	// hand out the result for free.
	body, _ = json.Marshal(floodReq)
	resp, raw = rawPost(t, ts.URL+"/jobs", "flood", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flood's cached resubmission with empty bucket: http %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(raw, ShedReasonTenantRate) {
		t.Fatalf("cached-resubmission 429 missing shed reason: %s", raw)
	}

	// The debit is one job token and zero photons: probe's photon burst
	// (1) is 500× too small for this job's physics, yet the cached result
	// is served because a cache hit adds no photon load to the fleet.
	body, _ = json.Marshal(floodReq)
	resp, raw = rawPost(t, ts.URL+"/jobs", "probe", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe's cached submission: http %d: %s", resp.StatusCode, raw)
	}
	var dup JobAccepted
	if err := json.Unmarshal([]byte(raw), &dup); err != nil {
		t.Fatal(err)
	}
	if !dup.Cached && !dup.Coalesced {
		t.Fatalf("verbatim resubmission neither cached nor coalesced: %+v", dup)
	}

	// The sheds are visible, labeled by reason and by tenant — flood's
	// flooded job plus its rate-limited cache hit, and nothing else.
	m := scrape(t, ts.URL+"/metrics")
	if got := m[`service_jobs_shed_total{reason="tenant_rate"}`]; got != 2 {
		t.Fatalf(`shed{reason="tenant_rate"} %g, want 2`, got)
	}
	if got := m[`service_tenant_jobs_shed_total{tenant="flood"}`]; got != 2 {
		t.Fatalf("flood shed counter %g, want 2", got)
	}
	if got := m[`service_tenant_jobs_submitted_total{tenant="alice"}`]; got != 1 {
		t.Fatalf("alice submitted counter %g, want 1", got)
	}
	if got := m[`service_tenant_photons_total{tenant="alice"}`]; got != 400 {
		t.Fatalf("alice photon counter %g, want 400", got)
	}
	if got := m[`service_tenant_photons_total{tenant="flood"}`]; got != 500 {
		t.Fatalf("flood photon counter %g, want 500", got)
	}

	// The same story on the JSON surfaces.
	var st Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Admission != "token-bucket" {
		t.Fatalf("stats admission %q", st.Admission)
	}
	if f := st.Tenants["flood"]; f.Submitted != 1 || f.Shed != 2 || f.Photons != 500 {
		t.Fatalf("stats flood rollup %+v", f)
	}
	if a := st.Tenants["alice"]; a.Weight != 3 || a.Shed != 0 {
		t.Fatalf("stats alice rollup %+v", a)
	}

	var fb fleetBody
	getJSON(t, ts.URL+"/fleet", &fb)
	if len(fb.Tenants) == 0 {
		t.Fatal("fleet body carries no tenant rollup")
	}

	var tens tenantsBody
	if code := getJSON(t, ts.URL+"/tenants", &tens); code != http.StatusOK {
		t.Fatalf("GET /tenants: http %d", code)
	}
	if tens.Admission != "token-bucket" {
		t.Fatalf("tenants admission %q", tens.Admission)
	}
	foundFlood, foundProbe := false, false
	for _, tn := range tens.Tenants {
		switch tn.Name {
		case "flood":
			foundFlood = true
			if tn.JobTokens == nil || *tn.JobTokens >= 1 {
				t.Fatalf("flood bucket not visibly drained: %+v", tn)
			}
			if tn.Class == nil || tn.Class.JobsPerSec != 0.001 {
				t.Fatalf("flood class not echoed: %+v", tn.Class)
			}
		case "probe":
			foundProbe = true
			// The cache hit cost probe one job token and zero photons.
			if tn.JobTokens == nil || *tn.JobTokens > 4.5 {
				t.Fatalf("probe job bucket not debited by cache hit: %+v", tn)
			}
			if tn.PhotonTokens == nil || *tn.PhotonTokens < 0.999 {
				t.Fatalf("probe photon bucket debited by cache hit: %+v", tn)
			}
		}
	}
	if !foundFlood || !foundProbe {
		t.Fatalf("flood/probe missing from /tenants: %+v", tens.Tenants)
	}
}
