// Package service turns the one-shot DataManager of the paper's platform
// into a long-lived, multi-tenant simulation service. A Registry owns many
// concurrent jobs — each wrapping the chunk queue / timeout-reassignment /
// exactly-once reduction logic of a single distributed run — and one shared
// worker fleet drains them all: every idle worker is handed the next chunk
// chosen by a pluggable cross-job Policy (FIFO, priority, weighted
// fair-share built on sched.FairShare, or two-level tenant-fair built on
// sched.TwoLevel), and results are routed back to
// their job by the protocol's JobID. Workers are job-agnostic; a session
// learns a job's spec the first time it is assigned one of its chunks.
// Since protocol v3, workers flush pre-reduced result batches (compact
// tally codec, per-chunk acks) and the registry merges each batch off its
// dispatch lock through a per-job reducer, so fleet throughput tracks
// kernel throughput rather than per-chunk wire bookkeeping.
//
// Completed tallies land in a content-addressed result cache keyed by the
// canonical gob encoding of (Spec, TotalPhotons, ChunkPhotons, Seed) —
// plus the Fan width when one is set, since a fanned chunk decomposes into
// different sub-streams — the exact tuple that determines a reproducible
// result. A duplicate submission returns instantly without assigning a
// single chunk, and an identical submission racing an active job coalesces
// onto it.
//
// Every submission belongs to a tenant (JobSpec.Tenant; the HTTP layer
// resolves it from the X-MC-Tenant header, the request body, or the
// "default" fallback). An AdmissionPolicy — AlwaysAdmit, or TokenBucket
// fed by a TenantTable of per-tenant job-rate and photon-quota classes —
// decides at Submit whether a fresh job is accepted; refusals are typed
// ShedErrors the HTTP layer turns into 429s with a computed Retry-After.
// Cache hits and coalesced submissions still debit one job-rate token —
// a resubmission is a submission — but are exempt from the photon quota
// and the active-jobs cap (they add no new simulation work); checkpoint
// resumes and journal replay bypass admission entirely.
//
// The same content keys shard the control plane: RoutingKeys derives a
// submission's key without a Registry, ShardOfKey maps it onto one of N
// contiguous key ranges, and job IDs are minted from the key prefix
// (KeyID) so ShardOfID routes by ID to the same shard — a stateless
// gateway (internal/gateway, cmd/mcgate) needs no routing table and any
// two gateway instances route identically. Submit distinguishes
// deterministic rejections (InvalidJobError: normalization or key
// derivation failed; HTTP 422 — every shard would refuse) from
// environmental ones (HTTP 503 — a routing tier may retry elsewhere).
//
// The API surface is programmatic (Registry) and HTTP (NewAPI): POST /jobs,
// GET /jobs/{id}, GET /jobs/{id}/result, DELETE /jobs/{id}, GET /stats,
// GET /tenants.
// cmd/mcqueue serves both; cmd/mcserver keeps its one-job CLI behaviour by
// delegating to a single-job Registry.
package service

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
)

// Options configure a Registry. The zero value is a long-lived multi-job
// service with FIFO scheduling and a 256-entry result cache.
type Options struct {
	// Policy picks which job's chunk an idle worker receives; nil means FIFO.
	Policy Policy
	// CacheSize bounds the result cache in entries; 0 means a 256-entry
	// default, negative disables caching entirely.
	CacheSize int
	// RetainDone bounds how many finished (done or cancelled) jobs stay
	// queryable in the registry; 0 means 1024, negative retains forever.
	RetainDone int
	// DrainOnEmpty makes the fleet tell workers the service is Done once
	// every submitted job has finished — the one-shot mcserver mode. A
	// long-lived service leaves it false and workers idle-poll.
	DrainOnEmpty bool
	// MaxTargetPhotons caps the photon budget of precision-targeted jobs
	// (a submission's own Target.MaxPhotons is clamped to it); 0 means
	// DefaultMaxTargetPhotons. An operator guard against a tight RelErr
	// on a noisy observable monopolising the fleet.
	MaxTargetPhotons int64
	// MaxActiveJobs sheds fresh submissions (ShedError, reason "cap") while
	// that many jobs are already queued or running; 0 means unbounded.
	// Cache hits and coalesced submissions are exempt from this cap — they
	// add no job — though they still debit the tenant's job-rate bucket.
	MaxActiveJobs int
	// Admission decides per tenant whether a fresh submission is accepted
	// (token buckets on jobs/sec and photons); nil means AlwaysAdmit. The
	// MaxActiveJobs cap is evaluated first, as one more shed reason.
	Admission AdmissionPolicy
	// Tenants maps tenant names to their class; the registry reads
	// scheduling weights (tenant-fair policy, GET /tenants) from it. nil
	// gives every tenant the default class (weight 1).
	Tenants *TenantTable
	// Obs receives the service-plane metrics; nil instruments into a
	// private unexported registry (the counters still run — they are cheap
	// atomics — but nothing scrapes them).
	Obs *obs.Registry
	// TraceEvents bounds each job's lifecycle event ring: 0 means
	// obs.DefaultTraceEvents, negative disables per-job tracing.
	TraceEvents int
	// SpanEvents bounds each job's per-chunk span ring (queue-wait /
	// wire+hold / compute / reduce segments behind GET /jobs/{id}/spans):
	// 0 means obs.DefaultSpanEvents, negative disables span recording.
	// The aggregate span histograms on the metrics registry observe
	// regardless — they survive ring eviction and this switch.
	SpanEvents int
	// Logger, if set, receives structured progress logging (nil discards).
	Logger *slog.Logger
	// Journal, if set, write-ahead journals every control-plane transition
	// (accept, reduce, finalize, cancel) so a crashed registry replays its
	// job set on restart; nil disables journaling. See NewJournal.
	Journal *Journal
}

// JobSpec describes one simulation job submitted to a Registry.
type JobSpec struct {
	Spec *mc.Spec
	// TotalPhotons fixes the photon budget of a fixed-count job. It is
	// ignored (and normalized to zero) when Target is set: a
	// precision-targeted job is open-ended and its chunk count is decided
	// by the stopping rule, not up front.
	TotalPhotons int64
	// ChunkPhotons is the photons per work unit (dynamic self-scheduling
	// with fixed-size chunks); it defaults to TotalPhotons for
	// fixed-count jobs and to DefaultTargetChunkPhotons for targeted ones.
	ChunkPhotons int64
	Seed         uint64
	// Target, when set, turns the job into a run-until-precision job: the
	// registry issues ChunkPhotons-sized chunks open-endedly, re-estimates
	// the observable's relative standard error as batches reduce, and
	// finalizes the job the moment the target is met (or its photon cap is
	// reached). The simulation spec's TrackMoments flag is forced on so
	// chunk tallies carry the required second moments. Results are
	// normalized by the photons actually simulated.
	Target *mc.Target
	// Fan is the per-chunk multi-core decomposition width: workers compute
	// each chunk as Fan jump-separated sub-streams (mc.RunStreamFan) and a
	// chunk tally is a pure function of (Seed, stream, Fan) — never of the
	// computing worker's core count. ≤ 1 means the legacy single-stream
	// chunk and keeps result bytes (and the cache key) identical to
	// pre-fan submissions.
	Fan int
	// ChunkTimeout reassigns a chunk whose result has not arrived in time;
	// zero disables reassignment.
	ChunkTimeout time.Duration
	// Priority orders jobs under PriorityPolicy (higher first).
	Priority int
	// Weight is the fair-share weight under FairSharePolicy (default 1).
	Weight float64
	// Label is a free-form operator tag surfaced in statuses.
	Label string
	// Tenant attributes the job to a tenant for admission control,
	// two-level fair scheduling and per-tenant accounting. Empty maps to
	// DefaultTenant. The tenant never enters the result-cache key: the same
	// physics submitted by two tenants coalesces and cache-hits freely.
	Tenant string

	// replay marks a submission reconstructed by journal replay: it
	// bypasses admission (the work was admitted before the crash) and
	// counts into Stats.JobsReplayed. Unexported on purpose — invisible
	// to gob, JSON and every caller outside the journal.
	replay bool
}

// Precision-job defaults: the chunk size when the submission names none,
// the min-photon floor in chunks, and the photon cap applied when neither
// the submission nor Options set one. The floor guards the stopping
// rule's small-sample bias: with few chunk samples the variance estimate
// is noisy and testing it selects for optimistic draws, so the rule stops
// early with an overconfident CI (DESIGN.md quantifies this). Sixteen
// samples keeps the selection effect small; users targeting an RSE their
// floor can barely reach should raise MinPhotons further.
const (
	DefaultTargetChunkPhotons = 10_000
	DefaultMinTargetChunks    = 16
	DefaultMaxTargetPhotons   = 50_000_000
)

// normalize fills defaults and runs the cheap structural checks. The
// expensive spec validation (Spec.Build, which may materialise a voxel
// geometry) is deferred to newJob so that cache hits and coalesced
// submissions — whose exact spec bytes already built successfully once —
// skip it entirely. maxTargetPhotons is the registry's operator cap
// (zero means DefaultMaxTargetPhotons).
func (s *JobSpec) normalize(maxTargetPhotons int64) error {
	if s.Spec == nil {
		return fmt.Errorf("service: job has no simulation spec")
	}
	if s.Target != nil {
		tgt := *s.Target // never mutate the caller's struct
		s.Target = &tgt
		s.TotalPhotons = 0
		if s.ChunkPhotons <= 0 {
			s.ChunkPhotons = DefaultTargetChunkPhotons
		}
		budget := maxTargetPhotons
		if budget <= 0 {
			budget = DefaultMaxTargetPhotons
		}
		if tgt.MaxPhotons == 0 || tgt.MaxPhotons > budget {
			tgt.MaxPhotons = budget
		}
		// Round the cap up to a whole chunk so the budget boundary is a
		// chunk boundary (the last issued chunk is never short).
		if rem := tgt.MaxPhotons % s.ChunkPhotons; rem != 0 {
			tgt.MaxPhotons += s.ChunkPhotons - rem
		}
		// The floor must fit the (possibly operator-clamped) budget: a
		// defaulted floor shrinks to it, but an explicit MinPhotons above
		// it is a contradiction Normalize rejects below — silently raising
		// MaxPhotons instead would let any submission bypass the cap.
		if tgt.MinPhotons == 0 {
			tgt.MinPhotons = DefaultMinTargetChunks * s.ChunkPhotons
			if tgt.MinPhotons > tgt.MaxPhotons {
				tgt.MinPhotons = tgt.MaxPhotons
			}
		}
		if err := s.Target.Normalize(); err != nil {
			return err
		}
		if !s.Spec.TrackMoments {
			// The stopping rule needs chunk moments; copy the spec rather
			// than flipping the caller's (which may describe other jobs).
			sp := *s.Spec
			sp.TrackMoments = true
			s.Spec = &sp
		}
	} else if s.TotalPhotons <= 0 {
		return fmt.Errorf("service: non-positive photon count %d", s.TotalPhotons)
	}
	if s.ChunkPhotons <= 0 {
		s.ChunkPhotons = s.TotalPhotons
	}
	if s.Weight <= 0 {
		s.Weight = 1
	}
	if s.Fan <= 1 {
		s.Fan = 0 // canonical "no fan": fan 1 computes the same tally
	}
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if len(s.Tenant) > MaxTenantNameLen {
		return fmt.Errorf("service: tenant name longer than %d bytes", MaxTenantNameLen)
	}
	return nil
}

// numChunks returns the chunk count a fixed-count spec partitions into
// (zero for open-ended precision-targeted jobs).
func (s *JobSpec) numChunks() int {
	if s.Target != nil {
		return 0
	}
	return int((s.TotalPhotons + s.ChunkPhotons - 1) / s.ChunkPhotons)
}

// cloneTally deep-copies a tally via a gob round trip (tallies are plain
// data, so this is exact).
func cloneTally(t *mc.Tally) *mc.Tally {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t); err != nil {
		panic(fmt.Sprintf("service: clone tally encode: %v", err))
	}
	var out mc.Tally
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		panic(fmt.Sprintf("service: clone tally decode: %v", err))
	}
	return &out
}
