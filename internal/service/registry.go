package service

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Registry owns the concurrent jobs of the simulation service and the
// shared worker fleet that drains them. Create one with New, submit jobs
// with Submit, and serve worker connections with Serve / HandleConn.
type Registry struct {
	opts      Options
	policy    Policy
	admission AdmissionPolicy
	journal   *Journal // nil means no write-ahead journaling
	log       *slog.Logger
	met       *svcMetrics

	mu        sync.Mutex
	jobs      map[uint64]*Job
	order     []*Job       // submission order (List is deterministic)
	active    []*Job       // queued/running jobs only — the dispatcher's hot loop
	byKey     map[Key]*Job // active jobs, for coalescing identical submissions
	cache     *cache
	seq       uint64
	sessions  map[uint64]*session
	nextSess  uint64
	seenNames map[string]bool         // worker names ever connected (reconnect detection)
	tenants   map[string]*tenantStats // per-tenant accounting, keyed by tenant name

	chunksAssigned int64 // lifetime fleet counters
	photonsDone    int64
	rejected       int64
	batches        int64 // worker result batches reduced
	merges         int64 // tally merges into job tallies (≤ chunks: pre-reduction)
	submitted      int64 // fresh jobs accepted (cache hits / coalesced excluded)
	resumed        int64 // jobs restored from checkpoints
	replayed       int64 // jobs restored by journal replay (subset of the above two)

	// Dispatch scratch buffers, reused under mu so the per-request
	// candidate gathering allocates nothing at steady state.
	candScratch []Candidate
	jobScratch  []*Job

	drainOnce sync.Once
	drained   chan struct{} // closed when DrainOnEmpty and all jobs finished
}

// New returns an empty registry.
func New(opts Options) *Registry {
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	if opts.Policy == nil {
		opts.Policy = FIFO()
	}
	if opts.Admission == nil {
		opts.Admission = AlwaysAdmit()
	}
	if opts.RetainDone == 0 {
		opts.RetainDone = 1024
	}
	r := &Registry{
		opts:      opts,
		policy:    opts.Policy,
		admission: opts.Admission,
		journal:   opts.Journal,
		log:       opts.Logger,
		jobs:      make(map[uint64]*Job),
		byKey:     make(map[Key]*Job),
		cache:     newCache(opts.CacheSize),
		sessions:  make(map[uint64]*session),
		seenNames: make(map[string]bool),
		tenants:   make(map[string]*tenantStats),
		drained:   make(chan struct{}),
	}
	// A nil Obs still gets live instruments (they are plain atomics and the
	// accounting code stays branch-free); they are simply never scraped.
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r.met = newServiceMetrics(reg, r)
	return r
}

// SubmitOutcome reports how a submission was satisfied.
type SubmitOutcome struct {
	Job *Job
	// Cached means the job was born Done with a tally served from the
	// result cache; no chunks will ever be assigned for it.
	Cached bool
	// Coalesced means an identical job was already active and the caller
	// was attached to it instead of queueing duplicate work.
	Coalesced bool
}

// Submit registers a job. Identical submissions (same content Key) are
// deduplicated: against the cache if a previous run completed, against the
// live job if one is still active (the live job absorbs the stronger of
// the two submissions' scheduling parameters, so an urgent resubmission is
// not silently demoted to the incumbent's priority). A precision-targeted
// submission is additionally matched against the physics index: any stored
// run of the same (spec, chunking, seed, fan) decomposition that
// meets-or-exceeds the requested precision serves it instantly.
//
// Heavy construction — Spec.Build (which may materialise a multi-megabyte
// voxel geometry), tally allocation, cache-tally cloning — happens outside
// the registry mutex so a large submission never stalls fleet dispatch.
func (r *Registry) Submit(spec JobSpec) (*SubmitOutcome, error) {
	if err := spec.normalize(r.opts.MaxTargetPhotons); err != nil {
		return nil, invalid(err)
	}
	key, pkey, err := keysOf(&spec)
	if err != nil {
		return nil, invalid(err)
	}

	r.mu.Lock()
	if live := r.byKey[key]; live != nil {
		if err := r.admitRideLocked(&spec); err != nil {
			r.mu.Unlock()
			return nil, err
		}
		live.absorbParamsLocked(spec)
		r.mu.Unlock()
		r.met.jobsCoalesced.Inc()
		live.trace(obs.Event{Kind: obs.EvCoalesced})
		return &SubmitOutcome{Job: live, Coalesced: true}, nil
	}
	r.mu.Unlock()

	// A precision submission probes two indexes but is one lookup: only
	// the trailing physics probe records the miss.
	r.met.cacheLookups.Inc()
	tally := r.cache.getCounted(key, spec.Target == nil)
	hitIndex := "exact"
	if tally == nil && spec.Target != nil {
		// Meets-or-exceeds: a deeper or equal stored run of the same
		// physics satisfies any looser request for it.
		tally = r.cache.getMeeting(pkey, spec.Target)
		hitIndex = "physics"
	}
	if tally != nil {
		r.mu.Lock()
		if err := r.admitRideLocked(&spec); err != nil {
			r.mu.Unlock()
			return nil, err
		}
		r.mu.Unlock()
		// A cached key proves these exact spec bytes built and completed
		// before, so the job is born Done without touching the geometry.
		if hitIndex == "exact" {
			r.met.cacheHitExact.Inc()
		} else {
			r.met.cacheHitPhysics.Inc()
		}
		j := bornDoneJob(r, key, spec, tally)
		j.pkey = pkey
		j.trace(obs.Event{Kind: obs.EvCacheHit, Detail: hitIndex})
		r.mu.Lock()
		r.registerLocked(j)
		r.mu.Unlock()
		r.log.Info("job served from cache", "job", jobHex(j.id), "index", hitIndex)
		return &SubmitOutcome{Job: j, Cached: true}, nil
	}
	r.met.cacheMisses.Inc()

	// Early admission probe: a fresh job is refused before paying
	// Spec.Build (which may materialise a voxel geometry). Coalesced and
	// cache-hit submissions returned above after debiting one job-rate
	// token via admitRideLocked. The probe spends no tokens; the
	// authoritative, debiting check repeats under the lock below.
	cost := spec.admissionPhotons()
	r.mu.Lock()
	ts := r.tenantLocked(spec.Tenant)
	// Journal replay bypasses admission: the work was admitted before the
	// crash, and a restart must never shed jobs it already accepted.
	if !spec.replay {
		if err := r.admitLocked(ts, cost, false); err != nil {
			r.mu.Unlock()
			return nil, err
		}
	}
	r.mu.Unlock()

	j, err := newJob(r, key, spec)
	if err != nil {
		return nil, err
	}
	j.pkey = pkey
	r.mu.Lock()
	if live := r.byKey[key]; live != nil { // lost a race with an identical submission
		if err := r.admitRideLocked(&spec); err != nil {
			r.mu.Unlock()
			return nil, err
		}
		live.absorbParamsLocked(spec)
		r.mu.Unlock()
		r.met.jobsCoalesced.Inc()
		live.trace(obs.Event{Kind: obs.EvCoalesced})
		return &SubmitOutcome{Job: live, Coalesced: true}, nil
	}
	if !spec.replay {
		if err := r.admitLocked(ts, cost, true); err != nil { // authoritative, spends tokens
			r.mu.Unlock()
			return nil, err
		}
	}
	r.registerLocked(j)
	r.active = append(r.active, j)
	r.byKey[key] = j
	r.submitted++
	ts.submitted++
	if spec.replay {
		r.replayed++
	}
	jspec := j.spec // copy under the lock: absorbParamsLocked may mutate j.spec
	r.mu.Unlock()
	r.met.jobsSubmitted.Inc()
	if spec.replay {
		r.met.jobsReplayed.Inc()
	}
	ts.subC.Inc()
	r.journal.jobAccepted(j.key, jspec)
	j.trace(obs.Event{Kind: obs.EvSubmitted, Detail: spec.Tenant})
	if spec.Target != nil {
		r.log.Info("job submitted", "job", jobHex(j.id),
			"observable", spec.Target.Observable, "relErr", spec.Target.RelErr,
			"chunkPhotons", spec.ChunkPhotons)
	} else {
		r.log.Info("job submitted", "job", jobHex(j.id),
			"photons", spec.TotalPhotons, "chunks", j.nChunks)
	}
	return &SubmitOutcome{Job: j}, nil
}

// admitLocked evaluates every shed reason for a would-be fresh job of the
// given tenant: the global MaxActiveJobs cap first, then the per-tenant
// admission policy. debit=false probes (the pre-Build check, spends
// nothing); debit=true is the authoritative check that spends tokens.
// Either outcome of a failed check records exactly one shed — a refused
// submission fails at most one of the two calls.
func (r *Registry) admitLocked(ts *tenantStats, photons int64, debit bool) error {
	if r.opts.MaxActiveJobs > 0 && len(r.active) >= r.opts.MaxActiveJobs {
		return r.shedLocked(ts, &ShedError{
			Tenant:     ts.name,
			Reason:     ShedReasonCap,
			RetryAfter: capRetryAfter(len(r.active)),
			Detail:     fmt.Sprintf("%d active, cap %d", len(r.active), r.opts.MaxActiveJobs),
		})
	}
	var v AdmissionVerdict
	if debit {
		v = r.admission.Admit(ts.name, photons)
	} else {
		v = r.admission.Probe(ts.name, photons)
	}
	if !v.OK {
		return r.shedLocked(ts, &ShedError{
			Tenant: ts.name, Reason: v.Reason, RetryAfter: v.RetryAfter, Detail: v.Detail,
		})
	}
	return nil
}

// admitRideLocked admits a submission that rides existing work — a
// coalesced duplicate or a cache hit. Resubmitting a popular spec is
// still a submission, so it debits one token from the tenant's job-rate
// bucket (otherwise a tenant replays a live spec to bypass its jobs/sec
// quota entirely — worse once the cache is a shared fleet-wide tier).
// The exemptions that remain are exactly the ones that cost nothing: the
// photon dimension (no new photons will be simulated), the MaxActiveJobs
// cap (no job joins the active set), and journal replay (the work was
// admitted before the crash).
func (r *Registry) admitRideLocked(spec *JobSpec) error {
	if spec.replay {
		return nil
	}
	ts := r.tenantLocked(spec.Tenant)
	v := r.admission.Admit(ts.name, 0)
	if !v.OK {
		return r.shedLocked(ts, &ShedError{
			Tenant: ts.name, Reason: v.Reason, RetryAfter: v.RetryAfter, Detail: v.Detail,
		})
	}
	return nil
}

// shedLocked accounts one refused submission and returns the error.
func (r *Registry) shedLocked(ts *tenantStats, e *ShedError) error {
	ts.shed++
	ts.shedC.Inc()
	r.met.jobsShed.With(e.Reason).Inc()
	r.log.Warn("job shed", "tenant", ts.name, "reason", e.Reason,
		"retryAfter", e.RetryAfter, "detail", e.Detail)
	return e
}

// capRetryAfter scales the cap path's Retry-After with queue depth — one
// second per active job, clamped to [1s, 60s] — so a deeply backlogged
// service pushes clients further out than a barely-over one.
func capRetryAfter(active int) time.Duration {
	d := time.Duration(active) * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// tenantLocked lazily materialises a tenant's accounting bucket with its
// metric children pre-resolved (the reduce hot path adds photons per batch).
func (r *Registry) tenantLocked(name string) *tenantStats {
	ts, ok := r.tenants[name]
	if !ok {
		ts = &tenantStats{
			name:  name,
			subC:  r.met.tenantSubmitted.With(name),
			shedC: r.met.tenantShed.With(name),
			photC: r.met.tenantPhotons.With(name),
		}
		r.tenants[name] = ts
	}
	return ts
}

// tenantStats is one tenant's lifetime accounting, guarded by the registry
// lock, with pre-resolved per-tenant counter children alongside.
type tenantStats struct {
	name      string
	submitted int64
	resumed   int64
	shed      int64
	photons   int64

	subC, shedC, photC *obs.Counter
}

// jobHex is the log spelling of a job ID (matches the HTTP API's).
func jobHex(id uint64) string { return fmt.Sprintf("%016x", id) }

// keysOf derives a normalized spec's content key and physics key.
func keysOf(spec *JobSpec) (key, pkey Key, err error) {
	if spec.Target != nil {
		key, err = KeyOfTarget(spec.Spec, spec.ChunkPhotons, spec.Seed, spec.Fan, spec.Target)
	} else {
		key, err = KeyOfFan(spec.Spec, spec.TotalPhotons, spec.ChunkPhotons, spec.Seed, spec.Fan)
	}
	if err != nil {
		return Key{}, Key{}, err
	}
	pkey, err = PhysicsKeyOf(spec.Spec, spec.ChunkPhotons, spec.Seed, spec.Fan)
	if err != nil {
		return Key{}, Key{}, err
	}
	return key, pkey, nil
}

// SubmitSnapshot resumes a checkpointed job: already reduced chunks stay
// reduced and only the rest are queued. A fully complete snapshot yields a
// job born Done.
func (r *Registry) SubmitSnapshot(snap *Snapshot) (*Job, error) {
	spec := snap.Spec
	if err := spec.normalize(r.opts.MaxTargetPhotons); err != nil {
		return nil, err
	}
	if snap.Tally == nil || snap.NChunks < 0 || (spec.Target == nil && snap.NChunks == 0) {
		return nil, fmt.Errorf("service: snapshot is incomplete")
	}
	key, pkey, err := keysOf(&spec)
	if err != nil {
		return nil, err
	}

	// Build and restore outside the lock (see Submit).
	j, err := newJob(r, key, spec)
	if err != nil {
		return nil, err
	}
	j.pkey = pkey
	j.trace(obs.Event{Kind: obs.EvResumed, Detail: spec.Tenant, Value: float64(len(snap.Completed))})
	if j.openEnded() {
		// Re-issue the snapshot's chunk space; incomplete ids are queued
		// below and issuance continues past the high-water mark on demand.
		for j.nChunks < snap.NChunks {
			j.pending = append(j.pending, j.issueChunkLocked())
		}
	} else if j.nChunks != snap.NChunks {
		return nil, fmt.Errorf("service: snapshot has %d chunks, job derives %d",
			snap.NChunks, j.nChunks)
	}
	done := make(map[int]bool, len(snap.Completed))
	for _, id := range snap.Completed {
		if id < 0 || id >= j.nChunks {
			return nil, fmt.Errorf("service: snapshot completed chunk %d out of range", id)
		}
		if !done[id] {
			done[id] = true
			j.completed[id] = true
			j.nCompleted++
		}
	}
	j.tally = cloneTally(snap.Tally)
	j.publishEstimate(j.tally)
	pending := j.pending[:0]
	for _, id := range j.pending {
		if !done[id] {
			pending = append(pending, id)
		}
	}
	j.pending = pending
	// A fixed-count snapshot is complete when every chunk reduced; an
	// open-ended one when its restored tally already satisfies the target
	// (or its budget is spent with nothing left in flight).
	complete := j.nCompleted == j.nChunks &&
		(!j.openEnded() || j.targetMet || j.issuableChunksLocked() == 0)
	if j.openEnded() && j.targetMet {
		j.pending = nil
		complete = true
	}
	if complete {
		j.state = StateDone
		j.finishedAt = time.Now()
		close(j.finished)
		r.cache.put(key, cloneTally(j.tally))
		r.cache.putPhysics(pkey, cloneTally(j.tally))
	}

	r.mu.Lock()
	if live := r.byKey[key]; live != nil {
		r.mu.Unlock()
		return live, nil
	}
	r.registerLocked(j)
	// Resumes are admission-exempt (the work was admitted before the
	// checkpoint) but they are submissions: count them, or the scraped
	// series disagree with Stats after every restart.
	r.resumed++
	j.tstats.resumed++
	r.met.jobsResumed.Inc()
	if spec.replay {
		r.replayed++
		r.met.jobsReplayed.Inc()
	}
	if complete {
		r.checkDrainLocked()
	} else {
		r.active = append(r.active, j)
		r.byKey[key] = j
	}
	r.mu.Unlock()
	// Re-journal the restored job so the log is self-contained from here
	// on, whether it came from a legacy checkpoint or from replay itself.
	r.journal.resumed(j, complete)
	return j, nil
}

// nextSeqLocked hands out submission order numbers.
func (r *Registry) nextSeqLocked() uint64 {
	r.seq++
	return r.seq
}

// freeIDLocked derives a registry-unique job ID from the content key, so
// IDs are stable across restarts of the same submission and a stale worker
// from an unrelated previous run cannot collide with a live job by accident.
func (r *Registry) freeIDLocked(key Key) uint64 {
	id := uint64(key[0])<<56 | uint64(key[1])<<48 | uint64(key[2])<<40 | uint64(key[3])<<32 |
		uint64(key[4])<<24 | uint64(key[5])<<16 | uint64(key[6])<<8 | uint64(key[7])
	for id == 0 || r.jobs[id] != nil {
		id++
	}
	return id
}

// registerLocked assigns the job its registry-unique ID and submission
// sequence, adds it to the maps, and evicts old finished jobs.
func (r *Registry) registerLocked(j *Job) {
	j.id = r.freeIDLocked(j.key)
	j.seq = r.nextSeqLocked()
	j.tstats = r.tenantLocked(j.spec.Tenant)
	j.tweight = r.opts.Tenants.Weight(j.spec.Tenant)
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	r.evictFinishedLocked()
}

// evictFinishedLocked drops the oldest finished jobs over the RetainDone
// bound so a long-lived service's memory stays flat.
func (r *Registry) evictFinishedLocked() {
	if r.opts.RetainDone < 0 {
		return
	}
	finished := 0
	for _, jb := range r.order {
		if !jb.activeLocked() {
			finished++
		}
	}
	if finished <= r.opts.RetainDone {
		return
	}
	kept := r.order[:0]
	for _, jb := range r.order {
		if finished > r.opts.RetainDone && !jb.activeLocked() {
			delete(r.jobs, jb.id)
			finished--
			continue
		}
		kept = append(kept, jb)
	}
	r.order = kept
}

// Get returns the job with the given ID, or nil.
func (r *Registry) Get(id uint64) *Job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// List returns statuses of every retained job in submission order.
func (r *Registry) List() []JobStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]JobStatus, 0, len(r.order))
	for _, j := range r.order {
		out = append(out, j.statusLocked())
	}
	return out
}

// Cancel stops a job: pending and in-flight chunks are dropped, late
// results are rejected, and waiters get ErrCanceled. Cancelling a finished
// job is an error.
func (r *Registry) Cancel(id uint64) error {
	r.mu.Lock()
	j := r.jobs[id]
	if j == nil {
		r.mu.Unlock()
		return fmt.Errorf("service: no job %016x", id)
	}
	if !j.activeLocked() {
		state := j.state
		r.mu.Unlock()
		return fmt.Errorf("service: job %016x already %s", id, state)
	}
	j.state = StateCanceled
	j.pending = nil
	j.outstanding = make(map[int]*chunkState)
	j.finishedAt = time.Now()
	close(j.finished)
	r.removeActiveLocked(j)
	delete(r.byKey, j.key)
	r.policy.Forget(j.id)
	j.trace(obs.Event{Kind: obs.EvCanceled})
	r.log.Info("job canceled", "job", jobHex(j.id))
	r.evictFinishedLocked()
	r.checkDrainLocked()
	key := j.key
	r.mu.Unlock()
	r.journal.canceled(key)
	return nil
}

// finishJobLocked marks a job whose last chunk just reduced as done. The
// caller must call sealJob after releasing the registry lock: waiters stay
// blocked on j.finished until then, which keeps the expensive cache clone
// off the fleet's hot lock while still guaranteeing the cache entry is
// taken before any Wait caller can mutate the returned tally.
func (r *Registry) finishJobLocked(j *Job) {
	j.state = StateDone
	j.finishedAt = time.Now()
	r.removeActiveLocked(j)
	delete(r.byKey, j.key)
	r.policy.Forget(j.id)
	r.evictFinishedLocked()
	r.checkDrainLocked()
}

// removeActiveLocked drops a job that just left the queued/running states
// from the dispatcher's active list.
func (r *Registry) removeActiveLocked(j *Job) {
	for i, a := range r.active {
		if a == j {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
}

// sealJob caches a finished job's tally — under both its exact content key
// and, when the tally carries moments, the physics index that serves
// meets-or-exceeds precision lookups — and releases its waiters.
func (r *Registry) sealJob(j *Job) {
	clone := cloneTally(j.tally)
	r.cache.put(j.key, clone)
	r.cache.putPhysics(j.pkey, clone)
	close(j.finished)
	r.log.Info("job done", "job", jobHex(j.id), "chunks", j.nChunks,
		"reassigned", j.reassigned, "duplicates", j.duplicates, "rejected", j.rejected)
}

// checkDrainLocked closes the drain channel once a one-shot registry has
// seen at least one submission and has no unfinished jobs left.
func (r *Registry) checkDrainLocked() {
	if !r.opts.DrainOnEmpty || r.seq == 0 || len(r.active) > 0 {
		return
	}
	r.drainOnce.Do(func() { close(r.drained) })
}

// Drained returns a channel closed when a DrainOnEmpty registry has
// finished every submitted job (never closed for long-lived registries).
func (r *Registry) Drained() <-chan struct{} { return r.drained }

// Stats is the fleet/queue health snapshot behind GET /stats.
type Stats struct {
	Workers           int    `json:"workers"`
	JobsQueued        int    `json:"jobsQueued"`
	JobsRunning       int    `json:"jobsRunning"`
	JobsDone          int    `json:"jobsDone"`
	JobsCanceled      int    `json:"jobsCanceled"`
	PendingChunks     int    `json:"pendingChunks"`
	OutstandingChunks int    `json:"outstandingChunks"`
	ChunksAssigned    int64  `json:"chunksAssigned"`
	PhotonsCompleted  int64  `json:"photonsCompleted"`
	RejectedResults   int64  `json:"rejectedResults"`
	BatchesReduced    int64  `json:"batchesReduced"`
	TallyMerges       int64  `json:"tallyMerges"`
	CacheEntries      int    `json:"cacheEntries"`
	CacheHits         int64  `json:"cacheHits"`
	CacheMisses       int64  `json:"cacheMisses"`
	JobsSubmitted     int64  `json:"jobsSubmitted"`
	JobsResumed       int64  `json:"jobsResumed,omitempty"`
	JobsReplayed      int64  `json:"jobsReplayed,omitempty"`
	Policy            string `json:"policy"`
	Admission         string `json:"admission"`
	// Tenants is the per-tenant rollup: one entry per tenant ever seen.
	Tenants map[string]TenantStat `json:"tenants,omitempty"`
}

// TenantStat is one tenant's slice of the Stats rollup.
type TenantStat struct {
	Weight     float64 `json:"weight"`
	ActiveJobs int     `json:"activeJobs"`
	Submitted  int64   `json:"submitted"`
	Resumed    int64   `json:"resumed,omitempty"`
	Shed       int64   `json:"shed"`
	Photons    int64   `json:"photons"`
}

// Stats snapshots fleet and queue health.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Stats{
		Workers:          len(r.sessions),
		ChunksAssigned:   r.chunksAssigned,
		PhotonsCompleted: r.photonsDone,
		RejectedResults:  r.rejected,
		BatchesReduced:   r.batches,
		TallyMerges:      r.merges,
		JobsSubmitted:    r.submitted,
		JobsResumed:      r.resumed,
		JobsReplayed:     r.replayed,
		Policy:           r.policy.Name(),
		Admission:        r.admission.Name(),
	}
	s.CacheEntries, s.CacheHits, s.CacheMisses = r.cache.stats()
	if len(r.tenants) > 0 {
		s.Tenants = make(map[string]TenantStat, len(r.tenants))
		for name, ts := range r.tenants {
			s.Tenants[name] = TenantStat{
				Weight:    r.opts.Tenants.Weight(name),
				Submitted: ts.submitted,
				Resumed:   ts.resumed,
				Shed:      ts.shed,
				Photons:   ts.photons,
			}
		}
		for _, j := range r.active {
			t := s.Tenants[j.spec.Tenant]
			t.ActiveJobs++
			s.Tenants[j.spec.Tenant] = t
		}
	}
	for _, j := range r.order {
		switch j.state {
		case StateQueued:
			s.JobsQueued++
		case StateRunning:
			s.JobsRunning++
		case StateDone:
			s.JobsDone++
		case StateCanceled:
			s.JobsCanceled++
		}
		// Only live jobs contribute queue depth: a job leaving the active
		// states (cancel, early precision finalize) sheds its chunks at
		// that transition, and any it could not shed — results mid-merge,
		// batches still buffered on workers — must not be reported as
		// schedulable backlog for a job the fleet will never serve again.
		if j.activeLocked() {
			s.PendingChunks += len(j.pending)
			s.OutstandingChunks += len(j.outstanding)
		}
	}
	return s
}

// TenantStatus is one tenant's live view behind GET /tenants: accounting,
// scheduling weight, and — under a token-bucket admission policy — the
// current bucket levels.
type TenantStatus struct {
	Name       string  `json:"name"`
	Weight     float64 `json:"weight"`
	ActiveJobs int     `json:"activeJobs"`
	Submitted  int64   `json:"submitted"`
	Resumed    int64   `json:"resumed,omitempty"`
	Shed       int64   `json:"shed"`
	Photons    int64   `json:"photons"`
	// Bucket state, present only when the admission policy keeps buckets.
	Class        *TenantClass `json:"class,omitempty"`
	JobTokens    *float64     `json:"jobTokens,omitempty"`
	PhotonTokens *float64     `json:"photonTokens,omitempty"`
}

// Tenants snapshots every tenant the registry knows about — seen by a
// submission, named in the configured table, or holding live admission
// buckets — sorted by name.
func (r *Registry) Tenants() []TenantStatus {
	byName := make(map[string]*TenantStatus)
	get := func(name string) *TenantStatus {
		t, ok := byName[name]
		if !ok {
			t = &TenantStatus{Name: name, Weight: r.opts.Tenants.Weight(name)}
			byName[name] = t
		}
		return t
	}
	r.mu.Lock()
	for name, ts := range r.tenants {
		t := get(name)
		t.Submitted, t.Resumed, t.Shed, t.Photons = ts.submitted, ts.resumed, ts.shed, ts.photons
	}
	for _, j := range r.active {
		get(j.spec.Tenant).ActiveJobs++
	}
	r.mu.Unlock()
	if r.opts.Tenants != nil {
		for name := range r.opts.Tenants.Tenants {
			get(name)
		}
	}
	// Levels takes the admission policy's own lock; call it off r.mu.
	for _, lv := range r.admission.Levels() {
		t := get(lv.Tenant)
		class, jobs, photons := lv.Class, lv.JobTokens, lv.PhotonTokens
		t.Class, t.JobTokens, t.PhotonTokens = &class, &jobs, &photons
	}
	out := make([]TenantStatus, 0, len(byName))
	for _, t := range byName {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
