package service

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Journal is the registry's crash-durability plane: a thin schema layer
// over a wal.Log that records every control-plane transition — job
// accepted, chunk batches reduced, amortized tally snapshots, finalize,
// cancel — so a restarted mcqueue replays its way back to the exact job
// set a SIGKILL interrupted, rather than depending on the polite-death
// SIGTERM checkpoint pass.
//
// The write policy is availability over durability-at-any-cost: an
// append failure is logged and the registry keeps serving (the journal
// degrades to the checkpoint behaviour it subsumes), and appends happen
// off the registry and reduction locks, so the fleet's hot path never
// waits on storage. What replay restores is therefore bounded by the
// fsync policy — and by the snapshot cadence, since chunk tallies are
// pure functions of (seed, stream, fan): anything past the last snapshot
// is recomputed, not lost, and the resumed tally is identical to an
// uninterrupted run's.
type Journal struct {
	wlog    *wal.Log
	opts    JournalOptions
	log     *slog.Logger
	acceptC *acceptCodec

	compacting atomic.Bool

	mu        sync.Mutex
	sinceSnap map[Key]int // reduced chunks since each job's last snapshot
}

// Journal defaults.
const (
	DefaultSnapshotEvery = 64
	DefaultCompactBytes  = 64 << 20
)

// JournalOptions tune the journal's amortization knobs.
type JournalOptions struct {
	// SnapshotEvery appends a full tally snapshot after that many reduced
	// chunks per job (0 means DefaultSnapshotEvery). Smaller means less
	// recompute after a crash, more journal bytes.
	SnapshotEvery int
	// CompactBytes triggers a snapshot-based compaction once the log
	// exceeds it (0 means DefaultCompactBytes, negative disables the
	// size trigger; CompactJournal still works).
	CompactBytes int64
	// Logger, if set, receives journal warnings (nil discards).
	Logger *slog.Logger
}

// NewJournal wraps an opened wal.Log in the registry's record schema.
// Pass it in Options.Journal, then fold the log's replayed records back
// with Replay before serving traffic.
func NewJournal(l *wal.Log, opts JournalOptions) *Journal {
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.CompactBytes == 0 {
		opts.CompactBytes = DefaultCompactBytes
	}
	if opts.Logger == nil {
		opts.Logger = obs.NopLogger()
	}
	return &Journal{wlog: l, opts: opts, log: opts.Logger,
		acceptC: newAcceptCodec(), sinceSnap: make(map[Key]int)}
}

// Close releases the journal's write-ahead log. It is idempotent and
// nil-safe: the SIGTERM drain path and a failover teardown can both close
// the same journal, and the second call is a no-op returning nil (the
// underlying wal.Log carries the same guarantee). Appends after Close
// fail cleanly — logged and dropped like any other append failure, per
// the journal's availability-over-durability write policy.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	return j.wlog.Close()
}

// Record payloads. Only the cold accept record is gob-encoded (it
// carries the arbitrarily-structured spec, once per job); every
// high-rate record — chunk batches, snapshots, finalize/cancel marks —
// is hand-framed binary, because a fresh gob encoder re-sends full type
// descriptions and a fresh decoder recompiles its engines per record,
// which at service-plane job rates cost ~20% of control-plane
// throughput. Snapshots carry no spec at all: replay takes it from the
// job's accept record, which always precedes them (Submit journals the
// accept first, and compaction/resume rewrite an accept alongside each
// snapshot). The WAL sees only opaque bytes either way.
type walAccepted struct {
	Key  Key
	Spec JobSpec
}

// Binary record layouts (all varints are unsigned):
//
//	chunks:   key[32] · count · chunk-id*
//	mark:     key[32]                       (finalize and cancel)
//	snapshot: key[32] · flags · nchunks · count · chunk-id* · [compact tally]
//
// The tally, present when flags&snapHasTally, is the exact bit-preserving
// compact codec from the result plane (mc.AppendTally), so a replayed
// tally merges to byte-identical results.
const (
	snapFinal    = 1 << 0
	snapHasTally = 1 << 1
)

// snapParts is a decoded snapshot record — Snapshot minus the spec,
// which replay grafts back from the accept record.
type snapParts struct {
	final     bool
	nChunks   int
	completed []int
	tally     *mc.Tally
}

var errBadRecord = errors.New("service: malformed journal record")

func appendKeyRec(key Key) []byte {
	return append([]byte(nil), key[:]...)
}

func decodeKeyRec(data []byte) (Key, error) {
	var k Key
	if len(data) < len(k) {
		return k, errBadRecord
	}
	copy(k[:], data)
	return k, nil
}

func encodeChunksRec(key Key, chunks []int) []byte {
	buf := make([]byte, 0, len(key)+1+2*len(chunks))
	buf = append(buf, key[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(chunks)))
	for _, c := range chunks {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

func decodeSnapshotRec(data []byte) (Key, snapParts, error) {
	var p snapParts
	key, err := decodeKeyRec(data)
	if err != nil {
		return key, p, err
	}
	rest := data[len(key):]
	if len(rest) < 1 {
		return key, p, errBadRecord
	}
	flags := rest[0]
	rest = rest[1:]
	p.final = flags&snapFinal != 0
	uvarint := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	nc, ok := uvarint()
	if !ok || nc > 1<<31 {
		return key, p, errBadRecord
	}
	p.nChunks = int(nc)
	count, ok := uvarint()
	if !ok || count > nc {
		return key, p, errBadRecord
	}
	p.completed = make([]int, 0, count)
	for range count {
		id, ok := uvarint()
		if !ok || id >= nc {
			return key, p, errBadRecord
		}
		p.completed = append(p.completed, int(id))
	}
	if flags&snapHasTally != 0 {
		t, err := mc.DecodeTally(rest)
		if err != nil {
			return key, p, fmt.Errorf("service: snapshot tally: %w", err)
		}
		p.tally = t
	}
	return key, p, nil
}

// snapshotRecord encodes a job's current resumable state directly from
// the live job under its reduction + registry locks (the order reducers
// use), so the record never observes a merge without its completion mark
// or vice versa. Encoding in place — rather than materialising a
// Snapshot deep copy first, as the checkpoint path does — matters: the
// journal snapshots on the reduction path, and the deep copy's gob
// round-trip tripled its cost.
func (jl *Journal) snapshotRecord(j *Job, final bool) []byte {
	j.redMu.Lock()
	j.reg.mu.Lock()
	defer j.redMu.Unlock()
	defer j.reg.mu.Unlock()
	buf := make([]byte, 0, 1024)
	buf = append(buf, j.key[:]...)
	var flags byte
	if final {
		flags |= snapFinal
	}
	if j.tally != nil {
		flags |= snapHasTally
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(j.nChunks))
	count := 0
	for id := 0; id < j.nChunks; id++ {
		if j.completed[id] {
			count++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(count))
	for id := 0; id < j.nChunks; id++ {
		if j.completed[id] {
			buf = binary.AppendUvarint(buf, uint64(id))
		}
	}
	if j.tally != nil {
		buf = mc.AppendTally(buf, j.tally)
	}
	return buf
}

// acceptCodec gob-encodes accept records on a persistent stream. A fresh
// gob encoder re-sends the full type description of JobSpec/mc.Spec with
// every record (~25× the cost of encoding the values); a persistent
// encoder sends descriptors once and values after. Each record is
// prefixed with the stream's 8-byte generation id so replay can feed the
// records of one generation, in log order, through one matching decoder
// — the concatenation of a generation's records is exactly the byte
// stream its encoder produced. A generation's descriptors live in its
// first record, so a torn tail (which can only lose the last record)
// never strands a decodable record; an append *failure* mid-generation
// could, which is why appendAccept resets to a fresh generation on any
// error. Compaction also resets: it rewrites the log with a new
// generation's records and deletes the old prefix, and post-compaction
// appends continue the new generation whose descriptors the compacted
// segment now holds.
type acceptCodec struct {
	mu  sync.Mutex
	gen uint64
	buf bytes.Buffer
	enc *gob.Encoder
}

func newAcceptCodec() *acceptCodec {
	c := &acceptCodec{}
	c.resetLocked()
	return c
}

// resetLocked starts a fresh generation (random id, fresh encoder).
func (c *acceptCodec) resetLocked() {
	var g [8]byte
	rand.Read(g[:]) // never fails (go ≥ 1.24)
	c.gen = binary.LittleEndian.Uint64(g[:])
	c.buf.Reset()
	c.enc = gob.NewEncoder(&c.buf)
}

// encodeLocked returns one generation-prefixed accept record.
func (c *acceptCodec) encodeLocked(v walAccepted) ([]byte, error) {
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		return nil, err
	}
	out := make([]byte, 8+c.buf.Len())
	binary.LittleEndian.PutUint64(out, c.gen)
	copy(out[8:], c.buf.Bytes())
	return out, nil
}

// acceptDecoder replays accept records: one persistent gob decoder per
// generation, fed each record's bytes in log order. A decode error
// poisons its generation's stream state, so the generation is tombstoned
// and its later records are skipped rather than misread.
type acceptDecoder struct {
	streams map[uint64]*acceptStream
}

type acceptStream struct {
	feed sliceFeeder
	dec  *gob.Decoder
	dead bool
}

// sliceFeeder is an io.Reader over a replaceable slice — the decoder's
// window onto the current record's bytes.
type sliceFeeder struct{ data []byte }

func (f *sliceFeeder) Read(p []byte) (int, error) {
	if len(f.data) == 0 {
		return 0, io.EOF
	}
	n := copy(p, f.data)
	f.data = f.data[n:]
	return n, nil
}

func (ad *acceptDecoder) decode(data []byte) (walAccepted, error) {
	var a walAccepted
	if len(data) < 8 {
		return a, errBadRecord
	}
	gen := binary.LittleEndian.Uint64(data)
	st := ad.streams[gen]
	if st == nil {
		st = &acceptStream{}
		st.dec = gob.NewDecoder(&st.feed)
		if ad.streams == nil {
			ad.streams = make(map[uint64]*acceptStream)
		}
		ad.streams[gen] = st
	}
	if st.dead {
		return a, fmt.Errorf("service: accept record in poisoned stream %016x", gen)
	}
	st.feed.data = data[8:]
	if err := st.dec.Decode(&a); err != nil {
		st.dead = true
		return a, fmt.Errorf("service: accept record: %w", err)
	}
	if len(st.feed.data) != 0 {
		st.dead = true
		return a, errBadRecord
	}
	return a, nil
}

// appendAccept encodes and appends one accept record; failures are
// logged, never propagated (see the type comment's availability
// contract). Encode and append stay inside one critical section so
// records land in the log in stream order — a generation's first record
// carries its type descriptors, so a reordering would strand the
// overtaking record at replay. An error resets the generation: the
// failed record may hold descriptors (or a first-use type) that later
// records of this generation would silently depend on.
func (jl *Journal) appendAccept(v walAccepted) {
	jl.acceptC.mu.Lock()
	defer jl.acceptC.mu.Unlock()
	data, err := jl.acceptC.encodeLocked(v)
	if err == nil {
		err = jl.wlog.Append(wal.RecJobAccepted, data)
	}
	if err != nil {
		jl.acceptC.resetLocked()
		jl.log.Error("journal append failed", "type", int(wal.RecJobAccepted), "err", err)
	}
}

// appendRaw appends pre-framed bytes under the same availability
// contract.
func (jl *Journal) appendRaw(t wal.RecordType, data []byte) {
	if err := jl.wlog.Append(t, data); err != nil {
		jl.log.Error("journal append failed", "type", int(t), "err", err)
	}
}

// jobAccepted journals a fresh admitted submission. The spec is a copy
// taken under the registry lock (absorbParamsLocked may mutate the live
// job's copy concurrently).
func (jl *Journal) jobAccepted(key Key, spec JobSpec) {
	if jl == nil {
		return
	}
	jl.appendAccept(walAccepted{Key: key, Spec: spec})
}

// chunksReduced journals a reduced chunk batch and, every SnapshotEvery
// reduced chunks per job, a full tally snapshot. finished routes to the
// finalize path instead (final snapshot + mark) — it must run before
// sealJob releases the job's waiters, while the tally is still
// guaranteed quiescent. Called with no registry or reduction locks held.
func (jl *Journal) chunksReduced(r *Registry, j *Job, chunks []int, finished bool) {
	if jl == nil {
		return
	}
	jl.appendRaw(wal.RecChunksReduced, encodeChunksRec(j.key, chunks))
	if finished {
		jl.finalized(j)
		return
	}
	jl.mu.Lock()
	jl.sinceSnap[j.key] += len(chunks)
	due := jl.sinceSnap[j.key] >= jl.opts.SnapshotEvery
	if due {
		jl.sinceSnap[j.key] = 0
	}
	jl.mu.Unlock()
	if due {
		jl.snapshot(j, false)
	}
	jl.maybeCompact(r)
}

// snapshot journals the job's current resumable state.
func (jl *Journal) snapshot(j *Job, final bool) {
	jl.appendRaw(wal.RecSnapshot, jl.snapshotRecord(j, final))
}

// finalized journals a job's completion: its final snapshot (replay
// re-seeds the result cache from it) and the finalize mark.
func (jl *Journal) finalized(j *Job) {
	if jl == nil {
		return
	}
	jl.snapshot(j, true)
	jl.appendRaw(wal.RecJobFinalized, appendKeyRec(j.key))
	jl.mu.Lock()
	delete(jl.sinceSnap, j.key)
	jl.mu.Unlock()
}

// canceled journals a cancel; replay drops the job.
func (jl *Journal) canceled(key Key) {
	if jl == nil {
		return
	}
	jl.appendRaw(wal.RecJobCanceled, appendKeyRec(key))
	jl.mu.Lock()
	delete(jl.sinceSnap, key)
	jl.mu.Unlock()
}

// acceptedSpec copies the job's spec under the registry lock
// (absorbParamsLocked may mutate the live copy concurrently) for an
// accept record.
func acceptedSpec(j *Job) JobSpec {
	j.reg.mu.Lock()
	spec := j.spec
	sp := *j.spec.Spec
	spec.Spec = &sp
	j.reg.mu.Unlock()
	return spec
}

// resumed journals a job restored from a legacy checkpoint (or replay
// itself) so the journal is self-contained going forward. The accept
// record must precede the snapshot: snapshots carry no spec.
func (jl *Journal) resumed(j *Job, complete bool) {
	if jl == nil {
		return
	}
	jl.appendAccept(walAccepted{Key: j.key, Spec: acceptedSpec(j)})
	jl.snapshot(j, complete)
	if complete {
		jl.appendRaw(wal.RecJobFinalized, appendKeyRec(j.key))
	}
}

// maybeCompact runs a compaction when the log has outgrown the trigger,
// at most one at a time; losers of the CAS just skip (the winner is
// already shrinking the log).
func (jl *Journal) maybeCompact(r *Registry) {
	if jl.opts.CompactBytes < 0 || jl.wlog.Size() < jl.opts.CompactBytes {
		return
	}
	if !jl.compacting.CompareAndSwap(false, true) {
		return
	}
	defer jl.compacting.Store(false)
	if err := jl.compact(r); err != nil {
		jl.log.Error("journal compaction failed", "err", err)
	}
}

// compact rewrites the log to one accept + snapshot pair per retained
// job (snapshots carry no spec, so each needs its accept record
// alongside): live jobs as resumable snapshots, finished ones with the
// finalize mark added (so a restart still re-seeds the result cache).
// History before the snapshots — older chunk batches and canceled jobs —
// is dropped; a canceled job simply has nothing to replay.
func (jl *Journal) compact(r *Registry) error {
	// Hold the accept codec for the whole rewrite: Compact deletes every
	// existing record, so an accept append racing the gather→Compact
	// window would be silently erased — its job unreplayable, since
	// snapshots carry no spec. Blocking accepts (submits are rare next to
	// reductions) closes the window, and the generation reset below means
	// the compacted log is a self-contained stream: its first accept
	// record carries the new generation's type descriptors, and
	// post-compaction accepts continue that same generation.
	jl.acceptC.mu.Lock()
	defer jl.acceptC.mu.Unlock()
	jl.acceptC.resetLocked()
	r.mu.Lock()
	jobs := make([]*Job, 0, len(r.order))
	states := make([]JobState, 0, len(r.order))
	for _, j := range r.order {
		if j.state == StateCanceled {
			continue
		}
		jobs = append(jobs, j)
		states = append(states, j.state)
	}
	r.mu.Unlock()
	recs := make([]wal.Record, 0, 3*len(jobs))
	for i, j := range jobs {
		accept, err := jl.acceptC.encodeLocked(walAccepted{Key: j.key, Spec: acceptedSpec(j)})
		if err != nil {
			return err
		}
		recs = append(recs, wal.Record{Type: wal.RecJobAccepted, Data: accept})
		// snapshotRecord takes the job's own locks, so a job that
		// finished between the gather above and here yields a complete
		// snapshot — replay makes it born-Done either way. The gathered
		// state only decides whether to add the finalize mark.
		recs = append(recs, wal.Record{Type: wal.RecSnapshot,
			Data: jl.snapshotRecord(j, states[i] == StateDone)})
		if states[i] == StateDone {
			recs = append(recs, wal.Record{Type: wal.RecJobFinalized, Data: appendKeyRec(j.key)})
		}
	}
	jl.mu.Lock()
	clear(jl.sinceSnap)
	jl.mu.Unlock()
	return jl.wlog.Compact(recs)
}

// CompactJournal rewrites the journal down to one snapshot per retained
// job — mcqueue's SIGTERM path calls it so a polite shutdown leaves a
// minimal log to replay. A no-op without a journal or when a
// size-triggered compaction is already running.
func (r *Registry) CompactJournal() error {
	jl := r.journal
	if jl == nil {
		return nil
	}
	if !jl.compacting.CompareAndSwap(false, true) {
		return nil
	}
	defer jl.compacting.Store(false)
	return jl.compact(r)
}

// Replay folds recovered records into the registry, re-queueing every
// job the crash interrupted. Fold semantics: later records supersede
// earlier ones per job key — the last snapshot wins, a finalize mark
// makes the job born-Done from its final snapshot (re-seeding the result
// cache), a cancel mark drops it. Chunk-batch records past the last
// snapshot are progress markers only: those chunks recompute, which is
// safe because a chunk tally is a pure function of (seed, stream, fan).
// Returns the number of jobs restored (live or done). Replayed
// submissions bypass admission — their work was admitted before the
// crash — and count into Stats.JobsReplayed.
func (jl *Journal) Replay(r *Registry, records []wal.Record) (int, error) {
	if jl == nil || len(records) == 0 {
		return 0, nil
	}
	type jobState struct {
		spec      *JobSpec
		snap      *snapParts
		finalized bool
		canceled  bool
	}
	states := make(map[Key]*jobState)
	var order []Key
	get := func(k Key) *jobState {
		s := states[k]
		if s == nil {
			s = &jobState{}
			states[k] = s
			order = append(order, k)
		}
		return s
	}
	skipped := 0
	var ad acceptDecoder
	for _, rec := range records {
		switch rec.Type {
		case wal.RecJobAccepted:
			a, err := ad.decode(rec.Data)
			if err != nil {
				skipped++
				jl.log.Warn("journal replay: accept record skipped", "err", err)
				continue
			}
			sp := a.Spec
			get(a.Key).spec = &sp
		case wal.RecSnapshot:
			key, parts, err := decodeSnapshotRec(rec.Data)
			if err != nil {
				skipped++
				continue
			}
			get(key).snap = &parts
		case wal.RecJobFinalized:
			key, err := decodeKeyRec(rec.Data)
			if err != nil {
				skipped++
				continue
			}
			get(key).finalized = true
		case wal.RecJobCanceled:
			key, err := decodeKeyRec(rec.Data)
			if err != nil {
				skipped++
				continue
			}
			get(key).canceled = true
		case wal.RecChunksReduced:
			// Progress markers; the durable tally behind them is the last
			// snapshot. Nothing to fold.
		default:
			skipped++
		}
	}
	restored := 0
	for _, k := range order {
		s := states[k]
		var err error
		switch {
		case s.canceled:
			continue
		case s.snap != nil && s.spec != nil:
			// Live job resumed from its last snapshot, or — when
			// finalized — born Done from its final one. The snapshot
			// record carries no spec; the accept record supplies it.
			snap := Snapshot{
				Spec:      *s.spec,
				NChunks:   s.snap.nChunks,
				Completed: s.snap.completed,
				Tally:     s.snap.tally,
			}
			snap.Spec.replay = true
			_, err = r.SubmitSnapshot(&snap)
		case s.snap != nil:
			// A snapshot whose accept record was lost (an append failure
			// in degraded mode): nothing resumable without the spec.
			skipped++
			jl.log.Warn("journal replay: snapshot without accept record",
				"key", fmt.Sprintf("%x", k[:8]))
			continue
		case s.finalized:
			// A finalize mark whose snapshot was lost (torn away with the
			// tail): nothing resumable. The work is gone from the cache
			// but not from the world — an identical resubmission simply
			// recomputes.
			continue
		case s.spec != nil:
			spec := *s.spec
			spec.replay = true
			_, err = r.Submit(spec)
		default:
			continue
		}
		if err != nil {
			skipped++
			jl.log.Warn("journal replay: job skipped", "err", err)
			continue
		}
		restored++
	}
	if skipped > 0 {
		jl.log.Warn("journal replay: records skipped", "skipped", skipped)
	}
	jl.log.Info("journal replayed", "records", len(records), "jobs", restored)
	return restored, nil
}
