package service

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"
)

// DefaultTenant is the tenant every unattributed submission belongs to
// (empty JobSpec.Tenant and requests without an X-MC-Tenant header).
const DefaultTenant = "default"

// MaxTenantNameLen bounds tenant names at ingress; longer names are a 400.
// Tenant names label metrics series, so the bound also caps label bytes.
const MaxTenantNameLen = 64

// Shed reasons — the `reason` label values of service_jobs_shed_total and
// the Reason field of ShedError.
const (
	// ShedReasonCap: the registry's global MaxActiveJobs cap was reached.
	ShedReasonCap = "cap"
	// ShedReasonTenantRate: the tenant's job-submission token bucket is empty.
	ShedReasonTenantRate = "tenant_rate"
	// ShedReasonTenantQuota: the tenant's photon quota bucket cannot cover
	// the submission's photon cost.
	ShedReasonTenantQuota = "tenant_quota"
)

// ShedError is returned by Registry.Submit when admission refuses a fresh
// job. It wraps ErrOverloaded (so existing errors.Is checks keep working)
// and carries the machine-readable verdict the HTTP layer turns into a
// 429 with a computed Retry-After.
type ShedError struct {
	Tenant     string
	Reason     string // ShedReasonCap | ShedReasonTenantRate | ShedReasonTenantQuota
	RetryAfter time.Duration
	Detail     string
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("%v: tenant %q shed (%s): %s", ErrOverloaded, e.Tenant, e.Reason, e.Detail)
}

func (e *ShedError) Unwrap() error { return ErrOverloaded }

// TenantClass is one tenant's admission and scheduling envelope. The zero
// value is fully open: no rate limit, no photon quota, weight 1.
type TenantClass struct {
	// JobsPerSec refills the tenant's job-submission token bucket;
	// 0 disables job-rate limiting for the tenant.
	JobsPerSec float64 `json:"jobsPerSec,omitempty"`
	// JobBurst is the job bucket's capacity — how many submissions the
	// tenant may burst before the refill rate governs; 0 with a nonzero
	// JobsPerSec means 1.
	JobBurst float64 `json:"jobBurst,omitempty"`
	// PhotonsPerSec refills the tenant's photon quota bucket; 0 disables
	// photon quotas for the tenant.
	PhotonsPerSec float64 `json:"photonsPerSec,omitempty"`
	// PhotonBurst is the photon bucket's capacity — the largest photon
	// cost the tenant can spend at once. A single submission costing more
	// than PhotonBurst is never admissible for this tenant. 0 with a
	// nonzero PhotonsPerSec means 10s of refill (10 * PhotonsPerSec).
	PhotonBurst float64 `json:"photonBurst,omitempty"`
	// Weight is the tenant's share of fleet throughput under the
	// tenant-fair scheduling policy; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
}

// normalize fills the documented zero-value defaults that depend on other
// fields (burst capacities).
func (c TenantClass) normalize() TenantClass {
	if c.JobsPerSec > 0 && c.JobBurst <= 0 {
		c.JobBurst = 1
	}
	if c.PhotonsPerSec > 0 && c.PhotonBurst <= 0 {
		c.PhotonBurst = 10 * c.PhotonsPerSec
	}
	if c.Weight <= 0 {
		c.Weight = 1
	}
	return c
}

// TenantTable maps tenant names to classes; tenants not listed get the
// Default class. This is the mcqueue -tenants <file.json> payload.
type TenantTable struct {
	Default TenantClass            `json:"default"`
	Tenants map[string]TenantClass `json:"tenants"`
}

// Class returns the (normalized) class for a tenant name; nil-safe.
func (t *TenantTable) Class(name string) TenantClass {
	if t == nil {
		return TenantClass{}.normalize()
	}
	if c, ok := t.Tenants[name]; ok {
		return c.normalize()
	}
	return t.Default.normalize()
}

// Weight returns the tenant's scheduling weight (1 for unknown tenants and
// nil tables) — the outer weight of the two-level fair-share hierarchy.
func (t *TenantTable) Weight(name string) float64 { return t.Class(name).Weight }

// LoadTenantTable reads a -tenants JSON file. Unknown fields are rejected
// so a typoed "jobsPersec" fails loudly at startup instead of silently
// leaving a tenant unlimited.
func LoadTenantTable(path string) (*TenantTable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("service: tenant table: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var t TenantTable
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("service: tenant table %s: %w", path, err)
	}
	for name := range t.Tenants {
		if name == "" || len(name) > MaxTenantNameLen {
			return nil, fmt.Errorf("service: tenant table %s: invalid tenant name %q", path, name)
		}
	}
	return &t, nil
}

// AdmissionVerdict is one admission decision. When OK is false, Reason and
// RetryAfter say why and when retrying could succeed.
type AdmissionVerdict struct {
	OK         bool
	Reason     string
	RetryAfter time.Duration
	Detail     string
}

// TenantLevel is one tenant's live bucket state (GET /tenants).
type TenantLevel struct {
	Tenant       string      `json:"tenant"`
	Class        TenantClass `json:"class"`
	JobTokens    float64     `json:"jobTokens"`
	PhotonTokens float64     `json:"photonTokens"`
}

// AdmissionPolicy decides, per tenant, whether a fresh submission is
// accepted. The registry probes before paying Spec.Build and admits
// authoritatively under its lock, so implementations must be cheap and
// goroutine-safe. Cache hits and coalesced submissions are consulted with
// zero photon cost (Admit(tenant, 0) — one job token, no quota spend);
// checkpoint resumes and journal replay are never consulted.
type AdmissionPolicy interface {
	Name() string
	// Probe reports whether a submission costing photons would be admitted
	// right now, without spending any tokens.
	Probe(tenant string, photons int64) AdmissionVerdict
	// Admit spends the submission's tokens if available; a refused Admit
	// spends nothing.
	Admit(tenant string, photons int64) AdmissionVerdict
	// Levels snapshots per-tenant bucket state for introspection; policies
	// that keep no per-tenant state return nil.
	Levels() []TenantLevel
}

// alwaysAdmit is the open-door policy: every submission is admitted.
type alwaysAdmit struct{}

// AlwaysAdmit returns the default admission policy: no per-tenant limits
// (the registry's MaxActiveJobs cap, if set, still applies).
func AlwaysAdmit() AdmissionPolicy { return alwaysAdmit{} }

func (alwaysAdmit) Name() string                         { return "always-admit" }
func (alwaysAdmit) Probe(string, int64) AdmissionVerdict { return AdmissionVerdict{OK: true} }
func (alwaysAdmit) Admit(string, int64) AdmissionVerdict { return AdmissionVerdict{OK: true} }
func (alwaysAdmit) Levels() []TenantLevel                { return nil }

// bucket is one token bucket: level tokens now, refilled at rate/sec up to
// burst. rate <= 0 disables the dimension (always full).
type bucket struct {
	rate, burst float64
	level       float64
	last        time.Time
}

// refill advances the bucket to now.
func (b *bucket) refill(now time.Time) {
	if b.rate <= 0 {
		return
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.level += dt * b.rate
		if b.level > b.burst {
			b.level = b.burst
		}
	}
	b.last = now
}

// wait returns how long until the bucket holds n tokens at its refill rate.
func (b *bucket) wait(n float64) time.Duration {
	deficit := n - b.level
	if deficit <= 0 || b.rate <= 0 {
		return 0
	}
	return time.Duration(deficit / b.rate * float64(time.Second))
}

// TokenBucket is the per-tenant token-bucket admission policy: one bucket
// on submissions per second and one on photons, per tenant, refilled on an
// injected clock so tests are deterministic. A submission needs one job
// token and its photon cost in photon tokens; refusal spends nothing.
type TokenBucket struct {
	table *TenantTable
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tenantBuckets
}

type tenantBuckets struct {
	class   TenantClass
	jobs    bucket
	photons bucket
}

// NewTokenBucket builds the policy from a tenant table. now is the refill
// clock; nil means time.Now.
func NewTokenBucket(table *TenantTable, now func() time.Time) *TokenBucket {
	if now == nil {
		now = time.Now
	}
	return &TokenBucket{table: table, now: now, buckets: make(map[string]*tenantBuckets)}
}

func (tb *TokenBucket) Name() string { return "token-bucket" }

func (tb *TokenBucket) Probe(tenant string, photons int64) AdmissionVerdict {
	return tb.eval(tenant, photons, false)
}

func (tb *TokenBucket) Admit(tenant string, photons int64) AdmissionVerdict {
	return tb.eval(tenant, photons, true)
}

func (tb *TokenBucket) eval(tenant string, photons int64, debit bool) AdmissionVerdict {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	b := tb.bucketsLocked(tenant)
	now := tb.now()
	b.jobs.refill(now)
	b.photons.refill(now)
	// Check both dimensions before debiting either, so a quota refusal
	// does not leak the job token it never used.
	if b.jobs.rate > 0 && b.jobs.level < 1 {
		return AdmissionVerdict{
			Reason:     ShedReasonTenantRate,
			RetryAfter: ceilSecond(b.jobs.wait(1)),
			Detail: fmt.Sprintf("job rate %.3g/s exceeded (burst %.3g)",
				b.jobs.rate, b.jobs.burst),
		}
	}
	cost := float64(photons)
	if b.photons.rate > 0 && b.photons.level < cost {
		v := AdmissionVerdict{
			Reason:     ShedReasonTenantQuota,
			RetryAfter: ceilSecond(b.photons.wait(cost)),
			Detail: fmt.Sprintf("photon quota exceeded (cost %d, %.0f available, refill %.3g/s)",
				photons, b.photons.level, b.photons.rate),
		}
		if cost > b.photons.burst {
			v.Detail = fmt.Sprintf("photon cost %d exceeds tenant burst capacity %.0f",
				photons, b.photons.burst)
		}
		return v
	}
	if debit {
		if b.jobs.rate > 0 {
			b.jobs.level--
		}
		if b.photons.rate > 0 {
			b.photons.level -= cost
		}
	}
	return AdmissionVerdict{OK: true}
}

// Levels snapshots every tenant bucket ever touched, refilled to now,
// sorted by tenant name.
func (tb *TokenBucket) Levels() []TenantLevel {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := tb.now()
	out := make([]TenantLevel, 0, len(tb.buckets))
	for name, b := range tb.buckets {
		b.jobs.refill(now)
		b.photons.refill(now)
		jobs, photons := b.jobs.level, b.photons.level
		if b.jobs.rate <= 0 {
			jobs = b.jobs.burst // unlimited dimension reads as full
		}
		if b.photons.rate <= 0 {
			photons = b.photons.burst
		}
		out = append(out, TenantLevel{
			Tenant: name, Class: b.class, JobTokens: jobs, PhotonTokens: photons,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// bucketsLocked lazily materialises a tenant's buckets, born full.
func (tb *TokenBucket) bucketsLocked(tenant string) *tenantBuckets {
	b, ok := tb.buckets[tenant]
	if !ok {
		c := tb.table.Class(tenant)
		b = &tenantBuckets{
			class:   c,
			jobs:    bucket{rate: c.JobsPerSec, burst: c.JobBurst, level: c.JobBurst, last: tb.now()},
			photons: bucket{rate: c.PhotonsPerSec, burst: c.PhotonBurst, level: c.PhotonBurst, last: tb.now()},
		}
		tb.buckets[tenant] = b
	}
	return b
}

// ceilSecond rounds a wait up to whole seconds with a 1s floor — the
// granularity of the HTTP Retry-After header.
func ceilSecond(d time.Duration) time.Duration {
	if d <= 0 {
		return time.Second
	}
	if rem := d % time.Second; rem != 0 {
		d += time.Second - rem
	}
	return d
}

// admissionPhotons is the photon cost a submission debits from its
// tenant's quota: the fixed budget, or a targeted job's guaranteed minimum
// (its true cost is decided later by the stopping rule). Call after
// normalize so MinPhotons is filled.
func (s *JobSpec) admissionPhotons() int64 {
	if s.Target != nil {
		return s.Target.MinPhotons
	}
	return s.TotalPhotons
}
