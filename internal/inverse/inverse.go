// Package inverse solves the inverse problem the paper's forward model
// exists for ("a forward model of the propagation of light through the
// head is useful in solving the inverse problem in optical imaging
// studies"): recovering the absorption and transport scattering
// coefficients of a semi-infinite medium from a measured spatially
// resolved reflectance profile R(ρ), by least-squares fitting the
// diffusion dipole model with a Nelder–Mead simplex search in
// log-parameter space.
package inverse

import (
	"fmt"
	"math"

	"repro/internal/diffusion"
	"repro/internal/optics"
)

// Measurement is a spatially resolved reflectance profile: R[i] is the
// diffuse reflectance (mm⁻² per incident photon) at radius Rho[i] (mm).
// Zero or negative samples are ignored by the fit.
type Measurement struct {
	Rho []float64
	R   []float64
}

// validated returns the usable (ρ, R) pairs.
func (m Measurement) validated() (rho, r []float64, err error) {
	if len(m.Rho) != len(m.R) {
		return nil, nil, fmt.Errorf("inverse: %d radii but %d reflectances", len(m.Rho), len(m.R))
	}
	for i := range m.Rho {
		if m.Rho[i] > 0 && m.R[i] > 0 && !math.IsInf(m.R[i], 0) && !math.IsNaN(m.R[i]) {
			rho = append(rho, m.Rho[i])
			r = append(r, m.R[i])
		}
	}
	if len(rho) < 4 {
		return nil, nil, fmt.Errorf("inverse: only %d usable samples, need ≥4", len(rho))
	}
	return rho, r, nil
}

// Result is a recovered parameter pair with fit diagnostics.
type Result struct {
	// MuA and MuSPrime are the fitted coefficients, mm⁻¹.
	MuA      float64
	MuSPrime float64
	// Residual is the final mean squared log-reflectance error.
	Residual float64
	// Evaluations counts forward-model evaluations.
	Evaluations int
}

// Properties returns the fitted coefficients as optics.Properties with the
// given anisotropy and index (µs = µs′/(1−g)).
func (r Result) Properties(g, n float64) optics.Properties {
	return optics.FromTransport(r.MuSPrime, g, r.MuA, n)
}

// Options tune the fit.
type Options struct {
	// InitMuA / InitMuSPrime seed the search; zero picks generic tissue
	// values (0.01 / 1.0 mm⁻¹).
	InitMuA      float64
	InitMuSPrime float64
	// MaxEvaluations bounds the search (default 2000).
	MaxEvaluations int
	// Tol is the simplex-size convergence tolerance (default 1e-7).
	Tol float64
}

func (o *Options) normalize() {
	if o.InitMuA <= 0 {
		o.InitMuA = 0.01
	}
	if o.InitMuSPrime <= 0 {
		o.InitMuSPrime = 1.0
	}
	if o.MaxEvaluations <= 0 {
		o.MaxEvaluations = 2000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
}

// FitSemiInfinite recovers (µa, µs′) of a semi-infinite medium with tissue
// index n against outside index nOut from the measured profile.
func FitSemiInfinite(m Measurement, n, nOut float64, opt Options) (Result, error) {
	rho, robs, err := m.validated()
	if err != nil {
		return Result{}, err
	}
	opt.normalize()

	logObs := make([]float64, len(robs))
	for i, v := range robs {
		logObs[i] = math.Log(v)
	}

	evals := 0
	objective := func(p [2]float64) float64 {
		evals++
		mua := math.Exp(p[0])
		musp := math.Exp(p[1])
		med := diffusion.Medium{MuA: mua, MuSPrime: musp, N: n, NOut: nOut}
		sum := 0.0
		for i, r := range rho {
			model := med.ReflectanceAt(r)
			if model <= 0 || math.IsNaN(model) {
				return math.Inf(1)
			}
			d := math.Log(model) - logObs[i]
			sum += d * d
		}
		return sum / float64(len(rho))
	}

	start := [2]float64{math.Log(opt.InitMuA), math.Log(opt.InitMuSPrime)}
	best, fbest := nelderMead2(objective, start, 0.7, opt.Tol, opt.MaxEvaluations, &evals)

	res := Result{
		MuA:         math.Exp(best[0]),
		MuSPrime:    math.Exp(best[1]),
		Residual:    fbest,
		Evaluations: evals,
	}
	if math.IsInf(fbest, 1) || math.IsNaN(fbest) {
		return res, fmt.Errorf("inverse: fit diverged")
	}
	return res, nil
}

// nelderMead2 is a 2-D Nelder–Mead simplex minimiser (standard
// reflection/expansion/contraction/shrink coefficients).
func nelderMead2(f func([2]float64) float64, start [2]float64, scale, tol float64,
	maxEvals int, evals *int) ([2]float64, float64) {

	type vertex struct {
		x [2]float64
		f float64
	}
	simplex := [3]vertex{
		{x: start},
		{x: [2]float64{start[0] + scale, start[1]}},
		{x: [2]float64{start[0], start[1] + scale}},
	}
	for i := range simplex {
		simplex[i].f = f(simplex[i].x)
	}
	sort3 := func() {
		for i := 0; i < 2; i++ {
			for j := i + 1; j < 3; j++ {
				if simplex[j].f < simplex[i].f {
					simplex[i], simplex[j] = simplex[j], simplex[i]
				}
			}
		}
	}
	add := func(a, b [2]float64, s float64) [2]float64 {
		return [2]float64{a[0] + s*b[0], a[1] + s*b[1]}
	}
	sub := func(a, b [2]float64) [2]float64 {
		return [2]float64{a[0] - b[0], a[1] - b[1]}
	}

	for *evals < maxEvals {
		sort3()
		// Convergence: simplex collapsed in both objective and size.
		size := math.Hypot(simplex[2].x[0]-simplex[0].x[0], simplex[2].x[1]-simplex[0].x[1])
		if size < tol && simplex[2].f-simplex[0].f < tol {
			break
		}
		centroid := [2]float64{
			(simplex[0].x[0] + simplex[1].x[0]) / 2,
			(simplex[0].x[1] + simplex[1].x[1]) / 2,
		}
		dir := sub(centroid, simplex[2].x)

		reflect := add(centroid, dir, 1)
		fr := f(reflect)
		switch {
		case fr < simplex[0].f:
			expand := add(centroid, dir, 2)
			fe := f(expand)
			if fe < fr {
				simplex[2] = vertex{expand, fe}
			} else {
				simplex[2] = vertex{reflect, fr}
			}
		case fr < simplex[1].f:
			simplex[2] = vertex{reflect, fr}
		default:
			contract := add(centroid, dir, -0.5)
			fc := f(contract)
			if fc < simplex[2].f {
				simplex[2] = vertex{contract, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i < 3; i++ {
					simplex[i].x = [2]float64{
						(simplex[i].x[0] + simplex[0].x[0]) / 2,
						(simplex[i].x[1] + simplex[0].x[1]) / 2,
					}
					simplex[i].f = f(simplex[i].x)
				}
			}
		}
	}
	sort3()
	return simplex[0].x, simplex[0].f
}
