package inverse

import (
	"math"
	"testing"

	"repro/internal/diffusion"
	"repro/internal/mc"
	"repro/internal/optics"
	"repro/internal/tissue"
)

// synthetic builds a noiseless diffusion-model profile for known truth.
func synthetic(mua, musp, n float64) Measurement {
	med := diffusion.Medium{MuA: mua, MuSPrime: musp, N: n, NOut: 1}
	var m Measurement
	for rho := 2.0; rho <= 15; rho += 0.5 {
		m.Rho = append(m.Rho, rho)
		m.R = append(m.R, med.ReflectanceAt(rho))
	}
	return m
}

func TestExactRecoveryFromSyntheticData(t *testing.T) {
	const mua, musp = 0.02, 1.3
	res, err := FitSemiInfinite(synthetic(mua, musp, 1.4), 1.4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MuA-mua) / mua; rel > 0.01 {
		t.Fatalf("µa recovered %g, want %g (rel %g)", res.MuA, mua, rel)
	}
	if rel := math.Abs(res.MuSPrime-musp) / musp; rel > 0.01 {
		t.Fatalf("µs′ recovered %g, want %g (rel %g)", res.MuSPrime, musp, rel)
	}
	if res.Residual > 1e-8 {
		t.Fatalf("residual %g on noiseless data", res.Residual)
	}
}

func TestRecoveryFromFarStart(t *testing.T) {
	const mua, musp = 0.05, 2.0
	res, err := FitSemiInfinite(synthetic(mua, musp, 1.0), 1.0, 1, Options{
		InitMuA: 0.0005, InitMuSPrime: 20, MaxEvaluations: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MuA-mua) / mua; rel > 0.05 {
		t.Fatalf("µa recovered %g from far start, want %g", res.MuA, mua)
	}
	if rel := math.Abs(res.MuSPrime-musp) / musp; rel > 0.05 {
		t.Fatalf("µs′ recovered %g from far start, want %g", res.MuSPrime, musp)
	}
}

// The real deal: recover optical properties from a Monte Carlo "experiment"
// — the forward model in its inverse-problem role.
func TestRecoveryFromMonteCarloData(t *testing.T) {
	if testing.Short() {
		t.Skip("fits 2×10⁵-photon synthetic MC data; skipped in -short")
	}
	truth := optics.FromTransport(1.0, 0.9, 0.01, 1.0) // matched boundary
	model := tissue.HomogeneousSlab("phantom", truth, 400)
	cfg := &mc.Config{
		Model:  model,
		Radial: &mc.HistSpec{Min: 0, Max: 20, Bins: 40},
	}
	tally, err := mc.Run(cfg, 200000, 77)
	if err != nil {
		t.Fatal(err)
	}
	rho, r := tally.RadialReflectance()

	// Fit over the diffusive range only.
	var m Measurement
	for i := range rho {
		if rho[i] >= 3 && rho[i] <= 14 {
			m.Rho = append(m.Rho, rho[i])
			m.R = append(m.R, r[i])
		}
	}
	res, err := FitSemiInfinite(m, 1.0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Diffusion-model bias plus MC noise: 25 % tolerance on µa, 20 % on µs′.
	if rel := math.Abs(res.MuA-truth.MuA) / truth.MuA; rel > 0.25 {
		t.Fatalf("µa from MC data %g, truth %g (rel %.0f%%)", res.MuA, truth.MuA, 100*rel)
	}
	if rel := math.Abs(res.MuSPrime-truth.MuSPrime()) / truth.MuSPrime(); rel > 0.20 {
		t.Fatalf("µs′ from MC data %g, truth %g (rel %.0f%%)",
			res.MuSPrime, truth.MuSPrime(), 100*rel)
	}
}

func TestMeasurementValidation(t *testing.T) {
	if _, err := FitSemiInfinite(Measurement{Rho: []float64{1, 2}, R: []float64{1}},
		1.4, 1, Options{}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := FitSemiInfinite(Measurement{
		Rho: []float64{1, 2, 3},
		R:   []float64{0, -1, math.NaN()},
	}, 1.4, 1, Options{}); err == nil {
		t.Fatal("degenerate measurement accepted")
	}
}

func TestPropertiesConversion(t *testing.T) {
	res := Result{MuA: 0.02, MuSPrime: 1.8}
	p := res.Properties(0.9, 1.4)
	if math.Abs(p.MuS-18) > 1e-9 {
		t.Fatalf("µs = %g, want 18", p.MuS)
	}
	if p.MuA != 0.02 || p.N != 1.4 {
		t.Fatal("conversion lost fields")
	}
}

func TestFitIsDeterministic(t *testing.T) {
	m := synthetic(0.03, 1.1, 1.4)
	a, err := FitSemiInfinite(m, 1.4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitSemiInfinite(m, 1.4, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.MuA != b.MuA || a.MuSPrime != b.MuSPrime {
		t.Fatal("fit not deterministic")
	}
}
