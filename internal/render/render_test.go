package render

import (
	"bytes"
	"strings"
	"testing"
)

func TestASCIIEmpty(t *testing.T) {
	out := ASCII([][]float64{{0, 0}, {0, 0}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 || lines[0] != "  " {
		t.Fatalf("empty render %q", out)
	}
}

func TestASCIIDensityOrdering(t *testing.T) {
	out := ASCII([][]float64{{0, 1, 100, 10000}})
	row := strings.Split(out, "\n")[0]
	if row[0] != ' ' {
		t.Fatalf("zero voxel rendered as %q", row[0])
	}
	// Glyph density must be non-decreasing with value.
	idx := func(b byte) int { return strings.IndexByte(ramp, b) }
	if !(idx(row[1]) <= idx(row[2]) && idx(row[2]) <= idx(row[3])) {
		t.Fatalf("glyph ordering broken: %q", row)
	}
	if idx(row[1]) < 1 {
		t.Fatal("non-zero voxel must be visible")
	}
	if row[3] != ramp[len(ramp)-1] {
		t.Fatalf("max voxel should use densest glyph, got %q", row[3])
	}
}

func TestFrame(t *testing.T) {
	var buf bytes.Buffer
	Frame(&buf, "title", [][]float64{{1, 2}, {3, 4}}, "x", "z")
	s := buf.String()
	if !strings.Contains(s, "title") || !strings.Contains(s, "+--+") {
		t.Fatalf("frame output %q", s)
	}
	var empty bytes.Buffer
	Frame(&empty, "none", nil, "x", "z")
	if !strings.Contains(empty.String(), "(empty)") {
		t.Fatal("empty frame not flagged")
	}
}

func TestCropDepth(t *testing.T) {
	rows := [][]float64{{1}, {2}, {0}, {0}, {0}, {0}}
	got := CropDepth(rows)
	if len(got) != 4 { // deepest nonzero (1) + 3-row margin, capped at len
		t.Fatalf("cropped to %d rows", len(got))
	}
	// All-zero input stays untouched.
	zero := [][]float64{{0}, {0}}
	if len(CropDepth(zero)) != 2 {
		t.Fatal("all-zero crop misbehaved")
	}
}

func TestDownsample(t *testing.T) {
	// 4×4 averaged into 2×2.
	rows := [][]float64{
		{1, 1, 2, 2},
		{1, 1, 2, 2},
		{3, 3, 4, 4},
		{3, 3, 4, 4},
	}
	got := Downsample(rows, 2, 2)
	if len(got) != 2 || len(got[0]) != 2 {
		t.Fatalf("shape %dx%d", len(got), len(got[0]))
	}
	want := [][]float64{{1, 2}, {3, 4}}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("cell (%d,%d) = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Already small: unchanged.
	same := Downsample(rows, 10, 10)
	if &same[0][0] != &rows[0][0] {
		t.Fatal("small input should pass through")
	}
}

func TestDownsampleRagged(t *testing.T) {
	// Non-divisible sizes must not panic and must conserve shape bounds.
	rows := make([][]float64, 7)
	for i := range rows {
		rows[i] = make([]float64, 5)
		rows[i][i%5] = float64(i)
	}
	got := Downsample(rows, 3, 3)
	if len(got) > 4 || len(got[0]) > 3 {
		t.Fatalf("downsample exceeded bounds: %dx%d", len(got), len(got[0]))
	}
}
