// Package render turns 2-D scalar fields (grid slices and projections) into
// ASCII heat maps for the terminal — the text-mode equivalent of the
// paper's Fig 3/Fig 4 path images.
package render

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// ramp orders glyphs from empty to dense.
const ramp = " .:-=+*#%@"

// ASCII renders rows (a depth×width matrix, row 0 at the top) as an ASCII
// heat map with log-scaled intensity, which matches how photon densities
// spanning decades are usually displayed.
func ASCII(rows [][]float64) string {
	max := 0.0
	for _, row := range rows {
		for _, v := range row {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	if max <= 0 {
		for range rows {
			b.WriteString(strings.Repeat(" ", len(rows[0])))
			b.WriteByte('\n')
		}
		return b.String()
	}
	logMax := math.Log1p(max)
	for _, row := range rows {
		for _, v := range row {
			idx := 0
			if v > 0 {
				frac := math.Log1p(v) / logMax
				idx = int(frac * float64(len(ramp)-1))
				if idx < 1 {
					idx = 1 // any mass at all is visible
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Frame writes the map with a ruled border and axis captions.
func Frame(w io.Writer, title string, rows [][]float64, xLabel, yLabel string) {
	if len(rows) == 0 {
		fmt.Fprintf(w, "%s: (empty)\n", title)
		return
	}
	width := len(rows[0])
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "+%s+  %s →\n", strings.Repeat("-", width), xLabel)
	for _, line := range strings.Split(strings.TrimRight(ASCII(rows), "\n"), "\n") {
		fmt.Fprintf(w, "|%s|\n", line)
	}
	fmt.Fprintf(w, "+%s+  ↓ %s\n", strings.Repeat("-", width), yLabel)
}

// CropDepth trims trailing all-zero rows (deep empty voxels), keeping a
// two-row margin, so shallow features fill the frame.
func CropDepth(rows [][]float64) [][]float64 {
	deepest := -1
	for k, row := range rows {
		for _, v := range row {
			if v > 0 {
				deepest = k
				break
			}
		}
	}
	if deepest < 0 {
		return rows
	}
	end := deepest + 3
	if end > len(rows) {
		end = len(rows)
	}
	return rows[:end]
}

// Downsample averages rows into an approximately maxW×maxH matrix so large
// grids fit a terminal.
func Downsample(rows [][]float64, maxW, maxH int) [][]float64 {
	h, w := len(rows), 0
	if h > 0 {
		w = len(rows[0])
	}
	if h == 0 || w == 0 || (h <= maxH && w <= maxW) {
		return rows
	}
	fy := (h + maxH - 1) / maxH
	fx := (w + maxW - 1) / maxW
	outH := (h + fy - 1) / fy
	outW := (w + fx - 1) / fx
	out := make([][]float64, outH)
	for oy := 0; oy < outH; oy++ {
		row := make([]float64, outW)
		for ox := 0; ox < outW; ox++ {
			sum, n := 0.0, 0
			for y := oy * fy; y < (oy+1)*fy && y < h; y++ {
				for x := ox * fx; x < (ox+1)*fx && x < w; x++ {
					sum += rows[y][x]
					n++
				}
			}
			if n > 0 {
				row[ox] = sum / float64(n)
			}
		}
		out[oy] = row
	}
	return out
}
