package detector

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDiskCaptures(t *testing.T) {
	d := Disk{CenterX: 10, Radius: 2}
	cases := []struct {
		x, y float64
		want bool
	}{
		{10, 0, true},
		{12, 0, true}, // on the rim
		{10, 2, true}, // on the rim
		{12.1, 0, false},
		{0, 0, false},
		{10, -1.9, true},
		{8.6, 1.4, true},
	}
	for _, c := range cases {
		if got := d.Captures(c.x, c.y); got != c.want {
			t.Errorf("Disk.Captures(%g,%g) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestAnnulusCaptures(t *testing.T) {
	a := Annulus{RMin: 5, RMax: 10}
	cases := []struct {
		x, y float64
		want bool
	}{
		{5, 0, true},
		{10, 0, true},
		{0, 7, true},
		{4.9, 0, false},
		{10.1, 0, false},
		{0, 0, false},
		{-7, 0, true}, // all azimuths
	}
	for _, c := range cases {
		if got := a.Captures(c.x, c.y); got != c.want {
			t.Errorf("Annulus.Captures(%g,%g) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestAllCaptures(t *testing.T) {
	if !(All{}).Captures(1e9, -1e9) {
		t.Fatal("All should capture everything")
	}
}

// Property: a disk at the origin and an annulus [0, r] agree everywhere.
func TestDiskAnnulusEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		radius := 1 + 9*r.Float64()
		d := Disk{CenterX: 0, Radius: radius}
		a := Annulus{RMin: 0, RMax: radius}
		for i := 0; i < 100; i++ {
			x := 30*r.Float64() - 15
			y := 30*r.Float64() - 15
			if d.Captures(x, y) != a.Captures(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGateOpen(t *testing.T) {
	var g Gate
	if !g.Open() {
		t.Fatal("zero gate should be open")
	}
	if !g.Accepts(0) || !g.Accepts(1e9) {
		t.Fatal("open gate rejected a pathlength")
	}
}

func TestGateWindow(t *testing.T) {
	g := Gate{MinPath: 10, MaxPath: 50}
	cases := []struct {
		p    float64
		want bool
	}{
		{9.99, false}, {10, true}, {30, true}, {50, true}, {50.01, false},
	}
	for _, c := range cases {
		if got := g.Accepts(c.p); got != c.want {
			t.Errorf("Gate.Accepts(%g) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestGateMinOnly(t *testing.T) {
	g := Gate{MinPath: 10}
	if g.Open() {
		t.Fatal("min-only gate should not be open")
	}
	if g.Accepts(5) || !g.Accepts(1e12) {
		t.Fatal("min-only gate misbehaved")
	}
}

// Property: gating is monotone — widening the window never rejects a
// previously accepted pathlength.
func TestGateMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		lo := 100 * r.Float64()
		hi := lo + 100*r.Float64() + 1
		narrow := Gate{MinPath: lo, MaxPath: hi}
		wide := Gate{MinPath: lo / 2, MaxPath: hi * 2}
		for i := 0; i < 200; i++ {
			p := 400 * r.Float64()
			if narrow.Accepts(p) && !wide.Accepts(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGateValidate(t *testing.T) {
	if err := (Gate{MinPath: 5, MaxPath: 3}).Validate(); err == nil {
		t.Fatal("inverted gate accepted")
	}
	if err := (Gate{MinPath: -1}).Validate(); err == nil {
		t.Fatal("negative gate accepted")
	}
	if err := (Gate{MinPath: 1, MaxPath: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []Spec{
		{Kind: KindAll},
		{Kind: ""},
		{Kind: KindDisk, CenterX: 10, Radius: 1},
		{Kind: KindAnnulus, RMin: 2, RMax: 4},
		{Kind: KindDisk, CenterX: 5, Radius: 2, Gate: Gate{MinPath: 1, MaxPath: 9}},
	}
	for _, c := range cases {
		d, err := c.New()
		if err != nil {
			t.Fatalf("Spec %+v: %v", c, err)
		}
		if d.Describe() == "" {
			t.Fatalf("Spec %+v gave empty description", c)
		}
	}
}

func TestSpecRejectsBad(t *testing.T) {
	bad := []Spec{
		{Kind: KindDisk, Radius: 0},
		{Kind: KindAnnulus, RMin: 4, RMax: 2},
		{Kind: KindAnnulus, RMin: -1, RMax: 2},
		{Kind: "sphere"},
		{Kind: KindDisk, Radius: 1, Gate: Gate{MinPath: 9, MaxPath: 1}},
	}
	for _, c := range bad {
		if _, err := c.New(); err == nil {
			t.Fatalf("Spec %+v accepted, want error", c)
		}
	}
}

func TestDescriptions(t *testing.T) {
	for _, d := range []Detector{Disk{CenterX: 1, Radius: 2}, Annulus{RMin: 1, RMax: 2}, All{}} {
		if d.Describe() == "" {
			t.Fatalf("%T empty description", d)
		}
	}
}

func TestGateAcceptsInfinity(t *testing.T) {
	g := Gate{MinPath: 1}
	if !g.Accepts(math.Inf(1)) {
		t.Fatal("min-only gate should accept +Inf pathlength")
	}
}
