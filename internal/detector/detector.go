// Package detector implements the surface detectors of the simulation: a
// photon that escapes through the z = 0 surface is captured if it exits
// inside the detector footprint, optionally subject to a pathlength gate
// (the paper's "gated differential pathlengths" feature, which models
// sources/detectors that only operate between pulses).
package detector

import (
	"fmt"
	"math"
)

// Detector decides whether a photon exiting the surface at (x, y) is
// captured. Implementations must be usable concurrently (they are
// immutable).
type Detector interface {
	Captures(x, y float64) bool
	Describe() string
}

// Kind names a detector type for wire serialisation.
type Kind string

const (
	KindDisk    Kind = "disk"
	KindAnnulus Kind = "annulus"
	KindAll     Kind = "all"
)

// Disk is a circular detector of the given radius centred at (CenterX, 0):
// the usual optode placed at a source–detector separation along +x.
type Disk struct {
	CenterX float64
	Radius  float64
}

// Captures implements Detector.
func (d Disk) Captures(x, y float64) bool {
	dx := x - d.CenterX
	return dx*dx+y*y <= d.Radius*d.Radius
}

// Describe implements Detector.
func (d Disk) Describe() string {
	return fmt.Sprintf("disk r=%g mm at x=%g mm", d.Radius, d.CenterX)
}

// Annulus captures photons exiting at radial distance ρ ∈ [RMin, RMax] from
// the source axis, exploiting the axial symmetry of normally incident
// sources to collect every azimuth (variance reduction for reflectance
// curves).
type Annulus struct {
	RMin, RMax float64
}

// Captures implements Detector.
func (a Annulus) Captures(x, y float64) bool {
	r2 := x*x + y*y
	return r2 >= a.RMin*a.RMin && r2 <= a.RMax*a.RMax
}

// Describe implements Detector.
func (a Annulus) Describe() string {
	return fmt.Sprintf("annulus ρ∈[%g,%g] mm", a.RMin, a.RMax)
}

// All captures every photon that escapes through the surface; useful for
// total diffuse reflectance measurements.
type All struct{}

// Captures implements Detector.
func (All) Captures(float64, float64) bool { return true }

// Describe implements Detector.
func (All) Describe() string { return "entire surface" }

// Gate restricts capture to photons whose total optical pathlength lies in
// [MinPath, MaxPath] mm. A zero Gate (MaxPath == 0) is open: it accepts any
// pathlength.
type Gate struct {
	MinPath, MaxPath float64
}

// Open reports whether the gate accepts every pathlength.
func (g Gate) Open() bool { return g.MaxPath == 0 && g.MinPath == 0 }

// Accepts reports whether pathlength p passes the gate.
func (g Gate) Accepts(p float64) bool {
	if g.Open() {
		return true
	}
	max := g.MaxPath
	if max == 0 {
		max = math.Inf(1)
	}
	return p >= g.MinPath && p <= max
}

// Validate reports whether the gate window is well-formed.
func (g Gate) Validate() error {
	if g.MinPath < 0 || g.MaxPath < 0 {
		return fmt.Errorf("detector: negative gate bound [%g,%g]", g.MinPath, g.MaxPath)
	}
	if g.MaxPath != 0 && g.MinPath > g.MaxPath {
		return fmt.Errorf("detector: gate min %g exceeds max %g", g.MinPath, g.MaxPath)
	}
	return nil
}

// Spec is a serialisable detector description for the wire protocol.
type Spec struct {
	Kind            Kind
	CenterX, Radius float64 // disk
	RMin, RMax      float64 // annulus
	Gate            Gate
}

// New materialises the Spec into a Detector.
func (s Spec) New() (Detector, error) {
	if err := s.Gate.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindDisk:
		if s.Radius <= 0 {
			return nil, fmt.Errorf("detector: disk needs positive radius, got %g", s.Radius)
		}
		return Disk{CenterX: s.CenterX, Radius: s.Radius}, nil
	case KindAnnulus:
		if s.RMax <= s.RMin || s.RMin < 0 {
			return nil, fmt.Errorf("detector: bad annulus [%g,%g]", s.RMin, s.RMax)
		}
		return Annulus{RMin: s.RMin, RMax: s.RMax}, nil
	case KindAll, "":
		return All{}, nil
	default:
		return nil, fmt.Errorf("detector: unknown kind %q", s.Kind)
	}
}
