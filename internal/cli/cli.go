// Package cli holds the flag plumbing shared by the command-line tools:
// building a simulation Spec from flags and pretty-printing tallies.
package cli

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

// SpecFlags collects the simulation-definition flags shared by mcsim and
// mcserver.
type SpecFlags struct {
	Model    string
	Source   string
	SrcParam float64
	Detector string
	DetSep   float64
	DetRad   float64
	RMin     float64
	RMax     float64
	GateMin  float64
	GateMax  float64
	Boundary string
	GridN    int
	GridEdge float64
	PathGrid bool
	AbsGrid  bool
}

// Register attaches the spec flags to fs.
func (sf *SpecFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&sf.Model, "model", "adult-head",
		"tissue model: adult-head | neonate | white-matter")
	fs.StringVar(&sf.Source, "source", "pencil",
		"source footprint: pencil | gaussian | uniform")
	fs.Float64Var(&sf.SrcParam, "source-param", 1.0,
		"source parameter (σ for gaussian, radius for uniform), mm")
	fs.StringVar(&sf.Detector, "detector", "all",
		"detector: all | disk | annulus")
	fs.Float64Var(&sf.DetSep, "det-sep", 10, "disk detector separation, mm")
	fs.Float64Var(&sf.DetRad, "det-radius", 2, "disk detector radius, mm")
	fs.Float64Var(&sf.RMin, "det-rmin", 5, "annulus inner radius, mm")
	fs.Float64Var(&sf.RMax, "det-rmax", 15, "annulus outer radius, mm")
	fs.Float64Var(&sf.GateMin, "gate-min", 0, "pathlength gate lower bound, mm (0 = open)")
	fs.Float64Var(&sf.GateMax, "gate-max", 0, "pathlength gate upper bound, mm (0 = open)")
	fs.StringVar(&sf.Boundary, "boundary", "probabilistic",
		"boundary physics: probabilistic | deterministic")
	fs.IntVar(&sf.GridN, "grid", 50, "scoring grid granularity N (N³ voxels)")
	fs.Float64Var(&sf.GridEdge, "grid-edge", 40, "scoring grid edge length, mm")
	fs.BoolVar(&sf.PathGrid, "path-grid", false,
		"score detected-photon path density (Fig 3 banana)")
	fs.BoolVar(&sf.AbsGrid, "abs-grid", false, "score absorbed weight per voxel")
}

// Build materialises the flags into a Spec.
func (sf *SpecFlags) Build() (*mc.Spec, error) {
	var model *tissue.Model
	switch sf.Model {
	case "adult-head":
		model = tissue.AdultHead()
	case "neonate":
		model = tissue.Neonate()
	case "white-matter":
		model = tissue.HomogeneousWhiteMatter()
	default:
		return nil, fmt.Errorf("unknown model %q", sf.Model)
	}

	src := source.Spec{Kind: source.Kind(sf.Source), Param: sf.SrcParam}

	det := detector.Spec{
		Kind: detector.Kind(sf.Detector),
		Gate: detector.Gate{MinPath: sf.GateMin, MaxPath: sf.GateMax},
	}
	switch det.Kind {
	case detector.KindDisk:
		det.CenterX, det.Radius = sf.DetSep, sf.DetRad
	case detector.KindAnnulus:
		det.RMin, det.RMax = sf.RMin, sf.RMax
	}

	spec := mc.NewSpec(model, src, det)
	switch sf.Boundary {
	case "probabilistic":
		spec.Boundary = mc.BoundaryProbabilistic
	case "deterministic":
		spec.Boundary = mc.BoundaryDeterministic
	default:
		return nil, fmt.Errorf("unknown boundary mode %q", sf.Boundary)
	}
	if sf.PathGrid {
		spec.PathGrid = &mc.GridSpec{N: sf.GridN, Edge: sf.GridEdge}
	}
	if sf.AbsGrid {
		spec.AbsGrid = &mc.GridSpec{N: sf.GridN, Edge: sf.GridEdge}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// PrintTally writes a human-readable run summary.
func PrintTally(w io.Writer, t *mc.Tally, model *tissue.Model) {
	fmt.Fprintf(w, "photons launched       %d\n", t.Launched)
	fmt.Fprintf(w, "specular reflectance   %.5f\n", t.SpecularReflectance())
	fmt.Fprintf(w, "diffuse reflectance    %.5f\n", t.DiffuseReflectance())
	fmt.Fprintf(w, "transmittance          %.5f\n", t.Transmittance())
	fmt.Fprintf(w, "absorbed fraction      %.5f\n", t.Absorbance())
	fmt.Fprintf(w, "energy balance         %.3g\n", t.EnergyBalance())
	fmt.Fprintf(w, "detected photons       %d (weight %.4f/photon)\n",
		t.DetectedCount, t.DetectedFraction())
	if t.DetectedCount > 0 {
		fmt.Fprintf(w, "mean pathlength        %.2f mm (±%.2f CI95)\n",
			t.PathStats.Mean(), t.PathStats.CI95())
		fmt.Fprintf(w, "mean optical path      %.2f mm\n", t.OptPathStats.Mean())
		fmt.Fprintf(w, "mean max depth         %.2f mm\n", t.DepthStats.Mean())
		fmt.Fprintf(w, "mean scatter events    %.0f\n", t.ScatterStats.Mean())
	}
	if t.GateRejected > 0 {
		fmt.Fprintf(w, "gate-rejected weight   %.4f/photon\n", t.GateRejected/t.N())
	}
	fmt.Fprintf(w, "\n%-14s %12s %12s %12s\n", "layer", "absorbed", "reached(n)", "entered(w)")
	for i, l := range model.Layers {
		fmt.Fprintf(w, "%-14s %12.5f %12d %12.5f\n",
			l.Name, t.LayerAbsorbed[i]/t.N(), t.LayerReached[i], t.PenetrationFraction(i))
	}
}

// Underline prints a section header.
func Underline(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
