package cli

import (
	"bytes"
	"flag"
	"strings"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

func parse(t *testing.T, args ...string) *SpecFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var sf SpecFlags
	sf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &sf
}

func TestDefaultsBuild(t *testing.T) {
	spec, err := parse(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model.Name != "adult-head" {
		t.Fatalf("default model %q", spec.Model.Name)
	}
	if spec.Source.Kind != source.KindPencil {
		t.Fatalf("default source %q", spec.Source.Kind)
	}
	if spec.Detector.Kind != detector.KindAll {
		t.Fatalf("default detector %q", spec.Detector.Kind)
	}
}

func TestAllModels(t *testing.T) {
	for _, m := range []string{"adult-head", "neonate", "white-matter"} {
		if _, err := parse(t, "-model", m).Build(); err != nil {
			t.Errorf("model %s: %v", m, err)
		}
	}
	if _, err := parse(t, "-model", "liver").Build(); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDetectorFlags(t *testing.T) {
	spec, err := parse(t, "-detector", "disk", "-det-sep", "20", "-det-radius", "2.5").Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Detector.CenterX != 20 || spec.Detector.Radius != 2.5 {
		t.Fatalf("disk flags lost: %+v", spec.Detector)
	}
	spec, err = parse(t, "-detector", "annulus", "-det-rmin", "4", "-det-rmax", "6").Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Detector.RMin != 4 || spec.Detector.RMax != 6 {
		t.Fatalf("annulus flags lost: %+v", spec.Detector)
	}
}

func TestGateAndBoundaryFlags(t *testing.T) {
	spec, err := parse(t, "-gate-min", "10", "-gate-max", "90",
		"-boundary", "deterministic").Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Detector.Gate.MinPath != 10 || spec.Detector.Gate.MaxPath != 90 {
		t.Fatalf("gate lost: %+v", spec.Detector.Gate)
	}
	if spec.Boundary != mc.BoundaryDeterministic {
		t.Fatal("boundary flag lost")
	}
	if _, err := parse(t, "-boundary", "quantum").Build(); err == nil {
		t.Error("unknown boundary accepted")
	}
}

func TestGridFlags(t *testing.T) {
	spec, err := parse(t, "-path-grid", "-abs-grid", "-grid", "25", "-grid-edge", "30").Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.PathGrid == nil || spec.PathGrid.N != 25 || spec.PathGrid.Edge != 30 {
		t.Fatalf("path grid flags lost: %+v", spec.PathGrid)
	}
	if spec.AbsGrid == nil {
		t.Fatal("abs grid flag lost")
	}
}

func TestBadSourceRejected(t *testing.T) {
	if _, err := parse(t, "-source", "gaussian", "-source-param", "-1").Build(); err == nil {
		t.Error("negative gaussian sigma accepted")
	}
}

func TestPrintTally(t *testing.T) {
	model := tissue.AdultHead()
	cfg := &mc.Config{
		Model:    model,
		Detector: detector.Annulus{RMin: 5, RMax: 15},
		Gate:     detector.Gate{MaxPath: 100},
	}
	tally, err := mc.Run(cfg, 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTally(&buf, tally, model)
	out := buf.String()
	for _, want := range []string{
		"photons launched", "diffuse reflectance", "scalp", "white matter",
		"mean pathlength",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestUnderline(t *testing.T) {
	var buf bytes.Buffer
	Underline(&buf, "abc")
	if !strings.Contains(buf.String(), "===") {
		t.Fatal("no underline")
	}
}
