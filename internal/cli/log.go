package cli

import (
	"flag"
	"io"
	"log/slog"

	"repro/internal/obs"
)

// LogFlags collects the structured-logging flags every daemon shares:
// -log-format selects the slog handler, -v lowers the level to debug.
type LogFlags struct {
	Format  string
	Verbose bool
}

// Register attaches the logging flags to fs.
func (lf *LogFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&lf.Format, "log-format", "text", "log output format: text or json")
	fs.BoolVar(&lf.Verbose, "v", false, "debug-level logging")
}

// Build validates the flags into a logger writing to w. An unknown
// -log-format is an error the daemons exit on — a typo must not silently
// fall back to text and break a fleet's log pipeline.
func (lf *LogFlags) Build(w io.Writer) (*slog.Logger, error) {
	return obs.NewLogger(w, lf.Format, lf.Verbose)
}
