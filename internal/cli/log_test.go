package cli

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"
)

// TestLogFlags table-tests the shared -log-format / -v plumbing: every
// daemon parses these through LogFlags, so a bad format must surface as a
// Build error (the daemons exit on it) rather than a silent text fallback.
func TestLogFlags(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr bool
		verbose bool
		marker  string // substring an Info line must contain
	}{
		{name: "defaults", args: nil, marker: "msg=hello"},
		{name: "explicit text", args: []string{"-log-format", "text"}, marker: "msg=hello"},
		{name: "json", args: []string{"-log-format", "json"}, marker: `"msg":"hello"`},
		{name: "verbose", args: []string{"-v"}, verbose: true, marker: "msg=hello"},
		{name: "unknown format", args: []string{"-log-format", "yaml"}, wantErr: true},
		{name: "empty format", args: []string{"-log-format", ""}, marker: "msg=hello"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			fs.SetOutput(io.Discard)
			var lf LogFlags
			lf.Register(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("parse: %v", err)
			}
			if lf.Verbose != tc.verbose {
				t.Fatalf("Verbose = %v, want %v", lf.Verbose, tc.verbose)
			}
			var buf bytes.Buffer
			logger, err := lf.Build(&buf)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Build accepted format %q", lf.Format)
				}
				return
			}
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			logger.Info("hello")
			if got := buf.String(); !strings.Contains(got, tc.marker) {
				t.Fatalf("log line %q missing %q", got, tc.marker)
			}
			buf.Reset()
			logger.Debug("quiet")
			if got := buf.String(); (got != "") != tc.verbose {
				t.Fatalf("debug line with verbose=%v: %q", tc.verbose, got)
			}
		})
	}
}
