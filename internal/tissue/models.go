package tissue

import (
	"math"

	"repro/internal/optics"
)

// Standard NIR-range constants used throughout the paper's references
// (Fukui/Okada adult-head models): tissue refractive index 1.4 and a strongly
// forward-peaked phase function g = 0.9. The paper reports transport
// scattering coefficients µs′; µs is derived as µs′/(1−g).
const (
	TissueIndex  = 1.4
	AmbientIndex = 1.0
	DefaultG     = 0.9
)

// Adult-head layer optical properties from Table 1 of the paper
// (µs′ and µa in mm⁻¹, NIR range).
var (
	ScalpProps       = optics.FromTransport(1.9, DefaultG, 0.018, TissueIndex)
	SkullProps       = optics.FromTransport(1.6, DefaultG, 0.016, TissueIndex)
	CSFProps         = optics.FromTransport(0.25, DefaultG, 0.004, TissueIndex)
	GreyMatterProps  = optics.FromTransport(2.2, DefaultG, 0.036, TissueIndex)
	WhiteMatterProps = optics.FromTransport(9.1, DefaultG, 0.014, TissueIndex)
)

// AdultHead returns the five-layer adult head model of Table 1. The paper's
// thickness column mixes units; following its references [1, 3]
// (Okada & Delpy, Fukui et al.) we use scalp 3 mm, skull 7 mm, CSF 2 mm,
// grey matter 4 mm and a semi-infinite white-matter layer.
func AdultHead() *Model {
	return &Model{
		Name:   "adult-head",
		NAbove: AmbientIndex,
		NBelow: TissueIndex,
		Layers: []Layer{
			{Name: "scalp", Props: ScalpProps, Thickness: 3},
			{Name: "skull", Props: SkullProps, Thickness: 7},
			{Name: "csf", Props: CSFProps, Thickness: 2},
			{Name: "grey matter", Props: GreyMatterProps, Thickness: 4},
			{Name: "white matter", Props: WhiteMatterProps, Thickness: math.Inf(1)},
		},
	}
}

// AdultHeadCustom returns the Table 1 model with caller-chosen scalp and
// skull thicknesses (the table gives ranges 3–10 mm and 5–10 mm).
func AdultHeadCustom(scalpMM, skullMM float64) *Model {
	m := AdultHead()
	m.Layers[0].Thickness = scalpMM
	m.Layers[1].Thickness = skullMM
	return m
}

// HomogeneousWhiteMatter returns the single-layer white-matter phantom used
// for the Fig 3 banana experiment: a semi-infinite slab of the Table 1
// white-matter properties under air.
func HomogeneousWhiteMatter() *Model {
	return &Model{
		Name:   "homogeneous-white-matter",
		NAbove: AmbientIndex,
		NBelow: TissueIndex,
		Layers: []Layer{
			{Name: "white matter", Props: WhiteMatterProps, Thickness: math.Inf(1)},
		},
	}
}

// HomogeneousSlab returns a single-layer slab with the given properties and
// thickness — the workhorse for physics validation tests (Beer–Lambert,
// energy conservation, diffusion-theory comparisons).
func HomogeneousSlab(name string, p optics.Properties, thicknessMM float64) *Model {
	return &Model{
		Name:   name,
		NAbove: AmbientIndex,
		NBelow: AmbientIndex,
		Layers: []Layer{{Name: name, Props: p, Thickness: thicknessMM}},
	}
}

// Neonate returns a neonatal head model following Fukui et al. [1]: thinner
// superficial layers than the adult model. This is the "superficial tissue
// thickness differs between adult and neonates" study the paper cites.
func Neonate() *Model {
	return &Model{
		Name:   "neonate-head",
		NAbove: AmbientIndex,
		NBelow: TissueIndex,
		Layers: []Layer{
			{Name: "scalp", Props: ScalpProps, Thickness: 1.5},
			{Name: "skull", Props: SkullProps, Thickness: 2},
			{Name: "csf", Props: CSFProps, Thickness: 1.5},
			{Name: "grey matter", Props: GreyMatterProps, Thickness: 3},
			{Name: "white matter", Props: WhiteMatterProps, Thickness: math.Inf(1)},
		},
	}
}
