// Package tissue describes layered slab tissue models: a stack of
// horizontally infinite layers below the z = 0 surface, each with its own
// optical properties, as used by the paper's adult-head simulations.
package tissue

import (
	"fmt"
	"math"

	"repro/internal/optics"
)

// Layer is one homogeneous slab. Thickness is in mm; the last layer of a
// model may be infinitely thick (math.Inf(1)).
type Layer struct {
	Name      string
	Props     optics.Properties
	Thickness float64
}

// Model is a stack of layers. Layer 0 starts at z = 0 and the stack extends
// in +z. NAbove and NBelow are the refractive indices of the media outside
// the slab (air above the scalp, and whatever terminates a finite stack).
type Model struct {
	Name   string
	Layers []Layer
	NAbove float64
	NBelow float64
}

// NumLayers returns the number of tissue layers.
func (m *Model) NumLayers() int { return len(m.Layers) }

// Boundary returns the depth z of boundary i, where boundary 0 is the
// surface (z = 0) and boundary i is the bottom of layer i−1. A semi-infinite
// final layer yields +Inf for the last boundary.
func (m *Model) Boundary(i int) float64 {
	z := 0.0
	for j := 0; j < i && j < len(m.Layers); j++ {
		z += m.Layers[j].Thickness
	}
	return z
}

// TotalThickness returns the stack depth, possibly +Inf.
func (m *Model) TotalThickness() float64 { return m.Boundary(len(m.Layers)) }

// LayerAt returns the index of the layer containing depth z, or −1 above the
// surface and NumLayers() below a finite stack.
func (m *Model) LayerAt(z float64) int {
	if z < 0 {
		return -1
	}
	bottom := 0.0
	for i, l := range m.Layers {
		bottom += l.Thickness
		if z < bottom {
			return i
		}
	}
	return len(m.Layers)
}

// IndexAbove returns the refractive index on the shallow side of layer i:
// the ambient index for the first layer, otherwise layer i−1's index.
func (m *Model) IndexAbove(i int) float64 {
	if i <= 0 {
		return m.NAbove
	}
	return m.Layers[i-1].Props.N
}

// IndexBelow returns the refractive index on the deep side of layer i:
// layer i+1's index, or the terminating ambient index for the last layer.
func (m *Model) IndexBelow(i int) float64 {
	if i >= len(m.Layers)-1 {
		return m.NBelow
	}
	return m.Layers[i+1].Props.N
}

// Validate reports the first structural problem with the model.
func (m *Model) Validate() error {
	if len(m.Layers) == 0 {
		return fmt.Errorf("tissue: model %q has no layers", m.Name)
	}
	if m.NAbove < 1 || m.NBelow < 1 {
		return fmt.Errorf("tissue: model %q ambient refractive index below 1", m.Name)
	}
	for i, l := range m.Layers {
		if err := l.Props.Validate(); err != nil {
			return fmt.Errorf("tissue: model %q layer %d (%s): %w", m.Name, i, l.Name, err)
		}
		if l.Thickness <= 0 {
			return fmt.Errorf("tissue: model %q layer %d (%s): non-positive thickness %g",
				m.Name, i, l.Name, l.Thickness)
		}
		if math.IsInf(l.Thickness, 1) && i != len(m.Layers)-1 {
			return fmt.Errorf("tissue: model %q layer %d (%s): only the last layer may be semi-infinite",
				m.Name, i, l.Name)
		}
	}
	return nil
}
