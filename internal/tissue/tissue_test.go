package tissue

import (
	"math"
	"testing"

	"repro/internal/optics"
)

func TestAdultHeadMatchesTable1(t *testing.T) {
	m := AdultHead()
	if err := m.Validate(); err != nil {
		t.Fatalf("AdultHead invalid: %v", err)
	}
	if m.NumLayers() != 5 {
		t.Fatalf("layers = %d, want 5", m.NumLayers())
	}
	want := []struct {
		name     string
		musPrime float64
		mua      float64
	}{
		{"scalp", 1.9, 0.018},
		{"skull", 1.6, 0.016},
		{"csf", 0.25, 0.004},
		{"grey matter", 2.2, 0.036},
		{"white matter", 9.1, 0.014},
	}
	for i, w := range want {
		l := m.Layers[i]
		if l.Name != w.name {
			t.Errorf("layer %d name %q, want %q", i, l.Name, w.name)
		}
		if got := l.Props.MuSPrime(); math.Abs(got-w.musPrime) > 1e-9 {
			t.Errorf("%s µs′ = %g, want %g", w.name, got, w.musPrime)
		}
		if l.Props.MuA != w.mua {
			t.Errorf("%s µa = %g, want %g", w.name, l.Props.MuA, w.mua)
		}
	}
	if !math.IsInf(m.Layers[4].Thickness, 1) {
		t.Error("white matter should be semi-infinite")
	}
}

func TestBoundaries(t *testing.T) {
	m := AdultHead() // 3, 7, 2, 4, ∞
	wantZ := []float64{0, 3, 10, 12, 16}
	for i, w := range wantZ {
		if got := m.Boundary(i); got != w {
			t.Errorf("Boundary(%d) = %g, want %g", i, got, w)
		}
	}
	if !math.IsInf(m.Boundary(5), 1) {
		t.Error("bottom boundary of semi-infinite stack should be +Inf")
	}
	if !math.IsInf(m.TotalThickness(), 1) {
		t.Error("TotalThickness should be +Inf")
	}
}

func TestLayerAt(t *testing.T) {
	m := AdultHead()
	cases := []struct {
		z    float64
		want int
	}{
		{-0.1, -1},
		{0, 0}, {2.9, 0},
		{3, 1}, {9.9, 1},
		{10, 2}, {11.9, 2},
		{12, 3}, {15.9, 3},
		{16, 4}, {1000, 4},
	}
	for _, c := range cases {
		if got := m.LayerAt(c.z); got != c.want {
			t.Errorf("LayerAt(%g) = %d, want %d", c.z, got, c.want)
		}
	}
}

func TestLayerAtBelowFiniteStack(t *testing.T) {
	m := HomogeneousSlab("s", optics.Properties{MuA: 1, MuS: 1, N: 1.4}, 5)
	if got := m.LayerAt(5.1); got != 1 {
		t.Fatalf("LayerAt below stack = %d, want NumLayers()", got)
	}
}

func TestIndexAboveBelow(t *testing.T) {
	m := AdultHead()
	if m.IndexAbove(0) != m.NAbove {
		t.Error("IndexAbove(0) should be ambient")
	}
	if m.IndexAbove(2) != m.Layers[1].Props.N {
		t.Error("IndexAbove(2) should be skull index")
	}
	if m.IndexBelow(1) != m.Layers[2].Props.N {
		t.Error("IndexBelow(1) should be CSF index")
	}
	if m.IndexBelow(4) != m.NBelow {
		t.Error("IndexBelow(last) should be terminating index")
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := []*Model{
		{Name: "empty", NAbove: 1, NBelow: 1},
		{Name: "bad-ambient", NAbove: 0.5, NBelow: 1,
			Layers: []Layer{{Name: "l", Props: optics.Properties{N: 1.4}, Thickness: 1}}},
		{Name: "zero-thickness", NAbove: 1, NBelow: 1,
			Layers: []Layer{{Name: "l", Props: optics.Properties{N: 1.4}, Thickness: 0}}},
		{Name: "inner-infinite", NAbove: 1, NBelow: 1,
			Layers: []Layer{
				{Name: "a", Props: optics.Properties{N: 1.4}, Thickness: math.Inf(1)},
				{Name: "b", Props: optics.Properties{N: 1.4}, Thickness: 1},
			}},
		{Name: "bad-props", NAbove: 1, NBelow: 1,
			Layers: []Layer{{Name: "l", Props: optics.Properties{MuA: -1, N: 1.4}, Thickness: 1}}},
	}
	for _, m := range cases {
		if err := m.Validate(); err == nil {
			t.Errorf("model %q accepted, want error", m.Name)
		}
	}
}

func TestAdultHeadCustom(t *testing.T) {
	m := AdultHeadCustom(5, 9)
	if m.Layers[0].Thickness != 5 || m.Layers[1].Thickness != 9 {
		t.Fatalf("custom thicknesses not applied: %g, %g",
			m.Layers[0].Thickness, m.Layers[1].Thickness)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeonateThinnerThanAdult(t *testing.T) {
	a, n := AdultHead(), Neonate()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth to grey matter must be smaller for the neonate.
	if n.Boundary(3) >= a.Boundary(3) {
		t.Fatalf("neonate grey-matter depth %g not below adult %g",
			n.Boundary(3), a.Boundary(3))
	}
}

func TestHomogeneousWhiteMatter(t *testing.T) {
	m := HomogeneousWhiteMatter()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 1 {
		t.Fatalf("layers = %d, want 1", m.NumLayers())
	}
	if got := m.Layers[0].Props.MuSPrime(); math.Abs(got-9.1) > 1e-9 {
		t.Fatalf("white matter µs′ = %g", got)
	}
}
