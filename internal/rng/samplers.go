package rng

import "math"

// Exp returns an exponentially distributed value with the given rate.
func (r *Rand) Exp(rate float64) float64 {
	return r.Step() / rate
}

// Gaussian returns a standard normal sample via the Box–Muller transform.
func (r *Rand) Gaussian() float64 {
	if r.gaussReady {
		r.gaussReady = false
		return r.gaussSpare
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	mag := math.Sqrt(-2 * math.Log(u1))
	r.gaussSpare = mag * math.Sin(2*math.Pi*u2)
	r.gaussReady = true
	return mag * math.Cos(2*math.Pi*u2)
}

// HenyeyGreenstein samples the cosine of the polar scattering angle from the
// Henyey–Greenstein phase function with anisotropy factor g in (-1, 1).
// g = 0 yields isotropic scattering; g → 1 forward, g → -1 backward.
func (r *Rand) HenyeyGreenstein(g float64) float64 {
	if g == 0 {
		return 2*r.Float64() - 1
	}
	frac := (1 - g*g) / (1 - g + 2*g*r.Float64())
	cos := (1 + g*g - frac*frac) / (2 * g)
	// Numerical guard: keep strictly inside [-1, 1].
	if cos < -1 {
		cos = -1
	} else if cos > 1 {
		cos = 1
	}
	return cos
}

// Azimuth returns a uniform azimuthal angle in [0, 2π).
func (r *Rand) Azimuth() float64 {
	return 2 * math.Pi * r.Float64()
}

// UniformDisk returns a point uniformly distributed on a disk of the given
// radius centred at the origin.
func (r *Rand) UniformDisk(radius float64) (x, y float64) {
	rho := radius * math.Sqrt(r.Float64())
	phi := r.Azimuth()
	return rho * math.Cos(phi), rho * math.Sin(phi)
}

// GaussianDisk returns a point from a circularly symmetric Gaussian beam
// profile where sigma is the 1/e² intensity radius divided by 2 (i.e. the
// standard deviation of each Cartesian coordinate).
func (r *Rand) GaussianDisk(sigma float64) (x, y float64) {
	return sigma * r.Gaussian(), sigma * r.Gaussian()
}
