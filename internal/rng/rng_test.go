package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g outside [0,1)", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(2)
	for i := 0; i < 100000; i++ {
		v := r.Float64Open()
		if v <= 0 || v > 1 {
			t.Fatalf("Float64Open() = %g outside (0,1]", v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at step %d: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestUniformMean(t *testing.T) {
	r := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %g too far from 0.5", mean)
	}
}

func TestJumpStreamsDisjoint(t *testing.T) {
	// After a jump, the streams must not share any nearby outputs.
	a := New(7)
	b := New(7)
	b.Jump()
	seen := make(map[uint64]bool, 10000)
	for i := 0; i < 10000; i++ {
		seen[a.Uint64()] = true
	}
	for i := 0; i < 10000; i++ {
		if seen[b.Uint64()] {
			t.Fatalf("jumped stream collided with base stream at step %d", i)
		}
	}
}

func TestNewStreamsIndependentAndReproducible(t *testing.T) {
	s1 := NewStreams(99, 4)
	s2 := NewStreams(99, 4)
	for i := range s1 {
		for j := 0; j < 100; j++ {
			if s1[i].Uint64() != s2[i].Uint64() {
				t.Fatalf("stream %d not reproducible at draw %d", i, j)
			}
		}
	}
	// Distinct streams differ.
	s3 := NewStreams(99, 2)
	if s3[0].Uint64() == s3[1].Uint64() {
		t.Fatal("adjacent streams produced identical first draw")
	}
}

func TestSplit(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draw")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) bucket %d has skewed count %d", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestStepPositive(t *testing.T) {
	r := New(13)
	for i := 0; i < 100000; i++ {
		if s := r.Step(); s <= 0 || math.IsInf(s, 1) || math.IsNaN(s) {
			t.Fatalf("Step() = %g not a positive finite value", s)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(2.0)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Exp(2) mean %g, want ≈0.5", mean)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(19)
	const n = 400000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		g := r.Gaussian()
		sum += g
		sum2 += g * g
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("Gaussian mean %g, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("Gaussian variance %g, want ≈1", variance)
	}
}

// Property: the Henyey–Greenstein sampler's mean cosine equals g, its
// defining property, for any anisotropy in (-1, 1).
func TestHenyeyGreensteinMeanCosine(t *testing.T) {
	f := func(seed uint64, graw float64) bool {
		g := math.Mod(math.Abs(graw), 0.95)
		if math.IsNaN(g) {
			return true
		}
		for _, sign := range []float64{+1, -1} {
			gg := sign * g
			r := New(seed)
			const n = 150000
			sum := 0.0
			for i := 0; i < n; i++ {
				c := r.HenyeyGreenstein(gg)
				if c < -1 || c > 1 {
					return false
				}
				sum += c
			}
			if math.Abs(sum/n-gg) > 0.02 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 8}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHenyeyGreensteinIsotropic(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.HenyeyGreenstein(0)
	}
	if math.Abs(sum/n) > 0.01 {
		t.Fatalf("isotropic HG mean cosine %g, want ≈0", sum/n)
	}
}

func TestAzimuthRange(t *testing.T) {
	r := New(29)
	for i := 0; i < 100000; i++ {
		if phi := r.Azimuth(); phi < 0 || phi >= 2*math.Pi {
			t.Fatalf("Azimuth() = %g outside [0,2π)", phi)
		}
	}
}

func TestUniformDiskInDisk(t *testing.T) {
	r := New(31)
	const radius = 2.5
	sumR2 := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		x, y := r.UniformDisk(radius)
		r2 := x*x + y*y
		if r2 > radius*radius*(1+1e-12) {
			t.Fatalf("UniformDisk point (%g,%g) outside radius %g", x, y, radius)
		}
		sumR2 += r2
	}
	// E[r²] for a uniform disk is R²/2.
	if got, want := sumR2/n, radius*radius/2; math.Abs(got-want)/want > 0.02 {
		t.Fatalf("UniformDisk E[r²] = %g, want ≈%g", got, want)
	}
}

func TestGaussianDiskMoments(t *testing.T) {
	r := New(37)
	const sigma = 1.5
	const n = 200000
	sumX, sumX2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x, _ := r.GaussianDisk(sigma)
		sumX += x
		sumX2 += x * x
	}
	mean := sumX / n
	sd := math.Sqrt(sumX2/n - mean*mean)
	if math.Abs(mean) > 0.02 || math.Abs(sd-sigma)/sigma > 0.02 {
		t.Fatalf("GaussianDisk mean=%g sd=%g, want 0 and %g", mean, sd, sigma)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkHenyeyGreenstein(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.HenyeyGreenstein(0.9)
	}
}

// TestFanSeedDerivationPinned pins the sub-stream derivation of the
// distributed fan-out: FanSeed and the first output of each FanStreams
// sub-stream are part of the reproducibility contract (a fanned chunk tally
// is a pure function of seed, stream index and fan width). If this test
// fails, the change silently invalidates every fanned tally and cache entry
// produced so far — bump the service cache key derivation instead of
// updating the constants casually.
func TestFanSeedDerivationPinned(t *testing.T) {
	pins := []struct {
		seed   uint64
		stream int
		want   uint64
	}{
		{0, 0, 0xe6b847134f41df3c},
		{42, 0, 0xf9316fbbb3212da4},
		{42, 1, 0xfeb1b1b7e01f4969},
		{42, 7, 0x7ee3a7e8533d5148},
		{0xdeadbeef, 3, 0xdb480212ab17c4b1},
	}
	for _, p := range pins {
		if got := FanSeed(p.seed, p.stream); got != p.want {
			t.Errorf("FanSeed(%#x, %d) = %#016x, want %#016x", p.seed, p.stream, got, p.want)
		}
	}

	firsts := []uint64{
		0x4f459652d7489feb,
		0x18724774abdb3b74,
		0xb3fb1e1d0a605b9e,
		0xa54053b9fe829f91,
	}
	for i, r := range FanStreams(42, 3, 4) {
		if got := r.Uint64(); got != firsts[i] {
			t.Errorf("FanStreams(42,3,4)[%d] first output %#016x, want %#016x", i, got, firsts[i])
		}
	}
}

// TestFanStreamsJumpSeparated checks sub-streams are the sub-master seed's
// jump sequence (so they never overlap each other) and distinct across
// chunk stream indices.
func TestFanStreamsJumpSeparated(t *testing.T) {
	subs := FanStreams(7, 2, 3)
	for i, s := range subs {
		base := New(FanSeed(7, 2))
		for j := 0; j < i; j++ {
			base.Jump()
		}
		want := base.Uint64()
		if got := s.Uint64(); got != want {
			t.Fatalf("sub-stream %d is not the sub-master jumped %d times: %#x vs %#x", i, i, got, want)
		}
	}
	if FanSeed(7, 2) == FanSeed(7, 3) || FanSeed(7, 2) == FanSeed(8, 2) {
		t.Fatal("fan seeds collide across adjacent streams/seeds")
	}
}

// TestFanSeedOffMasterSequence guards the domain separation of the fan
// derivation: fan sub-master seeds must not land on the master seed's own
// splitmix64 sequence (they would equal the master generator's state
// words), and offsetting the seed by the splitmix64 increment must not
// shift one seed's fan onto another's.
func TestFanSeedOffMasterSequence(t *testing.T) {
	const goldenRatio = 0x9e3779b97f4a7c15
	for seed := uint64(0); seed < 8; seed++ {
		master := New(seed)
		for stream := 0; stream < 8; stream++ {
			fs := FanSeed(seed, stream)
			for w, s := range master.s {
				if fs == s {
					t.Fatalf("FanSeed(%d,%d) equals master state word %d", seed, stream, w)
				}
			}
		}
	}
	for k := 1; k < 6; k++ {
		if FanSeed(42, k) == FanSeed(42+goldenRatio, k-1) {
			t.Fatalf("FanSeed aliases across golden-ratio-shifted seeds at stream %d", k)
		}
	}
}

// TestStreamCacheMatchesJumpDerivation checks cached stream states are
// bit-identical to the canonical jump derivation, in ascending, random and
// repeated access order.
func TestStreamCacheMatchesJumpDerivation(t *testing.T) {
	const seed = 99
	want := func(i int) uint64 {
		r := New(seed)
		for j := 0; j < i; j++ {
			r.Jump()
		}
		return r.Uint64()
	}
	c := NewStreamCache(seed)
	for _, i := range []int{7, 0, 3, 7, 12, 1, 12} {
		if got := c.Stream(i).Uint64(); got != want(i) {
			t.Fatalf("cached stream %d first output %#x, want %#x", i, got, want(i))
		}
	}
	// Streams must be independent copies: draining one does not disturb
	// another.
	a, b := c.Stream(2), c.Stream(2)
	a.Uint64()
	if a.Uint64() == b.Uint64() {
		t.Fatal("cache handed out aliased generator state")
	}
}
