// Package rng provides a deterministic, splittable pseudo-random number
// generator for Monte Carlo photon transport.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64. It supports Jump (2^128 steps) so that a single master seed
// can be fanned out into many provably non-overlapping streams, one per
// worker, making parallel runs exactly reproducible and independent of the
// number of workers used.
package rng

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// create one stream per goroutine with NewStreams or Split.
type Rand struct {
	s [4]uint64

	// Box–Muller produces pairs; cache the spare value.
	gaussReady bool
	gaussSpare float64
}

// splitmix64 advances the given state and returns the next value. It is the
// recommended seeding procedure for xoshiro generators: it guarantees the
// xoshiro state is never all-zero and decorrelates nearby seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four consecutive zeros, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStreams returns n independent generators derived from a single master
// seed. Stream i is the master generator jumped forward i times by 2^128
// steps, so streams never overlap for any realistic workload.
func NewStreams(seed uint64, n int) []*Rand {
	streams := make([]*Rand, n)
	base := New(seed)
	for i := 0; i < n; i++ {
		cp := &Rand{s: base.s}
		streams[i] = cp
		base.Jump()
	}
	return streams
}

// Split returns a new generator 2^128 steps ahead of r, and advances r by the
// same amount, so successive Split calls yield non-overlapping streams.
func (r *Rand) Split() *Rand {
	cp := &Rand{s: r.s}
	r.Jump()
	return cp
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps; 2^128 non-overlapping
// subsequences of length 2^128 are available from one seed.
func (r *Rand) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1]; it never returns zero, so
// the result is safe to pass to math.Log.
func (r *Rand) Float64Open() float64 {
	return (float64(r.Uint64()>>11) + 1) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine here: bias is < 2^-53
	// for the modest n used in scheduling, far below MC noise.
	return int(r.Float64() * float64(n))
}
