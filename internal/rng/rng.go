// Package rng provides a deterministic, splittable pseudo-random number
// generator for Monte Carlo photon transport.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64. It supports Jump (2^128 steps) so that a single master seed
// can be fanned out into many provably non-overlapping streams, one per
// worker, making parallel runs exactly reproducible and independent of the
// number of workers used.
package rng

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// create one stream per goroutine with NewStreams or Split.
type Rand struct {
	s [4]uint64

	// Box–Muller produces pairs; cache the spare value.
	gaussReady bool
	gaussSpare float64
}

// splitmix64 advances the given state and returns the next value. It is the
// recommended seeding procedure for xoshiro generators: it guarantees the
// xoshiro state is never all-zero and decorrelates nearby seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// The all-zero state is invalid for xoshiro; splitmix64 cannot produce
	// four consecutive zeros, but keep the guard for clarity.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// NewStreams returns n independent generators derived from a single master
// seed. Stream i is the master generator jumped forward i times by 2^128
// steps, so streams never overlap for any realistic workload.
func NewStreams(seed uint64, n int) []*Rand {
	streams := make([]*Rand, n)
	base := New(seed)
	for i := 0; i < n; i++ {
		cp := &Rand{s: base.s}
		streams[i] = cp
		base.Jump()
	}
	return streams
}

// Split returns a new generator 2^128 steps ahead of r, and advances r by the
// same amount, so successive Split calls yield non-overlapping streams.
func (r *Rand) Split() *Rand {
	cp := &Rand{s: r.s}
	r.Jump()
	return cp
}

// FanSeed derives the sub-stream master seed for fanning one chunk stream
// across several cores. The formula is part of the distributed
// reproducibility contract — a chunk tally computed with fan f is a pure
// function of (seed, stream, f), independent of which worker computes it —
// and is pinned by TestFanSeedDerivationPinned; changing it silently would
// change every fanned tally in the wild.
//
// The derivation finalizes the master seed once, xors in the stream index
// scaled by a constant distinct from splitmix64's golden-ratio increment,
// and finalizes again. The inner finalize keeps FanSeed off the master
// seed's own splitmix64 sequence for every (seed, stream) — a plain
// seed + k·increment offset would make fan sub-master seeds collide
// exactly with the master generator's state words and with other seeds'
// fans at shifted stream indices.
func FanSeed(seed uint64, stream int) uint64 {
	s := seed
	mixed := splitmix64(&s)
	s = mixed ^ (0x94d049bb133111eb * (uint64(stream) + 1))
	return splitmix64(&s)
}

// StreamCache lazily materialises the jump-separated stream states of one
// master seed. Serving stream i costs max(0, i−highest served) jumps
// instead of i, so a worker computing many chunks of one job — in any
// order — pays for each jump once instead of re-deriving every stream
// from scratch (the old per-chunk cost was O(stream), a quadratic total
// that dominated small-chunk jobs). Stream(i) returns exactly the state
// New(seed) jumped i times, so cached and uncached derivations are
// bit-identical. Not safe for concurrent use.
type StreamCache struct {
	states [][4]uint64
}

// maxCachedStreamStates bounds the cache memory (32 B per stream); a
// pathological million-chunk job falls back to jumping from the last
// cached state instead of growing without bound.
const maxCachedStreamStates = 1 << 16

// NewStreamCache returns a cache over the master seed's stream sequence.
func NewStreamCache(seed uint64) *StreamCache {
	return &StreamCache{states: [][4]uint64{New(seed).s}}
}

// Stream returns a fresh generator positioned at stream i (the master
// jumped i times). It panics on a negative index.
func (c *StreamCache) Stream(i int) *Rand {
	if i < 0 {
		panic("rng: negative stream index")
	}
	for len(c.states) <= i && len(c.states) < maxCachedStreamStates {
		r := &Rand{s: c.states[len(c.states)-1]}
		r.Jump()
		c.states = append(c.states, r.s)
	}
	if i < len(c.states) {
		return &Rand{s: c.states[i]}
	}
	r := &Rand{s: c.states[len(c.states)-1]}
	for j := len(c.states) - 1; j < i; j++ {
		r.Jump()
	}
	return r
}

// FanStreams returns fan jump-separated sub-streams for one chunk of a
// distributed job: the sub-master seed is derived deterministically from
// the chunk's stream index via FanSeed, then fanned with NewStreams, so
// sub-stream i is the sub-master jumped forward i times by 2^128 steps.
// Sub-streams of one chunk never overlap each other; collisions with the
// top-level chunk streams (seeded differently) are probabilistically
// excluded by the 2^256 xoshiro state space.
func FanStreams(seed uint64, stream, fan int) []*Rand {
	return NewStreams(FanSeed(seed, stream), fan)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps; 2^128 non-overlapping
// subsequences of length 2^128 are available from one seed.
func (r *Rand) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= r.s[0]
				s1 ^= r.s[1]
				s2 ^= r.s[2]
				s3 ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = [4]uint64{s0, s1, s2, s3}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1]; it never returns zero, so
// the result is safe to pass to math.Log.
func (r *Rand) Float64Open() float64 {
	return (float64(r.Uint64()>>11) + 1) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Multiply-shift rejection-free mapping is fine here: bias is < 2^-53
	// for the modest n used in scheduling, far below MC noise.
	return int(r.Float64() * float64(n))
}
