package rng

import "math"

// Exponential free-path sampling is the single hottest RNG draw in the
// transport kernel (one per scattering event), so it uses the ziggurat
// method of Marsaglia & Tsang ("The Ziggurat Method for Generating Random
// Variables", JSS 2000) instead of -log(ξ): ~98.9% of draws resolve with
// one 64-bit draw, a table lookup, a multiply and a compare; the remaining
// draws fall through to an exact rejection test or the analytic tail. The
// method samples the exponential distribution exactly (up to float64
// rounding and the 2^32 position grid within a strip); it is not an
// approximation.
//
// The tables are rebuilt at init time in float64 from the published layer
// constants, so there is no precision loss against the textbook float32
// tables.
const (
	// zigR is the start of the analytic tail: the x-coordinate of the
	// bottom strip for a 256-layer exponential ziggurat.
	zigR = 7.69711747013104972
	// zigV is the common area of each of the 256 layers.
	zigV = 3.9496598225815571993e-3
)

var (
	zigKe [256]uint32  // quick-accept thresholds: accept x when j < zigKe[i]
	zigWe [256]float64 // strip x-scale: x = j·zigWe[i] for a 32-bit j
	zigFe [256]float64 // strip density floor: exp(-x_i)
)

func init() {
	const m2 = 1 << 32
	de, te := zigR, zigR
	q := zigV / math.Exp(-de)
	zigKe[0] = uint32((de / q) * m2)
	zigKe[1] = 0
	zigWe[0] = q / m2
	zigWe[255] = de / m2
	zigFe[0] = 1
	zigFe[255] = math.Exp(-de)
	for i := 254; i >= 1; i-- {
		de = -math.Log(zigV/de + math.Exp(-de))
		zigKe[i+1] = uint32((de / te) * m2)
		te = de
		zigFe[i] = math.Exp(-de)
		zigWe[i] = de / m2
	}
}

// Step returns a dimensionless exponential free-path sample (unit rate).
// Dividing by the interaction coefficient µt yields a geometric step length.
func (r *Rand) Step() float64 {
	for {
		u := r.Uint64()
		j := uint32(u >> 32) // strip position: 32 independent bits
		i := u & 0xFF        // strip index: independent of the position bits
		x := float64(j) * zigWe[i]
		if j < zigKe[i] {
			// The sample lies in the part of the strip that is entirely
			// below the density — the no-branch common case.
			return x
		}
		if i == 0 {
			// Bottom strip: the region beyond zigR is the analytic
			// exponential tail.
			return zigR - math.Log(r.Float64Open())
		}
		if zigFe[i]+r.Float64()*(zigFe[i-1]-zigFe[i]) < math.Exp(-x) {
			return x
		}
	}
}

// AzimuthUnit returns a uniformly distributed random unit 2-vector
// (cos φ, sin φ) via Marsaglia polar rejection — no trigonometric calls,
// unlike Azimuth followed by math.Sincos. The angle 2θ of a point (u, v)
// uniform in the unit disk is uniform on [0, 2π), and its cosine/sine are
// rational in u, v. One 64-bit draw provides both coordinates (32 bits
// each — ample for an azimuth); the expected cost is 4/π draws.
func (r *Rand) AzimuthUnit() (cosPhi, sinPhi float64) {
	const scale = 1.0 / (1 << 31)
	for {
		bits := r.Uint64()
		u := float64(int32(bits>>32)) * scale // [-1, 1)
		v := float64(int32(bits)) * scale
		s := u*u + v*v
		if s > 0 && s < 1 {
			inv := 1 / s
			return (u*u - v*v) * inv, 2 * u * v * inv
		}
	}
}
