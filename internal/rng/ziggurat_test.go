package rng

import (
	"math"
	"testing"
)

// TestStepExponentialDistribution checks the ziggurat sampler against the
// analytic exponential distribution: moments and survival probabilities at
// points spanning the quick-accept strips, the rejection band and the
// analytic tail. Bounds are ~5σ for the fixed seed, so the test is
// deterministic and far outside noise for a broken table.
func TestStepExponentialDistribution(t *testing.T) {
	const n = 2_000_000
	r := New(12345)
	var sum, sum2 float64
	thresholds := []float64{0.1, 0.5, 1, 2, 4, zigR, 9}
	exceed := make([]int, len(thresholds))
	for i := 0; i < n; i++ {
		x := r.Step()
		if x < 0 {
			t.Fatalf("negative step %g", x)
		}
		sum += x
		sum2 += x * x
		for j, th := range thresholds {
			if x > th {
				exceed[j]++
			}
		}
	}
	mean := sum / n
	if math.Abs(mean-1) > 5/math.Sqrt(n) {
		t.Errorf("mean %g, want 1 ± %g", mean, 5/math.Sqrt(n))
	}
	// E[X²] = 2 for Exp(1); Var(X²) = E[X⁴]−4 = 20.
	m2 := sum2 / n
	if tol := 5 * math.Sqrt(20.0/n); math.Abs(m2-2) > tol {
		t.Errorf("second moment %g, want 2 ± %g", m2, tol)
	}
	for j, th := range thresholds {
		p := math.Exp(-th)
		got := float64(exceed[j]) / n
		sigma := math.Sqrt(p * (1 - p) / n)
		if math.Abs(got-p) > 5*sigma {
			t.Errorf("P(X > %g) = %g, want %g ± %g", th, got, p, 5*sigma)
		}
	}
}

// TestStepMatchesLogReference compares the ziggurat mean against the
// classical -ln(ξ) sampler on independent streams — a coarse cross-check
// that the two parameterisations draw from the same distribution.
func TestStepMatchesLogReference(t *testing.T) {
	const n = 500_000
	zig, ref := New(7), New(8)
	var sz, sr float64
	for i := 0; i < n; i++ {
		sz += zig.Step()
		sr += -math.Log(ref.Float64Open())
	}
	if d := math.Abs(sz-sr) / n; d > 6/math.Sqrt(n) {
		t.Errorf("ziggurat mean %g vs -log mean %g differ by %g", sz/n, sr/n, d)
	}
}

// TestStepDeterministic pins the reproducibility contract: the same seed
// must yield the same step sequence on every run and instance.
func TestStepDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Step(), b.Step(); x != y {
			t.Fatalf("draw %d: %g != %g with identical seeds", i, x, y)
		}
	}
}

// TestAzimuthUnit checks the rejection-sampled azimuth vector is unit
// length and uniformly distributed (zero mean components, half-unit second
// moments, zero cross-moment).
func TestAzimuthUnit(t *testing.T) {
	const n = 1_000_000
	r := New(31415)
	var sc, ss, sc2, scs float64
	for i := 0; i < n; i++ {
		c, s := r.AzimuthUnit()
		if err := math.Abs(c*c + s*s - 1); err > 1e-12 {
			t.Fatalf("(%g, %g) has norm² error %g", c, s, err)
		}
		sc += c
		ss += s
		sc2 += c * c
		scs += c * s
	}
	// Var(cos φ) = 1/2, Var(cos²φ) = 1/8, Var(cos φ sin φ) = 1/8.
	tol := 5 * math.Sqrt(0.5/n)
	if math.Abs(sc/n) > tol || math.Abs(ss/n) > tol {
		t.Errorf("mean components (%g, %g) exceed ±%g", sc/n, ss/n, tol)
	}
	if tol := 5 * math.Sqrt(0.125/n); math.Abs(sc2/n-0.5) > tol {
		t.Errorf("E[cos²φ] = %g, want 0.5 ± %g", sc2/n, tol)
	}
	if tol := 5 * math.Sqrt(0.125/n); math.Abs(scs/n) > tol {
		t.Errorf("E[cos φ sin φ] = %g, want 0 ± %g", scs/n, tol)
	}
}
