// Package source implements the photon launchers the paper supports:
// delta (laser pencil beam), Gaussian and uniform source illumination
// footprints, all normally incident on the z = 0 tissue surface.
package source

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/vec"
)

// Source produces initial photon positions and directions. Launch must be
// safe to call from multiple goroutines as long as each goroutine supplies
// its own *rng.Rand.
type Source interface {
	// Launch returns the entry position on the surface (z = 0) and the
	// initial unit direction (pointing into the tissue, +z).
	Launch(r *rng.Rand) (pos, dir vec.V)
	// Describe returns a short human-readable description.
	Describe() string
}

// Kind names a source type for wire serialisation.
type Kind string

const (
	KindPencil   Kind = "pencil"
	KindGaussian Kind = "gaussian"
	KindUniform  Kind = "uniform"
)

var down = vec.V{X: 0, Y: 0, Z: 1}

// Pencil is an infinitesimally narrow laser beam entering at the origin —
// the paper's "delta" source.
type Pencil struct{}

// Launch implements Source.
func (Pencil) Launch(*rng.Rand) (vec.V, vec.V) {
	return vec.V{}, down
}

// Describe implements Source.
func (Pencil) Describe() string { return "pencil (delta) beam at origin" }

// GaussianBeam is a circular Gaussian illumination footprint centred on the
// origin. Sigma is the standard deviation of each transverse coordinate in
// mm (beam 1/e² intensity radius = 2σ).
type GaussianBeam struct {
	Sigma float64
}

// Launch implements Source.
func (g GaussianBeam) Launch(r *rng.Rand) (vec.V, vec.V) {
	x, y := r.GaussianDisk(g.Sigma)
	return vec.V{X: x, Y: y}, down
}

// Describe implements Source.
func (g GaussianBeam) Describe() string {
	return fmt.Sprintf("gaussian beam σ=%g mm", g.Sigma)
}

// UniformDisk is a flat-top circular illumination footprint of the given
// radius in mm, centred on the origin.
type UniformDisk struct {
	Radius float64
}

// Launch implements Source.
func (u UniformDisk) Launch(r *rng.Rand) (vec.V, vec.V) {
	x, y := r.UniformDisk(u.Radius)
	return vec.V{X: x, Y: y}, down
}

// Describe implements Source.
func (u UniformDisk) Describe() string {
	return fmt.Sprintf("uniform disk radius %g mm", u.Radius)
}

// Spec is a serialisable source description used by the wire protocol.
type Spec struct {
	Kind  Kind
	Param float64 // σ for gaussian, radius for uniform; ignored for pencil
}

// New materialises a Spec into a Source.
func (s Spec) New() (Source, error) {
	switch s.Kind {
	case KindPencil, "":
		return Pencil{}, nil
	case KindGaussian:
		if s.Param <= 0 {
			return nil, fmt.Errorf("source: gaussian beam needs positive sigma, got %g", s.Param)
		}
		return GaussianBeam{Sigma: s.Param}, nil
	case KindUniform:
		if s.Param <= 0 {
			return nil, fmt.Errorf("source: uniform disk needs positive radius, got %g", s.Param)
		}
		return UniformDisk{Radius: s.Param}, nil
	default:
		return nil, fmt.Errorf("source: unknown kind %q", s.Kind)
	}
}
