package source

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestPencilAlwaysOriginDownward(t *testing.T) {
	r := rng.New(1)
	var s Source = Pencil{}
	for i := 0; i < 100; i++ {
		pos, dir := s.Launch(r)
		if pos.X != 0 || pos.Y != 0 || pos.Z != 0 {
			t.Fatalf("pencil pos = %+v", pos)
		}
		if dir.X != 0 || dir.Y != 0 || dir.Z != 1 {
			t.Fatalf("pencil dir = %+v", dir)
		}
	}
}

func TestGaussianBeamFootprint(t *testing.T) {
	r := rng.New(2)
	s := GaussianBeam{Sigma: 2}
	const n = 100000
	sumX, sumX2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		pos, dir := s.Launch(r)
		if pos.Z != 0 || dir.Z != 1 {
			t.Fatal("gaussian beam must start on the surface going down")
		}
		sumX += pos.X
		sumX2 += pos.X * pos.X
	}
	mean := sumX / n
	sd := math.Sqrt(sumX2/n - mean*mean)
	if math.Abs(mean) > 0.03 || math.Abs(sd-2)/2 > 0.03 {
		t.Fatalf("gaussian footprint mean=%g sd=%g, want 0, 2", mean, sd)
	}
}

func TestUniformDiskFootprint(t *testing.T) {
	r := rng.New(3)
	s := UniformDisk{Radius: 3}
	for i := 0; i < 100000; i++ {
		pos, _ := s.Launch(r)
		if pos.X*pos.X+pos.Y*pos.Y > 9*(1+1e-12) {
			t.Fatalf("uniform disk point outside radius: %+v", pos)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cases := []Spec{
		{Kind: KindPencil},
		{Kind: ""},
		{Kind: KindGaussian, Param: 1.5},
		{Kind: KindUniform, Param: 2.5},
	}
	for _, c := range cases {
		s, err := c.New()
		if err != nil {
			t.Fatalf("Spec %+v: %v", c, err)
		}
		if s.Describe() == "" {
			t.Fatalf("Spec %+v produced empty description", c)
		}
	}
}

func TestSpecRejectsBadParams(t *testing.T) {
	bad := []Spec{
		{Kind: KindGaussian, Param: 0},
		{Kind: KindGaussian, Param: -1},
		{Kind: KindUniform, Param: 0},
		{Kind: "laser-cannon"},
	}
	for _, c := range bad {
		if _, err := c.New(); err == nil {
			t.Fatalf("Spec %+v accepted, want error", c)
		}
	}
}
