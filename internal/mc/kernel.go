package mc

import (
	"math"

	"repro/internal/geom"
	"repro/internal/optics"
	"repro/internal/rng"
	"repro/internal/vec"
)

// subPacket is one weighted photon packet. In probabilistic boundary mode a
// launched photon is exactly one sub-packet; in deterministic (classical
// splitting) mode a boundary may fork the packet into a refracted
// continuation and a reflected child.
type subPacket struct {
	pos     vec.V
	dir     vec.V
	weight  float64
	region  int     // geometry region (layer index or voxel label)
	path    float64 // geometric pathlength, mm
	optPath float64 // optical pathlength Σ n·ds, mm
	maxZ    float64 // deepest excursion, mm
	scat    int64   // scattering events
	split   int     // split depth (deterministic mode)
	deep    int     // highest region index this packet (or an ancestor) entered
	// entered is the set of regions this packet (or an ancestor) has been
	// in, for first-entry weight tallies; it covers region indices below
	// maxTrackedRegions (= voxel.MaxMedia), with a monotone fallback above.
	entered [maxTrackedRegions / 64]uint64
	visits  []vec.V // interaction sites, recorded only when PathGrid is scored
}

// maxTrackedRegions bounds the per-packet visited-region bitmask; it
// matches the voxel media limit, so only layered models with >256 layers
// fall back to the monotone depth approximation.
const maxTrackedRegions = 256

// markEntered records region r in the visited set and reports whether this
// is its first entry. Regions beyond the mask fall back to "deeper than
// anything so far", which is exact for depth-ordered layered stacks.
func (p *subPacket) markEntered(r int) bool {
	if r < maxTrackedRegions {
		w, b := r>>6, uint64(1)<<(r&63)
		if p.entered[w]&b != 0 {
			return false
		}
		p.entered[w] |= b
		return true
	}
	return r > p.deep
}

// kernel carries the per-worker simulation state: configuration, geometry,
// RNG stream and the tally being accumulated. Each kernel owns a private
// scratch tally merged once per chunk, so the hot loop never synchronises.
// One kernel must only be used from a single goroutine.
type kernel struct {
	cfg   *Config
	geo   geom.Geometry
	rng   *rng.Rand
	tally *Tally

	// opt is the per-region optical table (mua+mus, albedo, 1/µt, …)
	// precomputed once per Config; lay is the devirtualised layered fast
	// path, nil for voxel/custom geometries.
	opt []regionOpt
	lay *layeredGeom

	recordPaths bool
	stack       []subPacket
	visitPool   [][]vec.V
}

// newKernel returns a kernel writing into a fresh tally. cfg must already be
// normalised.
func newKernel(cfg *Config, r *rng.Rand) *kernel {
	return &kernel{
		cfg:         cfg,
		geo:         cfg.Geometry,
		rng:         r,
		tally:       NewTally(cfg),
		opt:         cfg.opt,
		lay:         cfg.lay,
		recordPaths: cfg.PathGrid != nil,
	}
}

// getVisits returns an empty visit buffer, reusing returned ones.
func (k *kernel) getVisits() []vec.V {
	if n := len(k.visitPool); n > 0 {
		v := k.visitPool[n-1]
		k.visitPool = k.visitPool[:n-1]
		return v[:0]
	}
	return make([]vec.V, 0, 256)
}

func (k *kernel) putVisits(v []vec.V) {
	if v != nil {
		k.visitPool = append(k.visitPool, v)
	}
}

// RunPhotons simulates n photons, accumulating into the kernel's tally.
func (k *kernel) RunPhotons(n int64) {
	for i := int64(0); i < n; i++ {
		k.onePhoton()
	}
}

// onePhoton launches a single photon packet and follows it (and any
// classical-splitting children) to extinction, implementing the paper's
// Fig 1 pseudocode.
func (k *kernel) onePhoton() {
	t := k.tally
	t.Launched++

	pos, dir := k.cfg.Source.Launch(k.rng)
	entry := k.geo.RegionAt(pos)
	if entry < 0 {
		// Launched outside the medium's footprint (e.g. a wide source
		// beside a voxel grid): the photon never enters the tissue; score
		// the full weight as lateral loss so the energy books stay closed
		// and an undersized grid is visible in LateralFraction.
		t.LateralWeight++
		return
	}

	// Specular reflection at the entry surface (handled once,
	// deterministically, as in MCML). In a heterogeneous medium the entry
	// region — and hence the specular fraction — may vary across the
	// surface footprint.
	rsp := optics.Specular(k.geo.AmbientIndex(), k.opt[entry].N)
	t.SpecularWeight += rsp

	primary := subPacket{
		pos:    pos,
		dir:    dir,
		weight: 1 - rsp,
		region: entry,
		deep:   entry,
	}
	primary.markEntered(entry) // the entry region is not a penetration
	if k.recordPaths {
		primary.visits = k.getVisits()
	}

	k.stack = append(k.stack[:0], primary)
	deepestRegion := entry

	for len(k.stack) > 0 {
		p := k.stack[len(k.stack)-1]
		k.stack = k.stack[:len(k.stack)-1]
		var d int
		if k.lay != nil {
			d = k.traceLayered(&p)
		} else {
			d = k.trace(&p)
		}
		if d > deepestRegion {
			deepestRegion = d
		}
	}
	t.LayerReached[deepestRegion]++
}

// trace follows one sub-packet to extinction through an arbitrary Geometry
// and returns the deepest region index it visited. Reflected children
// spawned in deterministic mode are pushed onto k.stack. Layered stacks use
// the specialised traceLayered instead.
func (k *kernel) trace(p *subPacket) (deepest int) {
	t := k.tally
	deepest = p.region

	defer func() { k.putVisits(p.visits); p.visits = nil }()

	for events := 0; events < k.cfg.MaxEvents; events++ {
		op := &k.opt[p.region]

		// Sample the free-path step; a non-interacting region (CSF-like
		// void) propagates straight to its boundary.
		s := math.Inf(1)
		if op.Interacting {
			s = k.rng.Step() * op.InvMuT
		}

		// Distance to the next medium change along the current direction,
		// searched only as far as the sampled step needs.
		db, hit := k.geo.ToBoundary(p.pos, p.dir, p.region, s)

		if s >= db {
			// Hop to the boundary and resolve reflection/refraction.
			// Resampling the remaining step in the next region is unbiased
			// by the memorylessness of the exponential free path.
			if math.IsInf(db, 1) {
				// Unbounded flight in a non-interacting region: the photon
				// leaves the region of interest; score it as lost to
				// absorption to keep the energy books closed.
				t.AbsorbedWeight += p.weight
				t.LayerAbsorbed[p.region] += p.weight
				return deepest
			}
			k.advance(p, db, op.N)
			alive, entered := k.cross(p, &hit, op.N)
			if !alive {
				return deepest
			}
			if entered > deepest {
				deepest = entered
			}
			continue
		}

		// Hop.
		k.advance(p, s, op.N)

		// Drop: deposit the absorbed fraction of the packet weight.
		dw := p.weight * op.AbsFrac
		p.weight -= dw
		t.AbsorbedWeight += dw
		t.LayerAbsorbed[p.region] += dw
		if t.AbsGrid != nil {
			t.AbsGrid.Add(p.pos.X, p.pos.Y, p.pos.Z, dw)
		}
		if k.recordPaths {
			p.visits = append(p.visits, p.pos)
		}

		// Spin: sample the Henyey–Greenstein deflection.
		cosPhi, sinPhi := k.rng.AzimuthUnit()
		p.dir = vec.ScatterCS(p.dir, op.sampleHG(k.rng.Float64()), cosPhi, sinPhi)
		p.scat++

		// Survival roulette for low-weight packets.
		if p.weight < k.cfg.RouletteThreshold {
			if k.rng.Float64()*k.cfg.RouletteBoost < 1 {
				t.RouletteGain += p.weight * (k.cfg.RouletteBoost - 1)
				p.weight *= k.cfg.RouletteBoost
			} else {
				t.RouletteLoss += p.weight
				return deepest
			}
		}
	}

	// Event budget exhausted (pathological configuration): retire the
	// packet into the absorption ledger so energy stays conserved.
	t.AbsorbedWeight += p.weight
	t.LayerAbsorbed[p.region] += p.weight
	return deepest
}

// advance moves the packet a distance s through a medium of index n.
func (k *kernel) advance(p *subPacket, s, n float64) {
	p.pos = p.pos.Add(p.dir.Scale(s))
	p.path += s
	p.optPath += s * n
	if p.pos.Z > p.maxZ {
		p.maxZ = p.pos.Z
	}
}

// cross resolves a packet sitting exactly on the boundary described by hit,
// moving in p.dir through a medium of index n1. It returns whether the
// packet is still alive inside the geometry and, if it crossed into a new
// region, that region index (otherwise p.region).
func (k *kernel) cross(p *subPacket, hit *geom.Hit, n1 float64) (alive bool, regionNow int) {
	n2 := hit.N2
	cosI := -p.dir.Dot(hit.Normal)
	refl, cosT := optics.Fresnel(n1, n2, cosI)

	reflect := func() (bool, int) {
		p.dir = geom.Reflect(p.dir, hit.Normal)
		return true, p.region
	}

	switch {
	case refl >= 1:
		// Total internal reflection ("photon angle > critical angle" in the
		// paper's pseudocode): always reflect, both modes.
		return reflect()
	case refl > 0 && k.cfg.Boundary == BoundaryDeterministic && p.split < maxSplitDepth:
		// Classical physics: split the packet. The reflected portion
		// continues as a child; the refracted portion proceeds below.
		rw := p.weight * refl
		if rw >= k.cfg.RouletteThreshold {
			child := *p
			child.weight = rw
			child.dir = geom.Reflect(p.dir, hit.Normal)
			child.split = p.split + 1
			if k.recordPaths {
				child.visits = append(k.getVisits(), p.visits...)
			}
			k.stack = append(k.stack, child)
			p.weight -= rw
		} else {
			// Too faint to split: roulette the reflected portion into the
			// continuing packet to stay unbiased without spawning work.
			if k.rng.Float64() < refl {
				return reflect()
			}
		}
	case refl > 0: // probabilistic mode
		if k.rng.Float64() < refl {
			return reflect()
		}
	}

	// Refract across the boundary.
	p.dir = geom.Refract(p.dir, hit.Normal, n1/n2, cosT)

	switch hit.Exit {
	case geom.ExitTop:
		k.escapeTop(p)
		return false, p.region
	case geom.ExitBottom:
		// Escaped through the bottom of a finite medium.
		k.tally.TransmitWeight += p.weight
		return false, p.region
	case geom.ExitLateral:
		// Out the sides of a laterally bounded medium (voxel grids).
		k.tally.LateralWeight += p.weight
		return false, p.region
	}

	p.region = hit.Next
	if p.markEntered(p.region) {
		k.tally.LayerEnteredWeight[p.region] += p.weight
	}
	if p.region > p.deep {
		p.deep = p.region
	}
	return true, p.region
}

// escapeTop scores a packet exiting through the z = 0 surface: diffuse
// reflectance always, plus detection if it lands on the detector footprint
// and passes the pathlength gate.
func (k *kernel) escapeTop(p *subPacket) {
	t := k.tally
	t.DiffuseWeight += p.weight
	if t.Radial != nil {
		t.Radial.Add(math.Hypot(p.pos.X, p.pos.Y), p.weight)
	}

	if !k.cfg.Detector.Captures(p.pos.X, p.pos.Y) {
		return
	}
	if !k.cfg.Gate.Accepts(p.path) {
		t.GateRejected += p.weight
		return
	}

	w := p.weight
	t.DetectedCount++
	t.DetectedWeight += w
	t.PathStats.Add(p.path, w)
	t.OptPathStats.Add(p.optPath, w)
	t.DepthStats.Add(p.maxZ, w)
	t.ScatterStats.Add(float64(p.scat), w)
	if t.PathHist != nil {
		t.PathHist.Add(p.path, w)
	}
	if t.PathGrid != nil {
		for _, v := range p.visits {
			t.PathGrid.Add(v.X, v.Y, v.Z, w)
		}
	}
}
