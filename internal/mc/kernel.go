package mc

import (
	"math"

	"repro/internal/optics"
	"repro/internal/rng"
	"repro/internal/vec"
)

// subPacket is one weighted photon packet. In probabilistic boundary mode a
// launched photon is exactly one sub-packet; in deterministic (classical
// splitting) mode a boundary may fork the packet into a refracted
// continuation and a reflected child.
type subPacket struct {
	pos     vec.V
	dir     vec.V
	weight  float64
	layer   int
	path    float64 // geometric pathlength, mm
	optPath float64 // optical pathlength Σ n·ds, mm
	maxZ    float64 // deepest excursion, mm
	scat    int64   // scattering events
	split   int     // split depth (deterministic mode)
	deep    int     // deepest layer this packet (or an ancestor) entered
	visits  []vec.V // interaction sites, recorded only when PathGrid is scored
}

// kernel carries the per-worker simulation state: configuration, RNG stream
// and the tally being accumulated. One kernel must only be used from a
// single goroutine.
type kernel struct {
	cfg   *Config
	rng   *rng.Rand
	tally *Tally

	recordPaths bool
	stack       []subPacket
	visitPool   [][]vec.V
}

// newKernel returns a kernel writing into a fresh tally. cfg must already be
// normalised.
func newKernel(cfg *Config, r *rng.Rand) *kernel {
	return &kernel{
		cfg:         cfg,
		rng:         r,
		tally:       NewTally(cfg),
		recordPaths: cfg.PathGrid != nil,
	}
}

// getVisits returns an empty visit buffer, reusing returned ones.
func (k *kernel) getVisits() []vec.V {
	if n := len(k.visitPool); n > 0 {
		v := k.visitPool[n-1]
		k.visitPool = k.visitPool[:n-1]
		return v[:0]
	}
	return make([]vec.V, 0, 256)
}

func (k *kernel) putVisits(v []vec.V) {
	if v != nil {
		k.visitPool = append(k.visitPool, v)
	}
}

// RunPhotons simulates n photons, accumulating into the kernel's tally.
func (k *kernel) RunPhotons(n int64) {
	for i := int64(0); i < n; i++ {
		k.onePhoton()
	}
}

// onePhoton launches a single photon packet and follows it (and any
// classical-splitting children) to extinction, implementing the paper's
// Fig 1 pseudocode.
func (k *kernel) onePhoton() {
	t := k.tally
	t.Launched++

	pos, dir := k.cfg.Source.Launch(k.rng)

	// Specular reflection at the entry surface (handled once,
	// deterministically, as in MCML).
	rsp := optics.Specular(k.cfg.Model.NAbove, k.cfg.Model.Layers[0].Props.N)
	t.SpecularWeight += rsp

	primary := subPacket{
		pos:    pos,
		dir:    dir,
		weight: 1 - rsp,
	}
	if k.recordPaths {
		primary.visits = k.getVisits()
	}

	k.stack = append(k.stack[:0], primary)
	deepestLayer := 0

	for len(k.stack) > 0 {
		p := k.stack[len(k.stack)-1]
		k.stack = k.stack[:len(k.stack)-1]
		if d := k.trace(&p); d > deepestLayer {
			deepestLayer = d
		}
	}
	t.LayerReached[deepestLayer]++
}

// trace follows one sub-packet to extinction and returns the deepest layer
// index it visited. Reflected children spawned in deterministic mode are
// pushed onto k.stack.
func (k *kernel) trace(p *subPacket) (deepest int) {
	t := k.tally
	m := k.cfg.Model
	deepest = p.layer

	defer func() { k.putVisits(p.visits); p.visits = nil }()

	for events := 0; events < k.cfg.MaxEvents; events++ {
		props := m.Layers[p.layer].Props
		mut := props.MuT()

		// Sample the free-path step; a non-interacting layer (CSF-like
		// void) propagates straight to its boundary.
		s := math.Inf(1)
		if mut > 0 {
			s = k.rng.Step() / mut
		}

		// Distance to the layer boundary along the current direction.
		db := math.Inf(1)
		switch {
		case p.dir.Z > 0:
			db = (m.Boundary(p.layer+1) - p.pos.Z) / p.dir.Z
		case p.dir.Z < 0:
			db = (p.pos.Z - m.Boundary(p.layer)) / -p.dir.Z
		}

		if s >= db {
			// Hop to the boundary and resolve reflection/refraction.
			// Resampling the remaining step in the next layer is unbiased
			// by the memorylessness of the exponential free path.
			if math.IsInf(db, 1) {
				// Horizontal flight in a non-interacting layer: the photon
				// leaves the region of interest sideways; score it as lost
				// to absorption to keep the energy books closed.
				t.AbsorbedWeight += p.weight
				t.LayerAbsorbed[p.layer] += p.weight
				return deepest
			}
			k.advance(p, db, props.N)
			alive, entered := k.boundary(p)
			if !alive {
				return deepest
			}
			if entered > deepest {
				deepest = entered
			}
			continue
		}

		// Hop.
		k.advance(p, s, props.N)

		// Drop: deposit the absorbed fraction of the packet weight.
		dw := p.weight * props.MuA / mut
		p.weight -= dw
		t.AbsorbedWeight += dw
		t.LayerAbsorbed[p.layer] += dw
		if t.AbsGrid != nil {
			t.AbsGrid.Add(p.pos.X, p.pos.Y, p.pos.Z, dw)
		}
		if k.recordPaths {
			p.visits = append(p.visits, p.pos)
		}

		// Spin: sample the Henyey–Greenstein deflection.
		p.dir = vec.Scatter(p.dir, k.rng.HenyeyGreenstein(props.G), k.rng.Azimuth())
		p.scat++

		// Survival roulette for low-weight packets.
		if p.weight < k.cfg.RouletteThreshold {
			if k.rng.Float64()*k.cfg.RouletteBoost < 1 {
				t.RouletteGain += p.weight * (k.cfg.RouletteBoost - 1)
				p.weight *= k.cfg.RouletteBoost
			} else {
				t.RouletteLoss += p.weight
				return deepest
			}
		}
	}

	// Event budget exhausted (pathological configuration): retire the
	// packet into the absorption ledger so energy stays conserved.
	t.AbsorbedWeight += p.weight
	t.LayerAbsorbed[p.layer] += p.weight
	return deepest
}

// advance moves the packet a distance s through a medium of index n.
func (k *kernel) advance(p *subPacket, s, n float64) {
	p.pos = p.pos.Add(p.dir.Scale(s))
	p.path += s
	p.optPath += s * n
	if p.pos.Z > p.maxZ {
		p.maxZ = p.pos.Z
	}
}

// boundary resolves a packet sitting exactly on a layer boundary, moving in
// dir. It returns whether the packet is still alive inside the model and, if
// it crossed into a deeper layer, that layer index (otherwise p.layer).
func (k *kernel) boundary(p *subPacket) (alive bool, layerNow int) {
	m := k.cfg.Model
	goingDown := p.dir.Z > 0

	n1 := m.Layers[p.layer].Props.N
	var n2 float64
	if goingDown {
		n2 = m.IndexBelow(p.layer)
	} else {
		n2 = m.IndexAbove(p.layer)
	}

	cosI := math.Abs(p.dir.Z)
	refl, cosT := optics.Fresnel(n1, n2, cosI)

	reflect := func() (bool, int) {
		p.dir = vec.ReflectZ(p.dir)
		return true, p.layer
	}

	switch {
	case refl >= 1:
		// Total internal reflection ("photon angle > critical angle" in the
		// paper's pseudocode): always reflect, both modes.
		return reflect()
	case refl > 0 && k.cfg.Boundary == BoundaryDeterministic && p.split < maxSplitDepth:
		// Classical physics: split the packet. The reflected portion
		// continues as a child; the refracted portion proceeds below.
		rw := p.weight * refl
		if rw >= k.cfg.RouletteThreshold {
			child := *p
			child.weight = rw
			child.dir = vec.ReflectZ(p.dir)
			child.split = p.split + 1
			if k.recordPaths {
				child.visits = append(k.getVisits(), p.visits...)
			}
			k.stack = append(k.stack, child)
			p.weight -= rw
		} else {
			// Too faint to split: roulette the reflected portion into the
			// continuing packet to stay unbiased without spawning work.
			if k.rng.Float64() < refl {
				return reflect()
			}
		}
	case refl > 0: // probabilistic mode
		if k.rng.Float64() < refl {
			return reflect()
		}
	}

	// Refract across the boundary.
	p.dir = vec.RefractZ(p.dir, n1/n2, cosT)

	if goingDown {
		if p.layer == m.NumLayers()-1 {
			// Escaped through the bottom of a finite stack.
			k.tally.TransmitWeight += p.weight
			return false, p.layer
		}
		p.layer++
		if p.layer > p.deep {
			p.deep = p.layer
			k.tally.LayerEnteredWeight[p.layer] += p.weight
		}
		return true, p.layer
	}

	if p.layer == 0 {
		k.escapeTop(p)
		return false, 0
	}
	p.layer--
	return true, p.layer
}

// escapeTop scores a packet exiting through the z = 0 surface: diffuse
// reflectance always, plus detection if it lands on the detector footprint
// and passes the pathlength gate.
func (k *kernel) escapeTop(p *subPacket) {
	t := k.tally
	t.DiffuseWeight += p.weight
	if t.Radial != nil {
		t.Radial.Add(math.Hypot(p.pos.X, p.pos.Y), p.weight)
	}

	if !k.cfg.Detector.Captures(p.pos.X, p.pos.Y) {
		return
	}
	if !k.cfg.Gate.Accepts(p.path) {
		t.GateRejected += p.weight
		return
	}

	w := p.weight
	t.DetectedCount++
	t.DetectedWeight += w
	t.PathStats.Add(p.path, w)
	t.OptPathStats.Add(p.optPath, w)
	t.DepthStats.Add(p.maxZ, w)
	t.ScatterStats.Add(float64(p.scat), w)
	if t.PathHist != nil {
		t.PathHist.Add(p.path, w)
	}
	if t.PathGrid != nil {
		for _, v := range p.visits {
			t.PathGrid.Add(v.X, v.Y, v.Z, w)
		}
	}
}
