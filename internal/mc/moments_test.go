package mc_test

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/tissue"
)

// dyadic returns a random non-negative dyadic rational k/256 with k <
// 2^16. Sums of such values stay exactly representable far beyond any
// count these tests reach, so float64 addition over them is associative
// and order-insensitive *bit-for-bit* — which lets the properties below
// demand exact equality instead of hiding behind tolerances.
func dyadic(r *rand.Rand) float64 { return float64(r.Intn(1<<16)) / 256 }

func dyadicRunning(r *rand.Rand) stats.Running {
	n := int64(r.Intn(5))
	var acc stats.Running
	for i := int64(0); i < n; i++ {
		acc.Add(dyadic(r), 1+dyadic(r))
	}
	return acc
}

// dyadicTally builds a random tally (fixed 4-region shape) whose every
// field is a sum of dyadic rationals, including the moment accumulators
// and optional histograms.
func dyadicTally(r *rand.Rand) *mc.Tally {
	t := &mc.Tally{
		Launched:           int64(r.Intn(1000)),
		SpecularWeight:     dyadic(r),
		DiffuseWeight:      dyadic(r),
		TransmitWeight:     dyadic(r),
		AbsorbedWeight:     dyadic(r),
		LateralWeight:      dyadic(r),
		RouletteGain:       dyadic(r),
		RouletteLoss:       dyadic(r),
		DetectedCount:      int64(r.Intn(100)),
		DetectedWeight:     dyadic(r),
		GateRejected:       dyadic(r),
		PathStats:          dyadicRunning(r),
		OptPathStats:       dyadicRunning(r),
		DepthStats:         dyadicRunning(r),
		ScatterStats:       dyadicRunning(r),
		LayerAbsorbed:      make([]float64, 4),
		LayerReached:       make([]int64, 4),
		LayerEnteredWeight: make([]float64, 4),
	}
	for i := 0; i < 4; i++ {
		t.LayerAbsorbed[i] = dyadic(r)
		t.LayerReached[i] = int64(r.Intn(50))
		t.LayerEnteredWeight[i] = dyadic(r)
	}
	if r.Intn(2) == 0 {
		t.PathHist = stats.NewHistogram(0, 16, 8)
		for i := 0; i < 8; i++ {
			t.PathHist.Add(float64(i)*2+0.5, dyadic(r))
		}
	}
	t.Moments = &mc.Moments{
		Diffuse:  dyadicRunning(r),
		Transmit: dyadicRunning(r),
		Absorbed: dyadicRunning(r),
		Detected: dyadicRunning(r),
	}
	return t
}

func cloneViaJSON(t *testing.T, tally *mc.Tally) *mc.Tally {
	t.Helper()
	blob, err := json.Marshal(tally)
	if err != nil {
		t.Fatal(err)
	}
	out := &mc.Tally{}
	if err := json.Unmarshal(blob, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestQuickMergeAssociativeOrderInsensitive is the property-based merge
// check: for random dyadic-valued tallies a, b, c — moment and variance
// fields included — (a ⊕ b) ⊕ c and a ⊕ (b ⊕ c) are bit-identical, and so
// is any permutation of the merge order.
func TestQuickMergeAssociativeOrderInsensitive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := dyadicTally(r), dyadicTally(r), dyadicTally(r)

		left := cloneViaJSON(t, a)
		if err := left.Merge(b); err != nil {
			return false
		}
		if err := left.Merge(c); err != nil {
			return false
		}

		bc := cloneViaJSON(t, b)
		if err := bc.Merge(c); err != nil {
			return false
		}
		right := cloneViaJSON(t, a)
		if err := right.Merge(bc); err != nil {
			return false
		}

		perm := cloneViaJSON(t, c)
		if err := perm.Merge(a); err != nil {
			return false
		}
		if err := perm.Merge(b); err != nil {
			return false
		}

		lj, _ := json.Marshal(left)
		rj, _ := json.Marshal(right)
		pj, _ := json.Marshal(perm)
		return bytes.Equal(lj, rj) && bytes.Equal(lj, pj)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMomentAccumulatorProperties checks the Moments layer alone:
// merging chunk recordings in any order and grouping reproduces the same
// accumulator, and the weighted mean of the samples equals the pooled
// per-photon observable.
func TestQuickMomentAccumulatorProperties(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		chunks := make([]*mc.Tally, n)
		var totalPhotons int64
		var totalDiffuse float64
		for i := range chunks {
			photons := int64(64 + r.Intn(64)) // dyadic-exact weights
			diffuse := float64(r.Intn(int(photons))) / 4
			chunks[i] = &mc.Tally{Launched: photons, DiffuseWeight: diffuse}
			chunks[i].RecordChunkMoments()
			totalPhotons += photons
			totalDiffuse += diffuse
		}
		merged := &mc.Tally{}
		for _, idx := range rand.New(rand.NewSource(seed + 1)).Perm(n) {
			if err := merged.Merge(chunks[idx]); err != nil {
				return false
			}
		}
		m := merged.Moments
		if m == nil || m.Diffuse.N != int64(n) {
			return false
		}
		if m.Diffuse.SumW != float64(totalPhotons) {
			return false
		}
		// Weighted chunk means pool back to the global per-photon ratio
		// (each sample is chunkDiffuse/chunkN weighted by chunkN; the
		// division is not exact, so compare to a few ulps).
		pooled := totalDiffuse / float64(totalPhotons)
		if math.Abs(m.Diffuse.Mean()-pooled) > 1e-12*math.Max(1, math.Abs(pooled)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// randomBitsTally builds a tally with adversarial float64 bit patterns
// (negative zero, denormals, infinities, NaN payloads) to pin the codec's
// bit-exactness promise independent of value semantics.
func randomBitsTally(r *rand.Rand) *mc.Tally {
	f := func() float64 {
		switch r.Intn(8) {
		case 0:
			return 0
		case 1:
			return math.Copysign(0, -1)
		case 2:
			return math.Float64frombits(r.Uint64() & 0xF) // denormals
		case 3:
			return math.Inf(1 - 2*r.Intn(2))
		default:
			return math.Float64frombits(r.Uint64())
		}
	}
	regions := r.Intn(6)
	t := &mc.Tally{
		Launched:           int64(r.Uint64()),
		SpecularWeight:     f(),
		DiffuseWeight:      f(),
		AbsorbedWeight:     f(),
		LateralWeight:      f(),
		DetectedWeight:     f(),
		LayerAbsorbed:      make([]float64, regions),
		LayerReached:       make([]int64, regions),
		LayerEnteredWeight: make([]float64, regions),
	}
	for i := 0; i < regions; i++ {
		t.LayerAbsorbed[i] = f()
		t.LayerReached[i] = int64(r.Uint64())
		t.LayerEnteredWeight[i] = f()
	}
	if r.Intn(2) == 0 {
		t.Moments = &mc.Moments{}
		for _, acc := range []*stats.Running{
			&t.Moments.Diffuse, &t.Moments.Transmit, &t.Moments.Absorbed, &t.Moments.Detected} {
			acc.N = int64(r.Intn(1000))
			acc.SumW, acc.SumWX, acc.SumWX2, acc.MinV, acc.MaxV = f(), f(), f(), f(), f()
		}
	}
	return t
}

// TestQuickCodecRoundTripExact: encode → decode → re-encode must
// reproduce the frame byte-for-byte for arbitrary bit patterns, moments
// present or absent, including decoding into a reused scratch tally whose
// previous frame had a different shape (the reducer's steady state).
func TestQuickCodecRoundTripExact(t *testing.T) {
	scratch := &mc.Tally{}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tally := randomBitsTally(r)
		frame := mc.AppendTally(nil, tally)
		if tally.Moments != nil {
			if frame[0] != mc.TallyCodecVersionMoments {
				return false
			}
		} else if frame[0] != mc.TallyCodecVersion {
			return false
		}
		if err := mc.DecodeTallyInto(scratch, frame); err != nil {
			return false
		}
		if (scratch.Moments == nil) != (tally.Moments == nil) {
			return false
		}
		return bytes.Equal(mc.AppendTally(nil, scratch), frame)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestMomentsRecordingSemantics pins where samples come from: one per
// single-stream chunk, one per fan sub-stream, none on the legacy path,
// and estimates consistent with the tally's direct ratios.
func TestMomentsRecordingSemantics(t *testing.T) {
	spec := mc.NewSpec(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil}, detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	spec.TrackMoments = true
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}

	const chunks, photons = 5, 300
	total := mc.NewTally(cfg)
	for s := 0; s < chunks; s++ {
		tt, err := mc.RunStream(cfg, photons, 7, s, chunks)
		if err != nil {
			t.Fatal(err)
		}
		if tt.Moments == nil || tt.Moments.Diffuse.N != 1 {
			t.Fatalf("chunk %d recorded %v samples, want 1", s, tt.Moments)
		}
		if err := total.Merge(tt); err != nil {
			t.Fatal(err)
		}
	}
	if total.Moments.Diffuse.N != chunks {
		t.Fatalf("merged %d samples, want %d", total.Moments.Diffuse.N, chunks)
	}
	if total.Moments.Diffuse.SumW != float64(chunks*photons) {
		t.Fatalf("sample weight %g, want %d", total.Moments.Diffuse.SumW, chunks*photons)
	}
	est, ci := total.EstimateCI(mc.ObsDiffuse)
	if math.Abs(est-total.DiffuseReflectance()) > 1e-9 {
		t.Fatalf("estimate %g != ratio %g", est, total.DiffuseReflectance())
	}
	if !(ci > 0) || math.IsInf(ci, 1) {
		t.Fatalf("ci %g not finite-positive", ci)
	}
	if rse := total.RelStdErr(mc.ObsDiffuse); !(rse > 0) || math.IsInf(rse, 1) {
		t.Fatalf("rse %g not finite-positive", rse)
	}

	// Fanned chunk: one sample per sub-stream, deterministic.
	fanTally, err := mc.RunStreamFan(cfg, photons, 7, 0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fanTally.Moments.Diffuse.N != 3 {
		t.Fatalf("fan recorded %d samples, want 3", fanTally.Moments.Diffuse.N)
	}

	// Legacy path stays moment-free.
	legacyCfg, err := mc.NewSpec(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil}, detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4}).Build()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := mc.RunStream(legacyCfg, photons, 7, 0, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Moments != nil {
		t.Fatal("legacy run grew moments")
	}
	if !math.IsInf(legacy.RelStdErr(mc.ObsDiffuse), 1) {
		t.Fatal("legacy run reports a finite RSE")
	}
}
