package mc_test

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/rng"
	"repro/internal/tissue"
)

// tallyJSON renders a tally for bit-exact comparison (the same shortest
// round-trip float encoding the golden harness relies on).
func tallyJSON(t *testing.T, tally *mc.Tally) []byte {
	t.Helper()
	blob, err := json.Marshal(tally)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestCompactCodecRoundTripGolden round-trips every golden-scenario tally
// through the compact codec and requires bit-exact equality — the wire
// format must never perturb a result, or the distributed reduction would
// drift from the local one.
func TestCompactCodecRoundTripGolden(t *testing.T) {
	for _, tc := range goldenCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tally, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			var codec mc.CompactTallyCodec
			blob, err := codec.EncodeTally(tally)
			if err != nil {
				t.Fatal(err)
			}
			back, err := codec.DecodeTally(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tallyJSON(t, tally), tallyJSON(t, back)) {
				t.Fatal("compact codec round trip changed the tally")
			}
			wantVersion := byte(mc.TallyCodecVersion)
			if tally.Moments != nil {
				// Only moment-carrying tallies pay the version bump; every
				// legacy fixture must keep its v1 bytes.
				wantVersion = mc.TallyCodecVersionMoments
			}
			if blob[0] != wantVersion {
				t.Fatalf("frame leads with %d, want version byte %d", blob[0], wantVersion)
			}

			// The mostly-zero payloads are what the sparse runs exist for;
			// the compact frame must beat gob on every committed scenario.
			gobBlob, err := mc.GobTallyCodec{}.EncodeTally(tally)
			if err != nil {
				t.Fatal(err)
			}
			if len(blob) >= len(gobBlob) {
				t.Errorf("compact %dB not smaller than gob %dB", len(blob), len(gobBlob))
			}
		})
	}
}

// TestCompactCodecEmptyAndDense covers the degenerate shapes: a zero-value
// tally, and one where every optional section is present.
func TestCompactCodecEmptyAndDense(t *testing.T) {
	empty := &mc.Tally{}
	blob := mc.AppendTally(nil, empty)
	back, err := mc.DecodeTally(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyJSON(t, empty), tallyJSON(t, back)) {
		t.Fatal("zero tally did not round trip")
	}

	dense, err := mc.Run(&mc.Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 10, RMax: 30},
		AbsGrid:  &mc.GridSpec{N: 6, Edge: 20},
		PathGrid: &mc.GridSpec{N: 5, Edge: 16},
		PathHist: &mc.HistSpec{Min: 0, Max: 400, Bins: 32},
		Radial:   &mc.HistSpec{Min: 0, Max: 50, Bins: 25},
	}, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	back, err = mc.DecodeTally(mc.AppendTally(nil, dense))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyJSON(t, dense), tallyJSON(t, back)) {
		t.Fatal("dense tally did not round trip")
	}
}

// TestDecodeTallyIntoReuse checks a scratch tally can decode frames of
// different shapes back to back without leaking state between them.
func TestDecodeTallyIntoReuse(t *testing.T) {
	withGrid, err := mc.Run(&mc.Config{
		Model:   tissue.HomogeneousWhiteMatter(),
		AbsGrid: &mc.GridSpec{N: 6, Edge: 12},
		Radial:  &mc.HistSpec{Min: 0, Max: 30, Bins: 10},
	}, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 300, 6)
	if err != nil {
		t.Fatal(err)
	}

	var scratch mc.Tally
	if err := mc.DecodeTallyInto(&scratch, mc.AppendTally(nil, withGrid)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyJSON(t, withGrid), tallyJSON(t, &scratch)) {
		t.Fatal("first decode-into mismatch")
	}
	if err := mc.DecodeTallyInto(&scratch, mc.AppendTally(nil, plain)); err != nil {
		t.Fatal(err)
	}
	if scratch.AbsGrid != nil || scratch.Radial != nil {
		t.Fatal("optional sections leaked from a previous decode")
	}
	if !bytes.Equal(tallyJSON(t, plain), tallyJSON(t, &scratch)) {
		t.Fatal("second decode-into mismatch")
	}
}

// TestCompactCodecRejectsBadFrames exercises the decode-side validation:
// wrong version, truncations at every prefix, and trailing garbage must
// error out instead of panicking or fabricating data.
func TestCompactCodecRejectsBadFrames(t *testing.T) {
	tally, err := mc.Run(&mc.Config{
		Model:  tissue.AdultHead(),
		Radial: &mc.HistSpec{Min: 0, Max: 50, Bins: 20},
	}, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	blob := mc.AppendTally(nil, tally)

	if _, err := mc.DecodeTally(nil); err == nil {
		t.Error("empty frame accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] = mc.TallyCodecVersionMoments + 1
	if _, err := mc.DecodeTally(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// A legacy-version frame must not claim the moments section: the flag
	// bit only exists from version 2 on.
	v1moments := append([]byte(nil), blob...)
	v1moments[1] |= 1 << 4 // flags varint (single byte here): tallyHasMoments
	if _, err := mc.DecodeTally(v1moments); err == nil {
		t.Error("version-1 frame with moments flag accepted")
	}
	for cut := 1; cut < len(blob); cut += 7 {
		if _, err := mc.DecodeTally(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := mc.DecodeTally(append(append([]byte(nil), blob...), 0xAB)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// TestMergeSelfRejected pins the self-merge guard: folding a tally into
// itself used to double-count silently.
func TestMergeSelfRejected(t *testing.T) {
	tally, err := mc.Run(&mc.Config{Model: tissue.AdultHead()}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	launched := tally.Launched
	if err := tally.Merge(tally); err == nil {
		t.Fatal("self-merge accepted")
	}
	if tally.Launched != launched {
		t.Fatalf("rejected self-merge still mutated the tally: launched %d -> %d",
			launched, tally.Launched)
	}
}

// TestMergeAtomicOnShapeError guards the reducer's requeue-and-recompute
// contract: a merge rejected for incompatible optional-section geometry
// must leave the destination bit-identical — a partial merge would
// double-count the scalars when the recomputed chunks land.
func TestMergeAtomicOnShapeError(t *testing.T) {
	base := func(gridN int) *mc.Tally {
		tally, err := mc.Run(&mc.Config{
			Model:    tissue.AdultHead(),
			Detector: detector.Annulus{RMin: 10, RMax: 30},
			AbsGrid:  &mc.GridSpec{N: gridN, Edge: 20},
			Radial:   &mc.HistSpec{Min: 0, Max: 50, Bins: 20},
		}, 300, 7)
		if err != nil {
			t.Fatal(err)
		}
		return tally
	}
	dst, before := base(6), tallyJSON(t, base(6))
	if err := dst.Merge(base(8)); err == nil { // mismatched grid dims
		t.Fatal("incompatible grid merge accepted")
	}
	if !bytes.Equal(before, tallyJSON(t, dst)) {
		t.Fatal("rejected merge mutated the destination tally")
	}

	bad, err := mc.Run(&mc.Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 10, RMax: 30},
		AbsGrid:  &mc.GridSpec{N: 6, Edge: 20},
		Radial:   &mc.HistSpec{Min: 0, Max: 50, Bins: 25}, // mismatched bins
	}, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Merge(bad); err == nil {
		t.Fatal("incompatible histogram merge accepted")
	}
	if !bytes.Equal(before, tallyJSON(t, dst)) {
		t.Fatal("rejected histogram merge mutated the destination tally")
	}
}

// fanCfg returns a fresh config for the fan tests (RunStreamFan normalises
// in place, so each call site builds its own).
func fanCfg() *mc.Config {
	return &mc.Config{
		Model:    tissue.AdultHead(),
		Detector: detector.Annulus{RMin: 10, RMax: 30},
		Radial:   &mc.HistSpec{Min: 0, Max: 60, Bins: 30},
	}
}

// TestRunStreamFanSingleMatchesRunStream pins fan ≤ 1 to the legacy
// single-stream path bit-for-bit: golden tallies and cached results from
// before the fan existed stay valid.
func TestRunStreamFanSingleMatchesRunStream(t *testing.T) {
	const n, seed, stream, streams = 600, 21, 2, 4
	want, err := mc.RunStream(fanCfg(), n, seed, stream, streams)
	if err != nil {
		t.Fatal(err)
	}
	for _, fan := range []int{0, 1} {
		got, err := mc.RunStreamFan(fanCfg(), n, seed, stream, streams, fan)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tallyJSON(t, want), tallyJSON(t, got)) {
			t.Fatalf("fan=%d diverged from RunStream", fan)
		}
	}
}

// TestRunStreamFanDerivationPinned pins the fan decomposition at the mc
// level: a fanned chunk must equal the in-order merge of plain RunStream
// calls over the rng.FanSeed-derived sub-master — the exact recipe workers
// and verification tooling rely on to reproduce a chunk independently.
func TestRunStreamFanDerivationPinned(t *testing.T) {
	const n, seed, stream, streams, fan = 700, 33, 1, 3, 4
	got, err := mc.RunStreamFan(fanCfg(), n, seed, stream, streams, fan)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fanCfg()
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := mc.NewTally(cfg)
	subSeed := rng.FanSeed(seed, stream)
	for i := 0; i < fan; i++ {
		share := int64(n / fan)
		if int64(i) < int64(n%fan) {
			share++
		}
		sub, err := mc.RunStream(cfg, share, subSeed, i, fan)
		if err != nil {
			t.Fatal(err)
		}
		if err := want.Merge(sub); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(tallyJSON(t, want), tallyJSON(t, got)) {
		t.Fatal("fan decomposition diverged from the pinned sub-stream recipe")
	}
	if got.Launched != n {
		t.Fatalf("fanned run launched %d, want %d", got.Launched, n)
	}
}

// TestRunnerMatchesRunStream pins the scratch-reusing Runner to the plain
// per-chunk path bit-for-bit, including back-to-back chunks (stale scratch
// must never leak into a later chunk's tally).
func TestRunnerMatchesRunStream(t *testing.T) {
	cfg := fanCfg()
	cfg.PathGrid = &mc.GridSpec{N: 8, Edge: 20} // exercises the pooled visit buffers
	runner, err := mc.NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const seed, streams = 51, 5
	cache := rng.NewStreamCache(seed)
	for _, stream := range []int{3, 0, 4, 3} {
		want, err := mc.RunStream(cfg, 400, seed, stream, streams)
		if err != nil {
			t.Fatal(err)
		}
		got := runner.Run(400, cache.Stream(stream))
		if !bytes.Equal(tallyJSON(t, want), tallyJSON(t, got)) {
			t.Fatalf("runner diverged from RunStream on stream %d", stream)
		}
		// The one-shot primitive must agree too — RunWithRand on the
		// cached stream state is the documented equivalent of RunStream.
		oneShot, err := mc.RunWithRand(cfg, 400, cache.Stream(stream))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tallyJSON(t, want), tallyJSON(t, oneShot)) {
			t.Fatalf("RunWithRand diverged from RunStream on stream %d", stream)
		}
	}
}

// TestRunStreamFanIndependentOfGOMAXPROCS checks the goroutine count is an
// execution detail: the same fan width must produce the same bits no matter
// how many cores execute it (the heterogeneous-fleet reproducibility
// contract).
func TestRunStreamFanIndependentOfGOMAXPROCS(t *testing.T) {
	const n, seed, stream, streams, fan = 500, 44, 0, 2, 4
	prev := runtime.GOMAXPROCS(1)
	one, err := mc.RunStreamFan(fanCfg(), n, seed, stream, streams, fan)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := mc.RunStreamFan(fanCfg(), n, seed, stream, streams, fan)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tallyJSON(t, one), tallyJSON(t, wide)) {
		t.Fatal("GOMAXPROCS changed a fanned chunk tally")
	}
}
