package mc

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/rng"
)

// Run simulates n photons on a single RNG stream and returns the tally.
// cfg is normalised in place.
func Run(cfg *Config, n int64, seed uint64) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	k := newKernel(cfg, rng.New(seed))
	k.RunPhotons(n)
	k.record()
	return k.tally, nil
}

// record folds the finished leaf tally's chunk moments in when the config
// asks for them — every runner calls it once per single-stream run.
func (k *kernel) record() {
	if k.cfg.TrackMoments {
		k.tally.RecordChunkMoments()
	}
}

// RunStream simulates n photons on stream `stream` of `streams` independent
// RNG streams derived from seed. Chunks computed this way merge into exactly
// the same tally regardless of which worker computes which stream — the
// reproducibility contract of the distributed system. streams ≤ 0 means the
// stream space is open-ended (precision-targeted jobs issue chunks without
// a predetermined count); only the lower bound is then checked.
func RunStream(cfg *Config, n int64, seed uint64, stream, streams int) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if stream < 0 || (streams > 0 && stream >= streams) {
		return nil, fmt.Errorf("mc: stream %d outside [0,%d)", stream, streams)
	}
	r := rng.New(seed)
	for i := 0; i < stream; i++ {
		r.Jump()
	}
	k := newKernel(cfg, r)
	k.RunPhotons(n)
	k.record()
	return k.tally, nil
}

// RunWithRand simulates n photons on a caller-provided generator — the
// building block for callers that manage stream derivation themselves
// (e.g. a worker amortising Jump costs across a job's chunks with an
// rng.StreamCache). Passing the state New(seed) jumped `stream` times
// reproduces RunStream(cfg, n, seed, stream, streams) bit-for-bit.
func RunWithRand(cfg *Config, n int64, r *rng.Rand) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	k := newKernel(cfg, r)
	k.RunPhotons(n)
	k.record()
	return k.tally, nil
}

// Runner amortises kernel setup across many chunk runs of one
// configuration: the config is normalised once and the kernel's scratch
// buffers (sub-packet stack, pooled visit-site slices) are reused from
// chunk to chunk instead of being rebuilt per call. Each Run still
// accumulates into a fresh Tally — the reduction contract is untouched —
// and the photon trajectories are bit-identical to RunWithRand on the
// same generator state. Not safe for concurrent use; distributed workers
// keep one Runner per cached job.
type Runner struct {
	k *kernel
}

// NewRunner validates and normalises cfg and prepares a reusable kernel.
func NewRunner(cfg *Config) (*Runner, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	return &Runner{k: newKernel(cfg, nil)}, nil
}

// Run simulates n photons on the provided generator into a fresh tally.
func (ru *Runner) Run(n int64, r *rng.Rand) *Tally {
	ru.k.rng = r
	ru.k.tally = NewTally(ru.k.cfg)
	ru.k.RunPhotons(n)
	ru.k.record()
	return ru.k.tally
}

// RunStreamFan computes chunk `stream` of `streams` like RunStream, but
// splits the chunk's photons across `fan` jump-separated sub-streams
// derived deterministically from the chunk's stream index (rng.FanStreams)
// and merges the sub-tallies in sub-stream order. The result is a pure
// function of (cfg, n, seed, stream, streams, fan): the number of
// goroutines actually used — at most GOMAXPROCS — never changes the tally,
// so a fanned chunk computed on a 1-core and a 32-core worker reduces
// identically. fan ≤ 1 is byte-identical to RunStream, which keeps the
// golden tallies and every legacy cache entry valid.
func RunStreamFan(cfg *Config, n int64, seed uint64, stream, streams, fan int) (*Tally, error) {
	if fan <= 1 {
		return RunStream(cfg, n, seed, stream, streams)
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if stream < 0 || (streams > 0 && stream >= streams) {
		return nil, fmt.Errorf("mc: stream %d outside [0,%d)", stream, streams)
	}
	subs := rng.FanStreams(seed, stream, fan)
	shares := make([]int64, fan)
	for i := range shares {
		shares[i] = n / int64(fan)
		if int64(i) < n%int64(fan) {
			shares[i]++
		}
	}
	tallies := make([]*Tally, fan)
	workers := runtime.GOMAXPROCS(0)
	if workers > fan {
		workers = fan
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= fan {
					return
				}
				k := newKernel(cfg, subs[i])
				k.RunPhotons(shares[i])
				k.record()
				tallies[i] = k.tally
			}
		}()
	}
	wg.Wait()

	total := NewTally(cfg)
	for _, t := range tallies {
		if err := total.Merge(t); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// RunAdaptive is the local run-until-precision loop: it simulates rounds
// of `workers` jump-separated streams of `chunk` photons each — merged in
// stream order, so the result is a pure function of (cfg, tgt, seed,
// chunk, workers) — and stops at the first round boundary where the
// target is met or tgt.MaxPhotons (when set) is reached. TrackMoments is
// forced on; the returned tally's estimate and CI come from EstimateCI.
//
// The stopping rule tests the on-line variance estimate, which is itself
// noisy early on: a low tgt.MinPhotons floor can latch onto an
// optimistically small estimate and terminate with an overconfident CI
// (the rule's standard small-sample bias). Callers should keep the floor
// at several chunks' worth; a MaxPhotons of zero trusts the target alone,
// which never terminates for a zero-mean observable.
func RunAdaptive(cfg *Config, tgt Target, seed uint64, chunk int64, workers int) (*Tally, error) {
	if err := tgt.Normalize(); err != nil {
		return nil, err
	}
	if !cfg.TrackMoments {
		// The stopping rule needs chunk moments; run on a copy rather than
		// flipping the caller's config, whose later fixed-count runs must
		// keep their moment-free (byte-identical) encodings.
		c := *cfg
		c.TrackMoments = true
		cfg = &c
	}
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if chunk <= 0 {
		return nil, fmt.Errorf("mc: adaptive chunk size %d must be positive", chunk)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	cache := rng.NewStreamCache(seed)
	total := NewTally(cfg)
	tallies := make([]*Tally, workers)
	for stream := 0; ; {
		round := workers
		if tgt.MaxPhotons > 0 {
			if left := (tgt.MaxPhotons - total.Launched + chunk - 1) / chunk; left < int64(round) {
				round = int(left)
			}
		}
		if round <= 0 {
			return total, nil // budget exhausted before the target was met
		}
		var wg sync.WaitGroup
		for w := 0; w < round; w++ {
			wg.Add(1)
			go func(w int, r *rng.Rand) {
				defer wg.Done()
				k := newKernel(cfg, r)
				k.RunPhotons(chunk)
				k.record()
				tallies[w] = k.tally
			}(w, cache.Stream(stream+w))
		}
		wg.Wait()
		for _, t := range tallies[:round] {
			if err := total.Merge(t); err != nil {
				return nil, err
			}
		}
		stream += round
		if tgt.MetBy(total) {
			return total, nil
		}
	}
}

// RunParallel fans n photons across `workers` goroutines (default
// GOMAXPROCS), each with its own jump-separated RNG stream, and merges the
// partial tallies. The result is identical to running the same streams
// sequentially.
func RunParallel(cfg *Config, n int64, seed uint64, workers int) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > n && n > 0 {
		workers = int(n)
	}
	if workers <= 1 {
		return Run(cfg, n, seed)
	}

	streams := rng.NewStreams(seed, workers)
	tallies := make([]*Tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := n / int64(workers)
		if int64(w) < n%int64(workers) {
			share++
		}
		wg.Add(1)
		go func(w int, share int64) {
			defer wg.Done()
			k := newKernel(cfg, streams[w])
			k.RunPhotons(share)
			k.record()
			tallies[w] = k.tally
		}(w, share)
	}
	wg.Wait()

	total := NewTally(cfg)
	for _, t := range tallies {
		if err := total.Merge(t); err != nil {
			return nil, err
		}
	}
	return total, nil
}
