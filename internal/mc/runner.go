package mc

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
)

// Run simulates n photons on a single RNG stream and returns the tally.
// cfg is normalised in place.
func Run(cfg *Config, n int64, seed uint64) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	k := newKernel(cfg, rng.New(seed))
	k.RunPhotons(n)
	return k.tally, nil
}

// RunStream simulates n photons on stream `stream` of `streams` independent
// RNG streams derived from seed. Chunks computed this way merge into exactly
// the same tally regardless of which worker computes which stream — the
// reproducibility contract of the distributed system.
func RunStream(cfg *Config, n int64, seed uint64, stream, streams int) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if stream < 0 || stream >= streams {
		return nil, fmt.Errorf("mc: stream %d outside [0,%d)", stream, streams)
	}
	r := rng.New(seed)
	for i := 0; i < stream; i++ {
		r.Jump()
	}
	k := newKernel(cfg, r)
	k.RunPhotons(n)
	return k.tally, nil
}

// RunParallel fans n photons across `workers` goroutines (default
// GOMAXPROCS), each with its own jump-separated RNG stream, and merges the
// partial tallies. The result is identical to running the same streams
// sequentially.
func RunParallel(cfg *Config, n int64, seed uint64, workers int) (*Tally, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int64(workers) > n && n > 0 {
		workers = int(n)
	}
	if workers <= 1 {
		return Run(cfg, n, seed)
	}

	streams := rng.NewStreams(seed, workers)
	tallies := make([]*Tally, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		share := n / int64(workers)
		if int64(w) < n%int64(workers) {
			share++
		}
		wg.Add(1)
		go func(w int, share int64) {
			defer wg.Done()
			k := newKernel(cfg, streams[w])
			k.RunPhotons(share)
			tallies[w] = k.tally
		}(w, share)
	}
	wg.Wait()

	total := NewTally(cfg)
	for _, t := range tallies {
		if err := total.Merge(t); err != nil {
			return nil, err
		}
	}
	return total, nil
}
