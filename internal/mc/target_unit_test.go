package mc_test

import (
	"math"
	"testing"

	"repro/internal/detector"
	"repro/internal/mc"
	"repro/internal/source"
	"repro/internal/tissue"
)

func slabCfg(t *testing.T, track bool) *mc.Config {
	t.Helper()
	spec := mc.NewSpec(tissue.HomogeneousSlab("slab", tissue.ScalpProps, 5),
		source.Spec{Kind: source.KindPencil},
		detector.Spec{Kind: detector.KindAnnulus, RMin: 1, RMax: 4})
	spec.TrackMoments = track
	cfg, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestTargetNormalizeAndMetBy pins the target validation matrix and the
// stopping predicate.
func TestTargetNormalizeAndMetBy(t *testing.T) {
	tgt := mc.Target{RelErr: 0.02}
	if err := tgt.Normalize(); err != nil {
		t.Fatal(err)
	}
	if tgt.Observable != mc.ObsDiffuse {
		t.Fatalf("default observable %q", tgt.Observable)
	}
	for _, bad := range []mc.Target{
		{RelErr: 0},
		{RelErr: -0.1},
		{RelErr: 1},
		{RelErr: 0.1, Observable: "bogus"},
		{RelErr: 0.1, MinPhotons: -1},
		{RelErr: 0.1, MaxPhotons: -1},
		{RelErr: 0.1, MinPhotons: 100, MaxPhotons: 50},
	} {
		bad := bad
		if err := bad.Normalize(); err == nil {
			t.Errorf("target %+v accepted", bad)
		}
	}
	for _, obs := range []mc.Observable{mc.ObsDiffuse, mc.ObsTransmit, mc.ObsAbsorbed, mc.ObsDetected} {
		if !obs.Valid() {
			t.Errorf("%q invalid", obs)
		}
	}
	if mc.Observable("").Valid() {
		t.Error("empty observable valid")
	}

	// MetBy: a moment-free tally never meets; a floor gates an otherwise
	// precise one; transmit/absorbed/detected route to their accumulators.
	tight := mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.5, MinPhotons: 10}
	if err := tight.Normalize(); err != nil {
		t.Fatal(err)
	}
	bare := &mc.Tally{Launched: 1000}
	if tight.MetBy(bare) {
		t.Fatal("moment-free tally met a target")
	}
	chunks := make([]*mc.Tally, 4)
	merged := &mc.Tally{}
	for i := range chunks {
		chunks[i] = &mc.Tally{Launched: 100, DiffuseWeight: 50 + float64(i),
			TransmitWeight: 10, AbsorbedWeight: 30, DetectedWeight: 5}
		chunks[i].RecordChunkMoments()
		if err := merged.Merge(chunks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !tight.MetBy(merged) {
		t.Fatalf("RSE %g did not meet 0.5", merged.RelStdErr(mc.ObsDiffuse))
	}
	floored := tight
	floored.MinPhotons = 10_000
	if floored.MetBy(merged) {
		t.Fatal("floor did not gate the stop")
	}
	for _, obs := range []mc.Observable{mc.ObsTransmit, mc.ObsAbsorbed, mc.ObsDetected} {
		if rse := merged.RelStdErr(obs); math.IsInf(rse, 1) || rse < 0 {
			t.Errorf("%s RSE %g", obs, rse)
		}
	}
	if !math.IsInf(merged.RelStdErr("bogus"), 1) {
		t.Error("unknown observable has finite RSE")
	}
}

// TestRunAdaptiveUnit pins the in-package adaptive loop: stop at target,
// stop at cap, and argument validation.
func TestRunAdaptiveUnit(t *testing.T) {
	cfg := slabCfg(t, false) // RunAdaptive must force TrackMoments itself
	tgt := mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.05, MinPhotons: 900, MaxPhotons: 90_000}
	tally, err := mc.RunAdaptive(cfg, tgt, 7, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tgt.MetBy(tally) {
		t.Fatalf("unmet: %d photons RSE %g", tally.Launched, tally.RelStdErr(mc.ObsDiffuse))
	}
	if tally.Launched%300 != 0 {
		t.Fatalf("launched %d not a whole number of chunks", tally.Launched)
	}
	if cfg.TrackMoments {
		t.Fatal("RunAdaptive mutated the caller's config; its later fixed runs would grow moments")
	}

	// A cap below the floor still terminates, at the cap (rounded to
	// whole rounds), unmet.
	capped := mc.Target{Observable: mc.ObsDiffuse, RelErr: 0.001, MinPhotons: 600, MaxPhotons: 1200}
	ct, err := mc.RunAdaptive(slabCfg(t, false), capped, 7, 300, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ct.Launched != 1200 {
		t.Fatalf("capped run launched %d, want 1200", ct.Launched)
	}
	if capped.MetBy(ct) {
		t.Fatal("0.1% met on 1200 photons")
	}

	if _, err := mc.RunAdaptive(slabCfg(t, false), mc.Target{RelErr: 0.1}, 7, 0, 2); err == nil {
		t.Fatal("zero chunk size accepted")
	}
	if _, err := mc.RunAdaptive(slabCfg(t, false), mc.Target{RelErr: 7}, 7, 300, 2); err == nil {
		t.Fatal("bad target accepted")
	}
}

// TestTallyDerivedObservables covers the derived accessors alongside the
// moments so a moments-tracking run still reports them coherently.
func TestTallyDerivedObservables(t *testing.T) {
	cfg := slabCfg(t, true)
	cfg.PathGrid = nil
	tally, err := mc.RunStream(cfg, 2000, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if f := tally.LateralFraction(); f != 0 {
		t.Fatalf("layered slab leaked %g laterally", f)
	}
	if d := tally.DPF(0); d != 0 {
		t.Fatal("DPF(0) not guarded")
	}
	if tally.DetectedCount > 0 {
		if d := tally.DPF(2.5); !(d > 0) {
			t.Fatalf("DPF %g", d)
		}
	}
	if rf := tally.ReachedFraction(0); !(rf > 0 && rf <= 1) {
		t.Fatalf("reached fraction %g", rf)
	}
	if pf := tally.PenetrationFraction(0); !(pf > 0 && pf <= 1) {
		t.Fatalf("penetration fraction %g", pf)
	}
	if pf := tally.PenetrationFraction(99); pf != 0 {
		t.Fatalf("out-of-range penetration %g", pf)
	}

	// DecodeTally (the non-reusing entry point) round-trips the frame.
	back, err := mc.DecodeTally(mc.AppendTally(nil, tally))
	if err != nil {
		t.Fatal(err)
	}
	if back.Launched != tally.Launched || back.Moments == nil {
		t.Fatal("DecodeTally dropped state")
	}
	if _, err := mc.DecodeTally([]byte{0xFF}); err == nil {
		t.Fatal("garbage frame accepted")
	}

	// EstimateCI on a moment-free tally reports unavailable.
	if est, ci := (&mc.Tally{}).EstimateCI(mc.ObsDiffuse); est != 0 || !math.IsInf(ci, 1) {
		t.Fatalf("empty estimate %g ± %g", est, ci)
	}
}
