package mc

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Observable names a headline scalar a simulation can be steered by: the
// per-photon quantities whose uncertainty the chunk-level moment
// accumulators track.
type Observable string

const (
	// ObsDiffuse is the diffuse reflectance fraction Rd.
	ObsDiffuse Observable = "diffuse"
	// ObsTransmit is the transmitted fraction Tt.
	ObsTransmit Observable = "transmit"
	// ObsAbsorbed is the absorbed fraction A.
	ObsAbsorbed Observable = "absorbed"
	// ObsDetected is the detected weight per launched photon.
	ObsDetected Observable = "detected"
)

// Valid reports whether the observable names a tracked quantity.
func (o Observable) Valid() bool {
	switch o {
	case ObsDiffuse, ObsTransmit, ObsAbsorbed, ObsDetected:
		return true
	}
	return false
}

// Moments holds the chunk-level second moments behind run-until-precision
// termination. Every completed chunk (for fanned chunks: every sub-stream)
// contributes one weighted sample per observable — x = the chunk's
// per-photon value, weighted by the chunk's photon count — so any partial
// reduction of a job's chunks yields an unbiased batch-means estimate of
// the observable and of its standard error, in any merge order.
//
// Moments are plain data and merge additively like every other tally
// field. A nil Moments (the fixed-count legacy path) keeps the tally's gob
// and compact-codec encodings byte-identical to pre-moment builds.
type Moments struct {
	Diffuse  stats.Running
	Transmit stats.Running
	Absorbed stats.Running
	Detected stats.Running
}

// running returns the accumulator for obs, or nil for an unknown name.
func (m *Moments) running(obs Observable) *stats.Running {
	switch obs {
	case ObsDiffuse:
		return &m.Diffuse
	case ObsTransmit:
		return &m.Transmit
	case ObsAbsorbed:
		return &m.Absorbed
	case ObsDetected:
		return &m.Detected
	}
	return nil
}

// Merge folds o into m.
func (m *Moments) Merge(o *Moments) {
	m.Diffuse.Merge(o.Diffuse)
	m.Transmit.Merge(o.Transmit)
	m.Absorbed.Merge(o.Absorbed)
	m.Detected.Merge(o.Detected)
}

// RecordChunkMoments folds this tally's headline observables into its
// moment accumulators as one weighted sample per observable. It must be
// called exactly once per leaf tally — a single-stream chunk or one fan
// sub-stream — after its photons have run and before the tally is merged
// anywhere; the runners do this when Config.TrackMoments is set. A tally
// with zero launched photons records nothing.
func (t *Tally) RecordChunkMoments() {
	if t.Launched == 0 {
		return
	}
	if t.Moments == nil {
		t.Moments = &Moments{}
	}
	n := float64(t.Launched)
	t.Moments.Diffuse.Add(t.DiffuseWeight/n, n)
	t.Moments.Transmit.Add(t.TransmitWeight/n, n)
	t.Moments.Absorbed.Add(t.AbsorbedWeight/n, n)
	t.Moments.Detected.Add(t.DetectedWeight/n, n)
}

// momentRSE is the batch-means relative standard error of one accumulator:
// the Bessel-corrected spread of the chunk means over √N chunks, relative
// to the weighted mean. Chunks of a tracked job all carry the same photon
// count, so the equal-weight form is exact up to the final ragged chunk of
// a fixed-count job. +Inf when fewer than two chunks have landed or the
// estimate is zero (a zero-mean observable never converges in relative
// terms — the min-photon floor and max-photon cap bound such jobs).
func momentRSE(r *stats.Running) float64 {
	if r.N < 2 {
		return math.Inf(1)
	}
	mean := r.Mean()
	if mean == 0 {
		return math.Inf(1)
	}
	n := float64(r.N)
	se := r.StdDev() * math.Sqrt(n/(n-1)) / math.Sqrt(n)
	return math.Abs(se / mean)
}

// RelStdErr returns the estimated relative standard error of the named
// observable from the chunk-level moments, or +Inf when moments were not
// tracked, fewer than two chunks have reduced, or the estimate is zero.
func (t *Tally) RelStdErr(obs Observable) float64 {
	if t.Moments == nil {
		return math.Inf(1)
	}
	r := t.Moments.running(obs)
	if r == nil {
		return math.Inf(1)
	}
	return momentRSE(r)
}

// EstimateCI returns the moment-based estimate of the named observable and
// the half-width of its normal-approximation 95% confidence interval.
// The estimate equals the tally's direct ratio (e.g. DiffuseReflectance)
// up to rounding: both are the chunk-weight-summed observable over the
// launched photons. ci95 is +Inf while RelStdErr is.
func (t *Tally) EstimateCI(obs Observable) (estimate, ci95 float64) {
	if t.Moments == nil {
		return 0, math.Inf(1)
	}
	r := t.Moments.running(obs)
	if r == nil || r.SumW == 0 {
		return 0, math.Inf(1)
	}
	estimate = r.Mean()
	rse := momentRSE(r)
	if math.IsInf(rse, 1) {
		return estimate, math.Inf(1)
	}
	return estimate, 1.96 * rse * math.Abs(estimate)
}

// Target asks for run-until-precision execution: keep simulating chunks
// until the named observable's relative standard error drops to RelErr,
// subject to a photon floor and budget cap. It replaces a fixed
// TotalPhotons — the standard Monte Carlo stopping rule.
type Target struct {
	// Observable selects the steering quantity; empty means diffuse
	// reflectance.
	Observable Observable `json:"observable,omitempty"`
	// RelErr is the required relative standard error, in (0, 1).
	RelErr float64 `json:"relErr"`
	// MinPhotons is the floor simulated before the first RSE test. Too low
	// a floor stops on optimistically small early variance estimates (the
	// stopping rule's classic bias); the service defaults it to several
	// chunks' worth.
	MinPhotons int64 `json:"minPhotons,omitempty"`
	// MaxPhotons caps the run: the job finishes (reporting its achieved
	// RSE) once this many photons have been simulated even if the target
	// was not met. Zero means no cap at the mc level; the service applies
	// its own default cap.
	MaxPhotons int64 `json:"maxPhotons,omitempty"`
}

// Normalize fills defaults and validates the target.
func (tgt *Target) Normalize() error {
	if tgt.Observable == "" {
		tgt.Observable = ObsDiffuse
	}
	if !tgt.Observable.Valid() {
		return fmt.Errorf("mc: unknown target observable %q", tgt.Observable)
	}
	if tgt.RelErr <= 0 || tgt.RelErr >= 1 {
		return fmt.Errorf("mc: target relative error %g outside (0,1)", tgt.RelErr)
	}
	if tgt.MinPhotons < 0 || tgt.MaxPhotons < 0 {
		return fmt.Errorf("mc: negative photon bounds %d/%d", tgt.MinPhotons, tgt.MaxPhotons)
	}
	if tgt.MaxPhotons > 0 && tgt.MaxPhotons < tgt.MinPhotons {
		return fmt.Errorf("mc: target max photons %d below min %d", tgt.MaxPhotons, tgt.MinPhotons)
	}
	return nil
}

// MetBy reports whether the tally satisfies the target: at least
// MinPhotons launched and the observable's RSE at or below RelErr.
func (tgt *Target) MetBy(t *Tally) bool {
	return t.Launched >= tgt.MinPhotons && t.RelStdErr(tgt.Observable) <= tgt.RelErr
}
